// Ablation benchmarks for the design choices DESIGN.md calls out: the
// §3.4 validation-pruning shortcut, the GPR-guided search vs a blind
// random-search baseline, the layout-diverse initialization, and the raw
// simulator throughput that makes in-loop validation affordable.
package autoblox_test

import (
	"context"
	"testing"

	"autoblox"

	"autoblox/internal/core"
	"autoblox/internal/experiments"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// ablationEnv builds a small, *fresh* (non-memoized) environment so
// simulator-invocation counts are comparable across variants.
func ablationEnv(b *testing.B) (*ssdconf.Space, *core.Validator, *core.Grader, ssdconf.Config) {
	b.Helper()
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	traces := map[string]*trace.Trace{}
	for _, cat := range []workload.Category{workload.Database, workload.WebSearch, workload.CloudStorage} {
		traces[string(cat)] = workload.MustGenerate(cat, workload.Options{Requests: 4000, Seed: 42})
	}
	v := core.NewValidator(space, traces)
	ref := space.FromDevice(ssd.Intel750())
	g, err := core.NewGrader(context.Background(), v, ref, core.DefaultAlpha, core.DefaultBeta)
	if err != nil {
		b.Fatal(err)
	}
	return space, v, g, ref
}

// BenchmarkAblationValidationPruning measures how many simulator runs
// the §3.4 shortcut (skip non-target validation for clearly-losing
// candidates) saves at an identical iteration budget.
func BenchmarkAblationValidationPruning(b *testing.B) {
	var withSims, withoutSims int
	for i := 0; i < b.N; i++ {
		run := func(disable bool) int {
			space, v, g, ref := ablationEnv(b)
			tuner, err := core.NewTuner(space, v, g, core.TunerOptions{
				Seed: 7, MaxIterations: 10, SGDSteps: 4, DisableValidationPruning: disable,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := tuner.Tune(context.Background(), string(workload.Database), []ssdconf.Config{ref})
			if err != nil {
				b.Fatal(err)
			}
			return res.SimRuns
		}
		withSims = run(false)
		withoutSims = run(true)
	}
	b.ReportMetric(float64(withSims), "sims_with_pruning")
	b.ReportMetric(float64(withoutSims), "sims_without_pruning")
}

// BenchmarkAblationRandomSearch compares the BO tuner against uniform
// random search at the same iteration budget (the §3.2 argument for a
// customized BO model).
func BenchmarkAblationRandomSearch(b *testing.B) {
	var boGrade, rndGrade float64
	for i := 0; i < b.N; i++ {
		space, v, g, ref := ablationEnv(b)
		opts := core.TunerOptions{Seed: 13, MaxIterations: 12, SGDSteps: 4}
		tuner, err := core.NewTuner(space, v, g, opts)
		if err != nil {
			b.Fatal(err)
		}
		bo, err := tuner.Tune(context.Background(), string(workload.CloudStorage), []ssdconf.Config{ref})
		if err != nil {
			b.Fatal(err)
		}
		rnd, err := core.RandomSearch(context.Background(), space, v, g, string(workload.CloudStorage), []ssdconf.Config{ref}, opts)
		if err != nil {
			b.Fatal(err)
		}
		boGrade, rndGrade = bo.BestGrade, rnd.BestGrade
	}
	b.ReportMetric(boGrade, "bo_grade")
	b.ReportMetric(rndGrade, "random_grade")
}

// BenchmarkAblationTuningOrder isolates the §3.3 learning-rule effect at
// a small budget: tuning with the ridge-derived order vs without.
func BenchmarkAblationTuningOrder(b *testing.B) {
	var withG, withoutG float64
	for i := 0; i < b.N; i++ {
		space, v, g, ref := ablationEnv(b)
		fine, err := core.FinePrune(context.Background(), v, g, string(workload.Database), ref, nil,
			core.PruneOptions{Seed: 3, Samples: 24})
		if err != nil {
			b.Fatal(err)
		}
		run := func(order []string) float64 {
			opts := core.TunerOptions{Seed: 3, MaxIterations: 10, SGDSteps: 4}
			if order != nil {
				opts.UseTuningOrder = true
				opts.Order = order
			}
			tuner, err := core.NewTuner(space, v, g, opts)
			if err != nil {
				b.Fatal(err)
			}
			res, err := tuner.Tune(context.Background(), string(workload.Database), []ssdconf.Config{ref})
			if err != nil {
				b.Fatal(err)
			}
			return res.BestGrade
		}
		withG = run(fine.Order)
		withoutG = run(nil)
	}
	b.ReportMetric(withG, "ordered_grade")
	b.ReportMetric(withoutG, "unordered_grade")
}

// BenchmarkSimulatorThroughput measures the raw discrete-event simulator
// speed — the quantity that makes in-loop efficiency validation
// affordable (Table 6's dominant term).
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr := workload.MustGenerate(workload.Database, workload.Options{Requests: 20000, Seed: 1})
	sim, err := ssd.NewSimulator(ssd.Intel750())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(20000*b.N)/b.Elapsed().Seconds(), "trace_requests/s")
}

// BenchmarkRecommendCached measures the AutoDB fast path: a cached
// recommendation must be orders of magnitude cheaper than learning.
func BenchmarkRecommendCached(b *testing.B) {
	_ = experiments.DefaultScale() // keep the experiments import honest
	dir := b.TempDir()
	fw, err := newBenchFramework(dir)
	if err != nil {
		b.Fatal(err)
	}
	defer fw.Close()
	probe := workload.MustGenerate(workload.Database, workload.Options{Requests: 6000, Seed: 9})
	if _, err := fw.Recommend(probe); err != nil { // first: learns
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, err := fw.Recommend(probe)
		if err != nil {
			b.Fatal(err)
		}
		if !rec.FromCache {
			b.Fatal("expected cached recommendation")
		}
	}
}

// newBenchFramework builds a small framework with three learned clusters
// for the cached-recommendation benchmark.
func newBenchFramework(dir string) (*autoblox.Framework, error) {
	fw, err := autoblox.New(autoblox.DefaultConstraints(), autoblox.Options{
		DBPath: dir + "/bench.db", Seed: 42,
		Tuner: autoblox.TunerOptions{MaxIterations: 6, SGDSteps: 3},
	})
	if err != nil {
		return nil, err
	}
	var traces []*autoblox.Trace
	for _, cat := range []workload.Category{workload.Database, workload.WebSearch, workload.CloudStorage} {
		traces = append(traces, workload.MustGenerate(cat, workload.Options{Requests: 6000, Seed: 42}))
	}
	if err := fw.LearnWorkloads(traces); err != nil {
		fw.Close()
		return nil, err
	}
	return fw, nil
}
