// Package autoblox is a from-scratch Go implementation of AutoBlox
// ("Learning to Drive Software-Defined Solid-State Drives", MICRO 2023):
// an automated, learning-based SSD hardware-configuration framework.
//
// Given block I/O traces of a target workload and a set of hardware
// constraints (capacity, host interface, flash type, power budget),
// AutoBlox recommends an optimized SSD configuration:
//
//	fw, _ := autoblox.New(autoblox.DefaultConstraints(), autoblox.Options{DBPath: "autoblox.db"})
//	defer fw.Close()
//	fw.LearnWorkloads(trainingTraces)             // PCA + k-means clustering (§3.1)
//	rec, _ := fw.Recommend(newTrace)              // cached lookup or full BO tuning (§3.4)
//	fmt.Println(rec.Device.Channels, rec.Grade)
//
// The package re-exports the pieces a downstream user needs — the
// configuration space, the discrete-event SSD simulator, the synthetic
// workload generators and the tuning engine — while the heavy lifting
// lives in internal/ packages.
package autoblox

import (
	"context"
	"errors"
	"fmt"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/core"
	"autoblox/internal/obs"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
)

// Re-exported types: the public API surface for downstream users.
type (
	// Constraints is the set_cons(capacity, interface, flash_type,
	// power_budget) tuple of §3.5.
	Constraints = ssdconf.Constraints
	// Config is a point in the 52-parameter configuration space.
	Config = ssdconf.Config
	// Space is the tunable parameter space under constraints.
	Space = ssdconf.Space
	// DeviceParams is a fully resolved simulator configuration.
	DeviceParams = ssd.DeviceParams
	// SimResult carries measured performance and energy.
	SimResult = ssd.Result
	// Trace is a block I/O trace.
	Trace = trace.Trace
	// Source is a rewindable streaming cursor over a request sequence —
	// the constant-memory alternative to a materialized Trace.
	Source = trace.Source
	// SourceFactory produces independent streaming cursors over the same
	// request sequence (one per parallel simulation).
	SourceFactory = trace.SourceFactory
	// TuneResult reports a tuning run.
	TuneResult = core.TuneResult
	// TunerOptions tunes the §3.4 search loop.
	TunerOptions = core.TunerOptions
	// WhatIfGoal is a §4.5 performance target.
	WhatIfGoal = core.WhatIfGoal
	// WhatIfResult reports a what-if exploration.
	WhatIfResult = core.WhatIfResult
	// ObjectiveSpec declares the tuning objective axes (scalar grade, or
	// a Pareto vector over perf/power/lifetime).
	ObjectiveSpec = ssdconf.ObjectiveSpec
	// FrontPoint is one non-dominated configuration on a Pareto front.
	FrontPoint = core.FrontPoint
	// Assignment is a workload-clustering verdict.
	Assignment = core.Assignment
	// PruneOptions controls §3.3 parameter pruning.
	PruneOptions = core.PruneOptions
	// Backend executes validation measurements (in-process pool or a
	// distributed fleet; see internal/dist).
	Backend = core.Backend
)

// DefaultConstraints returns the paper's §4.2 setting: 512GB, NVMe, MLC.
func DefaultConstraints() Constraints { return ssdconf.DefaultConstraints() }

// ParseObjectives parses a comma-separated objective axis list such as
// "perf,power,lifetime" into an ObjectiveSpec. The empty string yields
// the scalar (single-grade) spec.
func ParseObjectives(s string) (ObjectiveSpec, error) { return ssdconf.ParseObjectiveSpec(s) }

// Baseline commodity configurations used as references in the paper.
var (
	Intel750      = ssd.Intel750
	Samsung850Pro = ssd.Samsung850Pro
	SamsungZSSD   = ssd.SamsungZSSD
)

// Sentinel errors surfaced by resilient runs.
var (
	// ErrInterrupted marks a tuning run stopped by context cancellation;
	// with Options.Checkpoint set, the run can be resumed bit-identically.
	ErrInterrupted = core.ErrInterrupted
	// ErrTransient classifies retryable simulation failures.
	ErrTransient = core.ErrTransient
)

// Options configures a Framework.
type Options struct {
	// DBPath locates the AutoDB log file (default "autoblox.db").
	DBPath string
	// Alpha and Beta are the Formula 1/2 coefficients (defaults 0.5, 0.1).
	Alpha, Beta float64
	// Seed drives all stochastic components.
	Seed int64
	// Reference is the commodity baseline; zero value selects Intel 750.
	Reference DeviceParams
	// Tuner carries the search-loop knobs; zero values pick the paper's
	// defaults.
	Tuner TunerOptions
	// ClusterK overrides the number of workload clusters (default: one
	// per training trace).
	ClusterK int
	// NewCategoryAfter is the number of outlier workloads (novel traces
	// nearest to the same cluster) after which AutoBlox creates a new
	// category and retrains the clustering with one more cluster (§3.1;
	// paper default 20). Values <1 select the paper default.
	NewCategoryAfter int
	// Parallel bounds concurrent validation simulations (0 selects
	// runtime.GOMAXPROCS(0)). Results are identical at any setting.
	Parallel int
	// Backend, when set, routes every validation simulation through a
	// custom measurement backend — e.g. a dist.Fleet coordinator
	// sharding simulations across worker processes. nil selects the
	// in-process pool bounded by Parallel. Backends are required to be
	// deterministic, so results are bit-identical either way.
	Backend Backend
	// WhatIfSpace switches the expanded §4.5 bounds on.
	WhatIfSpace bool
	// Objectives selects the tuning objective axes. The zero spec is
	// scalar mode — byte-identical to the historical single-grade
	// tuner. A multi-axis spec (e.g. perf,power,lifetime) switches
	// every tuning run to Pareto-front search; the spec is folded into
	// the space signature, so checkpoints and distributed fleets from a
	// different spec are rejected.
	Objectives ObjectiveSpec
	// Metrics, when set, receives counters and latency histograms from
	// the validator and every simulation it runs. nil disables metric
	// collection at zero cost. Instrumentation never perturbs results:
	// runs with and without a registry are bit-for-bit identical.
	Metrics *obs.Registry
	// SimTimeout bounds each individual validation simulation; 0 means
	// unbounded. A timed-out measurement fails the run (it is never
	// cached or retried — simulation time is deterministic).
	SimTimeout time.Duration
	// SimRetries is the per-simulation retry budget for transient
	// (core.ErrTransient) measurement failures.
	SimRetries int
	// Checkpoint, when set, makes tuning runs crash-safe: the tuner
	// atomically rewrites this JSON file after every iteration.
	Checkpoint string
	// Resume restores tuner state from Checkpoint (when the file
	// exists) before tuning, skipping all completed work.
	Resume bool
	// CacheDir, when set, enables the crash-safe persistent simulation
	// cache: every successful (configuration, trace) measurement is
	// durably recorded under this directory and served on later runs —
	// across process restarts and kill -9 — without re-simulating. Keys
	// embed the space signature, so a changed space silently invalidates
	// old entries instead of serving stale results.
	CacheDir string
}

// Framework is the top-level AutoBlox object tying together the
// clustering model, the configuration database, the validator and the
// tuner.
type Framework struct {
	Space     *Space
	DB        *autodb.DB
	Clusterer *core.Clusterer

	opts      Options
	cons      Constraints
	validator *core.Validator
	persist   *core.PersistentCache
	grader    *core.Grader
	refCfg    Config
	sources   map[string]SourceFactory // cluster label -> representative stream
	orders    map[string][]string      // cached §3.3 tuning orders per target
	outliers  map[string]int           // nearest-label -> novel-trace count (§3.1)
}

// New opens (or creates) a framework under the given constraints.
func New(cons Constraints, opts Options) (*Framework, error) {
	if opts.DBPath == "" {
		opts.DBPath = "autoblox.db"
	}
	if opts.Alpha == 0 {
		opts.Alpha = core.DefaultAlpha
	}
	if opts.Beta == 0 {
		opts.Beta = core.DefaultBeta
	}
	if opts.Reference.Channels == 0 {
		opts.Reference = ssd.Intel750()
	}
	var space *Space
	if opts.WhatIfSpace {
		space = ssdconf.NewWhatIfSpace(cons)
	} else {
		space = ssdconf.NewSpace(cons)
	}
	space.Objectives = opts.Objectives
	db, err := autodb.Open(opts.DBPath)
	if err != nil {
		return nil, err
	}
	if opts.NewCategoryAfter < 1 {
		opts.NewCategoryAfter = 20 // paper §3.1 default
	}
	f := &Framework{
		Space: space, DB: db, opts: opts, cons: cons,
		sources:  map[string]SourceFactory{},
		orders:   map[string][]string{},
		outliers: map[string]int{},
	}
	f.refCfg = space.FromDevice(opts.Reference)

	if opts.CacheDir != "" {
		p, err := core.OpenPersistentCache(opts.CacheDir)
		if err != nil {
			db.Close()
			return nil, fmt.Errorf("autoblox: open persistent cache: %w", err)
		}
		p.Obs = opts.Metrics
		f.persist = p
	}

	// Restore a previously learned clustering model, if any.
	if blob, ok, err := db.LoadModel(); err == nil && ok {
		if c, err := core.UnmarshalClusterer(blob); err == nil {
			f.Clusterer = c
		}
	}
	return f, nil
}

// Close releases the configuration database and the persistent
// simulation cache (when one was opened).
func (f *Framework) Close() error {
	perr := f.persist.Close()
	if err := f.DB.Close(); err != nil {
		return err
	}
	return perr
}

// PersistentCacheStats reports the persistent simulation cache's
// hit/miss/corrupt counters; zero values without Options.CacheDir.
func (f *Framework) PersistentCacheStats() core.PersistentCacheStats {
	return f.persist.Stats()
}

// ReferenceConfig returns the grid-snapped commodity reference.
func (f *Framework) ReferenceConfig() Config { return f.refCfg.Clone() }

// SetProgress installs a per-iteration callback for subsequent tuning
// runs (CLI progress reporting).
func (f *Framework) SetProgress(fn func(iteration int, bestGrade float64)) {
	f.opts.Tuner.OnIteration = fn
}

// SetCheckpointHook installs a callback invoked after every successful
// checkpoint write with the checkpoint path (live freshness reporting).
func (f *Framework) SetCheckpointHook(fn func(path string)) {
	f.opts.Tuner.OnCheckpoint = fn
}

// SetFrontProgress installs a per-iteration Pareto-front callback
// (front size + normalized hypervolume) for subsequent tuning runs.
// Scalar-mode runs never invoke it.
func (f *Framework) SetFrontProgress(fn func(size int, hypervolume float64)) {
	f.opts.Tuner.OnFront = fn
}

// LearnWorkloads trains the §3.1 clustering model on one representative
// trace per workload category and persists it to AutoDB. The traces also
// become the per-cluster representatives used in non-target validation.
// Callers holding generator- or file-backed streams should prefer
// LearnWorkloadSources, which never materializes the traces.
func (f *Framework) LearnWorkloads(traces []*Trace) error {
	factories := make([]SourceFactory, len(traces))
	for i, tr := range traces {
		factories[i] = tr.Factory()
	}
	return f.LearnWorkloadSources(factories)
}

// LearnWorkloadSources is LearnWorkloads over streaming source
// factories: each training stream is consumed in one windowed pass for
// clustering and re-derived on demand for validation, so no trace is
// ever held in memory whole.
func (f *Framework) LearnWorkloadSources(factories []SourceFactory) error {
	srcs := make([]trace.Source, len(factories))
	for i, fac := range factories {
		srcs[i] = fac()
	}
	c, err := core.TrainClustererSources(srcs, core.ClustererConfig{
		K: f.opts.ClusterK, Seed: f.opts.Seed, AutoAdjustThreshold: true,
	})
	if err != nil {
		return err
	}
	f.Clusterer = c
	for i, fac := range factories {
		f.sources[srcs[i].Name()] = fac
	}
	f.validator = nil // rebuilt lazily against the new trace set
	if blob, err := c.Marshal(); err == nil {
		if err := f.DB.SaveModel(blob); err != nil {
			return fmt.Errorf("autoblox: persist model: %w", err)
		}
	}
	return nil
}

// Workloads lists the learned cluster labels.
func (f *Framework) Workloads() []string {
	out := make([]string, 0, len(f.sources))
	for k := range f.sources {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// ensureEnv lazily builds the validator and grader over the learned
// traces.
func (f *Framework) ensureEnv(ctx context.Context) error {
	if f.validator != nil {
		return nil
	}
	if len(f.sources) == 0 {
		return errors.New("autoblox: LearnWorkloads must run before tuning")
	}
	groups := make(map[string][]SourceFactory, len(f.sources))
	for k, fac := range f.sources {
		groups[k] = []SourceFactory{fac}
	}
	f.validator = core.NewValidatorSources(f.Space, groups)
	f.validator.Parallel = f.opts.Parallel
	f.validator.Backend = f.opts.Backend
	f.validator.Obs = f.opts.Metrics
	f.validator.SimTimeout = f.opts.SimTimeout
	f.validator.MaxRetries = f.opts.SimRetries
	f.validator.Persist = f.persist
	g, err := core.NewGrader(ctx, f.validator, f.refCfg, f.opts.Alpha, f.opts.Beta)
	if err != nil {
		return err
	}
	f.grader = g
	return nil
}

// Recommendation is the outcome of Recommend.
type Recommendation struct {
	Assignment Assignment
	// FromCache is true when AutoDB already held a configuration for the
	// workload's cluster and no tuning ran.
	FromCache bool
	Config    Config
	Device    DeviceParams
	Grade     float64
	// Tune holds the tuning run's details when tuning was needed.
	Tune *TuneResult
}

// Recommend implements the paper's end-to-end workflow (Fig. 3): extract
// the new workload's features, map it to a cluster, serve a learned
// configuration from AutoDB when one exists, and otherwise learn a new
// configuration and store it.
func (f *Framework) Recommend(tr *Trace) (*Recommendation, error) {
	return f.RecommendContext(context.Background(), tr)
}

// RecommendContext is Recommend with cooperative cancellation: ctx
// aborts any tuning run the recommendation triggers.
func (f *Framework) RecommendContext(ctx context.Context, tr *Trace) (*Recommendation, error) {
	if f.Clusterer == nil {
		return nil, errors.New("autoblox: LearnWorkloads must run before Recommend")
	}
	a, err := f.Clusterer.Assign(tr)
	if err != nil {
		return nil, err
	}
	rec := &Recommendation{Assignment: a}

	clusterID := a.Cluster
	newCategory := false
	if a.IsNew {
		// Workload outlier (§3.1): tolerate outliers of an existing
		// category until NewCategoryAfter of them accumulate, then form
		// a new category — retraining the k-means model with one more
		// cluster when the training windows are available.
		f.outliers[a.Label]++
		if f.outliers[a.Label] >= f.opts.NewCategoryAfter {
			newCategory = true
			f.outliers[a.Label] = 0
			if retrained, err := f.Clusterer.AddWorkload(tr, f.opts.Seed); err == nil {
				f.Clusterer = retrained
				if blob, err := retrained.Marshal(); err == nil {
					_ = f.DB.SaveModel(blob) // best-effort persistence
				}
			}
			n, err := f.DB.NumClusters()
			if err != nil {
				return nil, err
			}
			clusterID = f.Clusterer.KMeans.K() + n
		}
	}

	if stored, err := f.DB.BestConfigs(clusterID, 1); err == nil && len(stored) > 0 && !newCategory {
		rec.FromCache = true
		rec.Config = stored[0].Config
		rec.Grade = stored[0].Grade
		rec.Device = f.Space.ToDevice(stored[0].Config)
		return rec, nil
	}

	// Learn a new configuration with the trace itself as the target.
	target := a.Label
	if newCategory {
		target = tr.Name
		f.sources[target] = tr.Factory()
		f.validator = nil
	}
	res, err := f.TuneContext(ctx, target)
	if err != nil {
		return nil, err
	}
	rec.Config = res.Best
	rec.Grade = res.BestGrade
	rec.Device = f.Space.ToDevice(res.Best)
	rec.Tune = res

	sc := autodb.StoredConfig{Config: res.Best, Grade: res.BestGrade,
		Perf: map[string]autodb.Perf{}}
	for cl, ps := range res.BestPerf {
		for i, p := range ps {
			sc.Perf[fmt.Sprintf("%s#%d", cl, i)] = p
		}
	}
	if err := f.DB.AddConfig(clusterID, target, sc); err != nil {
		return nil, err
	}
	return rec, nil
}

// Tune learns an optimized configuration for a known cluster label.
func (f *Framework) Tune(target string) (*TuneResult, error) {
	return f.TuneContext(context.Background(), target)
}

// TuneContext is Tune with cooperative cancellation and (via
// Options.Checkpoint/Resume) crash-safe, resumable search: cancelling
// ctx stops the run with core.ErrInterrupted, leaving the checkpoint of
// the last completed iteration on disk.
func (f *Framework) TuneContext(ctx context.Context, target string) (*TuneResult, error) {
	if err := f.ensureEnv(ctx); err != nil {
		return nil, err
	}
	opts := f.opts.Tuner
	opts.Alpha, opts.Beta, opts.Seed = f.opts.Alpha, f.opts.Beta, f.opts.Seed
	opts.Checkpoint, opts.Resume = f.opts.Checkpoint, f.opts.Resume
	// The full pipeline enforces the §3.3 tuning order; compute and
	// cache it per target (fine-grained pruning, Fig. 5).
	if !opts.UseTuningOrder {
		order, ok := f.orders[target]
		if !ok {
			// Reuse a previously persisted order for this cluster, else
			// learn one with fine-grained pruning and persist it.
			clusterID := -1
			if f.Clusterer != nil {
				clusterID = f.Clusterer.ClusterOf(target)
			}
			if clusterID >= 0 {
				if stored, found, err := f.DB.GetOrder(clusterID); err == nil && found {
					order, ok = stored, true
				}
			}
			if !ok {
				fine, err := core.FinePrune(ctx, f.validator, f.grader, target, f.refCfg, nil,
					core.PruneOptions{Seed: f.opts.Seed})
				if err == nil {
					order = fine.Order
					if clusterID >= 0 {
						_ = f.DB.PutOrder(clusterID, order) // best-effort persistence
					}
				}
			}
			f.orders[target] = order
		}
		if len(order) > 0 {
			opts.UseTuningOrder = true
			opts.Order = order
		}
	}
	t, err := core.NewTuner(f.Space, f.validator, f.grader, opts)
	if err != nil {
		return nil, err
	}
	initial := []Config{f.refCfg}
	// Seed the model with previously learned configurations (①).
	if f.Clusterer != nil {
		if id := f.Clusterer.ClusterOf(target); id >= 0 {
			if stored, err := f.DB.BestConfigs(id, opts.TopK); err == nil {
				for _, sc := range stored {
					if len(sc.Config) == len(f.refCfg) {
						initial = append(initial, sc.Config)
					}
				}
			}
		}
	}
	return t.Tune(ctx, target, initial)
}

// Prune runs the §3.3 two-stage parameter pruning for a target cluster.
func (f *Framework) Prune(target string, opts PruneOptions) (*core.CoarseResult, *core.FineResult, error) {
	return f.PruneContext(context.Background(), target, opts)
}

// PruneContext is Prune with cooperative cancellation.
func (f *Framework) PruneContext(ctx context.Context, target string, opts PruneOptions) (*core.CoarseResult, *core.FineResult, error) {
	if err := f.ensureEnv(ctx); err != nil {
		return nil, nil, err
	}
	coarse, err := core.CoarsePrune(ctx, f.validator, f.grader, target, f.refCfg, opts)
	if err != nil {
		return nil, nil, err
	}
	fine, err := core.FinePrune(ctx, f.validator, f.grader, target, f.refCfg, coarse.Insensitive, opts)
	if err != nil {
		return coarse, nil, err
	}
	return coarse, fine, nil
}

// WhatIf runs the §4.5 analysis against a performance goal. The
// framework should have been built with Options.WhatIfSpace.
func (f *Framework) WhatIf(goal WhatIfGoal) (*WhatIfResult, error) {
	return f.WhatIfContext(context.Background(), goal)
}

// WhatIfContext is WhatIf with cooperative cancellation.
func (f *Framework) WhatIfContext(ctx context.Context, goal WhatIfGoal) (*WhatIfResult, error) {
	if err := f.ensureEnv(ctx); err != nil {
		return nil, err
	}
	opts := f.opts.Tuner
	opts.Beta, opts.Seed = f.opts.Beta, f.opts.Seed
	return core.WhatIf(ctx, f.Space, f.validator, f.grader, goal, []Config{f.refCfg}, opts)
}

// Simulate runs a trace against an explicit device configuration — the
// standalone simulator entry point (cmd/ssdsim uses it).
func Simulate(dev DeviceParams, tr *Trace) (*SimResult, error) {
	return SimulateSource(dev, tr.Source())
}

// SimulateSource runs a streaming trace against an explicit device
// configuration without materializing it; per-run memory is O(device
// state), independent of trace length.
func SimulateSource(dev DeviceParams, src Source) (*SimResult, error) {
	return SimulateSourceContext(context.Background(), dev, src)
}

// SimulateSourceContext is SimulateSource with cooperative
// cancellation (polled every 1024 requests inside the simulator).
func SimulateSourceContext(ctx context.Context, dev DeviceParams, src Source) (*SimResult, error) {
	sim, err := ssd.NewSimulator(dev)
	if err != nil {
		return nil, err
	}
	return sim.RunSourceContext(ctx, src)
}

// DescribeConfig formats the Table 5 critical parameters of a
// configuration, plus the selected policies by their registry names.
func (f *Framework) DescribeConfig(cfg Config) string {
	names := []string{"CMTCapacity", "DataCacheSize", "FlashChannelCount", "ChipNoPerChannel",
		"DieNoPerChip", "PlaneNoPerDie", "BlockNoPerPlane", "PageNoPerBlock",
		"GCPolicy", "CachePolicy", "PlaneAllocationScheme"}
	out := ""
	for _, n := range names {
		i, err := f.Space.ParamIndex(n)
		if err != nil {
			continue
		}
		if out != "" {
			out += " "
		}
		p := &f.Space.Params[i]
		if p.Kind == ssdconf.Categorical && cfg[i] < len(p.Labels) {
			out += fmt.Sprintf("%s=%s", n, p.Labels[cfg[i]])
			continue
		}
		out += fmt.Sprintf("%s=%g", n, p.Values[cfg[i]])
	}
	return out
}
