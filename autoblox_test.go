package autoblox

import (
	"path/filepath"
	"testing"

	"autoblox/internal/workload"
)

func newFramework(t *testing.T, opts Options) *Framework {
	t.Helper()
	if opts.DBPath == "" {
		opts.DBPath = filepath.Join(t.TempDir(), "autoblox.db")
	}
	if opts.Tuner.MaxIterations == 0 {
		opts.Tuner.MaxIterations = 6
		opts.Tuner.SGDSteps = 3
	}
	fw, err := New(DefaultConstraints(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fw.Close() })
	return fw
}

func learn(t *testing.T, fw *Framework, cats []workload.Category, n int) {
	t.Helper()
	var traces []*Trace
	for _, c := range cats {
		traces = append(traces, workload.MustGenerate(c, workload.Options{Requests: n, Seed: 31}))
	}
	if err := fw.LearnWorkloads(traces); err != nil {
		t.Fatal(err)
	}
}

func TestRecommendRequiresLearning(t *testing.T) {
	fw := newFramework(t, Options{Seed: 1})
	tr := workload.MustGenerate(workload.Database, workload.Options{Requests: 3000, Seed: 2})
	if _, err := fw.Recommend(tr); err == nil {
		t.Fatal("Recommend before LearnWorkloads should fail")
	}
	if _, err := fw.Tune("Database"); err == nil {
		t.Fatal("Tune before LearnWorkloads should fail")
	}
}

func TestEndToEndRecommendAndCache(t *testing.T) {
	fw := newFramework(t, Options{Seed: 5})
	learn(t, fw, []workload.Category{workload.Database, workload.WebSearch, workload.CloudStorage}, 9000)

	if got := fw.Workloads(); len(got) != 3 {
		t.Fatalf("Workloads = %v", got)
	}

	probe := workload.MustGenerate(workload.Database, workload.Options{Requests: 6000, Seed: 77})
	rec, err := fw.Recommend(probe)
	if err != nil {
		t.Fatal(err)
	}
	if rec.FromCache {
		t.Fatal("first recommendation cannot come from cache")
	}
	if rec.Assignment.Label != "Database" {
		t.Fatalf("probe assigned to %q", rec.Assignment.Label)
	}
	if rec.Tune == nil || rec.Grade < 0 {
		t.Fatalf("tuning result missing or regressed: %+v", rec)
	}
	if err := rec.Device.Validate(); err != nil {
		t.Fatalf("recommended device invalid: %v", err)
	}

	// Second request for the same workload type is served from AutoDB.
	probe2 := workload.MustGenerate(workload.Database, workload.Options{Requests: 6000, Seed: 78})
	rec2, err := fw.Recommend(probe2)
	if err != nil {
		t.Fatal(err)
	}
	if !rec2.FromCache {
		t.Fatal("second recommendation should be cached")
	}
	if rec2.Grade != rec.Grade {
		t.Fatalf("cached grade %g != learned grade %g", rec2.Grade, rec.Grade)
	}
}

func TestModelPersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.log")
	fw, err := New(DefaultConstraints(), Options{DBPath: path, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	learn(t, fw, []workload.Category{workload.WebSearch, workload.CloudStorage}, 9000)
	fw.Close()

	fw2, err := New(DefaultConstraints(), Options{DBPath: path, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	defer fw2.Close()
	if fw2.Clusterer == nil {
		t.Fatal("clustering model not restored from AutoDB")
	}
	probe := workload.MustGenerate(workload.WebSearch, workload.Options{Requests: 6000, Seed: 12})
	a, err := fw2.Clusterer.Assign(probe)
	if err != nil {
		t.Fatal(err)
	}
	if a.Label != "WebSearch" {
		t.Fatalf("restored model assigned %q", a.Label)
	}
}

func TestSimulateConvenience(t *testing.T) {
	tr := workload.MustGenerate(workload.Recomm, workload.Options{Requests: 2000, Seed: 3})
	res, err := Simulate(Intel750(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgLatency <= 0 || res.EnergyJoules <= 0 {
		t.Fatalf("bad result %+v", res)
	}
	bad := Intel750()
	bad.Channels = 0
	if _, err := Simulate(bad, tr); err == nil {
		t.Fatal("invalid device should fail")
	}
}

func TestDescribeConfig(t *testing.T) {
	fw := newFramework(t, Options{Seed: 1})
	s := fw.DescribeConfig(fw.ReferenceConfig())
	if s == "" || len(s) < 40 {
		t.Fatalf("DescribeConfig too short: %q", s)
	}
}

func TestFrameworkPrune(t *testing.T) {
	fw := newFramework(t, Options{Seed: 3})
	learn(t, fw, []workload.Category{workload.Database, workload.WebSearch}, 6000)
	coarse, fine, err := fw.Prune("Database", PruneOptions{Seed: 3, Samples: 20})
	if err != nil {
		t.Fatal(err)
	}
	// 38 numeric + 4 tunable categorical dimensions.
	if len(coarse.Sweeps) != 42 || len(fine.Order) == 0 {
		t.Fatalf("prune outputs: %d sweeps, %d order", len(coarse.Sweeps), len(fine.Order))
	}
	if _, _, err := fw.Prune("nope", PruneOptions{}); err == nil {
		t.Fatal("unknown target should fail")
	}
}

func TestFrameworkWhatIf(t *testing.T) {
	fw := newFramework(t, Options{Seed: 4, WhatIfSpace: true,
		Tuner: TunerOptions{MaxIterations: 8, SGDSteps: 3}})
	learn(t, fw, []workload.Category{workload.WebSearch}, 6000)
	res, err := fw.WhatIf(WhatIfGoal{Target: "WebSearch", LatencyReduction: 1.01})
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencySpeedup <= 0 || len(res.CriticalParams) == 0 {
		t.Fatalf("what-if result incomplete: %+v", res)
	}
}

func TestFrameworkProgressCallback(t *testing.T) {
	fw := newFramework(t, Options{Seed: 5})
	learn(t, fw, []workload.Category{workload.Database, workload.CloudStorage}, 6000)
	var calls int
	fw.SetProgress(func(iter int, best float64) { calls++ })
	if _, err := fw.Tune("Database"); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("progress callback never invoked")
	}
}

func TestNovelWorkloadFormsNewCategory(t *testing.T) {
	fw := newFramework(t, Options{Seed: 8, NewCategoryAfter: 1})
	learn(t, fw, []workload.Category{workload.WebSearch, workload.CloudStorage, workload.Database}, 12000)
	kBefore := fw.Clusterer.KMeans.K()

	// RadiusAuth is far from all three training categories.
	novel := workload.MustGenerate(workload.RadiusAuth, workload.Options{Requests: 9000, Seed: 9})
	rec, err := fw.Recommend(novel)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Assignment.IsNew {
		t.Skip("RadiusAuth not flagged novel under this training set")
	}
	if fw.Clusterer.KMeans.K() != kBefore+1 {
		t.Fatalf("clusterer K = %d, want %d (retrained with one more cluster)",
			fw.Clusterer.KMeans.K(), kBefore+1)
	}
	if rec.Tune == nil {
		t.Fatal("novel workload should have triggered tuning")
	}
}

func TestOutlierToleranceBeforeNewCategory(t *testing.T) {
	fw := newFramework(t, Options{Seed: 8, NewCategoryAfter: 3})
	learn(t, fw, []workload.Category{workload.WebSearch, workload.CloudStorage, workload.Database}, 12000)
	kBefore := fw.Clusterer.KMeans.K()

	// Two novel traces: tolerated as outliers of the nearest category
	// (tuned/served for that category, no retraining).
	for i := 0; i < 2; i++ {
		novel := workload.MustGenerate(workload.RadiusAuth, workload.Options{Requests: 9000, Seed: int64(20 + i)})
		rec, err := fw.Recommend(novel)
		if err != nil {
			t.Fatal(err)
		}
		if !rec.Assignment.IsNew {
			t.Skip("RadiusAuth not flagged novel under this training set")
		}
		if fw.Clusterer.KMeans.K() != kBefore {
			t.Fatal("retrained before the outlier threshold")
		}
	}
	// The third crosses the threshold.
	novel := workload.MustGenerate(workload.RadiusAuth, workload.Options{Requests: 9000, Seed: 30})
	if _, err := fw.Recommend(novel); err != nil {
		t.Fatal(err)
	}
	if fw.Clusterer.KMeans.K() != kBefore+1 {
		t.Fatalf("K = %d after threshold, want %d", fw.Clusterer.KMeans.K(), kBefore+1)
	}
}
