// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§4). Each benchmark regenerates its artifact via
// internal/experiments and reports the headline quantities as custom
// metrics (speedups, iterations, accuracy), so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation. Results are memoized inside the
// experiments package: repeated b.N iterations reuse the computed
// artifact, so the benchmarks measure the (expensive) first run and then
// report stable metrics.
//
// Scale note: the paper tunes for 14–19 hours per workload on a 24-core
// Xeon. The benchmarks run the same pipeline at experiments.DefaultScale
// (shorter traces, smaller iteration budgets); EXPERIMENTS.md records the
// paper-vs-measured comparison for every artifact.
package autoblox_test

import (
	"io"
	"math"
	"testing"

	"autoblox/internal/experiments"
	"autoblox/internal/workload"
)

func benchScale() experiments.Scale { return experiments.DefaultScale() }

// geoMean of a map's values.
func geoMean(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(m)))
}

// BenchmarkFig2Clustering reproduces the workload-clustering study:
// PCA+k-means over the seven studied categories, reporting held-out
// window accuracy (paper: ~95%).
func BenchmarkFig2Clustering(b *testing.B) {
	var acc float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		acc = r.Accuracy
	}
	b.ReportMetric(acc*100, "accuracy_%")
}

// BenchmarkFig4CoarsePruning sweeps the 35 numeric parameters for the
// Database workload and reports how many are insensitive (paper: ~12).
func BenchmarkFig4CoarsePruning(b *testing.B) {
	var insensitive int
	for i := 0; i < b.N; i++ {
		e, err := experiments.StudiedEnv(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		r, err := experiments.RunFig45(e, string(workload.Database))
		if err != nil {
			b.Fatal(err)
		}
		insensitive = len(r.Coarse.Insensitive)
	}
	b.ReportMetric(float64(insensitive), "insensitive_params")
}

// BenchmarkFig5FinePruning fits the ridge regression and reports the
// number of parameters surviving the ±0.001 cutoff.
func BenchmarkFig5FinePruning(b *testing.B) {
	var kept int
	var r2 float64
	for i := 0; i < b.N; i++ {
		e, err := experiments.StudiedEnv(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		r, err := experiments.RunFig45(e, string(workload.Database))
		if err != nil {
			b.Fatal(err)
		}
		kept = len(r.Fine.Order)
		r2 = r.Fine.R2
	}
	b.ReportMetric(float64(kept), "kept_params")
	b.ReportMetric(r2, "ridge_r2")
}

// table1 memoizes the big Table 1 matrix run.
func table1(b *testing.B) *experiments.MatrixResult {
	b.Helper()
	m, err := experiments.Matrix(benchScale(), "studied", experiments.StudiedEnv, experiments.Table1Options())
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkTable1LearnedConfigs tunes a configuration per studied
// workload (NVMe MLC vs Intel 750) and reports the geometric-mean
// target-workload latency speedup (paper: 1.25–1.93× per target).
func BenchmarkTable1LearnedConfigs(b *testing.B) {
	var m *experiments.MatrixResult
	for i := 0; i < b.N; i++ {
		m = table1(b)
	}
	diag := map[string]float64{}
	for _, t := range m.Targets {
		diag[t] = m.Runs[t].Lat[t]
	}
	b.ReportMetric(geoMean(diag), "geomean_target_lat_x")
	m.PrintMatrix(io.Discard, "tab1", "")
}

// BenchmarkTable4NewWorkloads repeats the matrix for the six unseen
// workloads of Table 3 (paper: 1.34–1.53× target speedups).
func BenchmarkTable4NewWorkloads(b *testing.B) {
	var m *experiments.MatrixResult
	for i := 0; i < b.N; i++ {
		var err error
		m, err = experiments.Matrix(benchScale(), "new", experiments.NewWorkloadsEnv, experiments.MatrixOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	diag := map[string]float64{}
	for _, t := range m.Targets {
		diag[t] = m.Runs[t].Lat[t]
	}
	b.ReportMetric(geoMean(diag), "geomean_target_lat_x")
}

// BenchmarkTable5CriticalParams renders the learned critical-parameter
// table and reports how many learned configurations differ from the
// reference on at least one Table 5 parameter.
func BenchmarkTable5CriticalParams(b *testing.B) {
	var m *experiments.MatrixResult
	for i := 0; i < b.N; i++ {
		m = table1(b)
	}
	names := []string{"CMTCapacity", "DataCacheSize", "FlashChannelCount", "ChipNoPerChannel",
		"DieNoPerChip", "PlaneNoPerDie", "BlockNoPerPlane", "PageNoPerBlock"}
	differing := 0
	for _, t := range m.Targets {
		for _, n := range names {
			ref, _ := m.Env.Space.ValueByName(m.Env.RefCfg, n)
			got, _ := m.Env.Space.ValueByName(m.Runs[t].Result.Best, n)
			if ref != got {
				differing++
				break
			}
		}
	}
	b.ReportMetric(float64(differing), "configs_differing")
	m.PrintCriticalParams(io.Discard)
}

// BenchmarkTable6Overheads measures the component-time breakdown and
// reports the validation/learning cost ratio (paper: validation dominates
// by >100×).
func BenchmarkTable6Overheads(b *testing.B) {
	var o *experiments.OverheadResult
	for i := 0; i < b.N; i++ {
		e, err := experiments.StudiedEnv(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		o, err = experiments.RunTable6(e)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(o.EfficiencyValidation.Seconds(), "validation_s")
	b.ReportMetric(o.FeatureExtractPer100K.Seconds(), "feature_extract_s")
}

// BenchmarkTable7WhatIf runs the what-if analysis for the four Table 7
// targets and reports how many goals were achieved plus the mean
// iteration count (paper: 121 iterations on average).
func BenchmarkTable7WhatIf(b *testing.B) {
	var runs []experiments.WhatIfRun
	for i := 0; i < b.N; i++ {
		var err error
		runs, _, err = experiments.Table7(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	achieved, iters := 0, 0
	for _, r := range runs {
		if r.Result.Achieved {
			achieved++
		}
		iters += r.Result.Iterations
	}
	b.ReportMetric(float64(achieved), "goals_achieved")
	b.ReportMetric(float64(iters)/float64(len(runs)), "avg_iterations")
}

// BenchmarkTable8SLC repeats Table 1 under an SLC flash constraint with
// the Samsung Z-SSD reference.
func BenchmarkTable8SLC(b *testing.B) {
	var m *experiments.MatrixResult
	for i := 0; i < b.N; i++ {
		var err error
		m, err = experiments.Matrix(benchScale(), "slc", experiments.SLCEnv, experiments.MatrixOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	diag := map[string]float64{}
	for _, t := range m.Targets {
		diag[t] = m.Runs[t].Lat[t]
	}
	b.ReportMetric(geoMean(diag), "geomean_target_lat_x")
}

// BenchmarkTable9SATA repeats Table 1 under a SATA interface constraint
// with the Samsung 850 PRO reference.
func BenchmarkTable9SATA(b *testing.B) {
	var m *experiments.MatrixResult
	for i := 0; i < b.N; i++ {
		var err error
		m, err = experiments.Matrix(benchScale(), "sata", experiments.SATAEnv, experiments.MatrixOptions{})
		if err != nil {
			b.Fatal(err)
		}
	}
	diag := map[string]float64{}
	for _, t := range m.Targets {
		diag[t] = m.Runs[t].Lat[t]
	}
	b.ReportMetric(geoMean(diag), "geomean_target_lat_x")
}

// BenchmarkFig7Energy reports the learned configurations' energy ratio
// vs the baseline (paper: up to 1.16× reduction, at most +5%).
func BenchmarkFig7Energy(b *testing.B) {
	var m *experiments.MatrixResult
	for i := 0; i < b.N; i++ {
		m = table1(b)
	}
	ratios := map[string]float64{}
	for _, t := range m.Targets {
		e := m.Runs[t].Energy[t]
		ratios[t] = e[0] / e[1]
	}
	b.ReportMetric(geoMean(ratios), "geomean_energy_ratio")
	m.PrintEnergy(io.Discard)
}

// BenchmarkFig8LearningTime reports the mean per-target iteration count
// and simulator invocations (paper: 89 iterations, 670.89s validations).
func BenchmarkFig8LearningTime(b *testing.B) {
	var m *experiments.MatrixResult
	for i := 0; i < b.N; i++ {
		m = table1(b)
	}
	var iters, sims int
	for _, t := range m.Targets {
		iters += m.Runs[t].Result.Iterations
		sims += m.Runs[t].Result.SimRuns
	}
	n := float64(len(m.Targets))
	b.ReportMetric(float64(iters)/n, "avg_iterations")
	b.ReportMetric(float64(sims)/n, "avg_simulations")
	m.PrintLearningTime(io.Discard)
}

// ablation memoizes the Fig. 9/10 order-ablation run.
func ablation(b *testing.B) *experiments.MatrixResult {
	b.Helper()
	m, err := experiments.Matrix(benchScale(), "ablate", experiments.StudiedEnv, experiments.MatrixOptions{
		OrderAblation: true,
		Targets:       []string{string(workload.Database), string(workload.KVStore)},
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkFig9TuningOrder compares learning with vs without the §3.3
// enforced tuning order (paper: ordered converges faster/better).
func BenchmarkFig9TuningOrder(b *testing.B) {
	var m *experiments.MatrixResult
	for i := 0; i < b.N; i++ {
		m = ablation(b)
	}
	var orderedG, unorderedG float64
	var n int
	for _, t := range m.Targets {
		r := m.Runs[t]
		if r.NoOrderResult == nil || r.OrderedFresh == nil {
			continue
		}
		orderedG += r.OrderedFresh.BestGrade
		unorderedG += r.NoOrderResult.BestGrade
		n++
	}
	b.ReportMetric(orderedG/float64(n), "ordered_grade")
	b.ReportMetric(unorderedG/float64(n), "unordered_grade")
	m.PrintOrderAblation(io.Discard)
}

// BenchmarkFig10Trajectory reports the final best grade of the ordered
// and unordered Database learning trajectories.
func BenchmarkFig10Trajectory(b *testing.B) {
	var m *experiments.MatrixResult
	for i := 0; i < b.N; i++ {
		m = ablation(b)
	}
	r := m.Runs[string(workload.Database)]
	if r.OrderedFresh != nil && len(r.OrderedFresh.Trajectory) > 0 {
		b.ReportMetric(r.OrderedFresh.Trajectory[len(r.OrderedFresh.Trajectory)-1], "ordered_final_grade")
	}
	if r.NoOrderResult != nil && len(r.NoOrderResult.Trajectory) > 0 {
		b.ReportMetric(r.NoOrderResult.Trajectory[len(r.NoOrderResult.Trajectory)-1], "unordered_final_grade")
	}
}

// BenchmarkFig11AlphaSweep sweeps α and reports the Database latency and
// throughput speedups at α=0.5 (paper: both improve at 0.5).
func BenchmarkFig11AlphaSweep(b *testing.B) {
	var r *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.AlphaSweep(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	mid := indexOf(r.Values, 0.5)
	db := string(workload.Database)
	b.ReportMetric(r.Lat[db][mid], "db_lat_x_at_0.5")
	b.ReportMetric(r.Tput[db][mid], "db_tput_x_at_0.5")
}

// BenchmarkFig12BetaSweep sweeps β and reports target vs non-target
// latency speedups at β=0.1 (the paper's sweet spot).
func BenchmarkFig12BetaSweep(b *testing.B) {
	var r *experiments.SweepResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.BetaSweep(benchScale())
		if err != nil {
			b.Fatal(err)
		}
	}
	mid := indexOf(r.Values, 0.1)
	db := string(workload.Database)
	b.ReportMetric(r.Lat[db][mid], "db_target_lat_x_at_0.1")
	b.ReportMetric(r.NonTarget[db][mid], "db_nontarget_lat_x_at_0.1")
}

func indexOf(xs []float64, v float64) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return 0
}
