// Command autoblox is the end-to-end CLI for the AutoBlox framework:
// learn workload clusters, recommend optimized SSD configurations for a
// trace, run parameter pruning, or perform what-if analysis.
//
// Usage:
//
//	autoblox learn   -db autoblox.db [-requests 20000]
//	autoblox recommend -db autoblox.db -blktrace new.trace [-capacity 512 -iface nvme -flash mlc -power 5]
//	autoblox prune   -db autoblox.db -target Database
//	autoblox whatif  -target WebSearch -latency 3
//	autoblox tune    -db autoblox.db -target Database
//
// With -objectives perf,power,lifetime the tuning subcommands switch
// from the scalar grade to a Pareto-front search over the listed axes
// and print the resulting non-dominated front as a table; -front-json
// additionally writes it as JSON ('-' = stdout).
//
// Every subcommand also accepts the observability flags -metrics <file>,
// -trace <file> (Chrome trace_event JSONL), -pprof <addr>, -progress and
// -http <addr> (live introspection: /metrics, /statusz, /tunez, /eventz,
// /debug/pprof), plus the resilience flags -sim-timeout <dur>, -sim-retries <n>,
// -checkpoint <file> and -resume. With -checkpoint set, Ctrl-C stops the
// search at the next iteration boundary and a rerun with -resume
// continues it bit-identically.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"autoblox"
	"autoblox/internal/cliobs"
	"autoblox/internal/dist"
	"autoblox/internal/ssd"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "learn":
		runLearn(args)
	case "recommend":
		runRecommend(args)
	case "tune":
		runTune(args)
	case "prune":
		runPrune(args)
	case "whatif":
		runWhatIf(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: autoblox <learn|recommend|tune|prune|whatif> [flags]
  learn      train the workload-clustering model on the studied categories
  recommend  cluster a trace and recommend (or learn) an SSD configuration
  tune       learn a configuration for a known workload category
  prune      run coarse+fine parameter pruning for a category
  whatif     search expanded bounds for a performance target`)
	os.Exit(2)
}

// commonFlags registers the flags shared by every subcommand.
type commonFlags struct {
	db         string
	capacity   int
	iface      string
	flash      string
	power      float64
	requests   int
	iters      int
	seed       int64
	parallel   int
	workers    int
	listen     string
	objectives string
	frontJSON  string
	obs        *cliobs.Flags
	res        *cliobs.Resilience
	fleet      *dist.Fleet
	spec       autoblox.ObjectiveSpec
}

func registerCommon(fs *flag.FlagSet) *commonFlags {
	c := &commonFlags{obs: cliobs.Register(fs), res: cliobs.RegisterResilience(fs)}
	fs.StringVar(&c.db, "db", "autoblox.db", "AutoDB path")
	fs.IntVar(&c.capacity, "capacity", 512, "capacity constraint (GB)")
	fs.StringVar(&c.iface, "iface", "nvme", "interface constraint: nvme or sata")
	fs.StringVar(&c.flash, "flash", "mlc", "flash type constraint: slc, mlc or tlc")
	fs.Float64Var(&c.power, "power", 0, "power budget (W, 0 = unlimited)")
	fs.IntVar(&c.requests, "requests", 12000, "synthetic trace length")
	fs.IntVar(&c.iters, "iters", 20, "tuner iterations")
	fs.Int64Var(&c.seed, "seed", 42, "RNG seed")
	fs.IntVar(&c.parallel, "parallel", runtime.GOMAXPROCS(0), "max concurrent validation simulations")
	fs.IntVar(&c.workers, "workers", 0, "in-process fleet: spawn N loopback sim workers (0 = local pool)")
	fs.StringVar(&c.listen, "listen", "", "accept remote autobloxd-worker connections on this address")
	fs.StringVar(&c.objectives, "objectives", "", "objective axes, comma-separated from perf,power,lifetime (empty = scalar grade)")
	fs.StringVar(&c.frontJSON, "front-json", "", "write the Pareto front as JSON to this file ('-' = stdout)")
	return c
}

func (c *commonFlags) constraints() autoblox.Constraints {
	cons := autoblox.DefaultConstraints()
	cons.CapacityBytes = int64(c.capacity) << 30
	switch strings.ToLower(c.iface) {
	case "sata":
		cons.Interface = ssd.SATA
	default:
		cons.Interface = ssd.NVMe
	}
	switch strings.ToLower(c.flash) {
	case "slc":
		cons.Flash = ssd.SLC
	case "tlc":
		cons.Flash = ssd.TLC
	default:
		cons.Flash = ssd.MLC
	}
	cons.PowerBudgetWatts = c.power
	return cons
}

// setupObs activates the observability flags, exiting on error.
func (c *commonFlags) setupObs() func() {
	cleanup, err := c.obs.Setup(c.iters)
	if err != nil {
		fatal(err)
	}
	return cleanup
}

// framework builds the Framework; call after setupObs so the metrics
// registry (when requested) is attached to the validator. With -workers
// or -listen set it also starts the validation fleet and routes every
// simulation through it.
func (c *commonFlags) framework(whatIf bool) *autoblox.Framework {
	spec, err := autoblox.ParseObjectives(c.objectives)
	if err != nil {
		fatal(fmt.Errorf("-objectives: %w", err))
	}
	c.spec = spec
	opts := autoblox.Options{
		DBPath: c.db, Seed: c.seed, WhatIfSpace: whatIf, Parallel: c.parallel,
		Metrics:    c.obs.Reg,
		Tuner:      autoblox.TunerOptions{MaxIterations: c.iters},
		SimTimeout: c.res.SimTimeout, SimRetries: c.res.SimRetries,
		Checkpoint: c.res.Checkpoint, Resume: c.res.Resume,
		Objectives: spec,
		CacheDir:   c.res.CacheDir,
	}
	if c.workers > 0 || c.listen != "" {
		c.startFleet(whatIf)
		opts.Backend = c.fleet.Backend()
	}
	fw, err := autoblox.New(c.constraints(), opts)
	if err != nil {
		fatal(err)
	}
	return fw
}

// startFleet builds the distributable measurement environment — the
// studied synthetic categories at the run's -requests/-seed — and
// starts the coordinator plus any loopback workers. Freshly clustered
// blktrace workloads are not distributable (remote workers cannot
// regenerate them from a seed), so recommending for a brand-new trace
// category fails worker-side with an unknown-cluster error; use the
// local pool for that.
func (c *commonFlags) startFleet(whatIf bool) {
	specs := make(map[string][]dist.WorkloadSpec)
	for _, cat := range workload.Studied() {
		specs[string(cat)] = []dist.WorkloadSpec{{Category: string(cat), Requests: c.requests, Seed: c.seed}}
	}
	env, err := dist.NewEnv(c.constraints(), whatIf, ssd.FaultProfile{}, specs)
	if err != nil {
		fatal(err)
	}
	if !c.spec.Scalar() {
		// Ship the objective spec with the env so workers whose binaries
		// reconstruct a different axis set are rejected at handshake.
		env.SetObjectives(c.spec)
	}
	c.fleet, err = dist.StartFleet(env, dist.FleetOptions{
		Workers: c.workers, Listen: c.listen,
		WorkerParallel: c.parallel,
		SimTimeout:     c.res.SimTimeout, MaxRetries: c.res.SimRetries,
		Obs: c.obs.Reg,
	})
	if err != nil {
		fatal(err)
	}
	fleet := c.fleet
	c.obs.SetStatus(func() any { return fleet.Status() })
	if c.listen != "" {
		fmt.Fprintf(os.Stderr, "autoblox: accepting workers on %s\n", c.fleet.Addr())
	}
}

// closeFleet shuts the fleet down (nil-safe; deferred by subcommands).
func (c *commonFlags) closeFleet() {
	if c.fleet != nil {
		c.fleet.Close()
	}
}

// learnStudied trains on the seven studied categories. Streaming
// factories keep the training traces lazy: every sweep re-derives its
// requests from the seed instead of holding seven traces in memory.
func learnStudied(fw *autoblox.Framework, c *commonFlags) {
	var factories []autoblox.SourceFactory
	for _, cat := range workload.Studied() {
		f, err := workload.Factory(cat, workload.Options{Requests: c.requests, Seed: c.seed})
		if err != nil {
			fatal(err)
		}
		factories = append(factories, f)
	}
	if err := fw.LearnWorkloadSources(factories); err != nil {
		fatal(err)
	}
}

func runLearn(args []string) {
	fs := flag.NewFlagSet("learn", flag.ExitOnError)
	c := registerCommon(fs)
	fs.Parse(args)
	defer c.setupObs()()
	fw := c.framework(false)
	defer fw.Close()
	defer c.closeFleet()
	learnStudied(fw, c)
	fmt.Printf("learned %d workload clusters into %s: %v\n",
		len(fw.Workloads()), c.db, fw.Workloads())
}

func runRecommend(args []string) {
	fs := flag.NewFlagSet("recommend", flag.ExitOnError)
	c := registerCommon(fs)
	tracePath := fs.String("blktrace", "", "blktrace file to recommend for ('-' = stdin)")
	cat := fs.String("workload", "", "or: synthesize this workload category")
	fs.Parse(args)

	defer c.setupObs()()
	fw := c.framework(false)
	defer fw.Close()
	defer c.closeFleet()
	learnStudied(fw, c)
	fw.SetProgress(c.obs.Tune.Update)
	fw.SetFrontProgress(c.obs.Tune.UpdateFront)
	fw.SetCheckpointHook(c.obs.Tune.MarkCheckpoint)

	var tr *autoblox.Trace
	var err error
	switch {
	case *cat != "":
		tr = workload.MustGenerate(workload.Category(*cat), workload.Options{Requests: c.requests, Seed: c.seed + 1})
	case *tracePath == "-":
		tr, err = trace.ParseBlktrace(os.Stdin)
	case *tracePath != "":
		var f *os.File
		if f, err = os.Open(*tracePath); err == nil {
			defer f.Close()
			tr, err = trace.ParseBlktrace(f)
		}
	default:
		fatal(fmt.Errorf("recommend: need -blktrace or -workload"))
	}
	if err != nil {
		fatal(err)
	}

	ctx, stop := cliobs.SignalContext()
	defer stop()
	t0 := time.Now()
	rec, err := fw.RecommendContext(ctx, tr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cluster: %s (distance %.2f, new=%v)\n", rec.Assignment.Label, rec.Assignment.Distance, rec.Assignment.IsNew)
	if rec.FromCache {
		fmt.Println("served from AutoDB (previously learned)")
	} else {
		fmt.Printf("learned in %v, %d iterations, %d simulations\n",
			time.Since(t0).Round(time.Millisecond), rec.Tune.Iterations, rec.Tune.SimRuns)
	}
	fmt.Printf("grade: %.4f\nconfig: %s\n", rec.Grade, fw.DescribeConfig(rec.Config))
	printFront(c, fw, rec.Tune.Front, rec.Tune.Hypervolume)
}

func runTune(args []string) {
	fs := flag.NewFlagSet("tune", flag.ExitOnError)
	c := registerCommon(fs)
	target := fs.String("target", "Database", "target workload category")
	verbose := fs.Bool("v", false, "print per-iteration progress")
	fs.Parse(args)

	defer c.setupObs()()
	fw := c.framework(false)
	defer fw.Close()
	defer c.closeFleet()
	learnStudied(fw, c)
	c.obs.Tune.Begin(*target, c.iters)
	fw.SetCheckpointHook(c.obs.Tune.MarkCheckpoint)
	fw.SetFrontProgress(c.obs.Tune.UpdateFront)
	fw.SetProgress(func(iter int, best float64) {
		c.obs.Tune.Update(iter, best)
		if *verbose {
			fmt.Fprintf(os.Stderr, "  iteration %3d: best grade %.4f\n", iter+1, best)
		}
	})
	ctx, stop := cliobs.SignalContext()
	defer stop()
	res, err := fw.TuneContext(ctx, *target)
	if errors.Is(err, autoblox.ErrInterrupted) && c.res.Checkpoint != "" {
		fmt.Fprintf(os.Stderr, "autoblox: %v\nautoblox: checkpoint saved; rerun with -resume to continue\n", err)
		os.Exit(1)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("target %s: grade %.4f after %d iterations (%d sims, %v, converged=%v)\n",
		*target, res.BestGrade, res.Iterations, res.SimRuns,
		res.Elapsed.Round(time.Millisecond), res.Converged)
	fmt.Println("config:", fw.DescribeConfig(res.Best))
	printFront(c, fw, res.Front, res.Hypervolume)
}

func runPrune(args []string) {
	fs := flag.NewFlagSet("prune", flag.ExitOnError)
	c := registerCommon(fs)
	target := fs.String("target", "Database", "target workload category")
	fs.Parse(args)

	defer c.setupObs()()
	fw := c.framework(false)
	defer fw.Close()
	defer c.closeFleet()
	learnStudied(fw, c)
	ctx, stop := cliobs.SignalContext()
	defer stop()
	coarse, fine, err := fw.PruneContext(ctx, *target, autoblox.PruneOptions{Seed: c.seed})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("coarse pruning: %d insensitive parameters: %v\n",
		len(coarse.Insensitive), coarse.Insensitive)
	fmt.Printf("fine pruning: pruned %v\n", fine.Pruned)
	fmt.Printf("tuning order: %v\n", fine.Order)
}

func runWhatIf(args []string) {
	fs := flag.NewFlagSet("whatif", flag.ExitOnError)
	c := registerCommon(fs)
	target := fs.String("target", "WebSearch", "target workload category")
	latGoal := fs.Float64("latency", 0, "latency-reduction goal (e.g. 3 = 3x)")
	tputGoal := fs.Float64("throughput", 0, "throughput-gain goal (e.g. 3 = 3x)")
	fs.Parse(args)

	defer c.setupObs()()
	fw := c.framework(true)
	defer fw.Close()
	defer c.closeFleet()
	learnStudied(fw, c)
	c.obs.Tune.Begin(*target, c.iters)
	fw.SetProgress(c.obs.Tune.Update)
	fw.SetFrontProgress(c.obs.Tune.UpdateFront)
	fw.SetCheckpointHook(c.obs.Tune.MarkCheckpoint)
	ctx, stop := cliobs.SignalContext()
	defer stop()
	res, err := fw.WhatIfContext(ctx, autoblox.WhatIfGoal{
		Target: *target, LatencyReduction: *latGoal, ThroughputGain: *tputGoal,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("goal achieved: %v (latency %.2fx, throughput %.2fx) in %d iterations\n",
		res.Achieved, res.LatencySpeedup, res.ThroughputSpeedup, res.Iterations)
	for name, v := range res.CriticalParams {
		fmt.Printf("  %-22s %g\n", name, v)
	}
	printFront(c, fw, res.Front, res.Hypervolume)
}

// printFront renders a Pareto front as a table (one row per
// non-dominated configuration, trade-off axes first, then the full
// config description) and, when requested, as JSON.
func printFront(c *commonFlags, fw *autoblox.Framework, front []autoblox.FrontPoint, hv float64) {
	if len(front) == 0 {
		return
	}
	fmt.Printf("pareto front (%s): %d configurations, hypervolume %.3f\n",
		c.spec, len(front), hv)
	fmt.Printf("  %3s  %8s  %9s  %12s  %7s  %7s\n", "#", "grade", "power(W)", "lifetime", "lat", "tput")
	for i, p := range front {
		fmt.Printf("  %3d  %8.4f  %9.3f  %12s  %6.2fx  %6.2fx\n",
			i+1, p.Grade, p.PowerWatts, lifetimeString(p.LifetimeNS),
			p.LatencySpeedup, p.ThroughputSpeedup)
		fmt.Printf("       %s\n", fw.DescribeConfig(p.Cfg))
	}
	if c.frontJSON != "" {
		writeFrontJSON(c.frontJSON, c.spec, front, hv)
	}
}

// lifetimeString renders the lifetime axis for humans; 0 means the run
// observed no wear at all.
func lifetimeString(ns int64) string {
	if ns <= 0 {
		return "unbounded"
	}
	return fmt.Sprintf("%.1fd", float64(ns)/float64(24*time.Hour))
}

// writeFrontJSON emits the front in machine-readable form ('-' =
// stdout).
func writeFrontJSON(path string, spec autoblox.ObjectiveSpec, front []autoblox.FrontPoint, hv float64) {
	report := struct {
		Objectives  string                `json:"objectives"`
		Hypervolume float64               `json:"hypervolume"`
		Front       []autoblox.FrontPoint `json:"front"`
	}{spec.String(), hv, front}
	b, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	b = append(b, '\n')
	if path == "-" {
		os.Stdout.Write(b)
		return
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "autoblox:", err)
	os.Exit(1)
}
