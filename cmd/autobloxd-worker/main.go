// Command autobloxd-worker joins a distributed validation fleet: it
// dials a coordinator (an autoblox or experiments run started with
// -listen), reconstructs the measurement environment from the
// handshake, and serves leased simulation batches until the coordinator
// closes.
//
// Usage:
//
//	autobloxd-worker -connect host:6901 [-name w1] [-parallel N] [-batch N]
//
// The worker refuses to serve when its locally derived parameter space
// fingerprint disagrees with the coordinator's (stale binary), so a
// mixed-version fleet can never corrupt a tuning run. The observability
// flags -metrics/-trace/-pprof/-http and the resilience flags
// -sim-timeout/-sim-retries are also accepted. With -metrics or -http
// set, the worker also pushes delta-encoded metric snapshots to the
// coordinator after each result batch, where they aggregate into the
// fleet registry under this worker's name.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"

	"autoblox/internal/cliobs"
	"autoblox/internal/dist"
)

func main() {
	connect := flag.String("connect", "", "coordinator address (host:port) to pull work from")
	name := flag.String("name", "", "worker name reported to the coordinator (default <hostname>/<pid>)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations on this worker")
	batch := flag.Int("batch", 8, "max leases pulled per request")
	obsFlags := cliobs.Register(flag.CommandLine)
	resFlags := cliobs.RegisterResilience(flag.CommandLine)
	flag.Parse()
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "usage: autobloxd-worker -connect host:port [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cleanup, err := obsFlags.Setup(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autobloxd-worker:", err)
		os.Exit(1)
	}
	defer cleanup()

	ctx, stop := cliobs.SignalContext()
	defer stop()

	w := &dist.Worker{
		Name:       *name,
		Parallel:   *parallel,
		BatchSize:  *batch,
		SimTimeout: resFlags.SimTimeout,
		MaxRetries: resFlags.SimRetries,
		Obs:        obsFlags.Reg,
		// A remote worker owns its registry, so pushing delta snapshots
		// to the coordinator's fleet registry is safe and on by default.
		PushStats: obsFlags.Reg != nil,
	}
	err = w.Run(ctx, *connect)
	switch {
	case err == nil:
		fmt.Printf("coordinator closed; measured %d jobs in %v\n", w.Jobs(), w.Busy().Round(0))
	case errors.Is(err, dist.ErrSpaceMismatch):
		fmt.Fprintln(os.Stderr, "autobloxd-worker: rejected:", err)
		fmt.Fprintln(os.Stderr, "hint: worker and coordinator binaries derive different parameter spaces; rebuild both from the same source")
		os.Exit(1)
	case errors.Is(err, dist.ErrVersionMismatch):
		fmt.Fprintln(os.Stderr, "autobloxd-worker: rejected:", err)
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "autobloxd-worker:", err)
		os.Exit(1)
	}
}
