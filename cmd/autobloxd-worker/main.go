// Command autobloxd-worker joins a distributed validation fleet: it
// dials a coordinator (an autoblox or experiments run started with
// -listen), reconstructs the measurement environment from the
// handshake, and serves leased simulation batches until the coordinator
// closes.
//
// Usage:
//
//	autobloxd-worker -connect host:6901 [-name w1] [-parallel N] [-batch N]
//
// The worker refuses to serve when its locally derived parameter space
// fingerprint disagrees with the coordinator's (stale binary), so a
// mixed-version fleet can never corrupt a tuning run. The observability
// flags -metrics/-trace/-pprof/-http and the resilience flags
// -sim-timeout/-sim-retries/-cache-dir are also accepted. With -metrics
// or -http set, the worker also pushes delta-encoded metric snapshots
// to the coordinator after each result batch, where they aggregate into
// the fleet registry under this worker's name.
//
// With -reconnect the worker survives coordinator restarts and network
// partitions: on any transport failure it redials with jittered
// exponential backoff (up to -max-backoff) and resumes via a fresh
// handshake, reusing its simulation environment when the space is
// unchanged. With -grace > 0, SIGTERM/SIGINT drains instead of
// aborting: in-flight batches finish, final stats are pushed, and a
// goodbye frame tells the coordinator the departure is deliberate.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"autoblox/internal/cliobs"
	"autoblox/internal/dist"
)

func main() {
	connect := flag.String("connect", "", "coordinator address (host:port) to pull work from")
	name := flag.String("name", "", "worker name reported to the coordinator (default <hostname>/<pid>)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent simulations on this worker")
	batch := flag.Int("batch", 8, "max leases pulled per request")
	reconnect := flag.Bool("reconnect", false, "redial the coordinator after transport failures (jittered exponential backoff)")
	maxBackoff := flag.Duration("max-backoff", 5*time.Second, "reconnect backoff ceiling")
	grace := flag.Duration("grace", 0, "graceful shutdown window: finish in-flight work after SIGTERM before disconnecting (0 = abort immediately)")
	obsFlags := cliobs.Register(flag.CommandLine)
	resFlags := cliobs.RegisterResilience(flag.CommandLine)
	flag.Parse()
	if *connect == "" {
		fmt.Fprintln(os.Stderr, "usage: autobloxd-worker -connect host:port [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	cleanup, err := obsFlags.Setup(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autobloxd-worker:", err)
		os.Exit(1)
	}
	defer cleanup()

	persist, err := resFlags.OpenPersistentCache(obsFlags.Reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "autobloxd-worker:", err)
		os.Exit(1)
	}
	if persist != nil {
		defer persist.Close()
	}

	ctx, stop := cliobs.SignalContext()
	defer stop()

	w := &dist.Worker{
		Name:         *name,
		Parallel:     *parallel,
		BatchSize:    *batch,
		SimTimeout:   resFlags.SimTimeout,
		MaxRetries:   resFlags.SimRetries,
		Obs:          obsFlags.Reg,
		Persist:      persist,
		Grace:        *grace,
		ReconnectMax: *maxBackoff,
		// A remote worker owns its registry, so pushing delta snapshots
		// to the coordinator's fleet registry is safe and on by default.
		PushStats: obsFlags.Reg != nil,
	}
	if *reconnect {
		err = w.RunReconnect(ctx, *connect)
	} else {
		err = w.Run(ctx, *connect)
	}
	switch {
	case err == nil:
		fmt.Printf("coordinator closed; measured %d jobs in %v\n", w.Jobs(), w.Busy().Round(0))
	case errors.Is(err, dist.ErrDrained):
		fmt.Printf("drained after shutdown signal; measured %d jobs in %v\n", w.Jobs(), w.Busy().Round(0))
	case errors.Is(err, dist.ErrSpaceMismatch):
		fmt.Fprintln(os.Stderr, "autobloxd-worker: rejected:", err)
		fmt.Fprintln(os.Stderr, "hint: worker and coordinator binaries derive different parameter spaces; rebuild both from the same source")
		os.Exit(1)
	case errors.Is(err, dist.ErrVersionMismatch):
		fmt.Fprintln(os.Stderr, "autobloxd-worker: rejected:", err)
		os.Exit(1)
	default:
		fmt.Fprintln(os.Stderr, "autobloxd-worker:", err)
		os.Exit(1)
	}
}
