// Command benchjson converts `go test -bench` output on stdin into a
// structured JSON report on stdout:
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH_1.json
//
// CI uses it to publish benchmark numbers as a machine-readable
// artifact.
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"autoblox/internal/benchparse"
)

func main() {
	rep, err := benchparse.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
