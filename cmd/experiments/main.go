// Command experiments regenerates the paper's tables and figures on the
// Go reproduction.
//
// Usage:
//
//	experiments [-scale default|paper] [-requests N] [-iters N] [-seed N] [-only id1,id2,...]
//
// Experiment ids: fig2 fig4 fig5 tab1 tab4 tab5 tab6 tab7 tab8 tab9
// fig7 fig8 fig9 fig10 fig11 fig12.
//
// The observability flags -metrics <file>, -trace <file> (Chrome
// trace_event JSONL), -pprof <addr> and -progress are also accepted,
// plus the resilience flags -sim-timeout, -sim-retries, -checkpoint and
// -resume (checkpoints are written per tuning target by suffixing the
// target name).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"autoblox/internal/cliobs"
	"autoblox/internal/dist"
	"autoblox/internal/experiments"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/workload"
)

func main() {
	scaleName := flag.String("scale", "default", "experiment scale: default or paper")
	requests := flag.Int("requests", 0, "override trace length (requests per workload)")
	iters := flag.Int("iters", 0, "override tuner max iterations")
	seed := flag.Int64("seed", 0, "override RNG seed")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "max concurrent validation simulations")
	workers := flag.Int("workers", 0, "in-process fleet: spawn N loopback sim workers (0 = local pool)")
	listen := flag.String("listen", "", "accept remote autobloxd-worker connections on this address")
	objectives := flag.String("objectives", "", "objective axes, comma-separated from perf,power,lifetime (empty = scalar grade)")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	csvDir := flag.String("csv", "", "also export artifact data as CSV into this directory")
	list := flag.Bool("list", false, "list experiment ids and exit")
	obsFlags := cliobs.Register(flag.CommandLine)
	resFlags := cliobs.RegisterResilience(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), " "))
		return
	}

	scale := experiments.DefaultScale()
	if *scaleName == "paper" {
		scale = experiments.PaperScale()
	}
	if *requests > 0 {
		scale.Requests = *requests
	}
	if *iters > 0 {
		scale.MaxIterations = *iters
	}
	if *seed != 0 {
		scale.Seed = *seed
	}
	spec, err := ssdconf.ParseObjectiveSpec(*objectives)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments: -objectives:", err)
		os.Exit(1)
	}
	scale.Objectives = spec
	scale.Parallel = *parallel
	scale.SimTimeout = resFlags.SimTimeout
	scale.SimRetries = resFlags.SimRetries
	scale.Checkpoint = resFlags.Checkpoint
	scale.Resume = resFlags.Resume
	ctx, stop := cliobs.SignalContext()
	defer stop()
	scale.Ctx = ctx

	cleanup, err := obsFlags.Setup(0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	defer cleanup()
	scale.Obs = obsFlags.Reg

	persist, err := resFlags.OpenPersistentCache(obsFlags.Reg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	if persist != nil {
		defer persist.Close()
		scale.Persist = persist
	}

	if *workers > 0 || *listen != "" {
		// The fleet environment spans every built-in category under the
		// default constraints; experiment envs with other constraint sets
		// or what-if bounds fall back to the local pool automatically.
		specs := make(map[string][]dist.WorkloadSpec)
		for _, cat := range workload.All() {
			specs[string(cat)] = []dist.WorkloadSpec{{Category: string(cat), Requests: scale.Requests, Seed: scale.Seed}}
		}
		env, err := dist.NewEnv(ssdconf.DefaultConstraints(), false, ssd.FaultProfile{}, specs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if !spec.Scalar() {
			env.SetObjectives(spec)
		}
		fleet, err := dist.StartFleet(env, dist.FleetOptions{
			Workers: *workers, Listen: *listen,
			WorkerParallel: *parallel,
			SimTimeout:     resFlags.SimTimeout, MaxRetries: resFlags.SimRetries,
			Obs: obsFlags.Reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer fleet.Close()
		obsFlags.SetStatus(func() any { return fleet.Status() })
		if *listen != "" {
			fmt.Fprintf(os.Stderr, "experiments: accepting workers on %s\n", fleet.Addr())
		}
		scale.Backend = fleet.Backend()
		scale.BackendEnv = env
	}

	filter := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			filter[strings.TrimSpace(id)] = true
		}
	}

	if err := experiments.RunAllCSV(os.Stdout, scale, filter, *csvDir); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}
