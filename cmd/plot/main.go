// Command plot turns the CSV exports of cmd/experiments into SVG
// figures:
//
//	go run ./cmd/experiments -csv out/
//	go run ./cmd/plot -csv out/ -o out/
//
// It recognizes fig2_scatter.csv, fig11_alpha.csv / fig12_beta.csv,
// tab*_energy.csv and tab*_learning.csv and skips files that are absent.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"autoblox/internal/plot"
)

func main() {
	csvDir := flag.String("csv", ".", "directory holding the experiment CSV exports")
	outDir := flag.String("o", "", "output directory for SVGs (default: same as -csv)")
	flag.Parse()
	if *outDir == "" {
		*outDir = *csvDir
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fatal(err)
	}

	made := 0
	if rows, ok := load(*csvDir, "fig2_scatter"); ok {
		var pts []plot.Point
		for _, r := range rows {
			pts = append(pts, plot.Point{Series: r[0], X: f(r[1]), Y: f(r[2])})
		}
		write(*outDir, "fig2_scatter", plot.Scatter("Workload clustering (PCA)", "PC1", "PC2", pts))
		made++
	}
	for _, sweep := range []struct{ file, param, title string }{
		{"fig11_alpha", "alpha", "Impact of α on the target workload"},
		{"fig12_beta", "beta", "Impact of β: target vs non-target"},
	} {
		rows, ok := load(*csvDir, sweep.file)
		if !ok {
			continue
		}
		// Columns: workload, value, lat, tput, nontarget-lat.
		series := map[string]*plot.Series{}
		var order []string
		for _, r := range rows {
			key := r[0] + " lat"
			if _, okk := series[key]; !okk {
				series[key] = &plot.Series{Name: key}
				order = append(order, key)
			}
			s := series[key]
			s.X = append(s.X, f(r[1]))
			s.Y = append(s.Y, f(r[2]))
		}
		var list []plot.Series
		for _, k := range order {
			list = append(list, *series[k])
		}
		write(*outDir, sweep.file, plot.Lines(sweep.title, sweep.param, "latency speedup (x)", list))
		made++
	}
	for _, tab := range []string{"tab1", "tab4", "tab8", "tab9"} {
		if rows, ok := load(*csvDir, tab+"_energy"); ok {
			var labels []string
			baseline := plot.Series{Name: "baseline"}
			learned := plot.Series{Name: "learned"}
			for _, r := range rows {
				labels = append(labels, r[0])
				baseline.Y = append(baseline.Y, f(r[1]))
				learned.Y = append(learned.Y, f(r[2]))
			}
			write(*outDir, tab+"_energy", plot.Bars("Energy: baseline vs learned ("+tab+")",
				"joules", labels, []plot.Series{baseline, learned}))
			made++
		}
		if rows, ok := load(*csvDir, tab+"_learning"); ok {
			var labels []string
			iters := plot.Series{Name: "iterations"}
			for _, r := range rows {
				labels = append(labels, r[0])
				iters.Y = append(iters.Y, f(r[2]))
			}
			write(*outDir, tab+"_learning", plot.Bars("Learning iterations per target ("+tab+")",
				"iterations", labels, []plot.Series{iters}))
			made++
		}
	}
	if made == 0 {
		fmt.Fprintln(os.Stderr, "plot: no recognized CSV files in", *csvDir)
		os.Exit(1)
	}
	fmt.Printf("plot: wrote %d SVG(s) to %s\n", made, *outDir)
}

// load reads dir/name.csv, dropping the header; ok is false when absent.
func load(dir, name string) ([][]string, bool) {
	fh, err := os.Open(filepath.Join(dir, name+".csv"))
	if err != nil {
		return nil, false
	}
	defer fh.Close()
	rows, err := csv.NewReader(fh).ReadAll()
	if err != nil || len(rows) < 2 {
		return nil, false
	}
	return rows[1:], true
}

func write(dir, name string, svg []byte) {
	if err := os.WriteFile(filepath.Join(dir, name+".svg"), svg, 0o644); err != nil {
		fatal(err)
	}
}

func f(s string) float64 {
	v, _ := strconv.ParseFloat(strings.TrimSpace(s), 64)
	return v
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plot:", err)
	os.Exit(1)
}
