// Command ssdsim runs a block I/O trace against an SSD configuration on
// the discrete-event simulator and prints the measured performance and
// energy.
//
// Blktrace files stream through the simulator in constant memory, so
// arbitrarily large traces replay without being loaded into RAM:
//
//	ssdsim -config intel750 -trace db.trace
//	tracegen -workload WebSearch | ssdsim -config zssd -trace -
//	ssdsim -config 850pro -workload Database -requests 20000
//	ssdsim -config intel750 -trace huge-100GB.trace          # constant memory
//	ssdsim -config intel750 -trace unsorted.trace -materialize
//	ssdsim -config intel750 -workload Database -faultrate 0.001 -faultdies 1
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registered on the default mux served by -pprof
	"os"
	"path/filepath"
	"strings"
	"time"

	"autoblox/internal/cliobs"
	"autoblox/internal/obs"
	"autoblox/internal/ssd"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

func main() {
	config := flag.String("config", "intel750", "device config: intel750, 850pro, zssd, default, or a JSON file path")
	tracePath := flag.String("trace", "", "trace file ('-' = stdin)")
	format := flag.String("format", "blktrace", "trace format: blktrace or msr")
	cat := flag.String("workload", "", "generate a synthetic workload instead of reading a trace")
	requests := flag.Int("requests", 20000, "requests when generating a workload")
	seed := flag.Int64("seed", 42, "generator seed")
	channels := flag.Int("channels", 0, "override channel count")
	cacheMB := flag.Int("cache", 0, "override data cache size (MB)")
	qd := flag.Int("qd", 0, "override queue depth")
	gcPolicy := flag.String("gc", "", "override GC victim policy: "+ssd.DescribeGCPolicies())
	cachePolicy := flag.String("cachepolicy", "", "override cache replacement policy: "+ssd.DescribeCachePolicies())
	alloc := flag.String("alloc", "", "override plane allocation scheme: "+strings.Join(ssd.AllocSchemeNames(), ", "))
	iface := flag.String("iface", "", "override host interface model: "+ssd.DescribeHostIfcs())
	zoneMB := flag.Int("zones", 0, "override ZNS zone size (MB)")
	openZones := flag.Int("openzones", 0, "override ZNS max open zones")
	streams := flag.Int("streams", 0, "override multi-stream write stream count")
	trimRatio := flag.Float64("trim", 0, "fraction of generated writes emitted as TRIMs (with -workload)")
	genStreams := flag.Int("tagstreams", 0, "stamp generated requests with stream tags 1..N (with -workload)")
	faultRate := flag.Float64("faultrate", 0, "per-operation fault probability for program/erase/read (0 = no injection)")
	faultSeed := flag.Int64("faultseed", 1, "seed of the private fault RNG stream")
	faultDies := flag.Int("faultdies", 0, "fail this many whole dies at initialization")
	jsonOut := flag.Bool("json", false, "print the report as JSON instead of text")
	metrics := flag.String("metrics", "", "write simulator metrics to this file (.json = JSON snapshot, else Prometheus text)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	materialize := flag.Bool("materialize", false, "buffer the whole trace in memory and sort arrivals (needed for unsorted blktrace files)")
	flag.Parse()

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "ssdsim: pprof:", err)
			}
		}()
	}

	var dev ssd.DeviceParams
	switch strings.ToLower(*config) {
	case "intel750":
		dev = ssd.Intel750()
	case "850pro":
		dev = ssd.Samsung850Pro()
	case "zssd":
		dev = ssd.SamsungZSSD()
	case "default":
		dev = ssd.DefaultParams()
	default:
		var err error
		dev, err = ssd.LoadParams(*config)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ssdsim: %v (not a known name or a readable device JSON)\n", err)
			os.Exit(2)
		}
	}
	if *channels > 0 {
		dev.Channels = *channels
	}
	if *cacheMB > 0 {
		dev.DataCacheBytes = int64(*cacheMB) << 20
	}
	if *qd > 0 {
		dev.QueueDepth = *qd
	}
	if *gcPolicy != "" {
		pol, err := ssd.ParseGCPolicy(*gcPolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssdsim:", err)
			os.Exit(2)
		}
		dev.GCPolicy = pol
	}
	if *cachePolicy != "" {
		pol, err := ssd.ParseCachePolicy(*cachePolicy)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssdsim:", err)
			os.Exit(2)
		}
		dev.CachePolicy = pol
	}
	if *alloc != "" {
		scheme, err := ssd.ParseAllocScheme(*alloc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssdsim:", err)
			os.Exit(2)
		}
		dev.PlaneAllocScheme = scheme
	}
	if *iface != "" {
		m, err := ssd.ParseHostIfc(*iface)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ssdsim:", err)
			os.Exit(2)
		}
		dev.HostIfcModel = m
	}
	if *zoneMB > 0 {
		dev.ZoneSizeMB = *zoneMB
	}
	if *openZones > 0 {
		dev.MaxOpenZones = *openZones
	}
	if *streams > 0 {
		dev.WriteStreams = *streams
	}
	if *faultRate > 0 || *faultDies > 0 {
		dev.Faults = ssd.FaultProfile{Rate: *faultRate, Seed: *faultSeed, DieFailures: *faultDies}
	}

	var src trace.Source
	var err error
	cleanup := func() {}
	switch {
	case *cat != "":
		src, err = workload.NewSource(workload.Category(*cat), workload.Options{
			Requests: *requests, Seed: *seed, TrimRatio: *trimRatio, Streams: *genStreams,
		})
	case *tracePath != "":
		src, cleanup, err = openTraceSource(*tracePath, *format, *materialize)
	default:
		fmt.Fprintln(os.Stderr, "ssdsim: need -trace or -workload")
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdsim:", err)
		os.Exit(1)
	}
	defer cleanup()

	sim, err := ssd.NewSimulator(dev)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdsim:", err)
		os.Exit(1)
	}
	var reg *obs.Registry
	if *metrics != "" {
		reg = obs.NewRegistry()
		sim.Obs = reg
	}
	res, err := sim.RunSource(src)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdsim:", err)
		os.Exit(1)
	}
	if reg != nil {
		cliobs.WriteMetrics(reg, *metrics)
	}
	if *jsonOut {
		printJSONReport(dev, res)
		return
	}

	fmt.Printf("device:   %s, %dch x %dchip x %ddie x %dplane, %s page %dB, cache %dMB, CMT %dMB, QD %d\n",
		dev.HostInterface, dev.Channels, dev.ChipsPerChannel, dev.DiesPerChip, dev.PlanesPerDie,
		dev.FlashType, dev.PageSizeBytes, dev.DataCacheBytes>>20, dev.CMTBytes>>20, dev.QueueDepth)
	fmt.Printf("policies: gc %s, cache %s, alloc %s, iface %s\n",
		dev.GCPolicy, dev.CachePolicy, dev.PlaneAllocScheme, dev.HostIfcModel)
	fmt.Printf("capacity: %.1f GB raw / %.1f GB usable\n",
		float64(dev.CapacityBytes())/1e9, float64(dev.UsableBytes())/1e9)
	fmt.Printf("requests: %d over %v\n", res.Requests, res.Makespan.Round(time.Millisecond))
	fmt.Printf("latency:  avg %v  p50 %v  p95 %v  p99 %v  p99.9 %v\n",
		res.AvgLatency.Round(time.Microsecond), res.P50Latency.Round(time.Microsecond),
		res.P95Latency.Round(time.Microsecond), res.P99Latency.Round(time.Microsecond),
		res.P999Latency.Round(time.Microsecond))
	fmt.Printf("tput:     %.1f MB/s (%.0f IOPS)\n", res.ThroughputBps/1e6, res.IOPS)
	fmt.Printf("energy:   %.3f J (%.2f W avg)\n", res.EnergyJoules, res.AvgPowerWatts)
	fmt.Printf("flash:    %d reads, %d programs, %d erases, WA %.2f, %d GC runs\n",
		res.UserReads, res.UserPrograms, res.Erases, res.WriteAmplification, res.GCRuns)
	fmt.Printf("caches:   data %.1f%% hit, CMT %.1f%% hit\n",
		hitPct(res.CacheHits, res.CacheMisses), hitPct(res.CMTHits, res.CMTMisses))
	fmt.Printf("channels: %.1f%% utilized\n", res.ChannelUtilization*100)
	if res.UserTrims > 0 || dev.HostIfcModel != ssd.IfcConventional {
		fmt.Printf("hostifc:  %d trims (%d pages invalidated), %d WP violations, %d zone resets\n",
			res.UserTrims, res.TrimmedPages, res.WPViolations, res.ZoneResets)
	}
	if dev.Faults.Enabled() {
		fmt.Printf("faults:   %d program / %d erase failures, %d read retries (%d ECC soft decodes), %d blocks retired (%d factory-bad)\n",
			res.ProgramFailures, res.EraseFailures, res.ReadRetries, res.ECCSoftDecodes,
			res.RetiredBlocks, res.FactoryBadBlocks)
	}
	lifetime := "unbounded"
	if res.Wear.MaxEraseCount > 0 {
		lifetime = res.Wear.ProjectedLifetime.Round(time.Hour).String()
	}
	fmt.Printf("wear:     max %d / mean %.1f erases (imbalance %.2f), P/E limit %d, projected lifetime %s\n",
		res.Wear.MaxEraseCount, res.Wear.MeanEraseCount, res.Wear.Imbalance,
		res.Wear.PECycleLimit, lifetime)
}

// jsonReport is the machine-readable ssdsim report: the fields tuning
// and fleet tooling consume, including the power and wear axes the
// multi-objective tuner optimizes.
type jsonReport struct {
	Device struct {
		Interface string  `json:"interface"`
		Flash     string  `json:"flash"`
		Channels  int     `json:"channels"`
		RawGB     float64 `json:"raw_gb"`
		UsableGB  float64 `json:"usable_gb"`
	} `json:"device"`
	Requests           int     `json:"requests"`
	MakespanNS         int64   `json:"makespan_ns"`
	AvgLatencyNS       int64   `json:"avg_latency_ns"`
	P50LatencyNS       int64   `json:"p50_latency_ns"`
	P95LatencyNS       int64   `json:"p95_latency_ns"`
	P99LatencyNS       int64   `json:"p99_latency_ns"`
	P999LatencyNS      int64   `json:"p999_latency_ns"`
	ThroughputBps      float64 `json:"throughput_bps"`
	IOPS               float64 `json:"iops"`
	EnergyJoules       float64 `json:"energy_joules"`
	AvgPowerWatts      float64 `json:"avg_power_watts"`
	WriteAmplification float64 `json:"write_amplification"`
	GCRuns             int     `json:"gc_runs"`
	Erases             int64   `json:"erases"`
	MaxEraseCount      int64   `json:"max_erase_count"`
	MeanEraseCount     float64 `json:"mean_erase_count"`
	WearImbalance      float64 `json:"wear_imbalance"`
	PECycleLimit       int64   `json:"pe_cycle_limit"`
	// ProjectedLifetimeNS is 0 when the run erased nothing (the
	// endurance model projects no wear-out: unbounded lifetime).
	ProjectedLifetimeNS int64 `json:"projected_lifetime_ns"`
}

// printJSONReport emits the selected-fields JSON report on stdout.
func printJSONReport(dev ssd.DeviceParams, res *ssd.Result) {
	var rep jsonReport
	rep.Device.Interface = dev.HostInterface.String()
	rep.Device.Flash = dev.FlashType.String()
	rep.Device.Channels = dev.Channels
	rep.Device.RawGB = float64(dev.CapacityBytes()) / 1e9
	rep.Device.UsableGB = float64(dev.UsableBytes()) / 1e9
	rep.Requests = res.Requests
	rep.MakespanNS = res.Makespan.Nanoseconds()
	rep.AvgLatencyNS = res.AvgLatency.Nanoseconds()
	rep.P50LatencyNS = res.P50Latency.Nanoseconds()
	rep.P95LatencyNS = res.P95Latency.Nanoseconds()
	rep.P99LatencyNS = res.P99Latency.Nanoseconds()
	rep.P999LatencyNS = res.P999Latency.Nanoseconds()
	rep.ThroughputBps = res.ThroughputBps
	rep.IOPS = res.IOPS
	rep.EnergyJoules = res.EnergyJoules
	rep.AvgPowerWatts = res.AvgPowerWatts
	rep.WriteAmplification = res.WriteAmplification
	rep.GCRuns = res.GCRuns
	rep.Erases = res.Erases
	rep.MaxEraseCount = res.Wear.MaxEraseCount
	rep.MeanEraseCount = res.Wear.MeanEraseCount
	rep.WearImbalance = res.Wear.Imbalance
	rep.PECycleLimit = res.Wear.PECycleLimit
	if res.Wear.MaxEraseCount > 0 {
		rep.ProjectedLifetimeNS = res.Wear.ProjectedLifetime.Nanoseconds()
	}
	b, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "ssdsim:", err)
		os.Exit(1)
	}
	os.Stdout.Write(append(b, '\n'))
}

// openTraceSource opens a trace file as a rewindable Source. Blktrace
// files stream straight from disk in constant memory; stdin is spooled
// to a temporary file first so the simulator's warm-up and measured
// sweeps can rewind it. MSR traces (and -materialize) use the buffered
// parser, which also sorts out-of-order arrivals.
func openTraceSource(path, format string, materialize bool) (trace.Source, func(), error) {
	cleanup := func() {}
	if strings.EqualFold(format, "msr") || materialize {
		parse := trace.ParseBlktrace
		if strings.EqualFold(format, "msr") {
			parse = trace.ParseMSR
		}
		r := io.Reader(os.Stdin)
		if path != "-" {
			f, err := os.Open(path)
			if err != nil {
				return nil, cleanup, err
			}
			defer f.Close()
			r = f
		}
		tr, err := parse(r)
		if err != nil {
			return nil, cleanup, err
		}
		return tr.Source(), cleanup, nil
	}
	if path == "-" {
		tmp, err := spoolStdin()
		if err != nil {
			return nil, cleanup, err
		}
		cleanup = func() { tmp.Close(); os.Remove(tmp.Name()) }
		return trace.NewBlktraceSource(tmp, "stdin"), cleanup, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, cleanup, err
	}
	cleanup = func() { f.Close() }
	return trace.NewBlktraceSource(f, filepath.Base(path)), cleanup, nil
}

// spoolStdin copies stdin to a temporary file so it becomes seekable.
func spoolStdin() (*os.File, error) {
	tmp, err := os.CreateTemp("", "ssdsim-stdin-*.trace")
	if err != nil {
		return nil, err
	}
	if _, err := io.Copy(tmp, os.Stdin); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	if _, err := tmp.Seek(0, io.SeekStart); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return nil, err
	}
	return tmp, nil
}

func hitPct(hits, misses int64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
