// Command tracegen emits synthetic block I/O traces for the paper's
// workload categories in the blktrace-like text format the rest of the
// toolchain consumes.
//
// Usage:
//
//	tracegen -workload Database -requests 30000 -seed 42 > db.trace
//	tracegen -list
package main

import (
	"flag"
	"fmt"
	"os"

	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

func main() {
	cat := flag.String("workload", "", "workload category (see -list)")
	requests := flag.Int("requests", 30000, "number of requests to generate")
	seed := flag.Int64("seed", 42, "generator seed")
	trimRatio := flag.Float64("trim", 0, "fraction of would-be writes emitted as TRIM (D) records")
	streams := flag.Int("streams", 0, "stamp requests with multi-stream tags 1..N (0 = untagged)")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list workload categories and exit")
	stats := flag.Bool("stats", false, "print trace statistics to stderr")
	flag.Parse()

	if *list {
		for _, c := range workload.All() {
			fmt.Println(workload.Describe(c))
		}
		return
	}
	if *cat == "" {
		fmt.Fprintln(os.Stderr, "tracegen: -workload is required (try -list)")
		os.Exit(2)
	}
	// A streaming source keeps memory constant regardless of -requests:
	// each sweep below (stats, write) re-derives the trace from the seed.
	src, err := workload.NewSource(workload.Category(*cat), workload.Options{
		Requests: *requests, Seed: *seed, TrimRatio: *trimRatio, Streams: *streams,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	if *stats {
		st, err := trace.ComputeStatsSource(src)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, st)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	if err := trace.WriteBlktraceSource(w, src); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}
