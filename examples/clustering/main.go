// Clustering: reproduce the paper's workload-characterization study
// (§3.1, Fig. 2) — window the traces, extract features, PCA to five
// dimensions, k-means, then validate that held-out windows land in the
// right cluster and that an unknown workload is flagged as new.
//
//	go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"autoblox/internal/core"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

func main() {
	// Train on the seven studied categories (Table 2), 70/30 split.
	var train, valid []*trace.Trace
	for _, cat := range workload.Studied() {
		full := workload.MustGenerate(cat, workload.Options{Requests: 24000, Seed: 42})
		tr, va := full.Split(0.7)
		tr.Name, va.Name = full.Name, full.Name
		train = append(train, tr)
		valid = append(valid, va)
	}
	cl, err := core.TrainClusterer(train, core.ClustererConfig{
		K: len(train), Seed: 42, AutoAdjustThreshold: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("cluster labels:", cl.Labels)
	fmt.Printf("new-cluster distance threshold: %.2f\n\n", cl.Threshold)

	// Per-window validation accuracy (paper: ~95%).
	acc, err := cl.ValidationAccuracy(valid)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("held-out window accuracy: %.1f%%\n\n", acc*100)

	// Fresh traces of known categories are assigned, not flagged new.
	for _, cat := range []workload.Category{workload.WebSearch, workload.KVStore} {
		probe := workload.MustGenerate(cat, workload.Options{Requests: 9000, Seed: 7})
		a, err := cl.Assign(probe)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s -> cluster %q, distance %.2f, new=%v\n", cat, a.Label, a.Distance, a.IsNew)
	}

	// An unseen category (Table 3's RadiusAuth) sits far from every
	// cluster — AutoBlox would allocate a new cluster for it (§3.1).
	ra := workload.MustGenerate(workload.RadiusAuth, workload.Options{Requests: 9000, Seed: 7})
	a, err := cl.Assign(ra)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s -> nearest %q, distance %.2f, new=%v", workload.RadiusAuth, a.Label, a.Distance, a.IsNew)
	if d := cl.ClusterDiameter(a.Cluster); d > 0 {
		fmt.Printf(" (%.1fx the cluster diameter; §4.2 reports 2.2x for new traces)", a.Distance/d)
	}
	fmt.Println()

	// 2-D scatter data (the Fig. 2 plot).
	fmt.Println("\nfirst principal components per window (Fig. 2 scatter):")
	for i, p := range cl.Scatter() {
		if i%4 != 0 {
			continue // thin the output
		}
		fmt.Printf("  %-16s (%7.3f, %7.3f) cluster %d\n", p.Category, p.X, p.Y, p.Cluster)
	}
}
