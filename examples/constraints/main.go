// Constraints: reproduce the §4.4 sensitivity study in miniature — the
// same target workload tuned under three different constraint sets
// (NVMe/MLC vs Intel 750, NVMe/SLC vs Samsung Z-SSD, SATA/MLC vs Samsung
// 850 PRO), showing that AutoBlox adapts the learned configuration to
// whatever hardware envelope the user specifies, including a power
// budget.
//
//	go run ./examples/constraints
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"autoblox"
	"autoblox/internal/ssd"
	"autoblox/internal/workload"
)

func tune(name string, cons autoblox.Constraints, ref autoblox.DeviceParams, dir string) {
	fw, err := autoblox.New(cons, autoblox.Options{
		DBPath:    filepath.Join(dir, name+".db"),
		Seed:      42,
		Reference: ref,
		Tuner:     autoblox.TunerOptions{MaxIterations: 12, SGDSteps: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()

	var traces []*autoblox.Trace
	for _, cat := range []workload.Category{workload.KVStore, workload.WebSearch, workload.CloudStorage} {
		traces = append(traces, workload.MustGenerate(cat, workload.Options{Requests: 6000, Seed: 11}))
	}
	if err := fw.LearnWorkloads(traces); err != nil {
		log.Fatal(err)
	}
	res, err := fw.Tune("KVStore")
	if err != nil {
		fmt.Printf("%-22s tuning failed: %v\n", name, err)
		return
	}
	dev := fw.Space.ToDevice(res.Best)
	perf := res.BestPerf["KVStore"][0]
	fmt.Printf("%-22s grade %+.3f  %2dch x%2d chips x%d dies x%2d planes  cache %4dMB  power %.2fW\n",
		name, res.BestGrade, dev.Channels, dev.ChipsPerChannel, dev.DiesPerChip,
		dev.PlanesPerDie, dev.DataCacheBytes>>20, perf.PowerWatts)
}

func main() {
	dir, err := os.MkdirTemp("", "autoblox-constraints")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	fmt.Println("KVStore tuned under different constraint sets (set_cons):")

	// §4.2: 512GB, NVMe, MLC — Intel 750 reference.
	nvmeMLC := autoblox.DefaultConstraints()
	tune("NVMe/MLC vs Intel750", nvmeMLC, autoblox.Intel750(), dir)

	// §4.4: flash-type sensitivity — SLC with the Z-SSD reference.
	slc := autoblox.DefaultConstraints()
	slc.Flash = ssd.SLC
	tune("NVMe/SLC vs Z-SSD", slc, autoblox.SamsungZSSD(), dir)

	// §4.4: interface sensitivity — SATA with the 850 PRO reference.
	sata := autoblox.DefaultConstraints()
	sata.Interface = ssd.SATA
	tune("SATA/MLC vs 850PRO", sata, autoblox.Samsung850Pro(), dir)

	// Power budget: a tight cap forces the search away from
	// power-hungry layouts (§3.4's power-constraint rejection).
	tight := autoblox.DefaultConstraints()
	tight.PowerBudgetWatts = 1.5
	tune("NVMe/MLC, 1.5W budget", tight, autoblox.Intel750(), dir)
}
