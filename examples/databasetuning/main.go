// Database tuning: the paper's motivating scenario — a cloud platform
// that dedicatedly serves Database-as-a-Service wants an SSD tuned for
// its database workload (§1, §4.2).
//
// The example tunes a configuration for the Database cluster under the
// 512GB/NVMe/MLC constraints twice: once with the default β=0.1 (protect
// non-target workloads) and once with β=0 ("ignore non-target", the
// Table 1 lower rows), then compares what each choice does to the other
// workloads.
//
//	go run ./examples/databasetuning
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"autoblox"
	"autoblox/internal/workload"
)

func run(beta float64, dir string) (*autoblox.Framework, *autoblox.TuneResult) {
	fw, err := autoblox.New(autoblox.DefaultConstraints(), autoblox.Options{
		DBPath: filepath.Join(dir, fmt.Sprintf("db-beta-%g.db", beta)),
		Seed:   42,
		Beta:   beta,
		Tuner:  autoblox.TunerOptions{MaxIterations: 15, SGDSteps: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	var training []*autoblox.Trace
	for _, cat := range []workload.Category{workload.Database, workload.WebSearch, workload.CloudStorage, workload.KVStore} {
		training = append(training, workload.MustGenerate(cat, workload.Options{Requests: 8000, Seed: 3}))
	}
	if err := fw.LearnWorkloads(training); err != nil {
		log.Fatal(err)
	}
	res, err := fw.Tune("Database")
	if err != nil {
		log.Fatal(err)
	}
	return fw, res
}

func main() {
	dir, err := os.MkdirTemp("", "autoblox-dbtuning")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// β = 0.1 (default): optimize Database while protecting the others.
	fwDefault, balanced := run(0.099999, dir) // explicit ~0.1 (0 selects the default anyway)
	defer fwDefault.Close()
	fmt.Printf("balanced (β≈0.1): grade %.4f in %d iterations\n", balanced.BestGrade, balanced.Iterations)
	fmt.Println("  config:", fwDefault.DescribeConfig(balanced.Best))

	// β = tiny: maximize Database alone (the paper's "ignore non-target"
	// rows, where cloud platforms serving only DBaaS don't care about
	// other workloads).
	fwSelfish, selfish := run(1e-9, dir)
	defer fwSelfish.Close()
	fmt.Printf("\nselfish (β→0):  grade %.4f in %d iterations\n", selfish.BestGrade, selfish.Iterations)
	fmt.Println("  config:", fwSelfish.DescribeConfig(selfish.Best))

	// Compare what each learned configuration does across workloads.
	fmt.Printf("\n%-14s %18s %18s\n", "workload", "balanced lat/tput", "selfish lat/tput")
	for _, cat := range []string{"Database", "WebSearch", "CloudStorage", "KVStore"} {
		b := balanced.BestPerf[cat][0]
		s := selfish.BestPerf[cat][0]
		fmt.Printf("%-14s %12.0fµs/%4.0fMBps %12.0fµs/%4.0fMBps\n", cat,
			float64(b.LatencyNS)/1e3, b.ThroughputBps/1e6,
			float64(s.LatencyNS)/1e3, s.ThroughputBps/1e6)
	}
	fmt.Println("\nThe β→0 run squeezes more out of Database but may regress the")
	fmt.Println("others — exactly the trade-off Table 1's lower rows quantify.")
}
