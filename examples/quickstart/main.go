// Quickstart: the smallest end-to-end AutoBlox session.
//
// It teaches the framework three workload categories, asks for a
// recommendation for a new Database-like trace (which triggers a tuning
// run), then asks again and gets the answer straight from AutoDB.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"autoblox"
	"autoblox/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "autoblox-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Open a framework under the paper's default constraints:
	//    512GB capacity, NVMe interface, MLC flash.
	fw, err := autoblox.New(autoblox.DefaultConstraints(), autoblox.Options{
		DBPath: filepath.Join(dir, "autoblox.db"),
		Seed:   42,
		Tuner:  autoblox.TunerOptions{MaxIterations: 12, SGDSteps: 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()

	// 2. Teach it what the known workload families look like (§3.1
	//    clustering). Real deployments feed blktrace captures here; the
	//    bundled generators stand in for the paper's production traces.
	var training []*autoblox.Trace
	for _, cat := range []workload.Category{workload.Database, workload.WebSearch, workload.CloudStorage} {
		training = append(training, workload.MustGenerate(cat, workload.Options{Requests: 9000, Seed: 1}))
	}
	if err := fw.LearnWorkloads(training); err != nil {
		log.Fatal(err)
	}
	fmt.Println("learned clusters:", fw.Workloads())

	// 3. A "new" workload arrives. Recommend() clusters it and — since
	//    AutoDB is empty — learns an optimized configuration for it.
	newTrace := workload.MustGenerate(workload.Database, workload.Options{Requests: 8000, Seed: 777})
	t0 := time.Now()
	rec, err := fw.Recommend(newTrace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nassigned to cluster %q (distance %.2f)\n", rec.Assignment.Label, rec.Assignment.Distance)
	fmt.Printf("learned a configuration in %v (%d search iterations, %d simulations)\n",
		time.Since(t0).Round(time.Millisecond), rec.Tune.Iterations, rec.Tune.SimRuns)
	fmt.Printf("grade vs Intel 750 reference: %.4f\n", rec.Grade)
	fmt.Println("critical parameters:", fw.DescribeConfig(rec.Config))
	fmt.Printf("device: %d channels x %d chips x %d dies x %d planes, %dMB cache\n",
		rec.Device.Channels, rec.Device.ChipsPerChannel, rec.Device.DiesPerChip,
		rec.Device.PlanesPerDie, rec.Device.DataCacheBytes>>20)

	// 4. The next request for the same workload family is served from
	//    the configuration database instantly.
	again := workload.MustGenerate(workload.Database, workload.Options{Requests: 8000, Seed: 778})
	t0 = time.Now()
	rec2, err := fw.Recommend(again)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsecond request served from AutoDB in %v (cached=%v, same grade %.4f)\n",
		time.Since(t0).Round(time.Millisecond), rec2.FromCache, rec2.Grade)
}
