// What-if analysis: §4.5 — given a performance target ("cut WebSearch
// latency 2x") and expanded hardware bounds beyond today's commodity
// parts, which device parameters must advance, and to what values?
//
// SSD vendors use this mode to decide what the next-generation part
// needs (faster flash? wider channels? more DRAM?).
//
//	go run ./examples/whatif
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"autoblox"
	"autoblox/internal/workload"
)

func main() {
	dir, err := os.MkdirTemp("", "autoblox-whatif")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// WhatIfSpace widens the bounds: up to 64 channels/chips, 2GB DRAM
	// grids, and — crucially — tunable flash timings and channel rates
	// that are fixed silicon properties in the commodity space.
	fw, err := autoblox.New(autoblox.DefaultConstraints(), autoblox.Options{
		DBPath:      filepath.Join(dir, "whatif.db"),
		Seed:        42,
		WhatIfSpace: true,
		Tuner:       autoblox.TunerOptions{MaxIterations: 30, SGDSteps: 6},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fw.Close()

	var training []*autoblox.Trace
	for _, cat := range []workload.Category{workload.WebSearch, workload.Database} {
		training = append(training, workload.MustGenerate(cat, workload.Options{Requests: 8000, Seed: 5}))
	}
	if err := fw.LearnWorkloads(training); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("what-if search space: %.3g configurations\n\n", fw.Space.SearchSpaceSize())

	// Latency goal for the latency-critical workload.
	res, err := fw.WhatIf(autoblox.WhatIfGoal{Target: "WebSearch", LatencyReduction: 2.0})
	if err != nil {
		log.Fatal(err)
	}
	report("WebSearch, 2x latency reduction", res)

	// Throughput goal for the throughput-intensive workload.
	res, err = fw.WhatIf(autoblox.WhatIfGoal{Target: "Database", ThroughputGain: 1.5})
	if err != nil {
		log.Fatal(err)
	}
	report("Database, 1.5x throughput gain", res)
}

func report(title string, res *autoblox.WhatIfResult) {
	fmt.Printf("goal: %s\n", title)
	fmt.Printf("  achieved: %v (latency %.2fx, throughput %.2fx, %d iterations)\n",
		res.Achieved, res.LatencySpeedup, res.ThroughputSpeedup, res.Iterations)
	fmt.Println("  the configuration that gets there:")
	for _, name := range []string{"FlashChannelCount", "ChipNoPerChannel", "DataCacheSize",
		"CMTCapacity", "ChannelTransferRate", "ChannelWidth", "PageReadLatency", "PageProgramLatency"} {
		fmt.Printf("    %-22s %g\n", name, res.CriticalParams[name])
	}
	fmt.Println()
}
