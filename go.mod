module autoblox

go 1.22
