// Package autodb implements AutoBlox's configuration database: learned
// SSD configurations and their measured performance, keyed by workload
// cluster ID. The paper stores these records in LevelDB with JSON values;
// this package provides the same schema on the embedded log-structured
// store in internal/kvstore.
package autodb

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"autoblox/internal/kvstore"
	"autoblox/internal/ssdconf"
)

// Perf is the validated performance of one configuration on one workload.
type Perf struct {
	LatencyNS     int64   `json:"latency_ns"`
	P99LatencyNS  int64   `json:"p99_latency_ns"`
	ThroughputBps float64 `json:"throughput_bps"`
	EnergyJoules  float64 `json:"energy_joules"`
	PowerWatts    float64 `json:"power_watts"`
	// Wear outputs back the lifetime objective axis. MaxEraseCount and
	// WearImbalance summarize the erase-count distribution;
	// ProjectedLifetimeNS extrapolates time to the P/E-cycle limit at
	// the observed wear rate (0 = no erases observed, i.e. unbounded).
	MaxEraseCount       int64   `json:"max_erase_count,omitempty"`
	WearImbalance       float64 `json:"wear_imbalance,omitempty"`
	ProjectedLifetimeNS int64   `json:"projected_lifetime_ns,omitempty"`
}

// StoredConfig is one learned configuration with its grade and the
// per-workload measurements backing it.
type StoredConfig struct {
	Key    string          `json:"key"`
	Config ssdconf.Config  `json:"config"`
	Grade  float64         `json:"grade"`
	Perf   map[string]Perf `json:"perf"` // workload name -> measurement
}

// ClusterRecord is the value stored per workload cluster.
type ClusterRecord struct {
	ClusterID int            `json:"cluster_id"`
	Category  string         `json:"category"` // majority workload category label
	Configs   []StoredConfig `json:"configs"`  // sorted by grade, best first
}

// MaxConfigsPerCluster bounds the per-cluster retained set.
const MaxConfigsPerCluster = 64

// DB is the configuration database.
type DB struct {
	store *kvstore.Store
}

// Open opens (or creates) an AutoDB at path.
func Open(path string) (*DB, error) {
	s, err := kvstore.Open(path)
	if err != nil {
		return nil, fmt.Errorf("autodb: %w", err)
	}
	return &DB{store: s}, nil
}

// Close closes the underlying store.
func (db *DB) Close() error { return db.store.Close() }

func clusterKey(id int) string { return fmt.Sprintf("cluster/%08d", id) }

// PutCluster stores (replaces) a cluster record.
func (db *DB) PutCluster(rec ClusterRecord) error {
	sortConfigs(rec.Configs)
	if len(rec.Configs) > MaxConfigsPerCluster {
		rec.Configs = rec.Configs[:MaxConfigsPerCluster]
	}
	blob, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("autodb: marshal: %w", err)
	}
	return db.store.Put(clusterKey(rec.ClusterID), blob)
}

// GetCluster fetches a cluster record; ok is false when absent.
func (db *DB) GetCluster(id int) (ClusterRecord, bool, error) {
	blob, err := db.store.Get(clusterKey(id))
	if errors.Is(err, kvstore.ErrNotFound) {
		return ClusterRecord{}, false, nil
	}
	if err != nil {
		return ClusterRecord{}, false, err
	}
	var rec ClusterRecord
	if err := json.Unmarshal(blob, &rec); err != nil {
		return ClusterRecord{}, false, fmt.Errorf("autodb: unmarshal: %w", err)
	}
	return rec, true, nil
}

// Clusters returns all cluster records ordered by ID.
func (db *DB) Clusters() ([]ClusterRecord, error) {
	var out []ClusterRecord
	for _, k := range db.store.Keys() {
		if len(k) < 8 || k[:8] != "cluster/" {
			continue
		}
		blob, err := db.store.Get(k)
		if err != nil {
			return nil, err
		}
		var rec ClusterRecord
		if err := json.Unmarshal(blob, &rec); err != nil {
			return nil, fmt.Errorf("autodb: unmarshal %s: %w", k, err)
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ClusterID < out[j].ClusterID })
	return out, nil
}

// NumClusters returns the number of stored clusters — the NumClusters
// denominator in Formula 2.
func (db *DB) NumClusters() (int, error) {
	recs, err := db.Clusters()
	if err != nil {
		return 0, err
	}
	return len(recs), nil
}

// AddConfig inserts or updates a learned configuration for a cluster,
// keeping the per-cluster list sorted by grade and capped.
func (db *DB) AddConfig(clusterID int, category string, sc StoredConfig) error {
	if sc.Key == "" {
		sc.Key = sc.Config.Key()
	}
	rec, ok, err := db.GetCluster(clusterID)
	if err != nil {
		return err
	}
	if !ok {
		rec = ClusterRecord{ClusterID: clusterID, Category: category}
	}
	if category != "" {
		rec.Category = category
	}
	replaced := false
	for i := range rec.Configs {
		if rec.Configs[i].Key == sc.Key {
			rec.Configs[i] = sc
			replaced = true
			break
		}
	}
	if !replaced {
		rec.Configs = append(rec.Configs, sc)
	}
	return db.PutCluster(rec)
}

// BestConfigs returns up to n best-graded configurations for a cluster.
func (db *DB) BestConfigs(clusterID, n int) ([]StoredConfig, error) {
	rec, ok, err := db.GetCluster(clusterID)
	if err != nil || !ok {
		return nil, err
	}
	if n > len(rec.Configs) {
		n = len(rec.Configs)
	}
	return rec.Configs[:n], nil
}

// SaveModel persists an opaque serialized clustering model.
func (db *DB) SaveModel(blob []byte) error { return db.store.Put("model", blob) }

// LoadModel retrieves the serialized clustering model; ok is false when
// none was saved.
func (db *DB) LoadModel() ([]byte, bool, error) {
	blob, err := db.store.Get("model")
	if errors.Is(err, kvstore.ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return blob, true, nil
}

// Compact rewrites the underlying log.
func (db *DB) Compact() error { return db.store.Compact() }

func sortConfigs(cfgs []StoredConfig) {
	sort.SliceStable(cfgs, func(i, j int) bool { return cfgs[i].Grade > cfgs[j].Grade })
}

// orderKey stores the §3.3 tuning order learned for a cluster.
func orderKey(id int) string { return fmt.Sprintf("order/%08d", id) }

// PutOrder persists the fine-pruning tuning order for a cluster.
func (db *DB) PutOrder(clusterID int, order []string) error {
	blob, err := json.Marshal(order)
	if err != nil {
		return fmt.Errorf("autodb: marshal order: %w", err)
	}
	return db.store.Put(orderKey(clusterID), blob)
}

// GetOrder retrieves a cluster's tuning order; ok is false when absent.
func (db *DB) GetOrder(clusterID int) ([]string, bool, error) {
	blob, err := db.store.Get(orderKey(clusterID))
	if errors.Is(err, kvstore.ErrNotFound) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	var order []string
	if err := json.Unmarshal(blob, &order); err != nil {
		return nil, false, fmt.Errorf("autodb: unmarshal order: %w", err)
	}
	return order, true, nil
}
