package autodb

import (
	"fmt"
	"path/filepath"
	"testing"

	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
)

func openTemp(t *testing.T) *DB {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "autodb.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

func sampleConfig(t *testing.T, grade float64) StoredConfig {
	t.Helper()
	s := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	cfg := s.FromDevice(ssd.Intel750())
	return StoredConfig{
		Config: cfg,
		Grade:  grade,
		Perf: map[string]Perf{
			"Database": {LatencyNS: 100000, ThroughputBps: 1e8, EnergyJoules: 1.5, PowerWatts: 3.2},
		},
	}
}

func TestPutGetCluster(t *testing.T) {
	db := openTemp(t)
	if _, ok, err := db.GetCluster(0); err != nil || ok {
		t.Fatalf("empty DB GetCluster = %v %v", ok, err)
	}
	rec := ClusterRecord{ClusterID: 3, Category: "Database",
		Configs: []StoredConfig{sampleConfig(t, 0.5)}}
	if err := db.PutCluster(rec); err != nil {
		t.Fatal(err)
	}
	got, ok, err := db.GetCluster(3)
	if err != nil || !ok {
		t.Fatalf("GetCluster: %v %v", ok, err)
	}
	if got.Category != "Database" || len(got.Configs) != 1 {
		t.Fatalf("record = %+v", got)
	}
	if got.Configs[0].Perf["Database"].LatencyNS != 100000 {
		t.Fatal("perf lost in round trip")
	}
}

func TestAddConfigSortsAndCaps(t *testing.T) {
	db := openTemp(t)
	for i := 0; i < MaxConfigsPerCluster+10; i++ {
		sc := sampleConfig(t, float64(i))
		sc.Key = fmt.Sprintf("cfg-%d", i) // distinct keys
		if err := db.AddConfig(1, "KVStore", sc); err != nil {
			t.Fatal(err)
		}
	}
	rec, ok, _ := db.GetCluster(1)
	if !ok {
		t.Fatal("cluster missing")
	}
	if len(rec.Configs) != MaxConfigsPerCluster {
		t.Fatalf("configs = %d, want cap %d", len(rec.Configs), MaxConfigsPerCluster)
	}
	for i := 1; i < len(rec.Configs); i++ {
		if rec.Configs[i].Grade > rec.Configs[i-1].Grade {
			t.Fatal("configs not sorted by grade")
		}
	}
	if rec.Configs[0].Grade != float64(MaxConfigsPerCluster+9) {
		t.Fatalf("best grade = %g", rec.Configs[0].Grade)
	}
}

func TestAddConfigReplacesSameKey(t *testing.T) {
	db := openTemp(t)
	sc := sampleConfig(t, 1.0)
	db.AddConfig(2, "VDI", sc)
	sc.Grade = 9.0
	db.AddConfig(2, "", sc) // empty category keeps old label
	rec, _, _ := db.GetCluster(2)
	if len(rec.Configs) != 1 || rec.Configs[0].Grade != 9.0 {
		t.Fatalf("replace failed: %+v", rec.Configs)
	}
	if rec.Category != "VDI" {
		t.Fatalf("category = %q", rec.Category)
	}
}

func TestBestConfigs(t *testing.T) {
	db := openTemp(t)
	for i := 0; i < 5; i++ {
		sc := sampleConfig(t, float64(i))
		sc.Key = fmt.Sprintf("k%d", i)
		db.AddConfig(0, "X", sc)
	}
	best, err := db.BestConfigs(0, 3)
	if err != nil || len(best) != 3 {
		t.Fatalf("BestConfigs: %d %v", len(best), err)
	}
	if best[0].Grade != 4 || best[2].Grade != 2 {
		t.Fatalf("order wrong: %v", best)
	}
	// Asking for more than available clamps.
	all, _ := db.BestConfigs(0, 100)
	if len(all) != 5 {
		t.Fatalf("clamp failed: %d", len(all))
	}
	// Unknown cluster: empty, no error.
	none, err := db.BestConfigs(42, 3)
	if err != nil || none != nil {
		t.Fatalf("unknown cluster: %v %v", none, err)
	}
}

func TestClustersAndNum(t *testing.T) {
	db := openTemp(t)
	for _, id := range []int{5, 1, 3} {
		db.PutCluster(ClusterRecord{ClusterID: id})
	}
	recs, err := db.Clusters()
	if err != nil || len(recs) != 3 {
		t.Fatalf("Clusters: %d %v", len(recs), err)
	}
	if recs[0].ClusterID != 1 || recs[2].ClusterID != 5 {
		t.Fatal("clusters not ordered by ID")
	}
	n, _ := db.NumClusters()
	if n != 3 {
		t.Fatalf("NumClusters = %d", n)
	}
}

func TestModelBlob(t *testing.T) {
	db := openTemp(t)
	if _, ok, err := db.LoadModel(); err != nil || ok {
		t.Fatal("empty model should be absent")
	}
	if err := db.SaveModel([]byte("model-bytes")); err != nil {
		t.Fatal(err)
	}
	blob, ok, err := db.LoadModel()
	if err != nil || !ok || string(blob) != "model-bytes" {
		t.Fatalf("LoadModel: %q %v %v", blob, ok, err)
	}
}

func TestPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "db.log")
	db, _ := Open(path)
	db.AddConfig(7, "HDFS", sampleConfig(t, 2.5))
	db.Close()

	db2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rec, ok, _ := db2.GetCluster(7)
	if !ok || rec.Category != "HDFS" || len(rec.Configs) != 1 {
		t.Fatalf("persistence failed: %+v %v", rec, ok)
	}
	if err := db2.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ = db2.GetCluster(7); !ok {
		t.Fatal("record lost in compaction")
	}
}

func TestOrderPersistence(t *testing.T) {
	db := openTemp(t)
	if _, ok, err := db.GetOrder(3); err != nil || ok {
		t.Fatal("empty order should be absent")
	}
	want := []string{"FlashChannelCount", "DataCacheSize", "QueueDepth"}
	if err := db.PutOrder(3, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := db.GetOrder(3)
	if err != nil || !ok {
		t.Fatalf("GetOrder: %v %v", ok, err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order round trip: %v", got)
		}
	}
}
