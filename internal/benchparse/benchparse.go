// Package benchparse converts `go test -bench` text output into a
// structured report, so CI can publish benchmark numbers as a JSON
// artifact instead of a log to eyeball.
package benchparse

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 when absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit → value for every value-unit pair on the line:
	// the standard ns/op, B/op, allocs/op plus any b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
	// SimsPerSec is derived when a benchmark reports both ns/op and a
	// simulation-count metric: simulations ÷ wall seconds. Zero when
	// underivable.
	SimsPerSec float64 `json:"sims_per_sec,omitempty"`
}

// Report is a full parsed `go test -bench` run.
type Report struct {
	// Env carries the header lines (goos, goarch, pkg, cpu). With
	// multiple packages in one run, the last header wins per key.
	Env        map[string]string `json:"env"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// envKeys are the `go test -bench` header lines worth keeping.
var envKeys = map[string]bool{"goos": true, "goarch": true, "pkg": true, "cpu": true}

// Parse reads `go test -bench` output. Unrecognized lines (PASS, ok,
// test log output) are skipped; a line that starts like a benchmark but
// does not parse is an error.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Env: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if k, v, ok := strings.Cut(line, ":"); ok && envKeys[k] {
			rep.Env[k] = strings.TrimSpace(v)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, err := parseLine(line)
		if err != nil {
			return nil, err
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseLine parses one "BenchmarkName-P  N  value unit  value unit ..."
// line.
func parseLine(line string) (Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Benchmark{}, fmt.Errorf("benchparse: short benchmark line %q", line)
	}
	b := Benchmark{Procs: 1, Metrics: map[string]float64{}}
	b.Name = fields[0]
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], p
		}
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, fmt.Errorf("benchparse: iterations in %q: %w", line, err)
	}
	b.Iterations = n
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Benchmark{}, fmt.Errorf("benchparse: unpaired value/unit in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, fmt.Errorf("benchparse: value %q in %q: %w", rest[i], line, err)
		}
		b.Metrics[rest[i+1]] = v
	}
	b.SimsPerSec = simsPerSec(b.Metrics)
	return b, nil
}

// simsPerSec derives simulations/second from a per-op simulation count
// and the per-op wall time. Matches the "avg_simulations" metric of the
// root benchmarks and any future unit naming simulations.
func simsPerSec(metrics map[string]float64) float64 {
	ns, ok := metrics["ns/op"]
	if !ok || ns <= 0 {
		return 0
	}
	for unit, v := range metrics {
		if unit == "sims" || strings.Contains(unit, "simulations") {
			return v / (ns / 1e9)
		}
	}
	return 0
}
