package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: autoblox
cpu: AMD EPYC 7B13
BenchmarkFig2Clustering-8          	       1	 512345678 ns/op	        95.20 accuracy_%	  123456 B/op	     789 allocs/op
BenchmarkFig8LearningTime-8        	       1	2000000000 ns/op	        12.00 avg_iterations	       150.0 avg_simulations
BenchmarkDisabledCounter    	1000000000	         0.2505 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	autoblox	14.2s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Env["goos"] != "linux" || rep.Env["cpu"] != "AMD EPYC 7B13" {
		t.Fatalf("env = %+v", rep.Env)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}

	fig2 := rep.Benchmarks[0]
	if fig2.Name != "BenchmarkFig2Clustering" || fig2.Procs != 8 || fig2.Iterations != 1 {
		t.Fatalf("fig2 = %+v", fig2)
	}
	if fig2.Metrics["ns/op"] != 512345678 || fig2.Metrics["accuracy_%"] != 95.2 ||
		fig2.Metrics["allocs/op"] != 789 {
		t.Fatalf("fig2 metrics = %+v", fig2.Metrics)
	}
	if fig2.SimsPerSec != 0 {
		t.Fatalf("fig2 has no sims metric, SimsPerSec = %g", fig2.SimsPerSec)
	}

	// 150 simulations over 2s of op time → 75 sims/sec.
	learn := rep.Benchmarks[1]
	if learn.SimsPerSec != 75 {
		t.Fatalf("SimsPerSec = %g, want 75", learn.SimsPerSec)
	}

	// No -P suffix: procs defaults to 1.
	disabled := rep.Benchmarks[2]
	if disabled.Name != "BenchmarkDisabledCounter" || disabled.Procs != 1 ||
		disabled.Iterations != 1000000000 {
		t.Fatalf("disabled = %+v", disabled)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"BenchmarkX abc 1 ns/op",   // non-numeric iterations
		"BenchmarkX 1 12 ns/op 34", // unpaired trailing value
		"BenchmarkX 1 oops ns/op",  // non-numeric metric value
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestParseEmptyInput(t *testing.T) {
	rep, err := Parse(strings.NewReader("no benchmarks here\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Fatalf("benchmarks = %+v", rep.Benchmarks)
	}
}
