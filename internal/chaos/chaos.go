// Package chaos is a deterministic fault-injecting transport for the
// dist wire protocol. A Transport wraps net.Conn values and perturbs
// the outbound frame stream — delaying, dropping, duplicating,
// reordering, or killing the connection mid-frame — according to a
// seeded Schedule: the same seed always yields the same action
// sequence for the same (connection, frame) coordinates, so chaos
// tests are exactly reproducible and CI can pin "tune under chaos ≡
// clean tune".
//
// The wrapper is frame-aware: it buffers writes and parses the dist
// protocol's 4-byte big-endian length prefix, so every injected fault
// lands on a whole-message boundary (except Kill, which deliberately
// tears a frame in half). Because the protocol runs over a reliable
// byte stream, a lost frame is unrecoverable in-band; Drop therefore
// models the only way a frame is really lost on TCP — the connection
// dying with data unflushed: the frame is swallowed, the write reports
// success, and the connection is broken underneath the writer. Both
// sides observe exactly what they would observe in production (EOF,
// torn frame, stalled peer) and recover through the ordinary paths:
// lease TTL expiry on the coordinator, reconnect with backoff on the
// worker.
//
// Partition windows are wall-clock intervals (relative to Transport
// creation) during which every write fails and breaks the connection —
// including handshakes on freshly dialed conns, so a partitioned
// worker cannot sneak back early.
package chaos

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Action is one scheduled fate for an outbound frame.
type Action uint8

const (
	// Deliver passes the frame through untouched.
	Deliver Action = iota
	// Drop swallows the frame (the write still reports success) and
	// breaks the connection, as a real network does when a conn dies
	// with unflushed data.
	Drop
	// Dup writes the frame twice.
	Dup
	// Reorder holds the frame back and writes it after the next frame
	// (or after a short hold timeout, whichever comes first).
	Reorder
	// Kill writes roughly half the frame, then severs the connection —
	// the peer decodes a torn frame.
	Kill
)

func (a Action) String() string {
	switch a {
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Dup:
		return "dup"
	case Reorder:
		return "reorder"
	case Kill:
		return "kill"
	default:
		return fmt.Sprintf("action(%d)", uint8(a))
	}
}

// Errors surfaced by chaos-injected failures. Callers never match on
// these (the dist layer treats them like any transport error); they
// exist so test logs read clearly.
var (
	ErrKilled      = errors.New("chaos: connection killed mid-frame")
	ErrPartitioned = errors.New("chaos: partitioned")
	ErrBroken      = errors.New("chaos: connection broken by injected fault")
)

// Window is a half-open wall-clock interval [Start, End) relative to
// the Transport's creation during which the network is partitioned.
type Window struct {
	Start time.Duration
	End   time.Duration
}

// Schedule is a seeded chaos plan. Rates are per-frame probabilities
// in [0, 1]; each frame draws a fixed number of variates from a
// splitmix64 stream keyed by (Seed, connection index), so the action
// sequence for a given connection is a pure function of the schedule.
type Schedule struct {
	// Seed keys every per-connection decision stream.
	Seed int64
	// Drop is the probability a frame is lost (connection breaks).
	Drop float64
	// Dup is the probability a frame is written twice.
	Dup float64
	// Reorder is the probability a frame swaps with its successor.
	Reorder float64
	// Kill is the probability the connection is severed mid-frame.
	Kill float64
	// Delay is the probability a frame is held for a random duration
	// up to MaxDelay before its action applies.
	Delay    float64
	MaxDelay time.Duration
	// ReorderHold bounds how long a reordered frame waits for a
	// successor before being flushed anyway (default 25ms).
	ReorderHold time.Duration
	// Partitions are wall-clock windows during which every write
	// fails and breaks its connection.
	Partitions []Window
}

func (s Schedule) reorderHold() time.Duration {
	if s.ReorderHold > 0 {
		return s.ReorderHold
	}
	return 25 * time.Millisecond
}

// splitmix64 mirrors internal/ssd's fault RNG: a counter-mode stream
// with no internal state beyond the counter, so decision k never
// depends on how decisions were consumed.
type rng struct{ state uint64 }

func newRNG(seed, conn int64) *rng {
	s := uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	s ^= (uint64(conn) + 1) * 0xbf58476d1ce4e5b9
	return &rng{state: s}
}

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// frameFate is one frame's drawn plan: its action plus an optional
// pre-action delay. Every frame consumes exactly five variates so the
// stream position is a pure function of the frame index.
type frameFate struct {
	action Action
	delay  time.Duration
}

func (s Schedule) fate(r *rng) frameFate {
	var f frameFate
	dropR, killR, dupR, reorderR, delayR := r.float64(), r.float64(), r.float64(), r.float64(), r.float64()
	switch {
	case dropR < s.Drop:
		f.action = Drop
	case killR < s.Kill:
		f.action = Kill
	case dupR < s.Dup:
		f.action = Dup
	case reorderR < s.Reorder:
		f.action = Reorder
	default:
		f.action = Deliver
	}
	if s.Delay > 0 && delayR < s.Delay && s.MaxDelay > 0 {
		// Reuse delayR's low bits as the magnitude: still deterministic,
		// still five draws per frame.
		f.delay = time.Duration((delayR / s.Delay) * float64(s.MaxDelay))
	}
	return f
}

// Actions returns the deterministic action sequence the schedule
// assigns to the first n frames of connection conn — the reproducibility
// contract, pinned by tests.
func (s Schedule) Actions(conn int64, n int) []Action {
	r := newRNG(s.Seed, conn)
	out := make([]Action, n)
	for i := range out {
		out[i] = s.fate(r).action
	}
	return out
}

// Stats counts injected faults across a Transport's connections, so
// tests can assert the chaos actually fired.
type Stats struct {
	Conns      int64
	Frames     int64
	Drops      int64
	Dups       int64
	Reorders   int64
	Delays     int64
	Kills      int64
	Partitions int64
}

// Transport hands out chaos-wrapped connections sharing one schedule.
// Each wrapped connection gets the next connection index, so a
// redialed connection draws a fresh decision stream — retries are not
// doomed to repeat the fault that killed their predecessor.
type Transport struct {
	sched Schedule
	start time.Time

	conns      atomic.Int64
	frames     atomic.Int64
	drops      atomic.Int64
	dups       atomic.Int64
	reorders   atomic.Int64
	delays     atomic.Int64
	kills      atomic.Int64
	partitions atomic.Int64
}

// NewTransport starts a transport; partition windows are measured from
// this call.
func NewTransport(sched Schedule) *Transport {
	return &Transport{sched: sched, start: time.Now()}
}

// Stats snapshots the transport's injected-fault counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Conns:      t.conns.Load(),
		Frames:     t.frames.Load(),
		Drops:      t.drops.Load(),
		Dups:       t.dups.Load(),
		Reorders:   t.reorders.Load(),
		Delays:     t.delays.Load(),
		Kills:      t.kills.Load(),
		Partitions: t.partitions.Load(),
	}
}

// partitioned reports whether the wall clock sits inside a partition
// window.
func (t *Transport) partitioned() bool {
	el := time.Since(t.start)
	for _, w := range t.sched.Partitions {
		if el >= w.Start && el < w.End {
			return true
		}
	}
	return false
}

// Wrap returns conn with the transport's chaos schedule applied to its
// outbound frames. Reads pass through untouched — wrap both endpoints
// to perturb both directions.
func (t *Transport) Wrap(conn net.Conn) net.Conn {
	return &Conn{
		Conn: conn,
		t:    t,
		rng:  newRNG(t.sched.Seed, t.conns.Add(1)),
	}
}

// Dial is a TCP dialer with the transport's chaos applied; its
// signature matches dist.Worker.Dial.
func (t *Transport) Dial(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return t.Wrap(conn), nil
}

// Conn applies a chaos schedule to outbound protocol frames. It is a
// net.Conn; reads and deadline plumbing delegate to the wrapped conn.
type Conn struct {
	net.Conn
	t   *Transport
	rng *rng

	mu     sync.Mutex
	buf    []byte // partial-frame accumulation across Write calls
	held   []byte // a reordered frame awaiting its successor
	timer  *time.Timer
	broken error // sticky failure after an injected break
}

// Write buffers p, carves complete frames out of the accumulated
// stream, and applies each frame's scheduled fate. Bytes that do not
// yet form a complete frame are retained for the next call.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return 0, c.broken
	}
	c.buf = append(c.buf, p...)
	for {
		if len(c.buf) < 4 {
			return len(p), nil
		}
		n := binary.BigEndian.Uint32(c.buf[:4])
		total := 4 + int(n)
		if len(c.buf) < total {
			return len(p), nil
		}
		frame := append([]byte(nil), c.buf[:total]...)
		c.buf = c.buf[total:]
		if err := c.applyLocked(frame); err != nil {
			return 0, err
		}
	}
}

// breakLocked severs the underlying connection and makes every later
// write fail with err.
func (c *Conn) breakLocked(err error) {
	c.broken = err
	c.held = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	_ = c.Conn.Close()
}

// applyLocked runs one frame through the schedule. c.mu held.
func (c *Conn) applyLocked(frame []byte) error {
	c.t.frames.Add(1)
	if c.t.partitioned() {
		c.t.partitions.Add(1)
		c.breakLocked(ErrPartitioned)
		return ErrPartitioned
	}
	f := c.t.sched.fate(c.rng)
	if f.delay > 0 {
		c.t.delays.Add(1)
		time.Sleep(f.delay)
	}
	switch f.action {
	case Drop:
		// The frame vanishes and the conn dies under the writer: the
		// write "succeeds" (kernel-buffered), the peer sees EOF, and the
		// next local IO fails.
		c.t.drops.Add(1)
		c.broken = ErrBroken
		c.held = nil
		if c.timer != nil {
			c.timer.Stop()
			c.timer = nil
		}
		_ = c.Conn.Close()
		return nil
	case Kill:
		c.t.kills.Add(1)
		_, _ = c.Conn.Write(frame[:len(frame)/2])
		c.breakLocked(ErrKilled)
		return ErrKilled
	case Dup:
		c.t.dups.Add(1)
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
		return c.flushHeldLocked()
	case Reorder:
		c.t.reorders.Add(1)
		if c.held != nil {
			// Already holding a frame: swap by sending this one first.
			if _, err := c.Conn.Write(frame); err != nil {
				return err
			}
			return c.flushHeldLocked()
		}
		c.held = frame
		c.timer = time.AfterFunc(c.t.sched.reorderHold(), c.flushHeldAsync)
		return nil
	default:
		// Writing the current frame before any held one completes a
		// reorder as an adjacent swap.
		if _, err := c.Conn.Write(frame); err != nil {
			return err
		}
		return c.flushHeldLocked()
	}
}

// flushHeldLocked writes a pending reordered frame, if any. c.mu held.
func (c *Conn) flushHeldLocked() error {
	if c.held == nil {
		return nil
	}
	frame := c.held
	c.held = nil
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	_, err := c.Conn.Write(frame)
	return err
}

// flushHeldAsync is the reorder-hold timeout: no successor frame
// arrived in time, so the held frame goes out alone.
func (c *Conn) flushHeldAsync() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return
	}
	_ = c.flushHeldLocked()
}

// Close releases any held frame and closes the wrapped conn.
func (c *Conn) Close() error {
	c.mu.Lock()
	if c.timer != nil {
		c.timer.Stop()
		c.timer = nil
	}
	c.held = nil
	if c.broken == nil {
		c.broken = net.ErrClosed
	}
	c.mu.Unlock()
	return c.Conn.Close()
}
