package chaos

import (
	"encoding/binary"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// frame builds one length-prefixed wire frame around the payload.
func frame(payload string) []byte {
	out := make([]byte, 4+len(payload))
	binary.BigEndian.PutUint32(out[:4], uint32(len(payload)))
	copy(out[4:], payload)
	return out
}

// readFrame reads one length-prefixed frame from r.
func readFrame(t *testing.T, r io.Reader) (string, error) {
	t.Helper()
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return "", err
	}
	body := make([]byte, binary.BigEndian.Uint32(hdr[:]))
	if _, err := io.ReadFull(r, body); err != nil {
		return "", err
	}
	return string(body), nil
}

// pipePair wraps the client end of a net.Pipe with the schedule and
// drains the server end into a channel of decoded frames.
func pipePair(t *testing.T, sched Schedule) (net.Conn, <-chan string, <-chan error) {
	t.Helper()
	server, client := net.Pipe()
	t.Cleanup(func() { server.Close(); client.Close() })
	tr := NewTransport(sched)
	wrapped := tr.Wrap(client)
	frames := make(chan string, 64)
	errc := make(chan error, 1)
	go func() {
		defer close(frames)
		for {
			f, err := readFrame(t, server)
			if err != nil {
				errc <- err
				return
			}
			frames <- f
		}
	}()
	return wrapped, frames, errc
}

func TestScheduleDeterminism(t *testing.T) {
	sched := Schedule{Seed: 42, Drop: 0.1, Dup: 0.1, Reorder: 0.1, Kill: 0.05}
	a := sched.Actions(1, 200)
	b := sched.Actions(1, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (seed, conn) produced different action sequences")
	}
	counts := map[Action]int{}
	for _, act := range a {
		counts[act]++
	}
	for _, want := range []Action{Deliver, Drop, Dup, Reorder, Kill} {
		if counts[want] == 0 {
			t.Fatalf("200 frames at 10%% rates never drew %v: %v", want, counts)
		}
	}
	if reflect.DeepEqual(a, sched.Actions(2, 200)) {
		t.Fatal("different connections drew identical action sequences")
	}
	other := Schedule{Seed: 43, Drop: 0.1, Dup: 0.1, Reorder: 0.1, Kill: 0.05}
	if reflect.DeepEqual(a, other.Actions(1, 200)) {
		t.Fatal("different seeds drew identical action sequences")
	}
}

func TestConnPassThrough(t *testing.T) {
	conn, frames, _ := pipePair(t, Schedule{Seed: 1})
	// Split a frame across two writes to exercise partial-frame
	// buffering, then two frames in one write.
	f := frame("hello")
	if _, err := conn.Write(f[:3]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(f[3:]); err != nil {
		t.Fatal(err)
	}
	double := append(frame("a"), frame("b")...)
	if _, err := conn.Write(double); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"hello", "a", "b"} {
		if got := <-frames; got != want {
			t.Fatalf("got frame %q, want %q", got, want)
		}
	}
}

func TestConnDuplicates(t *testing.T) {
	conn, frames, _ := pipePair(t, Schedule{Seed: 1, Dup: 1})
	if _, err := conn.Write(frame("x")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if got := <-frames; got != "x" {
			t.Fatalf("copy %d: got %q, want %q", i, got, "x")
		}
	}
}

func TestConnReorderSwapsAdjacent(t *testing.T) {
	conn, frames, _ := pipePair(t, Schedule{Seed: 1, Reorder: 1, ReorderHold: time.Minute})
	if _, err := conn.Write(frame("first")); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame("second")); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"second", "first"} {
		if got := <-frames; got != want {
			t.Fatalf("got frame %q, want %q", got, want)
		}
	}
}

func TestConnReorderHoldTimeout(t *testing.T) {
	conn, frames, _ := pipePair(t, Schedule{Seed: 1, Reorder: 1, ReorderHold: 5 * time.Millisecond})
	if _, err := conn.Write(frame("lonely")); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-frames:
		if got != "lonely" {
			t.Fatalf("got frame %q, want %q", got, "lonely")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("held frame never flushed without a successor")
	}
}

func TestConnDropBreaksConn(t *testing.T) {
	conn, _, errc := pipePair(t, Schedule{Seed: 1, Drop: 1})
	// The drop itself reports success (the bytes were "buffered").
	if _, err := conn.Write(frame("lost")); err != nil {
		t.Fatalf("dropped write should report success, got %v", err)
	}
	// The peer sees the connection die without the frame.
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("reader got a frame that was dropped")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never observed the broken connection")
	}
	// Later writes fail: the conn is broken.
	if _, err := conn.Write(frame("after")); err == nil {
		t.Fatal("write after drop-break should fail")
	}
}

func TestConnKillTearsFrame(t *testing.T) {
	conn, _, errc := pipePair(t, Schedule{Seed: 1, Kill: 1})
	if _, err := conn.Write(frame("doomed-payload")); !errors.Is(err, ErrKilled) {
		t.Fatalf("kill write error = %v, want ErrKilled", err)
	}
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("peer decoded a torn frame cleanly")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("peer never observed the kill")
	}
}

func TestPartitionWindow(t *testing.T) {
	sched := Schedule{Seed: 1, Partitions: []Window{{Start: 0, End: time.Hour}}}
	conn, _, _ := pipePair(t, sched)
	if _, err := conn.Write(frame("blocked")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("partitioned write error = %v, want ErrPartitioned", err)
	}
}

func TestTransportStats(t *testing.T) {
	tr := NewTransport(Schedule{Seed: 7, Dup: 1})
	server, client := net.Pipe()
	defer server.Close()
	go io.Copy(io.Discard, server)
	conn := tr.Wrap(client)
	for i := 0; i < 3; i++ {
		if _, err := conn.Write(frame("f")); err != nil {
			t.Fatal(err)
		}
	}
	st := tr.Stats()
	if st.Conns != 1 || st.Frames != 3 || st.Dups != 3 {
		t.Fatalf("stats = %+v, want 1 conn / 3 frames / 3 dups", st)
	}
}
