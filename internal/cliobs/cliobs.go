// Package cliobs wires the observability layer (internal/obs) into
// command-line binaries: it registers the shared -metrics, -trace,
// -pprof, -progress and -http flags and activates the requested
// observers. With no flags set the run is uninstrumented and the hooks
// cost nothing.
package cliobs

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the default mux served by -pprof
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"autoblox/internal/core"
	"autoblox/internal/obs"
	"autoblox/internal/obs/httpobs"
)

// Flags holds the parsed observability flags and, after Setup, the live
// observers (nil when not requested).
type Flags struct {
	Metrics  string
	Trace    string
	Pprof    string
	Progress bool
	HTTP     string

	Reg    *obs.Registry
	Prog   *obs.Progress
	Tune   *obs.TuneStatus
	Flight *obs.FlightRecorder
	Srv    *httpobs.Server

	status atomic.Pointer[func() any]
}

// Register adds the observability flags to a flag set.
func Register(fs *flag.FlagSet) *Flags {
	o := &Flags{}
	fs.StringVar(&o.Metrics, "metrics", "", "write metrics to this file at exit (.json = JSON snapshot, else Prometheus text)")
	fs.StringVar(&o.Trace, "trace", "", "write a Chrome trace_event JSONL file (open in chrome://tracing or Perfetto)")
	fs.StringVar(&o.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&o.Progress, "progress", false, "print a sims/sec + ETA ticker to stderr")
	fs.StringVar(&o.HTTP, "http", "", "serve live introspection on this address: /metrics /statusz /tunez /eventz /debug/pprof")
	return o
}

// SetStatus installs the /statusz fleet-status provider (e.g. the
// distributed backend's status snapshot). Safe to call before or after
// Setup, from any goroutine.
func (o *Flags) SetStatus(fn func() any) {
	if o != nil {
		o.status.Store(&fn)
	}
}

// Setup activates the requested observers and returns a cleanup to
// defer. iters seeds the progress ETA with the expected iteration count
// (0 disables the ETA).
func (o *Flags) Setup(iters int) (cleanup func(), err error) {
	var closers []func()
	if o.Pprof != "" {
		go func() {
			if err := http.ListenAndServe(o.Pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}
	if o.Trace != "" {
		f, err := os.Create(o.Trace)
		if err != nil {
			return nil, err
		}
		bw := bufio.NewWriter(f)
		tr := obs.NewTracer(bw)
		obs.SetTracer(tr)
		closers = append(closers, func() {
			obs.SetTracer(nil)
			if err := tr.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
			bw.Flush()
			f.Close()
		})
	}
	instrumented := o.Metrics != "" || o.Progress || o.HTTP != ""
	if instrumented {
		o.Reg = obs.NewRegistry()
		registerHelp(o.Reg)
	}
	// One TuneStatus backs both the -progress ticker and /tunez, so the
	// two surfaces render the same snapshot.
	o.Tune = obs.NewTuneStatus()
	o.Tune.SetSims(o.Reg.Counter(core.MetricSimRuns))
	o.Tune.SetTotal(iters)
	if instrumented || o.Trace != "" {
		o.Flight = obs.NewFlightRecorder(1024)
		obs.SetFlightRecorder(o.Flight)
		closers = append(closers, func() { obs.SetFlightRecorder(nil) })
		closers = append(closers, watchSIGQUIT(o.Flight))
	}
	if o.Progress {
		o.Prog = obs.NewProgress(os.Stderr, o.Tune, 0)
		o.Prog.Start()
		closers = append(closers, o.Prog.Stop)
	}
	if o.HTTP != "" {
		srv, err := httpobs.Start(o.HTTP, httpobs.Options{
			Registry: o.Reg,
			Tune:     o.Tune,
			Flight:   o.Flight,
			Status: func() any {
				if fn := o.status.Load(); fn != nil {
					return (*fn)()
				}
				return nil
			},
		})
		if err != nil {
			for i := len(closers) - 1; i >= 0; i-- {
				closers[i]()
			}
			return nil, err
		}
		o.Srv = srv
		fmt.Fprintf(os.Stderr, "introspection: http://%s/\n", srv.Addr())
		closers = append(closers, func() { srv.Close() })
	}
	if o.Metrics != "" {
		closers = append(closers, func() { WriteMetrics(o.Reg, o.Metrics) })
	}
	return func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}, nil
}

// watchSIGQUIT dumps the flight recorder to stderr whenever the process
// receives SIGQUIT, and returns a stop function.
func watchSIGQUIT(rec *obs.FlightRecorder) (stop func()) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-ch:
				rec.WriteText(os.Stderr)
			}
		}
	}()
	return func() {
		signal.Stop(ch)
		close(done)
	}
}

// registerHelp attaches HELP text to the metric families the framework
// emits, keeping the Prometheus export lint-clean.
func registerHelp(reg *obs.Registry) {
	for family, text := range map[string]string{
		"validator_sim_runs_total":                  "fresh simulations executed",
		"validator_cache_hits_total":                "validations served from the memo cache",
		"validator_coalesced_total":                 "validations that joined an in-flight duplicate",
		"validator_retries_total":                   "transient simulation failures retried",
		"validator_failures_total":                  "simulations exhausting their retry budget",
		"validator_remote_results_total":            "validations measured by remote workers",
		"validator_sim_ns":                          "wall-clock nanoseconds per simulation",
		"dist_leases_granted_total":                 "job leases granted to workers",
		"dist_leases_expired_total":                 "job leases that timed out",
		"dist_leases_reassigned_total":              "expired jobs handed to another worker",
		"dist_results_total":                        "job results accepted by the coordinator",
		"dist_duplicate_results_total":              "job results discarded as duplicates",
		"dist_workers_connected":                    "workers currently holding a session",
		"dist_workers_rejected_total":               "workers rejected during the handshake",
		"dist_worker_busy_ns":                       "per-worker cumulative in-simulation nanoseconds",
		"dist_stats_pushes_total":                   "worker metric snapshots absorbed by the coordinator",
		"worker_jobs_total":                         "jobs executed by this worker process",
		"worker_busy_ns":                            "cumulative in-simulation nanoseconds on this worker",
		"dist_hedged_leases_total":                  "duplicate leases issued to hedge against stragglers",
		"dist_workers_quarantined":                  "workers currently quarantined (health or byzantine)",
		"dist_results_crosschecked_total":           "remote results re-simulated locally for cross-validation",
		"dist_results_crosschecked_divergent_total": "cross-checked results that diverged from the local referee",
		"cache_persist_hits_total":                  "validations served from the persistent simulation cache",
		"cache_persist_misses_total":                "persistent-cache lookups that missed",
		"cache_persist_corrupt_records_total":       "persistent-cache records dropped as corrupt",
	} {
		reg.SetHelp(family, text)
	}
}

// Resilience holds the parsed crash-safety flags shared by the tuning
// binaries: a per-simulation wall-clock budget, a transient-failure
// retry budget, and the checkpoint/resume pair.
type Resilience struct {
	SimTimeout time.Duration
	SimRetries int
	Checkpoint string
	Resume     bool
	CacheDir   string
}

// RegisterResilience adds the resilience flags to a flag set.
func RegisterResilience(fs *flag.FlagSet) *Resilience {
	r := &Resilience{}
	fs.DurationVar(&r.SimTimeout, "sim-timeout", 0, "wall-clock budget per validation simulation, e.g. 30s (0 = unlimited)")
	fs.IntVar(&r.SimRetries, "sim-retries", 0, "retry budget for transient simulation failures")
	fs.StringVar(&r.Checkpoint, "checkpoint", "", "crash-safe tuning: atomically rewrite this JSON snapshot after every iteration")
	fs.BoolVar(&r.Resume, "resume", false, "resume tuning from -checkpoint (missing file = fresh run)")
	fs.StringVar(&r.CacheDir, "cache-dir", "", "persistent simulation cache directory: measured results survive restarts and crashes")
	return r
}

// OpenPersistentCache opens the -cache-dir persistent cache (nil when
// the flag is unset) and attaches the registry.
func (r *Resilience) OpenPersistentCache(reg *obs.Registry) (*core.PersistentCache, error) {
	if r.CacheDir == "" {
		return nil, nil
	}
	p, err := core.OpenPersistentCache(r.CacheDir)
	if err != nil {
		return nil, err
	}
	p.Obs = reg
	return p, nil
}

// SignalContext returns a context cancelled on SIGINT/SIGTERM, so an
// interrupted tuning run stops at the next iteration boundary and
// leaves its latest checkpoint consistent on disk. Defer stop.
func SignalContext() (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// WriteMetrics dumps a registry snapshot: JSON for .json paths,
// Prometheus text exposition otherwise.
func WriteMetrics(reg *obs.Registry, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
		return
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = reg.WriteJSON(f)
	} else {
		err = reg.WritePrometheus(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
	}
}
