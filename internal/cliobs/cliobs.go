// Package cliobs wires the observability layer (internal/obs) into
// command-line binaries: it registers the shared -metrics, -trace,
// -pprof and -progress flags and activates the requested observers.
// With no flags set the run is uninstrumented and the hooks cost
// nothing.
package cliobs

import (
	"bufio"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the default mux served by -pprof
	"os"
	"strings"

	"autoblox/internal/core"
	"autoblox/internal/obs"
)

// Flags holds the parsed observability flags and, after Setup, the live
// registry and progress reporter (nil when not requested).
type Flags struct {
	Metrics  string
	Trace    string
	Pprof    string
	Progress bool

	Reg  *obs.Registry
	Prog *obs.Progress
}

// Register adds the observability flags to a flag set.
func Register(fs *flag.FlagSet) *Flags {
	o := &Flags{}
	fs.StringVar(&o.Metrics, "metrics", "", "write metrics to this file at exit (.json = JSON snapshot, else Prometheus text)")
	fs.StringVar(&o.Trace, "trace", "", "write a Chrome trace_event JSONL file (open in chrome://tracing or Perfetto)")
	fs.StringVar(&o.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&o.Progress, "progress", false, "print a sims/sec + ETA ticker to stderr")
	return o
}

// Setup activates the requested observers and returns a cleanup to
// defer. iters seeds the progress ETA with the expected iteration count
// (0 disables the ETA).
func (o *Flags) Setup(iters int) (cleanup func(), err error) {
	var closers []func()
	if o.Pprof != "" {
		go func() {
			if err := http.ListenAndServe(o.Pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}
	if o.Trace != "" {
		f, err := os.Create(o.Trace)
		if err != nil {
			return nil, err
		}
		bw := bufio.NewWriter(f)
		tr := obs.NewTracer(bw)
		obs.SetTracer(tr)
		closers = append(closers, func() {
			obs.SetTracer(nil)
			if err := tr.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
			bw.Flush()
			f.Close()
		})
	}
	if o.Metrics != "" || o.Progress {
		o.Reg = obs.NewRegistry()
	}
	if o.Progress {
		o.Prog = obs.NewProgress(os.Stderr, o.Reg.Counter(core.MetricSimRuns), 0)
		o.Prog.SetTotal(iters)
		o.Prog.Start()
		closers = append(closers, o.Prog.Stop)
	}
	if o.Metrics != "" {
		closers = append(closers, func() { WriteMetrics(o.Reg, o.Metrics) })
	}
	return func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}, nil
}

// WriteMetrics dumps a registry snapshot: JSON for .json paths,
// Prometheus text exposition otherwise.
func WriteMetrics(reg *obs.Registry, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
		return
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = reg.WriteJSON(f)
	} else {
		err = reg.WritePrometheus(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
	}
}
