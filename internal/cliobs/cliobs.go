// Package cliobs wires the observability layer (internal/obs) into
// command-line binaries: it registers the shared -metrics, -trace,
// -pprof and -progress flags and activates the requested observers.
// With no flags set the run is uninstrumented and the hooks cost
// nothing.
package cliobs

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registered on the default mux served by -pprof
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"autoblox/internal/core"
	"autoblox/internal/obs"
)

// Flags holds the parsed observability flags and, after Setup, the live
// registry and progress reporter (nil when not requested).
type Flags struct {
	Metrics  string
	Trace    string
	Pprof    string
	Progress bool

	Reg  *obs.Registry
	Prog *obs.Progress
}

// Register adds the observability flags to a flag set.
func Register(fs *flag.FlagSet) *Flags {
	o := &Flags{}
	fs.StringVar(&o.Metrics, "metrics", "", "write metrics to this file at exit (.json = JSON snapshot, else Prometheus text)")
	fs.StringVar(&o.Trace, "trace", "", "write a Chrome trace_event JSONL file (open in chrome://tracing or Perfetto)")
	fs.StringVar(&o.Pprof, "pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	fs.BoolVar(&o.Progress, "progress", false, "print a sims/sec + ETA ticker to stderr")
	return o
}

// Setup activates the requested observers and returns a cleanup to
// defer. iters seeds the progress ETA with the expected iteration count
// (0 disables the ETA).
func (o *Flags) Setup(iters int) (cleanup func(), err error) {
	var closers []func()
	if o.Pprof != "" {
		go func() {
			if err := http.ListenAndServe(o.Pprof, nil); err != nil {
				fmt.Fprintln(os.Stderr, "pprof:", err)
			}
		}()
	}
	if o.Trace != "" {
		f, err := os.Create(o.Trace)
		if err != nil {
			return nil, err
		}
		bw := bufio.NewWriter(f)
		tr := obs.NewTracer(bw)
		obs.SetTracer(tr)
		closers = append(closers, func() {
			obs.SetTracer(nil)
			if err := tr.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "trace:", err)
			}
			bw.Flush()
			f.Close()
		})
	}
	if o.Metrics != "" || o.Progress {
		o.Reg = obs.NewRegistry()
	}
	if o.Progress {
		o.Prog = obs.NewProgress(os.Stderr, o.Reg.Counter(core.MetricSimRuns), 0)
		o.Prog.SetTotal(iters)
		o.Prog.Start()
		closers = append(closers, o.Prog.Stop)
	}
	if o.Metrics != "" {
		closers = append(closers, func() { WriteMetrics(o.Reg, o.Metrics) })
	}
	return func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}, nil
}

// Resilience holds the parsed crash-safety flags shared by the tuning
// binaries: a per-simulation wall-clock budget, a transient-failure
// retry budget, and the checkpoint/resume pair.
type Resilience struct {
	SimTimeout time.Duration
	SimRetries int
	Checkpoint string
	Resume     bool
}

// RegisterResilience adds the resilience flags to a flag set.
func RegisterResilience(fs *flag.FlagSet) *Resilience {
	r := &Resilience{}
	fs.DurationVar(&r.SimTimeout, "sim-timeout", 0, "wall-clock budget per validation simulation, e.g. 30s (0 = unlimited)")
	fs.IntVar(&r.SimRetries, "sim-retries", 0, "retry budget for transient simulation failures")
	fs.StringVar(&r.Checkpoint, "checkpoint", "", "crash-safe tuning: atomically rewrite this JSON snapshot after every iteration")
	fs.BoolVar(&r.Resume, "resume", false, "resume tuning from -checkpoint (missing file = fresh run)")
	return r
}

// SignalContext returns a context cancelled on SIGINT/SIGTERM, so an
// interrupted tuning run stops at the next iteration boundary and
// leaves its latest checkpoint consistent on disk. Defer stop.
func SignalContext() (ctx context.Context, stop context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// WriteMetrics dumps a registry snapshot: JSON for .json paths,
// Prometheus text exposition otherwise.
func WriteMetrics(reg *obs.Registry, path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
		return
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		err = reg.WriteJSON(f)
	} else {
		err = reg.WritePrometheus(f)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "metrics:", err)
	}
}
