package core

import (
	"context"
	"sync/atomic"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
)

// Job is one (configuration, trace) measurement handed to a Backend.
// Src is the local streaming source; remote backends ignore it and
// reconstruct the trace worker-side from the canonical name
// ("<cluster>#<i>") instead.
type Job struct {
	Cfg  ssdconf.Config
	Name string
	Src  trace.SourceFactory
}

// Backend executes measurements for a Validator. The validator keeps
// ownership of memoization and singleflight; a backend only ever sees
// cold keys, exactly once per concurrent wave. Implementations must be
// safe for concurrent Measure calls and must return bit-identical
// results for identical jobs (the serial ≡ parallel ≡ distributed
// guarantee rests on it).
//
// The in-process pool (nil Validator.Backend) and the dist package's
// coordinator/worker fleet are the two implementations.
type Backend interface {
	Measure(ctx context.Context, job Job) (autodb.Perf, error)
	Stats() BackendStats
}

// Backend kinds reported through BackendStats.Kind.
const (
	BackendKindLocal = "local"
	BackendKindDist  = "dist"
)

// BackendStats decomposes where a backend's jobs spent their time.
// ValidatorStats.WallSpan deliberately measures something else (real
// elapsed span); this split keeps queue-wait and in-sim time separate
// per backend, so a remote fleet's queueing delay is never conflated
// with local pool busy time.
type BackendStats struct {
	// Kind identifies the implementation ("local", "dist", ...).
	Kind string
	// Jobs counts completed Measure calls (including failed ones).
	Jobs int64
	// QueueWait is the cumulative time jobs waited before execution
	// started: slot wait for the local pool, submit-to-first-lease for a
	// distributed fleet.
	QueueWait time.Duration
	// SimBusy is the cumulative execution time: in-simulator time for
	// the local pool, worker-reported per-job time for a fleet.
	SimBusy time.Duration
	// LeasesExpired / LeasesReassigned count fleet lease churn (always 0
	// for the local pool).
	LeasesExpired    int64
	LeasesReassigned int64
	// Workers decomposes the fleet per worker, connected or not —
	// tallies survive reconnects. Empty for the local pool.
	Workers []WorkerBackendStats
}

// WorkerBackendStats is one fleet worker's share of the backend work.
type WorkerBackendStats struct {
	Name string `json:"name"`
	// Connected reports whether the worker currently holds a session.
	Connected bool  `json:"connected"`
	Jobs      int64 `json:"jobs"`
	// BusyNS is the worker-reported cumulative batch wall time.
	BusyNS int64 `json:"busy_ns"`
	// LeasesExpired counts leases this worker let time out;
	// LeasesReassigned counts expired jobs re-granted to this worker.
	LeasesExpired    int64 `json:"leases_expired"`
	LeasesReassigned int64 `json:"leases_reassigned"`
}

// BackendCounters accumulates the BackendStats decomposition; embed one
// in a Backend and Record every completed job.
type BackendCounters struct {
	jobs      atomic.Int64
	queueWait atomic.Int64
	simBusy   atomic.Int64
}

// Record folds one completed job into the counters.
func (c *BackendCounters) Record(queueWait, simBusy time.Duration) {
	c.jobs.Add(1)
	c.queueWait.Add(queueWait.Nanoseconds())
	c.simBusy.Add(simBusy.Nanoseconds())
}

// Snapshot returns a point-in-time BackendStats under the given kind.
func (c *BackendCounters) Snapshot(kind string) BackendStats {
	return BackendStats{
		Kind:      kind,
		Jobs:      c.jobs.Load(),
		QueueWait: time.Duration(c.queueWait.Load()),
		SimBusy:   time.Duration(c.simBusy.Load()),
	}
}

// localBackend is the default in-process pool: a validator-wide
// semaphore bounds concurrent simulations, and each Measure runs the
// simulation on the calling goroutine once it holds a slot.
type localBackend struct {
	v *Validator
	c BackendCounters
}

func (b *localBackend) Measure(ctx context.Context, job Job) (autodb.Perf, error) {
	sem := b.v.slots()
	waitStart := time.Now()
	select {
	case sem <- struct{}{}:
	case <-ctx.Done():
		return autodb.Perf{}, ctx.Err()
	}
	wait := time.Since(waitStart)
	b.v.Obs.Histogram(MetricQueueWait).Record(wait.Nanoseconds())
	perf, simDur, err := b.v.simulate(ctx, job.Cfg, job.Src)
	<-sem
	b.c.Record(wait, simDur)
	return perf, err
}

func (b *localBackend) Stats() BackendStats { return b.c.Snapshot(BackendKindLocal) }
