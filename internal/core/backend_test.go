package core

import (
	"context"
	"testing"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// stubBackend plays a remote fleet with a fixed, known timing
// decomposition: every job reports exactly stubQueueWait of queueing
// and stubSimBusy of execution.
const (
	stubQueueWait = 3 * time.Millisecond
	stubSimBusy   = 7 * time.Millisecond
)

type stubBackend struct {
	c BackendCounters
}

func (b *stubBackend) Measure(ctx context.Context, job Job) (autodb.Perf, error) {
	b.c.Record(stubQueueWait, stubSimBusy)
	return autodb.Perf{LatencyNS: int64(len(job.Name)), ThroughputBps: 1}, nil
}

func (b *stubBackend) Stats() BackendStats { return b.c.Snapshot("stub") }

// TestBackendStatsDecomposition pins the Stats() split introduced with
// pluggable backends: the validator-level counters (SimRuns/CacheHits/
// CoalescedWaits/RemoteResults) stay an exact accounting of MeasureTrace
// calls, while Backend reports the executing backend's own queue-wait vs
// execution-time decomposition — so a remote fleet's queueing delay is
// never folded into local pool busy time.
func TestBackendStatsDecomposition(t *testing.T) {
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	ws := map[string]*trace.Trace{
		"Database": workload.MustGenerate(workload.Database, workload.Options{Requests: 1200, Seed: 11}),
	}
	ref := space.FromDevice(ssd.Intel750())
	ctx := context.Background()

	t.Run("local", func(t *testing.T) {
		v := NewValidator(space, ws)
		v.Parallel = 2
		cfgs := distinctConfigs(t, space, ref, 3)
		if err := v.MeasureBatch(ctx, cfgs, v.Clusters()); err != nil {
			t.Fatal(err)
		}
		st := v.Stats()
		if st.RemoteResults != 0 {
			t.Fatalf("local pool recorded %d remote results", st.RemoteResults)
		}
		if st.Backend.Kind != BackendKindLocal {
			t.Fatalf("Backend.Kind = %q, want %q", st.Backend.Kind, BackendKindLocal)
		}
		if st.Backend.Jobs != st.SimRuns {
			t.Fatalf("local backend Jobs = %d, want SimRuns = %d", st.Backend.Jobs, st.SimRuns)
		}
		// The local backend's SimBusy is fed from the same successful-attempt
		// durations as the validator's aggregate, so they must agree exactly.
		if st.Backend.SimBusy != st.SimBusy {
			t.Fatalf("local backend SimBusy = %v, validator SimBusy = %v (decomposition drifted)",
				st.Backend.SimBusy, st.SimBusy)
		}
		if st.Backend.QueueWait < 0 {
			t.Fatalf("negative queue wait: %v", st.Backend.QueueWait)
		}
	})

	t.Run("remote", func(t *testing.T) {
		v := NewValidator(space, ws)
		v.Backend = &stubBackend{}
		cfgs := distinctConfigs(t, space, ref, 4)
		const name = "Database#0"
		for _, cfg := range cfgs {
			if _, err := v.MeasureTrace(ctx, cfg, name, ws["Database"].Factory()); err != nil {
				t.Fatal(err)
			}
		}
		// Second pass over the same keys: pure cache hits, backend untouched.
		for _, cfg := range cfgs {
			if _, err := v.MeasureTrace(ctx, cfg, name, ws["Database"].Factory()); err != nil {
				t.Fatal(err)
			}
		}
		st := v.Stats()
		if st.SimRuns != 0 {
			t.Fatalf("remote backend run recorded %d local SimRuns", st.SimRuns)
		}
		if st.RemoteResults != int64(len(cfgs)) {
			t.Fatalf("RemoteResults = %d, want %d", st.RemoteResults, len(cfgs))
		}
		if st.CacheHits != int64(len(cfgs)) {
			t.Fatalf("CacheHits = %d, want %d", st.CacheHits, len(cfgs))
		}
		// Accounting law with a remote backend: every call is exactly one of
		// {local sim, cache hit, coalesced wait, remote result}.
		calls := int64(2 * len(cfgs))
		if got := st.SimRuns + st.CacheHits + st.CoalescedWaits + st.RemoteResults; got != calls {
			t.Fatalf("accounting law broken: sim(%d)+hits(%d)+coalesced(%d)+remote(%d) = %d, want %d",
				st.SimRuns, st.CacheHits, st.CoalescedWaits, st.RemoteResults, got, calls)
		}
		// The stub's decomposition must surface unchanged: queue wait and
		// execution time stay separate, never summed into one bucket.
		if st.Backend.Kind != "stub" {
			t.Fatalf("Backend.Kind = %q, want stub", st.Backend.Kind)
		}
		if want := time.Duration(len(cfgs)) * stubQueueWait; st.Backend.QueueWait != want {
			t.Fatalf("Backend.QueueWait = %v, want %v", st.Backend.QueueWait, want)
		}
		if want := time.Duration(len(cfgs)) * stubSimBusy; st.Backend.SimBusy != want {
			t.Fatalf("Backend.SimBusy = %v, want %v", st.Backend.SimBusy, want)
		}
		// And the local-pool aggregate stays zero: remote time is not wall
		// time spent in this process's simulators.
		if st.SimBusy != 0 {
			t.Fatalf("validator SimBusy = %v for a purely remote run, want 0", st.SimBusy)
		}
	})
}
