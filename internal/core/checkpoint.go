package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpointing makes a tuning run crash-safe: after frontier
// initialization and after every search iteration the tuner atomically
// rewrites a JSON snapshot of everything the next iteration depends on
// — the validated set, the seen-key set, the RNG draw count, the
// trajectory, and the validator's measurement cache. A resumed run
// replays none of the completed simulations and continues the exact
// random sequence, so kill + resume is bit-identical to an
// uninterrupted run.

// checkpointVersion guards the on-disk schema; bump it when the layout
// changes so stale files fail loudly instead of resuming garbage.
// Version history:
//
//	1 — scalar-grade schema (through the objective-vector refactor)
//	2 — objective vectors: per-entry power/lifetime, the objective
//	    spec, and the Pareto front. Version-1 files are scalar by
//	    definition and upgrade cleanly into a scalar run (their
//	    entries simply carry no wear data); resuming a Pareto tune
//	    from one fails with ErrCheckpointIncompatible.
const checkpointVersion = 2

// ErrCheckpointIncompatible marks a checkpoint whose schema or
// objective spec cannot drive this run. It is always an error value,
// never a panic, whatever bytes the file holds.
var ErrCheckpointIncompatible = errors.New("core: incompatible checkpoint")

// checkpointEntry is one validated configuration in portable form (the
// feature vector is recomputed from the space on resume).
type checkpointEntry struct {
	Cfg        []int   `json:"cfg"`
	Grade      float64 `json:"grade"`
	TargetPerf float64 `json:"target_perf"`
	LatSp      float64 `json:"lat_speedup"`
	TputSp     float64 `json:"tput_speedup"`
	Full       bool    `json:"full"`
	Power      float64 `json:"power_watts,omitempty"`
	LifetimeNS int64   `json:"lifetime_ns,omitempty"`
}

// checkpointFile is the on-disk snapshot of a tuning run between
// iterations.
type checkpointFile struct {
	Version int    `json:"version"`
	Target  string `json:"target"`
	Seed    int64  `json:"seed"`
	// SpaceSig fingerprints the parameter space, constraints and fault
	// profile the run was started under; resuming under a different
	// space would silently remap every grid index.
	SpaceSig string `json:"space_sig"`

	// Iteration is the next iteration to run (0 = frontier done, no
	// search iterations yet). RNGDraws is the tuner RNG's draw count at
	// that boundary.
	Iteration  int    `json:"iteration"`
	NoProgress int    `json:"no_progress"`
	RNGDraws   uint64 `json:"rng_draws"`

	Trajectory        []float64 `json:"trajectory"`
	PrunedValidations int       `json:"pruned_validations"`
	RejectedByPower   int       `json:"rejected_by_power"`

	// Objectives is the axis list of the run's objective spec (absent
	// for scalar runs, keeping their files identical in shape to v1
	// plus the version bump). Front is the non-dominated set at the
	// snapshot boundary, in the deterministic report order.
	Objectives []string     `json:"objectives,omitempty"`
	Front      []FrontPoint `json:"front,omitempty"`

	Validated []checkpointEntry `json:"validated"`
	Seen      []string          `json:"seen"`
	Cache     []CachedPerf      `json:"cache"`
}

// upgradeCheckpoint validates the snapshot's schema version and
// migrates legacy layouts in place. It must never panic: checkpoint
// bytes come from disk and may be arbitrarily old or corrupt (the
// JSON layer has already vetted syntax, this layer vets semantics).
func upgradeCheckpoint(ck *checkpointFile, pareto bool) error {
	switch ck.Version {
	case 1:
		// The scalar-grade era: no objective spec, no wear data. A
		// scalar run continues cleanly — its entries re-enter with zero
		// power/lifetime, which scalar search never reads. A Pareto run
		// must refuse: dominance would silently treat every restored
		// entry as wear-free.
		if pareto {
			return fmt.Errorf("%w: version 1 checkpoint predates objective vectors and cannot resume a Pareto tune", ErrCheckpointIncompatible)
		}
		ck.Version = checkpointVersion
		return nil
	case checkpointVersion:
		return nil
	default:
		return fmt.Errorf("%w: version %d, want %d", ErrCheckpointIncompatible, ck.Version, checkpointVersion)
	}
}

// writeCheckpoint atomically replaces path with the snapshot: the JSON
// is written to a sibling temp file and renamed into place, so a crash
// mid-write leaves the previous checkpoint intact.
func writeCheckpoint(path string, ck *checkpointFile) error {
	data, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: commit checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads a checkpoint file; a missing file returns an
// error satisfying errors.Is(err, os.ErrNotExist).
func loadCheckpoint(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("core: parse checkpoint %s: %w", path, err)
	}
	return &ck, nil
}
