package core

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpointing makes a tuning run crash-safe: after frontier
// initialization and after every search iteration the tuner atomically
// rewrites a JSON snapshot of everything the next iteration depends on
// — the validated set, the seen-key set, the RNG draw count, the
// trajectory, and the validator's measurement cache. A resumed run
// replays none of the completed simulations and continues the exact
// random sequence, so kill + resume is bit-identical to an
// uninterrupted run.

// checkpointVersion guards the on-disk schema; bump it when the layout
// changes so stale files fail loudly instead of resuming garbage.
const checkpointVersion = 1

// checkpointEntry is one validated configuration in portable form (the
// feature vector is recomputed from the space on resume).
type checkpointEntry struct {
	Cfg        []int   `json:"cfg"`
	Grade      float64 `json:"grade"`
	TargetPerf float64 `json:"target_perf"`
	LatSp      float64 `json:"lat_speedup"`
	TputSp     float64 `json:"tput_speedup"`
	Full       bool    `json:"full"`
}

// checkpointFile is the on-disk snapshot of a tuning run between
// iterations.
type checkpointFile struct {
	Version int    `json:"version"`
	Target  string `json:"target"`
	Seed    int64  `json:"seed"`
	// SpaceSig fingerprints the parameter space, constraints and fault
	// profile the run was started under; resuming under a different
	// space would silently remap every grid index.
	SpaceSig string `json:"space_sig"`

	// Iteration is the next iteration to run (0 = frontier done, no
	// search iterations yet). RNGDraws is the tuner RNG's draw count at
	// that boundary.
	Iteration  int    `json:"iteration"`
	NoProgress int    `json:"no_progress"`
	RNGDraws   uint64 `json:"rng_draws"`

	Trajectory        []float64 `json:"trajectory"`
	PrunedValidations int       `json:"pruned_validations"`
	RejectedByPower   int       `json:"rejected_by_power"`

	Validated []checkpointEntry `json:"validated"`
	Seen      []string          `json:"seen"`
	Cache     []CachedPerf      `json:"cache"`
}

// writeCheckpoint atomically replaces path with the snapshot: the JSON
// is written to a sibling temp file and renamed into place, so a crash
// mid-write leaves the previous checkpoint intact.
func writeCheckpoint(path string, ck *checkpointFile) error {
	data, err := json.MarshalIndent(ck, "", " ")
	if err != nil {
		return fmt.Errorf("core: encode checkpoint: %w", err)
	}
	tmp := filepath.Join(filepath.Dir(path), "."+filepath.Base(path)+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("core: write checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("core: commit checkpoint: %w", err)
	}
	return nil
}

// loadCheckpoint reads a checkpoint file; a missing file returns an
// error satisfying errors.Is(err, os.ErrNotExist).
func loadCheckpoint(path string) (*checkpointFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck checkpointFile
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("core: parse checkpoint %s: %w", path, err)
	}
	return &ck, nil
}
