// Package core implements AutoBlox itself: learning-based workload
// clustering (§3.1), the ML formulation of SSD tuning (§3.2),
// coarse/fine parameter pruning (§3.3), the customized Bayesian-
// optimization tuning loop with SGD search, GPR grade prediction and
// simulator-backed efficiency validation (§3.4), and what-if analysis
// (§4.5).
package core

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"

	"autoblox/internal/kmeans"
	"autoblox/internal/linalg"
	"autoblox/internal/obs"
	"autoblox/internal/pca"
	"autoblox/internal/trace"
)

// PCADims is the PCA output dimensionality (§3.1: 5 dimensions capture
// ~70% of the explainable variance).
const PCADims = 5

// DefaultNewClusterThreshold is the center-distance threshold beyond
// which a workload forms a new cluster. The paper uses 20 in its PCA
// space; the threshold is rescaled to the trained model's own scale
// (minimum inter-center distance) when AutoAdjustThreshold is set.
const DefaultNewClusterThreshold = 20.0

// ClustererConfig controls training.
type ClustererConfig struct {
	K          int   // number of clusters; 0 = number of training traces
	WindowSize int   // trace entries per window (default 3000)
	Seed       int64 // RNG seed
	// NewClusterThreshold is the distance beyond which a workload is
	// declared novel (paper default 20).
	NewClusterThreshold float64
	// AutoAdjustThreshold rescales the threshold to the minimum distance
	// between trained cluster centers, which is how the paper motivates
	// the value ("corresponds to the minimum distance between existing
	// clusters").
	AutoAdjustThreshold bool
}

func (c *ClustererConfig) defaults(nTraces int) {
	if c.K <= 0 {
		c.K = nTraces
	}
	if c.WindowSize <= 0 {
		c.WindowSize = trace.DefaultWindowSize
	}
	if c.NewClusterThreshold <= 0 {
		c.NewClusterThreshold = DefaultNewClusterThreshold
	}
}

// Clusterer is the trained workload-clustering model: windowing →
// feature normalization → PCA(5) → k-means.
type Clusterer struct {
	PCA       *pca.PCA
	KMeans    *kmeans.Model
	Window    int
	Threshold float64
	// Labels maps cluster index -> majority training category.
	Labels []string
	// projected holds the training windows' PCA coordinates (for
	// diameters and Fig. 2 scatter data).
	projected *linalg.Matrix
	// windowCats holds the category of each training window.
	windowCats []string
}

// Assignment is the result of clustering one workload.
type Assignment struct {
	Cluster  int     // nearest cluster index
	Label    string  // that cluster's category label
	Distance float64 // distance from the workload centroid to the cluster center
	IsNew    bool    // true when Distance exceeds the threshold (new workload type)
}

// TrainClusterer fits the clustering pipeline on one representative
// trace per category. It streams each trace through the windowed
// feature extractor via TrainClustererSources; only the per-window
// feature rows (18 floats each) are retained.
func TrainClusterer(traces []*trace.Trace, cfg ClustererConfig) (*Clusterer, error) {
	srcs := make([]trace.Source, len(traces))
	for i, tr := range traces {
		srcs[i] = tr.Source()
	}
	return TrainClustererSources(srcs, cfg)
}

// TrainClustererSources fits the clustering pipeline on one streaming
// source per category (a slice, not a map, so training-row order — and
// therefore the fitted model — is deterministic). Each source is
// consumed in a single windowed pass; the traces themselves are never
// materialized.
func TrainClustererSources(srcs []trace.Source, cfg ClustererConfig) (*Clusterer, error) {
	sp := obs.StartSpan("clustering").ArgInt("traces", int64(len(srcs)))
	defer sp.End()
	if len(srcs) == 0 {
		return nil, errors.New("core: no training traces")
	}
	cfg.defaults(len(srcs))

	var rows [][]float64
	var cats []string
	for _, src := range srcs {
		err := trace.ScanWindows(src, cfg.WindowSize, func(w *trace.Trace) error {
			rows = append(rows, trace.WindowFeatures(w))
			cats = append(cats, src.Name())
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: windowing %q: %w", src.Name(), err)
		}
	}
	if len(rows) < cfg.K {
		return nil, fmt.Errorf("core: %d windows for %d clusters; need longer traces", len(rows), cfg.K)
	}
	feat := linalg.FromRows(rows)

	dims := PCADims
	if dims > feat.Cols {
		dims = feat.Cols
	}
	p, proj, err := pca.FitTransform(feat, dims)
	if err != nil {
		return nil, fmt.Errorf("core: pca: %w", err)
	}
	km, err := kmeans.Fit(proj, kmeans.Config{K: cfg.K, Seed: cfg.Seed, Restarts: 5})
	if err != nil {
		return nil, fmt.Errorf("core: kmeans: %w", err)
	}

	c := &Clusterer{
		PCA: p, KMeans: km, Window: cfg.WindowSize,
		Threshold:  cfg.NewClusterThreshold,
		projected:  proj,
		windowCats: cats,
	}
	if cfg.AutoAdjustThreshold {
		if d := km.MinCenterDistance(); d > 0 {
			c.Threshold = d
		}
	}
	c.Labels = majorityLabels(km, cats)
	return c, nil
}

// majorityLabels assigns each cluster the most common training category
// among its windows.
func majorityLabels(km *kmeans.Model, cats []string) []string {
	counts := make([]map[string]int, km.K())
	for i := range counts {
		counts[i] = map[string]int{}
	}
	for i, l := range km.Labels {
		counts[l][cats[i]]++
	}
	labels := make([]string, km.K())
	for c, m := range counts {
		best, bestN := "", -1
		for cat, n := range m {
			if n > bestN || (n == bestN && cat < best) {
				best, bestN = cat, n
			}
		}
		labels[c] = best
	}
	return labels
}

// Assign clusters a new workload: its windows are featurized, projected,
// and the centroid compared against cluster centers (§3.1's distance
// test against the threshold).
func (c *Clusterer) Assign(tr *trace.Trace) (Assignment, error) {
	return c.AssignSource(tr.Source())
}

// AssignSource is Assign over a streaming source: the trace's windows
// are featurized in one pass without materializing the request slice.
func (c *Clusterer) AssignSource(src trace.Source) (Assignment, error) {
	rows, err := trace.FeatureMatrixSource(src, c.Window)
	if err != nil {
		return Assignment{}, err
	}
	if len(rows) == 0 {
		return Assignment{}, errors.New("core: empty trace")
	}
	feat := linalg.FromRows(rows)
	proj, err := c.PCA.Transform(feat)
	if err != nil {
		return Assignment{}, err
	}
	centroid := kmeans.Centroid(proj)
	cluster, dist := c.KMeans.PredictVec(centroid)
	return Assignment{
		Cluster:  cluster,
		Label:    c.Labels[cluster],
		Distance: dist,
		IsNew:    dist > c.Threshold,
	}, nil
}

// ValidationAccuracy computes the fraction of validation windows that
// land in the cluster whose majority label matches the window's own
// category — the paper reports ~95% (§3.1). Windows are streamed and
// scored one at a time.
func (c *Clusterer) ValidationAccuracy(traces []*trace.Trace) (float64, error) {
	var correct, total int
	for _, tr := range traces {
		name := tr.Name
		err := trace.ScanWindows(tr.Source(), c.Window, func(w *trace.Trace) error {
			feat := linalg.FromRows([][]float64{trace.WindowFeatures(w)})
			proj, err := c.PCA.Transform(feat)
			if err != nil {
				return err
			}
			cl, _ := c.KMeans.PredictVec(proj.Row(0))
			if c.Labels[cl] == name {
				correct++
			}
			total++
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	if total == 0 {
		return 0, errors.New("core: no validation windows")
	}
	return float64(correct) / float64(total), nil
}

// ScatterPoint is one training window in PCA space — the Fig. 2 data.
type ScatterPoint struct {
	X, Y     float64
	Cluster  int
	Category string
}

// Scatter returns the 2-D PCA scatter of the training windows (the first
// two principal components), as plotted in Fig. 2.
func (c *Clusterer) Scatter() []ScatterPoint {
	out := make([]ScatterPoint, c.projected.Rows)
	for i := 0; i < c.projected.Rows; i++ {
		out[i] = ScatterPoint{
			X: c.projected.At(i, 0), Y: c.projected.At(i, 1),
			Cluster:  c.KMeans.Labels[i],
			Category: c.windowCats[i],
		}
	}
	return out
}

// Silhouette reports the clustering's mean silhouette coefficient over
// the training windows (a standard cluster-quality score; near 1 means
// tight, well-separated workload clusters).
func (c *Clusterer) Silhouette() float64 {
	if c.projected == nil || c.projected.Rows == 0 {
		return 0
	}
	return c.KMeans.Silhouette(c.projected)
}

// ClusterDiameter reports the training diameter of a cluster, used to
// describe how far new workloads sit from known ones (§4.2 reports new
// traces at 2.2× the diameter of existing clusters).
func (c *Clusterer) ClusterDiameter(cluster int) float64 {
	return c.KMeans.ClusterDiameter(c.projected, cluster)
}

// ClusterOf returns the cluster index whose label matches the category,
// or -1.
func (c *Clusterer) ClusterOf(category string) int {
	for i, l := range c.Labels {
		if l == category {
			return i
		}
	}
	return -1
}

// serializedClusterer is the JSON form persisted to AutoDB.
type serializedClusterer struct {
	Window     int         `json:"window"`
	Threshold  float64     `json:"threshold"`
	Labels     []string    `json:"labels"`
	Mean       []float64   `json:"pca_mean"`
	Components [][]float64 `json:"pca_components"`
	Centers    [][]float64 `json:"kmeans_centers"`
}

// Marshal serializes the model (without training scatter data).
func (c *Clusterer) Marshal() ([]byte, error) {
	s := serializedClusterer{
		Window: c.Window, Threshold: c.Threshold, Labels: c.Labels,
		Mean: c.PCA.Mean,
	}
	for i := 0; i < c.PCA.Components.Rows; i++ {
		s.Components = append(s.Components, append([]float64(nil), c.PCA.Components.Row(i)...))
	}
	for i := 0; i < c.KMeans.Centers.Rows; i++ {
		s.Centers = append(s.Centers, append([]float64(nil), c.KMeans.Centers.Row(i)...))
	}
	return json.Marshal(s)
}

// UnmarshalClusterer restores a model serialized by Marshal. The restored
// model supports Assign and ValidationAccuracy but not Scatter (training
// windows are not persisted).
func UnmarshalClusterer(blob []byte) (*Clusterer, error) {
	var s serializedClusterer
	if err := json.Unmarshal(blob, &s); err != nil {
		return nil, fmt.Errorf("core: unmarshal clusterer: %w", err)
	}
	if len(s.Components) == 0 || len(s.Centers) == 0 {
		return nil, errors.New("core: serialized clusterer incomplete")
	}
	c := &Clusterer{
		Window:    s.Window,
		Threshold: s.Threshold,
		Labels:    s.Labels,
		PCA:       &pca.PCA{Components: linalg.FromRows(s.Components), Mean: s.Mean},
		KMeans:    &kmeans.Model{Centers: linalg.FromRows(s.Centers)},
		projected: linalg.NewMatrix(0, len(s.Centers[0])),
	}
	return c, nil
}

// SortedClusterLabels returns the labels sorted — handy for stable
// reporting.
func (c *Clusterer) SortedClusterLabels() []string {
	out := append([]string(nil), c.Labels...)
	sort.Strings(out)
	return out
}

// AddWorkload retrains the clustering model with one more cluster to
// accommodate a novel workload (§3.1: "If AutoBlox cannot identify a
// similar cluster, it will retrain the k-means model with one more
// cluster"). The returned model includes the previous training windows
// plus the new trace's; the original model is unchanged.
func (c *Clusterer) AddWorkload(tr *trace.Trace, seed int64) (*Clusterer, error) {
	if c.projected == nil || len(c.windowCats) == 0 {
		return nil, errors.New("core: AddWorkload requires a model with training data (not a deserialized one)")
	}
	// Rebuild the raw feature rows: reproject is not enough, we must
	// refit PCA over the union. Training windows' raw features were not
	// retained, so reconstruct them from the stored projections by
	// keeping the existing PCA basis and fitting k-means in that space
	// over old projections + the new trace's projections.
	rows, err := trace.FeatureMatrixSource(tr.Source(), c.Window)
	if err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, errors.New("core: empty trace")
	}
	newFeat := linalg.FromRows(rows)
	newProj, err := c.PCA.Transform(newFeat)
	if err != nil {
		return nil, err
	}

	total := c.projected.Rows + newProj.Rows
	all := linalg.NewMatrix(total, c.projected.Cols)
	copy(all.Data[:len(c.projected.Data)], c.projected.Data)
	copy(all.Data[len(c.projected.Data):], newProj.Data)

	cats := append(append([]string(nil), c.windowCats...), make([]string, newProj.Rows)...)
	for i := 0; i < newProj.Rows; i++ {
		cats[c.projected.Rows+i] = tr.Name
	}

	km, err := kmeans.Fit(all, kmeans.Config{K: c.KMeans.K() + 1, Seed: seed, Restarts: 5})
	if err != nil {
		return nil, fmt.Errorf("core: retrain: %w", err)
	}
	out := &Clusterer{
		PCA: c.PCA, KMeans: km, Window: c.Window,
		Threshold:  c.Threshold,
		projected:  all,
		windowCats: cats,
	}
	if d := km.MinCenterDistance(); d > 0 && c.Threshold > 0 {
		out.Threshold = d
	}
	out.Labels = majorityLabels(km, cats)
	return out, nil
}
