package core

import (
	"testing"

	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

func trainTraces(t *testing.T, cats []workload.Category, n int) []*trace.Trace {
	t.Helper()
	out := make([]*trace.Trace, len(cats))
	for i, c := range cats {
		out[i] = workload.MustGenerate(c, workload.Options{Requests: n, Seed: 77})
	}
	return out
}

func TestTrainClustererErrors(t *testing.T) {
	if _, err := TrainClusterer(nil, ClustererConfig{}); err == nil {
		t.Fatal("expected error with no traces")
	}
	short := []*trace.Trace{workload.MustGenerate(workload.Database, workload.Options{Requests: 100, Seed: 1})}
	if _, err := TrainClusterer(short, ClustererConfig{K: 5}); err == nil {
		t.Fatal("expected error when windows < K")
	}
}

func TestClusteringSeparatesCategories(t *testing.T) {
	cats := workload.Studied()
	traces := trainTraces(t, cats, 24000) // 8 windows each
	c, err := TrainClusterer(traces, ClustererConfig{K: len(cats), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Every training category should own at least one cluster label.
	owned := map[string]bool{}
	for _, l := range c.Labels {
		owned[l] = true
	}
	if len(owned) < len(cats)-1 {
		t.Fatalf("labels cover only %d categories: %v", len(owned), c.Labels)
	}
	// Fresh traces from the same categories (different seed) must land in
	// the right cluster — the paper's ~95% window-level accuracy claim.
	var fresh []*trace.Trace
	for _, cat := range cats {
		fresh = append(fresh, workload.MustGenerate(cat, workload.Options{Requests: 12000, Seed: 991}))
	}
	acc, err := c.ValidationAccuracy(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.75 {
		t.Fatalf("validation accuracy %.2f too low", acc)
	}
}

func TestAssignKnownAndNovel(t *testing.T) {
	// Five categories: the auto-adjusted threshold is the minimum
	// inter-center distance, so the training set must include reasonably
	// close families for novelty detection to be meaningful.
	cats := []workload.Category{workload.WebSearch, workload.CloudStorage, workload.Database,
		workload.KVStore, workload.Recomm}
	traces := trainTraces(t, cats, 18000)
	c, err := TrainClusterer(traces, ClustererConfig{K: 5, Seed: 2, AutoAdjustThreshold: true})
	if err != nil {
		t.Fatal(err)
	}
	// A fresh WebSearch trace clusters as WebSearch and is not novel.
	ws := workload.MustGenerate(workload.WebSearch, workload.Options{Requests: 9000, Seed: 404})
	a, err := c.Assign(ws)
	if err != nil {
		t.Fatal(err)
	}
	if a.Label != string(workload.WebSearch) {
		t.Fatalf("WebSearch assigned to %q", a.Label)
	}
	if a.IsNew {
		t.Fatalf("WebSearch flagged as new (dist %.2f > thr %.2f)", a.Distance, c.Threshold)
	}
	// A very different workload (tiny log writes) should be far away.
	ra := workload.MustGenerate(workload.RadiusAuth, workload.Options{Requests: 9000, Seed: 404})
	an, err := c.Assign(ra)
	if err != nil {
		t.Fatal(err)
	}
	if an.Distance <= a.Distance {
		t.Fatalf("RadiusAuth dist %.2f should exceed WebSearch dist %.2f", an.Distance, a.Distance)
	}
	if !an.IsNew {
		t.Fatalf("RadiusAuth should be flagged novel (dist %.2f, thr %.2f)", an.Distance, c.Threshold)
	}
	if _, err := c.Assign(&trace.Trace{}); err == nil {
		t.Fatal("empty trace should error")
	}
}

func TestScatterAndDiameter(t *testing.T) {
	cats := []workload.Category{workload.WebSearch, workload.Database}
	c, err := TrainClusterer(trainTraces(t, cats, 12000), ClustererConfig{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	pts := c.Scatter()
	if len(pts) < 6 {
		t.Fatalf("scatter has %d points", len(pts))
	}
	for _, p := range pts {
		if p.Category == "" || p.Cluster < 0 || p.Cluster >= 2 {
			t.Fatalf("bad scatter point %+v", p)
		}
	}
	for cl := 0; cl < 2; cl++ {
		if d := c.ClusterDiameter(cl); d < 0 {
			t.Fatalf("negative diameter %g", d)
		}
	}
	if c.ClusterOf(string(workload.WebSearch)) < 0 {
		t.Fatal("ClusterOf failed for a trained category")
	}
	if c.ClusterOf("nope") != -1 {
		t.Fatal("ClusterOf should return -1 for unknown")
	}
}

func TestClustererSerialization(t *testing.T) {
	cats := []workload.Category{workload.WebSearch, workload.CloudStorage}
	c, err := TrainClusterer(trainTraces(t, cats, 12000), ClustererConfig{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := UnmarshalClusterer(blob)
	if err != nil {
		t.Fatal(err)
	}
	probe := workload.MustGenerate(workload.CloudStorage, workload.Options{Requests: 9000, Seed: 55})
	a1, err1 := c.Assign(probe)
	a2, err2 := c2.Assign(probe)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a1.Cluster != a2.Cluster || a1.Label != a2.Label {
		t.Fatalf("restored model disagrees: %+v vs %+v", a1, a2)
	}
	if _, err := UnmarshalClusterer([]byte("{}")); err == nil {
		t.Fatal("incomplete blob should fail")
	}
	if _, err := UnmarshalClusterer([]byte("not json")); err == nil {
		t.Fatal("bad json should fail")
	}
	if got := len(c.SortedClusterLabels()); got != 2 {
		t.Fatalf("SortedClusterLabels len %d", got)
	}
}

func TestAddWorkloadRetrains(t *testing.T) {
	cats := []workload.Category{workload.WebSearch, workload.CloudStorage, workload.Database}
	c, err := TrainClusterer(trainTraces(t, cats, 18000), ClustererConfig{K: 3, Seed: 2, AutoAdjustThreshold: true})
	if err != nil {
		t.Fatal(err)
	}
	// RadiusAuth is novel; retrain with one more cluster.
	ra := workload.MustGenerate(workload.RadiusAuth, workload.Options{Requests: 12000, Seed: 5})
	c2, err := c.AddWorkload(ra, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c2.KMeans.K() != 4 {
		t.Fatalf("retrained K = %d, want 4", c2.KMeans.K())
	}
	// The new workload now belongs to a cluster labeled after itself.
	a, err := c2.Assign(workload.MustGenerate(workload.RadiusAuth, workload.Options{Requests: 9000, Seed: 6}))
	if err != nil {
		t.Fatal(err)
	}
	if a.Label != string(workload.RadiusAuth) {
		t.Fatalf("after retraining, RadiusAuth assigned to %q", a.Label)
	}
	if a.IsNew {
		t.Fatalf("after retraining, RadiusAuth should not be novel (dist %.2f, thr %.2f)", a.Distance, c2.Threshold)
	}
	// Old categories still resolve.
	ws, err := c2.Assign(workload.MustGenerate(workload.WebSearch, workload.Options{Requests: 9000, Seed: 6}))
	if err != nil {
		t.Fatal(err)
	}
	if ws.Label != string(workload.WebSearch) {
		t.Fatalf("WebSearch lost its cluster after retraining: %q", ws.Label)
	}
	// Deserialized models cannot retrain (no training data).
	blob, _ := c.Marshal()
	restored, _ := UnmarshalClusterer(blob)
	if _, err := restored.AddWorkload(ra, 2); err == nil {
		t.Fatal("deserialized model should refuse AddWorkload")
	}
}
