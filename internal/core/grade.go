package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
)

// Default hyperparameters from the paper's sensitivity studies (§4.6).
const (
	// DefaultAlpha balances latency vs throughput in Formula 1.
	DefaultAlpha = 0.5
	// DefaultBeta balances target vs non-target workloads in Formula 2.
	DefaultBeta = 0.1
)

// Validator measures configurations on workloads with the SSD simulator,
// memoizing results: the same (configuration, workload) pair is never
// simulated twice within a tuning session.
type Validator struct {
	Space *ssdconf.Space
	// Workloads maps a workload-cluster name to its representative
	// traces (the geometric mean is taken within a cluster, per §3.4).
	Workloads map[string][]*trace.Trace

	mu      sync.Mutex
	cache   map[string]autodb.Perf
	simRuns int
	simWall time.Duration
}

// NewValidator builds a validator over one representative trace per
// cluster.
func NewValidator(space *ssdconf.Space, workloads map[string]*trace.Trace) *Validator {
	m := make(map[string][]*trace.Trace, len(workloads))
	for k, tr := range workloads {
		m[k] = []*trace.Trace{tr}
	}
	return &Validator{Space: space, Workloads: m, cache: make(map[string]autodb.Perf)}
}

// NewValidatorGroups builds a validator with multiple traces per cluster.
func NewValidatorGroups(space *ssdconf.Space, groups map[string][]*trace.Trace) *Validator {
	return &Validator{Space: space, Workloads: groups, cache: make(map[string]autodb.Perf)}
}

// SimRuns reports how many simulator invocations were not served from
// cache (the paper's dominant overhead, Table 6).
func (v *Validator) SimRuns() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.simRuns
}

// SimWall reports the cumulative wall-clock time spent inside the SSD
// simulator (efficiency validation time, Table 6).
func (v *Validator) SimWall() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.simWall
}

// MeasureTrace runs one configuration against one trace.
func (v *Validator) MeasureTrace(cfg ssdconf.Config, name string, tr *trace.Trace) (autodb.Perf, error) {
	key := cfg.Key() + "|" + name
	v.mu.Lock()
	if p, ok := v.cache[key]; ok {
		v.mu.Unlock()
		return p, nil
	}
	v.mu.Unlock()

	dev := v.Space.ToDevice(cfg)
	sim, err := ssd.NewSimulator(dev)
	if err != nil {
		return autodb.Perf{}, fmt.Errorf("core: validator: %w", err)
	}
	t0 := time.Now()
	res, err := sim.Run(tr)
	wall := time.Since(t0)
	if err != nil {
		return autodb.Perf{}, fmt.Errorf("core: validator run: %w", err)
	}
	p := autodb.Perf{
		LatencyNS:     res.AvgLatency.Nanoseconds(),
		P99LatencyNS:  res.P99Latency.Nanoseconds(),
		ThroughputBps: res.ThroughputBps,
		EnergyJoules:  res.EnergyJoules,
		PowerWatts:    res.AvgPowerWatts,
	}
	v.mu.Lock()
	v.cache[key] = p
	v.simRuns++
	v.simWall += wall
	v.mu.Unlock()
	return p, nil
}

// MeasureCluster runs cfg on every trace of a cluster and returns the
// per-trace results keyed "<cluster>#<i>".
func (v *Validator) MeasureCluster(cfg ssdconf.Config, cluster string) ([]autodb.Perf, error) {
	traces, ok := v.Workloads[cluster]
	if !ok || len(traces) == 0 {
		return nil, fmt.Errorf("core: unknown workload cluster %q", cluster)
	}
	out := make([]autodb.Perf, len(traces))
	for i, tr := range traces {
		p, err := v.MeasureTrace(cfg, fmt.Sprintf("%s#%d", cluster, i), tr)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// Clusters returns the cluster names in sorted-stable order.
func (v *Validator) Clusters() []string {
	out := make([]string, 0, len(v.Workloads))
	for k := range v.Workloads {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Grader evaluates Formulas 1 and 2.
type Grader struct {
	Alpha float64 // Formula 1 latency/throughput balance
	Beta  float64 // Formula 2 target/non-target penalty balance
	// Ref holds the reference (commodity baseline) measurements per
	// cluster, aligned with the validator's trace lists.
	Ref map[string][]autodb.Perf
}

// NewGrader measures the reference configuration on every cluster.
func NewGrader(v *Validator, refCfg ssdconf.Config, alpha, beta float64) (*Grader, error) {
	g := &Grader{Alpha: alpha, Beta: beta, Ref: make(map[string][]autodb.Perf)}
	for _, cl := range v.Clusters() {
		ps, err := v.MeasureCluster(refCfg, cl)
		if err != nil {
			return nil, err
		}
		g.Ref[cl] = ps
	}
	return g, nil
}

// Performance implements Formula 1:
//
//	(1-α)·log(Lat_ref/Lat_target) + α·log(Tput_target/Tput_ref)
//
// Positive values mean the target configuration beats the reference.
func (g *Grader) Performance(target, ref autodb.Perf) float64 {
	lat := math.Log(float64(ref.LatencyNS) / float64(target.LatencyNS))
	tput := math.Log(target.ThroughputBps / ref.ThroughputBps)
	return (1-g.Alpha)*lat + g.Alpha*tput
}

// ClusterPerformance averages Formula 1 over a cluster's traces. The
// values are log-ratios, so this arithmetic mean is exactly the
// geometric mean of the underlying speedups — the paper's "geometric
// mean ... within each cluster".
func (g *Grader) ClusterPerformance(cluster string, perfs []autodb.Perf) float64 {
	refs := g.Ref[cluster]
	var sum float64
	for i, p := range perfs {
		sum += g.Performance(p, refs[i])
	}
	return sum / float64(len(perfs))
}

// Grade implements Formula 2 given the target cluster's performance and
// the per-cluster performance of the non-targets.
func (g *Grader) Grade(targetPerf float64, nonTarget map[string]float64, numClusters int) float64 {
	if numClusters <= 1 {
		return targetPerf
	}
	var sum float64
	for _, p := range nonTarget {
		sum += p
	}
	return (1-g.Beta)*targetPerf + g.Beta*sum/float64(numClusters-1)
}

// TargetHalf returns the target-only share of the grade — the quantity
// the §3.4 validation-pruning shortcut compares against the worst
// retained grade before deciding whether the non-target runs are worth
// their cost.
func (g *Grader) TargetHalf(targetPerf float64) float64 {
	return (1 - g.Beta) * targetPerf
}

// Speedups converts a measurement pair into the latency/throughput
// speedup ratios the paper's tables report.
func Speedups(target, ref autodb.Perf) (latSpeedup, tputSpeedup float64) {
	return float64(ref.LatencyNS) / float64(target.LatencyNS),
		target.ThroughputBps / ref.ThroughputBps
}
