package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/obs"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
)

// ErrTransient marks a measurement failure worth retrying: wrap (or
// return) it from a trace source or simulator shim when the underlying
// cause is expected to clear — a flaky file handle, a remote trace
// store hiccup. The validator retries transient failures up to
// MaxRetries with exponential backoff; every other error (validation
// errors, ErrOutOfSpace degradation, timeouts, panics) is deterministic
// and fails fast.
var ErrTransient = errors.New("core: transient measurement error")

// PanicError is a panic recovered inside a simulation worker, converted
// to an ordinary error so one poisoned configuration cannot take down a
// whole tuning run. The original panic value and stack are preserved
// for the post-mortem.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("core: simulation panicked: %v", e.Value)
}

// Registry metric names recorded by an instrumented validator. Every
// MeasureTrace call resolves as exactly one of: a cache hit, a coalesced
// wait on another goroutine's in-flight run, a fresh local simulation,
// or a result measured by a remote backend.
const (
	MetricSimRuns       = "validator_sim_runs_total"
	MetricCacheHits     = "validator_cache_hits_total"
	MetricCoalesced     = "validator_coalesced_waits_total"
	MetricRemoteResults = "validator_remote_results_total"
	// MetricQueueWait is the time a fresh simulation waited for a worker
	// slot; MetricSimTime is its in-simulator time. Comparing the two
	// histograms separates queueing pressure from simulation cost.
	MetricQueueWait = "validator_queue_wait_ns"
	MetricSimTime   = "validator_sim_time_ns"
	MetricDedupWait = "validator_dedup_wait_ns"
)

// MetricWorkerBusy names the per-worker busy-time counter of the batch
// pool ("validator_worker_busy_ns{worker=\"N\"}").
func MetricWorkerBusy(worker int) string {
	return fmt.Sprintf(`validator_worker_busy_ns{worker="%d"}`, worker)
}

// Default hyperparameters from the paper's sensitivity studies (§4.6).
const (
	// DefaultAlpha balances latency vs throughput in Formula 1.
	DefaultAlpha = 0.5
	// DefaultBeta balances target vs non-target workloads in Formula 2.
	DefaultBeta = 0.1
)

// simKey identifies one (configuration, trace) simulation in the cache.
// A struct key cannot collide by construction; the former string key
// cfg.Key()+"|"+name was ambiguous for names containing the separator.
type simKey struct {
	cfg  string // ssdconf.Config.Key()
	name string // trace name ("<cluster>#<i>")
}

func cacheKey(cfgKey, name string) simKey { return simKey{cfg: cfgKey, name: name} }

// inflightSim tracks an in-progress simulation so that concurrent
// lookups of the same key wait for the one leader instead of running a
// duplicate simulation (singleflight).
type inflightSim struct {
	done chan struct{}
	perf autodb.Perf
	err  error
}

// Validator measures configurations on workloads with the SSD simulator,
// memoizing results: the same (configuration, workload) pair is never
// simulated twice within a tuning session — not even when requested
// concurrently (in-flight simulations are deduplicated, singleflight).
//
// Simulations fan out over a bounded worker pool: MeasureBatch runs a
// whole (candidate × cluster × trace) frontier concurrently, and a
// validator-wide semaphore bounds the total number of simulations in
// flight across all callers. Because each ssd.Simulator.Run is fully
// independent and deterministic, parallel and serial execution fill the
// cache with bit-identical values.
type Validator struct {
	Space *ssdconf.Space
	// Workloads maps a workload-cluster name to factories for its
	// representative traces (the geometric mean is taken within a
	// cluster, per §3.4). Factories rather than materialized traces:
	// each simulation draws a fresh streaming cursor, so parallel
	// workers never share cursor state or hold duplicate request
	// slices.
	Workloads map[string][]trace.SourceFactory
	// Parallel bounds how many simulations may run concurrently across
	// all measurement calls; 0 (or negative) selects
	// runtime.GOMAXPROCS(0). Set it before the first measurement.
	Parallel int
	// Obs, when non-nil, receives detailed metrics (cache hits, dedup
	// waits, queue wait vs in-sim time, per-worker utilization) and is
	// propagated to every simulator it runs. It never influences
	// measurement results. Set it before the first measurement.
	Obs *obs.Registry
	// SimTimeout, when positive, bounds each individual simulation: a
	// run that exceeds it fails with context.DeadlineExceeded (wrapped).
	// Timeouts are deterministic for a given machine state and are NOT
	// retried — a configuration that simulates slowly once will again.
	SimTimeout time.Duration
	// MaxRetries bounds re-attempts of a simulation that failed with an
	// ErrTransient-wrapped error (50ms exponential backoff between
	// attempts). 0 means no retries.
	MaxRetries int
	// Backend, when non-nil, executes every cold-key measurement —
	// e.g. a dist.Coordinator sharding simulations across a worker
	// fleet. nil selects the in-process pool bounded by Parallel.
	// Because backends must be deterministic, results are bit-identical
	// either way. Set it before the first measurement.
	Backend Backend
	// Persist, when non-nil, is consulted before any cold-key
	// measurement and written after every successful one, carrying the
	// memo cache across process restarts. A persist hit counts as a
	// CacheHit, preserving the accounting law. Set it before the first
	// measurement.
	Persist *PersistentCache

	mu       sync.Mutex
	cache    map[simKey]autodb.Perf
	inflight map[simKey]*inflightSim
	sem      chan struct{} // validator-wide simulation slots (lazy)
	local    *localBackend // default backend (lazy)
	sigCache string        // memoized Space.Signature() (lazy)

	simRuns   atomic.Int64
	simWall   atomic.Int64 // aggregate per-worker in-simulator ns
	cacheHits atomic.Int64
	coalesced atomic.Int64
	remote    atomic.Int64 // results measured by a remote Backend
	// firstStartNS/lastEndNS bracket the real wall-clock span covered by
	// simulations (unix ns): lastEnd-firstStart is elapsed time, not the
	// per-worker sum simWall accumulates.
	firstStartNS atomic.Int64
	lastEndNS    atomic.Int64
}

// NewValidator builds a validator over one representative trace per
// cluster.
func NewValidator(space *ssdconf.Space, workloads map[string]*trace.Trace) *Validator {
	m := make(map[string][]trace.SourceFactory, len(workloads))
	for k, tr := range workloads {
		m[k] = []trace.SourceFactory{tr.Factory()}
	}
	return NewValidatorSources(space, m)
}

// NewValidatorGroups builds a validator with multiple traces per cluster.
func NewValidatorGroups(space *ssdconf.Space, groups map[string][]*trace.Trace) *Validator {
	m := make(map[string][]trace.SourceFactory, len(groups))
	for k, traces := range groups {
		fs := make([]trace.SourceFactory, len(traces))
		for i, tr := range traces {
			fs[i] = tr.Factory()
		}
		m[k] = fs
	}
	return NewValidatorSources(space, m)
}

// NewValidatorSources builds a validator directly over streaming source
// factories — the constant-memory path: no representative trace is ever
// materialized, each simulation re-derives its request stream.
func NewValidatorSources(space *ssdconf.Space, groups map[string][]trace.SourceFactory) *Validator {
	return &Validator{
		Space:     space,
		Workloads: groups,
		cache:     make(map[simKey]autodb.Perf),
		inflight:  make(map[simKey]*inflightSim),
	}
}

// SimRuns reports how many simulator invocations were not served from
// cache (the paper's dominant overhead, Table 6).
func (v *Validator) SimRuns() int { return int(v.simRuns.Load()) }

// SimWall reports the cumulative time spent inside the SSD simulator,
// summed over all workers (efficiency validation time, Table 6).
//
// Deprecated: the name suggests wall-clock time, but under parallel
// validation the per-worker sum exceeds the real elapsed span. Use
// Stats(), which reports both quantities unambiguously (SimBusy vs
// WallSpan).
func (v *Validator) SimWall() time.Duration { return time.Duration(v.simWall.Load()) }

// ValidatorStats is a point-in-time snapshot of the validator's
// always-on counters (kept regardless of whether Obs is set).
type ValidatorStats struct {
	// SimRuns counts fresh simulations (distinct cold keys).
	SimRuns int64
	// CacheHits counts MeasureTrace calls served from the memo cache.
	CacheHits int64
	// CoalescedWaits counts calls that waited on another goroutine's
	// in-flight simulation of the same key (singleflight dedup).
	CoalescedWaits int64
	// RemoteResults counts cold keys measured by a remote Backend
	// instead of the local pool. The accounting law extends to
	// SimRuns + CacheHits + CoalescedWaits + RemoteResults == calls.
	RemoteResults int64
	// Backend is the executing backend's own decomposition of where
	// jobs spent their time (queue wait vs execution), so remote
	// queueing delay is reported separately from local busy time.
	Backend BackendStats
	// SimBusy is the aggregate in-simulator time summed over workers;
	// under parallel validation it exceeds WallSpan by up to the worker
	// count.
	SimBusy time.Duration
	// WallSpan is the real elapsed span from the first simulation's start
	// to the last simulation's end (0 until a simulation ran). It still
	// includes any non-simulation time between batches, so it upper-bounds
	// rather than equals total simulation wall time.
	WallSpan time.Duration
}

// Utilization returns SimBusy / (workers × WallSpan): the mean fraction
// of the worker pool kept busy over the simulated span.
func (s ValidatorStats) Utilization(workers int) float64 {
	if workers <= 0 || s.WallSpan <= 0 {
		return 0
	}
	return float64(s.SimBusy) / (float64(workers) * float64(s.WallSpan))
}

// Stats snapshots the validator counters.
func (v *Validator) Stats() ValidatorStats {
	st := ValidatorStats{
		SimRuns:        v.simRuns.Load(),
		CacheHits:      v.cacheHits.Load(),
		CoalescedWaits: v.coalesced.Load(),
		RemoteResults:  v.remote.Load(),
		SimBusy:        time.Duration(v.simWall.Load()),
	}
	be, _ := v.backend()
	st.Backend = be.Stats()
	if first := v.firstStartNS.Load(); first != 0 {
		if last := v.lastEndNS.Load(); last > first {
			st.WallSpan = time.Duration(last - first)
		}
	}
	return st
}

// markSimSpan folds one simulation's [start, end] into the wall-span
// bracket.
func (v *Validator) markSimSpan(start, end time.Time) {
	s, e := start.UnixNano(), end.UnixNano()
	for {
		cur := v.firstStartNS.Load()
		if cur != 0 && cur <= s {
			break
		}
		if v.firstStartNS.CompareAndSwap(cur, s) {
			break
		}
	}
	for {
		cur := v.lastEndNS.Load()
		if cur >= e {
			break
		}
		if v.lastEndNS.CompareAndSwap(cur, e) {
			break
		}
	}
}

// workers resolves the concurrency bound.
func (v *Validator) workers() int {
	if v.Parallel > 0 {
		return v.Parallel
	}
	return runtime.GOMAXPROCS(0)
}

// slots returns the validator-wide simulation semaphore, sized on first
// use from the Parallel bound.
func (v *Validator) slots() chan struct{} {
	v.mu.Lock()
	if v.sem == nil {
		v.sem = make(chan struct{}, v.workers())
	}
	s := v.sem
	v.mu.Unlock()
	return s
}

// backend resolves the executing backend, materializing the in-process
// pool on first use when none is configured. remote reports whether the
// backend came from the Backend field.
func (v *Validator) backend() (be Backend, remote bool) {
	if b := v.Backend; b != nil {
		return b, true
	}
	v.mu.Lock()
	if v.local == nil {
		v.local = &localBackend{v: v}
	}
	b := v.local
	v.mu.Unlock()
	return b, false
}

// MeasureTrace runs one configuration against one trace, drawing a
// fresh streaming cursor from the factory. Concurrent calls with the
// same (configuration, trace) share a single simulation. Failed or
// cancelled measurements are never cached: a later call with the same
// key re-simulates.
func (v *Validator) MeasureTrace(ctx context.Context, cfg ssdconf.Config, name string, f trace.SourceFactory) (autodb.Perf, error) {
	key := cacheKey(cfg.Key(), name)
	v.mu.Lock()
	if p, ok := v.cache[key]; ok {
		v.mu.Unlock()
		v.cacheHits.Add(1)
		v.Obs.Counter(MetricCacheHits).Inc()
		return p, nil
	}
	if fl, ok := v.inflight[key]; ok {
		// Another goroutine is already simulating this key: wait for it
		// rather than duplicating the run. A cancelled waiter abandons
		// the wait; the leader's simulation still completes and fills
		// the cache.
		v.mu.Unlock()
		v.coalesced.Add(1)
		v.Obs.Counter(MetricCoalesced).Inc()
		t0 := time.Now()
		select {
		case <-fl.done:
		case <-ctx.Done():
			return autodb.Perf{}, ctx.Err()
		}
		if r := v.Obs; r != nil {
			r.Histogram(MetricDedupWait).Record(time.Since(t0).Nanoseconds())
		}
		return fl.perf, fl.err
	}
	fl := &inflightSim{done: make(chan struct{})}
	v.inflight[key] = fl
	v.mu.Unlock()

	// The durable cache sits between the memo cache and the backend: a
	// restart-surviving hit skips the simulation entirely and fills the
	// memo cache, counting as a CacheHit so the accounting law holds.
	if p := v.Persist; p != nil {
		if perf, ok := p.Get(v.persistSig(), key.cfg, key.name); ok {
			fl.perf = perf
			v.cacheHits.Add(1)
			v.Obs.Counter(MetricCacheHits).Inc()
			v.mu.Lock()
			v.cache[key] = perf
			delete(v.inflight, key)
			v.mu.Unlock()
			close(fl.done)
			return perf, nil
		}
	}

	be, remote := v.backend()
	fl.perf, fl.err = be.Measure(ctx, Job{Cfg: cfg, Name: name, Src: f})
	if remote && fl.err == nil {
		v.remote.Add(1)
		v.Obs.Counter(MetricRemoteResults).Inc()
	}

	v.mu.Lock()
	if fl.err == nil {
		v.cache[key] = fl.perf
	}
	delete(v.inflight, key) // errors are not cached; a retry re-simulates
	v.mu.Unlock()
	close(fl.done)
	if fl.err == nil && v.Persist != nil {
		v.Persist.Put(v.persistSig(), key.cfg, key.name, fl.perf)
	}
	return fl.perf, fl.err
}

// persistSig lazily computes and caches the space signature that scopes
// every persistent-cache key.
func (v *Validator) persistSig() string {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.sigCache == "" {
		v.sigCache = v.Space.Signature()
	}
	return v.sigCache
}

// simulate runs one simulation inside a worker slot, retrying
// ErrTransient failures with exponential backoff (50ms, doubling) up to
// MaxRetries. Deterministic failures — bad parameters, fault-driven
// ErrOutOfSpace, per-simulation timeouts, panics — return on the first
// attempt. The returned duration is the successful attempt's
// in-simulator time (0 on failure), feeding the backend's SimBusy.
func (v *Validator) simulate(ctx context.Context, cfg ssdconf.Config, f trace.SourceFactory) (autodb.Perf, time.Duration, error) {
	backoff := 50 * time.Millisecond
	for attempt := 0; ; attempt++ {
		perf, d, err := v.simulateOnce(ctx, cfg, f)
		if err == nil || attempt >= v.MaxRetries || !errors.Is(err, ErrTransient) {
			if err != nil && attempt >= v.MaxRetries && errors.Is(err, ErrTransient) {
				obs.RecordEvent("warn-sim-failed", "cfg", cfg.Key(),
					"attempts", strconv.Itoa(attempt+1), "err", err.Error())
			}
			return perf, d, err
		}
		obs.RecordEvent("sim-retry", "cfg", cfg.Key(),
			"attempt", strconv.Itoa(attempt+1), "err", err.Error())
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return autodb.Perf{}, 0, ctx.Err()
		}
		backoff *= 2
	}
}

// simulateOnce is the uncached single-simulation path. The factory is
// invoked here, inside the worker slot, so each concurrent simulation
// owns a private cursor. A panic anywhere below — the source, the FTL,
// the codec — surfaces as a *PanicError instead of crashing the worker
// pool, and SimTimeout (when set) bounds the attempt.
func (v *Validator) simulateOnce(ctx context.Context, cfg ssdconf.Config, f trace.SourceFactory) (perf autodb.Perf, simDur time.Duration, err error) {
	defer func() {
		if r := recover(); r != nil {
			perf, simDur = autodb.Perf{}, 0
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	dev := v.Space.ToDevice(cfg)
	sim, err := ssd.NewSimulator(dev)
	if err != nil {
		return autodb.Perf{}, 0, fmt.Errorf("core: validator: %w", err)
	}
	sim.Obs = v.Obs
	if v.SimTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, v.SimTimeout)
		defer cancel()
	}
	t0 := time.Now()
	res, err := sim.RunSourceContext(ctx, f())
	if err != nil {
		return autodb.Perf{}, 0, fmt.Errorf("core: validator run: %w", err)
	}
	t1 := time.Now()
	v.simRuns.Add(1)
	v.simWall.Add(t1.Sub(t0).Nanoseconds())
	v.markSimSpan(t0, t1)
	v.Obs.Counter(MetricSimRuns).Inc()
	v.Obs.Histogram(MetricSimTime).Record(t1.Sub(t0).Nanoseconds())
	return autodb.Perf{
		LatencyNS:           res.AvgLatency.Nanoseconds(),
		P99LatencyNS:        res.P99Latency.Nanoseconds(),
		ThroughputBps:       res.ThroughputBps,
		EnergyJoules:        res.EnergyJoules,
		PowerWatts:          res.AvgPowerWatts,
		MaxEraseCount:       res.Wear.MaxEraseCount,
		WearImbalance:       res.Wear.Imbalance,
		ProjectedLifetimeNS: res.Wear.ProjectedLifetime.Nanoseconds(),
	}, t1.Sub(t0), nil
}

// CachedPerf is one memoized (configuration, trace) measurement in
// portable form, used by checkpoint files to carry the cache across a
// process restart.
type CachedPerf struct {
	CfgKey string      `json:"cfg"`
	Name   string      `json:"trace"`
	Perf   autodb.Perf `json:"perf"`
}

// SnapshotCache exports the measurement cache in deterministic (CfgKey,
// Name) order. Only completed, error-free measurements are ever in the
// cache, so a snapshot taken at any instant — even mid-batch — is
// consistent.
func (v *Validator) SnapshotCache() []CachedPerf {
	v.mu.Lock()
	out := make([]CachedPerf, 0, len(v.cache))
	for k, p := range v.cache {
		out = append(out, CachedPerf{CfgKey: k.cfg, Name: k.name, Perf: p})
	}
	v.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].CfgKey != out[j].CfgKey {
			return out[i].CfgKey < out[j].CfgKey
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// RestoreCache seeds the measurement cache from a snapshot, so a
// resumed tuning run re-validates nothing it already measured.
func (v *Validator) RestoreCache(entries []CachedPerf) {
	v.mu.Lock()
	for _, e := range entries {
		v.cache[cacheKey(e.CfgKey, e.Name)] = e.Perf
	}
	v.mu.Unlock()
}

// MeasureBatch measures every (configuration × cluster × trace)
// combination, fanning the simulations out over the validator's worker
// bound. It warms the cache; callers read results back through
// MeasureTrace / MeasureCluster, which then hit. Overlapping keys —
// within the batch or against other concurrent callers — trigger
// exactly one simulation each, so SimRuns grows by exactly the number
// of distinct cold keys.
func (v *Validator) MeasureBatch(ctx context.Context, cfgs []ssdconf.Config, clusters []string) error {
	var jobs []Job
	for _, cl := range clusters {
		factories, ok := v.Workloads[cl]
		if !ok || len(factories) == 0 {
			return fmt.Errorf("core: unknown workload cluster %q", cl)
		}
		for _, cfg := range cfgs {
			for i, f := range factories {
				jobs = append(jobs, Job{Cfg: cfg, Name: traceName(cl, i), Src: f})
			}
		}
	}
	return v.measureJobs(ctx, jobs)
}

// MeasureConfigs measures many configurations against one explicit
// trace — the batch entry point for the §3.3 pruning sweeps.
func (v *Validator) MeasureConfigs(ctx context.Context, cfgs []ssdconf.Config, name string, f trace.SourceFactory) error {
	jobs := make([]Job, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = Job{Cfg: cfg, Name: name, Src: f}
	}
	return v.measureJobs(ctx, jobs)
}

// measureJobs drains the job list through a bounded worker pool. The
// first error wins; remaining queued jobs are skipped. Cancelling ctx
// drains the queue without starting new simulations.
func (v *Validator) measureJobs(ctx context.Context, jobs []Job) error {
	n := v.workers()
	if v.Backend != nil {
		// A remote fleet bounds concurrency on the workers' side; the
		// local goroutines only wait on leases, so fan every job out at
		// once (capped) to keep the coordinator's queue full.
		n = len(jobs)
		if n > 256 {
			n = 256
		}
	}
	if n > len(jobs) {
		n = len(jobs)
	}
	if n <= 1 {
		for _, j := range jobs {
			if _, err := v.MeasureTrace(ctx, j.Cfg, j.Name, j.Src); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
		failed   atomic.Bool
	)
	ch := make(chan Job)
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker busy time: utilization = busy / batch span.
			var busy *obs.Counter
			if r := v.Obs; r != nil {
				busy = r.Counter(MetricWorkerBusy(w))
			}
			for j := range ch {
				if failed.Load() || ctx.Err() != nil {
					continue
				}
				t0 := time.Now()
				if _, err := v.MeasureTrace(ctx, j.Cfg, j.Name, j.Src); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
				}
				if busy != nil {
					busy.Add(time.Since(t0).Nanoseconds())
				}
			}
		}(w)
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if firstErr == nil {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	return firstErr
}

// traceName is the canonical cache name of a cluster's i-th trace.
func traceName(cluster string, i int) string { return fmt.Sprintf("%s#%d", cluster, i) }

// MeasureCluster runs cfg on every trace of a cluster and returns the
// per-trace results keyed "<cluster>#<i>".
func (v *Validator) MeasureCluster(ctx context.Context, cfg ssdconf.Config, cluster string) ([]autodb.Perf, error) {
	factories, ok := v.Workloads[cluster]
	if !ok || len(factories) == 0 {
		return nil, fmt.Errorf("core: unknown workload cluster %q", cluster)
	}
	out := make([]autodb.Perf, len(factories))
	for i, f := range factories {
		p, err := v.MeasureTrace(ctx, cfg, traceName(cluster, i), f)
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

// Clusters returns the cluster names in sorted-stable order.
func (v *Validator) Clusters() []string {
	out := make([]string, 0, len(v.Workloads))
	for k := range v.Workloads {
		out = append(out, k)
	}
	sortStrings(out)
	return out
}

// NonTargetClusters returns every cluster except the target, sorted.
func (v *Validator) NonTargetClusters(target string) []string {
	out := make([]string, 0, len(v.Workloads))
	for k := range v.Workloads {
		if k != target {
			out = append(out, k)
		}
	}
	sortStrings(out)
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Grader evaluates Formulas 1 and 2.
type Grader struct {
	Alpha float64 // Formula 1 latency/throughput balance
	Beta  float64 // Formula 2 target/non-target penalty balance
	// Ref holds the reference (commodity baseline) measurements per
	// cluster, aligned with the validator's trace lists.
	Ref map[string][]autodb.Perf
}

// NewGrader measures the reference configuration on every cluster, as
// one parallel batch.
func NewGrader(ctx context.Context, v *Validator, refCfg ssdconf.Config, alpha, beta float64) (*Grader, error) {
	g := &Grader{Alpha: alpha, Beta: beta, Ref: make(map[string][]autodb.Perf)}
	clusters := v.Clusters()
	sp := obs.StartSpan("reference").ArgInt("clusters", int64(len(clusters)))
	defer sp.End()
	if err := v.MeasureBatch(ctx, []ssdconf.Config{refCfg}, clusters); err != nil {
		return nil, err
	}
	for _, cl := range clusters {
		ps, err := v.MeasureCluster(ctx, refCfg, cl)
		if err != nil {
			return nil, err
		}
		g.Ref[cl] = ps
	}
	return g, nil
}

// Performance implements Formula 1:
//
//	(1-α)·log(Lat_ref/Lat_target) + α·log(Tput_target/Tput_ref)
//
// Positive values mean the target configuration beats the reference.
func (g *Grader) Performance(target, ref autodb.Perf) float64 {
	lat := math.Log(float64(ref.LatencyNS) / float64(target.LatencyNS))
	tput := math.Log(target.ThroughputBps / ref.ThroughputBps)
	return (1-g.Alpha)*lat + g.Alpha*tput
}

// ClusterPerformance averages Formula 1 over a cluster's traces. The
// values are log-ratios, so this arithmetic mean is exactly the
// geometric mean of the underlying speedups — the paper's "geometric
// mean ... within each cluster".
func (g *Grader) ClusterPerformance(cluster string, perfs []autodb.Perf) float64 {
	refs := g.Ref[cluster]
	var sum float64
	for i, p := range perfs {
		sum += g.Performance(p, refs[i])
	}
	return sum / float64(len(perfs))
}

// Grade implements Formula 2 given the target cluster's performance and
// the per-cluster performance of the non-targets.
func (g *Grader) Grade(targetPerf float64, nonTarget map[string]float64, numClusters int) float64 {
	if numClusters <= 1 {
		return targetPerf
	}
	var sum float64
	for _, p := range nonTarget {
		sum += p
	}
	return (1-g.Beta)*targetPerf + g.Beta*sum/float64(numClusters-1)
}

// TargetHalf returns the target-only share of the grade — the quantity
// the §3.4 validation-pruning shortcut compares against the worst
// retained grade before deciding whether the non-target runs are worth
// their cost.
func (g *Grader) TargetHalf(targetPerf float64) float64 {
	return (1 - g.Beta) * targetPerf
}

// Speedups converts a measurement pair into the latency/throughput
// speedup ratios the paper's tables report.
func Speedups(target, ref autodb.Perf) (latSpeedup, tputSpeedup float64) {
	return float64(ref.LatencyNS) / float64(target.LatencyNS),
		target.ThroughputBps / ref.ThroughputBps
}
