package core

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"autoblox/internal/obs"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// TestCacheKeyRegression guards the struct-key fix: the former string
// key cfg.Key()+"|"+name could not tell ("a", "b|c") from ("a|b", "c").
func TestCacheKeyRegression(t *testing.T) {
	if cacheKey("a", "b|c") == cacheKey("a|b", "c") {
		t.Fatal("cache key collides across the config/name boundary")
	}
	if cacheKey("a", "b") != cacheKey("a", "b") {
		t.Fatal("identical inputs must produce identical keys")
	}
}

// TestCacheKeyPipeClusterNames is the behavioral half of the regression:
// a validator whose cluster names contain the old separator must still
// treat distinct (config, trace) pairs as distinct simulations.
func TestCacheKeyPipeClusterNames(t *testing.T) {
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	tr := workload.MustGenerate(workload.Database, workload.Options{Requests: 1500, Seed: 3})
	v := NewValidator(space, map[string]*trace.Trace{"a|b": tr, "a": tr})
	ref := space.FromDevice(ssd.Intel750())
	if _, err := v.MeasureTrace(context.Background(), ref, "a|b#0", tr.Factory()); err != nil {
		t.Fatal(err)
	}
	if _, err := v.MeasureTrace(context.Background(), ref, "a#0", tr.Factory()); err != nil {
		t.Fatal(err)
	}
	if got := v.SimRuns(); got != 2 {
		t.Fatalf("SimRuns = %d, want 2 distinct simulations", got)
	}
}

// distinctConfigs derives n configurations with distinct cache keys by
// walking one numeric parameter's grid.
func distinctConfigs(t *testing.T, space *ssdconf.Space, ref ssdconf.Config, n int) []ssdconf.Config {
	t.Helper()
	i, err := space.ParamIndex("QueueDepth")
	if err != nil {
		t.Fatal(err)
	}
	vals := len(space.Params[i].Values)
	if n > vals {
		t.Fatalf("need %d values on QueueDepth, grid has %d", n, vals)
	}
	out := make([]ssdconf.Config, n)
	for k := 0; k < n; k++ {
		cfg := ref.Clone()
		cfg[i] = k
		out[k] = cfg
	}
	return out
}

// TestMeasureBatchMatchesSerial: the parallel batch path must fill the
// cache with measurements identical to the serial MeasureTrace path.
func TestMeasureBatchMatchesSerial(t *testing.T) {
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	ws := map[string]*trace.Trace{
		"Database":  workload.MustGenerate(workload.Database, workload.Options{Requests: 1500, Seed: 5}),
		"WebSearch": workload.MustGenerate(workload.WebSearch, workload.Options{Requests: 1500, Seed: 5}),
	}
	ref := space.FromDevice(ssd.Intel750())
	cfgs := distinctConfigs(t, space, ref, 3)

	serial := NewValidator(space, ws)
	serial.Parallel = 1
	par := NewValidator(space, ws)
	par.Parallel = 8

	if err := par.MeasureBatch(context.Background(), cfgs, par.Clusters()); err != nil {
		t.Fatal(err)
	}
	for _, cfg := range cfgs {
		for _, cl := range serial.Clusters() {
			name := cl + "#0"
			a, err := serial.MeasureTrace(context.Background(), cfg, name, ws[cl].Factory())
			if err != nil {
				t.Fatal(err)
			}
			b, err := par.MeasureTrace(context.Background(), cfg, name, ws[cl].Factory()) // cache hit
			if err != nil {
				t.Fatal(err)
			}
			if a != b {
				t.Fatalf("parallel result differs for %s/%s:\n serial   %+v\n parallel %+v",
					cfg.Key(), name, a, b)
			}
		}
	}
	want := len(cfgs) * len(ws)
	if got := par.SimRuns(); got != want {
		t.Fatalf("parallel SimRuns = %d, want %d", got, want)
	}
}

// TestSingleflightStress hammers the validator from 64 goroutines with
// heavily overlapping keys. Exactly one simulation per distinct key may
// run: SimRuns must equal the number of distinct (config, trace) pairs.
func TestSingleflightStress(t *testing.T) {
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	ws := map[string]*trace.Trace{
		"Database": workload.MustGenerate(workload.Database, workload.Options{Requests: 1500, Seed: 7}),
		"KVStore":  workload.MustGenerate(workload.KVStore, workload.Options{Requests: 1500, Seed: 7}),
	}
	v := NewValidator(space, ws)
	v.Parallel = 8
	ref := space.FromDevice(ssd.Intel750())
	cfgs := distinctConfigs(t, space, ref, 4)
	clusters := v.Clusters()

	const goroutines = 64
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%2 == 0 {
				// Half the goroutines batch everything at once...
				if err := v.MeasureBatch(context.Background(), cfgs, clusters); err != nil {
					errs <- err
				}
				return
			}
			// ...the rest issue single lookups in rotating order.
			for k := 0; k < len(cfgs)*len(clusters); k++ {
				cfg := cfgs[(g+k)%len(cfgs)]
				cl := clusters[(g+k)%len(clusters)]
				if _, err := v.MeasureTrace(context.Background(), cfg, cl+"#0", ws[cl].Factory()); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	distinct := len(cfgs) * len(clusters)
	if got := v.SimRuns(); got != distinct {
		t.Fatalf("SimRuns = %d, want %d (duplicate simulation slipped past singleflight)", got, distinct)
	}

	// Dedup accounting: every MeasureTrace call resolves as exactly one of
	// {fresh simulation, cache hit, coalesced wait}. The batching half
	// issues 8 lookups per MeasureBatch, the lookup half 8 each.
	st := v.Stats()
	totalCalls := int64(goroutines * len(cfgs) * len(clusters))
	if st.SimRuns != int64(distinct) {
		t.Fatalf("Stats().SimRuns = %d, want %d", st.SimRuns, distinct)
	}
	if got := st.SimRuns + st.CacheHits + st.CoalescedWaits; got != totalCalls {
		t.Fatalf("fresh(%d) + cacheHits(%d) + coalesced(%d) = %d, want %d total MeasureTrace calls",
			st.SimRuns, st.CacheHits, st.CoalescedWaits, got, totalCalls)
	}
	if st.SimBusy <= 0 || st.WallSpan <= 0 {
		t.Fatalf("Stats() timing not recorded: SimBusy=%v WallSpan=%v", st.SimBusy, st.WallSpan)
	}
}

// parallelTunerEnv is testEnv with an explicit worker bound, applied
// before the grader's reference batch so every simulation goes through
// the configured pool.
func parallelTunerEnv(t *testing.T, parallel int, reg *obs.Registry) (*ssdconf.Space, *Validator, *Grader, ssdconf.Config) {
	t.Helper()
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	ws := map[string]*trace.Trace{}
	for _, c := range []workload.Category{workload.Database, workload.WebSearch, workload.CloudStorage} {
		ws[string(c)] = workload.MustGenerate(c, workload.Options{Requests: 2000, Seed: 21})
	}
	v := NewValidator(space, ws)
	v.Parallel = parallel
	v.Obs = reg
	ref := space.FromDevice(ssd.Intel750())
	g, err := NewGrader(context.Background(), v, ref, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	return space, v, g, ref
}

// TestTuneSerialParallelEquivalence is the acceptance-criteria test:
// Tune at -parallel 1 and -parallel 8 with the same seed must return the
// identical best configuration, grade, trajectory and simulation count —
// and so must a fully instrumented run (metrics registry + active
// tracer), proving observability never perturbs results.
func TestTuneSerialParallelEquivalence(t *testing.T) {
	run := func(parallel int, reg *obs.Registry) *TuneResult {
		space, v, g, ref := parallelTunerEnv(t, parallel, reg)
		tuner, err := NewTuner(space, v, g, TunerOptions{Seed: 5, MaxIterations: 6, SGDSteps: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tuner.Tune(context.Background(), string(workload.Database), []ssdconf.Config{ref})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1, nil)
	parallel := run(8, nil)

	// Third run: parallel AND observed — metrics registry attached and a
	// live global tracer capturing spans. Must be bit-for-bit identical
	// to the uninstrumented serial run.
	reg := obs.NewRegistry()
	var traceBuf bytes.Buffer
	obs.SetTracer(obs.NewTracer(&traceBuf))
	observed := run(8, reg)
	obs.SetTracer(nil)

	check := func(label string, got *TuneResult) {
		t.Helper()
		if !ssdconf.Equal(serial.Best, got.Best) {
			t.Fatalf("best configs differ:\n serial %s\n %s %s",
				serial.Best.Key(), label, got.Best.Key())
		}
		if serial.BestGrade != got.BestGrade {
			t.Fatalf("best grades differ: serial %v, %s %v", serial.BestGrade, label, got.BestGrade)
		}
		if serial.Iterations != got.Iterations {
			t.Fatalf("iteration counts differ: serial %d, %s %d", serial.Iterations, label, got.Iterations)
		}
		if len(serial.Trajectory) != len(got.Trajectory) {
			t.Fatalf("trajectory lengths differ: %d vs %s %d", len(serial.Trajectory), label, len(got.Trajectory))
		}
		for i := range serial.Trajectory {
			if serial.Trajectory[i] != got.Trajectory[i] {
				t.Fatalf("trajectories diverge at %d: %v vs %s %v",
					i, serial.Trajectory[i], label, got.Trajectory[i])
			}
		}
		if serial.SimRuns != got.SimRuns {
			t.Fatalf("simulation counts differ: serial %d, %s %d (a duplicate or skipped sim)",
				serial.SimRuns, label, got.SimRuns)
		}
	}
	check("parallel", parallel)
	check("observed", observed)

	// The instrumented run must actually have produced telemetry.
	if got := reg.Counter(MetricSimRuns).Value(); got == 0 {
		t.Fatal("instrumented run recorded no simulations in the registry")
	}
	if reg.Histogram(MetricSimTime).Count() == 0 {
		t.Fatal("instrumented run recorded no sim-time samples")
	}
	if !bytes.Contains(traceBuf.Bytes(), []byte(`"name":"tune"`)) ||
		!bytes.Contains(traceBuf.Bytes(), []byte(`"name":"iteration"`)) {
		t.Fatalf("trace output missing tune/iteration spans:\n%.500s", traceBuf.String())
	}
}
