package core

import (
	"context"
	"math"
	"testing"

	"autoblox/internal/autodb"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// testEnv builds a small validator + grader over a few clusters.
func testEnv(t *testing.T, cats []workload.Category, requests int) (*ssdconf.Space, *Validator, *Grader, ssdconf.Config) {
	t.Helper()
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	ws := map[string]*trace.Trace{}
	for _, c := range cats {
		ws[string(c)] = workload.MustGenerate(c, workload.Options{Requests: requests, Seed: 21})
	}
	v := NewValidator(space, ws)
	ref := space.FromDevice(ssd.Intel750())
	g, err := NewGrader(context.Background(), v, ref, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	return space, v, g, ref
}

func TestPerformanceFormula(t *testing.T) {
	g := &Grader{Alpha: 0.5}
	ref := autodb.Perf{LatencyNS: 200, ThroughputBps: 100}
	tgt := autodb.Perf{LatencyNS: 100, ThroughputBps: 200}
	// 0.5·ln(2) + 0.5·ln(2) = ln(2)
	if got := g.Performance(tgt, ref); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("Performance = %g, want ln2", got)
	}
	// Identical perf → 0.
	if got := g.Performance(ref, ref); got != 0 {
		t.Fatalf("self performance = %g", got)
	}
	// Alpha extremes isolate the two metrics.
	gLat := &Grader{Alpha: 0}
	if got := gLat.Performance(tgt, ref); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("alpha=0 should be pure latency: %g", got)
	}
	gTput := &Grader{Alpha: 1}
	slow := autodb.Perf{LatencyNS: 1000, ThroughputBps: 200}
	if got := gTput.Performance(slow, ref); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("alpha=1 should ignore latency: %g", got)
	}
}

func TestGradeFormula(t *testing.T) {
	g := &Grader{Beta: 0.1}
	nonTarget := map[string]float64{"a": 0.2, "b": 0.4}
	// (1-0.1)*1.0 + 0.1*(0.6/2) with NumClusters=3
	want := 0.9*1.0 + 0.1*0.3
	if got := g.Grade(1.0, nonTarget, 3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Grade = %g, want %g", got, want)
	}
	// Single cluster: grade is the target performance.
	if got := g.Grade(1.0, nil, 1); got != 1.0 {
		t.Fatalf("single-cluster grade = %g", got)
	}
	if got := g.TargetHalf(2.0); math.Abs(got-1.8) > 1e-12 {
		t.Fatalf("TargetHalf = %g", got)
	}
}

func TestSpeedups(t *testing.T) {
	ref := autodb.Perf{LatencyNS: 300, ThroughputBps: 100}
	tgt := autodb.Perf{LatencyNS: 100, ThroughputBps: 150}
	lat, tput := Speedups(tgt, ref)
	if lat != 3 || tput != 1.5 {
		t.Fatalf("Speedups = %g/%g", lat, tput)
	}
}

func TestValidatorCaching(t *testing.T) {
	_, v, _, ref := testEnv(t, []workload.Category{workload.Database}, 2500)
	runs := v.SimRuns()
	if _, err := v.MeasureCluster(context.Background(), ref, string(workload.Database)); err != nil {
		t.Fatal(err)
	}
	if v.SimRuns() != runs {
		t.Fatal("reference measurement should be cached by NewGrader")
	}
	if _, err := v.MeasureCluster(context.Background(), ref, "nope"); err == nil {
		t.Fatal("unknown cluster should error")
	}
}

func TestGraderReferenceIsZero(t *testing.T) {
	_, v, g, ref := testEnv(t, []workload.Category{workload.Database, workload.WebSearch}, 2500)
	for _, cl := range v.Clusters() {
		ps, err := v.MeasureCluster(context.Background(), ref, cl)
		if err != nil {
			t.Fatal(err)
		}
		if p := g.ClusterPerformance(cl, ps); p != 0 {
			t.Fatalf("reference performance on %s = %g, want 0", cl, p)
		}
	}
}

func TestClusterPerformanceIsGeometricMean(t *testing.T) {
	g := &Grader{Alpha: 0, Ref: map[string][]autodb.Perf{
		"x": {{LatencyNS: 100, ThroughputBps: 1}, {LatencyNS: 100, ThroughputBps: 1}},
	}}
	perfs := []autodb.Perf{
		{LatencyNS: 50, ThroughputBps: 1},  // 2× speedup
		{LatencyNS: 200, ThroughputBps: 1}, // 0.5× speedup
	}
	// Geometric mean of 2 and 0.5 is 1 → log-mean 0.
	if got := g.ClusterPerformance("x", perfs); math.Abs(got) > 1e-12 {
		t.Fatalf("ClusterPerformance = %g, want 0", got)
	}
}

func TestValidatorGroups(t *testing.T) {
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	a := workload.MustGenerate(workload.Database, workload.Options{Requests: 2000, Seed: 1})
	b := workload.MustGenerate(workload.Database, workload.Options{Requests: 2000, Seed: 2})
	v := NewValidatorGroups(space, map[string][]*trace.Trace{"Database": {a, b}})
	ref := space.FromDevice(ssd.Intel750())
	ps, err := v.MeasureCluster(context.Background(), ref, "Database")
	if err != nil || len(ps) != 2 {
		t.Fatalf("MeasureCluster: %d %v", len(ps), err)
	}
}
