package core

import (
	"fmt"
	"math"
	"sort"

	"autoblox/internal/autodb"
	"autoblox/internal/ssdconf"
)

// Gauge names the Pareto tuner exports (front quality per iteration).
const (
	MetricFrontSize        = "tuner_front_size"
	MetricFrontHypervolume = "tuner_front_hypervolume"
)

// meanPower averages the modeled power draw across a cluster's
// measurements — the power objective axis.
func meanPower(perfs []autodb.Perf) float64 {
	if len(perfs) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range perfs {
		sum += p.PowerWatts
	}
	return sum / float64(len(perfs))
}

// minLifetimeNS is the worst finite lifetime projection across a
// cluster's measurements — the lifetime objective axis. Traces that
// observed no erases project no wear-out and are skipped; 0 means no
// trace wore the device at all (unbounded lifetime).
func minLifetimeNS(perfs []autodb.Perf) int64 {
	min := int64(0)
	for _, p := range perfs {
		if p.ProjectedLifetimeNS <= 0 {
			continue
		}
		if min == 0 || p.ProjectedLifetimeNS < min {
			min = p.ProjectedLifetimeNS
		}
	}
	return min
}

// Multi-objective Pareto tuning. The historical tuner optimizes one
// scalar grade (Formulas 1–2); the objective refactor generalizes it to
// a vector — performance grade, mean power draw, projected device
// lifetime — searched with an NSGA-style non-dominated sort plus
// crowding-distance selection. The scalar spec short-circuits every
// code path here, so a scalar tune executes the exact historical
// sequence (same RNG draws, same grades, same checkpoints).

// ObjectiveSpec declares which axes a tune optimizes; it lives in
// ssdconf so the space signature (and therefore checkpoint resume and
// distributed-fleet handshakes) can reject mismatched objective sets.
type ObjectiveSpec = ssdconf.ObjectiveSpec

// Objectives is one configuration's objective vector in maximize-all
// form: each element is oriented so that larger is better (power is
// negated, lifetime is log-compressed).
type Objectives []float64

// unboundedLifetimeNS stands in for "no erases observed": the endurance
// model projects no wear-out, which must dominate every finite
// projection. It matches the endurance model's internal cap.
const unboundedLifetimeNS = float64(int64(1) << 62)

// effectiveLifetimeNS maps the raw projection (0 = unbounded) onto a
// totally ordered scale.
func effectiveLifetimeNS(ns int64) float64 {
	if ns <= 0 {
		return unboundedLifetimeNS
	}
	return float64(ns)
}

// objectiveVec builds a maximize-all vector from raw axis values. The
// lifetime axis is log-compressed: projections span many decades
// (hours to unbounded), and crowding/hypervolume arithmetic on the raw
// nanosecond scale would collapse every finite point onto one spot.
func objectiveVec(spec ssdconf.ObjectiveSpec, perf, power float64, lifetimeNS int64) Objectives {
	out := make(Objectives, len(spec.Axes))
	for i, ax := range spec.Axes {
		switch ax {
		case ssdconf.AxisPower:
			out[i] = -power
		case ssdconf.AxisLifetime:
			out[i] = math.Log1p(effectiveLifetimeNS(lifetimeNS))
		default: // perf
			out[i] = perf
		}
	}
	return out
}

// objectivesOf builds an entry's objective vector for the spec.
func objectivesOf(spec ssdconf.ObjectiveSpec, e entry) Objectives {
	return objectiveVec(spec, e.grade, e.power, e.lifetimeNS)
}

// dominates reports whether a Pareto-dominates b: no worse on every
// axis and strictly better on at least one.
func dominates(a, b Objectives) bool {
	better := false
	for i := range a {
		if a[i] < b[i] {
			return false
		}
		if a[i] > b[i] {
			better = true
		}
	}
	return better
}

// nondominatedSort is the NSGA-II fast non-dominated sort: it partitions
// the vectors into fronts, rank 0 first. Each front preserves input
// order, so the result is a pure function of the input sequence.
func nondominatedSort(vecs []Objectives) [][]int {
	n := len(vecs)
	dominatedBy := make([]int, n)    // how many vectors dominate i
	dominatesSet := make([][]int, n) // who i dominates
	var first []int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if dominates(vecs[i], vecs[j]) {
				dominatesSet[i] = append(dominatesSet[i], j)
			} else if dominates(vecs[j], vecs[i]) {
				dominatedBy[i]++
			}
		}
		if dominatedBy[i] == 0 {
			first = append(first, i)
		}
	}
	var fronts [][]int
	cur := first
	for len(cur) > 0 {
		fronts = append(fronts, cur)
		var next []int
		for _, i := range cur {
			for _, j := range dominatesSet[i] {
				dominatedBy[j]--
				if dominatedBy[j] == 0 {
					next = append(next, j)
				}
			}
		}
		sort.Ints(next)
		cur = next
	}
	return fronts
}

// crowdingDistances computes the NSGA-II crowding distance of every
// member of one front (indexed into vecs). Boundary points on any axis
// get +Inf; interior points sum the normalized neighbor gaps.
func crowdingDistances(vecs []Objectives, front []int) map[int]float64 {
	dist := make(map[int]float64, len(front))
	for _, i := range front {
		dist[i] = 0
	}
	if len(front) == 0 {
		return dist
	}
	k := len(vecs[front[0]])
	order := append([]int(nil), front...)
	for ax := 0; ax < k; ax++ {
		sort.SliceStable(order, func(a, b int) bool {
			va, vb := vecs[order[a]][ax], vecs[order[b]][ax]
			if va != vb {
				return va < vb
			}
			return order[a] < order[b]
		})
		lo, hi := vecs[order[0]][ax], vecs[order[len(order)-1]][ax]
		dist[order[0]] = math.Inf(1)
		dist[order[len(order)-1]] = math.Inf(1)
		span := hi - lo
		if span <= 0 {
			continue
		}
		for i := 1; i < len(order)-1; i++ {
			dist[order[i]] += (vecs[order[i+1]][ax] - vecs[order[i-1]][ax]) / span
		}
	}
	return dist
}

// frontIndices returns the rank-0 (non-dominated) indices of the
// validated set, ordered by crowding distance descending — the NSGA
// selection order, preferring the extremes and the sparse middle — with
// index order breaking ties so the result is deterministic.
func frontIndices(spec ssdconf.ObjectiveSpec, validated []entry) []int {
	vecs := make([]Objectives, len(validated))
	for i, e := range validated {
		vecs[i] = objectivesOf(spec, e)
	}
	fronts := nondominatedSort(vecs)
	if len(fronts) == 0 {
		return nil
	}
	front := fronts[0]
	dist := crowdingDistances(vecs, front)
	sort.SliceStable(front, func(a, b int) bool {
		da, db := dist[front[a]], dist[front[b]]
		if da != db {
			return da > db
		}
		return front[a] < front[b]
	})
	// Distinct configurations can measure to the exact same objective
	// vector; the duplicates add nothing to the front (crowding distance
	// zero between them) and would eat population-advance slots, so keep
	// only the first of each group in selection order.
	seen := make(map[string]bool, len(front))
	uniq := front[:0]
	for _, i := range front {
		k := fmt.Sprintf("%v", vecs[i])
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, i)
	}
	return uniq
}

// normalize min-max scales every vector into [0,1]^k over the whole
// set; a constant axis maps to 0.5 so it contributes a fixed factor.
func normalize(vecs []Objectives) []Objectives {
	if len(vecs) == 0 {
		return nil
	}
	k := len(vecs[0])
	lo := make([]float64, k)
	hi := make([]float64, k)
	for ax := 0; ax < k; ax++ {
		lo[ax], hi[ax] = math.Inf(1), math.Inf(-1)
	}
	for _, v := range vecs {
		for ax := 0; ax < k; ax++ {
			lo[ax] = math.Min(lo[ax], v[ax])
			hi[ax] = math.Max(hi[ax], v[ax])
		}
	}
	out := make([]Objectives, len(vecs))
	for i, v := range vecs {
		nv := make(Objectives, k)
		for ax := 0; ax < k; ax++ {
			if span := hi[ax] - lo[ax]; span > 0 {
				nv[ax] = (v[ax] - lo[ax]) / span
			} else {
				nv[ax] = 0.5
			}
		}
		out[i] = nv
	}
	return out
}

// hypervolume measures the fraction of the normalized unit hypercube
// dominated by the front (reference point at the per-axis minimum of
// the whole validated set). Exact for 1–3 axes, which covers every
// expressible spec.
func hypervolume(vecs []Objectives, front []int) float64 {
	if len(front) == 0 {
		return 0
	}
	norm := normalize(vecs)
	pts := make([]Objectives, len(front))
	for i, idx := range front {
		pts[i] = norm[idx]
	}
	switch len(pts[0]) {
	case 1:
		best := 0.0
		for _, p := range pts {
			best = math.Max(best, p[0])
		}
		return best
	case 2:
		return hv2(pts)
	default:
		return hv3(pts)
	}
}

// hv2 sweeps x from high to low, accumulating width × best-y-so-far.
func hv2(pts []Objectives) float64 {
	order := append([]Objectives(nil), pts...)
	sort.SliceStable(order, func(a, b int) bool { return order[a][0] > order[b][0] })
	hv, maxY := 0.0, 0.0
	for i, p := range order {
		nextX := 0.0
		if i+1 < len(order) {
			nextX = order[i+1][0]
		}
		maxY = math.Max(maxY, p[1])
		hv += (p[0] - nextX) * maxY
	}
	return hv
}

// hv3 slices along z: each slab's volume is its height times the 2D
// hypervolume of every point at or above that z.
func hv3(pts []Objectives) float64 {
	order := append([]Objectives(nil), pts...)
	sort.SliceStable(order, func(a, b int) bool { return order[a][2] > order[b][2] })
	hv := 0.0
	for i := range order {
		if i+1 < len(order) && order[i+1][2] == order[i][2] {
			continue // same slab; handled when the last equal z is reached
		}
		nextZ := 0.0
		if i+1 < len(order) {
			nextZ = order[i+1][2]
		}
		if h := order[i][2] - nextZ; h > 0 {
			prefix := make([]Objectives, i+1)
			copy(prefix, order[:i+1])
			hv += h * hv2(prefix)
		}
	}
	return hv
}

// FrontPoint is one non-dominated configuration on the Pareto front, in
// reporting form.
type FrontPoint struct {
	Cfg ssdconf.Config `json:"cfg"`
	// Grade is the scalar performance grade (Formula 2) — the perf axis.
	Grade float64 `json:"grade"`
	// PowerWatts is the mean target-cluster power draw — the power axis.
	PowerWatts float64 `json:"power_watts"`
	// LifetimeNS is the projected device lifetime in nanoseconds
	// (0 = no wear observed, i.e. unbounded) — the lifetime axis.
	LifetimeNS int64 `json:"lifetime_ns"`
	// LatencySpeedup / ThroughputSpeedup are the target-cluster speedups
	// over the reference configuration.
	LatencySpeedup    float64 `json:"latency_speedup"`
	ThroughputSpeedup float64 `json:"throughput_speedup"`
}

// buildFront extracts the rank-0 front of the validated set as report
// points (grade-descending, config key breaking ties — a stable,
// worker-count-independent order) plus its normalized hypervolume.
func buildFront(spec ssdconf.ObjectiveSpec, validated []entry) ([]FrontPoint, float64) {
	idx := frontIndices(spec, validated)
	if len(idx) == 0 {
		return nil, 0
	}
	vecs := make([]Objectives, len(validated))
	for i, e := range validated {
		vecs[i] = objectivesOf(spec, e)
	}
	hv := hypervolume(vecs, idx)
	sort.SliceStable(idx, func(a, b int) bool {
		ea, eb := validated[idx[a]], validated[idx[b]]
		if ea.grade != eb.grade {
			return ea.grade > eb.grade
		}
		return ea.cfg.Key() < eb.cfg.Key()
	})
	pts := make([]FrontPoint, len(idx))
	for i, vi := range idx {
		e := validated[vi]
		pts[i] = FrontPoint{
			Cfg: e.cfg.Clone(), Grade: e.grade, PowerWatts: e.power,
			LifetimeNS: e.lifetimeNS, LatencySpeedup: e.latSp, ThroughputSpeedup: e.tputSp,
		}
	}
	return pts, hv
}

// searchWeights is the per-iteration scalarization the Pareto search
// hands its GPR surrogate: min-max-normalized objectives collapsed with
// a deterministic weight cycle that emphasizes one axis per iteration
// (weight 3 vs 1), so successive iterations climb different hills of
// the trade-off surface without spending any shared-RNG draws.
func searchWeights(k, iter int) []float64 {
	w := make([]float64, k)
	total := 0.0
	for i := range w {
		w[i] = 1
		if i == iter%k {
			w[i] = 3
		}
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// scalarizedScores maps the validated set onto surrogate targets for
// one Pareto iteration.
func scalarizedScores(spec ssdconf.ObjectiveSpec, validated []entry, iter int) []float64 {
	vecs := make([]Objectives, len(validated))
	for i, e := range validated {
		vecs[i] = objectivesOf(spec, e)
	}
	norm := normalize(vecs)
	w := searchWeights(len(spec.Axes), iter)
	ys := make([]float64, len(validated))
	for i, v := range norm {
		s := 0.0
		for ax, wv := range w {
			s += wv * v[ax]
		}
		ys[i] = s
	}
	return ys
}
