package core

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"autoblox/internal/ssdconf"
)

func mustSpec(t testing.TB, s string) ssdconf.ObjectiveSpec {
	t.Helper()
	spec, err := ssdconf.ParseObjectiveSpec(s)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestObjectiveVecOrientation(t *testing.T) {
	spec := mustSpec(t, "perf,power,lifetime")
	v := objectiveVec(spec, 1.5, 4.0, int64(1e9))
	if v[0] != 1.5 {
		t.Fatalf("perf axis = %g, want 1.5", v[0])
	}
	if v[1] != -4.0 {
		t.Fatalf("power axis = %g, want -4 (maximize-all negates watts)", v[1])
	}
	if want := math.Log1p(1e9); v[2] != want {
		t.Fatalf("lifetime axis = %g, want %g", v[2], want)
	}
	// Unbounded lifetime (no erases) must dominate every finite one.
	unbounded := objectiveVec(spec, 1.5, 4.0, 0)
	if unbounded[2] <= v[2] {
		t.Fatalf("unbounded lifetime %g not above finite %g", unbounded[2], v[2])
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Objectives
		want bool
	}{
		{Objectives{1, 1}, Objectives{0, 0}, true},
		{Objectives{1, 0}, Objectives{0, 0}, true},
		{Objectives{0, 0}, Objectives{0, 0}, false}, // equal: no strict better
		{Objectives{1, 0}, Objectives{0, 1}, false}, // incomparable
		{Objectives{0, 1}, Objectives{1, 0}, false},
		{Objectives{0, 0}, Objectives{1, 1}, false},
	}
	for i, c := range cases {
		if got := dominates(c.a, c.b); got != c.want {
			t.Fatalf("case %d: dominates(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestNondominatedSortRanks(t *testing.T) {
	// Front 0: (4,1), (1,4), (3,3). Front 1: (2,2) (dominated by (3,3)).
	// Front 2: (1,1).
	vecs := []Objectives{{2, 2}, {4, 1}, {1, 4}, {1, 1}, {3, 3}}
	fronts := nondominatedSort(vecs)
	want := [][]int{{1, 2, 4}, {0}, {3}}
	if !reflect.DeepEqual(fronts, want) {
		t.Fatalf("fronts = %v, want %v", fronts, want)
	}
}

func TestCrowdingDistances(t *testing.T) {
	vecs := []Objectives{{0, 4}, {1, 3}, {2, 2}, {3, 1}, {4, 0}}
	front := []int{0, 1, 2, 3, 4}
	dist := crowdingDistances(vecs, front)
	if !math.IsInf(dist[0], 1) || !math.IsInf(dist[4], 1) {
		t.Fatalf("boundary distances not +Inf: %v %v", dist[0], dist[4])
	}
	// Interior points of the evenly spaced line all have equal crowding.
	if dist[1] != dist[2] || dist[2] != dist[3] {
		t.Fatalf("interior crowding uneven: %v %v %v", dist[1], dist[2], dist[3])
	}
	// Each axis contributes (gap of 2)/(span of 4) = 0.5 → total 1.0.
	if want := 1.0; math.Abs(dist[2]-want) > 1e-12 {
		t.Fatalf("interior crowding = %g, want %g", dist[2], want)
	}
}

func TestHypervolume2D(t *testing.T) {
	// Normalized corners: a single point at the max of both axes
	// dominates the whole unit square.
	vecs := []Objectives{{0, 0}, {1, 1}}
	if hv := hypervolume(vecs, []int{1}); math.Abs(hv-1.0) > 1e-12 {
		t.Fatalf("dominant point hv = %g, want 1", hv)
	}
	// Two staircase points: (1, 0.5) and (0.5, 1) → 0.5*1 + 0.5*0.5 = 0.75.
	vecs = []Objectives{{0, 0}, {1, 0.5}, {0.5, 1}}
	if hv := hypervolume(vecs, []int{1, 2}); math.Abs(hv-0.75) > 1e-12 {
		t.Fatalf("staircase hv = %g, want 0.75", hv)
	}
}

func TestHypervolume3D(t *testing.T) {
	// One point dominating the cube.
	vecs := []Objectives{{0, 0, 0}, {1, 1, 1}}
	if hv := hypervolume(vecs, []int{1}); math.Abs(hv-1.0) > 1e-12 {
		t.Fatalf("cube hv = %g, want 1", hv)
	}
	// Two disjoint half-height boxes: (1,0.5,1) and (0.5,1,1) share the
	// z=1 slab whose 2D area is 0.75.
	vecs = []Objectives{{0, 0, 0}, {1, 0.5, 1}, {0.5, 1, 1}}
	if hv := hypervolume(vecs, []int{1, 2}); math.Abs(hv-0.75) > 1e-12 {
		t.Fatalf("slab hv = %g, want 0.75", hv)
	}
}

func TestBuildFrontDeterministicOrder(t *testing.T) {
	spec := mustSpec(t, "perf,power")
	mk := func(key int, grade, power float64) entry {
		return entry{cfg: ssdconf.Config{key}, grade: grade, power: power}
	}
	validated := []entry{
		mk(1, 0.9, 2.0), // front (best grade)
		mk(2, 0.5, 1.0), // front (best power)
		mk(3, 0.4, 1.5), // dominated by both
		mk(4, 0.7, 1.2), // front (middle)
	}
	front, hv := buildFront(spec, validated)
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3", len(front))
	}
	// Report order is grade-descending.
	for i := 1; i < len(front); i++ {
		if front[i].Grade > front[i-1].Grade {
			t.Fatalf("front not grade-descending at %d", i)
		}
	}
	if hv <= 0 || hv > 1 {
		t.Fatalf("hypervolume = %g, want (0,1]", hv)
	}
	// Permuting the validated order must not change the reported front.
	perm := []entry{validated[3], validated[2], validated[0], validated[1]}
	front2, _ := buildFront(spec, perm)
	if !reflect.DeepEqual(front, front2) {
		t.Fatalf("front depends on validated order:\n%v\n%v", front, front2)
	}
}

func TestSearchWeightsCycle(t *testing.T) {
	for iter := 0; iter < 6; iter++ {
		w := searchWeights(3, iter)
		sum := 0.0
		for _, v := range w {
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("iter %d: weights sum %g, want 1", iter, sum)
		}
		hot := iter % 3
		for i, v := range w {
			if i == hot && v != 0.6 {
				t.Fatalf("iter %d: hot axis weight %g, want 0.6", iter, v)
			}
			if i != hot && v != 0.2 {
				t.Fatalf("iter %d: cold axis weight %g, want 0.2", iter, v)
			}
		}
	}
}

func TestUpgradeCheckpointVersions(t *testing.T) {
	v1 := &checkpointFile{Version: 1}
	if err := upgradeCheckpoint(v1, false); err != nil {
		t.Fatalf("v1 scalar upgrade: %v", err)
	}
	if v1.Version != checkpointVersion {
		t.Fatalf("upgraded version = %d, want %d", v1.Version, checkpointVersion)
	}
	if err := upgradeCheckpoint(&checkpointFile{Version: 1}, true); !errors.Is(err, ErrCheckpointIncompatible) {
		t.Fatalf("v1 pareto upgrade: %v, want ErrCheckpointIncompatible", err)
	}
	if err := upgradeCheckpoint(&checkpointFile{Version: checkpointVersion}, true); err != nil {
		t.Fatalf("current-version upgrade: %v", err)
	}
	if err := upgradeCheckpoint(&checkpointFile{Version: 99}, false); !errors.Is(err, ErrCheckpointIncompatible) {
		t.Fatalf("future-version upgrade: %v, want ErrCheckpointIncompatible", err)
	}
}

// FuzzCheckpointLoad feeds arbitrary bytes through the checkpoint
// load + schema-migration path; whatever the file holds, the pipeline
// must return errors, never panic.
func FuzzCheckpointLoad(f *testing.F) {
	f.Add([]byte(`{"version":1,"target":"Database","seed":42,"space_sig":"abc",` +
		`"validated":[{"cfg":[0,1,2],"grade":0.5,"target_perf":1,"lat_speedup":1,"tput_speedup":1,"full":true}],` +
		`"seen":["aa."],"cache":[]}`))
	f.Add([]byte(`{"version":2,"objectives":["perf","power","lifetime"],` +
		`"front":[{"cfg":[1],"grade":0.9,"power_watts":2,"lifetime_ns":1000}],` +
		`"validated":[{"cfg":[1],"grade":0.9,"power_watts":2,"lifetime_ns":1000}]}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`null`))
	f.Add([]byte{0xff, 0xfe, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "ck.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := loadCheckpoint(path)
		if err != nil {
			return // parse rejection is fine; panics are not
		}
		for _, pareto := range []bool{false, true} {
			cp := *ck
			if uerr := upgradeCheckpoint(&cp, pareto); uerr != nil && !errors.Is(uerr, ErrCheckpointIncompatible) {
				t.Fatalf("upgrade returned untyped error: %v", uerr)
			}
			if pareto && ck.Version == 1 {
				if uerr := upgradeCheckpoint(&checkpointFile{Version: 1}, true); !errors.Is(uerr, ErrCheckpointIncompatible) {
					t.Fatalf("v1 pareto resume must be incompatible, got %v", uerr)
				}
			}
		}
	})
}

// benchEntries builds a synthetic validated set with clustered
// objective values, the shape the sort sees mid-run.
func benchEntries(n int) []entry {
	rng := rand.New(rand.NewSource(1))
	out := make([]entry, n)
	for i := range out {
		out[i] = entry{
			cfg:        ssdconf.Config{i, i % 7, i % 13},
			grade:      rng.Float64(),
			power:      2 + 3*rng.Float64(),
			lifetimeNS: int64(1e12 * rng.Float64()),
		}
	}
	return out
}

func BenchmarkParetoSort(b *testing.B) {
	spec, err := ssdconf.ParseObjectiveSpec("perf,power,lifetime")
	if err != nil {
		b.Fatal(err)
	}
	for _, n := range []int{1000, 10000} {
		entries := benchEntries(n)
		b.Run(map[int]string{1000: "1k", 10000: "10k"}[n], func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if idx := frontIndices(spec, entries); len(idx) == 0 {
					b.Fatal("empty front")
				}
			}
		})
	}
}
