package core

import (
	"context"
	"testing"

	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// wearEnv builds a deliberately wear-heavy tuning environment: a tiny
// device under a write-heavy workload, so GC erases blocks fast enough
// that the endurance model projects a finite lifetime and the grade-vs-
// lifetime trade-off is real.
func wearEnv(t *testing.T, spec ssdconf.ObjectiveSpec) (*ssdconf.Space, *Validator, *Grader, ssdconf.Config, string) {
	// 1500 requests sits on the GC boundary for the tiny device: eager
	// write-buffer flushing keeps the drive just wear-bound, while
	// higher overprovisioning plus a lazy GC trigger avoids erases
	// entirely — a real grade-vs-lifetime trade-off.
	return wearEnvN(t, spec, 1500)
}

func wearEnvN(t *testing.T, spec ssdconf.ObjectiveSpec, requests int) (*ssdconf.Space, *Validator, *Grader, ssdconf.Config, string) {
	t.Helper()
	cons := ssdconf.DefaultConstraints()
	cons.CapacityBytes = 16 << 20
	space := ssdconf.NewSpace(cons)
	space.Objectives = spec
	tiny := ssd.DefaultParams()
	tiny.Channels, tiny.ChipsPerChannel, tiny.DiesPerChip, tiny.PlanesPerDie = 1, 1, 1, 1
	tiny.BlocksPerPlane, tiny.PagesPerBlock, tiny.PageSizeBytes = 128, 64, 2048
	base := space.FromDevice(tiny)
	if err := space.CheckConstraints(base); err != nil {
		t.Fatalf("base violates constraints: %v", err)
	}
	target := string(workload.RadiusAuth)
	v := NewValidator(space, map[string]*trace.Trace{
		target: workload.MustGenerate(workload.RadiusAuth, workload.Options{Requests: requests, Seed: 21}),
	})
	g, err := NewGrader(context.Background(), v, base, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	return space, v, g, base, target
}

// wearInitialConfigs seeds the search with the reference plus layout
// variants so both search modes see structurally diverse wear behavior
// from iteration zero.
func wearInitialConfigs(t *testing.T, space *ssdconf.Space, base ssdconf.Config) []ssdconf.Config {
	t.Helper()
	out := []ssdconf.Config{base}
	for _, mutate := range []map[string]float64{
		// Grade-leaning: eager flushing with modest overprovisioning
		// performs best but keeps the garbage collector busy.
		{"OverprovisioningRatio": 0.07, "WriteBufferFlushThreshold": 90},
		// Durability-leaning: more spare blocks and a lazy GC trigger
		// avoid erases at a small throughput cost.
		{"OverprovisioningRatio": 0.21, "WriteBufferFlushThreshold": 90, "GCThreshold": 2},
	} {
		cfg := base.Clone()
		ok := true
		for name, v := range mutate {
			if err := space.SetByName(cfg, name, v); err != nil {
				ok = false
				break
			}
		}
		if !ok || !space.RepairCapacity(cfg) || space.CheckConstraints(cfg) != nil {
			continue
		}
		out = append(out, cfg)
	}
	return out
}

// TestParetoDominatesScalar is the multi-objective value regression: on
// a wear-heavy environment, the Pareto front must expose a
// configuration with at least 2x the scalar optimum's projected
// lifetime while giving up no more than 10% of its grade headroom. A
// scalar tune cannot see that trade-off at all — it returns exactly one
// point.
func TestParetoDominatesScalar(t *testing.T) {
	opts := TunerOptions{Seed: 5, MaxIterations: 32, SGDSteps: 3}

	// Scalar optimum first.
	scalarSpace, sv, sg, sbase, target := wearEnv(t, ssdconf.ObjectiveSpec{})
	st, err := NewTuner(scalarSpace, sv, sg, opts)
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := st.Tune(context.Background(), target, wearInitialConfigs(t, scalarSpace, sbase))
	if err != nil {
		t.Fatal(err)
	}
	if len(scalar.Front) != 0 {
		t.Fatalf("scalar tune reported a front of %d points", len(scalar.Front))
	}
	scalarLife := minLifetimeNS(scalar.BestPerf[target])
	if scalarLife <= 0 {
		t.Fatalf("environment not wear-heavy: scalar optimum projects unbounded lifetime (perf %+v)",
			scalar.BestPerf[target])
	}
	t.Logf("scalar optimum: grade %.4f, lifetime %d ns", scalar.BestGrade, scalarLife)

	// Pareto tune over perf+lifetime on the same environment and budget.
	spec, err := ssdconf.ParseObjectiveSpec("perf,lifetime")
	if err != nil {
		t.Fatal(err)
	}
	pSpace, pv, pg, pbase, _ := wearEnv(t, spec)
	pt, err := NewTuner(pSpace, pv, pg, opts)
	if err != nil {
		t.Fatal(err)
	}
	pareto, err := pt.Tune(context.Background(), target, wearInitialConfigs(t, pSpace, pbase))
	if err != nil {
		t.Fatal(err)
	}
	if len(pareto.Front) == 0 {
		t.Fatal("Pareto tune returned an empty front")
	}
	if pareto.Hypervolume <= 0 {
		t.Fatalf("hypervolume = %g, want positive", pareto.Hypervolume)
	}

	// Grade floor: within 10% of the scalar optimum's headroom over the
	// reference (grade 0 = reference performance).
	floor := scalar.BestGrade - 0.1*abs(scalar.BestGrade)
	found := false
	for _, p := range pareto.Front {
		life := p.LifetimeNS
		unbounded := life <= 0
		t.Logf("front point: grade %.4f, lifetime %d ns (unbounded=%v), power %.2f W",
			p.Grade, p.LifetimeNS, unbounded, p.PowerWatts)
		if (unbounded || life >= 2*scalarLife) && p.Grade >= floor {
			found = true
		}
	}
	if !found {
		t.Fatalf("no front point with >=2x scalar lifetime (%d ns) at grade >= %.4f; scalar grade %.4f",
			scalarLife, floor, scalar.BestGrade)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TestWhatIfExploresFront: with a multi-objective space, WhatIf accepts
// a goal-less exploration request and returns the full trade-off curve
// instead of a single achieved/not-achieved verdict.
func TestWhatIfExploresFront(t *testing.T) {
	cons := ssdconf.DefaultConstraints()
	cons.CapacityBytes = 16 << 20
	space := ssdconf.NewWhatIfSpace(cons)
	spec, err := ssdconf.ParseObjectiveSpec("perf,power,lifetime")
	if err != nil {
		t.Fatal(err)
	}
	space.Objectives = spec
	tiny := ssd.DefaultParams()
	tiny.Channels, tiny.ChipsPerChannel, tiny.DiesPerChip, tiny.PlanesPerDie = 1, 1, 1, 1
	tiny.BlocksPerPlane, tiny.PagesPerBlock, tiny.PageSizeBytes = 128, 64, 2048
	base := space.FromDevice(tiny)
	if err := space.CheckConstraints(base); err != nil {
		t.Fatalf("base violates constraints: %v", err)
	}
	target := string(workload.RadiusAuth)
	v := NewValidator(space, map[string]*trace.Trace{
		target: workload.MustGenerate(workload.RadiusAuth, workload.Options{Requests: 2000, Seed: 21}),
	})
	g, err := NewGrader(context.Background(), v, base, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	// No latency/throughput goal: pure front exploration.
	res, err := WhatIf(context.Background(), space, v, g, WhatIfGoal{Target: target},
		[]ssdconf.Config{base}, TunerOptions{Seed: 6, MaxIterations: 5, SGDSteps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("goal-less what-if exploration returned no trade-off curve")
	}
	if res.Achieved {
		t.Fatal("goal-less exploration cannot report Achieved")
	}
	if len(res.CriticalParams) != len(Table7Params) {
		t.Fatalf("critical params %d, want %d", len(res.CriticalParams), len(Table7Params))
	}
	// A goal-less scalar what-if must still be rejected.
	scalarSpace := ssdconf.NewWhatIfSpace(cons)
	sv := NewValidator(scalarSpace, map[string]*trace.Trace{
		target: workload.MustGenerate(workload.RadiusAuth, workload.Options{Requests: 2000, Seed: 21}),
	})
	sref := scalarSpace.FromDevice(tiny)
	sgr, err := NewGrader(context.Background(), sv, sref, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := WhatIf(context.Background(), scalarSpace, sv, sgr, WhatIfGoal{Target: target},
		[]ssdconf.Config{sref}, TunerOptions{Seed: 6, MaxIterations: 2}); err == nil {
		t.Fatal("scalar goal-less what-if should fail validation")
	}
}
