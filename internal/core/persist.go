package core

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"sync/atomic"

	"autoblox/internal/autodb"
	"autoblox/internal/kvstore"
	"autoblox/internal/obs"
)

// Registry metric names recorded by a persistent simulation cache.
const (
	MetricPersistHits   = "cache_persist_hits_total"
	MetricPersistMisses = "cache_persist_misses_total"
	// MetricPersistCorrupt counts records that failed to decode (plus
	// torn log tails truncated at open). Corrupt entries are deleted and
	// re-simulated, never returned.
	MetricPersistCorrupt = "cache_persist_corrupt_records_total"
)

// persistCacheFile is the log file name inside the cache directory.
const persistCacheFile = "simcache.kv"

// PersistentCache is a durable (configuration, trace) → Perf store
// shared across process restarts: a validator consulting it re-simulates
// nothing a previous run already measured, even after a crash. It is
// backed by the append-only kvstore log, whose per-record CRCs and
// torn-tail truncation make a kill -9 mid-write lose at most the record
// being appended.
//
// Keys embed the search-space signature, so caches survive space edits
// safely: a changed space changes the signature and every old entry
// simply stops matching. Only successful measurements are ever written;
// errors are never cached (matching the in-memory memo cache contract).
type PersistentCache struct {
	// Obs, when non-nil, receives hit/miss/corrupt counters. Set before
	// first use.
	Obs *obs.Registry

	store   *kvstore.Store
	hits    atomic.Int64
	misses  atomic.Int64
	corrupt atomic.Int64
}

// OpenPersistentCache opens (or creates) the cache under dir. Torn
// tails from a previous crash are truncated and counted as corrupt
// records.
func OpenPersistentCache(dir string) (*PersistentCache, error) {
	st, err := kvstore.Open(filepath.Join(dir, persistCacheFile))
	if err != nil {
		return nil, err
	}
	p := &PersistentCache{store: st}
	p.corrupt.Store(st.CorruptRecords())
	return p, nil
}

// persistKey builds the versioned content address of one measurement.
// The "v1|" prefix allows future encoding changes to coexist in one
// log; sig pins the search space the configuration key is relative to.
func persistKey(sig, cfgKey, name string) string {
	return "v1|" + sig + "|" + cfgKey + "|" + name
}

// Get looks up a prior measurement. ok is false on a miss. A record
// that fails to decode is deleted, counted as corrupt, and reported as
// a miss — the caller re-simulates and overwrites it.
func (p *PersistentCache) Get(sig, cfgKey, name string) (autodb.Perf, bool) {
	if p == nil {
		return autodb.Perf{}, false
	}
	key := persistKey(sig, cfgKey, name)
	raw, err := p.store.Get(key)
	if err != nil {
		if !errors.Is(err, kvstore.ErrNotFound) {
			obs.RecordEvent("warn-persist-cache", "key", key, "err", err.Error())
		}
		p.misses.Add(1)
		p.Obs.Counter(MetricPersistMisses).Inc()
		return autodb.Perf{}, false
	}
	var perf autodb.Perf
	if err := json.Unmarshal(raw, &perf); err != nil {
		// CRC passed but the payload is not a Perf document — written by
		// an incompatible version or flipped bits the checksum missed.
		// Drop it so the slot can be refilled with a fresh simulation.
		p.corrupt.Add(1)
		p.Obs.Counter(MetricPersistCorrupt).Inc()
		obs.RecordEvent("persist-cache-corrupt", "key", key, "err", err.Error())
		_ = p.store.Delete(key)
		p.misses.Add(1)
		p.Obs.Counter(MetricPersistMisses).Inc()
		return autodb.Perf{}, false
	}
	p.hits.Add(1)
	p.Obs.Counter(MetricPersistHits).Inc()
	return perf, true
}

// Put durably records one successful measurement. Write failures are
// reported but non-fatal to the caller's measurement: the result is
// already in hand, only its durability is lost.
func (p *PersistentCache) Put(sig, cfgKey, name string, perf autodb.Perf) {
	if p == nil {
		return
	}
	raw, err := json.Marshal(perf)
	if err != nil {
		obs.RecordEvent("warn-persist-cache", "key", persistKey(sig, cfgKey, name), "err", err.Error())
		return
	}
	if err := p.store.Put(persistKey(sig, cfgKey, name), raw); err != nil {
		obs.RecordEvent("warn-persist-cache", "key", persistKey(sig, cfgKey, name), "err", err.Error())
	}
}

// PersistentCacheStats is a point-in-time snapshot of the cache's
// always-on counters.
type PersistentCacheStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Corrupt int64 `json:"corrupt"`
	Entries int   `json:"entries"`
}

// Stats snapshots the cache counters. Safe on a nil cache.
func (p *PersistentCache) Stats() PersistentCacheStats {
	if p == nil {
		return PersistentCacheStats{}
	}
	return PersistentCacheStats{
		Hits:    p.hits.Load(),
		Misses:  p.misses.Load(),
		Corrupt: p.corrupt.Load(),
		Entries: p.store.Len(),
	}
}

// Compact rewrites the backing log keeping only live records.
func (p *PersistentCache) Compact() error {
	if p == nil {
		return nil
	}
	return p.store.Compact()
}

// Close syncs and closes the backing store. Safe on a nil cache.
func (p *PersistentCache) Close() error {
	if p == nil {
		return nil
	}
	return p.store.Close()
}
