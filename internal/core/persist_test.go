package core

import (
	"context"
	"errors"
	"testing"

	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

func persistEnv(t *testing.T, dir string) (*Validator, *PersistentCache, ssdconf.Config, *trace.Trace) {
	t.Helper()
	p, err := OpenPersistentCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	tr := workload.MustGenerate(workload.Database, workload.Options{Requests: 1500, Seed: 11})
	v := NewValidatorSources(space, map[string][]trace.SourceFactory{"Database": {tr.Factory()}})
	v.Persist = p
	return v, p, space.FromDevice(ssd.Intel750()), tr
}

// TestPersistentCacheWarmRestart is the headline durability contract: a
// process restart (fresh validator, reopened cache) re-simulates
// nothing that was measured before, and the accounting law still holds
// with persist hits folded into CacheHits.
func TestPersistentCacheWarmRestart(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	v, p, ref, tr := persistEnv(t, dir)
	if _, err := v.MeasureTrace(ctx, ref, "Database#0", tr.Factory()); err != nil {
		t.Fatal(err)
	}
	if _, err := v.MeasureTrace(ctx, ref, "Database#1", tr.Factory()); err != nil {
		t.Fatal(err)
	}
	if got := v.SimRuns(); got != 2 {
		t.Fatalf("cold run SimRuns = %d, want 2", got)
	}
	st := p.Stats()
	if st.Misses != 2 || st.Hits != 0 || st.Entries != 2 {
		t.Fatalf("cold cache stats = %+v, want 2 misses, 0 hits, 2 entries", st)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": a brand-new validator over a reopened cache.
	v2nd, p2, ref2, tr2 := persistEnv(t, dir)
	perfA, err := v2nd.MeasureTrace(ctx, ref2, "Database#0", tr2.Factory())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2nd.MeasureTrace(ctx, ref2, "Database#1", tr2.Factory()); err != nil {
		t.Fatal(err)
	}
	if got := v2nd.SimRuns(); got != 0 {
		t.Fatalf("warm run SimRuns = %d, want 0 (all persisted)", got)
	}
	stats := v2nd.Stats()
	calls := int64(2)
	if got := stats.SimRuns + stats.CacheHits + stats.CoalescedWaits + stats.RemoteResults; got != calls {
		t.Fatalf("accounting law broken: %d + %d + %d + %d != %d",
			stats.SimRuns, stats.CacheHits, stats.CoalescedWaits, stats.RemoteResults, calls)
	}
	if st := p2.Stats(); st.Hits != 2 {
		t.Fatalf("warm cache hits = %d, want 2", st.Hits)
	}

	// The persisted value must be bit-identical to a fresh simulation.
	vClean := NewValidatorSources(ssdconf.NewSpace(ssdconf.DefaultConstraints()),
		map[string][]trace.SourceFactory{"Database": {tr.Factory()}})
	perfClean, err := vClean.MeasureTrace(ctx, ref, "Database#0", tr.Factory())
	if err != nil {
		t.Fatal(err)
	}
	if perfA != perfClean {
		t.Fatalf("persisted perf diverges from fresh simulation:\n  cached = %+v\n  fresh  = %+v", perfA, perfClean)
	}
}

// TestPersistentCacheCorruptRecord: a record whose payload fails to
// decode is never returned — it is dropped, counted, and transparently
// re-simulated and overwritten.
func TestPersistentCacheCorruptRecord(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	v, p, ref, tr := persistEnv(t, dir)
	if _, err := v.MeasureTrace(ctx, ref, "Database#0", tr.Factory()); err != nil {
		t.Fatal(err)
	}

	// Overwrite the record in place with a valid-CRC, invalid-JSON body
	// (version skew / undetected bit rot).
	sig := v.persistSig()
	key := persistKey(sig, ref.Key(), "Database#0")
	if err := p.store.Put(key, []byte("{not json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.Get(sig, ref.Key(), "Database#0"); ok {
		t.Fatal("corrupt record must never be returned")
	}
	if st := p.Stats(); st.Corrupt != 1 {
		t.Fatalf("Corrupt = %d, want 1", st.Corrupt)
	}
	if p.store.Has(key) {
		t.Fatal("corrupt record should be deleted")
	}

	// A fresh validator (empty memo cache) heals the slot via re-simulation.
	v2 := NewValidatorSources(ssdconf.NewSpace(ssdconf.DefaultConstraints()),
		map[string][]trace.SourceFactory{"Database": {tr.Factory()}})
	v2.Persist = p
	if _, err := v2.MeasureTrace(ctx, ref, "Database#0", tr.Factory()); err != nil {
		t.Fatal(err)
	}
	if got := v2.SimRuns(); got != 1 {
		t.Fatalf("SimRuns after corruption = %d, want 1 re-simulation", got)
	}
	if !p.store.Has(key) {
		t.Fatal("healed record should be persisted again")
	}
}

// TestPersistentCacheNeverStoresErrors mirrors the memo cache's
// errors-never-cached contract on the durable layer.
func TestPersistentCacheNeverStoresErrors(t *testing.T) {
	dir := t.TempDir()
	v, p, ref, tr := persistEnv(t, dir)
	permanent := errors.New("disk on fire")
	factory := func() trace.Source {
		return &failingSource{Source: tr.Source(), after: 200, err: permanent}
	}
	if _, err := v.MeasureTrace(context.Background(), ref, "Database#0", factory); !errors.Is(err, permanent) {
		t.Fatalf("err = %v, want the injected failure", err)
	}
	if st := p.Stats(); st.Entries != 0 {
		t.Fatalf("failed measurement persisted: %d entries", st.Entries)
	}
}
