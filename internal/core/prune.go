package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"autoblox/internal/linalg"
	"autoblox/internal/obs"
	"autoblox/internal/ridge"
	"autoblox/internal/ssdconf"
)

// PruneOptions controls both pruning stages.
type PruneOptions struct {
	// InsensitiveThreshold is the coarse-stage sensitivity floor: a
	// parameter whose full-grid sweep moves Formula 1 by less than this
	// (in log-ratio units) is insensitive.
	InsensitiveThreshold float64
	// CoefficientThreshold is the fine-stage ridge cutoff (paper: ±0.001).
	CoefficientThreshold float64
	// Samples is the number of random configurations for the ridge fit.
	Samples int
	// Alpha is the ridge regularization strength.
	Alpha float64
	// Seed drives sampling.
	Seed int64
}

func (o *PruneOptions) defaults() {
	if o.InsensitiveThreshold <= 0 {
		o.InsensitiveThreshold = 0.01
	}
	if o.CoefficientThreshold <= 0 {
		o.CoefficientThreshold = 0.001
	}
	if o.Samples <= 0 {
		o.Samples = 64
	}
	if o.Alpha <= 0 {
		o.Alpha = 1.0
	}
}

// SweepPoint is one measurement of a coarse-pruning sweep (Fig. 4).
type SweepPoint struct {
	Value       float64 // the parameter's concrete value
	Multiplier  float64 // value / baseline value
	Performance float64 // Formula 1 vs the baseline configuration
	// PowerWatts and LifetimeNS carry the point's power/lifetime axes
	// (filled on every sweep; they back the dominance-contribution
	// ranking on multi-objective spaces).
	PowerWatts float64
	LifetimeNS int64
}

// CoarseResult is the outcome of coarse-grained pruning.
type CoarseResult struct {
	// Sweeps holds the Fig. 4 series: per numeric parameter, performance
	// as the value grows from its baseline.
	Sweeps map[string][]SweepPoint
	// Sensitivity is the peak |performance| across each sweep.
	Sensitivity map[string]float64
	// Insensitive lists parameters below the threshold, in name order.
	// On a multi-objective space a parameter with any dominance
	// contribution is never insensitive: it moves the trade-off surface
	// even when Formula 1 alone is flat.
	Insensitive []string
	// DominanceContribution (multi-objective spaces only) counts, per
	// swept parameter, how many of its non-baseline sweep points are
	// non-dominated across the union of all sweeps — the sweeps' rank
	// under the objective vector. Ranked orders parameters by that
	// count, descending (sensitivity breaking ties).
	DominanceContribution map[string]int
	Ranked                []string
}

// sweepIndices enumerates the grid indices a coarse sweep visits for one
// parameter, baseline first so the sweep's first point scores 0. Numeric
// grids grow upward from the baseline (Fig. 4's shape); categorical
// domains are unordered, so every alternative value is visited.
func sweepIndices(p *ssdconf.Param, baseIdx int) []int {
	out := []int{baseIdx}
	if p.Kind == ssdconf.Categorical {
		for idx := range p.Values {
			if idx != baseIdx {
				out = append(out, idx)
			}
		}
		return out
	}
	for idx := baseIdx + 1; idx < len(p.Values); idx++ {
		out = append(out, idx)
	}
	return out
}

// coarseSkip reports whether CoarsePrune leaves a parameter out of the
// sweep set: booleans (their two points carry no trend) and categorical
// parameters pinned by constraints.
func coarseSkip(p *ssdconf.Param) bool {
	return p.Kind == ssdconf.Boolean || (p.Kind == ssdconf.Categorical && !p.Tunable)
}

// CoarsePrune sweeps every numeric tunable parameter across its grid —
// and every tunable categorical across its whole domain — while holding
// the rest at the baseline, measuring Formula 1 on the target workload.
// Configuration constraints are deliberately ignored (§3.3: this stage
// "only prune[s] parameters that have almost no impact on the
// performance even if they break the configuration constraints").
func CoarsePrune(ctx context.Context, v *Validator, g *Grader, target string, base ssdconf.Config, opts PruneOptions) (*CoarseResult, error) {
	opts.defaults()
	sp := obs.StartSpan("coarse-prune").Arg("target", target)
	defer sp.End()
	factories, ok := v.Workloads[target]
	if !ok {
		return nil, fmt.Errorf("core: unknown target %q", target)
	}
	src := factories[0]
	refName := target + "#0"
	refPerf, err := v.MeasureTrace(ctx, base, refName, src)
	if err != nil {
		return nil, err
	}

	// Enumerate the whole config×value sweep up front and fan the
	// simulations out as one parallel batch; the assembly loop below
	// then reads every point from the cache.
	var sweepCfgs []ssdconf.Config
	for i := range v.Space.Params {
		p := &v.Space.Params[i]
		if coarseSkip(p) {
			continue
		}
		for _, idx := range sweepIndices(p, base[i]) {
			cfg := base.Clone()
			cfg[i] = idx
			sweepCfgs = append(sweepCfgs, cfg)
		}
	}
	if err := v.MeasureConfigs(ctx, sweepCfgs, refName, src); err != nil {
		return nil, err
	}

	res := &CoarseResult{Sweeps: map[string][]SweepPoint{}, Sensitivity: map[string]float64{}}
	for i := range v.Space.Params {
		p := &v.Space.Params[i]
		if coarseSkip(p) {
			continue
		}
		baseVal := p.Values[base[i]]
		var sweep []SweepPoint
		maxAbs := 0.0
		for _, idx := range sweepIndices(p, base[i]) {
			cfg := base.Clone()
			cfg[i] = idx
			perf, err := v.MeasureTrace(ctx, cfg, refName, src) // cache hit
			if err != nil {
				return nil, err
			}
			score := g.Performance(perf, refPerf)
			mult := p.Values[idx] / nonZero(baseVal)
			if p.Kind == ssdconf.Categorical {
				mult = 1 // unordered domain: a value ratio is meaningless
			}
			sweep = append(sweep, SweepPoint{
				Value:       p.Values[idx],
				Multiplier:  mult,
				Performance: score,
				PowerWatts:  perf.PowerWatts,
				LifetimeNS:  perf.ProjectedLifetimeNS,
			})
			if a := math.Abs(score); a > maxAbs {
				maxAbs = a
			}
		}
		res.Sweeps[p.Name] = sweep
		res.Sensitivity[p.Name] = maxAbs
		if maxAbs < opts.InsensitiveThreshold {
			res.Insensitive = append(res.Insensitive, p.Name)
		}
	}
	if !v.Space.Objectives.Scalar() {
		rankSweepsByDominance(v.Space, res)
	}
	sort.Strings(res.Insensitive)
	return res, nil
}

// rankSweepsByDominance scores each swept parameter by how many of its
// non-baseline points survive a non-dominated sort over the union of
// all sweeps under the space's objective vector, then rebuilds the
// insensitive list so a parameter that shapes the trade-off surface is
// kept even when its Formula 1 sweep is flat.
func rankSweepsByDominance(space *ssdconf.Space, res *CoarseResult) {
	var owners []string
	var vecs []Objectives
	for i := range space.Params {
		p := &space.Params[i]
		sweep, ok := res.Sweeps[p.Name]
		if !ok {
			continue
		}
		for _, pt := range sweep[1:] { // the shared baseline point credits nobody
			owners = append(owners, p.Name)
			vecs = append(vecs, objectiveVec(space.Objectives, pt.Performance, pt.PowerWatts, pt.LifetimeNS))
		}
	}
	res.DominanceContribution = map[string]int{}
	for name := range res.Sweeps {
		res.DominanceContribution[name] = 0
	}
	fronts := nondominatedSort(vecs)
	if len(fronts) > 0 {
		for _, i := range fronts[0] {
			res.DominanceContribution[owners[i]]++
		}
	}
	names := make([]string, 0, len(res.Sweeps))
	for name := range res.Sweeps {
		names = append(names, name)
	}
	sort.Slice(names, func(a, b int) bool {
		ca, cb := res.DominanceContribution[names[a]], res.DominanceContribution[names[b]]
		if ca != cb {
			return ca > cb
		}
		if sa, sb := res.Sensitivity[names[a]], res.Sensitivity[names[b]]; sa != sb {
			return sa > sb
		}
		return names[a] < names[b]
	})
	res.Ranked = names
	var insensitive []string
	for _, name := range res.Insensitive {
		if res.DominanceContribution[name] == 0 {
			insensitive = append(insensitive, name)
		}
	}
	res.Insensitive = insensitive
}

func nonZero(v float64) float64 {
	if v == 0 {
		return 1
	}
	return v
}

// FineResult is the outcome of fine-grained (ridge) pruning.
type FineResult struct {
	// Coefficients maps parameter name to its standardized ridge
	// coefficient against Formula 1 (Fig. 5).
	Coefficients map[string]float64
	// Pruned lists parameters whose |coefficient| fell below the cutoff.
	Pruned []string
	// Order is the tuning order: kept parameters by descending
	// |coefficient| (§3.3/§3.4).
	Order []string
	// R2 is the ridge fit quality on the sampled configurations.
	R2 float64
}

// FinePrune samples constraint-respecting configurations around the
// baseline (varying the parameters that survived coarse pruning), fits a
// standardized ridge regression of Formula 1 against the parameter
// values, and prunes parameters with |coefficient| below the threshold.
func FinePrune(ctx context.Context, v *Validator, g *Grader, target string, base ssdconf.Config, coarseInsensitive []string, opts PruneOptions) (*FineResult, error) {
	opts.defaults()
	sp := obs.StartSpan("fine-prune").Arg("target", target)
	defer sp.End()
	factories, ok := v.Workloads[target]
	if !ok {
		return nil, fmt.Errorf("core: unknown target %q", target)
	}
	src := factories[0]
	refName := target + "#0"
	refPerf, err := v.MeasureTrace(ctx, base, refName, src)
	if err != nil {
		return nil, err
	}

	dropped := map[string]bool{}
	for _, n := range coarseInsensitive {
		dropped[n] = true
	}
	// Numeric and boolean axes regress on their raw value; tunable
	// categorical axes get a one-hot dummy block each (their wire values
	// are unordered, so a single scalar column would invent an ordering).
	var cols, catCols []int
	for i, p := range v.Space.Params {
		if !p.Tunable || dropped[p.Name] {
			continue
		}
		if p.Kind == ssdconf.Categorical {
			catCols = append(catCols, i)
			continue
		}
		cols = append(cols, i)
	}
	if len(cols)+len(catCols) == 0 {
		return nil, errors.New("core: nothing left to regress after coarse pruning")
	}
	perturbAxes := append(append([]int(nil), cols...), catCols...)

	// Sample acceptance depends only on the constraint checks, never on a
	// measurement, so the full sample set can be drawn up front (keeping
	// the rng sequence identical to the old measure-as-you-go loop) and
	// simulated as one parallel batch.
	rng := rand.New(rand.NewSource(opts.Seed))
	var samples []ssdconf.Config
	attempts := 0
	for len(samples) < opts.Samples && attempts < opts.Samples*6 {
		attempts++
		cfg := base.Clone()
		// Perturb a random subset of kept axes.
		for _, c := range perturbAxes {
			if rng.Float64() < 0.35 {
				cfg[c] = rng.Intn(len(v.Space.Params[c].Values))
			}
		}
		// Maintain the constraint region (§3.3: "We set a regression
		// space by maintaining the constraints").
		if !v.Space.RepairCapacity(cfg) {
			continue
		}
		if v.Space.CheckConstraints(cfg) != nil {
			continue
		}
		samples = append(samples, cfg)
	}
	if len(samples) < 8 {
		return nil, fmt.Errorf("core: only %d valid samples for ridge fit", len(samples))
	}
	if err := v.MeasureConfigs(ctx, samples, refName, src); err != nil {
		return nil, err
	}

	width := len(cols)
	for _, c := range catCols {
		width += len(v.Space.Params[c].Values)
	}
	var rows [][]float64
	var ys []float64
	for _, cfg := range samples {
		perf, err := v.MeasureTrace(ctx, cfg, refName, src) // cache hit
		if err != nil {
			return nil, err
		}
		row := make([]float64, width)
		for j, c := range cols {
			row[j] = v.Space.Value(cfg, c)
		}
		off := len(cols)
		for _, c := range catCols {
			row[off+cfg[c]] = 1
			off += len(v.Space.Params[c].Values)
		}
		rows = append(rows, row)
		ys = append(ys, g.Performance(perf, refPerf))
	}

	x := linalg.FromRows(rows)
	model, err := ridge.Fit(x, ys, ridge.Config{Alpha: opts.Alpha, Standardize: true})
	if err != nil {
		return nil, fmt.Errorf("core: ridge: %w", err)
	}

	res := &FineResult{Coefficients: map[string]float64{}, R2: model.R2(x, ys)}
	type ranked struct {
		name string
		coef float64
	}
	var keep []ranked
	record := func(name string, coef float64) {
		res.Coefficients[name] = coef
		if math.Abs(coef) < opts.CoefficientThreshold {
			res.Pruned = append(res.Pruned, name)
		} else {
			keep = append(keep, ranked{name, coef})
		}
	}
	for j, c := range cols {
		record(v.Space.Params[c].Name, model.Coef[j])
	}
	// A categorical's influence is its strongest dummy: the largest
	// |coefficient| across the one-hot block, sign preserved.
	off := len(cols)
	for _, c := range catCols {
		p := &v.Space.Params[c]
		coef := 0.0
		for k := range p.Values {
			if d := model.Coef[off+k]; math.Abs(d) > math.Abs(coef) {
				coef = d
			}
		}
		off += len(p.Values)
		record(p.Name, coef)
	}
	sort.Strings(res.Pruned)
	sort.SliceStable(keep, func(a, b int) bool {
		return math.Abs(keep[a].coef) > math.Abs(keep[b].coef)
	})
	for _, k := range keep {
		res.Order = append(res.Order, k.name)
	}
	return res, nil
}
