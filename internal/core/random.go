package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/ssdconf"
)

// RandomSearch is the black-box baseline the paper's BO formulation is
// motivated against (§3.2): it spends the same validation budget on
// uniformly sampled constraint-respecting configurations, with no
// surrogate model and no neighborhood structure. The ablation benchmark
// compares its best grade against the BO tuner's at equal budget.
func RandomSearch(ctx context.Context, space *ssdconf.Space, v *Validator, g *Grader, target string, initial []ssdconf.Config, opts TunerOptions) (*TuneResult, error) {
	opts.defaults()
	if _, ok := v.Workloads[target]; !ok {
		return nil, errors.New("core: unknown target workload " + target)
	}
	if len(initial) == 0 {
		return nil, errors.New("core: no initial configurations")
	}
	start := time.Now()
	simStart := v.SimRuns()
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x9e3779b9))

	// Reuse the tuner's evaluation path (grading, power budget,
	// validation pruning) so only the *search policy* differs.
	t := &Tuner{Space: space, Validator: v, Grader: g, Opts: opts,
		rng: rand.New(rand.NewSource(opts.Seed))}

	res := &TuneResult{Target: target}
	var validated []entry
	for _, cfg := range initial {
		if space.CheckConstraints(cfg) != nil {
			continue
		}
		e, rejected, err := t.evaluate(ctx, target, cfg, math.Inf(-1), res)
		if err != nil {
			return nil, err
		}
		if !rejected {
			validated = append(validated, e)
		}
	}
	if len(validated) == 0 {
		return nil, errors.New("core: no initial configuration satisfies the constraints")
	}

	for iter := 0; iter < opts.MaxIterations; iter++ {
		res.Iterations++
		cfg := randomValidConfig(space, rng)
		if cfg == nil {
			continue
		}
		worst := worstRetainedGrade(validated, opts.TopK)
		e, rejected, err := t.evaluate(ctx, target, cfg, worst, res)
		if err != nil {
			return nil, err
		}
		if !rejected {
			validated = append(validated, e)
		}
		res.Trajectory = append(res.Trajectory, bestGrade(validated))
	}

	best := bestEntry(validated)
	res.Best = best.cfg
	res.BestGrade = best.grade
	res.BestPerf = map[string][]autodb.Perf{}
	if err := v.MeasureBatch(ctx, []ssdconf.Config{best.cfg}, v.Clusters()); err != nil {
		return nil, err
	}
	for _, cl := range v.Clusters() {
		ps, err := v.MeasureCluster(ctx, best.cfg, cl)
		if err != nil {
			return nil, err
		}
		res.BestPerf[cl] = ps
	}
	if !space.Objectives.Scalar() {
		res.Front, res.Hypervolume = buildFront(space.Objectives, validated)
	}
	res.SimRuns = v.SimRuns() - simStart
	res.Elapsed = time.Since(start)
	return res, nil
}

// randomValidConfig samples uniform grid indices and repairs capacity;
// nil when the sample cannot be made valid.
func randomValidConfig(space *ssdconf.Space, rng *rand.Rand) ssdconf.Config {
	for attempt := 0; attempt < 16; attempt++ {
		cfg := make(ssdconf.Config, len(space.Params))
		for i, p := range space.Params {
			if !p.Tunable {
				continue // filled below by constraint application
			}
			cfg[i] = rng.Intn(len(p.Values))
		}
		// Constrained parameters follow the constraint set.
		if i, err := space.ParamIndex("Interface"); err == nil {
			cfg[i] = int(space.Cons.Interface)
		}
		if i, err := space.ParamIndex("FlashType"); err == nil {
			cfg[i] = int(space.Cons.Flash)
		}
		if !space.RepairCapacity(cfg) {
			continue
		}
		if space.CheckConstraints(cfg) == nil {
			return cfg
		}
	}
	return nil
}
