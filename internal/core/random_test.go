package core

import (
	"context"
	"math/rand"
	"testing"

	"autoblox/internal/ssdconf"
	"autoblox/internal/workload"
)

func TestRandomSearchBasics(t *testing.T) {
	space, v, g, ref := smallTunerEnv(t)
	res, err := RandomSearch(context.Background(), space, v, g, string(workload.Database),
		[]ssdconf.Config{ref}, TunerOptions{Seed: 5, MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestGrade < 0 {
		t.Fatalf("random search regressed below the reference: %g", res.BestGrade)
	}
	if res.Iterations != 8 {
		t.Fatalf("iterations = %d", res.Iterations)
	}
	if err := space.CheckConstraints(res.Best); err != nil {
		t.Fatalf("best config violates constraints: %v", err)
	}
	if len(res.BestPerf) != 3 {
		t.Fatalf("BestPerf covers %d clusters", len(res.BestPerf))
	}
}

func TestRandomSearchErrors(t *testing.T) {
	space, v, g, ref := smallTunerEnv(t)
	if _, err := RandomSearch(context.Background(), space, v, g, "nope", []ssdconf.Config{ref}, TunerOptions{}); err == nil {
		t.Fatal("unknown target should fail")
	}
	if _, err := RandomSearch(context.Background(), space, v, g, string(workload.Database), nil, TunerOptions{}); err == nil {
		t.Fatal("no initials should fail")
	}
}

func TestRandomValidConfigRespectsConstraints(t *testing.T) {
	space, _, _, _ := smallTunerEnv(t)
	rng := newTestRNG(3)
	for i := 0; i < 20; i++ {
		cfg := randomValidConfig(space, rng)
		if cfg == nil {
			continue
		}
		if err := space.CheckConstraints(cfg); err != nil {
			t.Fatalf("sample %d violates constraints: %v", i, err)
		}
	}
}

// TestBOBeatsRandomAtEqualBudget is the §3.2 ablation: the GPR-guided
// search should not lose to uniform random sampling given the same
// validation budget (statistically it wins clearly; with the shared
// validation cache this small check just guards against regressions
// where the BO loop becomes worse than blind sampling).
func TestBOBeatsRandomAtEqualBudget(t *testing.T) {
	space, v, g, ref := smallTunerEnv(t)
	opts := TunerOptions{Seed: 11, MaxIterations: 10, SGDSteps: 4}
	tuner, err := NewTuner(space, v, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	bo, err := tuner.Tune(context.Background(), string(workload.CloudStorage), []ssdconf.Config{ref})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomSearch(context.Background(), space, v, g, string(workload.CloudStorage), []ssdconf.Config{ref}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if bo.BestGrade < rnd.BestGrade-0.25 {
		t.Fatalf("BO grade %g clearly lost to random %g", bo.BestGrade, rnd.BestGrade)
	}
}

// newTestRNG gives tests a seeded *rand.Rand without importing math/rand
// at every call site.
func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
