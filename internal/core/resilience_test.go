package core

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// failingSource delegates to a real cursor but cuts the stream short and
// reports err, exercising the simulator's Source.Err propagation path.
type failingSource struct {
	trace.Source
	after int
	n     int
	err   error
}

func (f *failingSource) Next() (trace.Request, bool) {
	if f.n >= f.after {
		return trace.Request{}, false
	}
	f.n++
	return f.Source.Next()
}

func (f *failingSource) Err() error { return f.err }

// panicSource panics on the first Next call.
type panicSource struct{ trace.Source }

func (p *panicSource) Next() (trace.Request, bool) { panic("poisoned cursor") }

func resilienceEnv(t *testing.T) (*Validator, ssdconf.Config, *trace.Trace) {
	t.Helper()
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	tr := workload.MustGenerate(workload.Database, workload.Options{Requests: 1500, Seed: 11})
	v := NewValidatorSources(space, map[string][]trace.SourceFactory{"Database": {tr.Factory()}})
	return v, space.FromDevice(ssd.Intel750()), tr
}

// TestErrorsNeverCached is the regression for the memoization contract:
// a failed measurement must not poison the cache. Every retry of a
// persistently failing key re-simulates, and once the failure clears the
// key measures and caches normally.
func TestErrorsNeverCached(t *testing.T) {
	v, ref, tr := resilienceEnv(t)
	permanent := errors.New("disk on fire")
	var calls atomic.Int32
	var healed atomic.Bool
	factory := func() trace.Source {
		calls.Add(1)
		if healed.Load() {
			return tr.Source()
		}
		return &failingSource{Source: tr.Source(), after: 200, err: permanent}
	}

	for i := 1; i <= 2; i++ {
		if _, err := v.MeasureTrace(context.Background(), ref, "Database#0", factory); !errors.Is(err, permanent) {
			t.Fatalf("call %d: err = %v, want the injected failure", i, err)
		}
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("factory invoked %d times, want 2 (an error was served from cache)", got)
	}
	if snap := v.SnapshotCache(); len(snap) != 0 {
		t.Fatalf("failed measurement landed in the cache: %+v", snap)
	}

	healed.Store(true)
	if _, err := v.MeasureTrace(context.Background(), ref, "Database#0", factory); err != nil {
		t.Fatalf("healed measurement failed: %v", err)
	}
	if snap := v.SnapshotCache(); len(snap) != 1 {
		t.Fatalf("healed measurement not cached: %d entries", len(snap))
	}
	if _, err := v.MeasureTrace(context.Background(), ref, "Database#0", factory); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("factory invoked %d times, want 3 (the success was not served from cache)", got)
	}
}

// TestTransientRetry: a source failing with an ErrTransient-wrapped
// error is retried within one MeasureTrace call and the eventual success
// is cached; the failed attempts never are.
func TestTransientRetry(t *testing.T) {
	v, ref, tr := resilienceEnv(t)
	v.MaxRetries = 3
	var calls atomic.Int32
	factory := func() trace.Source {
		if calls.Add(1) <= 2 {
			return &failingSource{Source: tr.Source(), after: 200,
				err: fmt.Errorf("spurious read: %w", ErrTransient)}
		}
		return tr.Source()
	}
	if _, err := v.MeasureTrace(context.Background(), ref, "Database#0", factory); err != nil {
		t.Fatalf("retriable failure not retried to success: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("factory invoked %d times, want 3 (2 transient failures + 1 success)", got)
	}
	if v.SimRuns() != 1 {
		t.Fatalf("SimRuns = %d, want 1 (only the successful attempt completes)", v.SimRuns())
	}

	// A non-transient error must fail on the first attempt despite the
	// retry budget (distinct trace name: the success above is cached).
	calls.Store(0)
	hard := errors.New("bad sector table")
	hardFactory := func() trace.Source {
		calls.Add(1)
		return &failingSource{Source: tr.Source(), after: 200, err: hard}
	}
	if _, err := v.MeasureTrace(context.Background(), ref, "Database#1", hardFactory); !errors.Is(err, hard) {
		t.Fatalf("err = %v, want the hard failure", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("hard failure attempted %d times, want 1 (deterministic errors fail fast)", got)
	}
}

// TestSimTimeout: a simulation over its wall-clock budget fails with
// context.DeadlineExceeded and is not cached.
func TestSimTimeout(t *testing.T) {
	v, ref, tr := resilienceEnv(t)
	v.SimTimeout = time.Nanosecond
	_, err := v.MeasureTrace(context.Background(), ref, "Database#0", tr.Factory())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if snap := v.SnapshotCache(); len(snap) != 0 {
		t.Fatalf("timed-out measurement landed in the cache: %+v", snap)
	}

	// Lifting the budget lets the same key measure normally.
	v.SimTimeout = 0
	if _, err := v.MeasureTrace(context.Background(), ref, "Database#0", tr.Factory()); err != nil {
		t.Fatal(err)
	}
}

// TestPanicRecovered: a panic inside a simulation surfaces as a
// *PanicError carrying the panic value, instead of killing the worker.
func TestPanicRecovered(t *testing.T) {
	v, ref, tr := resilienceEnv(t)
	factory := func() trace.Source { return &panicSource{Source: tr.Source()} }
	_, err := v.MeasureTrace(context.Background(), ref, "Database#0", factory)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v (%T), want *PanicError", err, err)
	}
	if pe.Value != "poisoned cursor" {
		t.Fatalf("PanicError.Value = %v, want the panic value", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError carries no stack")
	}
	if snap := v.SnapshotCache(); len(snap) != 0 {
		t.Fatalf("panicked measurement landed in the cache: %+v", snap)
	}
}

// TestTuneCheckpointResumeEquivalence is the acceptance-criteria test:
// a tuning run killed mid-way and resumed from its checkpoint — in a
// fresh tuner and a fresh, empty validator, as after a process restart —
// must produce the bit-identical result of an uninterrupted run.
func TestTuneCheckpointResumeEquivalence(t *testing.T) {
	target := string(workload.Database)
	base := TunerOptions{Seed: 5, MaxIterations: 6, SGDSteps: 3}

	// Reference: uninterrupted, no checkpointing.
	space, v, g, ref := parallelTunerEnv(t, 4, nil)
	tuner, err := NewTuner(space, v, g, base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := tuner.Tune(context.Background(), target, []ssdconf.Config{ref})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: cancel as soon as the second search iteration
	// completes; the checkpoint of that iteration is already on disk.
	ckpt := filepath.Join(t.TempDir(), "tune.ckpt.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	space2, v2, g2, ref2 := parallelTunerEnv(t, 4, nil)
	interrupted := base
	interrupted.Checkpoint = ckpt
	interrupted.OnIteration = func(iter int, _ float64) {
		if iter >= 1 {
			cancel()
		}
	}
	tuner2, err := NewTuner(space2, v2, g2, interrupted)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tuner2.Tune(ctx, target, []ssdconf.Config{ref2}); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("interrupted run: err = %v, want ErrInterrupted", err)
	}

	// Resume: fresh tuner, fresh validator (empty cache), same seed.
	space3, v3, g3, ref3 := parallelTunerEnv(t, 4, nil)
	resumed := base
	resumed.Checkpoint = ckpt
	resumed.Resume = true
	tuner3, err := NewTuner(space3, v3, g3, resumed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := tuner3.Tune(context.Background(), target, []ssdconf.Config{ref3})
	if err != nil {
		t.Fatal(err)
	}

	if !ssdconf.Equal(want.Best, got.Best) {
		t.Fatalf("best configs differ:\n uninterrupted %s\n resumed       %s", want.Best.Key(), got.Best.Key())
	}
	if want.BestGrade != got.BestGrade {
		t.Fatalf("best grades differ: uninterrupted %v, resumed %v", want.BestGrade, got.BestGrade)
	}
	if want.Iterations != got.Iterations {
		t.Fatalf("iteration counts differ: uninterrupted %d, resumed %d", want.Iterations, got.Iterations)
	}
	if want.Converged != got.Converged {
		t.Fatalf("convergence differs: uninterrupted %v, resumed %v", want.Converged, got.Converged)
	}
	if len(want.Trajectory) != len(got.Trajectory) {
		t.Fatalf("trajectory lengths differ: %d vs %d", len(want.Trajectory), len(got.Trajectory))
	}
	for i := range want.Trajectory {
		if want.Trajectory[i] != got.Trajectory[i] {
			t.Fatalf("trajectories diverge at %d: %v vs %v", i, want.Trajectory[i], got.Trajectory[i])
		}
	}
	// The resumed run must have skipped the already-measured work: the
	// checkpoint's cache snapshot serves everything up to the interrupt,
	// so its fresh simulations stay below the uninterrupted run's count.
	if got.SimRuns >= want.SimRuns {
		t.Fatalf("resumed run re-simulated completed work: %d sims, uninterrupted ran %d", got.SimRuns, want.SimRuns)
	}
}

// TestResumeRejectsMismatchedRun: a checkpoint must refuse to seed a run
// whose target, seed or parameter space differs.
func TestResumeRejectsMismatchedRun(t *testing.T) {
	target := string(workload.Database)
	ckpt := filepath.Join(t.TempDir(), "tune.ckpt.json")
	opts := TunerOptions{Seed: 5, MaxIterations: 2, SGDSteps: 2, Checkpoint: ckpt}

	space, v, g, ref := parallelTunerEnv(t, 2, nil)
	tuner, err := NewTuner(space, v, g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tuner.Tune(context.Background(), target, []ssdconf.Config{ref}); err != nil {
		t.Fatal(err)
	}

	try := func(mutate func(*TunerOptions, *ssdconf.Space)) error {
		space2, v2, g2, ref2 := parallelTunerEnv(t, 2, nil)
		o := opts
		o.Resume = true
		mutate(&o, space2)
		t2, err := NewTuner(space2, v2, g2, o)
		if err != nil {
			t.Fatal(err)
		}
		_, err = t2.Tune(context.Background(), target, []ssdconf.Config{ref2})
		return err
	}
	if err := try(func(o *TunerOptions, _ *ssdconf.Space) { o.Seed = 6 }); err == nil {
		t.Fatal("resume accepted a different seed")
	}
	if err := try(func(_ *TunerOptions, s *ssdconf.Space) {
		s.Faults = ssd.FaultProfile{Rate: 0.01, Seed: 3}
	}); err == nil {
		t.Fatal("resume accepted a different fault profile")
	}
	// Unchanged run parameters must resume cleanly (and immediately
	// return the finished run's state).
	if err := try(func(*TunerOptions, *ssdconf.Space) {}); err != nil {
		t.Fatalf("identical run failed to resume: %v", err)
	}
}

// TestFaultedRunReproducibleAcrossParallel: with fault injection enabled
// on the space, serial and 8-way-parallel validation must still fill the
// cache with bit-identical measurements — the fault stream is keyed by
// (profile seed, device), never by worker schedule.
func TestFaultedRunReproducibleAcrossParallel(t *testing.T) {
	run := func(parallel int) []CachedPerf {
		space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
		space.Faults = ssd.FaultProfile{Rate: 0.02, Seed: 9}
		ws := map[string]*trace.Trace{
			"Database": workload.MustGenerate(workload.Database, workload.Options{Requests: 1500, Seed: 13}),
			"KVStore":  workload.MustGenerate(workload.KVStore, workload.Options{Requests: 1500, Seed: 13}),
		}
		v := NewValidator(space, ws)
		v.Parallel = parallel
		ref := space.FromDevice(ssd.Intel750())
		cfgs := distinctConfigs(t, space, ref, 3)
		if err := v.MeasureBatch(context.Background(), cfgs, v.Clusters()); err != nil {
			t.Fatal(err)
		}
		return v.SnapshotCache()
	}
	serial := run(1)
	parallel := run(8)
	if len(serial) != len(parallel) {
		t.Fatalf("cache sizes differ: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("faulted measurement differs at %s/%s:\n serial   %+v\n parallel %+v",
				serial[i].CfgKey, serial[i].Name, serial[i].Perf, parallel[i].Perf)
		}
	}
}
