package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/gpr"
	"autoblox/internal/obs"
	"autoblox/internal/ssdconf"
)

// ErrInterrupted marks a tuning run stopped by context cancellation
// (Ctrl-C, a deadline). When checkpointing is on, the checkpoint on
// disk reflects the last completed iteration; re-running with Resume
// continues from exactly there.
var ErrInterrupted = errors.New("core: tuning interrupted")

// TunerOptions configures the automated tuning loop of §3.4. Zero values
// select the paper's defaults.
type TunerOptions struct {
	Alpha float64 // Formula 1 balance (default 0.5)
	Beta  float64 // Formula 2 penalty balance (default 0.1)
	Seed  int64

	// MaxIterations caps the outer search iterations (the paper observes
	// 89 on average before convergence; scaled runs use fewer).
	MaxIterations int
	// SGDSteps is the per-iteration gradient-descent step budget
	// (paper: 10).
	SGDSteps int
	// ManhattanLimit is the exploration bound: SGD stops expanding once
	// the candidate's minimum Manhattan distance to the validated set
	// reaches this value (paper: 5).
	ManhattanLimit int
	// TopK is the size of the retained best-configuration set and the
	// root-selection pool (paper: top 3).
	TopK int
	// ConvergenceWindow and ConvergenceBound implement the paper's
	// stop rule: converge when the best grade changes within the bound
	// ([-1%, 1%]) for a full window of iterations.
	ConvergenceWindow int
	ConvergenceBound  float64

	// UseTuningOrder enables the §3.3 learning rule: SGD explores
	// parameters in descending |ridge coefficient| order. Order holds
	// the parameter names; empty means all tunable axes every step.
	UseTuningOrder bool
	Order          []string

	// DisableValidationPruning turns off the §3.4 optimization that
	// skips non-target workload runs for clearly-losing configurations
	// (used by the ablation benchmarks).
	DisableValidationPruning bool

	// StopCondition, when set, ends the search as soon as the best
	// configuration's latency/throughput speedups over the reference
	// satisfy it — the what-if analysis' performance-target stop (§4.5).
	StopCondition func(latSpeedup, tputSpeedup float64) bool

	// OnIteration, when set, is invoked after every search iteration
	// with the iteration index and the best grade so far (progress
	// reporting in CLIs).
	OnIteration func(iter int, bestGrade float64)

	// OnFront, when set, is invoked after every Pareto-mode iteration
	// with the current non-dominated front size and its normalized
	// hypervolume (progress reporting; scalar runs never call it).
	OnFront func(size int, hypervolume float64)

	// OnCheckpoint, when set, is invoked after every successful
	// checkpoint write with the checkpoint path (freshness reporting:
	// /tunez serves the checkpoint age from it).
	OnCheckpoint func(path string)

	// Checkpoint, when non-empty, is a JSON file the tuner atomically
	// rewrites after frontier initialization and after every iteration,
	// capturing everything the next iteration depends on.
	Checkpoint string
	// Resume restores state from Checkpoint before tuning, skipping all
	// completed work; the continued run is bit-identical to one that was
	// never interrupted. A missing checkpoint file starts a fresh run,
	// so crash-restart loops can pass Resume unconditionally. Resume
	// requires a freshly constructed Tuner (its RNG must be unused).
	Resume bool
}

func (o *TunerOptions) defaults() {
	if o.Alpha == 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Beta == 0 {
		o.Beta = DefaultBeta
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 89
	}
	if o.SGDSteps <= 0 {
		o.SGDSteps = 10
	}
	if o.ManhattanLimit <= 0 {
		o.ManhattanLimit = 5
	}
	if o.TopK <= 0 {
		o.TopK = 3
	}
	if o.ConvergenceWindow <= 0 {
		o.ConvergenceWindow = 8
	}
	if o.ConvergenceBound <= 0 {
		o.ConvergenceBound = 0.01
	}
}

// countingSource wraps a rand.Source64, counting draws. Every draw a
// *rand.Rand makes resolves to exactly one Int63 or Uint64 call on its
// source, and both advance the underlying generator by one step — so a
// resumed run restores RNG state by replaying the recorded number of
// draws against a freshly seeded source.
type countingSource struct {
	src   rand.Source64
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) { c.src.Seed(seed) }

// fastForward advances a fresh source to the recorded draw count.
func (c *countingSource) fastForward(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws = n
}

// Tuner learns optimized SSD configurations for a target workload.
type Tuner struct {
	Space     *ssdconf.Space
	Validator *Validator
	Grader    *Grader
	Opts      TunerOptions

	rng *rand.Rand
	// rngSrc is rng's draw-counting source; nil on tuners built without
	// NewTuner (checkpointing is then unavailable).
	rngSrc *countingSource
	// orderIdx caches the resolved tuning-order parameter indices.
	orderIdx []int
}

// entry is one validated configuration.
type entry struct {
	cfg        ssdconf.Config
	vec        []float64
	grade      float64
	targetPerf float64
	latSp      float64 // target-cluster latency speedup vs reference
	tputSp     float64 // target-cluster throughput speedup vs reference
	full       bool    // true when non-target workloads were validated too
	// power and lifetimeNS back the power/lifetime objective axes: mean
	// target-cluster power draw, and the worst (smallest positive)
	// projected lifetime across the target traces (0 = no wear).
	power      float64
	lifetimeNS int64
}

// TuneResult reports a finished tuning run.
type TuneResult struct {
	Target     string
	Best       ssdconf.Config
	BestGrade  float64
	BestPerf   map[string][]autodb.Perf // best config measured on every cluster
	Iterations int
	SimRuns    int
	Converged  bool
	Elapsed    time.Duration
	// Trajectory is the best grade after each iteration (Fig. 10).
	Trajectory []float64
	// PrunedValidations counts iterations where the §3.4 shortcut
	// skipped the non-target runs.
	PrunedValidations int
	// RejectedByPower counts candidates dropped by the power budget.
	RejectedByPower int
	// Front is the non-dominated set over the validated configurations
	// (Pareto mode only), best grade first; Hypervolume is its
	// normalized dominated volume. Scalar runs leave both zero.
	Front       []FrontPoint
	Hypervolume float64
}

// NewTuner wires a tuner; grader and validator must share the space.
func NewTuner(space *ssdconf.Space, v *Validator, g *Grader, opts TunerOptions) (*Tuner, error) {
	opts.defaults()
	src := &countingSource{src: rand.NewSource(opts.Seed ^ 0x5f3759df).(rand.Source64)}
	t := &Tuner{Space: space, Validator: v, Grader: g, Opts: opts,
		rng: rand.New(src), rngSrc: src}
	if opts.UseTuningOrder {
		for _, name := range opts.Order {
			i, err := space.ParamIndex(name)
			if err != nil {
				return nil, fmt.Errorf("core: tuning order: %w", err)
			}
			t.orderIdx = append(t.orderIdx, i)
		}
	}
	return t, nil
}

// Tune learns an optimized configuration for the target cluster,
// starting from the given initial configurations (from AutoDB when the
// cluster is known, else the commodity reference). Cancelling ctx stops
// the search between (and, cooperatively, within) iterations with
// ErrInterrupted; with Opts.Checkpoint set, the snapshot of the last
// completed iteration survives on disk for Opts.Resume.
// freshMeasurements counts measurements that were not served from the
// memo cache, wherever they executed: in-process simulations plus
// results returned by a distributed backend.
func freshMeasurements(v *Validator) int {
	st := v.Stats()
	return int(st.SimRuns + st.RemoteResults)
}

func (t *Tuner) Tune(ctx context.Context, target string, initial []ssdconf.Config) (*TuneResult, error) {
	if _, ok := t.Validator.Workloads[target]; !ok {
		return nil, fmt.Errorf("core: unknown target workload %q", target)
	}
	if len(initial) == 0 {
		return nil, errors.New("core: no initial configurations")
	}
	start := time.Now()
	simStart := freshMeasurements(t.Validator)
	tsp := obs.StartSpan("tune").Arg("target", target)
	defer tsp.End()

	res := &TuneResult{Target: target}
	var validated []entry
	seen := map[string]bool{}
	startIter := 0
	noProgress := 0

	resumed := false
	if t.Opts.Resume && t.Opts.Checkpoint != "" {
		ck, err := loadCheckpoint(t.Opts.Checkpoint)
		switch {
		case errors.Is(err, os.ErrNotExist):
			// No checkpoint yet: fall through to a fresh run.
		case err != nil:
			return nil, err
		default:
			if err := t.restoreCheckpoint(ck, target, res, &validated, seen, &startIter, &noProgress); err != nil {
				return nil, err
			}
			resumed = true
		}
	}

	if !resumed {
		// ① initialize the model with the initial configuration set. The
		// whole initial frontier's target-cluster runs fan out as one batch;
		// the non-target runs batch after the power-budget filter so a
		// rejected configuration costs no non-target simulations — the same
		// economy as serial evaluation, just concurrent.
		var initCfgs []ssdconf.Config
		for _, cfg := range initial {
			if err := t.Space.CheckConstraints(cfg); err != nil {
				continue
			}
			if seen[cfg.Key()] {
				continue
			}
			seen[cfg.Key()] = true
			initCfgs = append(initCfgs, cfg)
		}
		if err := func() error {
			sp := obs.StartSpan("frontier").ArgInt("configs", int64(len(initCfgs)))
			defer sp.End()
			if err := t.Validator.MeasureBatch(ctx, initCfgs, []string{target}); err != nil {
				return err
			}
			var live []ssdconf.Config
			for _, cfg := range initCfgs {
				perfs, err := t.Validator.MeasureCluster(ctx, cfg, target) // cache hit
				if err != nil {
					return err
				}
				if !t.overPowerBudget(perfs) {
					live = append(live, cfg)
				}
			}
			if err := t.Validator.MeasureBatch(ctx, live, t.Validator.NonTargetClusters(target)); err != nil {
				return err
			}
			for _, cfg := range initCfgs {
				e, rejected, err := t.evaluate(ctx, target, cfg, math.Inf(-1), res)
				if err != nil {
					return err
				}
				if rejected {
					continue
				}
				validated = append(validated, e)
			}
			return nil
		}(); err != nil {
			return nil, err
		}
		if len(validated) == 0 {
			return nil, errors.New("core: no initial configuration satisfies the constraints (capacity/power)")
		}
		if err := t.saveCheckpoint(target, 0, noProgress, res, validated, seen); err != nil {
			return nil, err
		}
	}

	for iter := startIter; iter < t.Opts.MaxIterations; iter++ {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("%w before iteration %d: %v", ErrInterrupted, iter, cerr)
		}
		res.Iterations++

		// The iteration body runs in a closure so its trace span ends
		// exactly once on every exit path (advance, no-candidate,
		// convergence, error).
		stop, err := func() (bool, error) {
			sp := obs.StartSpan("iteration").ArgInt("iter", int64(iter))
			defer sp.End()

			// ②–⑤ pick search roots, run the SGD + GPR search from each,
			// and validate the proposals. Scalar mode keeps the historical
			// single-root walk: a random root among the top-K grades
			// (random within the top three prevents premature convergence,
			// §3.4). Pareto mode advances EVERY retained front lineage
			// each iteration — NSGA-style population advance, ordered by
			// crowding distance so the extremes go first — because a
			// single random root starves minority trade-off regions (a
			// durable-but-slower lineage never picks up the wear-neutral
			// performance knobs the grade-leading lineage found).
			advanced := false
			if t.pareto() {
				roots := frontIndices(t.Space.Objectives, validated)
				if len(roots) > t.Opts.TopK {
					roots = roots[:t.Opts.TopK]
				}
				for _, rootIdx := range roots {
					// The surrogate targets are recomputed per root: each
					// validation extends the set the GPR fits on.
					ys := t.searchScores(validated, iter)
					cand := t.sgdSearch(validated[rootIdx], ys[rootIdx], ys, validated, seen, iter)
					if cand == nil {
						continue
					}
					worst := worstRetainedGrade(validated, t.Opts.TopK)
					e, rejected, err := t.evaluate(ctx, target, cand, worst, res)
					if err != nil {
						return true, err
					}
					seen[cand.Key()] = true
					if !rejected {
						validated = append(validated, e)
					}
					advanced = true
				}
				sp.ArgInt("roots", int64(len(roots)))
			} else {
				rootIdx := t.pickRoot(validated)
				root := validated[rootIdx]
				ys := t.searchScores(validated, iter)
				cand := t.sgdSearch(root, ys[rootIdx], ys, validated, seen, iter)
				if cand != nil {
					sp.Arg("config", cand.Key())
					worst := worstRetainedGrade(validated, t.Opts.TopK)
					e, rejected, err := t.evaluate(ctx, target, cand, worst, res)
					if err != nil {
						return true, err
					}
					seen[cand.Key()] = true
					if !rejected {
						validated = append(validated, e)
					}
					advanced = true
				}
			}
			if !advanced {
				noProgress++
				res.Trajectory = append(res.Trajectory, bestGrade(validated))
				if noProgress >= 3 {
					res.Converged = true
					return true, nil
				}
				return false, nil
			}
			noProgress = 0

			res.Trajectory = append(res.Trajectory, bestGrade(validated))
			if t.Opts.OnIteration != nil {
				t.Opts.OnIteration(iter, bestGrade(validated))
			}
			if t.pareto() {
				front, hv := buildFront(t.Space.Objectives, validated)
				t.Validator.Obs.Gauge(MetricFrontSize).Set(float64(len(front)))
				t.Validator.Obs.Gauge(MetricFrontHypervolume).Set(hv)
				if t.Opts.OnFront != nil {
					t.Opts.OnFront(len(front), hv)
				}
			}
			if t.Opts.StopCondition != nil {
				b := bestEntry(validated)
				if t.Opts.StopCondition(b.latSp, b.tputSp) {
					res.Converged = true
					return true, nil
				}
			}
			if t.converged(res.Trajectory) {
				res.Converged = true
				return true, nil
			}
			return false, nil
		}()
		if err != nil {
			if ctx.Err() != nil {
				// A cancelled measurement mid-iteration: the checkpoint on
				// disk still reflects the last completed iteration, because
				// evaluate mutates no tuner state on failure.
				return nil, fmt.Errorf("%w during iteration %d: %v", ErrInterrupted, iter, err)
			}
			return nil, err
		}
		if err := t.saveCheckpoint(target, iter+1, noProgress, res, validated, seen); err != nil {
			return nil, err
		}
		if stop {
			break
		}
	}

	// Final report: fully measure the best configuration everywhere, as
	// one parallel batch.
	best := bestEntry(validated)
	res.Best = best.cfg
	res.BestGrade = best.grade
	res.BestPerf = map[string][]autodb.Perf{}
	msp := obs.StartSpan("final-measure").Arg("config", best.cfg.Key())
	if err := t.Validator.MeasureBatch(ctx, []ssdconf.Config{best.cfg}, t.Validator.Clusters()); err != nil {
		msp.End()
		return nil, err
	}
	for _, cl := range t.Validator.Clusters() {
		ps, err := t.Validator.MeasureCluster(ctx, best.cfg, cl)
		if err != nil {
			msp.End()
			return nil, err
		}
		res.BestPerf[cl] = ps
	}
	msp.End()
	if t.pareto() {
		res.Front, res.Hypervolume = buildFront(t.Space.Objectives, validated)
	}
	res.SimRuns = freshMeasurements(t.Validator) - simStart
	res.Elapsed = time.Since(start)
	return res, nil
}

// pareto reports whether this tuner searches the objective vector
// rather than the scalar grade. Scalar mode must execute the exact
// historical code path — every pareto() branch below is a no-op then.
func (t *Tuner) pareto() bool { return !t.Space.Objectives.Scalar() }

// saveCheckpoint snapshots the run if checkpointing is enabled. iter is
// the next iteration to run on resume; the RNG draw count is read at
// save time, i.e. the stream position that iteration will start from.
func (t *Tuner) saveCheckpoint(target string, iter, noProgress int, res *TuneResult, validated []entry, seen map[string]bool) error {
	if t.Opts.Checkpoint == "" || t.rngSrc == nil {
		return nil
	}
	ck := &checkpointFile{
		Version:           checkpointVersion,
		Target:            target,
		Seed:              t.Opts.Seed,
		SpaceSig:          t.Space.Signature(),
		Iteration:         iter,
		NoProgress:        noProgress,
		RNGDraws:          t.rngSrc.draws,
		Trajectory:        res.Trajectory,
		PrunedValidations: res.PrunedValidations,
		RejectedByPower:   res.RejectedByPower,
		Objectives:        t.Space.Objectives.Names(),
		Validated:         make([]checkpointEntry, len(validated)),
		Seen:              make([]string, 0, len(seen)),
		Cache:             t.Validator.SnapshotCache(),
	}
	if t.pareto() {
		ck.Front, _ = buildFront(t.Space.Objectives, validated)
	}
	for i, e := range validated {
		ck.Validated[i] = checkpointEntry{
			Cfg: e.cfg, Grade: e.grade, TargetPerf: e.targetPerf,
			LatSp: e.latSp, TputSp: e.tputSp, Full: e.full,
			Power: e.power, LifetimeNS: e.lifetimeNS,
		}
	}
	for k := range seen {
		ck.Seen = append(ck.Seen, k)
	}
	sort.Strings(ck.Seen)
	if err := writeCheckpoint(t.Opts.Checkpoint, ck); err != nil {
		return err
	}
	obs.RecordEvent("checkpoint", "path", t.Opts.Checkpoint, "iter", strconv.Itoa(iter))
	if t.Opts.OnCheckpoint != nil {
		t.Opts.OnCheckpoint(t.Opts.Checkpoint)
	}
	return nil
}

// restoreCheckpoint rebuilds the tuner's in-flight state from a
// snapshot, after validating that it belongs to this (target, seed,
// space) run.
func (t *Tuner) restoreCheckpoint(ck *checkpointFile, target string, res *TuneResult, validated *[]entry, seen map[string]bool, startIter, noProgress *int) error {
	if err := upgradeCheckpoint(ck, t.pareto()); err != nil {
		return err
	}
	if spec, err := ssdconf.ObjectiveSpecFromNames(ck.Objectives); err != nil {
		return fmt.Errorf("%w: bad objective axes: %v", ErrCheckpointIncompatible, err)
	} else if spec.String() != t.Space.Objectives.String() {
		return fmt.Errorf("%w: checkpoint optimizes %q, this run optimizes %q", ErrCheckpointIncompatible, spec, t.Space.Objectives)
	}
	if ck.Target != target {
		return fmt.Errorf("core: checkpoint targets %q, this run targets %q", ck.Target, target)
	}
	if ck.Seed != t.Opts.Seed {
		return fmt.Errorf("core: checkpoint seed %d, this run seeds %d", ck.Seed, t.Opts.Seed)
	}
	if sig := t.Space.Signature(); ck.SpaceSig != sig {
		return fmt.Errorf("core: checkpoint space signature %s does not match this space (%s); constraints, grids or fault profile changed", ck.SpaceSig, sig)
	}
	if t.rngSrc == nil {
		return errors.New("core: this tuner was not built by NewTuner; cannot resume")
	}
	if t.rngSrc.draws != 0 {
		return errors.New("core: resume requires a freshly constructed tuner")
	}
	if len(ck.Validated) == 0 {
		return errors.New("core: checkpoint has no validated configurations")
	}
	n := t.Space.NumParams()
	for _, ve := range ck.Validated {
		if len(ve.Cfg) != n {
			return fmt.Errorf("core: checkpoint config has %d parameters, space has %d", len(ve.Cfg), n)
		}
		cfg := ssdconf.Config(append([]int(nil), ve.Cfg...))
		*validated = append(*validated, entry{
			cfg: cfg, vec: t.Space.Vector(cfg), grade: ve.Grade,
			targetPerf: ve.TargetPerf, latSp: ve.LatSp, tputSp: ve.TputSp, full: ve.Full,
			power: ve.Power, lifetimeNS: ve.LifetimeNS,
		})
	}
	for _, k := range ck.Seen {
		seen[k] = true
	}
	res.Iterations = ck.Iteration
	res.Trajectory = append(res.Trajectory, ck.Trajectory...)
	res.PrunedValidations = ck.PrunedValidations
	res.RejectedByPower = ck.RejectedByPower
	*startIter = ck.Iteration
	*noProgress = ck.NoProgress
	t.Validator.RestoreCache(ck.Cache)
	t.rngSrc.fastForward(ck.RNGDraws)
	return nil
}

// evaluate validates cfg: target cluster first, then (unless pruned) the
// non-target clusters; the power budget is enforced on the target run.
// worst is the worst retained grade for the §3.4 validation-pruning
// shortcut (-Inf disables it). It returns the entry and whether the
// config was rejected outright (power).
func (t *Tuner) evaluate(ctx context.Context, target string, cfg ssdconf.Config, worst float64, res *TuneResult) (entry, bool, error) {
	e := entry{cfg: cfg, vec: t.Space.Vector(cfg)}

	perfs, err := t.Validator.MeasureCluster(ctx, cfg, target)
	if err != nil {
		return e, false, err
	}
	// Power budget check (§3.4): drop configurations whose modeled
	// power exceeds the budget.
	if t.overPowerBudget(perfs) {
		res.RejectedByPower++
		return e, true, nil
	}
	e.targetPerf = t.Grader.ClusterPerformance(target, perfs)
	e.latSp, e.tputSp = clusterSpeedups(t.Grader, target, perfs)
	e.power = meanPower(perfs)
	e.lifetimeNS = minLifetimeNS(perfs)

	// Validation-pruning shortcut: if even the target-only share of the
	// grade loses to the worst retained configuration, skip the
	// non-target runs — the grade can only get more expensive to confirm
	// as a loser. Pareto mode never takes it: a grade-losing candidate
	// may still be non-dominated on power or lifetime, and dominance
	// needs every axis fully measured.
	if !t.Opts.DisableValidationPruning && !t.pareto() && t.Grader.TargetHalf(e.targetPerf) < worst && !math.IsInf(worst, -1) {
		e.grade = t.Grader.TargetHalf(e.targetPerf)
		e.full = false
		res.PrunedValidations++
		return e, false, nil
	}

	// Non-target validation: the candidate's whole remaining frontier
	// (every non-target cluster × trace) fans out as one batch.
	nonTargets := t.Validator.NonTargetClusters(target)
	if err := t.Validator.MeasureBatch(ctx, []ssdconf.Config{cfg}, nonTargets); err != nil {
		return e, false, err
	}
	nonTarget := map[string]float64{}
	for _, cl := range nonTargets {
		ps, err := t.Validator.MeasureCluster(ctx, cfg, cl) // cache hit
		if err != nil {
			return e, false, err
		}
		nonTarget[cl] = t.Grader.ClusterPerformance(cl, ps)
	}
	e.grade = t.Grader.Grade(e.targetPerf, nonTarget, len(t.Validator.Workloads))
	e.full = true
	return e, false, nil
}

// overPowerBudget reports whether any target-cluster measurement exceeds
// the constraint set's power budget (0 disables the check).
func (t *Tuner) overPowerBudget(perfs []autodb.Perf) bool {
	budget := t.Space.Cons.PowerBudgetWatts
	if budget <= 0 {
		return false
	}
	for _, p := range perfs {
		if p.PowerWatts > budget {
			return true
		}
	}
	return false
}

// pickRoot selects a random search root and returns its index into the
// validated set: among the top-K grades in scalar mode, among the up-to-K
// least-crowded members of the non-dominated front in Pareto mode. Both
// modes spend exactly one RNG draw, keeping the shared stream aligned.
// pickRoot selects the scalar-mode search root: a random member of the
// top-K grades. Pareto mode does not use it — every front lineage is
// advanced per iteration instead (see the iteration body).
func (t *Tuner) pickRoot(validated []entry) int {
	idx := topKIndices(validated, t.Opts.TopK)
	return idx[t.rng.Intn(len(idx))]
}

// searchScores maps the validated set onto the surrogate's regression
// targets: the grades themselves in scalar mode, a per-iteration
// weighted scalarization of the normalized objective vectors in Pareto
// mode (so successive iterations pull toward different front regions).
func (t *Tuner) searchScores(validated []entry, iter int) []float64 {
	if t.pareto() {
		return scalarizedScores(t.Space.Objectives, validated, iter)
	}
	ys := make([]float64, len(validated))
	for i, e := range validated {
		ys[i] = e.grade
	}
	return ys
}

// sgdSearch walks the discrete configuration grid from root, using the
// GPR surrogate to score candidates, until the step budget or the
// Manhattan exploration bound is hit. It returns an unvalidated
// configuration to validate next, or nil when the neighborhood is
// exhausted.
func (t *Tuner) sgdSearch(root entry, rootScore float64, ys []float64, validated []entry, seen map[string]bool, iter int) ssdconf.Config {
	gp := t.fitGPR(validated, ys)

	cur := root.cfg
	curScore := rootScore
	var fallback ssdconf.Config
	fallbackScore := math.Inf(-1)

	for step := 0; step < t.Opts.SGDSteps; step++ {
		cands := t.candidates(cur, iter*t.Opts.SGDSteps+step)
		if len(cands) == 0 {
			break
		}
		// Shuffle so GPR-score ties (unexplored axes all look alike)
		// resolve to a random axis instead of the first parameter.
		t.rng.Shuffle(len(cands), func(a, b int) { cands[a], cands[b] = cands[b], cands[a] })
		var best ssdconf.Config
		bestScore := math.Inf(-1)
		for _, c := range cands {
			if t.minManhattan(c, validated) > t.Opts.ManhattanLimit {
				continue // exploration bound (§3.4)
			}
			score := t.predict(gp, c)
			if !seen[c.Key()] && score > fallbackScore {
				fallback, fallbackScore = c, score
			}
			if score > bestScore {
				best, bestScore = c, score
			}
		}
		if best == nil {
			break
		}
		if bestScore <= curScore {
			break // local optimum under the surrogate
		}
		cur, curScore = best, bestScore
	}

	if !seen[cur.Key()] && !ssdconf.Equal(cur, root.cfg) {
		return cur
	}
	return fallback
}

// candidates returns the neighbor set for one SGD step: the full
// neighborhood, or — with the §3.3 tuning order — the neighborhood along
// the most important not-yet-exhausted axes.
func (t *Tuner) candidates(cur ssdconf.Config, step int) []ssdconf.Config {
	if !t.Opts.UseTuningOrder || len(t.orderIdx) == 0 {
		return t.Space.Neighbors(cur)
	}
	// Walk the ranked axes starting at the step's offset so successive
	// steps favor the highest-|coefficient| parameters first.
	var out []ssdconf.Config
	for k := 0; k < len(t.orderIdx) && len(out) == 0; k++ {
		axis := t.orderIdx[(step+k)%len(t.orderIdx)]
		out = t.Space.NeighborsOf(cur, axis)
	}
	return out
}

func (t *Tuner) minManhattan(c ssdconf.Config, validated []entry) int {
	min := math.MaxInt32
	for _, e := range validated {
		if d := ssdconf.ManhattanDistance(t.Space, c, e.cfg); d < min {
			min = d
		}
	}
	return min
}

// fitGPR fits the surrogate on the validated set against the given
// regression targets; nil when there are too few points (prediction then
// falls back to optimism-free exploration).
func (t *Tuner) fitGPR(validated []entry, ys []float64) *gpr.GP {
	if len(validated) < 2 {
		return nil
	}
	x := make([][]float64, len(validated))
	y := make([]float64, len(validated))
	for i, e := range validated {
		x[i] = e.vec
		y[i] = ys[i]
	}
	gp := gpr.New(nil)
	gp.OptimizeHyperparams = len(validated) >= 6 && len(validated)%4 == 0
	if err := gp.Fit(x, y); err != nil {
		return nil
	}
	return gp
}

func (t *Tuner) predict(gp *gpr.GP, c ssdconf.Config) float64 {
	if gp == nil {
		// Explore arbitrarily before the model exists. The noise is
		// derived per candidate — hash(base seed, config key) — rather
		// than drawn from the shared RNG stream, so a candidate's score
		// is a pure function of (seed, candidate): independent of
		// evaluation order and of how many workers the validator fans
		// simulations over (serial ≡ parallel determinism).
		return t.explorationNoise(c)
	}
	m, s, err := gp.Predict([][]float64{t.Space.Vector(c)})
	if err != nil {
		return math.Inf(-1)
	}
	// UCB: the paper notes BO "quantifies the exploration trade-offs
	// with predicted mean and variance values".
	return m[0] + 0.5*s[0]
}

// explorationNoise maps (seed, config key) to a deterministic tie-break
// score in [0, 1e-6) via FNV-1a — the per-candidate derived-seed rule.
func (t *Tuner) explorationNoise(c ssdconf.Config) float64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(t.Opts.Seed))
	h.Write(b[:])
	h.Write([]byte(c.Key()))
	// Top 53 bits → uniform float64 in [0, 1), scaled down.
	return float64(h.Sum64()>>11) / (1 << 53) * 1e-6
}

func (t *Tuner) converged(traj []float64) bool {
	w := t.Opts.ConvergenceWindow
	if len(traj) <= w {
		return false
	}
	recent := traj[len(traj)-w-1:]
	base := math.Abs(recent[0])
	if base < 1e-9 {
		base = 1e-9
	}
	for i := 1; i < len(recent); i++ {
		if math.Abs(recent[i]-recent[0])/base > t.Opts.ConvergenceBound {
			return false
		}
	}
	return true
}

func bestGrade(validated []entry) float64 {
	return bestEntry(validated).grade
}

func bestEntry(validated []entry) entry {
	best := validated[0]
	for _, e := range validated[1:] {
		if e.grade > best.grade {
			best = e
		}
	}
	return best
}

func worstRetainedGrade(validated []entry, k int) float64 {
	idx := topKIndices(validated, k)
	worst := math.Inf(1)
	for _, i := range idx {
		if validated[i].grade < worst {
			worst = validated[i].grade
		}
	}
	if math.IsInf(worst, 1) {
		return math.Inf(-1)
	}
	return worst
}

// clusterSpeedups returns the geometric-mean latency and throughput
// speedups of a cluster's measurements against the grader's reference.
func clusterSpeedups(g *Grader, cluster string, perfs []autodb.Perf) (lat, tput float64) {
	refs := g.Ref[cluster]
	var latLog, tputLog float64
	for i, p := range perfs {
		l, tp := Speedups(p, refs[i])
		latLog += math.Log(l)
		tputLog += math.Log(tp)
	}
	n := float64(len(perfs))
	return math.Exp(latLog / n), math.Exp(tputLog / n)
}

func topKIndices(validated []entry, k int) []int {
	idx := make([]int, len(validated))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return validated[idx[a]].grade > validated[idx[b]].grade
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}
