package core

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

func TestCoarsePrune(t *testing.T) {
	_, v, g, ref := testEnv(t, []workload.Category{workload.Database}, 2500)
	res, err := CoarsePrune(context.Background(), v, g, string(workload.Database), ref, PruneOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeps) != 42 {
		t.Fatalf("swept %d parameters, want 42 (Fig. 4's 35 numeric + 3 host-interface numerics + 4 tunable categoricals)", len(res.Sweeps))
	}
	// Tunable categoricals are swept across their whole domain.
	for name, n := range map[string]int{"PlaneAllocationScheme": 16, "CachePolicy": 4, "GCPolicy": 3, "HostInterfaceModel": 3} {
		if got := len(res.Sweeps[name]); got != n {
			t.Fatalf("%s sweep has %d points, want %d (full domain)", name, got, n)
		}
	}
	// Known-inert parameters must be found insensitive.
	found := map[string]bool{}
	for _, n := range res.Insensitive {
		found[n] = true
	}
	for _, want := range []string{"PageMetadataCapacity", "ReadRetryLimit", "BadBlockRatio"} {
		if !found[want] {
			t.Fatalf("%s should be insensitive; insensitive set = %v", want, res.Insensitive)
		}
	}
	if len(res.Insensitive) < 5 || len(res.Insensitive) > 30 {
		t.Fatalf("insensitive count %d implausible (paper finds ~12)", len(res.Insensitive))
	}
	// Sweep points are well-formed.
	for name, sweep := range res.Sweeps {
		if len(sweep) == 0 {
			t.Fatalf("empty sweep for %s", name)
		}
		if sweep[0].Performance != 0 {
			t.Fatalf("%s: first point (baseline) performance = %g, want 0", name, sweep[0].Performance)
		}
	}
	if _, err := CoarsePrune(context.Background(), v, g, "nope", ref, PruneOptions{}); err == nil {
		t.Fatal("unknown target should fail")
	}
}

func TestFinePrune(t *testing.T) {
	_, v, g, ref := testEnv(t, []workload.Category{workload.KVStore}, 2500)
	coarse, err := CoarsePrune(context.Background(), v, g, string(workload.KVStore), ref, PruneOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := FinePrune(context.Background(), v, g, string(workload.KVStore), ref, coarse.Insensitive, PruneOptions{Seed: 2, Samples: 48})
	if err != nil {
		t.Fatal(err)
	}
	if len(fine.Order) == 0 {
		t.Fatal("empty tuning order")
	}
	if len(fine.Coefficients) == 0 {
		t.Fatal("no coefficients")
	}
	// Tunable categoricals that survive coarse pruning participate in
	// the regression (one-hot) and receive a coefficient like every
	// numeric axis; coarse-insensitive ones are dropped like any other.
	coarseDropped := map[string]bool{}
	for _, n := range coarse.Insensitive {
		coarseDropped[n] = true
	}
	anyCat := false
	for _, name := range []string{"PlaneAllocationScheme", "CachePolicy", "GCPolicy"} {
		_, ok := fine.Coefficients[name]
		if ok == coarseDropped[name] {
			t.Fatalf("%s: in coefficients=%v but coarse-insensitive=%v", name, ok, coarseDropped[name])
		}
		anyCat = anyCat || ok
	}
	if !anyCat {
		t.Fatal("no categorical axis reached the ridge fit on this workload")
	}
	// Order is sorted by |coefficient| descending.
	prev := 1e18
	for _, name := range fine.Order {
		c := fine.Coefficients[name]
		if c < 0 {
			c = -c
		}
		if c > prev+1e-12 {
			t.Fatalf("order not sorted by |coef|: %v", fine.Order)
		}
		prev = c
	}
	if _, err := FinePrune(context.Background(), v, g, "nope", ref, nil, PruneOptions{}); err == nil {
		t.Fatal("unknown target should fail")
	}
}

func smallTunerEnv(t *testing.T) (*ssdconf.Space, *Validator, *Grader, ssdconf.Config) {
	return testEnv(t, []workload.Category{workload.Database, workload.WebSearch, workload.CloudStorage}, 2500)
}

func TestTunerImprovesOverReference(t *testing.T) {
	space, v, g, ref := smallTunerEnv(t)
	tuner, err := NewTuner(space, v, g, TunerOptions{Seed: 7, MaxIterations: 10, SGDSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune(context.Background(), string(workload.Database), []ssdconf.Config{ref})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestGrade < 0 {
		t.Fatalf("best grade %g worse than the reference's 0", res.BestGrade)
	}
	if res.Iterations == 0 || len(res.Trajectory) != res.Iterations {
		t.Fatalf("iterations=%d trajectory=%d", res.Iterations, len(res.Trajectory))
	}
	// Trajectory is the running best → non-decreasing.
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i] < res.Trajectory[i-1]-1e-12 {
			t.Fatalf("trajectory decreased at %d: %v", i, res.Trajectory)
		}
	}
	if err := space.CheckConstraints(res.Best); err != nil {
		t.Fatalf("best config violates constraints: %v", err)
	}
	if len(res.BestPerf) != 3 {
		t.Fatalf("BestPerf covers %d clusters, want 3", len(res.BestPerf))
	}
	if res.SimRuns <= 0 {
		t.Fatal("no simulator runs recorded")
	}
}

func TestTunerErrors(t *testing.T) {
	space, v, g, ref := smallTunerEnv(t)
	tuner, _ := NewTuner(space, v, g, TunerOptions{Seed: 1, MaxIterations: 2})
	if _, err := tuner.Tune(context.Background(), "nope", []ssdconf.Config{ref}); err == nil {
		t.Fatal("unknown target should fail")
	}
	if _, err := tuner.Tune(context.Background(), string(workload.Database), nil); err == nil {
		t.Fatal("no initial configs should fail")
	}
	if _, err := NewTuner(space, v, g, TunerOptions{UseTuningOrder: true, Order: []string{"Bogus"}}); err == nil {
		t.Fatal("bogus order name should fail")
	}
}

func TestTunerDeterminism(t *testing.T) {
	space, v, g, ref := smallTunerEnv(t)
	run := func() *TuneResult {
		tuner, _ := NewTuner(space, v, g, TunerOptions{Seed: 99, MaxIterations: 6, SGDSteps: 3})
		res, err := tuner.Tune(context.Background(), string(workload.WebSearch), []ssdconf.Config{ref})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BestGrade != b.BestGrade || !ssdconf.Equal(a.Best, b.Best) {
		t.Fatal("tuning not deterministic under a fixed seed")
	}
}

func TestTunerWithTuningOrder(t *testing.T) {
	space, v, g, ref := smallTunerEnv(t)
	tuner, err := NewTuner(space, v, g, TunerOptions{
		Seed: 3, MaxIterations: 8, SGDSteps: 4,
		UseTuningOrder: true,
		Order:          []string{"FlashChannelCount", "DataCacheSize", "QueueDepth", "ChannelTransferRate"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune(context.Background(), string(workload.CloudStorage), []ssdconf.Config{ref})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestGrade < 0 {
		t.Fatalf("ordered tuning regressed below reference: %g", res.BestGrade)
	}
}

// The two tests below pin synthetic environments where one of this
// repo's newly registered policies is the measurable optimum along its
// axis, and assert the tuner discovers it end-to-end (registry →
// ssdconf dimension → NeighborsOf → SGD walk → Best config).

func TestTunerSelectsCostBenefitGC(t *testing.T) {
	// A deliberately tiny-capacity constraint keeps absolute over-
	// provisioning small, so GC runs within a short trace; on the
	// RadiusAuth cluster the wear-aware cost-benefit victim beats both
	// greedy and fifo.
	cons := ssdconf.DefaultConstraints()
	cons.CapacityBytes = 16 << 20
	space := ssdconf.NewSpace(cons)
	tiny := ssd.DefaultParams()
	tiny.Channels, tiny.ChipsPerChannel, tiny.DiesPerChip, tiny.PlanesPerDie = 1, 1, 1, 1
	tiny.BlocksPerPlane, tiny.PagesPerBlock, tiny.PageSizeBytes = 128, 64, 2048
	base := space.FromDevice(tiny)
	if err := space.CheckConstraints(base); err != nil {
		t.Fatalf("base violates constraints: %v", err)
	}
	target := string(workload.RadiusAuth)
	v := NewValidator(space, map[string]*trace.Trace{
		target: workload.MustGenerate(workload.RadiusAuth, workload.Options{Requests: 2500, Seed: 21}),
	})
	g, err := NewGrader(context.Background(), v, base, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner(space, v, g, TunerOptions{
		Seed: 5, MaxIterations: 6, SGDSteps: 3,
		UseTuningOrder: true, Order: []string{"GCPolicy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune(context.Background(), target, []ssdconf.Config{base})
	if err != nil {
		t.Fatal(err)
	}
	if d := space.ToDevice(res.Best); d.GCPolicy != ssd.GCCostBenefit {
		t.Fatalf("tuner selected gc policy %s (grade %g), want costbenefit", d.GCPolicy, res.BestGrade)
	}
	if res.BestGrade <= 0 {
		t.Fatalf("selecting costbenefit should improve on the greedy baseline, grade = %g", res.BestGrade)
	}
}

func TestTunerSelectsClockCache(t *testing.T) {
	// On the LiveMaps cluster with the commodity reference device the
	// CLOCK replacement policy strictly beats LRU, FIFO and CFLRU.
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	base := space.FromDevice(ssd.Intel750())
	target := string(workload.LiveMaps)
	v := NewValidator(space, map[string]*trace.Trace{
		target: workload.MustGenerate(workload.LiveMaps, workload.Options{Requests: 2500, Seed: 21}),
	})
	g, err := NewGrader(context.Background(), v, base, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner(space, v, g, TunerOptions{
		Seed: 5, MaxIterations: 6, SGDSteps: 3,
		UseTuningOrder: true, Order: []string{"CachePolicy"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune(context.Background(), target, []ssdconf.Config{base})
	if err != nil {
		t.Fatal(err)
	}
	if d := space.ToDevice(res.Best); d.CachePolicy != ssd.CacheCLOCK {
		t.Fatalf("tuner selected cache policy %s (grade %g), want CLOCK", d.CachePolicy, res.BestGrade)
	}
	if res.BestGrade <= 0 {
		t.Fatalf("selecting CLOCK should improve on the LRU baseline, grade = %g", res.BestGrade)
	}
}

// hotColdTenants builds three single-tenant traces over disjoint LBA
// regions of a small device: a hot tenant rewriting a small region, a
// cold tenant streaming sequentially over a large one, and a reader
// scanning the whole space (whose flash reads observe GC pauses).
// MergeSourcesTagged interleaves them by arrival and stamps per-tenant
// stream tags — the multi-tenant shape where per-stream write lanes pay
// off: hot blocks die together instead of dragging cold survivors
// through every collection.
func hotColdTenants(n int, seed int64) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	const spp = 4 // 2048-byte pages = 4 sectors
	var hot, cold, scan []trace.Request
	coldLP := int64(750)
	for i := 0; i < n; i++ {
		arrival := time.Duration(i) * 150 * time.Nanosecond
		switch draw := rng.Float64(); {
		case draw < 0.55:
			hot = append(hot, trace.Request{Arrival: arrival,
				LBA: uint64(rng.Intn(750)) * spp, Sectors: spp, Op: trace.Write})
		case draw < 0.85:
			cold = append(cold, trace.Request{Arrival: arrival,
				LBA: uint64(coldLP) * spp, Sectors: spp, Op: trace.Write})
			coldLP++
			if coldLP >= 7000 {
				coldLP = 750
			}
		default:
			scan = append(scan, trace.Request{Arrival: arrival,
				LBA: uint64(rng.Intn(7000)) * spp, Sectors: spp, Op: trace.Read})
		}
	}
	src := trace.MergeSourcesTagged("multi-tenant",
		(&trace.Trace{Name: "hot", Requests: hot}).Source(),
		(&trace.Trace{Name: "cold", Requests: cold}).Source(),
		(&trace.Trace{Name: "scan", Requests: scan}).Source())
	tr, err := trace.Materialize(src)
	if err != nil {
		panic(err)
	}
	return tr
}

func TestTunerSelectsMultiStream(t *testing.T) {
	// Small capacity + copyback off keeps GC on the shared channel, so
	// the write-amplification gap between mixed-lifetime blocks
	// (conventional) and per-stream lanes (multi-stream) reaches the
	// latency the grader sees.
	cons := ssdconf.DefaultConstraints()
	cons.CapacityBytes = 16 << 20
	space := ssdconf.NewSpace(cons)
	tiny := ssd.DefaultParams()
	tiny.Channels, tiny.ChipsPerChannel, tiny.DiesPerChip, tiny.PlanesPerDie = 1, 1, 1, 1
	tiny.BlocksPerPlane, tiny.PagesPerBlock, tiny.PageSizeBytes = 128, 64, 2048
	tiny.CopybackEnabled = false
	base := space.FromDevice(tiny)
	if err := space.CheckConstraints(base); err != nil {
		t.Fatalf("base violates constraints: %v", err)
	}
	target := "MultiTenant"
	v := NewValidator(space, map[string]*trace.Trace{target: hotColdTenants(24000, 1)})
	g, err := NewGrader(context.Background(), v, base, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner(space, v, g, TunerOptions{
		Seed: 5, MaxIterations: 6, SGDSteps: 3,
		UseTuningOrder: true, Order: []string{"HostInterfaceModel"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune(context.Background(), target, []ssdconf.Config{base})
	if err != nil {
		t.Fatal(err)
	}
	if d := space.ToDevice(res.Best); d.HostIfcModel != ssd.IfcMultiStream {
		t.Fatalf("tuner selected interface %s (grade %g), want multistream", d.HostIfcModel, res.BestGrade)
	}
	if res.BestGrade <= 0 {
		t.Fatalf("stream isolation should improve on the conventional baseline, grade = %g", res.BestGrade)
	}
}

// seqScanTrace is a sequential write stream with a uniform random-read
// scan whose mapping footprint exceeds the conventional CMT, so every
// scan read pays a flash mapping lookup. The zone-granular mapping of
// the ZNS model covers the same footprint with three orders of
// magnitude fewer entries.
func seqScanTrace(n int, seed int64, logicalBytes int64, pageBytes int) *trace.Trace {
	rng := rand.New(rand.NewSource(seed))
	spp := uint64(pageBytes / 512)
	pages := uint64(logicalBytes) / uint64(pageBytes)
	reqs := make([]trace.Request, 0, n)
	w := uint64(0)
	for i := 0; i < n; i++ {
		r := trace.Request{Arrival: time.Duration(i) * time.Microsecond,
			Sectors: uint32(spp), Op: trace.Write, LBA: w * spp}
		if i%3 == 0 {
			r.Op = trace.Read
			r.LBA = (rng.Uint64() % pages) * spp
		} else {
			w = (w + 1) % pages
		}
		reqs = append(reqs, r)
	}
	return &trace.Trace{Name: "seq-scan", Requests: reqs}
}

func TestTunerSelectsZNS(t *testing.T) {
	// A large device at the minimum grid CMT: the simulator's capacity
	// folding leaves a per-page CMT covering only a sliver of the
	// logical space, while the ZNS zone-granular table covers all of it.
	cons := ssdconf.DefaultConstraints()
	cons.CapacityBytes = 4 << 40
	space := ssdconf.NewSpace(cons)
	dev := ssd.DefaultParams()
	dev.BlocksPerPlane, dev.PagesPerBlock = 2048, 1024
	dev.CMTBytes = 32 << 20
	dev.CMTEntryBytes = 16
	dev.DataCacheBytes = 64 << 20
	dev.ZoneSizeMB = 64
	base := space.FromDevice(dev)
	if err := space.CheckConstraints(base); err != nil {
		t.Fatalf("base violates constraints: %v", err)
	}
	logical := int64(float64(dev.CapacityBytes()) * (1 - dev.OverprovisionRatio))
	target := "SeqScan"
	v := NewValidator(space, map[string]*trace.Trace{
		target: seqScanTrace(45000, 4, logical, dev.PageSizeBytes),
	})
	g, err := NewGrader(context.Background(), v, base, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	tuner, err := NewTuner(space, v, g, TunerOptions{
		Seed: 5, MaxIterations: 6, SGDSteps: 3,
		UseTuningOrder: true, Order: []string{"HostInterfaceModel"},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := tuner.Tune(context.Background(), target, []ssdconf.Config{base})
	if err != nil {
		t.Fatal(err)
	}
	if d := space.ToDevice(res.Best); d.HostIfcModel != ssd.IfcZNS {
		t.Fatalf("tuner selected interface %s (grade %g), want zns", d.HostIfcModel, res.BestGrade)
	}
	if res.BestGrade <= 0 {
		t.Fatalf("zone-granular mapping should improve on the conventional baseline, grade = %g", res.BestGrade)
	}
}

func TestPowerBudgetRejection(t *testing.T) {
	cons := ssdconf.DefaultConstraints()
	cons.PowerBudgetWatts = 0.0001 // impossible budget: everything rejected
	space := ssdconf.NewSpace(cons)
	tr := workload.MustGenerate(workload.Database, workload.Options{Requests: 1500, Seed: 4})
	v := NewValidator(space, map[string]*trace.Trace{"Database": tr})
	ref := space.FromDevice(ssd.Intel750())
	g, err := NewGrader(context.Background(), v, ref, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	tuner, _ := NewTuner(space, v, g, TunerOptions{Seed: 1, MaxIterations: 2})
	if _, err := tuner.Tune(context.Background(), "Database", []ssdconf.Config{ref}); err == nil {
		t.Fatal("impossible power budget should reject every initial config")
	}

	// A generous budget accepts everything.
	cons.PowerBudgetWatts = 100
	space2 := ssdconf.NewSpace(cons)
	v2 := NewValidator(space2, map[string]*trace.Trace{"Database": tr})
	ref2 := space2.FromDevice(ssd.Intel750())
	g2, err := NewGrader(context.Background(), v2, ref2, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	tuner2, _ := NewTuner(space2, v2, g2, TunerOptions{Seed: 1, MaxIterations: 3, SGDSteps: 2})
	res, err := tuner2.Tune(context.Background(), "Database", []ssdconf.Config{ref2})
	if err != nil {
		t.Fatal(err)
	}
	if res.RejectedByPower != 0 {
		t.Fatalf("generous budget rejected %d configs", res.RejectedByPower)
	}
}

func TestWhatIfGoal(t *testing.T) {
	if err := (WhatIfGoal{}).validate(); err == nil {
		t.Fatal("empty goal should fail validation")
	}
	if err := (WhatIfGoal{Target: "x"}).validate(); err == nil {
		t.Fatal("goal without a metric should fail")
	}
	if err := (WhatIfGoal{Target: "x", LatencyReduction: 2}).validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWhatIfModestGoal(t *testing.T) {
	cons := ssdconf.DefaultConstraints()
	space := ssdconf.NewWhatIfSpace(cons)
	tr := workload.MustGenerate(workload.WebSearch, workload.Options{Requests: 2500, Seed: 9})
	v := NewValidator(space, map[string]*trace.Trace{"WebSearch": tr})
	ref := space.FromDevice(ssd.Intel750())
	g, err := NewGrader(context.Background(), v, ref, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	res, err := WhatIf(context.Background(), space, v, g, WhatIfGoal{Target: "WebSearch", LatencyReduction: 1.05},
		[]ssdconf.Config{ref}, TunerOptions{Seed: 6, MaxIterations: 12, SGDSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencySpeedup <= 0 {
		t.Fatalf("latency speedup %g", res.LatencySpeedup)
	}
	if len(res.CriticalParams) != len(Table7Params) {
		t.Fatalf("critical params %d, want %d", len(res.CriticalParams), len(Table7Params))
	}
	if !res.Achieved && res.LatencySpeedup >= 1.05 {
		t.Fatal("Achieved flag inconsistent with speedup")
	}
}

func TestValidationPruningCountersAndAblation(t *testing.T) {
	space, v, g, ref := smallTunerEnv(t)
	with, _ := NewTuner(space, v, g, TunerOptions{Seed: 21, MaxIterations: 8, SGDSteps: 3})
	resWith, err := with.Tune(context.Background(), string(workload.CloudStorage), []ssdconf.Config{ref})
	if err != nil {
		t.Fatal(err)
	}
	without, _ := NewTuner(space, v, g, TunerOptions{Seed: 21, MaxIterations: 8, SGDSteps: 3,
		DisableValidationPruning: true})
	resWithout, err := without.Tune(context.Background(), string(workload.CloudStorage), []ssdconf.Config{ref})
	if err != nil {
		t.Fatal(err)
	}
	if resWithout.PrunedValidations != 0 {
		t.Fatalf("pruning disabled but %d prunes recorded", resWithout.PrunedValidations)
	}
	_ = resWith // counters may legitimately be zero on lucky seeds
}

func TestStopConditionHaltsEarly(t *testing.T) {
	space, v, g, ref := smallTunerEnv(t)
	tuner, _ := NewTuner(space, v, g, TunerOptions{
		Seed: 2, MaxIterations: 50, SGDSteps: 3,
		StopCondition: func(lat, tput float64) bool { return lat >= 1.0 }, // satisfied immediately
	})
	res, err := tuner.Tune(context.Background(), string(workload.Database), []ssdconf.Config{ref})
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("stop condition should halt in 1 iteration, ran %d", res.Iterations)
	}
	if !res.Converged {
		t.Fatal("stop-condition halt should mark Converged")
	}
}

func TestWhatIfThroughputGoalUsesStress(t *testing.T) {
	// A throughput goal above the offered rate is reachable only through
	// the arrival-compression stress measurement.
	cons := ssdconf.DefaultConstraints()
	space := ssdconf.NewWhatIfSpace(cons)
	tr := workload.MustGenerate(workload.Recomm, workload.Options{Requests: 2500, Seed: 14})
	v := NewValidator(space, map[string]*trace.Trace{"Recomm": tr})
	ref := space.FromDevice(ssd.Intel750())
	g, err := NewGrader(context.Background(), v, ref, DefaultAlpha, DefaultBeta)
	if err != nil {
		t.Fatal(err)
	}
	res, err := WhatIf(context.Background(), space, v, g, WhatIfGoal{Target: "Recomm", ThroughputGain: 1.1},
		[]ssdconf.Config{ref}, TunerOptions{Seed: 8, MaxIterations: 15, SGDSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputSpeedup <= 0 {
		t.Fatalf("bad throughput speedup %g", res.ThroughputSpeedup)
	}
}
