package core

import (
	"context"
	"errors"
	"fmt"

	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
)

// WhatIfGoal is a §4.5 performance target: "reduce latency by 3×" or
// "improve throughput by 3×" for a target workload.
type WhatIfGoal struct {
	Target string
	// LatencyReduction is the desired reference/target latency ratio
	// (e.g., 3.0); zero means latency is unconstrained.
	LatencyReduction float64
	// ThroughputGain is the desired target/reference throughput ratio;
	// zero means throughput is unconstrained.
	ThroughputGain float64
}

func (g WhatIfGoal) validate() error {
	if g.Target == "" {
		return errors.New("core: what-if goal needs a target workload")
	}
	if g.LatencyReduction <= 0 && g.ThroughputGain <= 0 {
		return errors.New("core: what-if goal needs a latency or throughput target")
	}
	return nil
}

// WhatIfResult reports a what-if exploration. On a multi-objective
// space the embedded TuneResult.Front is the perf/power/lifetime
// trade-off curve: every non-dominated configuration the exploration
// found, best grade first.
type WhatIfResult struct {
	TuneResult
	Goal     WhatIfGoal
	Achieved bool
	// LatencySpeedup / ThroughputSpeedup are the best configuration's
	// target-cluster speedups over the reference.
	LatencySpeedup    float64
	ThroughputSpeedup float64
	// CriticalParams holds the learned values of the parameters Table 7
	// reports.
	CriticalParams map[string]float64
}

// Table7Params are the critical parameters the paper reports for the
// what-if analysis.
var Table7Params = []string{
	"DataCacheSize", "CMTCapacity", "ChannelWidth", "ChannelTransferRate",
	"PageReadLatency", "PageProgramLatency", "FlashChannelCount", "ChipNoPerChannel",
}

// WhatIf runs the what-if analysis: an expanded-bounds tuning run that
// stops as soon as the goal's speedups are met. The space should come
// from ssdconf.NewWhatIfSpace; the validator/grader must be built on it.
func WhatIf(ctx context.Context, space *ssdconf.Space, v *Validator, g *Grader, goal WhatIfGoal, initial []ssdconf.Config, opts TunerOptions) (*WhatIfResult, error) {
	// A multi-objective space turns WhatIf into a front explorer: the
	// speedup goal becomes optional (the deliverable is the trade-off
	// curve, not a single target), and when present it still stops the
	// search early.
	explore := !space.Objectives.Scalar()
	hasGoal := goal.LatencyReduction > 0 || goal.ThroughputGain > 0
	if err := goal.validate(); err != nil && !explore {
		return nil, err
	}
	if explore && goal.Target == "" {
		return nil, errors.New("core: what-if needs a target workload")
	}
	// Bias Formula 1 toward the constrained metric so the search climbs
	// the right hill.
	if opts.Alpha == 0 && hasGoal {
		switch {
		case goal.LatencyReduction > 0 && goal.ThroughputGain > 0:
			opts.Alpha = 0.5
		case goal.LatencyReduction > 0:
			opts.Alpha = 0.15
		default:
			opts.Alpha = 0.85
		}
	}
	if hasGoal {
		opts.StopCondition = func(lat, tput float64) bool {
			if goal.LatencyReduction > 0 && lat < goal.LatencyReduction {
				return false
			}
			if goal.ThroughputGain > 0 && tput < goal.ThroughputGain {
				return false
			}
			return true
		}
	}
	// What-if runs explore further from the commodity region.
	if opts.ManhattanLimit == 0 {
		opts.ManhattanLimit = 8
	}
	// A flat start must not trip the convergence rule before the search
	// has had a chance to find the expanded-bounds levers.
	if opts.ConvergenceWindow == 0 {
		opts.ConvergenceWindow = 12
	}

	// Throughput goals measure device *capability*: under timestamped
	// replay the throughput of an unsaturated device equals the offered
	// rate regardless of configuration, so a "3× throughput" target
	// would be unreachable by construction. Compressing the target
	// cluster's arrivals 20× saturates every candidate configuration and
	// makes the ratio meaningful (the reference is re-measured under the
	// same stress).
	if goal.ThroughputGain > 0 {
		groups := make(map[string][]trace.SourceFactory, len(v.Workloads))
		for cl, factories := range v.Workloads {
			if cl != goal.Target {
				groups[cl] = factories
				continue
			}
			compressed := make([]trace.SourceFactory, len(factories))
			for i, f := range factories {
				f := f
				compressed[i] = func() trace.Source { return trace.CompressStream(f(), 20) }
			}
			groups[cl] = compressed
		}
		stress := NewValidatorSources(v.Space, groups)
		// The rebuilt validator must inherit the original's execution and
		// resilience settings, or a stress run would silently drop back to
		// serial, un-instrumented, timeout-free measurement.
		stress.Parallel = v.Parallel
		stress.Obs = v.Obs
		stress.SimTimeout = v.SimTimeout
		stress.MaxRetries = v.MaxRetries
		v = stress
		ng, err := NewGrader(ctx, v, initial[0], g.Alpha, g.Beta)
		if err != nil {
			return nil, fmt.Errorf("core: what-if stress grader: %w", err)
		}
		g = ng
	}

	if opts.Alpha == 0 {
		opts.Alpha = g.Alpha // goal-less exploration keeps the caller's balance
	}
	grader := *g
	grader.Alpha = opts.Alpha

	// Like the full pipeline, enforce the §3.3 tuning order: in the
	// what-if space the ridge regression surfaces the flash-timing and
	// channel levers that commodity tuning holds fixed.
	if !opts.UseTuningOrder && len(initial) > 0 {
		fine, err := FinePrune(ctx, v, &grader, goal.Target, initial[0], nil,
			PruneOptions{Seed: opts.Seed, Samples: 48})
		if err == nil && len(fine.Order) > 0 {
			opts.UseTuningOrder = true
			opts.Order = fine.Order
		}
	}

	tuner, err := NewTuner(space, v, &grader, opts)
	if err != nil {
		return nil, err
	}
	tr, err := tuner.Tune(ctx, goal.Target, initial)
	if err != nil {
		return nil, fmt.Errorf("core: what-if: %w", err)
	}

	res := &WhatIfResult{TuneResult: *tr, Goal: goal, CriticalParams: map[string]float64{}}
	perfs := tr.BestPerf[goal.Target]
	res.LatencySpeedup, res.ThroughputSpeedup = clusterSpeedups(&grader, goal.Target, perfs)
	if opts.StopCondition != nil {
		res.Achieved = opts.StopCondition(res.LatencySpeedup, res.ThroughputSpeedup)
	}
	for _, name := range Table7Params {
		if val, err := space.ValueByName(tr.Best, name); err == nil {
			res.CriticalParams[name] = val
		}
	}
	return res, nil
}
