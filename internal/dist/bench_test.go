package dist

import (
	"context"
	"fmt"
	"testing"
	"time"

	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/workload"
)

// BenchmarkDistributedScaling measures one cold validation frontier
// (6 configs × 2 clusters) through loopback fleets of 1, 2 and 4
// workers. Each iteration builds a fresh fleet and validator so every
// simulation is a cache miss; the interesting number is wall time per
// frontier as workers scale.
func BenchmarkDistributedScaling(b *testing.B) {
	specs := map[string][]WorkloadSpec{}
	for _, c := range []workload.Category{workload.Database, workload.WebSearch} {
		specs[string(c)] = []WorkloadSpec{{Category: string(c), Requests: 1200, Seed: 21}}
	}
	env, err := NewEnv(ssdconf.DefaultConstraints(), false, ssd.FaultProfile{}, specs)
	if err != nil {
		b.Fatal(err)
	}
	space := env.Space()
	qd, err := space.ParamIndex("QueueDepth")
	if err != nil {
		b.Fatal(err)
	}
	ref := space.FromDevice(ssd.Intel750())
	cfgs := make([]ssdconf.Config, 6)
	for i := range cfgs {
		cfg := ref.Clone()
		cfg[qd] = i % len(space.Params[qd].Values)
		cfgs[i] = cfg
	}

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fleet, err := StartFleet(env, FleetOptions{
					Workers:        workers,
					WorkerParallel: 2,
					PollInterval:   10 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				v, err := NewValidator(env)
				if err != nil {
					b.Fatal(err)
				}
				v.Backend = fleet.Backend()
				if err := v.MeasureBatch(context.Background(), cfgs, v.Clusters()); err != nil {
					b.Fatal(err)
				}
				fleet.Close()
			}
			b.ReportMetric(float64(len(cfgs)*2*b.N)/b.Elapsed().Seconds(), "sims/s")
		})
	}
}
