package dist

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"autoblox/internal/chaos"
	"autoblox/internal/core"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/workload"
)

// TestTuneChaosEquivalence is the chaos acceptance test: a tuning run
// over a TCP fleet whose every connection drops, duplicates, reorders,
// delays, and tears frames on a seeded schedule — plus a full network
// partition window and one worker hard-killed mid-run — must still
// write a checkpoint byte-identical to the serial baseline. Recovery
// flows only through the ordinary paths (lease TTL expiry, idempotent
// result application, worker reconnect with jittered backoff), so this
// pins "chaos is invisible in the results, visible only in the lease
// churn". SSD-level fault injection stays on, so the equivalence holds
// for error results too.
func TestTuneChaosEquivalence(t *testing.T) {
	env := testEnv(t, 1500, ssd.FaultProfile{Rate: 0.02, Seed: 9},
		workload.Database, workload.WebSearch)

	tune := func(label string, parallel int, backend core.Backend) []byte {
		t.Helper()
		v, err := NewValidator(env)
		if err != nil {
			t.Fatal(err)
		}
		v.Parallel = parallel
		v.Backend = backend
		ref := v.Space.FromDevice(ssd.Intel750())
		g, err := core.NewGrader(context.Background(), v, ref, core.DefaultAlpha, core.DefaultBeta)
		if err != nil {
			t.Fatal(err)
		}
		ckpt := filepath.Join(t.TempDir(), label+".json")
		tuner, err := core.NewTuner(v.Space, v, g, core.TunerOptions{
			Seed: 5, MaxIterations: 5, SGDSteps: 3, Checkpoint: ckpt,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tuner.Tune(context.Background(), string(workload.Database), []ssdconf.Config{ref}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	serial := tune("serial", 1, nil)

	transport := chaos.NewTransport(chaos.Schedule{
		Seed:     42,
		Drop:     0.05,
		Dup:      0.05,
		Reorder:  0.05,
		Kill:     0.02,
		Delay:    0.25,
		MaxDelay: 3 * time.Millisecond,
		// One full partition: every write fails, both directions, until
		// the window closes and reconnect backoff lets workers back in.
		Partitions: []chaos.Window{{Start: 400 * time.Millisecond, End: 650 * time.Millisecond}},
	})
	fleet, err := StartFleet(env, FleetOptions{
		Listen:       "127.0.0.1:0",
		LeaseTTL:     750 * time.Millisecond, // lost grants/results recover via expiry
		PollInterval: 25 * time.Millisecond,
		Hedge:        true, // stragglers (wedged by drops) also recover via hedged leases
		WrapConn:     transport.Wrap,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	addr := fleet.Addr()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		w := &Worker{
			Name:         fmt.Sprintf("chaotic-%d", i),
			Parallel:     2,
			Dial:         transport.Dial,
			ReconnectMax: 400 * time.Millisecond,
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = w.RunReconnect(ctx, addr)
		}()
	}
	// One worker is hard-killed mid-run: no goodbye, no drain — its
	// leases must be reclaimed by TTL expiry or disconnect detection.
	doomedCtx, killDoomed := context.WithCancel(ctx)
	defer killDoomed()
	doomed := &Worker{Name: "doomed", Parallel: 2, Dial: transport.Dial,
		ReconnectMax: 400 * time.Millisecond}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = doomed.RunReconnect(doomedCtx, addr)
	}()
	killTimer := time.AfterFunc(300*time.Millisecond, killDoomed)
	defer killTimer.Stop()

	chaotic := tune("chaos", 0, fleet.Backend())

	// Workers may sit in reconnect backoff (their Closed grant can itself
	// be dropped), so shut them down explicitly before joining.
	cancel()
	wg.Wait()

	if !bytes.Equal(serial, chaotic) {
		t.Errorf("chaos is observable in checkpoint bytes (%d vs %d bytes)",
			len(chaotic), len(serial))
	}
	st := transport.Stats()
	if st.Drops+st.Kills+st.Dups+st.Reorders+st.Delays == 0 {
		t.Errorf("chaos never fired: %+v", st)
	}
	t.Logf("chaos stats: %+v; fleet counters: %+v", st, fleet.Coordinator().Counters())
	if t.Failed() {
		t.Fatalf("serial checkpoint:\n%.2000s", serial)
	}
}
