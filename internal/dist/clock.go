package dist

import "time"

// Clock abstracts wall time for the coordinator's lease machinery —
// TTL expiry, hedging thresholds, quarantine windows. Production uses
// the real clock; tests inject a fake to make every expiry edge case
// deterministic instead of sleep-calibrated.
//
// Expiry is evaluated lazily (on lease pulls and result application),
// so a fake clock needs no tick delivery: advance it, then drive the
// coordinator, and the overdue leases are reclaimed on the next pull.
type Clock interface {
	Now() time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }
