package dist

import (
	"context"
	"sync"
	"testing"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/core"
	"autoblox/internal/obs"
	"autoblox/internal/ssd"
	"autoblox/internal/workload"
)

// fakeClock is an injectable Clock advanced explicitly by the test.
// Expiry is evaluated lazily by the coordinator, so no tick delivery
// is needed: advance, then drive a lease pull.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// clockCoord builds a coordinator on a fake clock over a 1-category env.
func clockCoord(t *testing.T, clk *fakeClock, ttl time.Duration) (*Coordinator, *Env) {
	t.Helper()
	env := testEnv(t, 600, ssd.FaultProfile{}, workload.Database)
	coord := NewCoordinator(env, CoordinatorOptions{
		LeaseTTL:     ttl,
		PollInterval: time.Millisecond,
		Clock:        clk,
	})
	t.Cleanup(coord.Close)
	return coord, env
}

// measureOne starts one Measure call in the background.
func measureOne(coord *Coordinator, cfg []int) chan error {
	done := make(chan error, 1)
	go func() {
		_, err := coord.Measure(context.Background(),
			core.Job{Cfg: cfg, Name: "Database#0"})
		done <- err
	}()
	return done
}

// TestLeaseExpiresExactlyAtTTL pins the expiry boundary: a lease is
// reclaimed when now == expiry (inclusive), and survives at any instant
// strictly before it. Both sides of the boundary are exercised on the
// same frozen clock — impossible with sleep-calibrated tests.
func TestLeaseExpiresExactlyAtTTL(t *testing.T) {
	const ttl = 30 * time.Second
	clk := newFakeClock()
	coord, env := clockCoord(t, clk, ttl)

	cfgs := distinctConfigs(t, env.Space(), 1)
	done := measureOne(coord, cfgs[0])

	holder := dialFake(t, coord)
	holder.mustAccept("holder", env.SpaceSig)
	leases := holder.leaseAtLeast(1)

	// One nanosecond before the TTL: another worker's pull must find
	// nothing — the lease is still live.
	clk.Advance(ttl - time.Nanosecond)
	probe := dialFake(t, coord)
	probe.mustAccept("probe", env.SpaceSig)
	probe.send(&Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: 1}})
	if m := probe.recv(); len(m.LeaseGrant.Leases) != 0 {
		t.Fatalf("lease regranted %v before TTL", ttl-time.Nanosecond)
	}
	if got := coord.Counters().Expired; got != 0 {
		t.Fatalf("Expired = %d before the boundary, want 0", got)
	}

	// Exactly at the TTL the lease is overdue: the same pull reclaims
	// and re-grants it.
	clk.Advance(time.Nanosecond)
	regrants := probe.leaseAtLeast(1)
	if got := coord.Counters().Expired; got != 1 {
		t.Fatalf("Expired = %d at the boundary, want exactly 1", got)
	}
	if regrants[0].CfgKey != leases[0].CfgKey || regrants[0].Name != leases[0].Name {
		t.Fatalf("regrant is a different job: %+v vs %+v", regrants[0], leases[0])
	}

	// The original holder's now-stale result is still accepted — the
	// simulations are deterministic, so any worker's answer is the
	// answer; the probe's later duplicate changes nothing.
	holder.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "holder", Results: []JobResult{
		{LeaseID: leases[0].ID, CfgKey: leases[0].CfgKey, Name: leases[0].Name,
			Perf: autodb.Perf{LatencyNS: 77, ThroughputBps: 1}, SimNS: 1},
	}}})
	if err := <-done; err != nil {
		t.Fatalf("Measure after boundary expiry: %v", err)
	}
	probe.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "probe", Results: []JobResult{
		{LeaseID: regrants[0].ID, CfgKey: regrants[0].CfgKey, Name: regrants[0].Name,
			Perf: autodb.Perf{LatencyNS: 99, ThroughputBps: 1}, SimNS: 1},
	}}})
	waitFor(t, func() bool { return coord.Counters().Duplicates >= 1 },
		"loser's result counted as duplicate")
}

// TestLateResultRescuesPendingJob covers the reassignment race from
// the requeued side: the holder disconnects (its lease is dropped and
// the job returns to the pending queue), and then a result for the key
// arrives before any re-grant. The job must complete straight out of
// the pending queue — no worker ever re-runs it.
func TestLateResultRescuesPendingJob(t *testing.T) {
	const ttl = 30 * time.Second
	clk := newFakeClock()
	coord, env := clockCoord(t, clk, ttl)

	cfgs := distinctConfigs(t, env.Space(), 1)
	done := measureOne(coord, cfgs[0])

	holder := dialFake(t, coord)
	holder.mustAccept("holder", env.SpaceSig)
	leases := holder.leaseAtLeast(1)

	// Disconnect: dropSession requeues the job with no grant, leaving
	// it pending — the exact window a reassignment would race.
	holder.conn.Close()
	waitFor(t, func() bool { return coord.Counters().Expired >= 1 },
		"disconnect drops the lease")

	// The "late" result arrives on another connection (same payload a
	// flaky network could deliver out of band). Results match by key,
	// not lease, so it completes the pending job in place.
	courier := dialFake(t, coord)
	courier.mustAccept("courier", env.SpaceSig)
	courier.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "courier", Results: []JobResult{
		{LeaseID: leases[0].ID, CfgKey: leases[0].CfgKey, Name: leases[0].Name,
			Perf: autodb.Perf{LatencyNS: 55, ThroughputBps: 1}, SimNS: 1},
	}}})
	if err := <-done; err != nil {
		t.Fatalf("Measure: %v", err)
	}

	// The queue must now be empty: no re-grant, no re-run.
	probe := dialFake(t, coord)
	probe.mustAccept("probe", env.SpaceSig)
	probe.send(&Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: 1}})
	if m := probe.recv(); len(m.LeaseGrant.Leases) != 0 {
		t.Fatalf("rescued job regranted: %+v", m.LeaseGrant.Leases)
	}
	if got := coord.Counters().Reassigned; got != 0 {
		t.Fatalf("Reassigned = %d, want 0 (result beat the re-grant)", got)
	}
}

// TestLateResultCompletesPendingJob: the clock is past the TTL but no
// lease pull has run, so the job is overdue yet still leased. The
// holder's result must win the race against lazy expiry — applyResults
// completes the job and the expiry path never fires.
func TestLateResultCompletesPendingJob(t *testing.T) {
	const ttl = 30 * time.Second
	clk := newFakeClock()
	coord, env := clockCoord(t, clk, ttl)

	cfgs := distinctConfigs(t, env.Space(), 1)
	done := measureOne(coord, cfgs[0])

	holder := dialFake(t, coord)
	holder.mustAccept("holder", env.SpaceSig)
	leases := holder.leaseAtLeast(1)

	// Advance past the TTL; no lease pull happens yet, so the job is
	// overdue but still marked leased. The holder's late result lands
	// first: applyResults releases the overdue lease and completes the
	// job — the expiry path never fires.
	clk.Advance(ttl + time.Second)
	holder.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "holder", Results: []JobResult{
		{LeaseID: leases[0].ID, CfgKey: leases[0].CfgKey, Name: leases[0].Name,
			Perf: autodb.Perf{LatencyNS: 55, ThroughputBps: 1}, SimNS: 1},
	}}})
	if err := <-done; err != nil {
		t.Fatalf("Measure: %v", err)
	}

	// A probe pull after completion must find nothing to do and no
	// lease left to expire.
	probe := dialFake(t, coord)
	probe.mustAccept("probe", env.SpaceSig)
	probe.send(&Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: 1}})
	if m := probe.recv(); len(m.LeaseGrant.Leases) != 0 {
		t.Fatalf("completed job regranted: %+v", m.LeaseGrant.Leases)
	}
	if fc := coord.Counters(); fc.Expired != 0 || fc.Reassigned != 0 {
		t.Fatalf("late-but-first result should pre-empt expiry: %+v", fc)
	}
}

// TestDoubleExpiryAttribution pins warn-flaky-job accounting under a
// fake clock: the same job expiring under two different holders fires
// the warning exactly at the second full expiry, attributed to the
// second holder, with per-worker expiry tallies intact.
func TestDoubleExpiryAttribution(t *testing.T) {
	rec := obs.NewFlightRecorder(256)
	obs.SetFlightRecorder(rec)
	defer obs.SetFlightRecorder(nil)

	const ttl = 30 * time.Second
	clk := newFakeClock()
	coord, env := clockCoord(t, clk, ttl)

	cfgs := distinctConfigs(t, env.Space(), 1)
	done := measureOne(coord, cfgs[0])

	first := dialFake(t, coord)
	first.mustAccept("first", env.SpaceSig)
	first.leaseAtLeast(1)

	clk.Advance(ttl)
	second := dialFake(t, coord)
	second.mustAccept("second", env.SpaceSig)
	regrant := second.leaseAtLeast(1) // expires first's lease, takes the job

	clk.Advance(ttl)
	third := dialFake(t, coord)
	third.mustAccept("third", env.SpaceSig)
	final := third.leaseAtLeast(1) // second full expiry → warning

	var warn *obs.FlightEvent
	for _, ev := range rec.Events() {
		if ev.Kind == "warn-flaky-job" {
			ev := ev
			warn = &ev
		}
	}
	if warn == nil {
		t.Fatalf("no warn-flaky-job after second expiry; events %+v", rec.Events())
	}
	attrs := map[string]string{}
	for _, kv := range warn.Fields {
		attrs[kv.Key] = kv.Value
	}
	if attrs["worker"] != "second" {
		t.Fatalf("warning attributed to %q, want the second holder; attrs %v", attrs["worker"], attrs)
	}
	if attrs["expiries"] != "2" {
		t.Fatalf("warning expiries = %q, want 2", attrs["expiries"])
	}

	st := coord.StatusSnapshot()
	tallies := map[string]WorkerStatus{}
	for _, w := range st.Workers {
		tallies[w.Name] = w
	}
	if tallies["first"].LeasesExpired != 1 || tallies["second"].LeasesExpired != 1 {
		t.Fatalf("expiry attribution wrong: first=%d second=%d, want 1 each",
			tallies["first"].LeasesExpired, tallies["second"].LeasesExpired)
	}

	third.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "third", Results: []JobResult{
		{LeaseID: final[0].ID, CfgKey: final[0].CfgKey, Name: final[0].Name,
			Perf: autodb.Perf{LatencyNS: 11, ThroughputBps: 1}, SimNS: 1},
	}}})
	if err := <-done; err != nil {
		t.Fatalf("Measure after double expiry: %v", err)
	}
	_ = regrant
}
