package dist

import (
	"bufio"
	"context"
	"fmt"
	"hash/fnv"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/core"
	"autoblox/internal/obs"
	"autoblox/internal/ssdconf"
)

// Fleet metric names, recorded when the coordinator has a registry.
const (
	MetricLeasesGranted       = "dist_leases_granted_total"
	MetricLeasesExpired       = "dist_leases_expired_total"
	MetricLeasesReassigned    = "dist_leases_reassigned_total"
	MetricResultsDup          = "dist_results_duplicate_total"
	MetricHandshakeRejects    = "dist_handshake_rejects_total"
	MetricStatsPushes         = "dist_stats_pushes_total"
	MetricWorkersConnected    = "dist_workers_connected"
	MetricHedgedLeases        = "dist_hedged_leases_total"
	MetricWorkersQuarantined  = "dist_workers_quarantined"
	MetricCrossChecked        = "dist_results_crosschecked_total"
	MetricCrossCheckDivergent = "dist_results_crosschecked_divergent_total"
)

// MetricWorkerBusy names a fleet worker's per-batch busy-time histogram
// ("dist_worker_busy_ns{worker=\"name\"}").
func MetricWorkerBusy(worker string) string {
	return fmt.Sprintf(`dist_worker_busy_ns{worker=%q}`, worker)
}

// CoordinatorOptions tunes the lease machinery.
type CoordinatorOptions struct {
	// LeaseTTL is how long a worker may hold a lease before the job is
	// reassigned (default 30s).
	LeaseTTL time.Duration
	// PollInterval bounds how long an idle LeaseReq blocks before an
	// empty grant tells the worker to ask again (default 250ms). It is
	// also the granularity at which expired leases are detected.
	PollInterval time.Duration
	// BatchMax caps leases per grant (default 16).
	BatchMax int
	// Obs, when set, receives fleet counters and per-worker busy
	// histograms. Never influences results.
	Obs *obs.Registry
	// Clock, when set, replaces the wall clock for all lease
	// bookkeeping (TTL expiry, hedging age, quarantine windows) —
	// tests inject a fake to pin expiry edge cases deterministically.
	Clock Clock

	// Hedge enables hedged re-leases: a job whose oldest active lease
	// has aged past a completion-latency quantile is granted to a
	// second worker too; the first valid result wins (results apply
	// idempotently, so the loser is just a duplicate).
	Hedge bool
	// HedgeAfter, when positive, is a fixed straggler age threshold.
	// When zero, the threshold is the HedgeQuantile of observed
	// completion latencies (needing HedgeMinSamples completions first).
	HedgeAfter time.Duration
	// HedgeQuantile picks the completion-latency quantile used as the
	// straggler threshold (default 0.95).
	HedgeQuantile float64
	// HedgeMinSamples is how many completions must be observed before
	// quantile-based hedging kicks in (default 8).
	HedgeMinSamples int
	// HedgeMax caps concurrent leases per job, primary included
	// (default 2).
	HedgeMax int

	// Quarantine enables per-worker health scoring: errors, timeouts,
	// and lease expiries feed a failure EWMA; a worker crossing
	// QuarantineThreshold is refused leases for QuarantineDuration
	// (doubling per re-offense), then re-admitted on probation —
	// single-lease grants until ProbationSuccesses clean results.
	Quarantine bool
	// QuarantineThreshold is the failure-EWMA score that triggers
	// quarantine (default 0.7).
	QuarantineThreshold float64
	// QuarantineMinEvents is the minimum number of health events
	// before a worker may be quarantined (default 4).
	QuarantineMinEvents int
	// QuarantineDuration is the first quarantine's length (default
	// 30s); each subsequent quarantine doubles it.
	QuarantineDuration time.Duration
	// ProbationSuccesses is how many clean results end probation
	// (default 3).
	ProbationSuccesses int

	// CrossCheck is the fraction of successful remote results that are
	// re-simulated locally before being released to waiters (0 = off,
	// 1 = every result). The sample is seeded per key, so whether a
	// key is checked is deterministic. A worker whose result diverges
	// from the local re-simulation is marked byzantine — permanently
	// quarantined, its unverified results requeued.
	CrossCheck float64
	// CrossCheckSeed keys the sampling hash.
	CrossCheckSeed int64
}

func (o CoordinatorOptions) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return 30 * time.Second
}

func (o CoordinatorOptions) pollInterval() time.Duration {
	if o.PollInterval > 0 {
		return o.PollInterval
	}
	return 250 * time.Millisecond
}

func (o CoordinatorOptions) batchMax() int {
	if o.BatchMax > 0 {
		return o.BatchMax
	}
	return 16
}

func (o CoordinatorOptions) hedgeQuantile() float64 {
	if o.HedgeQuantile > 0 {
		return o.HedgeQuantile
	}
	return 0.95
}

func (o CoordinatorOptions) hedgeMinSamples() int {
	if o.HedgeMinSamples > 0 {
		return o.HedgeMinSamples
	}
	return 8
}

func (o CoordinatorOptions) hedgeMax() int {
	if o.HedgeMax > 1 {
		return o.HedgeMax
	}
	return 2
}

func (o CoordinatorOptions) quarantineThreshold() float64 {
	if o.QuarantineThreshold > 0 {
		return o.QuarantineThreshold
	}
	return 0.7
}

func (o CoordinatorOptions) quarantineMinEvents() int {
	if o.QuarantineMinEvents > 0 {
		return o.QuarantineMinEvents
	}
	return 4
}

func (o CoordinatorOptions) quarantineDuration() time.Duration {
	if o.QuarantineDuration > 0 {
		return o.QuarantineDuration
	}
	return 30 * time.Second
}

func (o CoordinatorOptions) probationSuccesses() int {
	if o.ProbationSuccesses > 0 {
		return o.ProbationSuccesses
	}
	return 3
}

// FleetCounters is a point-in-time snapshot of the coordinator's
// always-on counters (kept regardless of Obs).
type FleetCounters struct {
	Granted          int64
	Expired          int64
	Reassigned       int64
	Duplicates       int64
	HandshakeRejects int64
	StatsPushes      int64
	Hedged           int64
	Quarantines      int64
	CrossChecked     int64
	Divergent        int64
}

type jobState uint8

const (
	jobPending jobState = iota
	jobLeased
	jobVerifying // result held back pending local cross-validation
	jobDone
)

// leaseInfo is one active lease binding a job to a session. A job may
// hold several concurrently (hedging); the first applied result
// releases them all.
type leaseInfo struct {
	job    *distJob
	sess   *session
	expiry time.Time
	hedged bool
}

// distJob is one measurement key moving through the lease state
// machine.
type distJob struct {
	key        simKey
	cfg        ssdconf.Config
	submitted  time.Time
	state      jobState
	leases     map[uint64]*leaseInfo // active leases (state == jobLeased)
	firstGrant time.Time             // oldest active lease's grant time (hedging age)
	grants     int                   // total leases issued for this job
	expiries   int                   // times the job fully returned to pending via expiry
	waited     bool
	queueWait  time.Duration // submit → first grant

	// Cross-validation holds the remote result here while a local
	// re-simulation adjudicates it (state == jobVerifying).
	verifyWorker string
	verifyPerf   autodb.Perf

	done chan struct{}
	perf autodb.Perf
	err  error
}

// simKey mirrors the validator's struct cache key.
type simKey struct {
	cfg  string
	name string
}

// session is one connected worker's lease bookkeeping, plus the
// clock-offset estimate taken during its handshake.
type session struct {
	name   string
	leases map[uint64]*leaseInfo
	lane   int64 // trace lane for this worker's replayed spans
	// offsetNS estimates workerClock − coordClock; subtracting it from a
	// worker timestamp lands it on the coordinator's clock. rttNS is the
	// handshake round trip the estimate derived from (its error bound).
	offsetNS int64
	rttNS    int64
}

// workerTally accumulates one worker's fleet statistics. Tallies are
// keyed by worker name and survive reconnects.
type workerTally struct {
	jobs       int64
	busyNS     int64
	expired    int64
	reassigned int64
	sessions   int      // currently connected session count
	cur        *session // most recent connected session (nil when none)
	lastSeen   time.Time

	// Health scoring: EWMA of the failure indicator (1 = error /
	// timeout / expiry, 0 = clean result) over healthEvents samples.
	health        float64
	healthEvents  int64
	quarantined   bool
	quarUntil     time.Time
	quarCount     int64 // quarantines served (doubles the next duration)
	probation     bool
	probationLeft int
	byzantine     bool
	crosschecked  int64
	divergent     int64
}

// RemoteError is a worker-side measurement failure relayed through the
// coordinator.
type RemoteError struct {
	Worker string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("dist: worker %s: %s", e.Worker, e.Msg)
}

// completionWindow is the bounded sample of recent completion
// latencies feeding the hedging quantile.
const completionWindow = 64

// Coordinator owns the distributed measurement queue and implements
// core.Backend: Measure enqueues a key and blocks until some worker
// returns its result. Deduplication generalizes the validator's
// singleflight across the fleet — one lease chain per distinct key, TTL
// expiry and worker death both return the job to the queue, and results
// apply idempotently (deterministic sims make any worker's result THE
// result for the key).
type Coordinator struct {
	env  *Env
	opts CoordinatorOptions

	counters                                                       core.BackendCounters
	granted, expired, reassigned, duplicates, rejects, statsPushes atomic.Int64
	hedged, quarantines, crosschecked, divergent                   atomic.Int64

	// traceID names this coordinator's tracing session; leases carry it
	// so worker-side trace events correlate back to this tune.
	traceID string

	// verifyCtx cancels in-flight cross-check simulations on Close.
	verifyCtx    context.Context
	verifyCancel context.CancelFunc
	verifyWG     sync.WaitGroup
	verifyOnce   sync.Once

	mu          sync.Mutex
	cond        *sync.Cond
	closed      bool
	nextLease   uint64
	nextLane    int64
	pending     []*distJob
	leased      map[uint64]*leaseInfo
	byKey       map[simKey]*distJob
	tallies     map[string]*workerTally
	verifyQ     []*distJob
	completions [completionWindow]time.Duration
	compN       int
	quarActive  int // currently quarantined workers (gauge)
	crossV      *core.Validator
	crossVErr   error
}

// NewCoordinator builds a coordinator over a fingerprinted env.
func NewCoordinator(env *Env, opts CoordinatorOptions) *Coordinator {
	c := &Coordinator{
		env:     env,
		opts:    opts,
		leased:  make(map[uint64]*leaseInfo),
		byKey:   make(map[simKey]*distJob),
		tallies: make(map[string]*workerTally),
		traceID: obs.TraceID(),
	}
	c.cond = sync.NewCond(&c.mu)
	c.verifyCtx, c.verifyCancel = context.WithCancel(context.Background())
	return c
}

// now reads the injected clock (wall clock by default).
func (c *Coordinator) now() time.Time {
	if c.opts.Clock != nil {
		return c.opts.Clock.Now()
	}
	return time.Now()
}

// Env returns the coordinator's environment.
func (c *Coordinator) Env() *Env { return c.env }

// Counters snapshots the fleet counters.
func (c *Coordinator) Counters() FleetCounters {
	return FleetCounters{
		Granted:          c.granted.Load(),
		Expired:          c.expired.Load(),
		Reassigned:       c.reassigned.Load(),
		Duplicates:       c.duplicates.Load(),
		HandshakeRejects: c.rejects.Load(),
		StatsPushes:      c.statsPushes.Load(),
		Hedged:           c.hedged.Load(),
		Quarantines:      c.quarantines.Load(),
		CrossChecked:     c.crosschecked.Load(),
		Divergent:        c.divergent.Load(),
	}
}

// Stats implements core.Backend: QueueWait is submit-to-first-lease,
// SimBusy the worker-reported per-job time, plus fleet lease churn and
// a per-worker decomposition.
func (c *Coordinator) Stats() core.BackendStats {
	s := c.counters.Snapshot(core.BackendKindDist)
	s.LeasesExpired = c.expired.Load()
	s.LeasesReassigned = c.reassigned.Load()
	c.mu.Lock()
	names := make([]string, 0, len(c.tallies))
	for name := range c.tallies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := c.tallies[name]
		s.Workers = append(s.Workers, core.WorkerBackendStats{
			Name:             name,
			Connected:        t.sessions > 0,
			Jobs:             t.jobs,
			BusyNS:           t.busyNS,
			LeasesExpired:    t.expired,
			LeasesReassigned: t.reassigned,
		})
	}
	c.mu.Unlock()
	return s
}

// WorkerStatus is one worker's row in the fleet status view.
type WorkerStatus struct {
	Name             string  `json:"name"`
	Connected        bool    `json:"connected"`
	Jobs             int64   `json:"jobs"`
	BusyNS           int64   `json:"busy_ns"`
	LeasesHeld       int     `json:"leases_held"`
	LeasesExpired    int64   `json:"leases_expired"`
	LeasesReassigned int64   `json:"leases_reassigned"`
	Health           float64 `json:"health,omitempty"` // failure EWMA, 0 = clean
	Quarantined      bool    `json:"quarantined,omitempty"`
	Byzantine        bool    `json:"byzantine,omitempty"`
	ClockOffsetNS    int64   `json:"clock_offset_ns"`
	RTTNS            int64   `json:"rtt_ns"`
	LastSeen         string  `json:"last_seen,omitempty"`
}

// FleetStatus is the coordinator's /statusz document: queue depths,
// lease churn, and per-worker rows.
type FleetStatus struct {
	Closed           bool           `json:"closed"`
	Pending          int            `json:"pending"`
	Leased           int            `json:"leased"`
	LeasesGranted    int64          `json:"leases_granted"`
	LeasesExpired    int64          `json:"leases_expired"`
	LeasesReassigned int64          `json:"leases_reassigned"`
	DuplicateResults int64          `json:"duplicate_results"`
	HandshakeRejects int64          `json:"handshake_rejects"`
	StatsPushes      int64          `json:"stats_pushes"`
	HedgedLeases     int64          `json:"hedged_leases,omitempty"`
	CrossChecked     int64          `json:"results_crosschecked,omitempty"`
	Divergent        int64          `json:"results_divergent,omitempty"`
	Workers          []WorkerStatus `json:"workers,omitempty"`
}

// StatusSnapshot captures the live fleet view served at /statusz.
func (c *Coordinator) StatusSnapshot() FleetStatus {
	st := FleetStatus{
		LeasesGranted:    c.granted.Load(),
		LeasesExpired:    c.expired.Load(),
		LeasesReassigned: c.reassigned.Load(),
		DuplicateResults: c.duplicates.Load(),
		HandshakeRejects: c.rejects.Load(),
		StatsPushes:      c.statsPushes.Load(),
		HedgedLeases:     c.hedged.Load(),
		CrossChecked:     c.crosschecked.Load(),
		Divergent:        c.divergent.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st.Closed = c.closed
	st.Pending = len(c.pending)
	st.Leased = len(c.leased)
	held := map[string]int{}
	for _, li := range c.leased {
		held[li.sess.name]++
	}
	names := make([]string, 0, len(c.tallies))
	for name := range c.tallies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := c.tallies[name]
		row := WorkerStatus{
			Name:             name,
			Connected:        t.sessions > 0,
			Jobs:             t.jobs,
			BusyNS:           t.busyNS,
			LeasesHeld:       held[name],
			LeasesExpired:    t.expired,
			LeasesReassigned: t.reassigned,
			Health:           t.health,
			Quarantined:      t.quarantined,
			Byzantine:        t.byzantine,
		}
		if t.cur != nil {
			row.ClockOffsetNS = t.cur.offsetNS
			row.RTTNS = t.cur.rttNS
		}
		if !t.lastSeen.IsZero() {
			row.LastSeen = t.lastSeen.UTC().Format(time.RFC3339Nano)
		}
		st.Workers = append(st.Workers, row)
	}
	return st
}

// tallyLocked returns (creating if needed) a worker's tally; c.mu held.
func (c *Coordinator) tallyLocked(name string) *workerTally {
	t, ok := c.tallies[name]
	if !ok {
		t = &workerTally{}
		c.tallies[name] = t
	}
	return t
}

// healthEventLocked folds one success/failure sample into a worker's
// EWMA and applies the quarantine state machine; c.mu held.
func (c *Coordinator) healthEventLocked(name string, fail bool, now time.Time) {
	if !c.opts.Quarantine {
		return
	}
	t := c.tallyLocked(name)
	if t.byzantine {
		return
	}
	const alpha = 0.25
	x := 0.0
	if fail {
		x = 1
	}
	t.health = (1-alpha)*t.health + alpha*x
	t.healthEvents++
	if !fail && t.probation {
		t.probationLeft--
		if t.probationLeft <= 0 {
			t.probation = false
			obs.RecordEvent("worker-probation-cleared", "worker", name)
		}
		return
	}
	if !fail || t.quarantined {
		return
	}
	// A failure during probation re-quarantines immediately; otherwise
	// the EWMA must cross the threshold with enough samples behind it.
	if t.probation || (t.healthEvents >= int64(c.opts.quarantineMinEvents()) && t.health >= c.opts.quarantineThreshold()) {
		c.quarantineLocked(name, t, now, "health")
	}
}

// quarantineLocked places a worker in quarantine; c.mu held.
func (c *Coordinator) quarantineLocked(name string, t *workerTally, now time.Time, reason string) {
	t.quarCount++
	dur := c.opts.quarantineDuration()
	for i := int64(1); i < t.quarCount && i < 6; i++ {
		dur *= 2
	}
	t.quarantined = true
	t.probation = false
	t.quarUntil = now.Add(dur)
	c.quarActive++
	c.quarantines.Add(1)
	c.setQuarGaugeLocked()
	obs.RecordEvent("worker-quarantined", "worker", name,
		"reason", reason, "health", fmt.Sprintf("%.2f", t.health), "duration", dur.String())
}

// readmitLocked ends a quarantine into probation; c.mu held.
func (c *Coordinator) readmitLocked(name string, t *workerTally) {
	t.quarantined = false
	t.probation = true
	t.probationLeft = c.opts.probationSuccesses()
	t.health = 0
	t.healthEvents = 0
	c.quarActive--
	c.setQuarGaugeLocked()
	obs.RecordEvent("worker-readmitted", "worker", name,
		"probation_successes", strconv.Itoa(t.probationLeft))
}

// markByzantineLocked permanently quarantines a worker whose result
// diverged from a local re-simulation, requeueing every lease it holds
// and every unverified result attributed to it; c.mu held.
func (c *Coordinator) markByzantineLocked(name string, now time.Time) {
	t := c.tallyLocked(name)
	if t.byzantine {
		return
	}
	t.byzantine = true
	if !t.quarantined {
		t.quarantined = true
		c.quarActive++
		c.quarantines.Add(1)
		c.setQuarGaugeLocked()
	}
	t.quarUntil = now.Add(1000000 * time.Hour) // permanent
	obs.RecordEvent("worker-byzantine", "worker", name)
	for id, li := range c.leased {
		if li.sess.name != name {
			continue
		}
		c.releaseLeaseLocked(id, li)
		if li.job.state == jobLeased && len(li.job.leases) == 0 {
			li.job.state = jobPending
			c.pending = append(c.pending, li.job)
		}
	}
	for _, j := range c.byKey {
		if j.state == jobVerifying && j.verifyWorker == name {
			j.state = jobPending
			c.pending = append(c.pending, j)
		}
	}
	c.cond.Broadcast()
}

// setQuarGaugeLocked publishes the quarantined-worker count; c.mu held.
func (c *Coordinator) setQuarGaugeLocked() {
	if r := c.opts.Obs; r != nil {
		r.Gauge(MetricWorkersQuarantined).Set(float64(c.quarActive))
	}
}

// releaseLeaseLocked removes one lease from all three indexes (global,
// session, job); c.mu held.
func (c *Coordinator) releaseLeaseLocked(id uint64, li *leaseInfo) {
	delete(c.leased, id)
	delete(li.sess.leases, id)
	delete(li.job.leases, id)
}

// Measure implements core.Backend: enqueue the job (deduplicated by
// key) and wait for a worker's result.
func (c *Coordinator) Measure(ctx context.Context, job core.Job) (autodb.Perf, error) {
	j, err := c.submit(job)
	if err != nil {
		return autodb.Perf{}, err
	}
	select {
	case <-j.done:
		return j.perf, j.err
	case <-ctx.Done():
		return autodb.Perf{}, ctx.Err()
	}
}

// submit enqueues a job, returning the existing entry when the key is
// already pending, leased, or done.
func (c *Coordinator) submit(job core.Job) (*distJob, error) {
	k := simKey{cfg: job.Cfg.Key(), name: job.Name}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if j, ok := c.byKey[k]; ok {
		return j, nil
	}
	j := &distJob{
		key:       k,
		cfg:       job.Cfg.Clone(),
		submitted: c.now(),
		leases:    make(map[uint64]*leaseInfo),
		done:      make(chan struct{}),
	}
	c.byKey[k] = j
	c.pending = append(c.pending, j)
	c.cond.Broadcast()
	return j, nil
}

// Close shuts the queue down: every unfinished job fails with
// ErrClosed, idle lease polls return Closed grants, and connected
// workers exit on their next pull.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, j := range c.byKey {
		if j.state != jobDone {
			j.state = jobDone
			j.err = ErrClosed
			close(j.done)
		}
	}
	c.pending = nil
	c.leased = make(map[uint64]*leaseInfo)
	c.verifyQ = nil
	c.cond.Broadcast()
	c.mu.Unlock()
	c.verifyCancel()
	c.verifyWG.Wait()
}

// isClosed reports whether Close has run.
func (c *Coordinator) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// expireLocked returns every overdue lease to the pending queue,
// attributing the expiry to the worker that held it. A hedged job
// only requeues once its last active lease is gone. A job fully
// expiring for the second time records a "warn-flaky-job" flight
// event — two workers (or the same worker twice) sat on the same
// deterministic job, which usually means a wedged or overloaded
// worker, not a bad job.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, li := range c.leased {
		if now.Before(li.expiry) {
			continue
		}
		j := li.job
		owner := li.sess.name
		c.releaseLeaseLocked(id, li)
		c.tallyLocked(owner).expired++
		c.healthEventLocked(owner, true, now)
		c.expired.Add(1)
		c.obsInc(MetricLeasesExpired)
		obs.RecordEvent("lease-expired",
			"lease", fmt.Sprint(id), "worker", owner, "trace", j.key.name, "expiries", fmt.Sprint(j.expiries))
		if j.state == jobLeased && len(j.leases) == 0 {
			j.state = jobPending
			j.expiries++
			c.pending = append(c.pending, j)
			if j.expiries == 2 {
				obs.RecordEvent("warn-flaky-job",
					"trace", j.key.name, "cfg", j.key.cfg, "worker", owner, "expiries", "2")
			}
		}
	}
}

// dropSession expires a disconnected worker's leases immediately.
func (c *Coordinator) dropSession(sess *session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	for id, li := range sess.leases {
		j := li.job
		c.releaseLeaseLocked(id, li)
		c.expired.Add(1)
		c.obsInc(MetricLeasesExpired)
		c.tallyLocked(sess.name).expired++
		c.healthEventLocked(sess.name, true, now)
		obs.RecordEvent("lease-expired",
			"lease", fmt.Sprint(id), "worker", sess.name, "trace", j.key.name, "reason", "disconnect")
		if j.state == jobLeased && len(j.leases) == 0 {
			j.state = jobPending
			j.expiries++
			c.pending = append(c.pending, j)
		}
	}
	sess.leases = make(map[uint64]*leaseInfo)
	t := c.tallyLocked(sess.name)
	t.sessions--
	if t.cur == sess {
		t.cur = nil
	}
	t.lastSeen = now
	if r := c.opts.Obs; r != nil {
		r.Gauge(MetricWorkersConnected).Add(-1)
	}
	obs.RecordEvent("worker-disconnected", "worker", sess.name)
	c.cond.Broadcast()
}

// grantLocked issues one lease of j to sess; c.mu held.
func (c *Coordinator) grantLocked(j *distJob, sess *session, now time.Time, hedged bool) Lease {
	c.nextLease++
	li := &leaseInfo{job: j, sess: sess, expiry: now.Add(c.opts.leaseTTL()), hedged: hedged}
	if len(j.leases) == 0 {
		j.firstGrant = now
	}
	if !j.waited {
		j.waited = true
		j.queueWait = now.Sub(j.submitted)
	}
	if j.grants > 0 && !hedged {
		c.reassigned.Add(1)
		c.obsInc(MetricLeasesReassigned)
		c.tallyLocked(sess.name).reassigned++
		obs.RecordEvent("lease-reassigned",
			"lease", fmt.Sprint(c.nextLease), "worker", sess.name, "trace", j.key.name, "grants", fmt.Sprint(j.grants+1))
	}
	j.grants++
	j.state = jobLeased
	c.leased[c.nextLease] = li
	sess.leases[c.nextLease] = li
	j.leases[c.nextLease] = li
	return Lease{
		ID:      c.nextLease,
		CfgKey:  j.key.cfg,
		Cfg:     []int(j.cfg),
		Name:    j.key.name,
		TraceID: c.traceID,
	}
}

// hedgeThresholdLocked resolves the straggler age past which a leased
// job is eligible for a duplicate grant; 0 disables hedging for now.
// c.mu held.
func (c *Coordinator) hedgeThresholdLocked() time.Duration {
	if c.opts.HedgeAfter > 0 {
		return c.opts.HedgeAfter
	}
	n := c.compN
	if n > completionWindow {
		n = completionWindow
	}
	if n < c.opts.hedgeMinSamples() {
		return 0
	}
	buf := make([]time.Duration, n)
	copy(buf, c.completions[:n])
	sort.Slice(buf, func(i, j int) bool { return buf[i] < buf[j] })
	th := buf[int(c.opts.hedgeQuantile()*float64(n-1))]
	if pi := c.opts.pollInterval(); th < pi {
		th = pi
	}
	return th
}

// hedgeLocked issues duplicate leases for straggler jobs to sess, up
// to the remaining grant capacity; c.mu held.
func (c *Coordinator) hedgeLocked(sess *session, now time.Time, room int) []Lease {
	if !c.opts.Hedge || room <= 0 {
		return nil
	}
	th := c.hedgeThresholdLocked()
	if th <= 0 {
		return nil
	}
	seen := make(map[*distJob]bool)
	var out []Lease
	for _, li := range c.leased {
		j := li.job
		if seen[j] || j.state != jobLeased || len(j.leases) >= c.opts.hedgeMax() {
			continue
		}
		seen[j] = true
		if now.Sub(j.firstGrant) < th {
			continue
		}
		// Don't hedge to a worker already holding this job.
		holds := false
		for _, other := range j.leases {
			if other.sess == sess {
				holds = true
				break
			}
		}
		if holds {
			continue
		}
		l := c.grantLocked(j, sess, now, true)
		c.hedged.Add(1)
		c.obsInc(MetricHedgedLeases)
		obs.RecordEvent("lease-hedged",
			"lease", fmt.Sprint(l.ID), "worker", sess.name, "trace", j.key.name,
			"age", now.Sub(j.firstGrant).String(), "threshold", th.String())
		out = append(out, l)
		if len(out) >= room {
			break
		}
	}
	return out
}

// lease blocks up to PollInterval for work, then answers. closed=true
// tells the worker to exit.
func (c *Coordinator) lease(sess *session, max int) (leases []Lease, closed bool) {
	if max <= 0 {
		max = 1
	}
	if bm := c.opts.batchMax(); max > bm {
		max = bm
	}
	// The poll deadline is transport liveness (how long a worker's
	// request may block), not lease semantics — it stays on the wall
	// clock so that a frozen fake Clock still gets empty grants back.
	deadline := time.Now().Add(c.opts.pollInterval())
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		now := c.now()
		c.expireLocked(now)
		if c.closed {
			return nil, true
		}
		eligible := true
		limit := max
		if c.opts.Quarantine {
			t := c.tallyLocked(sess.name)
			if t.quarantined {
				if t.byzantine || now.Before(t.quarUntil) {
					eligible = false
				} else {
					c.readmitLocked(sess.name, t)
				}
			}
			if eligible && t.probation {
				limit = 1
			}
		}
		if eligible && len(c.pending) > 0 {
			n := limit
			if n > len(c.pending) {
				n = len(c.pending)
			}
			leases = make([]Lease, 0, n)
			for _, j := range c.pending[:n] {
				leases = append(leases, c.grantLocked(j, sess, now, false))
			}
			c.pending = c.pending[n:]
			c.granted.Add(int64(len(leases)))
			c.obsAdd(MetricLeasesGranted, int64(len(leases)))
			return leases, false
		}
		if eligible {
			if hl := c.hedgeLocked(sess, now, limit); len(hl) > 0 {
				c.granted.Add(int64(len(hl)))
				c.obsAdd(MetricLeasesGranted, int64(len(hl)))
				return hl, false
			}
		}
		wall := time.Now()
		if !wall.Before(deadline) {
			return nil, false
		}
		// cond has no deadline wait; arm a broadcast at the poll boundary
		// so this wakes for new work, shutdown, or timeout alike.
		t := time.AfterFunc(deadline.Sub(wall), c.cond.Broadcast)
		c.cond.Wait()
		t.Stop()
	}
}

// pickCrossCheck reports whether a key falls in the seeded
// cross-validation sample — a pure function of (seed, key), so the
// same key is either always or never checked within a run.
func (c *Coordinator) pickCrossCheck(k simKey) bool {
	if c.opts.CrossCheck <= 0 {
		return false
	}
	if c.opts.CrossCheck >= 1 {
		return true
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", c.opts.CrossCheckSeed, k.cfg, k.name)
	z := h.Sum64()
	// splitmix64 finalizer whitens the fnv hash into a uniform draw.
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11)/(1<<53) < c.opts.CrossCheck
}

// completeLocked finishes a job and wakes its waiters; c.mu held.
func (c *Coordinator) completeLocked(j *distJob, perf autodb.Perf, err error) {
	if j.state == jobDone {
		return
	}
	j.state = jobDone
	if err != nil {
		j.err = err
		// Errors are not cached validator-side either; forget the key so
		// a later submit may retry.
		delete(c.byKey, j.key)
	} else {
		j.perf = perf
	}
	close(j.done)
}

// applyResults folds a worker's result batch into the job table,
// idempotently: a result for an unknown or already-done key counts as a
// duplicate and changes nothing; a result from an expired (reassigned)
// lease is accepted — the sims are deterministic, so any worker's result
// for the key is the result. Results from a byzantine worker are
// dropped wholesale. When cross-validation samples a result, the job
// parks in a verifying state — waiters are not released until a local
// re-simulation agrees. When the coordinator traces, each accepted
// result is also replayed as a span pair on the coordinator's own
// timeline: a "lease" span covering submit→done (queue wait included)
// and a "worker-sim" span at the worker's reported start, shifted onto
// the coordinator's clock by the session's handshake offset estimate.
func (c *Coordinator) applyResults(sess *session, msg *ResultMsg) {
	type replay struct {
		r         JobResult
		submitted time.Time
		done      time.Time
	}
	var replays []replay
	verify := false
	c.mu.Lock()
	t := c.tallyLocked(msg.Worker)
	t.jobs += int64(len(msg.Results))
	t.busyNS += msg.BusyNS
	t.lastSeen = c.now()
	byzantine := t.byzantine
	for _, r := range msg.Results {
		if byzantine {
			c.duplicates.Add(1)
			c.obsInc(MetricResultsDup)
			continue
		}
		k := simKey{cfg: r.CfgKey, name: r.Name}
		j, ok := c.byKey[k]
		if !ok || j.state == jobDone || j.state == jobVerifying {
			c.duplicates.Add(1)
			c.obsInc(MetricResultsDup)
			continue
		}
		now := c.now()
		replays = append(replays, replay{r: r, submitted: j.submitted, done: now})
		switch j.state {
		case jobLeased:
			if r.Err == "" {
				c.recordCompletionLocked(now.Sub(j.firstGrant))
			}
			for id, li := range j.leases {
				c.releaseLeaseLocked(id, li)
			}
		case jobPending:
			// Reassignment raced the late result: pull the job back out of
			// the queue before some worker re-runs it.
			for i, p := range c.pending {
				if p == j {
					c.pending = append(c.pending[:i], c.pending[i+1:]...)
					break
				}
			}
		}
		c.healthEventLocked(msg.Worker, r.Err != "", now)
		c.counters.Record(j.queueWait, time.Duration(r.SimNS))
		if r.Err != "" {
			c.completeLocked(j, autodb.Perf{}, &RemoteError{Worker: msg.Worker, Msg: r.Err})
			continue
		}
		if c.pickCrossCheck(k) {
			j.state = jobVerifying
			j.verifyWorker = msg.Worker
			j.verifyPerf = r.Perf
			c.verifyQ = append(c.verifyQ, j)
			verify = true
			continue
		}
		c.completeLocked(j, r.Perf, nil)
	}
	if verify {
		c.startVerifierLocked()
		c.cond.Broadcast()
	}
	c.mu.Unlock()
	if r := c.opts.Obs; r != nil {
		r.Histogram(MetricWorkerBusy(msg.Worker)).Record(msg.BusyNS)
	}
	for _, rp := range replays {
		leaseID := strconv.FormatUint(rp.r.LeaseID, 10)
		obs.Complete("lease", sess.lane, rp.submitted, rp.done.Sub(rp.submitted),
			"lease", leaseID, "worker", msg.Worker, "trace", rp.r.Name, "trace_id", c.traceID)
		if rp.r.StartUnixNano != 0 {
			start := time.Unix(0, rp.r.StartUnixNano-sess.offsetNS)
			obs.Complete("worker-sim", sess.lane, start, time.Duration(rp.r.SimNS),
				"lease", leaseID, "worker", msg.Worker, "trace", rp.r.Name, "trace_id", c.traceID)
		}
	}
}

// recordCompletionLocked folds one grant→result latency into the
// hedging sample window; c.mu held.
func (c *Coordinator) recordCompletionLocked(d time.Duration) {
	if d < 0 {
		d = 0
	}
	c.completions[c.compN%completionWindow] = d
	c.compN++
}

// startVerifierLocked launches the cross-validation goroutine once;
// c.mu held.
func (c *Coordinator) startVerifierLocked() {
	c.verifyOnce.Do(func() {
		c.verifyWG.Add(1)
		go c.verifier()
	})
}

// verifier re-simulates sampled remote results locally and
// adjudicates: agreement releases the job to its waiters; divergence
// marks the reporting worker byzantine and requeues its work. Local
// re-simulations share a memo cache, so re-verifying a requeued key is
// a lookup, not a second sim.
func (c *Coordinator) verifier() {
	defer c.verifyWG.Done()
	for {
		c.mu.Lock()
		for len(c.verifyQ) == 0 && !c.closed {
			c.cond.Wait()
		}
		if len(c.verifyQ) == 0 {
			c.mu.Unlock()
			return
		}
		j := c.verifyQ[0]
		c.verifyQ = c.verifyQ[1:]
		if j.state != jobVerifying {
			c.mu.Unlock()
			continue
		}
		worker := j.verifyWorker
		remote := j.verifyPerf
		cfg := j.cfg
		name := j.key.name
		c.mu.Unlock()

		local, err := c.crossSimulate(cfg, name)

		c.mu.Lock()
		if j.state != jobVerifying {
			c.mu.Unlock()
			continue
		}
		c.crosschecked.Add(1)
		c.obsInc(MetricCrossChecked)
		c.tallyLocked(worker).crosschecked++
		switch {
		case err != nil:
			// The local referee failed (shutdown, local sim error): we
			// cannot adjudicate, so release the remote result — the same
			// trust level as an unsampled result.
			obs.RecordEvent("crosscheck-skipped", "worker", worker, "trace", name, "err", err.Error())
			c.completeLocked(j, remote, nil)
		case local == remote:
			c.completeLocked(j, remote, nil)
		default:
			c.divergent.Add(1)
			c.obsInc(MetricCrossCheckDivergent)
			c.tallyLocked(worker).divergent++
			obs.RecordEvent("crosscheck-divergent",
				"worker", worker, "trace", name, "cfg", j.key.cfg)
			c.markByzantineLocked(worker, c.now())
			if j.state == jobVerifying { // not already requeued by markByzantine
				j.state = jobPending
				c.pending = append(c.pending, j)
			}
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}

// crossSimulate measures one key through the coordinator's local
// referee validator (built lazily from the env).
func (c *Coordinator) crossSimulate(cfg ssdconf.Config, name string) (autodb.Perf, error) {
	c.mu.Lock()
	if c.crossV == nil && c.crossVErr == nil {
		c.crossV, c.crossVErr = NewValidator(c.env)
	}
	v, err := c.crossV, c.crossVErr
	c.mu.Unlock()
	if err != nil {
		return autodb.Perf{}, err
	}
	f, err := c.env.FactoryFor(name)
	if err != nil {
		return autodb.Perf{}, err
	}
	return v.MeasureTrace(c.verifyCtx, cfg, name, f)
}

// absorbStats folds a worker's delta-encoded metrics push into the
// coordinator's registry under a worker label.
func (c *Coordinator) absorbStats(sp *StatsPush) {
	c.statsPushes.Add(1)
	c.obsInc(MetricStatsPushes)
	if r := c.opts.Obs; r != nil {
		r.Absorb(sp.Stats, "worker", sp.Worker)
	}
}

func (c *Coordinator) obsInc(name string) {
	if r := c.opts.Obs; r != nil {
		r.Counter(name).Inc()
	}
}

func (c *Coordinator) obsAdd(name string, delta int64) {
	if r := c.opts.Obs; r != nil {
		r.Counter(name).Add(delta)
	}
}

// ServeConn speaks the worker protocol over one connection: handshake,
// then a lease/result loop until the peer disconnects, says goodbye,
// or the coordinator closes. It blocks; run it in a goroutine per
// connection. Leases held by a disconnecting worker are reassigned
// immediately.
func (c *Coordinator) ServeConn(conn net.Conn) error {
	defer conn.Close()
	r := bufio.NewReader(conn)
	m, err := Decode(r)
	if err != nil {
		return fmt.Errorf("dist: handshake read: %w", err)
	}
	if m.Type != MsgHello {
		return fmt.Errorf("dist: expected hello, got %s", m.Type)
	}
	worker := m.Hello.Worker
	if m.Hello.Version != ProtocolVersion {
		c.rejects.Add(1)
		c.obsInc(MetricHandshakeRejects)
		_ = Encode(conn, &Message{Type: MsgReject, Reject: &Reject{
			Code:   RejectVersion,
			Detail: fmt.Sprintf("coordinator speaks v%d, worker v%d", ProtocolVersion, m.Hello.Version),
		}})
		return fmt.Errorf("dist: worker %s: %w", worker, ErrVersionMismatch)
	}
	t1 := c.now()
	welcome := &Welcome{
		Env:           *c.env,
		LeaseTTLMS:    c.opts.leaseTTL().Milliseconds(),
		CoordUnixNano: t1.UnixNano(),
		TraceID:       c.traceID,
	}
	if err := Encode(conn, &Message{Type: MsgWelcome, Welcome: welcome}); err != nil {
		return err
	}
	if m, err = Decode(r); err != nil {
		return fmt.Errorf("dist: handshake read: %w", err)
	}
	t2 := c.now()
	if m.Type != MsgConfirm {
		return fmt.Errorf("dist: expected confirm, got %s", m.Type)
	}
	if m.Confirm.SpaceSig != c.env.SpaceSig {
		c.rejects.Add(1)
		c.obsInc(MetricHandshakeRejects)
		_ = Encode(conn, &Message{Type: MsgReject, Reject: &Reject{
			Code:   RejectSpace,
			Detail: fmt.Sprintf("coordinator %s, worker %s", c.env.SpaceSig, m.Confirm.SpaceSig),
		}})
		return fmt.Errorf("dist: worker %s: %w", worker, ErrSpaceMismatch)
	}
	if err := Encode(conn, &Message{Type: MsgAccept}); err != nil {
		return err
	}

	sess := &session{name: worker, leases: make(map[uint64]*leaseInfo)}
	// NTP-style offset from the handshake stamps: the worker's space
	// reconstruction between its Recv and Send stamps is excluded, so
	// the round trip is pure wire + framing time.
	if wr, ws := m.Confirm.RecvUnixNano, m.Confirm.SendUnixNano; wr != 0 && ws != 0 {
		sess.rttNS = t2.Sub(t1).Nanoseconds() - (ws - wr)
		sess.offsetNS = ((wr - t1.UnixNano()) + (ws - t2.UnixNano())) / 2
	}
	c.mu.Lock()
	c.nextLane++
	sess.lane = 100 + c.nextLane // lanes 101+ keep worker spans off the tuner's lane 1
	t := c.tallyLocked(worker)
	t.sessions++
	t.cur = sess
	t.lastSeen = c.now()
	c.mu.Unlock()
	if r := c.opts.Obs; r != nil {
		r.Gauge(MetricWorkersConnected).Add(1)
	}
	obs.RecordEvent("worker-connected", "worker", worker,
		"rtt_ns", strconv.FormatInt(sess.rttNS, 10), "offset_ns", strconv.FormatInt(sess.offsetNS, 10))
	defer c.dropSession(sess)
	for {
		// Once the coordinator is closed, bound the wait for the worker's
		// next request so a wedged worker cannot stall Close forever; a
		// responsive worker gets its polite Closed grant well within the
		// lease TTL. (Kernel read deadlines are wall-clock by definition,
		// so this deliberately bypasses the injectable Clock.)
		if c.isClosed() {
			_ = conn.SetReadDeadline(time.Now().Add(c.opts.leaseTTL()))
		}
		m, err := Decode(r)
		if err != nil {
			return err
		}
		switch m.Type {
		case MsgLeaseReq:
			leases, closed := c.lease(sess, m.LeaseReq.Max)
			grant := &Message{Type: MsgLeaseGrant, LeaseGrant: &LeaseGrant{Leases: leases, Closed: closed}}
			if err := Encode(conn, grant); err != nil {
				return err
			}
			if closed {
				return nil
			}
		case MsgResult:
			c.applyResults(sess, m.Result)
		case MsgStatsPush:
			c.absorbStats(m.StatsPush)
		case MsgGoodbye:
			obs.RecordEvent("worker-goodbye", "worker", worker,
				"reason", m.Goodbye.Reason)
			return nil
		default:
			return fmt.Errorf("dist: unexpected %s mid-session", m.Type)
		}
	}
}

// Serve accepts worker connections until the listener closes, then
// waits for every accepted session to finish — so that workers receive
// their Closed grant before the caller tears the process down.
func (c *Coordinator) Serve(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.ServeConn(conn)
		}()
	}
}
