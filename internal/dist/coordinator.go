package dist

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/core"
	"autoblox/internal/obs"
	"autoblox/internal/ssdconf"
)

// Fleet metric names, recorded when the coordinator has a registry.
const (
	MetricLeasesGranted    = "dist_leases_granted_total"
	MetricLeasesExpired    = "dist_leases_expired_total"
	MetricLeasesReassigned = "dist_leases_reassigned_total"
	MetricResultsDup       = "dist_results_duplicate_total"
	MetricHandshakeRejects = "dist_handshake_rejects_total"
	MetricStatsPushes      = "dist_stats_pushes_total"
	MetricWorkersConnected = "dist_workers_connected"
)

// MetricWorkerBusy names a fleet worker's per-batch busy-time histogram
// ("dist_worker_busy_ns{worker=\"name\"}").
func MetricWorkerBusy(worker string) string {
	return fmt.Sprintf(`dist_worker_busy_ns{worker=%q}`, worker)
}

// CoordinatorOptions tunes the lease machinery.
type CoordinatorOptions struct {
	// LeaseTTL is how long a worker may hold a lease before the job is
	// reassigned (default 30s).
	LeaseTTL time.Duration
	// PollInterval bounds how long an idle LeaseReq blocks before an
	// empty grant tells the worker to ask again (default 250ms). It is
	// also the granularity at which expired leases are detected.
	PollInterval time.Duration
	// BatchMax caps leases per grant (default 16).
	BatchMax int
	// Obs, when set, receives fleet counters and per-worker busy
	// histograms. Never influences results.
	Obs *obs.Registry
}

func (o CoordinatorOptions) leaseTTL() time.Duration {
	if o.LeaseTTL > 0 {
		return o.LeaseTTL
	}
	return 30 * time.Second
}

func (o CoordinatorOptions) pollInterval() time.Duration {
	if o.PollInterval > 0 {
		return o.PollInterval
	}
	return 250 * time.Millisecond
}

func (o CoordinatorOptions) batchMax() int {
	if o.BatchMax > 0 {
		return o.BatchMax
	}
	return 16
}

// FleetCounters is a point-in-time snapshot of the coordinator's
// always-on counters (kept regardless of Obs).
type FleetCounters struct {
	Granted          int64
	Expired          int64
	Reassigned       int64
	Duplicates       int64
	HandshakeRejects int64
	StatsPushes      int64
}

type jobState uint8

const (
	jobPending jobState = iota
	jobLeased
	jobDone
)

// distJob is one measurement key moving through the lease state
// machine.
type distJob struct {
	key       simKey
	cfg       ssdconf.Config
	submitted time.Time
	state     jobState
	leaseID   uint64   // current lease (state == jobLeased)
	owner     *session // current lessee
	expiry    time.Time
	grants    int // total leases issued for this job
	expiries  int // leases of this job that timed out (flaky detection)
	waited    bool
	queueWait time.Duration // submit → first grant

	done chan struct{}
	perf autodb.Perf
	err  error
}

// simKey mirrors the validator's struct cache key.
type simKey struct {
	cfg  string
	name string
}

// session is one connected worker's lease bookkeeping, plus the
// clock-offset estimate taken during its handshake.
type session struct {
	name   string
	leases map[uint64]*distJob
	lane   int64 // trace lane for this worker's replayed spans
	// offsetNS estimates workerClock − coordClock; subtracting it from a
	// worker timestamp lands it on the coordinator's clock. rttNS is the
	// handshake round trip the estimate derived from (its error bound).
	offsetNS int64
	rttNS    int64
}

// workerTally accumulates one worker's fleet statistics. Tallies are
// keyed by worker name and survive reconnects.
type workerTally struct {
	jobs       int64
	busyNS     int64
	expired    int64
	reassigned int64
	sessions   int      // currently connected session count
	cur        *session // most recent connected session (nil when none)
	lastSeen   time.Time
}

// RemoteError is a worker-side measurement failure relayed through the
// coordinator.
type RemoteError struct {
	Worker string
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("dist: worker %s: %s", e.Worker, e.Msg)
}

// Coordinator owns the distributed measurement queue and implements
// core.Backend: Measure enqueues a key and blocks until some worker
// returns its result. Deduplication generalizes the validator's
// singleflight across the fleet — one lease chain per distinct key, TTL
// expiry and worker death both return the job to the queue, and results
// apply idempotently (deterministic sims make any worker's result THE
// result for the key).
type Coordinator struct {
	env  *Env
	opts CoordinatorOptions

	counters                                                       core.BackendCounters
	granted, expired, reassigned, duplicates, rejects, statsPushes atomic.Int64

	// traceID names this coordinator's tracing session; leases carry it
	// so worker-side trace events correlate back to this tune.
	traceID string

	mu        sync.Mutex
	cond      *sync.Cond
	closed    bool
	nextLease uint64
	nextLane  int64
	pending   []*distJob
	leased    map[uint64]*distJob
	byKey     map[simKey]*distJob
	tallies   map[string]*workerTally
}

// NewCoordinator builds a coordinator over a fingerprinted env.
func NewCoordinator(env *Env, opts CoordinatorOptions) *Coordinator {
	c := &Coordinator{
		env:     env,
		opts:    opts,
		leased:  make(map[uint64]*distJob),
		byKey:   make(map[simKey]*distJob),
		tallies: make(map[string]*workerTally),
		traceID: obs.TraceID(),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Env returns the coordinator's environment.
func (c *Coordinator) Env() *Env { return c.env }

// Counters snapshots the fleet counters.
func (c *Coordinator) Counters() FleetCounters {
	return FleetCounters{
		Granted:          c.granted.Load(),
		Expired:          c.expired.Load(),
		Reassigned:       c.reassigned.Load(),
		Duplicates:       c.duplicates.Load(),
		HandshakeRejects: c.rejects.Load(),
		StatsPushes:      c.statsPushes.Load(),
	}
}

// Stats implements core.Backend: QueueWait is submit-to-first-lease,
// SimBusy the worker-reported per-job time, plus fleet lease churn and
// a per-worker decomposition.
func (c *Coordinator) Stats() core.BackendStats {
	s := c.counters.Snapshot(core.BackendKindDist)
	s.LeasesExpired = c.expired.Load()
	s.LeasesReassigned = c.reassigned.Load()
	c.mu.Lock()
	names := make([]string, 0, len(c.tallies))
	for name := range c.tallies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := c.tallies[name]
		s.Workers = append(s.Workers, core.WorkerBackendStats{
			Name:             name,
			Connected:        t.sessions > 0,
			Jobs:             t.jobs,
			BusyNS:           t.busyNS,
			LeasesExpired:    t.expired,
			LeasesReassigned: t.reassigned,
		})
	}
	c.mu.Unlock()
	return s
}

// WorkerStatus is one worker's row in the fleet status view.
type WorkerStatus struct {
	Name             string `json:"name"`
	Connected        bool   `json:"connected"`
	Jobs             int64  `json:"jobs"`
	BusyNS           int64  `json:"busy_ns"`
	LeasesHeld       int    `json:"leases_held"`
	LeasesExpired    int64  `json:"leases_expired"`
	LeasesReassigned int64  `json:"leases_reassigned"`
	ClockOffsetNS    int64  `json:"clock_offset_ns"`
	RTTNS            int64  `json:"rtt_ns"`
	LastSeen         string `json:"last_seen,omitempty"`
}

// FleetStatus is the coordinator's /statusz document: queue depths,
// lease churn, and per-worker rows.
type FleetStatus struct {
	Closed           bool           `json:"closed"`
	Pending          int            `json:"pending"`
	Leased           int            `json:"leased"`
	LeasesGranted    int64          `json:"leases_granted"`
	LeasesExpired    int64          `json:"leases_expired"`
	LeasesReassigned int64          `json:"leases_reassigned"`
	DuplicateResults int64          `json:"duplicate_results"`
	HandshakeRejects int64          `json:"handshake_rejects"`
	StatsPushes      int64          `json:"stats_pushes"`
	Workers          []WorkerStatus `json:"workers,omitempty"`
}

// StatusSnapshot captures the live fleet view served at /statusz.
func (c *Coordinator) StatusSnapshot() FleetStatus {
	st := FleetStatus{
		LeasesGranted:    c.granted.Load(),
		LeasesExpired:    c.expired.Load(),
		LeasesReassigned: c.reassigned.Load(),
		DuplicateResults: c.duplicates.Load(),
		HandshakeRejects: c.rejects.Load(),
		StatsPushes:      c.statsPushes.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st.Closed = c.closed
	st.Pending = len(c.pending)
	st.Leased = len(c.leased)
	held := map[string]int{}
	for _, j := range c.leased {
		if j.owner != nil {
			held[j.owner.name]++
		}
	}
	names := make([]string, 0, len(c.tallies))
	for name := range c.tallies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		t := c.tallies[name]
		row := WorkerStatus{
			Name:             name,
			Connected:        t.sessions > 0,
			Jobs:             t.jobs,
			BusyNS:           t.busyNS,
			LeasesHeld:       held[name],
			LeasesExpired:    t.expired,
			LeasesReassigned: t.reassigned,
		}
		if t.cur != nil {
			row.ClockOffsetNS = t.cur.offsetNS
			row.RTTNS = t.cur.rttNS
		}
		if !t.lastSeen.IsZero() {
			row.LastSeen = t.lastSeen.UTC().Format(time.RFC3339Nano)
		}
		st.Workers = append(st.Workers, row)
	}
	return st
}

// tallyLocked returns (creating if needed) a worker's tally; c.mu held.
func (c *Coordinator) tallyLocked(name string) *workerTally {
	t, ok := c.tallies[name]
	if !ok {
		t = &workerTally{}
		c.tallies[name] = t
	}
	return t
}

// Measure implements core.Backend: enqueue the job (deduplicated by
// key) and wait for a worker's result.
func (c *Coordinator) Measure(ctx context.Context, job core.Job) (autodb.Perf, error) {
	j, err := c.submit(job)
	if err != nil {
		return autodb.Perf{}, err
	}
	select {
	case <-j.done:
		return j.perf, j.err
	case <-ctx.Done():
		return autodb.Perf{}, ctx.Err()
	}
}

// submit enqueues a job, returning the existing entry when the key is
// already pending, leased, or done.
func (c *Coordinator) submit(job core.Job) (*distJob, error) {
	k := simKey{cfg: job.Cfg.Key(), name: job.Name}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if j, ok := c.byKey[k]; ok {
		return j, nil
	}
	j := &distJob{
		key:       k,
		cfg:       job.Cfg.Clone(),
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	c.byKey[k] = j
	c.pending = append(c.pending, j)
	c.cond.Broadcast()
	return j, nil
}

// Close shuts the queue down: every unfinished job fails with
// ErrClosed, idle lease polls return Closed grants, and connected
// workers exit on their next pull.
func (c *Coordinator) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, j := range c.byKey {
		if j.state != jobDone {
			j.state = jobDone
			j.err = ErrClosed
			close(j.done)
		}
	}
	c.pending = nil
	c.leased = make(map[uint64]*distJob)
	c.cond.Broadcast()
}

// isClosed reports whether Close has run.
func (c *Coordinator) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// expireLocked returns every overdue lease to the pending queue,
// attributing the expiry to the worker that held it. A job expiring for
// the second time records a "warn-flaky-job" flight event — two workers
// (or the same worker twice) sat on the same deterministic job, which
// usually means a wedged or overloaded worker, not a bad job.
func (c *Coordinator) expireLocked(now time.Time) {
	for id, j := range c.leased {
		if now.Before(j.expiry) {
			continue
		}
		delete(c.leased, id)
		owner := ""
		if j.owner != nil {
			owner = j.owner.name
			delete(j.owner.leases, id)
			j.owner = nil
			c.tallyLocked(owner).expired++
		}
		j.state = jobPending
		j.expiries++
		c.pending = append(c.pending, j)
		c.expired.Add(1)
		c.obsInc(MetricLeasesExpired)
		obs.RecordEvent("lease-expired",
			"lease", fmt.Sprint(id), "worker", owner, "trace", j.key.name, "expiries", fmt.Sprint(j.expiries))
		if j.expiries == 2 {
			obs.RecordEvent("warn-flaky-job",
				"trace", j.key.name, "cfg", j.key.cfg, "worker", owner, "expiries", "2")
		}
	}
}

// dropSession expires a disconnected worker's leases immediately.
func (c *Coordinator) dropSession(sess *session) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, j := range sess.leases {
		if j.state != jobLeased || j.leaseID != id {
			continue
		}
		delete(c.leased, id)
		j.owner = nil
		j.state = jobPending
		j.expiries++
		c.pending = append(c.pending, j)
		c.expired.Add(1)
		c.obsInc(MetricLeasesExpired)
		c.tallyLocked(sess.name).expired++
		obs.RecordEvent("lease-expired",
			"lease", fmt.Sprint(id), "worker", sess.name, "trace", j.key.name, "reason", "disconnect")
	}
	sess.leases = make(map[uint64]*distJob)
	t := c.tallyLocked(sess.name)
	t.sessions--
	if t.cur == sess {
		t.cur = nil
	}
	t.lastSeen = time.Now()
	if r := c.opts.Obs; r != nil {
		r.Gauge(MetricWorkersConnected).Add(-1)
	}
	obs.RecordEvent("worker-disconnected", "worker", sess.name)
	c.cond.Broadcast()
}

// lease blocks up to PollInterval for work, then answers. closed=true
// tells the worker to exit.
func (c *Coordinator) lease(sess *session, max int) (leases []Lease, closed bool) {
	if max <= 0 {
		max = 1
	}
	if bm := c.opts.batchMax(); max > bm {
		max = bm
	}
	deadline := time.Now().Add(c.opts.pollInterval())
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		now := time.Now()
		c.expireLocked(now)
		if c.closed {
			return nil, true
		}
		if len(c.pending) > 0 {
			n := max
			if n > len(c.pending) {
				n = len(c.pending)
			}
			ttl := c.opts.leaseTTL()
			leases = make([]Lease, 0, n)
			for _, j := range c.pending[:n] {
				c.nextLease++
				j.leaseID = c.nextLease
				j.owner = sess
				j.state = jobLeased
				j.expiry = now.Add(ttl)
				if !j.waited {
					j.waited = true
					j.queueWait = now.Sub(j.submitted)
				}
				if j.grants > 0 {
					c.reassigned.Add(1)
					c.obsInc(MetricLeasesReassigned)
					c.tallyLocked(sess.name).reassigned++
					obs.RecordEvent("lease-reassigned",
						"lease", fmt.Sprint(j.leaseID), "worker", sess.name, "trace", j.key.name, "grants", fmt.Sprint(j.grants+1))
				}
				j.grants++
				c.leased[j.leaseID] = j
				sess.leases[j.leaseID] = j
				leases = append(leases, Lease{
					ID:      j.leaseID,
					CfgKey:  j.key.cfg,
					Cfg:     []int(j.cfg),
					Name:    j.key.name,
					TraceID: c.traceID,
				})
			}
			c.pending = c.pending[n:]
			c.granted.Add(int64(len(leases)))
			c.obsAdd(MetricLeasesGranted, int64(len(leases)))
			return leases, false
		}
		if !now.Before(deadline) {
			return nil, false
		}
		// cond has no deadline wait; arm a broadcast at the poll boundary
		// so this wakes for new work, shutdown, or timeout alike.
		t := time.AfterFunc(deadline.Sub(now), c.cond.Broadcast)
		c.cond.Wait()
		t.Stop()
	}
}

// applyResults folds a worker's result batch into the job table,
// idempotently: a result for an unknown or already-done key counts as a
// duplicate and changes nothing; a result from an expired (reassigned)
// lease is accepted — the sims are deterministic, so any worker's result
// for the key is the result. When the coordinator traces, each accepted
// result is also replayed as a span pair on the coordinator's own
// timeline: a "lease" span covering submit→done (queue wait included)
// and a "worker-sim" span at the worker's reported start, shifted onto
// the coordinator's clock by the session's handshake offset estimate.
func (c *Coordinator) applyResults(sess *session, msg *ResultMsg) {
	type replay struct {
		r         JobResult
		submitted time.Time
		done      time.Time
	}
	var replays []replay
	c.mu.Lock()
	t := c.tallyLocked(msg.Worker)
	t.jobs += int64(len(msg.Results))
	t.busyNS += msg.BusyNS
	t.lastSeen = time.Now()
	for _, r := range msg.Results {
		k := simKey{cfg: r.CfgKey, name: r.Name}
		j, ok := c.byKey[k]
		if !ok || j.state == jobDone {
			c.duplicates.Add(1)
			c.obsInc(MetricResultsDup)
			continue
		}
		replays = append(replays, replay{r: r, submitted: j.submitted, done: time.Now()})
		switch j.state {
		case jobLeased:
			delete(c.leased, j.leaseID)
			if j.owner != nil {
				delete(j.owner.leases, j.leaseID)
				j.owner = nil
			}
		case jobPending:
			// Reassignment raced the late result: pull the job back out of
			// the queue before some worker re-runs it.
			for i, p := range c.pending {
				if p == j {
					c.pending = append(c.pending[:i], c.pending[i+1:]...)
					break
				}
			}
		}
		j.state = jobDone
		if r.Err != "" {
			j.err = &RemoteError{Worker: msg.Worker, Msg: r.Err}
			// Errors are not cached validator-side either; forget the key so
			// a later submit may retry.
			delete(c.byKey, k)
		} else {
			j.perf = r.Perf
		}
		c.counters.Record(j.queueWait, time.Duration(r.SimNS))
		close(j.done)
	}
	c.mu.Unlock()
	if r := c.opts.Obs; r != nil {
		r.Histogram(MetricWorkerBusy(msg.Worker)).Record(msg.BusyNS)
	}
	for _, rp := range replays {
		leaseID := strconv.FormatUint(rp.r.LeaseID, 10)
		obs.Complete("lease", sess.lane, rp.submitted, rp.done.Sub(rp.submitted),
			"lease", leaseID, "worker", msg.Worker, "trace", rp.r.Name, "trace_id", c.traceID)
		if rp.r.StartUnixNano != 0 {
			start := time.Unix(0, rp.r.StartUnixNano-sess.offsetNS)
			obs.Complete("worker-sim", sess.lane, start, time.Duration(rp.r.SimNS),
				"lease", leaseID, "worker", msg.Worker, "trace", rp.r.Name, "trace_id", c.traceID)
		}
	}
}

// absorbStats folds a worker's delta-encoded metrics push into the
// coordinator's registry under a worker label.
func (c *Coordinator) absorbStats(sp *StatsPush) {
	c.statsPushes.Add(1)
	c.obsInc(MetricStatsPushes)
	if r := c.opts.Obs; r != nil {
		r.Absorb(sp.Stats, "worker", sp.Worker)
	}
}

func (c *Coordinator) obsInc(name string) {
	if r := c.opts.Obs; r != nil {
		r.Counter(name).Inc()
	}
}

func (c *Coordinator) obsAdd(name string, delta int64) {
	if r := c.opts.Obs; r != nil {
		r.Counter(name).Add(delta)
	}
}

// ServeConn speaks the worker protocol over one connection: handshake,
// then a lease/result loop until the peer disconnects or the
// coordinator closes. It blocks; run it in a goroutine per connection.
// Leases held by a disconnecting worker are reassigned immediately.
func (c *Coordinator) ServeConn(conn net.Conn) error {
	defer conn.Close()
	r := bufio.NewReader(conn)
	m, err := Decode(r)
	if err != nil {
		return fmt.Errorf("dist: handshake read: %w", err)
	}
	if m.Type != MsgHello {
		return fmt.Errorf("dist: expected hello, got %s", m.Type)
	}
	worker := m.Hello.Worker
	if m.Hello.Version != ProtocolVersion {
		c.rejects.Add(1)
		c.obsInc(MetricHandshakeRejects)
		_ = Encode(conn, &Message{Type: MsgReject, Reject: &Reject{
			Code:   RejectVersion,
			Detail: fmt.Sprintf("coordinator speaks v%d, worker v%d", ProtocolVersion, m.Hello.Version),
		}})
		return fmt.Errorf("dist: worker %s: %w", worker, ErrVersionMismatch)
	}
	t1 := time.Now()
	welcome := &Welcome{
		Env:           *c.env,
		LeaseTTLMS:    c.opts.leaseTTL().Milliseconds(),
		CoordUnixNano: t1.UnixNano(),
		TraceID:       c.traceID,
	}
	if err := Encode(conn, &Message{Type: MsgWelcome, Welcome: welcome}); err != nil {
		return err
	}
	if m, err = Decode(r); err != nil {
		return fmt.Errorf("dist: handshake read: %w", err)
	}
	t2 := time.Now()
	if m.Type != MsgConfirm {
		return fmt.Errorf("dist: expected confirm, got %s", m.Type)
	}
	if m.Confirm.SpaceSig != c.env.SpaceSig {
		c.rejects.Add(1)
		c.obsInc(MetricHandshakeRejects)
		_ = Encode(conn, &Message{Type: MsgReject, Reject: &Reject{
			Code:   RejectSpace,
			Detail: fmt.Sprintf("coordinator %s, worker %s", c.env.SpaceSig, m.Confirm.SpaceSig),
		}})
		return fmt.Errorf("dist: worker %s: %w", worker, ErrSpaceMismatch)
	}
	if err := Encode(conn, &Message{Type: MsgAccept}); err != nil {
		return err
	}

	sess := &session{name: worker, leases: make(map[uint64]*distJob)}
	// NTP-style offset from the handshake stamps: the worker's space
	// reconstruction between its Recv and Send stamps is excluded, so
	// the round trip is pure wire + framing time.
	if wr, ws := m.Confirm.RecvUnixNano, m.Confirm.SendUnixNano; wr != 0 && ws != 0 {
		sess.rttNS = t2.Sub(t1).Nanoseconds() - (ws - wr)
		sess.offsetNS = ((wr - t1.UnixNano()) + (ws - t2.UnixNano())) / 2
	}
	c.mu.Lock()
	c.nextLane++
	sess.lane = 100 + c.nextLane // lanes 101+ keep worker spans off the tuner's lane 1
	t := c.tallyLocked(worker)
	t.sessions++
	t.cur = sess
	t.lastSeen = time.Now()
	c.mu.Unlock()
	if r := c.opts.Obs; r != nil {
		r.Gauge(MetricWorkersConnected).Add(1)
	}
	obs.RecordEvent("worker-connected", "worker", worker,
		"rtt_ns", strconv.FormatInt(sess.rttNS, 10), "offset_ns", strconv.FormatInt(sess.offsetNS, 10))
	defer c.dropSession(sess)
	for {
		// Once the coordinator is closed, bound the wait for the worker's
		// next request so a wedged worker cannot stall Close forever; a
		// responsive worker gets its polite Closed grant well within the
		// lease TTL.
		if c.isClosed() {
			_ = conn.SetReadDeadline(time.Now().Add(c.opts.leaseTTL()))
		}
		m, err := Decode(r)
		if err != nil {
			return err
		}
		switch m.Type {
		case MsgLeaseReq:
			leases, closed := c.lease(sess, m.LeaseReq.Max)
			grant := &Message{Type: MsgLeaseGrant, LeaseGrant: &LeaseGrant{Leases: leases, Closed: closed}}
			if err := Encode(conn, grant); err != nil {
				return err
			}
			if closed {
				return nil
			}
		case MsgResult:
			c.applyResults(sess, m.Result)
		case MsgStatsPush:
			c.absorbStats(m.StatsPush)
		default:
			return fmt.Errorf("dist: unexpected %s mid-session", m.Type)
		}
	}
}

// Serve accepts worker connections until the listener closes, then
// waits for every accepted session to finish — so that workers receive
// their Closed grant before the caller tears the process down.
func (c *Coordinator) Serve(ln net.Listener) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = c.ServeConn(conn)
		}()
	}
}
