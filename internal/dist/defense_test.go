package dist

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/core"
	"autoblox/internal/obs"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/workload"
)

// eventsByKind filters a flight recorder's buffer down to one kind.
func eventsByKind(rec *obs.FlightRecorder, kind string) []obs.FlightEvent {
	var out []obs.FlightEvent
	for _, ev := range rec.Events() {
		if ev.Kind == kind {
			out = append(out, ev)
		}
	}
	return out
}

// TestHedgedLeaseRescuesStraggler pins the hedging policy on a fake
// clock: a job whose lease has aged past HedgeAfter is granted to a
// second worker too, the duplicate grant is counted as hedged (not
// reassigned), a third worker gets nothing (HedgeMax caps concurrent
// leases), and whichever result lands first wins while the loser is a
// duplicate.
func TestHedgedLeaseRescuesStraggler(t *testing.T) {
	rec := obs.NewFlightRecorder(256)
	obs.SetFlightRecorder(rec)
	defer obs.SetFlightRecorder(nil)

	const after = 10 * time.Second
	clk := newFakeClock()
	env := testEnv(t, 600, ssd.FaultProfile{}, workload.Database)
	coord := NewCoordinator(env, CoordinatorOptions{
		LeaseTTL:     time.Minute, // hedging, not expiry, must fire
		PollInterval: time.Millisecond,
		Clock:        clk,
		Hedge:        true,
		HedgeAfter:   after,
	})
	t.Cleanup(coord.Close)

	cfgs := distinctConfigs(t, env.Space(), 1)
	done := measureOne(coord, cfgs[0])

	holder := dialFake(t, coord)
	holder.mustAccept("holder", env.SpaceSig)
	leases := holder.leaseAtLeast(1)

	// Below the straggler threshold no duplicate is issued.
	probe := dialFake(t, coord)
	probe.mustAccept("probe", env.SpaceSig)
	probe.send(&Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: 1}})
	if m := probe.recv(); len(m.LeaseGrant.Leases) != 0 {
		t.Fatalf("hedged before threshold: %+v", m.LeaseGrant.Leases)
	}

	// At the threshold the probe gets a duplicate lease for the same job.
	clk.Advance(after)
	hedged := probe.leaseAtLeast(1)
	if hedged[0].CfgKey != leases[0].CfgKey || hedged[0].Name != leases[0].Name {
		t.Fatalf("hedge is a different job: %+v vs %+v", hedged[0], leases[0])
	}
	if hedged[0].ID == leases[0].ID {
		t.Fatal("hedged grant reused the primary lease ID")
	}
	fc := coord.Counters()
	if fc.Hedged != 1 {
		t.Fatalf("Hedged = %d, want 1", fc.Hedged)
	}
	if fc.Reassigned != 0 || fc.Expired != 0 {
		t.Fatalf("hedge misattributed: %+v (want no reassignments or expiries)", fc)
	}
	if evs := eventsByKind(rec, "lease-hedged"); len(evs) != 1 {
		t.Fatalf("lease-hedged events = %d, want 1", len(evs))
	}

	// HedgeMax (default 2) caps concurrent leases: a third worker gets
	// nothing even though the job is still outstanding.
	third := dialFake(t, coord)
	third.mustAccept("third", env.SpaceSig)
	third.send(&Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: 1}})
	if m := third.recv(); len(m.LeaseGrant.Leases) != 0 {
		t.Fatalf("third lease for a twice-leased job: %+v", m.LeaseGrant.Leases)
	}

	// The hedge wins; the original holder's late answer is a duplicate.
	probe.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "probe", Results: []JobResult{
		{LeaseID: hedged[0].ID, CfgKey: hedged[0].CfgKey, Name: hedged[0].Name,
			Perf: autodb.Perf{LatencyNS: 42, ThroughputBps: 1}, SimNS: 1},
	}}})
	if err := <-done; err != nil {
		t.Fatalf("Measure via hedged lease: %v", err)
	}
	holder.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "holder", Results: []JobResult{
		{LeaseID: leases[0].ID, CfgKey: leases[0].CfgKey, Name: leases[0].Name,
			Perf: autodb.Perf{LatencyNS: 42, ThroughputBps: 1}, SimNS: 1},
	}}})
	waitFor(t, func() bool { return coord.Counters().Duplicates >= 1 },
		"straggler's result counted as duplicate")
}

// TestQuarantineAndProbationCycle walks the full health state machine
// on a fake clock: five consecutive failures push the EWMA over the
// threshold (quarantine), leases are refused while pending work exists,
// the quarantine window ends exactly at its boundary (readmission on
// probation with single-lease grants), three clean results clear
// probation, and full batch grants resume.
func TestQuarantineAndProbationCycle(t *testing.T) {
	rec := obs.NewFlightRecorder(512)
	obs.SetFlightRecorder(rec)
	defer obs.SetFlightRecorder(nil)

	const quarDur = 10 * time.Second
	clk := newFakeClock()
	env := testEnv(t, 600, ssd.FaultProfile{}, workload.Database)
	coord := NewCoordinator(env, CoordinatorOptions{
		LeaseTTL:           time.Minute,
		PollInterval:       time.Millisecond,
		Clock:              clk,
		Quarantine:         true,
		QuarantineDuration: quarDur,
	})
	t.Cleanup(coord.Close)
	cfgs := distinctConfigs(t, env.Space(), 5)

	bad := dialFake(t, coord)
	bad.mustAccept("bad", env.SpaceSig)

	// Five jobs, five failures. With alpha = 0.25 the failure EWMA after
	// N straight failures is 1-0.75^N: 0.68 at four (below the 0.7
	// threshold), 0.76 at five — quarantine fires exactly on the fifth.
	fails := make([]chan error, len(cfgs))
	for i, cfg := range cfgs {
		fails[i] = measureOne(coord, cfg)
	}
	leased := bad.leaseAtLeast(len(cfgs))
	results := make([]JobResult, len(leased))
	for i, l := range leased {
		results[i] = JobResult{LeaseID: l.ID, CfgKey: l.CfgKey, Name: l.Name, Err: "sim exploded"}
	}
	bad.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "bad", Results: results}})
	for i, done := range fails {
		var re *RemoteError
		if err := <-done; !errors.As(err, &re) {
			t.Fatalf("Measure %d: err = %v, want RemoteError", i, err)
		}
	}
	if got := coord.Counters().Quarantines; got != 1 {
		t.Fatalf("Quarantines = %d, want 1", got)
	}
	if evs := eventsByKind(rec, "worker-quarantined"); len(evs) != 1 {
		t.Fatalf("worker-quarantined events = %d, want 1", len(evs))
	}
	status := func(name string) WorkerStatus {
		for _, w := range coord.StatusSnapshot().Workers {
			if w.Name == name {
				return w
			}
		}
		t.Fatalf("worker %s missing from status", name)
		return WorkerStatus{}
	}
	if st := status("bad"); !st.Quarantined || st.Health < 0.7 {
		t.Fatalf("status after 5 failures = %+v, want quarantined with health >= 0.7", st)
	}

	// Pending work exists, but a quarantined worker's pull comes back
	// empty. (Error'd keys were forgotten, so resubmitting re-runs them.)
	probation := []chan error{measureOne(coord, cfgs[0]), measureOne(coord, cfgs[1]), measureOne(coord, cfgs[2])}
	waitFor(t, func() bool { return coord.StatusSnapshot().Pending == 3 },
		"probation jobs queued")
	bad.send(&Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: 8}})
	if m := bad.recv(); len(m.LeaseGrant.Leases) != 0 {
		t.Fatalf("quarantined worker granted leases: %+v", m.LeaseGrant.Leases)
	}

	// Exactly at the end of the window the worker is readmitted — on
	// probation, so a Max=8 pull over 3 pending jobs yields one lease.
	// (Grant order is queue order, not submission order, so completions
	// are drained only after all three probation rounds.)
	clk.Advance(quarDur)
	for i := range probation {
		bad.send(&Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: 8}})
		m := bad.recv()
		if len(m.LeaseGrant.Leases) != 1 {
			t.Fatalf("probation pull %d granted %d leases, want exactly 1", i, len(m.LeaseGrant.Leases))
		}
		l := m.LeaseGrant.Leases[0]
		bad.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "bad", Results: []JobResult{
			{LeaseID: l.ID, CfgKey: l.CfgKey, Name: l.Name,
				Perf: autodb.Perf{LatencyNS: 7, ThroughputBps: 1}, SimNS: 1},
		}}})
	}
	for i, done := range probation {
		if err := <-done; err != nil {
			t.Fatalf("probation job %d: %v", i, err)
		}
	}
	if evs := eventsByKind(rec, "worker-readmitted"); len(evs) != 1 {
		t.Fatalf("worker-readmitted events = %d, want 1", len(evs))
	}
	if evs := eventsByKind(rec, "worker-probation-cleared"); len(evs) != 1 {
		t.Fatalf("worker-probation-cleared events = %d, want 1", len(evs))
	}
	if st := status("bad"); st.Quarantined {
		t.Fatalf("still quarantined after probation cleared: %+v", st)
	}

	// Probation over: batch grants are back — one Max=8 pull returns
	// both pending jobs in a single grant.
	restored := []chan error{measureOne(coord, cfgs[3]), measureOne(coord, cfgs[4])}
	waitFor(t, func() bool { return coord.StatusSnapshot().Pending == 2 },
		"post-probation jobs queued")
	bad.send(&Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: 8}})
	batch := bad.recv().LeaseGrant.Leases
	if len(batch) != 2 {
		t.Fatalf("post-probation pull granted %d leases, want the full batch of 2", len(batch))
	}
	out := make([]JobResult, len(batch))
	for i, l := range batch {
		out[i] = JobResult{LeaseID: l.ID, CfgKey: l.CfgKey, Name: l.Name,
			Perf: autodb.Perf{LatencyNS: 7, ThroughputBps: 1}, SimNS: 1}
	}
	bad.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "bad", Results: out}})
	for i, done := range restored {
		if err := <-done; err != nil {
			t.Fatalf("post-probation job %d: %v", i, err)
		}
	}
}

// runEvilWorker speaks the worker protocol by hand: it executes every
// lease honestly through its own validator, then perturbs LatencyNS by
// one before reporting — a plausible-looking lie only cross-validation
// can catch. It keeps pulling until the coordinator detects the
// divergence (or closes), then says goodbye.
func runEvilWorker(coord *Coordinator, env *Env, done chan<- error) {
	server, client := net.Pipe()
	go func() { _ = coord.ServeConn(server) }()
	defer client.Close()
	r := bufio.NewReader(client)

	fail := func(err error) { done <- err }
	if err := Encode(client, &Message{Type: MsgHello, Hello: &Hello{Worker: "evil", Version: ProtocolVersion}}); err != nil {
		fail(err)
		return
	}
	if m, err := Decode(r); err != nil || m.Type != MsgWelcome {
		fail(err)
		return
	}
	if err := Encode(client, &Message{Type: MsgConfirm, Confirm: &Confirm{SpaceSig: env.SpaceSig}}); err != nil {
		fail(err)
		return
	}
	if m, err := Decode(r); err != nil || m.Type != MsgAccept {
		fail(err)
		return
	}
	v, err := NewValidator(env)
	if err != nil {
		fail(err)
		return
	}
	ctx := context.Background()
	for {
		if coord.Counters().Divergent > 0 {
			// Caught: a real attacker would vanish; goodbye keeps the
			// coordinator's session teardown on the graceful path.
			_ = Encode(client, &Message{Type: MsgGoodbye, Goodbye: &Goodbye{Reason: "caught"}})
			done <- nil
			return
		}
		if err := Encode(client, &Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: 4}}); err != nil {
			done <- nil // coordinator closed first: fine
			return
		}
		m, err := Decode(r)
		if err != nil || m.Type != MsgLeaseGrant || m.LeaseGrant.Closed {
			done <- nil
			return
		}
		var results []JobResult
		for _, l := range m.LeaseGrant.Leases {
			cfg := ssdconf.Config(l.Cfg)
			f, err := env.FactoryFor(l.Name)
			if err != nil {
				fail(err)
				return
			}
			perf, err := v.MeasureTrace(ctx, cfg, l.Name, f)
			if err != nil {
				fail(err)
				return
			}
			perf.LatencyNS++ // the lie
			results = append(results, JobResult{
				LeaseID: l.ID, CfgKey: l.CfgKey, Name: l.Name, Perf: perf, SimNS: 1,
			})
		}
		if len(results) > 0 {
			if err := Encode(client, &Message{Type: MsgResult, Result: &ResultMsg{Worker: "evil", Results: results}}); err != nil {
				done <- nil
				return
			}
		}
	}
}

// TestByzantineWorkerDetectedAndTuneConverges is the acceptance test
// for cross-validation: a fleet containing a byzantine worker (honest
// simulation, off-by-one report) must detect the divergence, mark the
// worker permanently quarantined, requeue its poisoned work onto
// honest workers, and still produce a tuning checkpoint byte-identical
// to the serial baseline — the lie never reaches the tuner. The evil
// worker is attached alone first so its capture is deterministic, then
// honest workers join and the full tune runs.
func TestByzantineWorkerDetectedAndTuneConverges(t *testing.T) {
	rec := obs.NewFlightRecorder(1024)
	obs.SetFlightRecorder(rec)
	defer obs.SetFlightRecorder(nil)

	env := testEnv(t, 1000, ssd.FaultProfile{}, workload.Database)

	tune := func(label string, parallel int, backend core.Backend) []byte {
		t.Helper()
		v, err := NewValidator(env)
		if err != nil {
			t.Fatal(err)
		}
		v.Parallel = parallel
		v.Backend = backend
		ref := v.Space.FromDevice(ssd.Intel750())
		g, err := core.NewGrader(context.Background(), v, ref, core.DefaultAlpha, core.DefaultBeta)
		if err != nil {
			t.Fatal(err)
		}
		ckpt := filepath.Join(t.TempDir(), label+".json")
		tuner, err := core.NewTuner(v.Space, v, g, core.TunerOptions{
			Seed: 5, MaxIterations: 3, SGDSteps: 2, Checkpoint: ckpt,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tuner.Tune(context.Background(), string(workload.Database), []ssdconf.Config{ref}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	serial := tune("serial", 1, nil)

	coord := NewCoordinator(env, CoordinatorOptions{
		PollInterval: 25 * time.Millisecond,
		Quarantine:   true,
		CrossCheck:   1.0, // verify every result: the evil worker cannot hide
	})
	t.Cleanup(coord.Close)

	// Phase 1: the evil worker is the only one connected, so it is
	// guaranteed the decoy lease — its perturbed answer parks the job in
	// verification, diverges from the local re-simulation, and trips the
	// byzantine trap.
	evilDone := make(chan error, 1)
	go runEvilWorker(coord, env, evilDone)
	decoy := measureOne(coord, distinctConfigs(t, env.Space(), 1)[0])
	waitFor(t, func() bool { return coord.Counters().Divergent >= 1 },
		"cross-validation flags the perturbed result")
	if err := <-evilDone; err != nil {
		t.Fatalf("evil worker infrastructure failure: %v", err)
	}
	if fc := coord.Counters(); fc.CrossChecked == 0 {
		t.Fatal("no results cross-checked despite CrossCheck=1.0")
	}
	if len(eventsByKind(rec, "worker-byzantine")) == 0 {
		t.Fatal("no worker-byzantine event recorded")
	}
	var evil *WorkerStatus
	for _, w := range coord.StatusSnapshot().Workers {
		if w.Name == "evil" {
			w := w
			evil = &w
		}
	}
	if evil == nil {
		t.Fatal("evil worker missing from fleet status")
	}
	if !evil.Byzantine || !evil.Quarantined {
		t.Fatalf("evil worker status = %+v, want byzantine and quarantined", *evil)
	}

	// Phase 2: honest workers join, pick up the requeued decoy, and run
	// the whole tune through the same (still cross-checking) coordinator.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startLoopbackWorker(ctx, coord, &Worker{Name: "honest-0", Parallel: 2})
	startLoopbackWorker(ctx, coord, &Worker{Name: "honest-1", Parallel: 2})
	if err := <-decoy; err != nil {
		t.Fatalf("requeued decoy job: %v", err)
	}
	byzantine := tune("byzantine", 0, coord)

	if !bytes.Equal(serial, byzantine) {
		t.Fatalf("byzantine worker corrupted the tune: checkpoint differs from serial (%d vs %d bytes)\nserial:\n%.2000s",
			len(byzantine), len(serial), serial)
	}
}
