package dist

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/core"
	"autoblox/internal/obs"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/workload"
)

// testEnv builds a small fingerprinted env over seeded synthetic
// workloads.
func testEnv(t *testing.T, requests int, faults ssd.FaultProfile, cats ...workload.Category) *Env {
	t.Helper()
	if len(cats) == 0 {
		cats = []workload.Category{workload.Database, workload.WebSearch}
	}
	specs := make(map[string][]WorkloadSpec, len(cats))
	for _, c := range cats {
		specs[string(c)] = []WorkloadSpec{{Category: string(c), Requests: requests, Seed: 21}}
	}
	env, err := NewEnv(ssdconf.DefaultConstraints(), false, faults, specs)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// fakeWorker is a raw protocol client for fault injection: it can
// handshake with arbitrary fingerprints, hold leases without answering,
// and send crafted/duplicate/reordered results.
type fakeWorker struct {
	t    *testing.T
	conn net.Conn
	r    *bufio.Reader
}

func dialFake(t *testing.T, c *Coordinator) *fakeWorker {
	t.Helper()
	server, client := net.Pipe()
	go func() { _ = c.ServeConn(server) }()
	return &fakeWorker{t: t, conn: client, r: bufio.NewReader(client)}
}

func (f *fakeWorker) send(m *Message) {
	f.t.Helper()
	if err := Encode(f.conn, m); err != nil {
		f.t.Fatalf("fake worker send %s: %v", m.Type, err)
	}
}

func (f *fakeWorker) recv() *Message {
	f.t.Helper()
	m, err := Decode(f.r)
	if err != nil {
		f.t.Fatalf("fake worker recv: %v", err)
	}
	return m
}

// handshake runs hello/confirm with the given fingerprint and returns
// the coordinator's final answer (Accept or Reject).
func (f *fakeWorker) handshake(name, sig string) *Message {
	f.t.Helper()
	f.send(&Message{Type: MsgHello, Hello: &Hello{Worker: name, Version: ProtocolVersion}})
	m := f.recv()
	if m.Type == MsgReject {
		return m
	}
	if m.Type != MsgWelcome {
		f.t.Fatalf("expected welcome, got %s", m.Type)
	}
	f.send(&Message{Type: MsgConfirm, Confirm: &Confirm{SpaceSig: sig}})
	return f.recv()
}

func (f *fakeWorker) mustAccept(name, sig string) {
	f.t.Helper()
	if m := f.handshake(name, sig); m.Type != MsgAccept {
		f.t.Fatalf("handshake not accepted: %s", m.Type)
	}
}

// leaseAtLeast polls until it holds at least n leases (batched work may
// arrive over several grants as Measure callers trickle in).
func (f *fakeWorker) leaseAtLeast(n int) []Lease {
	f.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var out []Lease
	for len(out) < n {
		if time.Now().After(deadline) {
			f.t.Fatalf("leased only %d/%d jobs before timeout", len(out), n)
		}
		f.send(&Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: n - len(out)}})
		m := f.recv()
		if m.Type != MsgLeaseGrant {
			f.t.Fatalf("expected lease-grant, got %s", m.Type)
		}
		if m.LeaseGrant.Closed {
			f.t.Fatal("coordinator closed while leasing")
		}
		out = append(out, m.LeaseGrant.Leases...)
	}
	return out
}

// measureAsync drives a validator batch in the background.
func measureAsync(ctx context.Context, v *core.Validator, cfgs []ssdconf.Config) chan error {
	done := make(chan error, 1)
	go func() { done <- v.MeasureBatch(ctx, cfgs, v.Clusters()) }()
	return done
}

func distinctConfigs(t *testing.T, space *ssdconf.Space, n int) []ssdconf.Config {
	t.Helper()
	ref := space.FromDevice(ssd.Intel750())
	i, err := space.ParamIndex("QueueDepth")
	if err != nil {
		t.Fatal(err)
	}
	if vals := len(space.Params[i].Values); n > vals {
		t.Fatalf("need %d values on QueueDepth, grid has %d", n, vals)
	}
	out := make([]ssdconf.Config, n)
	for k := 0; k < n; k++ {
		cfg := ref.Clone()
		cfg[i] = k
		out[k] = cfg
	}
	return out
}

// startLoopbackWorker attaches one real worker to the coordinator over
// net.Pipe and returns its exit future.
func startLoopbackWorker(ctx context.Context, c *Coordinator, w *Worker) chan error {
	server, client := net.Pipe()
	go func() { _ = c.ServeConn(server) }()
	done := make(chan error, 1)
	go func() { done <- w.RunConn(ctx, client) }()
	return done
}

// TestWorkerDeathReassignsLeases kills a worker holding leases
// mid-batch: the coordinator must expire its leases immediately, a
// surviving worker must re-run them, and the validator's extended
// accounting law must still balance.
func TestWorkerDeathReassignsLeases(t *testing.T) {
	env := testEnv(t, 600, ssd.FaultProfile{})
	reg := obs.NewRegistry()
	coord := NewCoordinator(env, CoordinatorOptions{
		LeaseTTL:     time.Minute, // death, not TTL, must trigger reassignment
		PollInterval: 25 * time.Millisecond,
		Obs:          reg,
	})
	defer coord.Close()
	v, err := NewValidator(env)
	if err != nil {
		t.Fatal(err)
	}
	v.Backend = coord

	cfgs := distinctConfigs(t, v.Space, 2)
	jobs := len(cfgs) * len(v.Clusters())

	// The doomed worker grabs every job first, then dies without
	// answering.
	fake := dialFake(t, coord)
	fake.mustAccept("doomed", env.SpaceSig)
	batch := measureAsync(context.Background(), v, cfgs)
	leased := fake.leaseAtLeast(jobs)
	fake.conn.Close()

	// A real worker joins and must complete everything.
	ctx := context.Background()
	wdone := startLoopbackWorker(ctx, coord, &Worker{Name: "survivor", Parallel: 2})
	if err := <-batch; err != nil {
		t.Fatalf("batch after worker death: %v", err)
	}

	fc := coord.Counters()
	if fc.Expired < int64(len(leased)) {
		t.Fatalf("Expired = %d, want >= %d (dead worker's leases)", fc.Expired, len(leased))
	}
	if fc.Reassigned < int64(len(leased)) {
		t.Fatalf("Reassigned = %d, want >= %d", fc.Reassigned, len(leased))
	}
	if got := reg.Counter(MetricLeasesExpired).Value(); got != fc.Expired {
		t.Fatalf("registry expired = %d, counters say %d", got, fc.Expired)
	}

	// Accounting law with a remote backend: every MeasureTrace call is
	// exactly one of {local sim, cache hit, coalesced wait, remote result}.
	st := v.Stats()
	if st.SimRuns != 0 {
		t.Fatalf("local SimRuns = %d on a distributed run", st.SimRuns)
	}
	if st.RemoteResults != int64(jobs) {
		t.Fatalf("RemoteResults = %d, want %d", st.RemoteResults, jobs)
	}
	if got := st.SimRuns + st.CacheHits + st.CoalescedWaits + st.RemoteResults; got != int64(jobs) {
		t.Fatalf("accounting law: %d calls accounted, want %d", got, jobs)
	}

	coord.Close()
	if err := <-wdone; err != nil {
		t.Fatalf("surviving worker exit: %v", err)
	}
}

// TestDroppedResultExpiresAndReassigns holds leases past their TTL
// without replying (a dropped result message): the coordinator must
// reassign, and the late worker's eventual results must apply
// idempotently as duplicates.
func TestDroppedResultExpiresAndReassigns(t *testing.T) {
	env := testEnv(t, 600, ssd.FaultProfile{}, workload.Database)
	coord := NewCoordinator(env, CoordinatorOptions{
		LeaseTTL:     150 * time.Millisecond,
		PollInterval: 25 * time.Millisecond,
	})
	defer coord.Close()
	v, err := NewValidator(env)
	if err != nil {
		t.Fatal(err)
	}
	v.Backend = coord

	cfgs := distinctConfigs(t, v.Space, 2)
	jobs := len(cfgs) * len(v.Clusters())

	fake := dialFake(t, coord)
	fake.mustAccept("silent", env.SpaceSig)
	batch := measureAsync(context.Background(), v, cfgs)
	leased := fake.leaseAtLeast(jobs)
	// Sit on the leases: never answer, never disconnect.

	wdone := startLoopbackWorker(context.Background(), coord, &Worker{Name: "rescuer", Parallel: 2})
	if err := <-batch; err != nil {
		t.Fatalf("batch after dropped results: %v", err)
	}

	fc := coord.Counters()
	if fc.Expired < int64(len(leased)) {
		t.Fatalf("Expired = %d, want >= %d (TTL must reclaim silent leases)", fc.Expired, len(leased))
	}
	if fc.Reassigned < int64(len(leased)) {
		t.Fatalf("Reassigned = %d, want >= %d", fc.Reassigned, len(leased))
	}

	// The silent worker finally answers with stale results: all must be
	// dropped as duplicates without corrupting anything.
	results := make([]JobResult, len(leased))
	for i, l := range leased {
		results[i] = JobResult{LeaseID: l.ID, CfgKey: l.CfgKey, Name: l.Name,
			Perf: autodb.Perf{LatencyNS: -1, ThroughputBps: -1}, SimNS: 1}
	}
	fake.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "silent", Results: results, BusyNS: 1}})
	waitFor(t, func() bool { return coord.Counters().Duplicates >= int64(len(leased)) },
		"late results counted as duplicates")

	// Stale values must not have overwritten the real measurements.
	for _, cfg := range cfgs {
		p, err := v.MeasureTrace(context.Background(), cfg, string(workload.Database)+"#0", nil)
		if err != nil {
			t.Fatal(err)
		}
		if p.LatencyNS <= 0 {
			t.Fatalf("stale duplicate overwrote cache: %+v", p)
		}
	}

	coord.Close()
	<-wdone
}

// TestResultReorderAndDuplicates sends results out of order, twice, and
// for unknown keys; application must be idempotent.
func TestResultReorderAndDuplicates(t *testing.T) {
	env := testEnv(t, 600, ssd.FaultProfile{}, workload.Database)
	coord := NewCoordinator(env, CoordinatorOptions{PollInterval: 25 * time.Millisecond})
	defer coord.Close()

	cfgs := distinctConfigs(t, env.Space(), 2)
	type res struct {
		perf autodb.Perf
		err  error
	}
	resCh := make([]chan res, len(cfgs))
	for i, cfg := range cfgs {
		resCh[i] = make(chan res, 1)
		go func(i int, cfg ssdconf.Config) {
			p, err := coord.Measure(context.Background(), core.Job{Cfg: cfg, Name: "Database#0"})
			resCh[i] <- res{p, err}
		}(i, cfg)
	}

	fake := dialFake(t, coord)
	fake.mustAccept("crafty", env.SpaceSig)
	leases := fake.leaseAtLeast(len(cfgs))

	// Answer in reverse lease order, one message per result, with
	// distinguishable crafted perfs...
	for i := len(leases) - 1; i >= 0; i-- {
		l := leases[i]
		fake.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "crafty", Results: []JobResult{
			{LeaseID: l.ID, CfgKey: l.CfgKey, Name: l.Name,
				Perf: autodb.Perf{LatencyNS: int64(1000 + i), ThroughputBps: 1}, SimNS: 5},
		}}})
	}
	// ...then replay the whole batch (pure duplicates), plus one result
	// for a key nobody asked for.
	dup := make([]JobResult, len(leases))
	for i, l := range leases {
		dup[i] = JobResult{LeaseID: l.ID, CfgKey: l.CfgKey, Name: l.Name,
			Perf: autodb.Perf{LatencyNS: 1, ThroughputBps: 1}, SimNS: 5}
	}
	dup = append(dup, JobResult{LeaseID: 999, CfgKey: "no-such-cfg", Name: "Database#0",
		Perf: autodb.Perf{LatencyNS: 1}, SimNS: 1})
	fake.send(&Message{Type: MsgResult, Result: &ResultMsg{Worker: "crafty", Results: dup, BusyNS: 10}})

	// Every Measure call must resolve with its first-applied result.
	byKey := map[string]autodb.Perf{}
	for i, l := range leases {
		byKey[l.CfgKey] = autodb.Perf{LatencyNS: int64(1000 + i), ThroughputBps: 1}
	}
	for i, cfg := range cfgs {
		r := <-resCh[i]
		if r.err != nil {
			t.Fatalf("Measure(%d): %v", i, r.err)
		}
		want := byKey[cfg.Key()]
		if r.perf != want {
			t.Fatalf("Measure(%d) = %+v, want first-applied %+v", i, r.perf, want)
		}
	}
	waitFor(t, func() bool { return coord.Counters().Duplicates >= int64(len(dup)) },
		"replayed + unknown results counted as duplicates")
	if fc := coord.Counters(); fc.Expired != 0 || fc.Reassigned != 0 {
		t.Fatalf("no lease should have expired: %+v", fc)
	}
}

// TestHandshakeRejections covers both typed refusals, coordinator- and
// worker-side.
func TestHandshakeRejections(t *testing.T) {
	env := testEnv(t, 600, ssd.FaultProfile{}, workload.Database)

	t.Run("version", func(t *testing.T) {
		coord := NewCoordinator(env, CoordinatorOptions{})
		defer coord.Close()
		fake := dialFake(t, coord)
		fake.send(&Message{Type: MsgHello, Hello: &Hello{Worker: "old", Version: ProtocolVersion + 7}})
		m := fake.recv()
		if m.Type != MsgReject || m.Reject.Code != RejectVersion {
			t.Fatalf("want version reject, got %+v", m)
		}
		if !errors.Is(m.Reject.Err(), ErrVersionMismatch) {
			t.Fatalf("reject not typed: %v", m.Reject.Err())
		}
		if coord.Counters().HandshakeRejects != 1 {
			t.Fatalf("HandshakeRejects = %d, want 1", coord.Counters().HandshakeRejects)
		}
	})

	t.Run("space-mismatch", func(t *testing.T) {
		// A coordinator whose announced fingerprint cannot be reproduced
		// plays the role of a binary-skew peer for a REAL worker.
		skewed := *env
		skewed.SpaceSig = "deadbeefdeadbeef"
		coord := NewCoordinator(&skewed, CoordinatorOptions{})
		defer coord.Close()
		wdone := startLoopbackWorker(context.Background(), coord, &Worker{Name: "skewed"})
		err := <-wdone
		if !errors.Is(err, ErrSpaceMismatch) {
			t.Fatalf("worker exit = %v, want ErrSpaceMismatch", err)
		}
		fc := coord.Counters()
		if fc.HandshakeRejects != 1 {
			t.Fatalf("HandshakeRejects = %d, want 1", fc.HandshakeRejects)
		}
		if fc.Granted != 0 {
			t.Fatalf("a rejected worker was granted %d leases", fc.Granted)
		}
	})

	t.Run("fake-wrong-sig", func(t *testing.T) {
		coord := NewCoordinator(env, CoordinatorOptions{})
		defer coord.Close()
		fake := dialFake(t, coord)
		m := fake.handshake("liar", "0000000000000000")
		if m.Type != MsgReject || m.Reject.Code != RejectSpace {
			t.Fatalf("want space reject, got %+v", m)
		}
		if !errors.Is(m.Reject.Err(), ErrSpaceMismatch) {
			t.Fatalf("reject not typed: %v", m.Reject.Err())
		}
	})
}

// TestEnvValidation: unreconstructible workloads must fail at NewEnv,
// not on a worker.
func TestEnvValidation(t *testing.T) {
	_, err := NewEnv(ssdconf.DefaultConstraints(), false, ssd.FaultProfile{},
		map[string][]WorkloadSpec{"x": {{Category: "NoSuchCategory", Requests: 10, Seed: 1}}})
	if err == nil {
		t.Fatal("NewEnv accepted an unknown workload category")
	}
	if _, err := NewEnv(ssdconf.DefaultConstraints(), false, ssd.FaultProfile{}, nil); err == nil {
		t.Fatal("NewEnv accepted an empty workload map")
	}
}

// TestEnvCovers pins the fleet-compatibility predicate used by the CLIs
// to decide remote vs local validation per environment.
func TestEnvCovers(t *testing.T) {
	env := testEnv(t, 600, ssd.FaultProfile{}, workload.Database, workload.WebSearch)
	space := ssdconf.NewSpace(ssdconf.DefaultConstraints())
	if !env.Covers(space, []string{"Database"}, 600, 21) {
		t.Fatal("env must cover a subset of its clusters")
	}
	if env.Covers(space, []string{"KVStore"}, 600, 21) {
		t.Fatal("env covers a cluster it has no spec for")
	}
	if env.Covers(space, []string{"Database"}, 601, 21) {
		t.Fatal("env covers mismatched trace length")
	}
	if env.Covers(ssdconf.NewWhatIfSpace(ssdconf.DefaultConstraints()), []string{"Database"}, 600, 21) {
		t.Fatal("env covers a different space")
	}
}

// TestFleetConcurrentBackend runs a multi-worker fleet under heavy
// concurrent validator traffic with overlapping keys — the distributed
// singleflight must hold the accounting law and never run a key twice
// on the same validator.
func TestFleetConcurrentBackend(t *testing.T) {
	env := testEnv(t, 600, ssd.FaultProfile{})
	fleet, err := StartFleet(env, FleetOptions{
		Workers:      2,
		PollInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	v, err := NewValidator(env)
	if err != nil {
		t.Fatal(err)
	}
	v.Backend = fleet.Backend()

	cfgs := distinctConfigs(t, v.Space, 3)
	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for g := 0; g < callers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := v.MeasureBatch(context.Background(), cfgs, v.Clusters()); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	distinct := int64(len(cfgs) * len(v.Clusters()))
	st := v.Stats()
	calls := int64(callers) * distinct
	if st.RemoteResults != distinct {
		t.Fatalf("RemoteResults = %d, want %d distinct keys", st.RemoteResults, distinct)
	}
	if got := st.SimRuns + st.CacheHits + st.CoalescedWaits + st.RemoteResults; got != calls {
		t.Fatalf("accounting law: %d accounted, want %d", got, calls)
	}
	if st.Backend.Kind != core.BackendKindDist {
		t.Fatalf("Backend.Kind = %q, want %q", st.Backend.Kind, core.BackendKindDist)
	}
	if st.Backend.Jobs != distinct {
		t.Fatalf("backend Jobs = %d, want %d", st.Backend.Jobs, distinct)
	}
	if st.Backend.SimBusy <= 0 {
		t.Fatal("backend SimBusy not reported")
	}
}

// TestFleetTCPTransport exercises the real socket path end to end: a
// fleet with no loopback workers, one remote worker dialing TCP.
func TestFleetTCPTransport(t *testing.T) {
	env := testEnv(t, 600, ssd.FaultProfile{}, workload.Database)
	fleet, err := StartFleet(env, FleetOptions{
		Listen:       "127.0.0.1:0",
		PollInterval: 25 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	w := &Worker{Name: "tcp-worker", Parallel: 2}
	wdone := make(chan error, 1)
	go func() { wdone <- w.Run(context.Background(), fleet.Addr()) }()

	v, err := NewValidator(env)
	if err != nil {
		t.Fatal(err)
	}
	v.Backend = fleet.Backend()
	cfgs := distinctConfigs(t, v.Space, 2)
	if err := v.MeasureBatch(context.Background(), cfgs, v.Clusters()); err != nil {
		t.Fatal(err)
	}
	if got := v.Stats().RemoteResults; got != int64(len(cfgs)) {
		t.Fatalf("RemoteResults = %d, want %d", got, len(cfgs))
	}
	if w.Jobs() != int64(len(cfgs)) {
		t.Fatalf("worker measured %d jobs, want %d", w.Jobs(), len(cfgs))
	}

	fleet.Close()
	if err := <-wdone; err != nil {
		t.Fatalf("worker exit after close: %v", err)
	}
}

// waitFor polls a condition with a deadline (counters are updated
// asynchronously to the fake worker's sends).
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
