package dist

import (
	"fmt"
	"strconv"
	"strings"

	"autoblox/internal/core"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// WorkloadSpec is one seeded synthetic trace: category + generator
// options. Workers re-derive the identical request stream from the
// seed, so no trace data ever crosses the wire. Blktrace-file workloads
// have no such portable description and are not distributable.
type WorkloadSpec struct {
	Category string `json:"category"`
	Requests int    `json:"requests"`
	Seed     int64  `json:"seed"`
	// TrimRatio and Streams mirror workload.Options: omitted (zero)
	// values reproduce the pre-host-interface request streams, so specs
	// serialized by older coordinators keep their meaning.
	TrimRatio float64 `json:"trim_ratio,omitempty"`
	Streams   int     `json:"streams,omitempty"`
}

// options converts the spec to generator options.
func (sp WorkloadSpec) options() workload.Options {
	return workload.Options{
		Requests: sp.Requests, Seed: sp.Seed,
		TrimRatio: sp.TrimRatio, Streams: sp.Streams,
	}
}

// Env is the portable measurement environment a coordinator ships to
// its workers: everything needed to reconstruct the exact parameter
// space (constraints + what-if bounds + fault profile) and every
// cluster's trace generators. SpaceSig is the coordinator's
// ssdconf.Space fingerprint; workers recompute it from their own
// reconstruction and the handshake refuses on disagreement.
type Env struct {
	Cons   ssdconf.Constraints `json:"constraints"`
	WhatIf bool                `json:"what_if,omitempty"`
	Faults ssd.FaultProfile    `json:"faults"`
	// Objectives is the tuning objective spec's axis list (absent =
	// scalar). It ships with the env because the spec is folded into
	// the space signature: a worker whose binary reconstructs a
	// different objective set is rejected at handshake, exactly like a
	// grid or fault-profile mismatch.
	Objectives []string                  `json:"objectives,omitempty"`
	Workloads  map[string][]WorkloadSpec `json:"workloads"`
	SpaceSig   string                    `json:"space_sig"`
}

// NewEnv builds and fingerprints an environment, validating that every
// workload spec is reconstructible.
func NewEnv(cons ssdconf.Constraints, whatIf bool, faults ssd.FaultProfile, workloads map[string][]WorkloadSpec) (*Env, error) {
	e := &Env{Cons: cons, WhatIf: whatIf, Faults: faults, Workloads: workloads}
	if len(workloads) == 0 {
		return nil, fmt.Errorf("dist: env has no workloads")
	}
	if _, err := e.Sources(); err != nil {
		return nil, err
	}
	e.SpaceSig = e.Space().Signature()
	return e, nil
}

// SetObjectives declares the fleet's objective axes and
// re-fingerprints the env. Scalar callers never touch it, keeping
// their envs (and handshake signatures) byte-identical to pre-Pareto
// coordinators.
func (e *Env) SetObjectives(spec ssdconf.ObjectiveSpec) {
	e.Objectives = spec.Names()
	e.SpaceSig = e.Space().Signature()
}

// Space reconstructs the parameter space the env describes, fault
// profile and objective spec stamped.
func (e *Env) Space() *ssdconf.Space {
	var s *ssdconf.Space
	if e.WhatIf {
		s = ssdconf.NewWhatIfSpace(e.Cons)
	} else {
		s = ssdconf.NewSpace(e.Cons)
	}
	s.Faults = e.Faults
	// Unknown axis names (an env from a newer coordinator) leave the
	// spec zero; the resulting signature mismatch rejects the pairing
	// at handshake instead of silently measuring the wrong objective.
	if spec, err := ssdconf.ObjectiveSpecFromNames(e.Objectives); err == nil {
		s.Objectives = spec
	}
	return s
}

// Sources materializes the per-cluster streaming source factories.
func (e *Env) Sources() (map[string][]trace.SourceFactory, error) {
	out := make(map[string][]trace.SourceFactory, len(e.Workloads))
	for cl, specs := range e.Workloads {
		fs := make([]trace.SourceFactory, len(specs))
		for i, sp := range specs {
			f, err := workload.Factory(workload.Category(sp.Category), sp.options())
			if err != nil {
				return nil, fmt.Errorf("dist: cluster %q: %w", cl, err)
			}
			fs[i] = f
		}
		out[cl] = fs
	}
	return out, nil
}

// NewValidator builds a validator over the environment — the one shared
// construction used coordinator-side and worker-side, so both ends
// measure under bit-identical spaces and traces.
func NewValidator(e *Env) (*core.Validator, error) {
	groups, err := e.Sources()
	if err != nil {
		return nil, err
	}
	return core.NewValidatorSources(e.Space(), groups), nil
}

// FactoryFor resolves a canonical trace name "<cluster>#<i>" to its
// generator.
func (e *Env) FactoryFor(name string) (trace.SourceFactory, error) {
	cut := strings.LastIndexByte(name, '#')
	if cut < 0 {
		return nil, fmt.Errorf("dist: trace name %q has no cluster separator", name)
	}
	cl, idxs := name[:cut], name[cut+1:]
	idx, err := strconv.Atoi(idxs)
	if err != nil {
		return nil, fmt.Errorf("dist: trace name %q: bad index: %w", name, err)
	}
	specs, ok := e.Workloads[cl]
	if !ok {
		return nil, fmt.Errorf("dist: unknown workload cluster %q", cl)
	}
	if idx < 0 || idx >= len(specs) {
		return nil, fmt.Errorf("dist: cluster %q has no trace %d", cl, idx)
	}
	sp := specs[idx]
	return workload.Factory(workload.Category(sp.Category), sp.options())
}

// Covers reports whether a fleet built from this env can serve a
// validator over the given space and clusters: matching space
// fingerprint and a spec for every cluster at the same generator
// options. Callers use it to fall back to local validation for
// environments the fleet was not built for.
func (e *Env) Covers(space *ssdconf.Space, clusters []string, requests int, seed int64) bool {
	if space.Signature() != e.SpaceSig {
		return false
	}
	for _, cl := range clusters {
		specs := e.Workloads[cl]
		if len(specs) == 0 {
			return false
		}
		for _, sp := range specs {
			if sp.Requests != requests || sp.Seed != seed {
				return false
			}
		}
	}
	return true
}
