package dist

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"autoblox/internal/core"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/workload"
)

// TestTuneSerialDistributedEquivalence is the acceptance-criteria test:
// the same tuning run executed serially, in-process-parallel, on a
// 1-worker fleet, and on a 4-worker fleet must write byte-identical
// final checkpoints — cache contents, trajectory, RNG draw count, seen
// set, everything. Two scenarios cover two target categories, one with
// fault injection enabled (Rate > 0), so the determinism claim holds
// under die failures and transient I/O errors too.
func TestTuneSerialDistributedEquivalence(t *testing.T) {
	scenarios := []struct {
		name   string
		target workload.Category
		faults ssd.FaultProfile
	}{
		{name: "database-clean", target: workload.Database, faults: ssd.FaultProfile{}},
		{name: "websearch-faulted", target: workload.WebSearch, faults: ssd.FaultProfile{Rate: 0.02, Seed: 9}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			env := testEnv(t, 1500, sc.faults,
				workload.Database, workload.WebSearch, workload.CloudStorage)

			// tune runs one full tuning session to completion and returns the
			// final checkpoint bytes. backend == nil selects the in-process
			// pool at the given parallelism; otherwise the fleet executes
			// every simulation.
			tune := func(label string, parallel int, backend core.Backend) []byte {
				t.Helper()
				v, err := NewValidator(env)
				if err != nil {
					t.Fatal(err)
				}
				v.Parallel = parallel
				v.Backend = backend
				ref := v.Space.FromDevice(ssd.Intel750())
				g, err := core.NewGrader(context.Background(), v, ref, core.DefaultAlpha, core.DefaultBeta)
				if err != nil {
					t.Fatal(err)
				}
				ckpt := filepath.Join(t.TempDir(), label+".json")
				tuner, err := core.NewTuner(v.Space, v, g, core.TunerOptions{
					Seed: 5, MaxIterations: 5, SGDSteps: 3, Checkpoint: ckpt,
				})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := tuner.Tune(context.Background(), string(sc.target), []ssdconf.Config{ref}); err != nil {
					t.Fatal(err)
				}
				data, err := os.ReadFile(ckpt)
				if err != nil {
					t.Fatal(err)
				}
				return data
			}

			serial := tune("serial", 1, nil)
			parallel := tune("parallel", 8, nil)

			distTune := func(label string, workers int) []byte {
				t.Helper()
				fleet, err := StartFleet(env, FleetOptions{
					Workers:        workers,
					WorkerParallel: 2,
					PollInterval:   25 * time.Millisecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer fleet.Close()
				return tune(label, 0, fleet.Backend())
			}
			dist1 := distTune("dist-1", 1)
			dist4 := distTune("dist-4", 4)

			for _, cmp := range []struct {
				label string
				got   []byte
			}{{"in-process-parallel", parallel}, {"1-worker fleet", dist1}, {"4-worker fleet", dist4}} {
				if !bytes.Equal(serial, cmp.got) {
					t.Errorf("%s checkpoint differs from serial (%d vs %d bytes)",
						cmp.label, len(cmp.got), len(serial))
				}
			}
			if t.Failed() {
				t.Fatalf("distribution is observable in checkpoint bytes; serial checkpoint:\n%.2000s", serial)
			}
		})
	}
}
