package dist

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"autoblox/internal/core"
	"autoblox/internal/obs"
)

// FleetOptions configures StartFleet.
type FleetOptions struct {
	// Workers is the number of in-process loopback workers (net.Pipe
	// transport, no sockets). 0 is valid when Listen is set: the fleet
	// then consists only of remote workers.
	Workers int
	// Listen, when non-empty, accepts remote autobloxd-worker
	// connections on this TCP address ("host:port", ":0" for ephemeral).
	Listen string
	// WorkerParallel bounds each loopback worker's concurrent
	// simulations (0 = GOMAXPROCS).
	WorkerParallel int
	// BatchSize caps leases per pull on loopback workers.
	BatchSize int
	// SimTimeout/MaxRetries configure the loopback workers' validators.
	SimTimeout time.Duration
	MaxRetries int
	// LeaseTTL/PollInterval/BatchMax tune the coordinator (see
	// CoordinatorOptions).
	LeaseTTL     time.Duration
	PollInterval time.Duration
	BatchMax     int
	// Obs, when set, receives fleet counters, per-worker busy
	// histograms, and the loopback workers' validator metrics.
	Obs *obs.Registry
	// Clock/Hedge/HedgeAfter/Quarantine/CrossCheck/CrossCheckSeed pass
	// straight through to CoordinatorOptions (defenses are opt-in; see
	// the field docs there).
	Clock          Clock
	Hedge          bool
	HedgeAfter     time.Duration
	Quarantine     bool
	CrossCheck     float64
	CrossCheckSeed int64
	// WrapConn, when set, wraps every accepted remote connection before
	// the coordinator serves it — the chaos-harness hook
	// (chaos.Transport.Wrap injects deterministic faults on the server
	// side of the stream). Loopback workers are not wrapped.
	WrapConn func(net.Conn) net.Conn
}

// Fleet bundles a coordinator with its loopback workers and optional
// TCP listener. Use Backend() as the Validator.Backend and Close when
// the run finishes.
type Fleet struct {
	coord  *Coordinator
	ln     net.Listener
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// StartFleet builds a coordinator over env and connects Workers
// in-process loopback workers; with Listen set it additionally accepts
// remote workers.
func StartFleet(env *Env, opts FleetOptions) (*Fleet, error) {
	if opts.Workers <= 0 && opts.Listen == "" {
		return nil, fmt.Errorf("dist: fleet needs loopback workers or a listen address")
	}
	coord := NewCoordinator(env, CoordinatorOptions{
		LeaseTTL:       opts.LeaseTTL,
		PollInterval:   opts.PollInterval,
		BatchMax:       opts.BatchMax,
		Obs:            opts.Obs,
		Clock:          opts.Clock,
		Hedge:          opts.Hedge,
		HedgeAfter:     opts.HedgeAfter,
		Quarantine:     opts.Quarantine,
		CrossCheck:     opts.CrossCheck,
		CrossCheckSeed: opts.CrossCheckSeed,
	})
	ctx, cancel := context.WithCancel(context.Background())
	f := &Fleet{coord: coord, cancel: cancel}
	if opts.Listen != "" {
		ln, err := net.Listen("tcp", opts.Listen)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("dist: fleet listen: %w", err)
		}
		f.ln = ln
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			if wrap := opts.WrapConn; wrap != nil {
				f.serveWrapped(ln, wrap)
				return
			}
			_ = coord.Serve(ln)
		}()
	}
	for i := 0; i < opts.Workers; i++ {
		server, client := net.Pipe()
		w := &Worker{
			Name:       fmt.Sprintf("loopback-%d", i),
			Parallel:   opts.WorkerParallel,
			BatchSize:  opts.BatchSize,
			SimTimeout: opts.SimTimeout,
			MaxRetries: opts.MaxRetries,
			Obs:        opts.Obs,
		}
		f.wg.Add(2)
		go func() {
			defer f.wg.Done()
			_ = coord.ServeConn(server)
		}()
		go func() {
			defer f.wg.Done()
			_ = w.RunConn(ctx, client)
		}()
	}
	return f, nil
}

// serveWrapped is Coordinator.Serve with every accepted conn passed
// through the WrapConn hook first.
func (f *Fleet) serveWrapped(ln net.Listener, wrap func(net.Conn) net.Conn) {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = f.coord.ServeConn(wrap(conn))
		}()
	}
}

// Backend returns the fleet's coordinator as a validator backend.
func (f *Fleet) Backend() core.Backend { return f.coord }

// Coordinator exposes the underlying coordinator (counters, env).
func (f *Fleet) Coordinator() *Coordinator { return f.coord }

// Status returns the coordinator's live fleet view — wire it into the
// introspection server's /statusz provider.
func (f *Fleet) Status() FleetStatus { return f.coord.StatusSnapshot() }

// Addr returns the TCP listener address ("" without Listen) — handy
// for printing the -connect endpoint and for tests using ":0".
func (f *Fleet) Addr() string {
	if f.ln == nil {
		return ""
	}
	return f.ln.Addr().String()
}

// Close shuts the fleet down: pending measurements fail with ErrClosed,
// workers exit on their next lease pull, and the listener closes. It
// blocks until every loopback worker and the accept loop return.
func (f *Fleet) Close() {
	f.coord.Close()
	if f.ln != nil {
		f.ln.Close()
	}
	f.wg.Wait()
	f.cancel()
}
