package dist

import (
	"bytes"
	"reflect"
	"testing"

	"autoblox/internal/autodb"
)

// fuzzSeedMessages is one representative frame per message type.
func fuzzSeedMessages() []*Message {
	return []*Message{
		{Type: MsgHello, Hello: &Hello{Worker: "w0", Version: ProtocolVersion}},
		{Type: MsgWelcome, Welcome: &Welcome{LeaseTTLMS: 30000, Env: Env{
			WhatIf:   true,
			SpaceSig: "0123456789abcdef",
			Workloads: map[string][]WorkloadSpec{
				"Database": {{Category: "Database", Requests: 6000, Seed: 42}},
			},
		}}},
		{Type: MsgConfirm, Confirm: &Confirm{SpaceSig: "0123456789abcdef"}},
		{Type: MsgAccept},
		{Type: MsgReject, Reject: &Reject{Code: RejectSpace, Detail: "grid skew"}},
		{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: 8}},
		{Type: MsgLeaseGrant, LeaseGrant: &LeaseGrant{Leases: []Lease{
			{ID: 7, CfgKey: "0.1.2", Cfg: []int{0, 1, 2}, Name: "Database#0"},
		}}},
		{Type: MsgLeaseGrant, LeaseGrant: &LeaseGrant{Closed: true}},
		{Type: MsgResult, Result: &ResultMsg{Worker: "w0", BusyNS: 12345, Results: []JobResult{
			{LeaseID: 7, CfgKey: "0.1.2", Name: "Database#0", SimNS: 999,
				Perf: autodb.Perf{LatencyNS: 1, P99LatencyNS: 2, ThroughputBps: 3.5, EnergyJoules: 4.5, PowerWatts: 5.5}},
			{LeaseID: 8, CfgKey: "0.1.3", Name: "Database#0", Err: "boom"},
		}}},
	}
}

// TestWireRoundTrip: every seed message survives encode→decode exactly.
func TestWireRoundTrip(t *testing.T) {
	for _, m := range fuzzSeedMessages() {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			t.Fatalf("encode %s: %v", m.Type, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode %s: %v", m.Type, err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Fatalf("%s round trip drifted:\n in  %+v\n out %+v", m.Type, m, got)
		}
	}
}

// FuzzWireCodec mirrors FuzzParamsJSON for the lease/result wire
// encoding: Decode must never panic on arbitrary frames, and for any
// frame it accepts, encode→decode→encode must reach a fixed point.
func FuzzWireCodec(f *testing.F) {
	for _, m := range fuzzSeedMessages() {
		var buf bytes.Buffer
		if err := Encode(&buf, m); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// Malformed seeds steer the fuzzer at the validators.
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, '{', '}'})
	f.Add([]byte{0, 0, 0, 2, '{', '}'})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected frames only need to not panic
		}
		var first bytes.Buffer
		if err := Encode(&first, m); err != nil {
			t.Fatalf("accepted message failed to re-encode: %v", err)
		}
		m2, err := Decode(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("decode(encode(m)) != m:\n in  %+v\n out %+v", m, m2)
		}
		var second bytes.Buffer
		if err := Encode(&second, m2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("encode not a fixed point:\n 1st %q\n 2nd %q", first.Bytes(), second.Bytes())
		}
	})
}
