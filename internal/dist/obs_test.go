package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"autoblox/internal/core"
	"autoblox/internal/obs"
	"autoblox/internal/obs/httpobs"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/workload"
)

// syncBuf is a goroutine-safe io.Writer for capturing trace output
// while workers and the coordinator are still emitting.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// traceEvent is the subset of the Chrome trace_event schema the
// correlation tests care about.
type traceEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args"`
}

func parseTrace(t *testing.T, jsonl string) []traceEvent {
	t.Helper()
	var out []traceEvent
	for _, line := range strings.Split(jsonl, "\n") {
		if strings.TrimSpace(line) == "" {
			continue
		}
		var ev traceEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

// TestStatsPushAggregation pins the metrics-over-the-wire contract: a
// worker with its own registry and PushStats set ships delta snapshots
// after each result batch, and the coordinator folds them into the
// fleet registry as per-worker labelled series matching the worker's
// own totals exactly.
func TestStatsPushAggregation(t *testing.T) {
	env := testEnv(t, 600, ssd.FaultProfile{}, workload.Database)
	coordReg := obs.NewRegistry()
	coord := NewCoordinator(env, CoordinatorOptions{
		PollInterval: 25 * time.Millisecond,
		Obs:          coordReg,
	})
	defer coord.Close()
	v, err := NewValidator(env)
	if err != nil {
		t.Fatal(err)
	}
	v.Backend = coord

	workerReg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wdone := startLoopbackWorker(ctx, coord, &Worker{
		Name: "pusher", Parallel: 2, Obs: workerReg, PushStats: true,
	})

	cfgs := distinctConfigs(t, v.Space, 2)
	if err := v.MeasureBatch(context.Background(), cfgs, v.Clusters()); err != nil {
		t.Fatal(err)
	}

	// The final push trails the last result frame; poll until the fleet
	// registry catches up with the worker's own counter.
	series := core.MetricSimRuns + `{worker="pusher"}`
	want := workerReg.Counter(core.MetricSimRuns).Value()
	if want == 0 {
		t.Fatal("worker registry recorded no simulations")
	}
	deadline := time.Now().Add(5 * time.Second)
	var got int64
	for {
		got = coordReg.Snapshot().Counters[series]
		if got == want || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got != want {
		t.Fatalf("fleet registry %s = %d, worker's own total %d", series, got, want)
	}

	// Histograms travel too, bucket-for-bucket.
	hw := workerReg.Snapshot().Histograms[core.MetricSimTime]
	hf := coordReg.Snapshot().Histograms[core.MetricSimTime+`{worker="pusher"}`]
	if hf.Count != hw.Count || hf.Sum != hw.Sum {
		t.Fatalf("absorbed histogram count/sum %d/%d, worker's own %d/%d", hf.Count, hf.Sum, hw.Count, hw.Sum)
	}

	if fc := coord.Counters(); fc.StatsPushes == 0 {
		t.Fatal("coordinator counted no stats pushes")
	}
	if n := coordReg.Counter(MetricStatsPushes).Value(); n == 0 {
		t.Fatal("registry counted no stats pushes")
	}

	coord.Close()
	if err := <-wdone; err != nil {
		t.Fatalf("worker exit: %v", err)
	}
}

// TestTraceCorrelation pins cross-process trace assembly: the
// coordinator replays accepted results as "lease" (queue residency) and
// "worker-sim" (clock-corrected execution) spans carrying the lease ID
// and fleet trace ID, correlating with the worker-side "worker-job"
// span for the same lease.
func TestTraceCorrelation(t *testing.T) {
	var buf syncBuf
	obs.SetTracer(obs.NewTracer(&buf))
	defer obs.SetTracer(nil)

	env := testEnv(t, 600, ssd.FaultProfile{}, workload.Database)
	coord := NewCoordinator(env, CoordinatorOptions{PollInterval: 25 * time.Millisecond})
	v, err := NewValidator(env)
	if err != nil {
		t.Fatal(err)
	}
	v.Backend = coord

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wdone := startLoopbackWorker(ctx, coord, &Worker{Name: "traced", Parallel: 2})

	cfgs := distinctConfigs(t, v.Space, 2)
	if err := v.MeasureBatch(context.Background(), cfgs, v.Clusters()); err != nil {
		t.Fatal(err)
	}
	coord.Close()
	if err := <-wdone; err != nil {
		t.Fatalf("worker exit: %v", err)
	}

	// All emitters have exited; the buffer is now quiescent. Index the
	// replayed coordinator spans and the worker-side spans by lease ID.
	byName := map[string][]traceEvent{}
	for _, ev := range parseTrace(t, buf.String()) {
		byName[ev.Name] = append(byName[ev.Name], ev)
	}
	for _, name := range []string{"lease", "worker-sim", "worker-job"} {
		if len(byName[name]) == 0 {
			t.Fatalf("no %q events in merged trace; have %v", name, keys(byName))
		}
	}

	sims := map[string]traceEvent{}
	for _, ev := range byName["worker-sim"] {
		sims[ev.Args["lease"]] = ev
	}
	jobs := map[string]traceEvent{}
	for _, ev := range byName["worker-job"] {
		jobs[ev.Args["lease"]] = ev
	}
	traceID := byName["lease"][0].Args["trace_id"]
	if traceID == "" {
		t.Fatal("lease span missing trace_id")
	}
	for _, lease := range byName["lease"] {
		id := lease.Args["lease"]
		sim, ok := sims[id]
		if !ok {
			t.Fatalf("lease %s has no correlated worker-sim span", id)
		}
		if _, ok := jobs[id]; !ok {
			t.Fatalf("lease %s has no correlated worker-job span", id)
		}
		if lease.Args["worker"] != "traced" || sim.Args["worker"] != "traced" {
			t.Fatalf("spans for lease %s not attributed to worker: %v / %v", id, lease.Args, sim.Args)
		}
		if sim.Args["trace_id"] != traceID || lease.Args["trace_id"] != traceID {
			t.Fatalf("trace_id mismatch for lease %s", id)
		}
		// Worker spans render on dedicated fleet lanes (>= 101), away
		// from the tuner's in-process lanes.
		if lease.Tid < 101 || sim.Tid != lease.Tid {
			t.Fatalf("lease %s lanes: lease tid %d, sim tid %d", id, lease.Tid, sim.Tid)
		}
	}
}

func keys(m map[string][]traceEvent) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestFlakyJobExpiryWarning pins the flight-recorder satellite: when
// the same job expires twice the recorder carries a warn-flaky-job
// event, and per-worker BackendStats attribute the expiries to the
// holder and the reassignments to the receiving worker.
func TestFlakyJobExpiryWarning(t *testing.T) {
	rec := obs.NewFlightRecorder(512)
	obs.SetFlightRecorder(rec)
	defer obs.SetFlightRecorder(nil)

	env := testEnv(t, 600, ssd.FaultProfile{}, workload.Database)
	coord := NewCoordinator(env, CoordinatorOptions{
		LeaseTTL:     150 * time.Millisecond,
		PollInterval: 25 * time.Millisecond,
	})
	defer coord.Close()
	v, err := NewValidator(env)
	if err != nil {
		t.Fatal(err)
	}
	v.Backend = coord

	cfgs := distinctConfigs(t, v.Space, 1)
	jobs := len(cfgs) * len(v.Clusters())

	fake := dialFake(t, coord)
	fake.mustAccept("flaky", env.SpaceSig)
	batch := measureAsync(context.Background(), v, cfgs)

	// Round 1: lease everything, sit silent past the TTL. Expiry is
	// driven by lease requests, so the same worker's round-2 pull is
	// what reclaims and immediately re-takes the overdue jobs.
	fake.leaseAtLeast(jobs)
	fake.leaseAtLeast(jobs)
	if got := coord.Counters().Expired; got < int64(jobs) {
		t.Fatalf("expired = %d after re-lease, want >= %d", got, jobs)
	}

	// A healthy worker joins: its polling expires the silent round-2
	// leases a second time (warn threshold) and rescues the batch.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wdone := startLoopbackWorker(ctx, coord, &Worker{Name: "rescuer", Parallel: 2})
	if err := <-batch; err != nil {
		t.Fatalf("batch after flaky worker: %v", err)
	}

	var warns int
	for _, ev := range rec.Events() {
		if ev.Kind == "warn-flaky-job" {
			warns++
		}
	}
	if warns < jobs {
		t.Fatalf("%d warn-flaky-job events, want >= %d (one per twice-expired job)\n%+v", warns, jobs, rec.Events())
	}
	kinds := map[string]bool{}
	for _, ev := range rec.Events() {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{"worker-connected", "lease-expired", "lease-reassigned"} {
		if !kinds[k] {
			t.Fatalf("flight recorder missing %q events; have %v", k, kinds)
		}
	}

	st := coord.Stats()
	if st.LeasesExpired < int64(2*jobs) || st.LeasesReassigned < int64(2*jobs) {
		t.Fatalf("backend stats expired/reassigned = %d/%d, want >= %d each", st.LeasesExpired, st.LeasesReassigned, 2*jobs)
	}
	rows := map[string]core.WorkerBackendStats{}
	for _, w := range st.Workers {
		rows[w.Name] = w
	}
	flaky, ok := rows["flaky"]
	if !ok {
		t.Fatalf("no per-worker row for flaky; rows %v", rows)
	}
	if flaky.LeasesExpired < int64(2*jobs) {
		t.Fatalf("flaky expiries = %d, want >= %d (expiry attributed to holder)", flaky.LeasesExpired, 2*jobs)
	}
	if flaky.LeasesReassigned < int64(jobs) {
		t.Fatalf("flaky reassignments = %d, want >= %d (round-2 grants were reassignments)", flaky.LeasesReassigned, jobs)
	}
	rescuer, ok := rows["rescuer"]
	if !ok || rescuer.Jobs != int64(jobs) {
		t.Fatalf("rescuer row %+v, want %d jobs", rescuer, jobs)
	}

	coord.Close()
	if err := <-wdone; err != nil {
		t.Fatalf("rescuer exit: %v", err)
	}
}

// TestTuneInstrumentedEquivalence is the acceptance-criteria test for
// the control plane: a 4-worker TCP tune with EVERYTHING on — fleet
// registry, stats-pushing workers, global tracer, flight recorder, and
// a live introspection server being scraped — must write a checkpoint
// byte-identical to a bare uninstrumented serial run. It also pins the
// live endpoints: per-worker series on the coordinator's /metrics,
// worker rows on /statusz, and tune progress on /tunez.
func TestTuneInstrumentedEquivalence(t *testing.T) {
	env := testEnv(t, 900, ssd.FaultProfile{})

	tune := func(label string, parallel int, backend core.Backend, st *obs.TuneStatus) []byte {
		t.Helper()
		v, err := NewValidator(env)
		if err != nil {
			t.Fatal(err)
		}
		v.Parallel = parallel
		v.Backend = backend
		ref := v.Space.FromDevice(ssd.Intel750())
		g, err := core.NewGrader(context.Background(), v, ref, core.DefaultAlpha, core.DefaultBeta)
		if err != nil {
			t.Fatal(err)
		}
		ckpt := filepath.Join(t.TempDir(), label+".json")
		tuner, err := core.NewTuner(v.Space, v, g, core.TunerOptions{
			Seed: 5, MaxIterations: 4, SGDSteps: 2, Checkpoint: ckpt,
			OnIteration:  st.Update,
			OnCheckpoint: st.MarkCheckpoint,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := tuner.Tune(context.Background(), string(workload.Database), []ssdconf.Config{ref}); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	// Bare baseline: no registry, no tracer, no recorder, no HTTP. A nil
	// *TuneStatus exercises the nil-safe hooks.
	serial := tune("serial", 1, nil, nil)

	// Fully instrumented 4-worker TCP fleet.
	var tbuf syncBuf
	obs.SetTracer(obs.NewTracer(&tbuf))
	defer obs.SetTracer(nil)
	rec := obs.NewFlightRecorder(1024)
	obs.SetFlightRecorder(rec)
	defer obs.SetFlightRecorder(nil)

	reg := obs.NewRegistry()
	fleet, err := StartFleet(env, FleetOptions{
		Listen:       "127.0.0.1:0",
		PollInterval: 25 * time.Millisecond,
		Obs:          reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wdone []chan error
	for i := 0; i < 4; i++ {
		w := &Worker{
			Name:      fmt.Sprintf("tcp-%d", i),
			Parallel:  2,
			Obs:       obs.NewRegistry(),
			PushStats: true,
		}
		done := make(chan error, 1)
		wdone = append(wdone, done)
		go func() { done <- w.Run(ctx, fleet.Addr()) }()
	}

	st := obs.NewTuneStatus()
	st.SetSims(reg.Counter(core.MetricSimRuns))
	st.Begin(string(workload.Database), 4)
	srv, err := httpobs.Start("127.0.0.1:0", httpobs.Options{
		Registry: reg,
		Tune:     st,
		Flight:   rec,
		Status:   func() any { return fleet.Status() },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	instrumented := tune("instrumented", 0, fleet.Backend(), st)
	st.Done()

	if !bytes.Equal(serial, instrumented) {
		t.Fatalf("instrumentation is observable in checkpoint bytes (%d vs %d bytes)",
			len(instrumented), len(serial))
	}

	scrape := func(path string) string {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		return string(body)
	}

	// /metrics must carry fleet counters and per-worker pushed series.
	// The last push trails the final result frame, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	var metrics string
	for {
		metrics = scrape("/metrics")
		if strings.Contains(metrics, core.MetricSimRuns+`{worker="tcp-`) || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for _, want := range []string{
		"# TYPE " + MetricLeasesGranted + " counter",
		core.MetricSimRuns + `{worker="tcp-`,
		MetricStatsPushes,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var status FleetStatus
	if err := json.Unmarshal([]byte(extractFleet(t, scrape("/statusz"))), &status); err != nil {
		t.Fatalf("/statusz fleet not decodable: %v", err)
	}
	if len(status.Workers) != 4 || status.LeasesGranted == 0 || status.StatsPushes == 0 {
		t.Fatalf("/statusz fleet view: %+v", status)
	}
	for _, w := range status.Workers {
		if !strings.HasPrefix(w.Name, "tcp-") || !w.Connected {
			t.Fatalf("worker row %+v", w)
		}
	}

	var snap obs.TuneSnapshot
	if err := json.Unmarshal([]byte(scrape("/tunez")), &snap); err != nil {
		t.Fatalf("/tunez: %v", err)
	}
	// Sims stays 0 here: simulations ran on remote workers, whose counts
	// arrive as {worker=...} labelled series rather than the bare local
	// counter the sims gauge tracks.
	if snap.Target != string(workload.Database) || snap.Iteration != 4 || snap.CheckpointPath == "" {
		t.Fatalf("/tunez after tune: %+v", snap)
	}
	if snap.ElapsedNS <= 0 || snap.CheckpointAgeNS < 0 {
		t.Fatalf("/tunez freshness: %+v", snap)
	}

	var events []obs.FlightEvent
	if err := json.Unmarshal([]byte(scrape("/eventz")), &events); err != nil {
		t.Fatalf("/eventz: %v", err)
	}
	kinds := map[string]bool{}
	for _, ev := range events {
		kinds[ev.Kind] = true
	}
	if !kinds["worker-connected"] || !kinds["checkpoint"] {
		t.Fatalf("/eventz kinds %v, want worker-connected and checkpoint", kinds)
	}

	// Orderly teardown before reading the trace buffer.
	fleet.Close()
	cancel()
	for i, done := range wdone {
		if err := <-done; err != nil && ctx.Err() == nil {
			t.Fatalf("worker %d exit: %v", i, err)
		}
	}
	found := map[string]bool{}
	for _, ev := range parseTrace(t, tbuf.String()) {
		found[ev.Name] = true
	}
	for _, name := range []string{"lease", "worker-sim", "worker-job"} {
		if !found[name] {
			t.Errorf("merged trace missing %q spans", name)
		}
	}
}

// extractFleet pulls the "fleet" sub-document out of a /statusz body.
func extractFleet(t *testing.T, body string) string {
	t.Helper()
	var doc struct {
		Fleet json.RawMessage `json:"fleet"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if len(doc.Fleet) == 0 {
		t.Fatalf("/statusz has no fleet key:\n%s", body)
	}
	return string(doc.Fleet)
}
