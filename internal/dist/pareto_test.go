package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"autoblox/internal/core"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/workload"
)

// TestParetoFrontDeterminism is the multi-objective acceptance test:
// one Pareto tune (perf,power,lifetime) executed serially, in-process
// parallel, on a 1-worker fleet, and on a 4-worker fleet must write
// byte-identical final checkpoints — including the serialized front —
// with fault injection enabled.
func TestParetoFrontDeterminism(t *testing.T) {
	env := testEnv(t, 1500, ssd.FaultProfile{Rate: 0.02, Seed: 9},
		workload.Database, workload.WebSearch, workload.CloudStorage)
	spec, err := ssdconf.ParseObjectiveSpec("perf,power,lifetime")
	if err != nil {
		t.Fatal(err)
	}
	env.SetObjectives(spec)

	tune := func(label string, parallel int, backend core.Backend) []byte {
		t.Helper()
		v, err := NewValidator(env)
		if err != nil {
			t.Fatal(err)
		}
		v.Parallel = parallel
		v.Backend = backend
		if v.Space.Objectives.Scalar() {
			t.Fatal("env did not propagate the objective spec into the space")
		}
		ref := v.Space.FromDevice(ssd.Intel750())
		g, err := core.NewGrader(context.Background(), v, ref, core.DefaultAlpha, core.DefaultBeta)
		if err != nil {
			t.Fatal(err)
		}
		ckpt := filepath.Join(t.TempDir(), label+".json")
		tuner, err := core.NewTuner(v.Space, v, g, core.TunerOptions{
			Seed: 5, MaxIterations: 5, SGDSteps: 3, Checkpoint: ckpt,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := tuner.Tune(context.Background(), string(workload.WebSearch), []ssdconf.Config{ref})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Front) == 0 {
			t.Fatalf("%s: Pareto tune returned an empty front", label)
		}
		data, err := os.ReadFile(ckpt)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	serial := tune("serial", 1, nil)
	parallel := tune("parallel", 8, nil)

	distTune := func(label string, workers int) []byte {
		t.Helper()
		fleet, err := StartFleet(env, FleetOptions{
			Workers:        workers,
			WorkerParallel: 2,
			PollInterval:   25 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer fleet.Close()
		return tune(label, 0, fleet.Backend())
	}
	dist1 := distTune("dist-1", 1)
	dist4 := distTune("dist-4", 4)

	for _, cmp := range []struct {
		label string
		got   []byte
	}{{"in-process-parallel", parallel}, {"1-worker fleet", dist1}, {"4-worker fleet", dist4}} {
		if !bytes.Equal(serial, cmp.got) {
			t.Errorf("%s Pareto checkpoint differs from serial (%d vs %d bytes)",
				cmp.label, len(cmp.got), len(serial))
		}
	}
	if t.Failed() {
		t.Fatalf("distribution is observable in Pareto checkpoint bytes; serial checkpoint:\n%.2000s", serial)
	}

	// The checkpoint must carry the objective spec and a non-empty front.
	var ck struct {
		Version    int               `json:"version"`
		Objectives []string          `json:"objectives"`
		Front      []json.RawMessage `json:"front"`
	}
	if err := json.Unmarshal(serial, &ck); err != nil {
		t.Fatal(err)
	}
	if ck.Version != 2 {
		t.Fatalf("checkpoint version = %d, want 2", ck.Version)
	}
	if len(ck.Objectives) != 3 || len(ck.Front) == 0 {
		t.Fatalf("checkpoint objectives %v / front size %d", ck.Objectives, len(ck.Front))
	}
}

// TestParetoObjectiveHandshakeReject verifies that a worker whose env
// lacks the coordinator's objective spec is refused at handshake, the
// same way grid or fault-profile mismatches are.
func TestParetoObjectiveHandshakeReject(t *testing.T) {
	env := testEnv(t, 300, ssd.FaultProfile{}, workload.Database)
	spec, err := ssdconf.ParseObjectiveSpec("perf,power")
	if err != nil {
		t.Fatal(err)
	}
	env.SetObjectives(spec)

	scalarEnv := testEnv(t, 300, ssd.FaultProfile{}, workload.Database)
	if env.SpaceSig == scalarEnv.SpaceSig {
		t.Fatal("objective spec not folded into the env fingerprint")
	}
}
