// Package dist shards Validator measurements across processes: a
// coordinator owns the queue of measurement keys and workers pull
// leased batches over a length-prefixed TCP/JSON protocol, run the
// simulations locally through the ordinary MeasureBatch path, and
// stream results back.
//
// Distribution is provably invisible: simulations are deterministic and
// keyed, so any worker's result for a key IS the result, results apply
// idempotently, and a serial, in-process-parallel, and distributed
// tuning run write byte-identical checkpoints (enforced by
// TestTuneSerialDistributedEquivalence).
//
// # Wire format
//
// Every message is one frame: a 4-byte big-endian payload length
// followed by a JSON-encoded Message envelope. A session is strictly
// request/response from the worker's side:
//
//	worker → Hello{name, version}
//	coord  → Welcome{env} | Reject{code: "version-mismatch"}
//	worker → Confirm{locally recomputed space fingerprint}
//	coord  → Accept | Reject{code: "space-mismatch"}
//	repeat:
//	  worker → LeaseReq{max}
//	  coord  → LeaseGrant{leases} (empty grant = long-poll timeout; Closed = shutdown)
//	  worker → Result{results}    (omitted when the grant was empty)
//	  worker → StatsPush{metrics delta} (optional, one-way, after results)
//	worker → Goodbye{reason}      (graceful shutdown; coordinator closes cleanly)
//
// The handshake doubles as a clock-offset probe: Welcome carries the
// coordinator's send time, Confirm carries the worker's receive and send
// times, and the coordinator derives an NTP-style RTT and offset that
// exclude the worker's in-between space reconstruction.
//
// # Lease state machine
//
// A job is pending → leased → done. Leases carry a TTL: an expired
// lease returns its job to pending (counted dist_leases_expired_total)
// and the next grant re-issues it (dist_leases_reassigned_total); a
// worker disconnect expires all its leases immediately. Results are
// applied idempotently by (config key, trace name) — a late result from
// an expired lease is still accepted, and duplicates are dropped
// (dist_results_duplicate_total).
package dist

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"autoblox/internal/autodb"
	"autoblox/internal/obs"
)

// ProtocolVersion gates the handshake; incompatible workers are
// rejected before any lease is granted. v2 added the Goodbye frame
// (graceful worker shutdown).
const ProtocolVersion = 2

// MaxFrameBytes bounds one wire frame; a peer announcing a larger
// payload is malformed (or malicious) and the connection is dropped.
const MaxFrameBytes = 16 << 20

// Typed handshake rejections, surfaced by Worker.Run and matched with
// errors.Is.
var (
	// ErrVersionMismatch: the worker speaks a different protocol version.
	ErrVersionMismatch = errors.New("dist: protocol version mismatch")
	// ErrSpaceMismatch: the worker's locally reconstructed parameter
	// space fingerprint disagrees with the coordinator's — typically a
	// stale binary with different grids or constraints. Measuring under
	// a mismatched space would silently remap every grid index, so the
	// handshake refuses.
	ErrSpaceMismatch = errors.New("dist: space fingerprint mismatch")
	// ErrClosed: the coordinator is shut down.
	ErrClosed = errors.New("dist: coordinator closed")
)

// Reject codes on the wire.
const (
	RejectVersion = "version-mismatch"
	RejectSpace   = "space-mismatch"
)

// MsgType discriminates the Message envelope.
type MsgType uint8

const (
	MsgHello      MsgType = iota + 1 // worker → coordinator: introduction
	MsgWelcome                       // coordinator → worker: measurement environment
	MsgConfirm                       // worker → coordinator: recomputed space fingerprint
	MsgAccept                        // coordinator → worker: handshake complete
	MsgReject                        // coordinator → worker: typed handshake rejection
	MsgLeaseReq                      // worker → coordinator: pull up to Max leases
	MsgLeaseGrant                    // coordinator → worker: leased batch (possibly empty)
	MsgResult                        // worker → coordinator: measured results
	MsgStatsPush                     // worker → coordinator: delta-encoded metrics snapshot
	MsgGoodbye                       // worker → coordinator: graceful shutdown notice
)

func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgWelcome:
		return "welcome"
	case MsgConfirm:
		return "confirm"
	case MsgAccept:
		return "accept"
	case MsgReject:
		return "reject"
	case MsgLeaseReq:
		return "lease-req"
	case MsgLeaseGrant:
		return "lease-grant"
	case MsgResult:
		return "result"
	case MsgStatsPush:
		return "stats-push"
	case MsgGoodbye:
		return "goodbye"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// Message is the wire envelope: exactly the payload matching Type is
// set (Accept carries none).
type Message struct {
	Type       MsgType     `json:"type"`
	Hello      *Hello      `json:"hello,omitempty"`
	Welcome    *Welcome    `json:"welcome,omitempty"`
	Confirm    *Confirm    `json:"confirm,omitempty"`
	Reject     *Reject     `json:"reject,omitempty"`
	LeaseReq   *LeaseReq   `json:"lease_req,omitempty"`
	LeaseGrant *LeaseGrant `json:"lease_grant,omitempty"`
	Result     *ResultMsg  `json:"result,omitempty"`
	StatsPush  *StatsPush  `json:"stats_push,omitempty"`
	Goodbye    *Goodbye    `json:"goodbye,omitempty"`
}

// Hello introduces a worker.
type Hello struct {
	Worker  string `json:"worker"`
	Version int    `json:"version"`
}

// Welcome carries the measurement environment the worker must
// reconstruct locally, plus the lease TTL it is expected to beat.
// CoordUnixNano timestamps the send on the coordinator's clock and
// TraceID names the coordinator's tracing session; together they let a
// worker's trace events be correlated onto the coordinator's timeline.
type Welcome struct {
	Env           Env    `json:"env"`
	LeaseTTLMS    int64  `json:"lease_ttl_ms"`
	CoordUnixNano int64  `json:"coord_unix_nano,omitempty"`
	TraceID       string `json:"trace_id,omitempty"`
}

// Confirm closes the handshake: the worker reports the fingerprint of
// the space it reconstructed from the Welcome env, plus two local clock
// stamps — when the Welcome arrived and when this Confirm left. The
// coordinator combines them with its own send/receive times into an
// NTP-style round-trip and clock-offset estimate that excludes the
// worker's (heavy) space reconstruction between the two stamps.
type Confirm struct {
	SpaceSig     string `json:"space_sig"`
	RecvUnixNano int64  `json:"recv_unix_nano,omitempty"`
	SendUnixNano int64  `json:"send_unix_nano,omitempty"`
}

// Reject is a typed handshake refusal.
type Reject struct {
	Code   string `json:"code"`
	Detail string `json:"detail,omitempty"`
}

// Err maps a rejection onto its typed sentinel.
func (r *Reject) Err() error {
	switch r.Code {
	case RejectVersion:
		return fmt.Errorf("%w: %s", ErrVersionMismatch, r.Detail)
	case RejectSpace:
		return fmt.Errorf("%w: %s", ErrSpaceMismatch, r.Detail)
	default:
		return fmt.Errorf("dist: rejected (%s): %s", r.Code, r.Detail)
	}
}

// LeaseReq pulls up to Max leases; the coordinator long-polls before
// answering an empty grant.
type LeaseReq struct {
	Max int `json:"max"`
}

// Lease is one measurement assignment. Cfg is the full grid-index
// vector (the worker re-derives CfgKey from it and refuses on
// disagreement); Name is the canonical trace name "<cluster>#<i>".
type Lease struct {
	ID     uint64 `json:"id"`
	CfgKey string `json:"cfg_key"`
	Cfg    []int  `json:"cfg"`
	Name   string `json:"name"`
	// TraceID stamps the lease with the coordinator's tracing session so
	// the worker tags its trace events for cross-process correlation.
	TraceID string `json:"trace_id,omitempty"`
}

// LeaseGrant answers a LeaseReq. Empty Leases with Closed=false means
// "nothing available right now, ask again"; Closed=true means the
// coordinator shut down and the worker should exit.
type LeaseGrant struct {
	Leases []Lease `json:"leases,omitempty"`
	Closed bool    `json:"closed,omitempty"`
}

// JobResult is one finished measurement. Err, when non-empty, reports a
// worker-side failure; SimNS is the worker's wall time for the job
// (queue wait in its local pool included), feeding the coordinator's
// BackendStats.SimBusy.
type JobResult struct {
	LeaseID uint64      `json:"lease_id"`
	CfgKey  string      `json:"cfg_key"`
	Name    string      `json:"name"`
	Perf    autodb.Perf `json:"perf"`
	Err     string      `json:"err,omitempty"`
	SimNS   int64       `json:"sim_ns"`
	// StartUnixNano stamps the job's start on the worker's clock; the
	// coordinator offset-corrects it to replay the job as a span on its
	// own merged timeline.
	StartUnixNano int64 `json:"start_unix_nano,omitempty"`
}

// ResultMsg returns a batch of results; BusyNS is the batch's
// wall-clock time on the worker, recorded into the per-worker busy
// histogram.
type ResultMsg struct {
	Worker  string      `json:"worker"`
	Results []JobResult `json:"results"`
	BusyNS  int64       `json:"busy_ns"`
}

// StatsPush ships a worker's metrics to the coordinator: a registry
// snapshot delta-encoded against the previous push (obs.DeltaSince), so
// repeated pushes stay small and absorb idempotently — counter deltas
// add, gauges overwrite, histogram bucket deltas merge exactly. The
// coordinator folds each push into its fleet registry under a
// worker="name" label. One-way: the coordinator never replies.
type StatsPush struct {
	Worker string       `json:"worker"`
	Stats  obs.Snapshot `json:"stats"`
}

// Goodbye announces a worker's graceful shutdown (SIGTERM drain): the
// in-flight batch finished, final stats were pushed, and the
// connection is about to close cleanly — so the coordinator learns
// immediately instead of waiting out a lease TTL.
type Goodbye struct {
	Reason string `json:"reason,omitempty"`
}

// Validate checks the envelope invariant: a known type with exactly the
// matching payload.
func (m *Message) Validate() error {
	payloads := 0
	for _, p := range []bool{
		m.Hello != nil, m.Welcome != nil, m.Confirm != nil, m.Reject != nil,
		m.LeaseReq != nil, m.LeaseGrant != nil, m.Result != nil, m.StatsPush != nil,
		m.Goodbye != nil,
	} {
		if p {
			payloads++
		}
	}
	want := func(ok bool) error {
		if !ok || payloads != 1 {
			return fmt.Errorf("dist: malformed %s message", m.Type)
		}
		return nil
	}
	switch m.Type {
	case MsgHello:
		return want(m.Hello != nil)
	case MsgWelcome:
		return want(m.Welcome != nil)
	case MsgConfirm:
		return want(m.Confirm != nil)
	case MsgAccept:
		if payloads != 0 {
			return fmt.Errorf("dist: malformed %s message", m.Type)
		}
		return nil
	case MsgReject:
		return want(m.Reject != nil)
	case MsgLeaseReq:
		return want(m.LeaseReq != nil)
	case MsgLeaseGrant:
		return want(m.LeaseGrant != nil)
	case MsgResult:
		return want(m.Result != nil)
	case MsgStatsPush:
		return want(m.StatsPush != nil)
	case MsgGoodbye:
		return want(m.Goodbye != nil)
	default:
		return fmt.Errorf("dist: unknown message type %d", uint8(m.Type))
	}
}

// Encode writes one framed message.
func Encode(w io.Writer, m *Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	body, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("dist: encode %s: %w", m.Type, err)
	}
	if len(body) > MaxFrameBytes {
		return fmt.Errorf("dist: %s frame exceeds %d bytes", m.Type, MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// Decode reads one framed message, validating length, JSON shape and
// the type/payload invariant.
func Decode(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return nil, fmt.Errorf("dist: invalid frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	var m Message
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("dist: decode frame: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}
