package dist

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/core"
	"autoblox/internal/obs"
	"autoblox/internal/ssdconf"
)

// ErrDrained reports a graceful worker shutdown: the context was
// cancelled, the in-flight batch finished, final stats were pushed,
// and a Goodbye frame closed the session. Callers treat it as a clean
// exit, distinct from transport failures that warrant a reconnect.
var ErrDrained = errors.New("dist: worker drained after shutdown signal")

// Worker pulls leased measurement batches from a coordinator, runs the
// simulations through a locally reconstructed validator (same memo
// cache, singleflight, and bounded pool as any in-process run), and
// streams results back. Zero value + Run is usable; all fields are
// optional.
type Worker struct {
	// Name identifies the worker in coordinator metrics (default
	// "<hostname>/<pid>").
	Name string
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS).
	Parallel int
	// BatchSize caps leases pulled per request (default 8).
	BatchSize int
	// SimTimeout/MaxRetries configure the local validator like their
	// core.Validator counterparts.
	SimTimeout time.Duration
	MaxRetries int
	// Obs, when set, receives the local validator's metrics.
	Obs *obs.Registry
	// PushStats, when set (and Obs is), ships a delta-encoded snapshot
	// of Obs to the coordinator after every result batch, where it is
	// folded into the fleet registry under this worker's name. Leave it
	// off when Obs is shared with the coordinator process (in-process
	// loopback fleets), or the push would re-absorb its own series.
	PushStats bool
	// Persist, when set, backs the local validator's memo cache with a
	// durable store: keys measured in any earlier process land as
	// cache hits instead of re-simulations.
	Persist *core.PersistentCache
	// Dial overrides the transport Run uses (default: TCP via
	// net.Dialer). Tests and chaos harnesses inject wrapped conns here.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Grace, when positive, enables graceful drain: on context
	// cancellation the worker finishes its in-flight batch, pushes
	// final stats, and sends a Goodbye frame — hard-closing the
	// connection only after Grace elapses. Zero keeps the legacy
	// behavior (the conn is severed the instant the context cancels).
	Grace time.Duration
	// ReconnectBase/ReconnectMax bound RunReconnect's jittered
	// exponential backoff (defaults 100ms / 5s).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration

	jobs     atomic.Int64
	busyNS   atomic.Int64
	sessions atomic.Int64 // completed handshakes (backoff reset signal)

	lastPush obs.Snapshot // previous push baseline (lease loop only)

	// Handshake resumption: a reconnect whose Welcome env is identical
	// to the previous session's reuses the reconstructed space,
	// fingerprint, and validator (memo cache included) instead of
	// rebuilding them.
	mu        sync.Mutex
	cachedEnv []byte
	cachedSig string
	cachedV   *core.Validator
}

func (w *Worker) name() string {
	if w.Name != "" {
		return w.Name
	}
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s/%d", host, os.Getpid())
}

func (w *Worker) batchSize() int {
	if w.BatchSize > 0 {
		return w.BatchSize
	}
	return 8
}

// Jobs reports how many leased measurements this worker completed.
func (w *Worker) Jobs() int64 { return w.jobs.Load() }

// Busy reports the cumulative wall time spent measuring batches.
func (w *Worker) Busy() time.Duration { return time.Duration(w.busyNS.Load()) }

// Run dials a coordinator and serves until the coordinator closes (nil
// error), the context cancels, or the connection fails. A handshake
// refusal surfaces as ErrVersionMismatch / ErrSpaceMismatch; a
// graceful drain (Grace > 0) as ErrDrained.
func (w *Worker) Run(ctx context.Context, addr string) error {
	dial := w.Dial
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(ctx, addr)
	if err != nil {
		return err
	}
	return w.RunConn(ctx, conn)
}

// RunReconnect runs the worker with automatic redial: a transport
// failure (dropped conn, mid-frame kill, partition) backs off with
// jittered exponential delay and dials again, resuming the handshake
// against the cached environment. It returns when the coordinator
// closes cleanly, the handshake is rejected, the context cancels, or
// a graceful drain completes.
func (w *Worker) RunReconnect(ctx context.Context, addr string) error {
	base := w.ReconnectBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := w.ReconnectMax
	if max <= 0 {
		max = 5 * time.Second
	}
	h := fnv.New64a()
	h.Write([]byte(w.name()))
	jitterState := h.Sum64()
	attempt := 0
	for {
		before := w.sessions.Load()
		err := w.Run(ctx, addr)
		switch {
		case err == nil:
			return nil // coordinator closed cleanly
		case errors.Is(err, ErrDrained),
			errors.Is(err, ErrVersionMismatch),
			errors.Is(err, ErrSpaceMismatch):
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if w.sessions.Load() > before {
			attempt = 0 // the last dial handshook; start the backoff over
		}
		attempt++
		shift := attempt - 1
		if shift > 16 {
			shift = 16
		}
		d := base << shift
		if d > max {
			d = max
		}
		// Jitter to d/2 + [0, d/2): a fleet of workers severed by the same
		// partition does not redial in lockstep.
		jitterState += 0x9e3779b97f4a7c15
		z := jitterState
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		d = d/2 + time.Duration(z%uint64(d/2+1))
		obs.RecordEvent("worker-reconnect", "worker", w.name(),
			"attempt", strconv.Itoa(attempt), "backoff", d.String(), "err", err.Error())
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// validatorFor resolves the session validator, reusing the previous
// session's (memo cache included) when the Welcome env is unchanged.
// The returned signature is always locally recomputed — a cached hit
// just means it was recomputed from byte-identical inputs last time.
func (w *Worker) validatorFor(env *Env) (*core.Validator, string, error) {
	envJSON, err := json.Marshal(env)
	if err != nil {
		return nil, "", err
	}
	w.mu.Lock()
	if w.cachedV != nil && string(envJSON) == string(w.cachedEnv) {
		v, sig := w.cachedV, w.cachedSig
		w.mu.Unlock()
		return v, sig, nil
	}
	w.mu.Unlock()
	sig := env.Space().Signature()
	v, err := NewValidator(env)
	if err != nil {
		return nil, "", err
	}
	v.Parallel = w.Parallel
	v.Obs = w.Obs
	v.SimTimeout = w.SimTimeout
	v.MaxRetries = w.MaxRetries
	v.Persist = w.Persist
	w.mu.Lock()
	w.cachedEnv = envJSON
	w.cachedSig = sig
	w.cachedV = v
	w.mu.Unlock()
	return v, sig, nil
}

// RunConn serves the worker protocol over an established connection
// (used directly for in-process loopback fleets over net.Pipe).
func (w *Worker) RunConn(ctx context.Context, conn net.Conn) error {
	defer conn.Close()
	// Cancellation unblocks pending reads/writes by closing the conn —
	// immediately in the legacy mode, after the drain grace period when
	// Grace is set.
	var graceTimer *time.Timer
	stop := context.AfterFunc(ctx, func() {
		if w.Grace > 0 {
			graceTimer = time.AfterFunc(w.Grace, func() { conn.Close() })
		} else {
			conn.Close()
		}
	})
	defer func() {
		stop()
		if graceTimer != nil {
			graceTimer.Stop()
		}
	}()

	r := bufio.NewReader(conn)
	if err := Encode(conn, &Message{Type: MsgHello, Hello: &Hello{Worker: w.name(), Version: ProtocolVersion}}); err != nil {
		return err
	}
	m, err := Decode(r)
	if err != nil {
		return err
	}
	if m.Type == MsgReject {
		return m.Reject.Err()
	}
	if m.Type != MsgWelcome {
		return fmt.Errorf("dist: expected welcome, got %s", m.Type)
	}
	recv := time.Now() // Welcome receipt stamp, for the clock-offset probe
	env := m.Welcome.Env
	// Reconstruct the space locally and report its fingerprint: if this
	// binary derives different grids from the same constraints, the
	// coordinator must refuse us before any measurement happens. The two
	// local stamps bracket that (heavy) reconstruction so the
	// coordinator's RTT estimate excludes it. A resumed handshake reuses
	// the previous session's reconstruction (and validator cache).
	v, sig, err := w.validatorFor(&env)
	if err != nil {
		return err
	}
	confirm := &Confirm{
		SpaceSig:     sig,
		RecvUnixNano: recv.UnixNano(),
	}
	confirm.SendUnixNano = time.Now().UnixNano()
	if err := Encode(conn, &Message{Type: MsgConfirm, Confirm: confirm}); err != nil {
		return err
	}
	if m, err = Decode(r); err != nil {
		return err
	}
	if m.Type == MsgReject {
		return m.Reject.Err()
	}
	if m.Type != MsgAccept {
		return fmt.Errorf("dist: expected accept, got %s", m.Type)
	}
	w.sessions.Add(1)

	// Graceful drain runs the batch under a detached context (the
	// in-flight job must finish); the grace timer above still bounds a
	// wedged drain by severing the conn.
	batchCtx := ctx
	if w.Grace > 0 {
		batchCtx = context.WithoutCancel(ctx)
	}

	for {
		if ctx.Err() != nil {
			if w.Grace > 0 {
				return w.drain(conn)
			}
			return ctx.Err()
		}
		if err := Encode(conn, &Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: w.batchSize()}}); err != nil {
			return err
		}
		m, err := Decode(r)
		if err != nil {
			return err
		}
		if m.Type != MsgLeaseGrant {
			return fmt.Errorf("dist: expected lease-grant, got %s", m.Type)
		}
		if m.LeaseGrant.Closed {
			return nil
		}
		if len(m.LeaseGrant.Leases) == 0 {
			continue // long-poll timed out; ask again
		}
		res := w.runBatch(batchCtx, v, &env, m.LeaseGrant.Leases)
		if err := Encode(conn, &Message{Type: MsgResult, Result: res}); err != nil {
			return err
		}
		if err := w.pushStats(conn); err != nil {
			return err
		}
	}
}

// drain finishes a graceful shutdown: final stats push, Goodbye frame,
// clean close. The in-flight batch (if any) already completed — drain
// only runs from the top of the lease loop.
func (w *Worker) drain(conn net.Conn) error {
	if err := w.pushStats(conn); err != nil {
		return err
	}
	if err := Encode(conn, &Message{Type: MsgGoodbye, Goodbye: &Goodbye{Reason: "shutdown"}}); err != nil {
		return err
	}
	obs.RecordEvent("worker-drained", "worker", w.name())
	return ErrDrained
}

// pushStats ships the registry's changes since the previous push as a
// one-way delta message; no-op unless PushStats and Obs are both set.
func (w *Worker) pushStats(conn net.Conn) error {
	if !w.PushStats || w.Obs == nil {
		return nil
	}
	snap := w.Obs.Snapshot()
	delta := snap.DeltaSince(w.lastPush)
	if delta.Empty() {
		return nil
	}
	if err := Encode(conn, &Message{Type: MsgStatsPush, StatsPush: &StatsPush{Worker: w.name(), Stats: delta}}); err != nil {
		return err
	}
	w.lastPush = snap
	return nil
}

// runBatch measures every lease concurrently (the validator's pool
// bounds actual simulator concurrency) and reports per-job results —
// failures included, so the coordinator never waits out a TTL for a
// job that already failed deterministically.
func (w *Worker) runBatch(ctx context.Context, v *core.Validator, env *Env, leases []Lease) *ResultMsg {
	t0 := time.Now()
	results := make([]JobResult, len(leases))
	var wg sync.WaitGroup
	for i, l := range leases {
		wg.Add(1)
		go func(i int, l Lease) {
			defer wg.Done()
			s0 := time.Now()
			// Tag the worker-side span with the coordinator's lease and
			// trace IDs so a local -trace file correlates with the
			// coordinator's merged timeline.
			sp := obs.StartSpan("worker-job").
				ArgInt("lease", int64(l.ID)).
				Arg("trace", l.Name).
				Arg("trace_id", l.TraceID).
				Lane(int64(i%8) + 1)
			jr := JobResult{LeaseID: l.ID, CfgKey: l.CfgKey, Name: l.Name, StartUnixNano: s0.UnixNano()}
			perf, err := w.runLease(ctx, v, env, l)
			if err != nil {
				jr.Err = err.Error()
			} else {
				jr.Perf = perf
			}
			jr.SimNS = time.Since(s0).Nanoseconds()
			sp.End()
			results[i] = jr
		}(i, l)
	}
	wg.Wait()
	busy := time.Since(t0).Nanoseconds()
	w.jobs.Add(int64(len(leases)))
	w.busyNS.Add(busy)
	return &ResultMsg{Worker: w.name(), Results: results, BusyNS: busy}
}

// runLease validates and measures one lease.
func (w *Worker) runLease(ctx context.Context, v *core.Validator, env *Env, l Lease) (perf autodb.Perf, err error) {
	cfg := ssdconf.Config(l.Cfg)
	if got := cfg.Key(); got != l.CfgKey {
		return perf, fmt.Errorf("dist: lease %d: config key %q does not match vector key %q", l.ID, l.CfgKey, got)
	}
	f, err := env.FactoryFor(l.Name)
	if err != nil {
		return perf, err
	}
	return v.MeasureTrace(ctx, cfg, l.Name, f)
}
