package dist

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/core"
	"autoblox/internal/obs"
	"autoblox/internal/ssdconf"
)

// Worker pulls leased measurement batches from a coordinator, runs the
// simulations through a locally reconstructed validator (same memo
// cache, singleflight, and bounded pool as any in-process run), and
// streams results back. Zero value + Run is usable; all fields are
// optional.
type Worker struct {
	// Name identifies the worker in coordinator metrics (default
	// "<hostname>/<pid>").
	Name string
	// Parallel bounds concurrent simulations (0 = GOMAXPROCS).
	Parallel int
	// BatchSize caps leases pulled per request (default 8).
	BatchSize int
	// SimTimeout/MaxRetries configure the local validator like their
	// core.Validator counterparts.
	SimTimeout time.Duration
	MaxRetries int
	// Obs, when set, receives the local validator's metrics.
	Obs *obs.Registry
	// PushStats, when set (and Obs is), ships a delta-encoded snapshot
	// of Obs to the coordinator after every result batch, where it is
	// folded into the fleet registry under this worker's name. Leave it
	// off when Obs is shared with the coordinator process (in-process
	// loopback fleets), or the push would re-absorb its own series.
	PushStats bool

	jobs   atomic.Int64
	busyNS atomic.Int64

	lastPush obs.Snapshot // previous push baseline (lease loop only)
}

func (w *Worker) name() string {
	if w.Name != "" {
		return w.Name
	}
	host, err := os.Hostname()
	if err != nil {
		host = "worker"
	}
	return fmt.Sprintf("%s/%d", host, os.Getpid())
}

func (w *Worker) batchSize() int {
	if w.BatchSize > 0 {
		return w.BatchSize
	}
	return 8
}

// Jobs reports how many leased measurements this worker completed.
func (w *Worker) Jobs() int64 { return w.jobs.Load() }

// Busy reports the cumulative wall time spent measuring batches.
func (w *Worker) Busy() time.Duration { return time.Duration(w.busyNS.Load()) }

// Run dials a coordinator and serves until the coordinator closes (nil
// error), the context cancels, or the connection fails. A handshake
// refusal surfaces as ErrVersionMismatch / ErrSpaceMismatch.
func (w *Worker) Run(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	return w.RunConn(ctx, conn)
}

// RunConn serves the worker protocol over an established connection
// (used directly for in-process loopback fleets over net.Pipe).
func (w *Worker) RunConn(ctx context.Context, conn net.Conn) error {
	defer conn.Close()
	// Cancellation unblocks pending reads/writes by closing the conn.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	r := bufio.NewReader(conn)
	if err := Encode(conn, &Message{Type: MsgHello, Hello: &Hello{Worker: w.name(), Version: ProtocolVersion}}); err != nil {
		return err
	}
	m, err := Decode(r)
	if err != nil {
		return err
	}
	if m.Type == MsgReject {
		return m.Reject.Err()
	}
	if m.Type != MsgWelcome {
		return fmt.Errorf("dist: expected welcome, got %s", m.Type)
	}
	recv := time.Now() // Welcome receipt stamp, for the clock-offset probe
	env := m.Welcome.Env
	// Reconstruct the space locally and report its fingerprint: if this
	// binary derives different grids from the same constraints, the
	// coordinator must refuse us before any measurement happens. The two
	// local stamps bracket that (heavy) reconstruction so the
	// coordinator's RTT estimate excludes it.
	confirm := &Confirm{
		SpaceSig:     env.Space().Signature(),
		RecvUnixNano: recv.UnixNano(),
	}
	confirm.SendUnixNano = time.Now().UnixNano()
	if err := Encode(conn, &Message{Type: MsgConfirm, Confirm: confirm}); err != nil {
		return err
	}
	if m, err = Decode(r); err != nil {
		return err
	}
	if m.Type == MsgReject {
		return m.Reject.Err()
	}
	if m.Type != MsgAccept {
		return fmt.Errorf("dist: expected accept, got %s", m.Type)
	}

	v, err := NewValidator(&env)
	if err != nil {
		return err
	}
	v.Parallel = w.Parallel
	v.Obs = w.Obs
	v.SimTimeout = w.SimTimeout
	v.MaxRetries = w.MaxRetries

	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := Encode(conn, &Message{Type: MsgLeaseReq, LeaseReq: &LeaseReq{Max: w.batchSize()}}); err != nil {
			return err
		}
		m, err := Decode(r)
		if err != nil {
			return err
		}
		if m.Type != MsgLeaseGrant {
			return fmt.Errorf("dist: expected lease-grant, got %s", m.Type)
		}
		if m.LeaseGrant.Closed {
			return nil
		}
		if len(m.LeaseGrant.Leases) == 0 {
			continue // long-poll timed out; ask again
		}
		res := w.runBatch(ctx, v, &env, m.LeaseGrant.Leases)
		if err := Encode(conn, &Message{Type: MsgResult, Result: res}); err != nil {
			return err
		}
		if err := w.pushStats(conn); err != nil {
			return err
		}
	}
}

// pushStats ships the registry's changes since the previous push as a
// one-way delta message; no-op unless PushStats and Obs are both set.
func (w *Worker) pushStats(conn net.Conn) error {
	if !w.PushStats || w.Obs == nil {
		return nil
	}
	snap := w.Obs.Snapshot()
	delta := snap.DeltaSince(w.lastPush)
	if delta.Empty() {
		return nil
	}
	if err := Encode(conn, &Message{Type: MsgStatsPush, StatsPush: &StatsPush{Worker: w.name(), Stats: delta}}); err != nil {
		return err
	}
	w.lastPush = snap
	return nil
}

// runBatch measures every lease concurrently (the validator's pool
// bounds actual simulator concurrency) and reports per-job results —
// failures included, so the coordinator never waits out a TTL for a
// job that already failed deterministically.
func (w *Worker) runBatch(ctx context.Context, v *core.Validator, env *Env, leases []Lease) *ResultMsg {
	t0 := time.Now()
	results := make([]JobResult, len(leases))
	var wg sync.WaitGroup
	for i, l := range leases {
		wg.Add(1)
		go func(i int, l Lease) {
			defer wg.Done()
			s0 := time.Now()
			// Tag the worker-side span with the coordinator's lease and
			// trace IDs so a local -trace file correlates with the
			// coordinator's merged timeline.
			sp := obs.StartSpan("worker-job").
				ArgInt("lease", int64(l.ID)).
				Arg("trace", l.Name).
				Arg("trace_id", l.TraceID).
				Lane(int64(i%8) + 1)
			jr := JobResult{LeaseID: l.ID, CfgKey: l.CfgKey, Name: l.Name, StartUnixNano: s0.UnixNano()}
			perf, err := w.runLease(ctx, v, env, l)
			if err != nil {
				jr.Err = err.Error()
			} else {
				jr.Perf = perf
			}
			jr.SimNS = time.Since(s0).Nanoseconds()
			sp.End()
			results[i] = jr
		}(i, l)
	}
	wg.Wait()
	busy := time.Since(t0).Nanoseconds()
	w.jobs.Add(int64(len(leases)))
	w.busyNS.Add(busy)
	return &ResultMsg{Worker: w.name(), Results: results, BusyNS: busy}
}

// runLease validates and measures one lease.
func (w *Worker) runLease(ctx context.Context, v *core.Validator, env *Env, l Lease) (perf autodb.Perf, err error) {
	cfg := ssdconf.Config(l.Cfg)
	if got := cfg.Key(); got != l.CfgKey {
		return perf, fmt.Errorf("dist: lease %d: config key %q does not match vector key %q", l.ID, l.CfgKey, got)
	}
	f, err := env.FactoryFor(l.Name)
	if err != nil {
		return perf, err
	}
	return v.MeasureTrace(ctx, cfg, l.Name, f)
}
