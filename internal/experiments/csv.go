package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
)

// CSV export: each artifact can dump its underlying data as a CSV file
// for external plotting (the paper's figures are plots; the text tables
// this package prints are their terminal rendering).

// writeCSV writes rows to dir/name.csv.
func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: csv mkdir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return fmt.Errorf("experiments: csv create: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func f2s(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// WriteCSV dumps the Fig. 2 scatter: one row per training window.
func (r *Fig2Result) WriteCSV(dir string) error {
	rows := make([][]string, 0, len(r.Points))
	for _, p := range r.Points {
		rows = append(rows, []string{p.Category, f2s(p.X), f2s(p.Y), strconv.Itoa(p.Cluster)})
	}
	return writeCSV(dir, "fig2_scatter", []string{"category", "pc1", "pc2", "cluster"}, rows)
}

// WriteCSV dumps the Fig. 4 sweeps and Fig. 5 coefficients.
func (r *Fig45Result) WriteCSV(dir string) error {
	var sweepRows [][]string
	for name, sweep := range r.Coarse.Sweeps {
		for _, pt := range sweep {
			sweepRows = append(sweepRows, []string{
				name, f2s(pt.Value), f2s(pt.Multiplier), f2s(pt.Performance)})
		}
	}
	if err := writeCSV(dir, "fig4_sweeps",
		[]string{"parameter", "value", "multiplier", "performance"}, sweepRows); err != nil {
		return err
	}
	var coefRows [][]string
	for name, coef := range r.Fine.Coefficients {
		coefRows = append(coefRows, []string{name, f2s(coef)})
	}
	return writeCSV(dir, "fig5_coefficients", []string{"parameter", "coefficient"}, coefRows)
}

// WriteCSV dumps a learned-configuration matrix: one row per
// (target, workload) cell plus energy and learning-time side tables.
func (m *MatrixResult) WriteCSV(dir, id string) error {
	var cells [][]string
	for _, target := range m.Targets {
		run := m.Runs[target]
		for _, wl := range m.Targets {
			cells = append(cells, []string{
				target, wl, f2s(run.Lat[wl]), f2s(run.Tput[wl]),
				strconv.FormatBool(wl == target),
			})
		}
	}
	if err := writeCSV(dir, id+"_matrix",
		[]string{"target", "workload", "latency_speedup", "throughput_speedup", "is_target"}, cells); err != nil {
		return err
	}
	var energy [][]string
	var timing [][]string
	for _, target := range m.Targets {
		run := m.Runs[target]
		e := run.Energy[target]
		energy = append(energy, []string{target, f2s(e[0]), f2s(e[1])})
		timing = append(timing, []string{
			target,
			f2s(run.Result.Elapsed.Seconds()),
			strconv.Itoa(run.Result.Iterations),
			strconv.Itoa(run.Result.SimRuns),
		})
	}
	if err := writeCSV(dir, id+"_energy",
		[]string{"workload", "baseline_joules", "learned_joules"}, energy); err != nil {
		return err
	}
	return writeCSV(dir, id+"_learning",
		[]string{"target", "wall_seconds", "iterations", "simulations"}, timing)
}

// WriteCSV dumps an α/β sweep: one row per (workload, value).
func (r *SweepResult) WriteCSV(dir string) error {
	var rows [][]string
	for _, wl := range r.Workloads {
		for i, v := range r.Values {
			rows = append(rows, []string{
				wl, f2s(v), f2s(r.Lat[wl][i]), f2s(r.Tput[wl][i]), f2s(r.NonTarget[wl][i])})
		}
	}
	name := "fig11_alpha"
	if r.Param == "beta" {
		name = "fig12_beta"
	}
	return writeCSV(dir, name,
		[]string{"workload", r.Param, "latency_speedup", "throughput_speedup", "nontarget_latency_speedup"}, rows)
}
