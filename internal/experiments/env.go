// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the Go reproduction: the workload-clustering
// scatter (Fig. 2), the pruning studies (Figs. 4–5), the learned-
// configuration matrices (Tables 1, 4, 8, 9), critical parameters
// (Table 5), overhead breakdown (Table 6), what-if analysis (Table 7),
// energy (Fig. 7), learning time (Fig. 8), the tuning-order ablation
// (Figs. 9–10) and the α/β sensitivity studies (Figs. 11–12).
//
// Experiments are exposed as functions over a shared Env so that both
// the cmd/experiments binary and the root bench_test.go reuse one
// simulator cache. Results are deterministic for a fixed Scale.Seed.
package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"autoblox/internal/core"
	"autoblox/internal/dist"
	"autoblox/internal/obs"
	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// Scale sets the experiment size. The paper runs multi-hour traces and
// ~89 search iterations per target on a 24-core Xeon; DefaultScale
// shrinks traces and iteration budgets so the full suite reproduces the
// *shapes* in minutes. PaperScale approaches the paper's settings.
type Scale struct {
	Requests      int   // trace length per workload
	MaxIterations int   // tuner outer iterations
	SGDSteps      int   // SGD steps per iteration
	PruneSamples  int   // fine-pruning sample count
	Seed          int64 // global seed
	Parallel      int   // validation workers (0 = GOMAXPROCS)
	// Obs, when set, receives validator/simulator metrics. Optional and
	// free when nil; never affects the measured results.
	Obs *obs.Registry
	// SimTimeout bounds each individual validation simulation (0 =
	// unbounded); SimRetries retries transient measurement failures.
	SimTimeout time.Duration
	SimRetries int
	// Checkpoint/Resume make the matrix tuning runs crash-safe: the
	// per-target checkpoint path is derived from Checkpoint by suffixing
	// the target name.
	Checkpoint string
	Resume     bool
	// Ctx, when set, cancels every measurement the suite issues (nil =
	// context.Background()); it is copied onto each Env the suite builds.
	Ctx context.Context
	// Objectives selects the tuning objective axes for every tuning run
	// the suite issues. The zero spec is scalar mode, byte-identical to
	// the historical single-grade experiments; a multi-axis spec
	// switches the matrix/tuning experiments to Pareto-front search.
	Objectives ssdconf.ObjectiveSpec
	// Backend, when set together with BackendEnv, routes validation
	// simulations through a distributed fleet. Each Env adopts the
	// backend only when BackendEnv covers its configuration (same space
	// fingerprint, a workload spec for every cluster at the run's
	// requests/seed); environments the fleet cannot reproduce — what-if
	// bounds, altered constraint sets — keep the local pool, so mixed
	// suites run correctly with only the matching envs distributed.
	Backend    core.Backend
	BackendEnv *dist.Env
	// Persist, when set, is consulted before (and written after) every
	// validation simulation — the crash-safe cache that carries measured
	// results across process restarts (see core.PersistentCache).
	Persist *core.PersistentCache
}

// DefaultScale is sized for CI and benchmarks.
func DefaultScale() Scale {
	return Scale{Requests: 6000, MaxIterations: 12, SGDSteps: 4, PruneSamples: 36, Seed: 42}
}

// PaperScale approaches the paper's experimental scale (slow: hours).
func PaperScale() Scale {
	return Scale{Requests: 60000, MaxIterations: 89, SGDSteps: 10, PruneSamples: 128, Seed: 42}
}

// Env bundles the shared state of one experimental configuration
// (constraint set + reference device + workload set).
type Env struct {
	Scale Scale
	// Ctx, when set, cancels every measurement the experiments issue;
	// nil means context.Background().
	Ctx       context.Context
	Cons      ssdconf.Constraints
	Space     *ssdconf.Space
	Ref       ssd.DeviceParams
	RefCfg    ssdconf.Config
	Validator *core.Validator
	Grader    *core.Grader
	Cats      []workload.Category
	// Sources holds one streaming generator factory per category; every
	// simulation re-derives its trace from the seed, so the experiment
	// suite never materializes a workload trace.
	Sources map[string]trace.SourceFactory
}

// NewEnv builds an environment: generates one trace per category,
// measures the reference configuration everywhere.
func NewEnv(scale Scale, cons ssdconf.Constraints, ref ssd.DeviceParams, cats []workload.Category) (*Env, error) {
	return newEnv(scale, cons, ref, cats, false)
}

// NewWhatIfEnv is NewEnv over the expanded §4.5 bounds.
func NewWhatIfEnv(scale Scale, cons ssdconf.Constraints, ref ssd.DeviceParams, cats []workload.Category) (*Env, error) {
	return newEnv(scale, cons, ref, cats, true)
}

func newEnv(scale Scale, cons ssdconf.Constraints, ref ssd.DeviceParams, cats []workload.Category, whatIf bool) (*Env, error) {
	var space *ssdconf.Space
	if whatIf {
		space = ssdconf.NewWhatIfSpace(cons)
	} else {
		space = ssdconf.NewSpace(cons)
	}
	space.Objectives = scale.Objectives
	e := &Env{Scale: scale, Ctx: scale.Ctx, Cons: cons, Space: space, Ref: ref, Cats: cats,
		Sources: map[string]trace.SourceFactory{}}
	for _, c := range cats {
		fac, err := workload.Factory(c, workload.Options{Requests: scale.Requests, Seed: scale.Seed})
		if err != nil {
			return nil, err
		}
		e.Sources[string(c)] = fac
	}
	e.RefCfg = space.FromDevice(ref)
	if err := space.CheckConstraints(e.RefCfg); err != nil {
		return nil, fmt.Errorf("experiments: reference violates constraints: %w", err)
	}
	e.Validator = core.NewValidatorSources(space, e.sourceGroups())
	e.Validator.Parallel = scale.Parallel
	e.Validator.Obs = scale.Obs
	e.Validator.SimTimeout = scale.SimTimeout
	e.Validator.MaxRetries = scale.SimRetries
	e.Validator.Persist = scale.Persist
	if scale.Backend != nil && scale.BackendEnv != nil {
		clusters := make([]string, len(cats))
		for i, c := range cats {
			clusters[i] = string(c)
		}
		if scale.BackendEnv.Covers(space, clusters, scale.Requests, scale.Seed) {
			e.Validator.Backend = scale.Backend
		}
	}
	g, err := core.NewGrader(e.ctx(), e.Validator, e.RefCfg, core.DefaultAlpha, core.DefaultBeta)
	if err != nil {
		return nil, err
	}
	e.Grader = g
	return e, nil
}

// sourceGroups adapts the per-category factories to the validator's
// one-trace-per-cluster shape.
func (e *Env) sourceGroups() map[string][]trace.SourceFactory {
	g := make(map[string][]trace.SourceFactory, len(e.Sources))
	for k, f := range e.Sources {
		g[k] = []trace.SourceFactory{f}
	}
	return g
}

// ctx resolves the experiment context.
func (e *Env) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

// tunerOptions maps the scale onto the §3.4 loop.
func (e *Env) tunerOptions() core.TunerOptions {
	return core.TunerOptions{
		Seed:          e.Scale.Seed,
		MaxIterations: e.Scale.MaxIterations,
		SGDSteps:      e.Scale.SGDSteps,
		Resume:        e.Scale.Resume,
	}
}

// checkpointFor derives a per-target checkpoint path; tuning runs over
// different targets must not share one checkpoint file.
func (e *Env) checkpointFor(target string) string {
	if e.Scale.Checkpoint == "" {
		return ""
	}
	return e.Scale.Checkpoint + "." + target + ".json"
}

// InitialConfigs returns the reference plus layout-diverse variants of
// it (repaired to the capacity band). The paper initializes the model
// with several commodity configurations; seeding layout diversity gives
// the GPR surrogate gradient information along the chip-layout axes from
// the first iteration.
func (e *Env) InitialConfigs() []ssdconf.Config {
	out := []ssdconf.Config{e.RefCfg}
	for _, mutate := range []map[string]float64{
		{"FlashChannelCount": 32, "ChipNoPerChannel": 2},
		{"PlaneNoPerDie": 8, "DieNoPerChip": 2},
		{"DataCacheSize": 416, "CMTCapacity": 384},
	} {
		cfg := e.RefCfg.Clone()
		for name, v := range mutate {
			if err := e.Space.SetByName(cfg, name, v); err != nil {
				continue
			}
		}
		if !e.Space.RepairCapacity(cfg) {
			continue
		}
		if e.Space.CheckConstraints(cfg) != nil {
			continue
		}
		out = append(out, cfg)
	}
	return out
}

// section prints a header for an experiment report.
func section(w io.Writer, id, title string) {
	fmt.Fprintf(w, "\n=== %s — %s ===\n", id, title)
}
