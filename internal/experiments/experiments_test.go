package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autoblox/internal/workload"
)

// tinyScale keeps experiment tests fast.
func tinyScale() Scale {
	return Scale{Requests: 2000, MaxIterations: 4, SGDSteps: 3, PruneSamples: 16, Seed: 7}
}

func TestFig2(t *testing.T) {
	r, err := Fig2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if r.Accuracy < 0.7 {
		t.Fatalf("clustering accuracy %.2f too low even at tiny scale", r.Accuracy)
	}
	if len(r.Points) == 0 {
		t.Fatal("no scatter points")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	if !strings.Contains(buf.String(), "validation accuracy") {
		t.Fatal("Print output incomplete")
	}
}

func TestStudiedEnvMemoized(t *testing.T) {
	a, err := StudiedEnv(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	b, err := StudiedEnv(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("StudiedEnv not memoized")
	}
	if len(a.Sources) != len(workload.Studied()) {
		t.Fatalf("env has %d trace sources", len(a.Sources))
	}
}

func TestFig45(t *testing.T) {
	e, err := StudiedEnv(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunFig45(e, string(workload.Database))
	if err != nil {
		t.Fatal(err)
	}
	// 38 numeric sweeps (incl. ZoneSize/MaxOpenZones/WriteStreams) + the
	// 4 tunable categorical dimensions (PlaneAllocationScheme,
	// CachePolicy, GCPolicy, HostInterfaceModel).
	if len(r.Coarse.Sweeps) != 42 {
		t.Fatalf("coarse sweeps = %d, want 42", len(r.Coarse.Sweeps))
	}
	if len(r.Fine.Order) == 0 {
		t.Fatal("fine pruning produced no order")
	}
	var buf bytes.Buffer
	r.Print(&buf)
	for _, want := range []string{"fig4", "fig5", "tuning order"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("Print output missing %q", want)
		}
	}
}

func TestMatrixSmall(t *testing.T) {
	m, err := Matrix(tinyScale(), "test-small", StudiedEnv, MatrixOptions{
		Targets: []string{string(workload.Database), string(workload.WebSearch)},
		NoOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 2 {
		t.Fatalf("runs = %d", len(m.Runs))
	}
	for _, target := range m.Targets {
		run := m.Runs[target]
		if run.Lat[target] <= 0 || run.Tput[target] <= 0 {
			t.Fatalf("%s: bad speedups %v/%v", target, run.Lat[target], run.Tput[target])
		}
		if len(run.Energy) == 0 {
			t.Fatalf("%s: no energy data", target)
		}
	}
	// Memoized on second call.
	m2, err := Matrix(tinyScale(), "test-small", StudiedEnv, MatrixOptions{})
	if err != nil || m2 != m {
		t.Fatal("Matrix not memoized")
	}

	var buf bytes.Buffer
	m.PrintMatrix(&buf, "tab1", "test")
	m.PrintCriticalParams(&buf)
	m.PrintEnergy(&buf)
	m.PrintLearningTime(&buf)
	out := buf.String()
	for _, want := range []string{"geomean(non-tgt)", "tab5", "fig7", "fig8", "average iterations"} {
		if !strings.Contains(out, want) {
			t.Fatalf("matrix prints missing %q", want)
		}
	}
}

func TestInitialConfigsValid(t *testing.T) {
	e, err := StudiedEnv(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	inits := e.InitialConfigs()
	if len(inits) < 2 {
		t.Fatalf("want diverse initials, got %d", len(inits))
	}
	for i, cfg := range inits {
		if err := e.Space.CheckConstraints(cfg); err != nil {
			t.Fatalf("initial %d violates constraints: %v", i, err)
		}
	}
}

func TestTable6(t *testing.T) {
	e, err := StudiedEnv(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	o, err := RunTable6(e)
	if err != nil {
		t.Fatal(err)
	}
	if o.FeatureExtractPer100K <= 0 || o.EfficiencyValidation <= 0 {
		t.Fatalf("missing overheads: %+v", o)
	}
	// The paper's shape: validation dominates per-iteration learning.
	if o.EfficiencyValidation < o.LearningPerIteration {
		t.Fatalf("validation (%v) should dominate learning (%v)",
			o.EfficiencyValidation, o.LearningPerIteration)
	}
	var buf bytes.Buffer
	o.Print(&buf)
	if !strings.Contains(buf.String(), "Efficiency validation") {
		t.Fatal("Print output incomplete")
	}
}

func TestRunAllFiltered(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, tinyScale(), map[string]bool{"fig2": true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig2") {
		t.Fatal("fig2 missing from filtered run")
	}
	if strings.Contains(out, "tab1") {
		t.Fatal("filter leaked other experiments")
	}
}

func TestIDsComplete(t *testing.T) {
	ids := IDs()
	want := []string{"fig2", "fig4", "fig5", "tab1", "tab4", "tab5", "tab6", "tab7",
		"tab8", "tab9", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
	if len(ids) != len(want) {
		t.Fatalf("IDs = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("IDs[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
}

func TestScales(t *testing.T) {
	d, p := DefaultScale(), PaperScale()
	if p.Requests <= d.Requests || p.MaxIterations <= d.MaxIterations {
		t.Fatal("paper scale should exceed default scale")
	}
}

func TestMatrixParallelMatchesSequential(t *testing.T) {
	seq, err := Matrix(tinyScale(), "par-seq", StudiedEnv, MatrixOptions{
		Targets: []string{string(workload.Database), string(workload.WebSearch)},
		NoOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Matrix(tinyScale(), "par-par", StudiedEnv, MatrixOptions{
		Targets:  []string{string(workload.Database), string(workload.WebSearch)},
		NoOrder:  true,
		Parallel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range seq.Targets {
		a, b := seq.Runs[target], par.Runs[target]
		if a.Result.BestGrade != b.Result.BestGrade {
			t.Fatalf("%s: parallel grade %g != sequential %g", target, b.Result.BestGrade, a.Result.BestGrade)
		}
		if a.Lat[target] != b.Lat[target] {
			t.Fatalf("%s: parallel speedup differs", target)
		}
	}
}

func TestCSVExport(t *testing.T) {
	dir := t.TempDir()
	r, err := Fig2(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	m, err := Matrix(tinyScale(), "test-small", StudiedEnv, MatrixOptions{
		Targets: []string{string(workload.Database), string(workload.WebSearch)},
		NoOrder: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.WriteCSV(dir, "tab1"); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fig2_scatter", "tab1_matrix", "tab1_energy", "tab1_learning"} {
		data, err := os.ReadFile(filepath.Join(dir, name+".csv"))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lines := strings.Count(string(data), "\n")
		if lines < 2 {
			t.Fatalf("%s: only %d lines", name, lines)
		}
	}
	// Matrix CSV has one row per (target, workload) pair + header.
	data, _ := os.ReadFile(filepath.Join(dir, "tab1_matrix.csv"))
	if got := strings.Count(string(data), "\n"); got != 2*2+1 {
		t.Fatalf("matrix rows = %d, want 5", got)
	}
}
