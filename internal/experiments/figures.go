package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"autoblox/internal/core"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// Fig2Result carries the clustering study.
type Fig2Result struct {
	Clusterer  *core.Clusterer
	Accuracy   float64
	Silhouette float64
	Points     []core.ScatterPoint
}

// RunFig2 trains the §3.1 clustering on the seven studied categories and
// validates window-level accuracy on held-out traces (paper: ~95%).
func RunFig2(scale Scale) (*Fig2Result, error) {
	var train, valid []*trace.Trace
	for _, c := range workload.Studied() {
		full, err := workload.Generate(c, workload.Options{Requests: scale.Requests * 4, Seed: scale.Seed})
		if err != nil {
			return nil, err
		}
		tr, va := full.Split(0.7)
		tr.Name, va.Name = full.Name, full.Name
		train = append(train, tr)
		valid = append(valid, va)
	}
	cl, err := core.TrainClusterer(train, core.ClustererConfig{
		K: len(workload.Studied()), Seed: scale.Seed, AutoAdjustThreshold: true,
	})
	if err != nil {
		return nil, err
	}
	acc, err := cl.ValidationAccuracy(valid)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{Clusterer: cl, Accuracy: acc, Silhouette: cl.Silhouette(),
		Points: cl.Scatter()}, nil
}

// Print renders the Fig. 2 scatter (PCA dims 1–2) and accuracy.
func (r *Fig2Result) Print(w io.Writer) {
	section(w, "fig2", "Learning-based workload clustering (PCA scatter)")
	fmt.Fprintf(w, "%-16s %10s %10s %8s\n", "category", "pc1", "pc2", "cluster")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%-16s %10.3f %10.3f %8d\n", p.Category, p.X, p.Y, p.Cluster)
	}
	fmt.Fprintf(w, "validation accuracy: %.1f%% (paper: ~95%%); silhouette %.2f\n",
		r.Accuracy*100, r.Silhouette)
}

// Fig45Result carries both pruning studies for one target.
type Fig45Result struct {
	Target string
	Coarse *core.CoarseResult
	Fine   *core.FineResult
}

// RunFig45 runs coarse- and fine-grained pruning for a target workload.
func RunFig45(e *Env, target string) (*Fig45Result, error) {
	opts := core.PruneOptions{Seed: e.Scale.Seed, Samples: e.Scale.PruneSamples}
	coarse, err := core.CoarsePrune(e.ctx(), e.Validator, e.Grader, target, e.RefCfg, opts)
	if err != nil {
		return nil, err
	}
	fine, err := core.FinePrune(e.ctx(), e.Validator, e.Grader, target, e.RefCfg, coarse.Insensitive, opts)
	if err != nil {
		return nil, err
	}
	return &Fig45Result{Target: target, Coarse: coarse, Fine: fine}, nil
}

// Print renders the Fig. 4 sensitivity sweep summary and the Fig. 5
// ridge coefficients.
func (r *Fig45Result) Print(w io.Writer) {
	section(w, "fig4", "Coarse-grained pruning — parameter sensitivity sweeps ("+r.Target+")")
	names := make([]string, 0, len(r.Coarse.Sensitivity))
	for n := range r.Coarse.Sensitivity {
		names = append(names, n)
	}
	sort.Slice(names, func(a, b int) bool {
		return r.Coarse.Sensitivity[names[a]] > r.Coarse.Sensitivity[names[b]]
	})
	fmt.Fprintf(w, "%-28s %12s %6s\n", "parameter", "sensitivity", "flat?")
	for _, n := range names {
		flat := ""
		if r.Coarse.Sensitivity[n] < 0.01 {
			flat = "yes"
		}
		fmt.Fprintf(w, "%-28s %12.4f %6s\n", n, r.Coarse.Sensitivity[n], flat)
	}
	fmt.Fprintf(w, "insensitive parameters (%d, paper finds ~12): %v\n",
		len(r.Coarse.Insensitive), r.Coarse.Insensitive)

	section(w, "fig5", "Fine-grained pruning — ridge coefficients ("+r.Target+")")
	fmt.Fprintf(w, "%-28s %12s\n", "parameter", "coefficient")
	for _, n := range r.Fine.Order {
		fmt.Fprintf(w, "%-28s %+12.5f\n", n, r.Fine.Coefficients[n])
	}
	fmt.Fprintf(w, "pruned below |0.001|: %v\nR² of the ridge fit: %.3f\ntuning order: %v\n",
		r.Fine.Pruned, r.Fine.R2, r.Fine.Order)
}

// SweepResult carries the α (Fig. 11) or β (Fig. 12) study.
type SweepResult struct {
	Param     string // "alpha" or "beta"
	Values    []float64
	Workloads []string
	// Lat/Tput: workload -> per-value target speedups.
	Lat, Tput map[string][]float64
	// NonTarget: workload -> per-value geomean non-target latency speedup
	// (used by the β study).
	NonTarget map[string][]float64
}

// RunAlphaSweep reproduces Fig. 11: learned-configuration latency and
// throughput for the target as α varies, for three representative
// workloads.
func RunAlphaSweep(e *Env, values []float64, targets []string) (*SweepResult, error) {
	return runSweep(e, "alpha", values, targets)
}

// RunBetaSweep reproduces Fig. 12: target vs non-target performance as β
// varies.
func RunBetaSweep(e *Env, values []float64, targets []string) (*SweepResult, error) {
	return runSweep(e, "beta", values, targets)
}

func runSweep(e *Env, param string, values []float64, targets []string) (*SweepResult, error) {
	if len(values) == 0 {
		values = []float64{0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}
	}
	res := &SweepResult{Param: param, Values: values, Workloads: targets,
		Lat: map[string][]float64{}, Tput: map[string][]float64{}, NonTarget: map[string][]float64{}}
	for _, target := range targets {
		for _, val := range values {
			g := *e.Grader
			opts := e.tunerOptions()
			if param == "alpha" {
				g.Alpha = val
				opts.Alpha = val
			} else {
				g.Beta = val
				opts.Beta = val
			}
			// The paper resets the model and AutoDB per point; a fresh
			// tuner from the reference does the same here.
			t, err := core.NewTuner(e.Space, e.Validator, &g, opts)
			if err != nil {
				return nil, err
			}
			tr, err := t.Tune(e.ctx(), target, e.InitialConfigs())
			if err != nil {
				return nil, err
			}
			lat, tput := speedupsVsRef(e, target, tr.BestPerf[target])
			res.Lat[target] = append(res.Lat[target], lat)
			res.Tput[target] = append(res.Tput[target], tput)

			ntLat := map[string]float64{}
			for cl, perfs := range tr.BestPerf {
				l, _ := speedupsVsRef(e, cl, perfs)
				ntLat[cl] = l
			}
			res.NonTarget[target] = append(res.NonTarget[target],
				geoMeanExcluding(ntLat, target, e.Validator.Clusters()))
		}
	}
	return res, nil
}

// Print renders the sweep as a table per workload.
func (r *SweepResult) Print(w io.Writer) {
	id, title := "fig11", "Impact of α (latency/throughput balance)"
	if r.Param == "beta" {
		id, title = "fig12", "Impact of β (target/non-target balance)"
	}
	section(w, id, title)
	for _, wl := range r.Workloads {
		fmt.Fprintf(w, "target %s:\n", wl)
		fmt.Fprintf(w, "  %-8s %10s %10s %14s\n", r.Param, "lat x", "tput x", "non-tgt lat x")
		for i, v := range r.Values {
			fmt.Fprintf(w, "  %-8.2f %10.2f %10.2f %14.2f\n",
				v, r.Lat[wl][i], r.Tput[wl][i], r.NonTarget[wl][i])
		}
	}
}

// OverheadResult is the Table 6 component-time breakdown.
type OverheadResult struct {
	FeatureExtractPer100K time.Duration
	SimilarityCompare     time.Duration
	Clustering            time.Duration
	DBLookup              time.Duration
	LearningPerIteration  time.Duration
	EfficiencyValidation  time.Duration
}

// Print renders Table 6.
func (o *OverheadResult) Print(w io.Writer) {
	section(w, "tab6", "Overhead sources of AutoBlox")
	rows := []struct {
		name string
		d    time.Duration
	}{
		{"Extract workload features per 100K I/O requests", o.FeatureExtractPer100K},
		{"Workload similarity comparison", o.SimilarityCompare},
		{"Workload clustering", o.Clustering},
		{"AutoDB database lookup", o.DBLookup},
		{"New configuration learning per iteration", o.LearningPerIteration},
		{"Efficiency validation", o.EfficiencyValidation},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%-52s %12.4fs\n", r.name, r.d.Seconds())
	}
}
