package experiments

import (
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/core"
)

// MatrixOptions selects the extra passes of a matrix experiment.
type MatrixOptions struct {
	// IgnoreNonTarget additionally learns β=0 configurations ("maximum
	// speedup of target workloads, ignore non-target", Table 1's lower
	// rows).
	IgnoreNonTarget bool
	// OrderAblation additionally runs each target *without* the §3.3
	// tuning order, for Figs. 9–10 (the default pipeline enforces the
	// order, as the paper does).
	OrderAblation bool
	// NoOrder disables the tuning-order stage entirely (skips the
	// fine-pruning pass; used by fast smoke runs).
	NoOrder bool
	// Parallel tunes the targets concurrently — the paper notes "the
	// pruning and training of each workload can be performed in
	// parallel". Results are identical to the sequential run (each
	// target's search is independently seeded; the shared validation
	// cache's singleflight dedup only changes who pays for a
	// simulation, not its result).
	Parallel bool
	// Targets restricts the tuned targets (default: every workload).
	Targets []string
}

// TargetRun holds everything learned for one target workload.
type TargetRun struct {
	Target string
	Result *core.TuneResult
	// Lat/Tput map workload -> speedup of the learned config vs the
	// reference (the Table 1/4/8/9 cell values).
	Lat, Tput map[string]float64
	// Energy maps workload -> [baselineJoules, learnedJoules] (Fig. 7).
	Energy map[string][2]float64

	// β=0 variant (ignore non-target), when requested.
	MaxResult *core.TuneResult
	MaxLat    map[string]float64
	MaxTput   map[string]float64
	// Order-ablation variants (Figs. 9–10), when requested. Both run on
	// fresh validators (no shared simulation cache) so wall-clock and
	// simulator-invocation counts are comparable.
	OrderedFresh  *core.TuneResult
	NoOrderResult *core.TuneResult
	// Order is the fine-pruning tuning order used by the main run.
	Order []string
}

// MatrixResult is a full Table 1-style experiment.
type MatrixResult struct {
	Env     *Env
	Targets []string
	Runs    map[string]*TargetRun
}

// RunMatrix tunes a configuration per target workload and measures the
// resulting lat/tput speedup matrix against the environment's reference.
func RunMatrix(e *Env, opts MatrixOptions) (*MatrixResult, error) {
	targets := opts.Targets
	if len(targets) == 0 {
		targets = e.Validator.Clusters()
	}
	res := &MatrixResult{Env: e, Targets: targets, Runs: map[string]*TargetRun{}}
	if opts.Parallel {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			firstErr error
		)
		for _, target := range targets {
			wg.Add(1)
			go func(target string) {
				defer wg.Done()
				run, err := runTarget(e, target, opts)
				mu.Lock()
				defer mu.Unlock()
				if err != nil && firstErr == nil {
					firstErr = fmt.Errorf("experiments: target %s: %w", target, err)
					return
				}
				res.Runs[target] = run
			}(target)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		return res, nil
	}
	for _, target := range targets {
		run, err := runTarget(e, target, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: target %s: %w", target, err)
		}
		res.Runs[target] = run
	}
	return res, nil
}

func runTarget(e *Env, target string, opts MatrixOptions) (*TargetRun, error) {
	tOpts := e.tunerOptions()
	var order []string
	if !opts.NoOrder {
		// The default AutoBlox pipeline enforces the §3.3 tuning order
		// learned by fine-grained pruning (§4.3: "AutoBlox applied the
		// learning order ... to improve its learning efficiency").
		fine, err := core.FinePrune(e.ctx(), e.Validator, e.Grader, target, e.RefCfg, nil,
			core.PruneOptions{Seed: e.Scale.Seed, Samples: e.Scale.PruneSamples})
		if err != nil {
			return nil, err
		}
		order = fine.Order
		tOpts.UseTuningOrder = true
		tOpts.Order = order
	}
	tOpts.Checkpoint = e.checkpointFor(target)
	tuner, err := core.NewTuner(e.Space, e.Validator, e.Grader, tOpts)
	if err != nil {
		return nil, err
	}
	tr, err := tuner.Tune(e.ctx(), target, e.InitialConfigs())
	if err != nil {
		return nil, err
	}
	run := &TargetRun{Target: target, Result: tr, Order: order,
		Lat: map[string]float64{}, Tput: map[string]float64{}, Energy: map[string][2]float64{}}
	for cl, perfs := range tr.BestPerf {
		lat, tput := speedupsVsRef(e, cl, perfs)
		run.Lat[cl], run.Tput[cl] = lat, tput
		run.Energy[cl] = [2]float64{e.Grader.Ref[cl][0].EnergyJoules, perfs[0].EnergyJoules}
	}

	if opts.IgnoreNonTarget {
		g0 := *e.Grader
		g0.Beta = 0
		bOpts := tOpts
		bOpts.Beta = 0
		bOpts.Checkpoint, bOpts.Resume = "", false // distinct run; never share a checkpoint
		t0, err := core.NewTuner(e.Space, e.Validator, &g0, bOpts)
		if err != nil {
			return nil, err
		}
		mr, err := t0.Tune(e.ctx(), target, e.InitialConfigs())
		if err != nil {
			return nil, err
		}
		run.MaxResult = mr
		run.MaxLat, run.MaxTput = map[string]float64{}, map[string]float64{}
		for cl, perfs := range mr.BestPerf {
			run.MaxLat[cl], run.MaxTput[cl] = speedupsVsRef(e, cl, perfs)
		}
	}

	if opts.OrderAblation {
		// Fresh validators per variant: the shared simulation cache would
		// otherwise make whichever variant runs second look nearly free.
		runFresh := func(useOrder bool) (*core.TuneResult, error) {
			v := core.NewValidatorSources(e.Space, e.sourceGroups())
			v.Parallel = e.Scale.Parallel
			g, err := core.NewGrader(e.ctx(), v, e.RefCfg, core.DefaultAlpha, core.DefaultBeta)
			if err != nil {
				return nil, err
			}
			vOpts := tOpts
			vOpts.Checkpoint, vOpts.Resume = "", false
			vOpts.UseTuningOrder = useOrder
			if useOrder {
				vOpts.Order = order
			} else {
				vOpts.Order = nil
			}
			tn, err := core.NewTuner(e.Space, v, g, vOpts)
			if err != nil {
				return nil, err
			}
			return tn.Tune(e.ctx(), target, e.InitialConfigs())
		}
		or, err := runFresh(true)
		if err != nil {
			return nil, err
		}
		nr, err := runFresh(false)
		if err != nil {
			return nil, err
		}
		run.OrderedFresh, run.NoOrderResult = or, nr
	}
	return run, nil
}

func speedupsVsRef(e *Env, cluster string, perfs []autodb.Perf) (lat, tput float64) {
	refs := e.Grader.Ref[cluster]
	var latLog, tputLog float64
	for i, p := range perfs {
		l, t := core.Speedups(p, refs[i])
		latLog += math.Log(l)
		tputLog += math.Log(t)
	}
	n := float64(len(perfs))
	return math.Exp(latLog / n), math.Exp(tputLog / n)
}

// geoMeanExcluding returns the geometric mean of m's values over all
// workloads except the excluded one.
func geoMeanExcluding(m map[string]float64, exclude string, order []string) float64 {
	var sum float64
	var n int
	for _, k := range order {
		if k == exclude {
			continue
		}
		sum += math.Log(m[k])
		n++
	}
	if n == 0 {
		return 1
	}
	return math.Exp(sum / float64(n))
}

// PrintMatrix renders the Table 1/4/8/9 layout: rows are measured
// workloads, columns are target workloads, cells are lat/tput speedups
// with the target-on-diagonal in brackets.
func (m *MatrixResult) PrintMatrix(w io.Writer, id, title string) {
	section(w, id, title)
	fmt.Fprintf(w, "%-16s", "workload \\ target")
	for _, t := range m.Targets {
		fmt.Fprintf(w, " %12s", truncate(t, 12))
	}
	fmt.Fprintln(w)
	for _, wl := range m.Targets {
		fmt.Fprintf(w, "%-16s", truncate(wl, 16))
		for _, t := range m.Targets {
			run := m.Runs[t]
			cell := fmt.Sprintf("%.2f/%.2f", run.Lat[wl], run.Tput[wl])
			if wl == t {
				cell = "[" + cell + "]"
			}
			fmt.Fprintf(w, " %12s", cell)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-16s", "geomean(non-tgt)")
	for _, t := range m.Targets {
		run := m.Runs[t]
		cell := fmt.Sprintf("%.2f/%.2f",
			geoMeanExcluding(run.Lat, t, m.Targets), geoMeanExcluding(run.Tput, t, m.Targets))
		fmt.Fprintf(w, " %12s", cell)
	}
	fmt.Fprintln(w)

	if anyMax(m) {
		fmt.Fprintf(w, "%-16s", "max tgt (β=0)")
		for _, t := range m.Targets {
			run := m.Runs[t]
			cell := "-"
			if run.MaxLat != nil {
				cell = fmt.Sprintf("%.2f/%.2f", run.MaxLat[t], run.MaxTput[t])
			}
			fmt.Fprintf(w, " %12s", cell)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "%-16s", "worst non-tgt")
		for _, t := range m.Targets {
			run := m.Runs[t]
			cell := "-"
			if run.MaxLat != nil {
				worst := math.Inf(1)
				for _, wl := range m.Targets {
					if wl != t && run.MaxLat[wl] < worst {
						worst = run.MaxLat[wl]
					}
				}
				cell = fmt.Sprintf("%.2f", worst)
			}
			fmt.Fprintf(w, " %12s", cell)
		}
		fmt.Fprintln(w)
	}
}

func anyMax(m *MatrixResult) bool {
	for _, r := range m.Runs {
		if r.MaxLat != nil {
			return true
		}
	}
	return false
}

// PrintCriticalParams renders Table 5: the critical parameter values of
// each learned configuration next to the reference.
func (m *MatrixResult) PrintCriticalParams(w io.Writer) {
	section(w, "tab5", "Critical parameters of learned configurations")
	names := []string{"CMTCapacity", "DataCacheSize", "FlashChannelCount", "ChipNoPerChannel",
		"DieNoPerChip", "PlaneNoPerDie", "BlockNoPerPlane", "PageNoPerBlock"}
	fmt.Fprintf(w, "%-22s %10s", "parameter", "reference")
	for _, t := range m.Targets {
		fmt.Fprintf(w, " %10s", truncate(t, 10))
	}
	fmt.Fprintln(w)
	for _, n := range names {
		fmt.Fprintf(w, "%-22s", n)
		if v, err := m.Env.Space.ValueByName(m.Env.RefCfg, n); err == nil {
			fmt.Fprintf(w, " %10g", v)
		}
		for _, t := range m.Targets {
			v, err := m.Env.Space.ValueByName(m.Runs[t].Result.Best, n)
			if err != nil {
				fmt.Fprintf(w, " %10s", "-")
				continue
			}
			fmt.Fprintf(w, " %10g", v)
		}
		fmt.Fprintln(w)
	}
}

// PrintEnergy renders Fig. 7: baseline vs learned energy per workload
// (each target's configuration measured on its own workload).
func (m *MatrixResult) PrintEnergy(w io.Writer) {
	section(w, "fig7", "Energy of learned configurations vs baseline")
	fmt.Fprintf(w, "%-16s %14s %14s %8s\n", "workload", "baseline (J)", "learned (J)", "ratio")
	for _, t := range m.Targets {
		e := m.Runs[t].Energy[t]
		fmt.Fprintf(w, "%-16s %14.3f %14.3f %8.2fx\n", t, e[0], e[1], e[0]/e[1])
	}
}

// PrintLearningTime renders Fig. 8: per-target tuning wall time,
// iterations and simulator invocations.
func (m *MatrixResult) PrintLearningTime(w io.Writer) {
	section(w, "fig8", "Learning time per target workload")
	fmt.Fprintf(w, "%-16s %12s %10s %9s %10s\n", "target", "wall time", "iters", "sims", "converged")
	var totalIters int
	for _, t := range m.Targets {
		r := m.Runs[t].Result
		fmt.Fprintf(w, "%-16s %12s %10d %9d %10v\n",
			t, r.Elapsed.Round(time.Millisecond), r.Iterations, r.SimRuns, r.Converged)
		totalIters += r.Iterations
	}
	fmt.Fprintf(w, "average iterations: %.1f (paper: 89 at full scale)\n",
		float64(totalIters)/float64(len(m.Targets)))
}

// PrintOrderAblation renders Fig. 9 (learning time with vs without the
// enforced order) and Fig. 10 (grade trajectories) for the targets where
// the ablation ran.
func (m *MatrixResult) PrintOrderAblation(w io.Writer) {
	section(w, "fig9", "Learning time with vs without enforced tuning order")
	fmt.Fprintf(w, "%-16s %14s %14s %11s %11s %7s %7s\n",
		"target", "ordered time", "no-order time", "ordered G", "no-order G", "o.sims", "n.sims")
	for _, t := range m.Targets {
		r := m.Runs[t]
		if r.NoOrderResult == nil || r.OrderedFresh == nil {
			continue
		}
		fmt.Fprintf(w, "%-16s %14s %14s %11.4f %11.4f %7d %7d\n", t,
			r.OrderedFresh.Elapsed.Round(time.Millisecond), r.NoOrderResult.Elapsed.Round(time.Millisecond),
			r.OrderedFresh.BestGrade, r.NoOrderResult.BestGrade,
			r.OrderedFresh.SimRuns, r.NoOrderResult.SimRuns)
	}
	section(w, "fig10", "Best-grade trajectory (ordered | unordered)")
	for _, t := range m.Targets {
		r := m.Runs[t]
		if r.NoOrderResult == nil || r.OrderedFresh == nil {
			continue
		}
		fmt.Fprintf(w, "%s ordered:  %s\n", t, sparkline(r.OrderedFresh.Trajectory))
		fmt.Fprintf(w, "%s unordered:%s\n", t, sparkline(r.NoOrderResult.Trajectory))
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}

// sparkline prints a numeric trajectory compactly.
func sparkline(xs []float64) string {
	out := ""
	for _, x := range xs {
		out += fmt.Sprintf(" %.3f", x)
	}
	return out
}
