package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"autoblox/internal/autodb"
	"autoblox/internal/core"
	"autoblox/internal/kmeans"
	"autoblox/internal/linalg"
	"autoblox/internal/ssdconf"
	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// RunTable6 measures the wall-clock cost of AutoBlox's components on
// this machine, mirroring Table 6's rows. The paper's absolute numbers
// come from a 24-core Xeon with multi-hour traces; the *ordering* —
// efficiency validation dominating everything else by orders of
// magnitude — is the reproduced shape.
func RunTable6(e *Env) (*OverheadResult, error) {
	out := &OverheadResult{}

	// Feature extraction per 100K requests, streamed window-by-window so
	// the 100K-request trace is never materialized.
	src, err := workload.NewSource(workload.Database, workload.Options{Requests: 100000, Seed: e.Scale.Seed})
	if err != nil {
		return nil, err
	}
	t0 := time.Now()
	feats, err := trace.FeatureMatrixSource(src, trace.DefaultWindowSize)
	if err != nil {
		return nil, err
	}
	out.FeatureExtractPer100K = time.Since(t0)

	// Clustering (PCA + k-means fit over the extracted windows).
	t0 = time.Now()
	m := linalg.FromRows(feats)
	cl, err := core.TrainClustererSources([]trace.Source{src}, core.ClustererConfig{K: 1, Seed: e.Scale.Seed})
	if err != nil {
		return nil, err
	}
	out.Clustering = time.Since(t0)

	// Similarity comparison: assign a fresh streamed trace against the model.
	probe, err := workload.NewSource(workload.KVStore, workload.Options{Requests: e.Scale.Requests, Seed: e.Scale.Seed + 1})
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	if _, err := cl.AssignSource(probe); err != nil {
		return nil, err
	}
	_ = kmeans.Centroid(m) // include the centroid computation the paper's comparison performs
	out.SimilarityCompare = time.Since(t0)

	// AutoDB lookup.
	dir, err := os.MkdirTemp("", "autodb")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	db, err := autodb.Open(filepath.Join(dir, "db.log"))
	if err != nil {
		return nil, err
	}
	defer db.Close()
	for i := 0; i < 32; i++ {
		if err := db.AddConfig(i, "c", autodb.StoredConfig{Key: fmt.Sprint(i), Config: e.RefCfg, Grade: float64(i)}); err != nil {
			return nil, err
		}
	}
	t0 = time.Now()
	if _, err := db.BestConfigs(17, 3); err != nil {
		return nil, err
	}
	out.DBLookup = time.Since(t0)

	// Per-iteration learning cost vs efficiency validation: a short
	// tuning run, attributing simulator time to validation.
	target := string(e.Cats[0])
	opts := e.tunerOptions()
	opts.MaxIterations = 4
	tuner, err := core.NewTuner(e.Space, e.Validator, e.Grader, opts)
	if err != nil {
		return nil, err
	}
	// A dedicated validator so cached results don't hide validation cost.
	// Serial workers: Stats().SimBusy sums per-worker simulation time
	// (NOT elapsed wall-clock — under parallelism the sum exceeds the
	// real span, Stats().WallSpan, and the learning-time subtraction
	// below would go negative). Pinning Parallel=1 makes SimBusy and
	// WallSpan coincide so "total - SimBusy" is a valid learning cost.
	fresh := core.NewValidatorSources(e.Space, e.sourceGroups())
	fresh.Parallel = 1
	grader, err := core.NewGrader(e.ctx(), fresh, e.RefCfg, core.DefaultAlpha, core.DefaultBeta)
	if err != nil {
		return nil, err
	}
	tuner, err = core.NewTuner(e.Space, fresh, grader, opts)
	if err != nil {
		return nil, err
	}
	t0 = time.Now()
	res, err := tuner.Tune(e.ctx(), target, []ssdconf.Config{e.RefCfg})
	if err != nil {
		return nil, err
	}
	total := time.Since(t0)

	// Efficiency validation is the simulator time per search iteration;
	// learning is everything else (GPR fits, SGD walks, bookkeeping).
	simWall := fresh.Stats().SimBusy
	if res.Iterations > 0 {
		out.EfficiencyValidation = simWall / time.Duration(res.Iterations)
		learning := total - simWall
		if learning < 0 {
			learning = 0
		}
		out.LearningPerIteration = learning / time.Duration(res.Iterations)
	}
	return out, nil
}

// WhatIfRun is one Table 7 column.
type WhatIfRun struct {
	Goal   core.WhatIfGoal
	Result *core.WhatIfResult
}

// RunTable7 reproduces the what-if analysis: 3× latency targets for the
// latency-sensitive workloads and 3× throughput targets for the
// throughput-intensive ones, over the expanded bounds.
func RunTable7(scale Scale, goalFactor float64) ([]WhatIfRun, *Env, error) {
	if goalFactor <= 0 {
		goalFactor = 3
	}
	cons := ssdconf.DefaultConstraints()
	cats := []workload.Category{workload.VDI, workload.WebSearch, workload.Database, workload.KVStore}
	env, err := NewWhatIfEnv(scale, cons, intelRef(), cats)
	if err != nil {
		return nil, nil, err
	}
	goals := []core.WhatIfGoal{
		{Target: "VDI", LatencyReduction: goalFactor},
		{Target: "WebSearch", LatencyReduction: goalFactor},
		{Target: "Database", ThroughputGain: goalFactor},
		{Target: "KVStore", ThroughputGain: goalFactor},
	}
	var out []WhatIfRun
	for _, goal := range goals {
		opts := env.tunerOptions()
		// What-if explores a much larger space; give it more room
		// (the paper reports 121 iterations vs 89 for commodity runs).
		opts.MaxIterations = scale.MaxIterations * 4
		res, err := core.WhatIf(env.ctx(), env.Space, env.Validator, env.Grader, goal,
			[]ssdconf.Config{env.RefCfg}, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("experiments: what-if %s: %w", goal.Target, err)
		}
		out = append(out, WhatIfRun{Goal: goal, Result: res})
	}
	return out, env, nil
}

// PrintTable7 renders the what-if critical-parameter table.
func PrintTable7(w io.Writer, runs []WhatIfRun, env *Env) {
	section(w, "tab7", "What-if analysis: optimized configurations for performance targets")
	fmt.Fprintf(w, "%-22s %10s", "parameter", "baseline")
	for _, r := range runs {
		fmt.Fprintf(w, " %10s", truncate(r.Goal.Target, 10))
	}
	fmt.Fprintln(w)
	for _, name := range core.Table7Params {
		fmt.Fprintf(w, "%-22s", name)
		if v, err := env.Space.ValueByName(env.RefCfg, name); err == nil {
			fmt.Fprintf(w, " %10g", v)
		}
		for _, r := range runs {
			fmt.Fprintf(w, " %10g", r.Result.CriticalParams[name])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "%-22s %10s", "achieved", "-")
	for _, r := range runs {
		fmt.Fprintf(w, " %10v", r.Result.Achieved)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-22s %10s", "lat/tput speedup", "-")
	for _, r := range runs {
		fmt.Fprintf(w, " %10s", fmt.Sprintf("%.2f/%.2f", r.Result.LatencySpeedup, r.Result.ThroughputSpeedup))
	}
	fmt.Fprintln(w)
	var iters int
	for _, r := range runs {
		iters += r.Result.Iterations
	}
	fmt.Fprintf(w, "average iterations: %.1f (paper: 121); search space: %.3g configurations\n",
		float64(iters)/float64(len(runs)), env.Space.SearchSpaceSize())
}
