package experiments

import (
	"fmt"
	"io"
	"sync"

	"autoblox/internal/ssd"
	"autoblox/internal/ssdconf"
	"autoblox/internal/workload"
)

func intelRef() ssd.DeviceParams { return ssd.Intel750() }

// Shared, memoized environments/results so the benchmarks and the CLI
// can invoke individual experiments without repeating the expensive
// setup. Keyed by the Scale value.
var (
	memoMu    sync.Mutex
	envMemo   = map[string]*Env{}
	mtxMemo   = map[string]*MatrixResult{}
	fig2Memo  = map[string]*Fig2Result{}
	sweepMemo = map[string]*SweepResult{}
	t7Memo    = map[string][]WhatIfRun{}
	t7EnvMemo = map[string]*Env{}
)

func scaleKey(s Scale, tag string) string {
	return fmt.Sprintf("%s|%d|%d|%d|%d|%d|%d", tag, s.Requests, s.MaxIterations, s.SGDSteps, s.PruneSamples, s.Seed, s.Parallel)
}

// StudiedEnv returns (building once) the Table 1 environment: studied
// categories, Intel 750 reference, 512GB/NVMe/MLC constraints.
func StudiedEnv(scale Scale) (*Env, error) {
	memoMu.Lock()
	defer memoMu.Unlock()
	k := scaleKey(scale, "studied")
	if e, ok := envMemo[k]; ok {
		return e, nil
	}
	e, err := NewEnv(scale, ssdconf.DefaultConstraints(), intelRef(), workload.Studied())
	if err != nil {
		return nil, err
	}
	envMemo[k] = e
	return e, nil
}

// NewWorkloadsEnv returns the Table 4 environment over the six new
// categories.
func NewWorkloadsEnv(scale Scale) (*Env, error) {
	memoMu.Lock()
	defer memoMu.Unlock()
	k := scaleKey(scale, "new")
	if e, ok := envMemo[k]; ok {
		return e, nil
	}
	e, err := NewEnv(scale, ssdconf.DefaultConstraints(), intelRef(), workload.New())
	if err != nil {
		return nil, err
	}
	envMemo[k] = e
	return e, nil
}

// SLCEnv returns the Table 8 environment: Samsung Z-SSD reference with
// an SLC flash constraint.
func SLCEnv(scale Scale) (*Env, error) {
	memoMu.Lock()
	defer memoMu.Unlock()
	k := scaleKey(scale, "slc")
	if e, ok := envMemo[k]; ok {
		return e, nil
	}
	cons := ssdconf.DefaultConstraints()
	cons.Flash = ssd.SLC
	e, err := NewEnv(scale, cons, ssd.SamsungZSSD(), workload.Studied())
	if err != nil {
		return nil, err
	}
	envMemo[k] = e
	return e, nil
}

// SATAEnv returns the Table 9 environment: Samsung 850 PRO reference
// with a SATA interface constraint.
func SATAEnv(scale Scale) (*Env, error) {
	memoMu.Lock()
	defer memoMu.Unlock()
	k := scaleKey(scale, "sata")
	if e, ok := envMemo[k]; ok {
		return e, nil
	}
	cons := ssdconf.DefaultConstraints()
	cons.Interface = ssd.SATA
	e, err := NewEnv(scale, cons, ssd.Samsung850Pro(), workload.Studied())
	if err != nil {
		return nil, err
	}
	envMemo[k] = e
	return e, nil
}

// Matrix memoizes RunMatrix per (env tag, scale).
func Matrix(scale Scale, tag string, envFn func(Scale) (*Env, error), opts MatrixOptions) (*MatrixResult, error) {
	memoMu.Lock()
	k := scaleKey(scale, "mtx-"+tag)
	if m, ok := mtxMemo[k]; ok {
		memoMu.Unlock()
		return m, nil
	}
	memoMu.Unlock()

	e, err := envFn(scale)
	if err != nil {
		return nil, err
	}
	m, err := RunMatrix(e, opts)
	if err != nil {
		return nil, err
	}
	memoMu.Lock()
	mtxMemo[k] = m
	memoMu.Unlock()
	return m, nil
}

// Fig2 memoizes RunFig2.
func Fig2(scale Scale) (*Fig2Result, error) {
	memoMu.Lock()
	defer memoMu.Unlock()
	k := scaleKey(scale, "fig2")
	if r, ok := fig2Memo[k]; ok {
		return r, nil
	}
	r, err := RunFig2(scale)
	if err != nil {
		return nil, err
	}
	fig2Memo[k] = r
	return r, nil
}

// Table1Options are the passes the Table 1 reproduction runs.
func Table1Options() MatrixOptions {
	return MatrixOptions{IgnoreNonTarget: true}
}

// sweepTargets are the three representative workloads of Figs. 11–12.
func sweepTargets() []string {
	return []string{string(workload.Database), string(workload.KVStore), string(workload.LiveMaps)}
}

// AlphaSweep memoizes the Fig. 11 study.
func AlphaSweep(scale Scale) (*SweepResult, error) {
	return memoSweep(scale, "alpha", RunAlphaSweep)
}

// BetaSweep memoizes the Fig. 12 study.
func BetaSweep(scale Scale) (*SweepResult, error) {
	return memoSweep(scale, "beta", RunBetaSweep)
}

func memoSweep(scale Scale, tag string, run func(*Env, []float64, []string) (*SweepResult, error)) (*SweepResult, error) {
	memoMu.Lock()
	k := scaleKey(scale, "sweep-"+tag)
	if r, ok := sweepMemo[k]; ok {
		memoMu.Unlock()
		return r, nil
	}
	memoMu.Unlock()
	e, err := StudiedEnv(scale)
	if err != nil {
		return nil, err
	}
	r, err := run(e, nil, sweepTargets())
	if err != nil {
		return nil, err
	}
	memoMu.Lock()
	sweepMemo[k] = r
	memoMu.Unlock()
	return r, nil
}

// Table7 memoizes the what-if analysis.
func Table7(scale Scale) ([]WhatIfRun, *Env, error) {
	memoMu.Lock()
	k := scaleKey(scale, "tab7")
	if r, ok := t7Memo[k]; ok {
		e := t7EnvMemo[k]
		memoMu.Unlock()
		return r, e, nil
	}
	memoMu.Unlock()
	runs, env, err := RunTable7(scale, 3)
	if err != nil {
		return nil, nil, err
	}
	memoMu.Lock()
	t7Memo[k] = runs
	t7EnvMemo[k] = env
	memoMu.Unlock()
	return runs, env, nil
}

// RunAll executes every experiment at the given scale, writing each
// table/figure to w. `only` filters by experiment id (empty = all).
func RunAll(w io.Writer, scale Scale, only map[string]bool) error {
	return RunAllCSV(w, scale, only, "")
}

// RunAllCSV is RunAll with an optional CSV export directory: when csvDir
// is non-empty, each artifact also writes its underlying data as CSV for
// external plotting.
func RunAllCSV(w io.Writer, scale Scale, only map[string]bool, csvDir string) error {
	want := func(id string) bool { return len(only) == 0 || only[id] }
	exportCSV := func(write func(string) error) error {
		if csvDir == "" {
			return nil
		}
		return write(csvDir)
	}

	if want("fig2") {
		r, err := Fig2(scale)
		if err != nil {
			return err
		}
		r.Print(w)
		if err := exportCSV(r.WriteCSV); err != nil {
			return err
		}
	}

	if want("fig4") || want("fig5") {
		e, err := StudiedEnv(scale)
		if err != nil {
			return err
		}
		r, err := RunFig45(e, string(workload.Database))
		if err != nil {
			return err
		}
		r.Print(w)
		if err := exportCSV(r.WriteCSV); err != nil {
			return err
		}
	}

	if want("tab1") || want("tab5") || want("fig7") || want("fig8") {
		m, err := Matrix(scale, "studied", StudiedEnv, Table1Options())
		if err != nil {
			return err
		}
		if want("tab1") {
			m.PrintMatrix(w, "tab1", "Learned configurations, NVMe MLC (vs Intel 750) — lat/tput speedups")
		}
		if want("tab5") {
			m.PrintCriticalParams(w)
		}
		if want("fig7") {
			m.PrintEnergy(w)
		}
		if want("fig8") {
			m.PrintLearningTime(w)
		}
		if err := exportCSV(func(d string) error { return m.WriteCSV(d, "tab1") }); err != nil {
			return err
		}
	}

	if want("tab4") {
		m, err := Matrix(scale, "new", NewWorkloadsEnv, MatrixOptions{})
		if err != nil {
			return err
		}
		m.PrintMatrix(w, "tab4", "Learned configurations for new (unseen) workloads (vs Intel 750)")
		if err := exportCSV(func(d string) error { return m.WriteCSV(d, "tab4") }); err != nil {
			return err
		}
	}

	if want("tab6") {
		e, err := StudiedEnv(scale)
		if err != nil {
			return err
		}
		o, err := RunTable6(e)
		if err != nil {
			return err
		}
		o.Print(w)
	}

	if want("tab7") {
		runs, env, err := Table7(scale)
		if err != nil {
			return err
		}
		PrintTable7(w, runs, env)
	}

	if want("tab8") {
		m, err := Matrix(scale, "slc", SLCEnv, MatrixOptions{})
		if err != nil {
			return err
		}
		m.PrintMatrix(w, "tab8", "Learned configurations, NVMe SLC (vs Samsung Z-SSD)")
		if err := exportCSV(func(d string) error { return m.WriteCSV(d, "tab8") }); err != nil {
			return err
		}
	}

	if want("tab9") {
		m, err := Matrix(scale, "sata", SATAEnv, MatrixOptions{})
		if err != nil {
			return err
		}
		m.PrintMatrix(w, "tab9", "Learned configurations, SATA MLC (vs Samsung 850 PRO)")
		if err := exportCSV(func(d string) error { return m.WriteCSV(d, "tab9") }); err != nil {
			return err
		}
	}

	if want("fig9") || want("fig10") {
		m, err := Matrix(scale, "ablate", StudiedEnv, MatrixOptions{
			OrderAblation: true,
			Targets:       []string{string(workload.Database), string(workload.KVStore)},
		})
		if err != nil {
			return err
		}
		m.PrintOrderAblation(w)
	}

	if want("fig11") {
		e, err := StudiedEnv(scale)
		if err != nil {
			return err
		}
		r, err := AlphaSweep(scale)
		if err != nil {
			return err
		}
		_ = e
		r.Print(w)
		if err := exportCSV(r.WriteCSV); err != nil {
			return err
		}
	}

	if want("fig12") {
		e, err := StudiedEnv(scale)
		if err != nil {
			return err
		}
		r, err := BetaSweep(scale)
		if err != nil {
			return err
		}
		_ = e
		r.Print(w)
		if err := exportCSV(r.WriteCSV); err != nil {
			return err
		}
	}
	return nil
}

// IDs lists the experiment identifiers RunAll understands.
func IDs() []string {
	return []string{"fig2", "fig4", "fig5", "tab1", "tab4", "tab5", "tab6", "tab7", "tab8", "tab9",
		"fig7", "fig8", "fig9", "fig10", "fig11", "fig12"}
}
