package gpr

import (
	"math/rand"
	"testing"
)

func trainingSet(n, d int, seed int64) ([][]float64, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = make([]float64, d)
		for j := range x[i] {
			x[i][j] = rng.NormFloat64()
		}
		y[i] = rng.NormFloat64()
	}
	return x, y
}

// BenchmarkFit100 measures conditioning a GP on 100 60-dim points — the
// typical surrogate size late in a tuning run.
func BenchmarkFit100(b *testing.B) {
	x, y := trainingSet(100, 60, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := New(nil)
		g.OptimizeHyperparams = false
		if err := g.Fit(x, y); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPredict measures a posterior evaluation against a 100-point
// GP — the per-candidate cost of the SGD search.
func BenchmarkPredict(b *testing.B) {
	x, y := trainingSet(100, 60, 2)
	g := New(nil)
	g.OptimizeHyperparams = false
	if err := g.Fit(x, y); err != nil {
		b.Fatal(err)
	}
	q := x[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := g.PredictOne(q); err != nil {
			b.Fatal(err)
		}
	}
}
