package gpr

import (
	"errors"
	"fmt"
	"math"

	"autoblox/internal/linalg"
)

// GP is a Gaussian-process regressor with a trainable constant mean.
type GP struct {
	Kernel Kernel
	// Jitter is added to the diagonal for numerical stability.
	Jitter float64
	// OptimizeHyperparams enables the log-marginal-likelihood
	// hyperparameter search during Fit (coordinate descent in log space).
	OptimizeHyperparams bool

	// Fitted state.
	x     [][]float64
	mean  float64 // trainable constant mean (the empirical mean of y)
	alpha []float64
	chol  *linalg.Matrix
	lml   float64
}

// New returns a GP with the given kernel. A nil kernel selects
// DefaultKernel().
func New(k Kernel) *GP {
	if k == nil {
		k = DefaultKernel()
	}
	return &GP{Kernel: k, Jitter: 1e-8, OptimizeHyperparams: true}
}

// Fit conditions the GP on observations (x[i], y[i]).
func (g *GP) Fit(x [][]float64, y []float64) error {
	if len(x) == 0 {
		return errors.New("gpr: no training points")
	}
	if len(x) != len(y) {
		return fmt.Errorf("gpr: %d inputs, %d targets", len(x), len(y))
	}
	d := len(x[0])
	for i, xi := range x {
		if len(xi) != d {
			return fmt.Errorf("gpr: ragged input at %d (%d dims, want %d)", i, len(xi), d)
		}
	}

	// Trainable mean: fit the empirical mean; the kernel models residuals.
	var mu float64
	for _, v := range y {
		mu += v
	}
	mu /= float64(len(y))

	g.x = make([][]float64, len(x))
	for i := range x {
		g.x[i] = append([]float64(nil), x[i]...)
	}
	g.mean = mu

	resid := make([]float64, len(y))
	for i, v := range y {
		resid[i] = v - mu
	}

	if g.OptimizeHyperparams && len(x) >= 4 {
		g.optimize(resid)
	}
	return g.refit(resid)
}

// refit recomputes the Cholesky factor and alpha for the current kernel.
func (g *GP) refit(resid []float64) error {
	kmat := gram(g.Kernel, g.x)
	jitter := g.Jitter
	var l *linalg.Matrix
	var err error
	for attempts := 0; attempts < 8; attempts++ {
		l, err = linalg.Cholesky(kmat.Clone().AddDiag(jitter))
		if err == nil {
			break
		}
		jitter *= 10
	}
	if err != nil {
		return fmt.Errorf("gpr: kernel matrix not positive definite even with jitter: %w", err)
	}
	g.chol = l
	g.alpha = linalg.SolveCholesky(l, resid)
	g.lml = g.logMarginalLikelihood(l, resid, g.alpha)
	return nil
}

// logMarginalLikelihood computes log p(y | X, θ) for the current factor.
func (g *GP) logMarginalLikelihood(l *linalg.Matrix, resid, alpha []float64) float64 {
	n := len(resid)
	var logDet float64
	for i := 0; i < n; i++ {
		logDet += math.Log(l.At(i, i))
	}
	return -0.5*linalg.Dot(resid, alpha) - logDet - 0.5*float64(n)*math.Log(2*math.Pi)
}

// optimize performs a few rounds of coordinate descent on the kernel's
// log-space hyperparameters, maximizing the log marginal likelihood.
// Gradient-free by design: the hyperparameter count is tiny (≤6) and the
// grade surface is noisy, so golden-section-style bracketing per
// coordinate is robust and cheap.
func (g *GP) optimize(resid []float64) {
	eval := func(p []float64) float64 {
		g.Kernel.SetParams(p)
		kmat := gram(g.Kernel, g.x)
		l, err := linalg.Cholesky(kmat.Clone().AddDiag(g.Jitter))
		if err != nil {
			return math.Inf(-1)
		}
		alpha := linalg.SolveCholesky(l, resid)
		return g.logMarginalLikelihood(l, resid, alpha)
	}

	best := g.Kernel.Params()
	bestLML := eval(best)
	steps := []float64{1.0, 0.5, 0.25}
	for _, step := range steps {
		for c := 0; c < len(best); c++ {
			for _, dir := range []float64{+1, -1} {
				cand := append([]float64(nil), best...)
				cand[c] += dir * step
				// Keep hyperparameters in a sane log range.
				if cand[c] < -10 || cand[c] > 10 {
					continue
				}
				if lml := eval(cand); lml > bestLML {
					best, bestLML = cand, lml
				}
			}
		}
	}
	g.Kernel.SetParams(best)
}

// Predict returns the posterior mean and standard deviation at each query
// point.
func (g *GP) Predict(x [][]float64) (mean, std []float64, err error) {
	if g.chol == nil {
		return nil, nil, errors.New("gpr: Predict before Fit")
	}
	n := len(g.x)
	mean = make([]float64, len(x))
	std = make([]float64, len(x))
	kstar := make([]float64, n)
	for q, xq := range x {
		for i := 0; i < n; i++ {
			kstar[i] = g.Kernel.Eval(g.x[i], xq)
		}
		mean[q] = g.mean + linalg.Dot(kstar, g.alpha)

		// Solve L·v = k* for the variance term.
		v := make([]float64, n)
		for i := 0; i < n; i++ {
			sum := kstar[i]
			for k := 0; k < i; k++ {
				sum -= g.chol.At(i, k) * v[k]
			}
			v[i] = sum / g.chol.At(i, i)
		}
		variance := g.Kernel.Eval(xq, xq) - linalg.Dot(v, v)
		if variance < 0 {
			variance = 0
		}
		std[q] = math.Sqrt(variance)
	}
	return mean, std, nil
}

// PredictOne returns the posterior mean and standard deviation at one
// query point.
func (g *GP) PredictOne(x []float64) (mean, std float64, err error) {
	m, s, err := g.Predict([][]float64{x})
	if err != nil {
		return 0, 0, err
	}
	return m[0], s[0], nil
}

// LogMarginalLikelihood reports the LML of the fitted model.
func (g *GP) LogMarginalLikelihood() float64 { return g.lml }

// Mean returns the trained constant mean.
func (g *GP) Mean() float64 { return g.mean }

// UCB returns the upper confidence bound mean + beta·std at x — the
// acquisition score used to rank candidate configurations.
func (g *GP) UCB(x []float64, beta float64) (float64, error) {
	m, s, err := g.PredictOne(x)
	if err != nil {
		return 0, err
	}
	return m + beta*s, nil
}

// ExpectedImprovement returns the EI acquisition value at x against the
// incumbent best observation: E[max(f(x) - best, 0)] under the posterior.
// An alternative to UCB for ranking candidate configurations; both weigh
// posterior mean against uncertainty.
func (g *GP) ExpectedImprovement(x []float64, best float64) (float64, error) {
	m, s, err := g.PredictOne(x)
	if err != nil {
		return 0, err
	}
	if s <= 0 {
		if m > best {
			return m - best, nil
		}
		return 0, nil
	}
	z := (m - best) / s
	// Standard normal pdf and cdf.
	pdf := math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
	cdf := 0.5 * (1 + math.Erf(z/math.Sqrt2))
	return (m-best)*cdf + s*pdf, nil
}
