package gpr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKernelBasics(t *testing.T) {
	a, b := []float64{0, 0}, []float64{1, 1}
	rbf := NewRBF(2, 1)
	if got := rbf.Eval(a, a); math.Abs(got-2) > 1e-12 {
		t.Fatalf("RBF(a,a) = %g, want variance 2", got)
	}
	if rbf.Eval(a, b) >= rbf.Eval(a, a) {
		t.Fatal("RBF must decay with distance")
	}
	rq := NewRationalQuadratic(3, 1, 1)
	if got := rq.Eval(a, a); math.Abs(got-3) > 1e-12 {
		t.Fatalf("RQ(a,a) = %g, want 3", got)
	}
	w := NewWhite(0.5)
	if w.Eval(a, a) != 0.5 || w.Eval(a, b) != 0 {
		t.Fatal("White kernel wrong")
	}
	sum := NewSum(rbf, rq, w)
	if got := sum.Eval(a, b); math.Abs(got-(rbf.Eval(a, b)+rq.Eval(a, b))) > 1e-12 {
		t.Fatalf("Sum.Eval wrong: %g", got)
	}
}

func TestKernelParamsRoundTrip(t *testing.T) {
	kernels := []Kernel{NewRBF(1.5, 0.7), NewRationalQuadratic(2, 3, 0.5), NewWhite(0.01), DefaultKernel()}
	for _, k := range kernels {
		p := k.Params()
		k.SetParams(p)
		p2 := k.Params()
		for i := range p {
			if math.Abs(p[i]-p2[i]) > 1e-12 {
				t.Fatalf("%s params not round-trippable: %v vs %v", k.Name(), p, p2)
			}
		}
	}
}

func TestSymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 1 + rng.Intn(5)
		a := make([]float64, d)
		b := make([]float64, d)
		for i := 0; i < d; i++ {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		k := DefaultKernel()
		return math.Abs(k.Eval(a, b)-k.Eval(b, a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitErrors(t *testing.T) {
	g := New(nil)
	if err := g.Fit(nil, nil); err == nil {
		t.Fatal("expected error on empty fit")
	}
	if err := g.Fit([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
	if err := g.Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}); err == nil {
		t.Fatal("expected error on ragged input")
	}
	if _, _, err := New(nil).Predict([][]float64{{1}}); err == nil {
		t.Fatal("expected error on predict before fit")
	}
}

func TestInterpolatesTrainingPoints(t *testing.T) {
	// With a tiny white-noise term the GP should nearly interpolate.
	x := [][]float64{{0}, {1}, {2}, {3}, {4}}
	y := []float64{0, 1, 4, 9, 16}
	g := New(NewSum(NewRBF(10, 1.5), NewWhite(1e-6)))
	g.OptimizeHyperparams = false
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	mean, std, err := g.Predict(x)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(mean[i]-y[i]) > 0.05 {
			t.Fatalf("mean[%d] = %g, want ~%g", i, mean[i], y[i])
		}
		if std[i] > 0.2 {
			t.Fatalf("std at training point too high: %g", std[i])
		}
	}
}

func TestUncertaintyGrowsAwayFromData(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{1, 2, 3}
	g := New(NewSum(NewRBF(1, 1), NewWhite(1e-4)))
	g.OptimizeHyperparams = false
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	_, stdNear, _ := g.Predict([][]float64{{1.1}})
	_, stdFar, _ := g.Predict([][]float64{{10}})
	if stdFar[0] <= stdNear[0] {
		t.Fatalf("std should grow away from data: near=%g far=%g", stdNear[0], stdFar[0])
	}
}

func TestPredictRevertsToMeanFarAway(t *testing.T) {
	x := [][]float64{{0}, {1}}
	y := []float64{10, 12}
	g := New(NewSum(NewRBF(1, 0.5), NewWhite(1e-4)))
	g.OptimizeHyperparams = false
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	m, _, _ := g.PredictOne([]float64{100})
	if math.Abs(m-11) > 0.01 { // trained mean = 11
		t.Fatalf("far prediction %g should revert to mean 11", m)
	}
	if math.Abs(g.Mean()-11) > 1e-12 {
		t.Fatalf("Mean() = %g", g.Mean())
	}
}

func TestHyperparameterOptimizationImprovesLML(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	var x [][]float64
	var y []float64
	for i := 0; i < 25; i++ {
		xi := rng.Float64() * 10
		x = append(x, []float64{xi})
		y = append(y, math.Sin(xi)+rng.NormFloat64()*0.05)
	}
	fixed := New(DefaultKernel())
	fixed.OptimizeHyperparams = false
	if err := fixed.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	tuned := New(DefaultKernel())
	if err := tuned.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if tuned.LogMarginalLikelihood() < fixed.LogMarginalLikelihood()-1e-9 {
		t.Fatalf("optimization decreased LML: %g -> %g",
			fixed.LogMarginalLikelihood(), tuned.LogMarginalLikelihood())
	}
}

func TestUCB(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{1, 2, 3}
	g := New(NewSum(NewRBF(1, 1), NewWhite(1e-4)))
	g.OptimizeHyperparams = false
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	m, s, _ := g.PredictOne([]float64{5})
	ucb, err := g.UCB([]float64{5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ucb-(m+2*s)) > 1e-12 {
		t.Fatalf("UCB = %g, want %g", ucb, m+2*s)
	}
}

// Property: posterior std is non-negative and finite for arbitrary query
// points.
func TestPosteriorStdProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		d := 1 + rng.Intn(3)
		x := make([][]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = make([]float64, d)
			for j := range x[i] {
				x[i][j] = rng.NormFloat64() * 3
			}
			y[i] = rng.NormFloat64()
		}
		g := New(nil)
		g.OptimizeHyperparams = false
		if err := g.Fit(x, y); err != nil {
			return false
		}
		q := make([]float64, d)
		for j := range q {
			q[j] = rng.NormFloat64() * 5
		}
		_, s, err := g.PredictOne(q)
		return err == nil && s >= 0 && !math.IsNaN(s) && !math.IsInf(s, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateTrainingPoints(t *testing.T) {
	// Duplicate inputs with different targets must not crash (white noise
	// + jitter absorbs them).
	x := [][]float64{{1}, {1}, {2}}
	y := []float64{1, 1.2, 3}
	g := New(DefaultKernel())
	g.OptimizeHyperparams = false
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	m, _, err := g.PredictOne([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if m < 0.5 || m > 1.8 {
		t.Fatalf("prediction at duplicated point = %g, want ~1.1", m)
	}
}

func TestExpectedImprovement(t *testing.T) {
	x := [][]float64{{0}, {1}, {2}}
	y := []float64{1, 2, 3}
	g := New(NewSum(NewRBF(1, 1), NewWhite(1e-4)))
	g.OptimizeHyperparams = false
	if err := g.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	// EI is non-negative everywhere.
	for _, q := range []float64{-5, 0.5, 1.5, 3, 10} {
		ei, err := g.ExpectedImprovement([]float64{q}, 3)
		if err != nil {
			t.Fatal(err)
		}
		if ei < 0 {
			t.Fatalf("EI(%g) = %g < 0", q, ei)
		}
	}
	// EI at a training point well below the incumbent is ~0; EI in
	// unexplored territory is positive (uncertainty pays).
	eiKnownBad, _ := g.ExpectedImprovement([]float64{0}, 3)
	eiUnknown, _ := g.ExpectedImprovement([]float64{10}, 3)
	if eiKnownBad > eiUnknown {
		t.Fatalf("EI at a known-bad point (%g) should not exceed unexplored (%g)", eiKnownBad, eiUnknown)
	}
}
