// Package gpr implements Gaussian Process Regression with the kernel mix
// used by AutoBlox (§3.4): a sum of a radial-basis-function kernel, a
// rational-quadratic kernel and a white-noise kernel, with trainable
// hyperparameters and a trainable constant mean. The GPR predicts the
// grade (Formula 2) of unexplored SSD configurations together with a
// confidence interval, which lets the tuner avoid expensive simulator
// validations.
package gpr

import (
	"fmt"
	"math"

	"autoblox/internal/linalg"
)

// Kernel is a positive-definite covariance function over configuration
// vectors.
type Kernel interface {
	// Eval returns k(a, b).
	Eval(a, b []float64) float64
	// Params returns the current hyperparameters in log space (so that a
	// simple unconstrained search keeps them positive).
	Params() []float64
	// SetParams installs hyperparameters from log space.
	SetParams(p []float64)
	// Name identifies the kernel for diagnostics.
	Name() string
}

// RBF is the squared-exponential kernel σ²·exp(-‖a-b‖²/(2ℓ²)).
type RBF struct {
	Variance    float64 // σ²
	LengthScale float64 // ℓ
}

// NewRBF returns an RBF kernel with the given signal variance and length
// scale.
func NewRBF(variance, lengthScale float64) *RBF {
	return &RBF{Variance: variance, LengthScale: lengthScale}
}

func (k *RBF) Eval(a, b []float64) float64 {
	d2 := sqDist(a, b)
	return k.Variance * math.Exp(-d2/(2*k.LengthScale*k.LengthScale))
}

func (k *RBF) Params() []float64 { return []float64{math.Log(k.Variance), math.Log(k.LengthScale)} }

func (k *RBF) SetParams(p []float64) {
	k.Variance, k.LengthScale = math.Exp(p[0]), math.Exp(p[1])
}

func (k *RBF) Name() string { return "rbf" }

// RationalQuadratic is σ²·(1 + ‖a-b‖²/(2αℓ²))^(-α); it behaves like a
// scale mixture of RBF kernels and tolerates multi-scale structure in the
// configuration space.
type RationalQuadratic struct {
	Variance    float64
	LengthScale float64
	Alpha       float64
}

// NewRationalQuadratic returns a rational-quadratic kernel.
func NewRationalQuadratic(variance, lengthScale, alpha float64) *RationalQuadratic {
	return &RationalQuadratic{Variance: variance, LengthScale: lengthScale, Alpha: alpha}
}

func (k *RationalQuadratic) Eval(a, b []float64) float64 {
	d2 := sqDist(a, b)
	return k.Variance * math.Pow(1+d2/(2*k.Alpha*k.LengthScale*k.LengthScale), -k.Alpha)
}

func (k *RationalQuadratic) Params() []float64 {
	return []float64{math.Log(k.Variance), math.Log(k.LengthScale), math.Log(k.Alpha)}
}

func (k *RationalQuadratic) SetParams(p []float64) {
	k.Variance, k.LengthScale, k.Alpha = math.Exp(p[0]), math.Exp(p[1]), math.Exp(p[2])
}

func (k *RationalQuadratic) Name() string { return "rq" }

// White is the white-noise kernel: σ²·δ(a ≡ b). It absorbs simulator
// noise (the paper adds it "to tolerate the noise in simulations").
type White struct {
	Noise float64
}

// NewWhite returns a white-noise kernel with variance noise.
func NewWhite(noise float64) *White { return &White{Noise: noise} }

func (k *White) Eval(a, b []float64) float64 {
	if sameVec(a, b) {
		return k.Noise
	}
	return 0
}

func (k *White) Params() []float64     { return []float64{math.Log(k.Noise)} }
func (k *White) SetParams(p []float64) { k.Noise = math.Exp(p[0]) }
func (k *White) Name() string          { return "white" }

// Sum adds kernels; AutoBlox uses RBF + RationalQuadratic + White.
type Sum struct {
	Terms []Kernel
}

// NewSum returns the sum of the given kernels.
func NewSum(terms ...Kernel) *Sum { return &Sum{Terms: terms} }

func (k *Sum) Eval(a, b []float64) float64 {
	var s float64
	for _, t := range k.Terms {
		s += t.Eval(a, b)
	}
	return s
}

func (k *Sum) Params() []float64 {
	var p []float64
	for _, t := range k.Terms {
		p = append(p, t.Params()...)
	}
	return p
}

func (k *Sum) SetParams(p []float64) {
	off := 0
	for _, t := range k.Terms {
		n := len(t.Params())
		t.SetParams(p[off : off+n])
		off += n
	}
	if off != len(p) {
		panic(fmt.Sprintf("gpr: Sum.SetParams got %d params, want %d", len(p), off))
	}
}

func (k *Sum) Name() string {
	s := "sum("
	for i, t := range k.Terms {
		if i > 0 {
			s += "+"
		}
		s += t.Name()
	}
	return s + ")"
}

// DefaultKernel returns the paper's kernel: RBF + RationalQuadratic +
// White with moderate initial hyperparameters (refined during Fit).
func DefaultKernel() Kernel {
	return NewSum(
		NewRBF(1.0, 2.0),
		NewRationalQuadratic(1.0, 2.0, 1.0),
		NewWhite(1e-3),
	)
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

func sameVec(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// gram builds the kernel matrix K(X, X).
func gram(k Kernel, x [][]float64) *linalg.Matrix {
	n := len(x)
	m := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := k.Eval(x[i], x[j])
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}
