package kmeans

import (
	"math/rand"
	"testing"

	"autoblox/internal/linalg"
)

func BenchmarkFit7Clusters(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data, _ := blobsForBench(rng, 7, 40, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(data, Config{K: 7, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

func blobsForBench(rng *rand.Rand, k, per, d int) (*linalg.Matrix, []int) {
	rows := make([][]float64, 0, k*per)
	labels := make([]int, 0, k*per)
	for c := 0; c < k; c++ {
		for i := 0; i < per; i++ {
			p := make([]float64, d)
			for j := range p {
				p[j] = float64(c)*8 + rng.NormFloat64()
			}
			rows = append(rows, p)
			labels = append(labels, c)
		}
	}
	return linalg.FromRows(rows), labels
}
