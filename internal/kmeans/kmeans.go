// Package kmeans implements k-means clustering with k-means++ seeding.
//
// AutoBlox (§3.1) clusters PCA-reduced I/O trace windows with k-means and
// decides whether a new workload belongs to an existing cluster by
// comparing the distance between the new workload's center and each
// existing cluster center against a threshold; when no cluster is close
// enough the model is retrained with one more cluster.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"autoblox/internal/linalg"
)

// Model holds a fitted k-means clustering.
type Model struct {
	// Centers holds one centroid per row (k × nFeatures).
	Centers *linalg.Matrix
	// Labels holds the cluster assignment of each training sample.
	Labels []int
	// Inertia is the summed squared distance of samples to their centers.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Config controls the clustering run.
type Config struct {
	K        int   // number of clusters (required, ≥1)
	MaxIter  int   // maximum Lloyd iterations (default 100)
	Seed     int64 // RNG seed for k-means++ seeding
	Restarts int   // number of seeded restarts, best inertia kept (default 3)
}

// Fit clusters data (rows are samples) into cfg.K clusters.
func Fit(data *linalg.Matrix, cfg Config) (*Model, error) {
	n, d := data.Rows, data.Cols
	if n == 0 || d == 0 {
		return nil, errors.New("kmeans: empty data")
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("kmeans: K=%d must be >= 1", cfg.K)
	}
	if cfg.K > n {
		return nil, fmt.Errorf("kmeans: K=%d exceeds sample count %d", cfg.K, n)
	}
	if cfg.MaxIter <= 0 {
		cfg.MaxIter = 100
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 3
	}

	var best *Model
	for r := 0; r < cfg.Restarts; r++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*7919))
		m := lloyd(data, cfg.K, cfg.MaxIter, rng)
		if best == nil || m.Inertia < best.Inertia {
			best = m
		}
	}
	return best, nil
}

func lloyd(data *linalg.Matrix, k, maxIter int, rng *rand.Rand) *Model {
	n, d := data.Rows, data.Cols
	centers := seedPlusPlus(data, k, rng)
	labels := make([]int, n)
	counts := make([]int, k)

	var iter int
	for iter = 0; iter < maxIter; iter++ {
		changed := false
		for i := 0; i < n; i++ {
			c := nearest(centers, data.Row(i))
			if c != labels[i] {
				labels[i] = c
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids.
		for i := range centers.Data {
			centers.Data[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			cr := centers.Row(c)
			for j, v := range data.Row(i) {
				cr[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its center.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					dd := sqDist(centers.Row(labels[i]), data.Row(i))
					if dd > farD {
						far, farD = i, dd
					}
				}
				copy(centers.Row(c), data.Row(far))
				continue
			}
			inv := 1 / float64(counts[c])
			cr := centers.Row(c)
			for j := 0; j < d; j++ {
				cr[j] *= inv
			}
		}
	}

	var inertia float64
	for i := 0; i < n; i++ {
		inertia += sqDist(centers.Row(labels[i]), data.Row(i))
	}
	return &Model{Centers: centers, Labels: labels, Inertia: inertia, Iterations: iter}
}

// seedPlusPlus chooses k initial centers with the k-means++ strategy.
func seedPlusPlus(data *linalg.Matrix, k int, rng *rand.Rand) *linalg.Matrix {
	n, d := data.Rows, data.Cols
	centers := linalg.NewMatrix(k, d)
	first := rng.Intn(n)
	copy(centers.Row(0), data.Row(first))

	dist := make([]float64, n)
	for i := range dist {
		dist[i] = sqDist(centers.Row(0), data.Row(i))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, dd := range dist {
			total += dd
		}
		var pick int
		if total <= 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			var cum float64
			for i, dd := range dist {
				cum += dd
				if cum >= target {
					pick = i
					break
				}
			}
		}
		copy(centers.Row(c), data.Row(pick))
		for i := range dist {
			if dd := sqDist(centers.Row(c), data.Row(i)); dd < dist[i] {
				dist[i] = dd
			}
		}
	}
	return centers
}

// Predict returns the index of the nearest center for each sample.
func (m *Model) Predict(data *linalg.Matrix) []int {
	out := make([]int, data.Rows)
	for i := 0; i < data.Rows; i++ {
		out[i] = nearest(m.Centers, data.Row(i))
	}
	return out
}

// PredictVec returns the nearest-center index and the Euclidean distance
// to that center for a single sample.
func (m *Model) PredictVec(v []float64) (int, float64) {
	c := nearest(m.Centers, v)
	return c, math.Sqrt(sqDist(m.Centers.Row(c), v))
}

// K returns the number of clusters.
func (m *Model) K() int { return m.Centers.Rows }

// MinCenterDistance returns the smallest pairwise distance between
// cluster centers; AutoBlox uses this scale to pick the new-cluster
// threshold.
func (m *Model) MinCenterDistance() float64 {
	k := m.K()
	min := math.Inf(1)
	for a := 0; a < k-1; a++ {
		for b := a + 1; b < k; b++ {
			if d := math.Sqrt(sqDist(m.Centers.Row(a), m.Centers.Row(b))); d < min {
				min = d
			}
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// ClusterDiameter returns, for cluster c, twice the RMS distance of the
// cluster's training points to the centroid — a robust "diameter" used
// when reporting how far a new workload sits from known clusters.
func (m *Model) ClusterDiameter(data *linalg.Matrix, c int) float64 {
	var sum float64
	var cnt int
	for i, l := range m.Labels {
		if l == c {
			sum += sqDist(m.Centers.Row(c), data.Row(i))
			cnt++
		}
	}
	if cnt == 0 {
		return 0
	}
	return 2 * math.Sqrt(sum/float64(cnt))
}

func nearest(centers *linalg.Matrix, v []float64) int {
	best, bestD := 0, math.Inf(1)
	for c := 0; c < centers.Rows; c++ {
		if d := sqDist(centers.Row(c), v); d < bestD {
			best, bestD = c, d
		}
	}
	return best
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Centroid returns the mean of the given samples; it is the "center of
// the examined data points" the paper compares against cluster centers.
func Centroid(data *linalg.Matrix) []float64 {
	c := make([]float64, data.Cols)
	if data.Rows == 0 {
		return c
	}
	for i := 0; i < data.Rows; i++ {
		for j, v := range data.Row(i) {
			c[j] += v
		}
	}
	for j := range c {
		c[j] /= float64(data.Rows)
	}
	return c
}

// Distance returns the Euclidean distance between two vectors.
func Distance(a, b []float64) float64 { return math.Sqrt(sqDist(a, b)) }

// Silhouette computes the mean silhouette coefficient of the clustering
// over the given data: for each sample, (b-a)/max(a,b) where a is the
// mean distance to its own cluster's members and b the smallest mean
// distance to another cluster. Values near 1 indicate tight, well-
// separated clusters; near 0, overlapping ones. Used to report
// clustering quality alongside the Fig. 2 reproduction.
func (m *Model) Silhouette(data *linalg.Matrix) float64 {
	n := data.Rows
	if n < 2 || m.K() < 2 {
		return 0
	}
	var total float64
	var counted int
	for i := 0; i < n; i++ {
		own := m.Labels[i]
		sums := make([]float64, m.K())
		counts := make([]int, m.K())
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d := Distance(data.Row(i), data.Row(j))
			sums[m.Labels[j]] += d
			counts[m.Labels[j]]++
		}
		if counts[own] == 0 {
			continue // singleton cluster: silhouette undefined
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for c := 0; c < m.K(); c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if v := sums[c] / float64(counts[c]); v < b {
				b = v
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		denom := math.Max(a, b)
		if denom > 0 {
			total += (b - a) / denom
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
