package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"autoblox/internal/linalg"
)

// blobs generates k well-separated Gaussian blobs.
func blobs(rng *rand.Rand, k, perCluster, d int, sep float64) (*linalg.Matrix, []int) {
	rows := make([][]float64, 0, k*perCluster)
	truth := make([]int, 0, k*perCluster)
	for c := 0; c < k; c++ {
		center := make([]float64, d)
		for j := range center {
			center[j] = float64(c) * sep * float64(j%2*2-1) // alternate directions
		}
		center[0] = float64(c) * sep
		for i := 0; i < perCluster; i++ {
			p := make([]float64, d)
			for j := range p {
				p[j] = center[j] + rng.NormFloat64()*0.3
			}
			rows = append(rows, p)
			truth = append(truth, c)
		}
	}
	return linalg.FromRows(rows), truth
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(linalg.NewMatrix(0, 0), Config{K: 2}); err == nil {
		t.Fatal("expected error on empty data")
	}
	data := linalg.FromRows([][]float64{{1}, {2}})
	if _, err := Fit(data, Config{K: 0}); err == nil {
		t.Fatal("expected error on K=0")
	}
	if _, err := Fit(data, Config{K: 3}); err == nil {
		t.Fatal("expected error on K>n")
	}
}

func TestSeparatedBlobsRecovered(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	data, truth := blobs(rng, 3, 50, 4, 20)
	m, err := Fit(data, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Same-truth points must share a label; different-truth points must not.
	mapping := map[int]int{}
	for i, l := range m.Labels {
		if prev, ok := mapping[truth[i]]; ok {
			if prev != l {
				t.Fatalf("cluster %d split across labels %d and %d", truth[i], prev, l)
			}
		} else {
			mapping[truth[i]] = l
		}
	}
	if len(mapping) != 3 {
		t.Fatalf("expected 3 distinct labels, got %d", len(mapping))
	}
}

func TestPredictMatchesTraining(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	data, _ := blobs(rng, 4, 30, 3, 15)
	m, err := Fit(data, Config{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Predict(data)
	for i := range pred {
		if pred[i] != m.Labels[i] {
			t.Fatalf("Predict disagrees with training labels at %d", i)
		}
	}
	c, d := m.PredictVec(data.Row(0))
	if c != m.Labels[0] {
		t.Fatalf("PredictVec label mismatch")
	}
	if d < 0 {
		t.Fatalf("negative distance")
	}
}

func TestInertiaDecreasesWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	data, _ := blobs(rng, 5, 20, 3, 10)
	var prev float64 = math.Inf(1)
	for k := 1; k <= 5; k++ {
		m, err := Fit(data, Config{K: k, Seed: 5, Restarts: 5})
		if err != nil {
			t.Fatal(err)
		}
		if m.Inertia > prev+1e-9 {
			t.Fatalf("inertia increased from k=%d to k=%d: %g -> %g", k-1, k, prev, m.Inertia)
		}
		prev = m.Inertia
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data, _ := blobs(rng, 3, 25, 2, 12)
	a, _ := Fit(data, Config{K: 3, Seed: 9})
	b, _ := Fit(data, Config{K: 3, Seed: 9})
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same seed produced different labels")
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same seed produced different inertia")
	}
}

// Property: every sample's assigned center is the closest one.
func TestAssignmentOptimalityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 20+rng.Intn(40), 1+rng.Intn(4)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.Float64() * 10
			}
		}
		data := linalg.FromRows(rows)
		k := 1 + rng.Intn(4)
		m, err := Fit(data, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			assigned := sqDist(m.Centers.Row(m.Labels[i]), data.Row(i))
			for c := 0; c < k; c++ {
				if sqDist(m.Centers.Row(c), data.Row(i)) < assigned-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestMinCenterDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	data, _ := blobs(rng, 3, 30, 2, 10)
	m, _ := Fit(data, Config{K: 3, Seed: 1})
	d := m.MinCenterDistance()
	if d < 5 || d > 40 {
		t.Fatalf("MinCenterDistance %g outside plausible range for sep=10 blobs", d)
	}
	one, _ := Fit(data, Config{K: 1, Seed: 1})
	if one.MinCenterDistance() != 0 {
		t.Fatal("single-cluster MinCenterDistance should be 0")
	}
}

func TestClusterDiameter(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data, _ := blobs(rng, 2, 50, 2, 30)
	m, _ := Fit(data, Config{K: 2, Seed: 1})
	for c := 0; c < 2; c++ {
		dia := m.ClusterDiameter(data, c)
		// Points have σ≈0.3 per axis in 2-D → RMS distance ≈ 0.42, diameter ≈ 0.85.
		if dia < 0.3 || dia > 2.5 {
			t.Fatalf("diameter %g implausible", dia)
		}
	}
}

func TestCentroid(t *testing.T) {
	data := linalg.FromRows([][]float64{{0, 0}, {2, 4}})
	c := Centroid(data)
	if c[0] != 1 || c[1] != 2 {
		t.Fatalf("Centroid = %v, want [1 2]", c)
	}
	if d := Distance([]float64{0, 0}, []float64{3, 4}); d != 5 {
		t.Fatalf("Distance = %g, want 5", d)
	}
}

func TestSilhouette(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tight, _ := blobs(rng, 3, 30, 3, 25) // far-apart blobs
	m, _ := Fit(tight, Config{K: 3, Seed: 1})
	sTight := m.Silhouette(tight)
	if sTight < 0.8 {
		t.Fatalf("tight blobs silhouette %g, want near 1", sTight)
	}
	// Overlapping blobs score lower.
	loose, _ := blobs(rng, 3, 30, 3, 0.5)
	m2, _ := Fit(loose, Config{K: 3, Seed: 1})
	if s := m2.Silhouette(loose); s >= sTight {
		t.Fatalf("overlapping blobs silhouette %g should be below %g", s, sTight)
	}
	// Degenerate cases.
	one, _ := Fit(tight, Config{K: 1, Seed: 1})
	if one.Silhouette(tight) != 0 {
		t.Fatal("K=1 silhouette should be 0")
	}
}
