package kvstore

import (
	"fmt"
	"path/filepath"
	"testing"
)

func BenchmarkPut(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	val := []byte(`{"grade":1.234,"config":[1,2,3,4,5,6,7,8]}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put(fmt.Sprintf("cluster/%08d", i%1024), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet(b *testing.B) {
	s, err := Open(filepath.Join(b.TempDir(), "bench.log"))
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 1024; i++ {
		s.Put(fmt.Sprintf("cluster/%08d", i), []byte("value"))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Get(fmt.Sprintf("cluster/%08d", i%1024)); err != nil {
			b.Fatal(err)
		}
	}
}
