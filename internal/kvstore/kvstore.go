// Package kvstore is a small embedded log-structured key-value store —
// the substrate under AutoDB. The paper implements AutoDB on LevelDB
// (cluster-ID keys, JSON values); this store provides the same
// durability and lookup semantics from scratch: an append-only log with
// per-record CRC32 checksums, an in-memory index rebuilt on open, and
// explicit compaction that drops superseded records.
//
// Record format (little endian):
//
//	uint32 crc       — CRC32 (IEEE) of everything after this field
//	uint8  op        — 1 = put, 2 = delete
//	uint32 keyLen
//	uint32 valueLen
//	key bytes
//	value bytes
package kvstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

const (
	opPut    = 1
	opDelete = 2
)

// ErrNotFound is returned by Get for missing keys.
var ErrNotFound = errors.New("kvstore: key not found")

// ErrCorrupt is returned when a log record fails its checksum; the store
// truncates at the first corrupt record on open (torn-write recovery).
var ErrCorrupt = errors.New("kvstore: corrupt record")

// Store is a durable key-value store. It is safe for concurrent use.
type Store struct {
	mu   sync.RWMutex
	path string
	file *os.File
	// index maps key -> current value (values are kept in memory; AutoDB
	// records are small JSON documents).
	index map[string][]byte
	// liveBytes / totalBytes drive compaction heuristics.
	liveBytes, totalBytes int64
	// corrupt counts torn tails truncated during replay.
	corrupt int64
}

// compactSuffix names the temporary file Compact writes before the
// atomic rename. A crash mid-compaction leaves it behind; Open removes
// it (the original log is still the authoritative copy until the
// rename lands).
const compactSuffix = ".compact"

// Open opens (or creates) the store backed by the given log file.
func Open(path string) (*Store, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("kvstore: mkdir: %w", err)
	}
	// A stale compaction temp means a crash landed between writing the
	// temp and renaming it over the log; the log is still authoritative.
	if err := os.Remove(path + compactSuffix); err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("kvstore: remove stale compact temp: %w", err)
	}
	s := &Store{path: path, index: make(map[string][]byte)}
	if err := s.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("kvstore: open: %w", err)
	}
	s.file = f
	return s, nil
}

// replay rebuilds the in-memory index from the log, truncating at the
// first corrupt/partial record.
func (s *Store) replay() error {
	f, err := os.Open(s.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("kvstore: replay open: %w", err)
	}
	defer f.Close()

	r := bufio.NewReader(f)
	var offset int64
	for {
		rec, n, err := readRecord(r)
		if err == io.EOF {
			break
		}
		if err != nil {
			// Torn tail: truncate the log at the last good record.
			if terr := os.Truncate(s.path, offset); terr != nil {
				return fmt.Errorf("kvstore: truncate after corrupt record: %w", terr)
			}
			s.corrupt++
			break
		}
		offset += int64(n)
		s.totalBytes += int64(n)
		switch rec.op {
		case opPut:
			if old, ok := s.index[string(rec.key)]; ok {
				s.liveBytes -= recordSize(rec.key, old)
			}
			s.index[string(rec.key)] = rec.value
			s.liveBytes += int64(n)
		case opDelete:
			if old, ok := s.index[string(rec.key)]; ok {
				s.liveBytes -= recordSize(rec.key, old)
				delete(s.index, string(rec.key))
			}
		}
	}
	return nil
}

type record struct {
	op    byte
	key   []byte
	value []byte
}

func recordSize(key, value []byte) int64 {
	return int64(4 + 1 + 4 + 4 + len(key) + len(value))
}

func readRecord(r *bufio.Reader) (record, int, error) {
	var hdr [13]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return record{}, 0, ErrCorrupt
		}
		return record{}, 0, err
	}
	crc := binary.LittleEndian.Uint32(hdr[0:4])
	op := hdr[4]
	keyLen := binary.LittleEndian.Uint32(hdr[5:9])
	valLen := binary.LittleEndian.Uint32(hdr[9:13])
	if keyLen > 1<<24 || valLen > 1<<28 {
		return record{}, 0, ErrCorrupt
	}
	body := make([]byte, keyLen+valLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return record{}, 0, ErrCorrupt
	}
	h := crc32.NewIEEE()
	h.Write(hdr[4:13])
	h.Write(body)
	if h.Sum32() != crc {
		return record{}, 0, ErrCorrupt
	}
	rec := record{op: op, key: body[:keyLen], value: body[keyLen:]}
	return rec, 13 + len(body), nil
}

func appendRecord(w io.Writer, op byte, key, value []byte) (int, error) {
	hdr := make([]byte, 13)
	hdr[4] = op
	binary.LittleEndian.PutUint32(hdr[5:9], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[9:13], uint32(len(value)))
	h := crc32.NewIEEE()
	h.Write(hdr[4:13])
	h.Write(key)
	h.Write(value)
	binary.LittleEndian.PutUint32(hdr[0:4], h.Sum32())
	if _, err := w.Write(hdr); err != nil {
		return 0, err
	}
	if _, err := w.Write(key); err != nil {
		return 0, err
	}
	if _, err := w.Write(value); err != nil {
		return 0, err
	}
	return 13 + len(key) + len(value), nil
}

// Put durably stores value under key.
func (s *Store) Put(key string, value []byte) error {
	if key == "" {
		return errors.New("kvstore: empty key")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return errors.New("kvstore: store closed")
	}
	n, err := appendRecord(s.file, opPut, []byte(key), value)
	if err != nil {
		return fmt.Errorf("kvstore: put: %w", err)
	}
	if old, ok := s.index[key]; ok {
		s.liveBytes -= recordSize([]byte(key), old)
	}
	v := append([]byte(nil), value...)
	s.index[key] = v
	s.totalBytes += int64(n)
	s.liveBytes += int64(n)
	return nil
}

// Get returns the value stored under key, or ErrNotFound.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.index[key]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]byte(nil), v...), nil
}

// Has reports whether key exists.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok
}

// Delete removes key; deleting a missing key is a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return errors.New("kvstore: store closed")
	}
	if _, ok := s.index[key]; !ok {
		return nil
	}
	n, err := appendRecord(s.file, opDelete, []byte(key), nil)
	if err != nil {
		return fmt.Errorf("kvstore: delete: %w", err)
	}
	s.liveBytes -= recordSize([]byte(key), s.index[key])
	delete(s.index, key)
	s.totalBytes += int64(n)
	return nil
}

// Keys returns all keys in sorted order.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// CorruptRecords reports how many torn/corrupt log tails were
// truncated during replay (0 or 1 per Open).
func (s *Store) CorruptRecords() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.corrupt
}

// GarbageRatio returns the fraction of the log occupied by superseded
// records.
func (s *Store) GarbageRatio() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.totalBytes == 0 {
		return 0
	}
	return 1 - float64(s.liveBytes)/float64(s.totalBytes)
}

// compactCrashPoint, when set (tests only), simulates a crash at a
// named stage of Compact: it returns an error that Compact propagates
// WITHOUT cleaning up, leaving the on-disk state exactly as a killed
// process would. Stages: "pre-rename" (temp durable, log untouched),
// "post-rename" (rename landed, directory not yet synced).
var compactCrashPoint func(stage string) error

// Compact rewrites the log with only live records, crash-safely: the
// replacement is written to a temp file, fsynced, renamed over the log,
// and the directory is fsynced so the rename itself is durable. A
// crash at any point leaves either the complete old log (plus a stale
// temp that Open removes) or the complete new one — never a mix.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return errors.New("kvstore: store closed")
	}
	tmp := s.path + compactSuffix
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("kvstore: compact create: %w", err)
	}
	w := bufio.NewWriter(f)
	var total int64
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		n, err := appendRecord(w, opPut, []byte(k), s.index[k])
		if err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("kvstore: compact write: %w", err)
		}
		total += int64(n)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	f.Close()
	if hook := compactCrashPoint; hook != nil {
		if err := hook("pre-rename"); err != nil {
			return err
		}
	}
	if err := s.file.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.path); err != nil {
		return fmt.Errorf("kvstore: compact rename: %w", err)
	}
	if hook := compactCrashPoint; hook != nil {
		if err := hook("post-rename"); err != nil {
			return err
		}
	}
	// The rename is only durable once the directory entry is: fsync the
	// parent directory, or a power cut can resurrect the old log.
	if dir, err := os.Open(filepath.Dir(s.path)); err == nil {
		serr := dir.Sync()
		dir.Close()
		if serr != nil {
			return fmt.Errorf("kvstore: compact dir sync: %w", serr)
		}
	} else {
		return fmt.Errorf("kvstore: compact dir open: %w", err)
	}
	nf, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("kvstore: compact reopen: %w", err)
	}
	s.file = nf
	s.totalBytes, s.liveBytes = total, total
	return nil
}

// Sync flushes OS buffers to stable storage.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	return s.file.Sync()
}

// Close syncs and closes the store; further writes fail.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.file == nil {
		return nil
	}
	err := s.file.Sync()
	cerr := s.file.Close()
	s.file = nil
	if err != nil {
		return err
	}
	return cerr
}
