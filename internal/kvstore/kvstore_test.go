package kvstore

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openTemp(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "db", "store.log"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetDelete(t *testing.T) {
	s := openTemp(t)
	if _, err := s.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("expected ErrNotFound, got %v", err)
	}
	if err := s.Put("", []byte("x")); err == nil {
		t.Fatal("empty key should fail")
	}
	if err := s.Put("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get("a")
	if err != nil || string(v) != "1" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := s.Put("a", []byte("2")); err != nil {
		t.Fatal(err)
	}
	v, _ = s.Get("a")
	if string(v) != "2" {
		t.Fatalf("overwrite failed: %q", v)
	}
	if !s.Has("a") || s.Has("b") {
		t.Fatal("Has wrong")
	}
	if err := s.Delete("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("a"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key still present")
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatal("deleting missing key should be a no-op")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := openTemp(t)
	s.Put("k", []byte("abc"))
	v, _ := s.Get("k")
	v[0] = 'X'
	v2, _ := s.Get("k")
	if string(v2) != "abc" {
		t.Fatal("Get must return a copy")
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.Put(fmt.Sprintf("key%03d", i), []byte(fmt.Sprintf("val%d", i)))
	}
	s.Delete("key050")
	s.Put("key001", []byte("updated"))
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 99 {
		t.Fatalf("Len after reopen = %d, want 99", s2.Len())
	}
	v, _ := s2.Get("key001")
	if string(v) != "updated" {
		t.Fatalf("key001 = %q", v)
	}
	if s2.Has("key050") {
		t.Fatal("deleted key survived reopen")
	}
}

func TestKeysSorted(t *testing.T) {
	s := openTemp(t)
	for _, k := range []string{"c", "a", "b"} {
		s.Put(k, []byte(k))
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "a" || keys[1] != "b" || keys[2] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestCompactionDropsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		s.Put("hot", []byte(fmt.Sprintf("version-%d", i)))
	}
	if s.GarbageRatio() < 0.9 {
		t.Fatalf("garbage ratio %g should be high before compaction", s.GarbageRatio())
	}
	before, _ := os.Stat(path)
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after, _ := os.Stat(path)
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink: %d -> %d", before.Size(), after.Size())
	}
	if s.GarbageRatio() != 0 {
		t.Fatalf("garbage ratio %g after compaction", s.GarbageRatio())
	}
	v, err := s.Get("hot")
	if err != nil || string(v) != "version-49" {
		t.Fatalf("post-compaction Get = %q, %v", v, err)
	}
	// Store still writable after compaction.
	if err := s.Put("new", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestCompactionSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	s, _ := Open(path)
	for i := 0; i < 20; i++ {
		s.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	s.Compact()
	s.Put("post", []byte("compact"))
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 21 {
		t.Fatalf("Len = %d, want 21", s2.Len())
	}
}

func TestTornWriteRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	s, _ := Open(path)
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Close()

	// Corrupt the tail: append a partial record.
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{0xDE, 0xAD, 0xBE})
	f.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Len() != 2 {
		t.Fatalf("Len after torn write = %d, want 2", s2.Len())
	}
	// And the store remains appendable after truncation.
	if err := s2.Put("c", []byte("3")); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s3.Len())
	}
}

func TestMidLogCorruptionTruncates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	s, _ := Open(path)
	s.Put("a", []byte("1"))
	off, _ := os.Stat(path)
	s.Put("b", []byte("2"))
	s.Close()

	// Flip a byte inside the second record's value.
	data, _ := os.ReadFile(path)
	data[off.Size()+14] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Has("a") || s2.Has("b") {
		t.Fatal("corruption recovery should keep the prefix only")
	}
}

func TestClosedStoreFailsWrites(t *testing.T) {
	s := openTemp(t)
	s.Close()
	if err := s.Put("x", []byte("y")); err == nil {
		t.Fatal("Put after Close should fail")
	}
	if err := s.Delete("x"); err == nil {
		t.Fatal("Delete of existing key after Close should fail")
	}
	if err := s.Close(); err != nil {
		t.Fatal("double Close should be a no-op")
	}
}

// Property: the store agrees with a map model under random op sequences
// including reopen.
func TestModelEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dir, err := os.MkdirTemp("", "kv")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "s.log")
		s, err := Open(path)
		if err != nil {
			return false
		}
		model := map[string]string{}
		for op := 0; op < 150; op++ {
			k := fmt.Sprintf("k%d", rng.Intn(12))
			switch rng.Intn(5) {
			case 0:
				s.Delete(k)
				delete(model, k)
			case 1:
				if rng.Intn(4) == 0 {
					s.Compact()
				}
			case 2: // reopen
				s.Close()
				s, err = Open(path)
				if err != nil {
					return false
				}
			default:
				v := fmt.Sprintf("v%d", rng.Int())
				s.Put(k, []byte(v))
				model[k] = v
			}
		}
		defer s.Close()
		if s.Len() != len(model) {
			return false
		}
		for k, want := range model {
			got, err := s.Get(k)
			if err != nil || string(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// crashCompact runs one Compact with a simulated crash at the given
// stage and returns the store's path. The store handle is abandoned
// (never closed) like a killed process would leave it.
func crashCompact(t *testing.T, stage string) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("old"))
	s.Put("b", []byte("2")) // supersede: compaction has garbage to drop
	s.Put("gone", []byte("x"))
	s.Delete("gone")

	compactCrashPoint = func(st string) error {
		if st == stage {
			return errors.New("simulated crash at " + st)
		}
		return nil
	}
	defer func() { compactCrashPoint = nil }()
	if err := s.Compact(); err == nil {
		t.Fatal("Compact should surface the simulated crash")
	}
	return path
}

func TestCompactCrashPreRename(t *testing.T) {
	// Killed after the temp file is durable but before the rename: the
	// old log is still authoritative and the stale temp must be swept.
	path := crashCompact(t, "pre-rename")
	if _, err := os.Stat(path + compactSuffix); err != nil {
		t.Fatalf("pre-rename crash should leave the temp file: %v", err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := os.Stat(path + compactSuffix); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Open should remove the stale temp, stat = %v", err)
	}
	assertCompactSurvivors(t, s)
}

func TestCompactCrashPostRename(t *testing.T) {
	// Killed after the rename landed: the compacted log is the store.
	path := crashCompact(t, "post-rename")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	assertCompactSurvivors(t, s)
	if s.GarbageRatio() != 0 {
		t.Fatalf("post-rename log should be fully compacted, garbage = %v", s.GarbageRatio())
	}
}

func assertCompactSurvivors(t *testing.T, s *Store) {
	t.Helper()
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (keys %v)", s.Len(), s.Keys())
	}
	for k, want := range map[string]string{"a": "1", "b": "2"} {
		got, err := s.Get(k)
		if err != nil || string(got) != want {
			t.Fatalf("Get(%q) = %q, %v; want %q", k, got, err, want)
		}
	}
	if s.Has("gone") {
		t.Fatal("deleted key resurrected by crashed compaction")
	}
	// The reopened store must stay fully writable.
	if err := s.Put("c", []byte("3")); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptRecordsCounter(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.log")
	s, _ := Open(path)
	if s.CorruptRecords() != 0 {
		t.Fatalf("fresh store CorruptRecords = %d", s.CorruptRecords())
	}
	s.Put("a", []byte("1"))
	s.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	f.Write([]byte{0xBA, 0xD0})
	f.Close()
	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.CorruptRecords() != 1 {
		t.Fatalf("CorruptRecords after torn tail = %d, want 1", s2.CorruptRecords())
	}
}
