package linalg

import (
	"math/rand"
	"testing"
)

func randSPD(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	b := NewMatrix(n, n)
	for i := range b.Data {
		b.Data[i] = rng.NormFloat64()
	}
	return b.Mul(b.T()).AddDiag(float64(n))
}

func BenchmarkCholesky64(b *testing.B) {
	m := randSPD(64, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Cholesky(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolveSPD64(b *testing.B) {
	m := randSPD(64, 2)
	rhs := make([]float64, 64)
	for i := range rhs {
		rhs[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSPD(m, rhs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEigenSym32(b *testing.B) {
	m := randSPD(32, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigenSym(m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul128(b *testing.B) {
	m := randSPD(128, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Mul(m)
	}
}
