package linalg

import (
	"fmt"
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi rotation method. It returns eigenvalues in descending
// order and the matching eigenvectors as the columns of the returned
// matrix. The input is not modified.
func EigenSym(m *Matrix) (values []float64, vectors *Matrix, err error) {
	if m.Rows != m.Cols {
		return nil, nil, fmt.Errorf("linalg: EigenSym of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	if n == 0 {
		return nil, NewMatrix(0, 0), nil
	}
	a := m.Clone()
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(a)
		if off < 1e-12 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if math.Abs(apq) < 1e-15 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				// Compute the Jacobi rotation (c, s) that zeroes a[p][q].
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				rotate(a, v, p, q, c, s)
			}
		}
	}

	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = a.At(i, i)
	}
	// Sort eigenpairs by descending eigenvalue.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] > values[idx[j]] })
	sortedVals := make([]float64, n)
	vectors = NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for r := 0; r < n; r++ {
			vectors.Set(r, newCol, v.At(r, oldCol))
		}
	}
	return sortedVals, vectors, nil
}

// rotate applies the Jacobi rotation G(p,q,c,s) as a ← GᵀaG and
// accumulates v ← vG.
func rotate(a, v *Matrix, p, q int, c, s float64) {
	n := a.Rows
	for i := 0; i < n; i++ {
		aip, aiq := a.At(i, p), a.At(i, q)
		a.Set(i, p, c*aip-s*aiq)
		a.Set(i, q, s*aip+c*aiq)
	}
	for j := 0; j < n; j++ {
		apj, aqj := a.At(p, j), a.At(q, j)
		a.Set(p, j, c*apj-s*aqj)
		a.Set(q, j, s*apj+c*aqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

func offDiagNorm(a *Matrix) float64 {
	var s float64
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			if i != j {
				s += a.At(i, j) * a.At(i, j)
			}
		}
	}
	return math.Sqrt(s)
}
