// Package linalg provides the small dense linear-algebra kernel used by
// the learning components of AutoBlox: matrices, vectors, Cholesky
// factorization, triangular and symmetric positive-definite solves, and a
// Jacobi eigensolver for symmetric matrices.
//
// The package is deliberately minimal — it implements exactly what PCA,
// ridge regression and Gaussian-process regression need, on float64, with
// no external dependencies.
package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero-valued rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows. The data is
// copied.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("linalg: ragged rows: row %d has %d cols, want %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:(i+1)*m.Cols], r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (not a copy).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m·b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %dx%d · %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			a := mi[k]
			if a == 0 {
				continue
			}
			bk := b.Row(k)
			for j := 0; j < b.Cols; j++ {
				oi[j] += a * bk[j]
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·v.
func (m *Matrix) MulVec(v []float64) []float64 {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %dx%d · %d", m.Rows, m.Cols, len(v)))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), v)
	}
	return out
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: Add dimension mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += b.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// AddDiag adds v to every diagonal element of m in place and returns m.
func (m *Matrix) AddDiag(v float64) *Matrix {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	for i := 0; i < n; i++ {
		m.Data[i*m.Cols+i] += v
	}
	return m
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var sb strings.Builder
	for i := 0; i < m.Rows; i++ {
		sb.WriteString("[")
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				sb.WriteString(" ")
			}
			fmt.Fprintf(&sb, "%.6g", m.At(i, j))
		}
		sb.WriteString("]\n")
	}
	return sb.String()
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	var s float64
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

// Cholesky computes the lower-triangular factor L with m = L·Lᵀ for a
// symmetric positive-definite matrix. It reports an error when the matrix
// is not (numerically) positive definite.
func Cholesky(m *Matrix) (*Matrix, error) {
	if m.Rows != m.Cols {
		return nil, fmt.Errorf("linalg: Cholesky of non-square %dx%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			for k := 0; k < j; k++ {
				sum -= l.At(i, k) * l.At(j, k)
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("linalg: matrix not positive definite (pivot %d = %g)", i, sum)
				}
				l.Set(i, i, math.Sqrt(sum))
			} else {
				l.Set(i, j, sum/l.At(j, j))
			}
		}
	}
	return l, nil
}

// SolveCholesky solves m·x = b given the Cholesky factor L of m.
func SolveCholesky(l *Matrix, b []float64) []float64 {
	n := l.Rows
	if len(b) != n {
		panic("linalg: SolveCholesky dimension mismatch")
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l.At(i, k) * y[k]
		}
		y[i] = sum / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= l.At(k, i) * x[k]
		}
		x[i] = sum / l.At(i, i)
	}
	return x
}

// SolveSPD solves m·x = b for symmetric positive-definite m via Cholesky.
func SolveSPD(m *Matrix, b []float64) ([]float64, error) {
	l, err := Cholesky(m)
	if err != nil {
		return nil, err
	}
	return SolveCholesky(l, b), nil
}

// SolveLinear solves the general square system a·x = b using Gaussian
// elimination with partial pivoting.
func SolveLinear(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("linalg: SolveLinear of non-square %dx%d matrix", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("linalg: SolveLinear rhs length %d, want %d", len(b), n)
	}
	// Work on copies.
	aug := a.Clone()
	x := make([]float64, n)
	copy(x, b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		maxAbs := math.Abs(aug.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(aug.At(r, col)); v > maxAbs {
				maxAbs, pivot = v, r
			}
		}
		if maxAbs < 1e-14 {
			return nil, fmt.Errorf("linalg: singular matrix (column %d)", col)
		}
		if pivot != col {
			pr, cr := aug.Row(pivot), aug.Row(col)
			for j := range pr {
				pr[j], cr[j] = cr[j], pr[j]
			}
			x[pivot], x[col] = x[col], x[pivot]
		}
		inv := 1 / aug.At(col, col)
		for r := col + 1; r < n; r++ {
			f := aug.At(r, col) * inv
			if f == 0 {
				continue
			}
			rr, cr := aug.Row(r), aug.Row(col)
			for j := col; j < n; j++ {
				rr[j] -= f * cr[j]
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		sum := x[i]
		for j := i + 1; j < n; j++ {
			sum -= aug.At(i, j) * x[j]
		}
		x[i] = sum / aug.At(i, i)
	}
	return x, nil
}
