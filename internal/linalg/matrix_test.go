package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("At returned wrong values: %v", m)
	}
	m.Set(0, 0, 9)
	if m.At(0, 0) != 9 {
		t.Fatalf("Set failed")
	}
	c := m.Clone()
	c.Set(0, 0, 0)
	if m.At(0, 0) != 9 {
		t.Fatalf("Clone aliases original")
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 {
		t.Fatalf("transpose dims = %dx%d", tr.Rows, tr.Cols)
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	for i := range c.Data {
		if c.Data[i] != want.Data[i] {
			t.Fatalf("Mul = %v, want %v", c, want)
		}
	}
}

func TestMulIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := NewMatrix(n, n)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		p := m.Mul(Identity(n))
		for i := range p.Data {
			if !almostEqual(p.Data[i], m.Data[i], 1e-12) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulVec(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := m.MulVec([]float64{1, 1, 1})
	if got[0] != 6 || got[1] != 15 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestAddScaleDiag(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	s := m.Add(m).Scale(0.5)
	for i := range s.Data {
		if s.Data[i] != m.Data[i] {
			t.Fatalf("Add+Scale(0.5) should be identity op")
		}
	}
	d := m.Clone().AddDiag(10)
	if d.At(0, 0) != 11 || d.At(1, 1) != 14 || d.At(0, 1) != 2 {
		t.Fatalf("AddDiag wrong: %v", d)
	}
}

func TestCholeskyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		// Build SPD matrix A = B·Bᵀ + n·I.
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := b.Mul(b.T()).AddDiag(float64(n))
		l, err := Cholesky(a)
		if err != nil {
			return false
		}
		// Check L·Lᵀ ≈ A.
		recon := l.Mul(l.T())
		for i := range a.Data {
			if !almostEqual(recon.Data[i], a.Data[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCholeskyNotPD(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := Cholesky(m); err == nil {
		t.Fatal("expected error for indefinite matrix")
	}
}

func TestSolveSPDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := b.Mul(b.T()).AddDiag(float64(n))
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		rhs := a.MulVec(xTrue)
		x, err := SolveSPD(a, rhs)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(x[i], xTrue[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLinearProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		a.AddDiag(float64(2 * n)) // make it comfortably nonsingular
		xTrue := make([]float64, n)
		for i := range xTrue {
			xTrue[i] = rng.NormFloat64()
		}
		rhs := a.MulVec(xTrue)
		x, err := SolveLinear(a, rhs)
		if err != nil {
			return false
		}
		for i := range x {
			if !almostEqual(x[i], xTrue[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := SolveLinear(a, []float64{1, 2}); err == nil {
		t.Fatal("expected singular-matrix error")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if !almostEqual(Norm2([]float64{3, 4}), 5, 1e-15) {
		t.Fatal("Norm2 wrong")
	}
}

func TestEigenSymKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs, err := EigenSym(m)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(vals[0], 3, 1e-9) || !almostEqual(vals[1], 1, 1e-9) {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// Check A·v = λ·v for the top eigenvector.
	v0 := []float64{vecs.At(0, 0), vecs.At(1, 0)}
	av := m.MulVec(v0)
	for i := range av {
		if !almostEqual(av[i], 3*v0[i], 1e-9) {
			t.Fatalf("A·v != λ·v: %v vs %v", av, v0)
		}
	}
}

func TestEigenSymProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := b.Add(b.T()).Scale(0.5) // symmetric
		vals, vecs, err := EigenSym(a)
		if err != nil {
			return false
		}
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				return false
			}
		}
		// A·v_i ≈ λ_i·v_i and the eigenvectors are unit length.
		for c := 0; c < n; c++ {
			v := make([]float64, n)
			for r := 0; r < n; r++ {
				v[r] = vecs.At(r, c)
			}
			if !almostEqual(Norm2(v), 1, 1e-6) {
				return false
			}
			av := a.MulVec(v)
			for r := 0; r < n; r++ {
				if !almostEqual(av[r], vals[c]*v[r], 1e-6) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEigenSymTraceInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(7)
		b := NewMatrix(n, n)
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		a := b.Add(b.T()).Scale(0.5)
		var trace float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
		}
		vals, _, err := EigenSym(a)
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return almostEqual(sum, trace, 1e-8)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestEigenSymEmpty(t *testing.T) {
	vals, vecs, err := EigenSym(NewMatrix(0, 0))
	if err != nil || len(vals) != 0 || vecs.Rows != 0 {
		t.Fatalf("empty eigen failed: %v %v %v", vals, vecs, err)
	}
}
