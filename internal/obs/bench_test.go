package obs

import (
	"io"
	"testing"
)

// The disabled-observability path must be a zero-allocation nil check:
// the <2% overhead budget on the tuning benchmarks depends on it.

func BenchmarkDisabledCounter(b *testing.B) {
	var r *Registry
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("x").Inc()
	}
}

func BenchmarkDisabledHistogram(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	SetTracer(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		StartSpan("x").ArgInt("i", int64(i)).End()
	}
}

func BenchmarkEnabledHistogramRecord(b *testing.B) {
	h := NewHistogram()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Record(int64(i))
	}
}

func BenchmarkEnabledSpan(b *testing.B) {
	tr := NewTracer(io.Discard)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.StartSpan("x").End()
	}
}

func TestDisabledOpsDoNotAllocate(t *testing.T) {
	var r *Registry
	allocs := testing.AllocsPerRun(100, func() {
		r.Counter("x").Inc()
		r.Histogram("h").Record(1)
		r.Gauge("g").Set(1)
		StartSpan("s").Arg("k", "v").End()
	})
	if allocs != 0 {
		t.Fatalf("disabled observability allocated %.1f times per op, want 0", allocs)
	}
}
