package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: a bounded ring buffer of recent structured events —
// lease grants and expiries, reassignments, retries, faults, checkpoint
// writes — kept for post-mortems. The CLI layer dumps it to stderr on
// SIGQUIT and serves it at /eventz. Like every observer in this
// package, it is nil-safe and never influences the computation it
// records; with no recorder installed the global RecordEvent is one
// atomic load and a nil check.

// FlightEvent is one recorded event.
type FlightEvent struct {
	// Seq is the event's position in the recorder's lifetime stream;
	// gaps below the first retained event mean the ring wrapped.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Kind names the event ("lease-expired", "sim-retry", "checkpoint",
	// ...). Kinds prefixed "warn-" are anomalies worth paging on.
	Kind   string `json:"kind"`
	Fields []KV   `json:"fields,omitempty"`
}

// KV is one ordered event annotation.
type KV struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// FlightRecorder retains the most recent events in a fixed ring.
// All methods are safe for concurrent use and no-ops on nil.
type FlightRecorder struct {
	mu   sync.Mutex
	ring []FlightEvent
	next uint64           // total events ever recorded
	now  func() time.Time // injectable clock (tests)
}

// NewFlightRecorder builds a recorder retaining up to capacity events
// (<=0 selects 256).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = 256
	}
	return &FlightRecorder{ring: make([]FlightEvent, capacity), now: time.Now}
}

// Record appends one event; kv is alternating key/value pairs.
func (f *FlightRecorder) Record(kind string, kv ...string) {
	if f == nil {
		return
	}
	var fields []KV
	for i := 0; i+1 < len(kv); i += 2 {
		fields = append(fields, KV{Key: kv[i], Value: kv[i+1]})
	}
	f.mu.Lock()
	f.ring[f.next%uint64(len(f.ring))] = FlightEvent{
		Seq: f.next, Time: f.now(), Kind: kind, Fields: fields,
	}
	f.next++
	f.mu.Unlock()
}

// Events returns the retained events in chronological order (nil on a
// nil recorder).
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	cap64 := uint64(len(f.ring))
	start := uint64(0)
	if n > cap64 {
		start = n - cap64
	}
	out := make([]FlightEvent, 0, n-start)
	for s := start; s < n; s++ {
		out = append(out, f.ring[s%cap64])
	}
	return out
}

// Dropped reports how many events fell off the ring.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if cap64 := uint64(len(f.ring)); f.next > cap64 {
		return f.next - cap64
	}
	return 0
}

// WriteText dumps the retained events as one line each — the SIGQUIT
// post-mortem format.
func (f *FlightRecorder) WriteText(w io.Writer) error {
	events := f.Events()
	if _, err := fmt.Fprintf(w, "flight recorder: %d events retained, %d dropped\n",
		len(events), f.Dropped()); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "[%06d] %s %s", e.Seq, e.Time.Format("15:04:05.000"), e.Kind); err != nil {
			return err
		}
		for _, kv := range e.Fields {
			if _, err := fmt.Fprintf(w, " %s=%s", kv.Key, kv.Value); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON dumps the retained events as an indented JSON array (the
// /eventz format).
func (f *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	events := f.Events()
	if events == nil {
		events = []FlightEvent{}
	}
	return enc.Encode(events)
}

// globalRecorder is the process-wide recorder used by RecordEvent, so
// deeply nested layers (coordinator, validator, tuner) need no recorder
// plumbing.
var globalRecorder atomic.Pointer[FlightRecorder]

// SetFlightRecorder installs (or, with nil, removes) the global
// recorder.
func SetFlightRecorder(f *FlightRecorder) { globalRecorder.Store(f) }

// Recorder returns the installed global recorder (nil when disabled).
func Recorder() *FlightRecorder { return globalRecorder.Load() }

// RecordEvent records an event on the global recorder; with none
// installed it is a no-op.
func RecordEvent(kind string, kv ...string) {
	globalRecorder.Load().Record(kind, kv...)
}
