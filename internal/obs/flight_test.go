package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4)
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	f.now = func() time.Time { return base }

	for i := 0; i < 6; i++ {
		f.Record("tick", "i", string(rune('0'+i)))
	}
	events := f.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	if events[0].Seq != 2 || events[3].Seq != 5 {
		t.Fatalf("retained seqs %d..%d, want 2..5", events[0].Seq, events[3].Seq)
	}
	for i := 1; i < len(events); i++ {
		if events[i].Seq != events[i-1].Seq+1 {
			t.Fatal("events out of order")
		}
	}
	if f.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", f.Dropped())
	}
}

func TestFlightRecorderDumps(t *testing.T) {
	f := NewFlightRecorder(8)
	base := time.Date(2026, 1, 2, 3, 4, 5, 123456789, time.UTC)
	f.now = func() time.Time { return base }
	f.Record("lease-expired", "lease", "7", "worker", "w1")
	f.Record("warn-flaky-job", "trace", "Database#0")

	var text strings.Builder
	if err := f.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	out := text.String()
	for _, want := range []string{
		"2 events retained, 0 dropped",
		"[000000] 03:04:05.123 lease-expired lease=7 worker=w1",
		"[000001] 03:04:05.123 warn-flaky-job trace=Database#0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text dump missing %q:\n%s", want, out)
		}
	}

	var buf strings.Builder
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded []FlightEvent
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 2 || decoded[1].Kind != "warn-flaky-job" {
		t.Fatalf("bad JSON dump: %+v", decoded)
	}
}

func TestFlightRecorderNilAndGlobal(t *testing.T) {
	var f *FlightRecorder
	f.Record("ignored")
	if f.Events() != nil || f.Dropped() != 0 {
		t.Fatal("nil recorder not inert")
	}

	// No global recorder installed: RecordEvent is a no-op.
	SetFlightRecorder(nil)
	RecordEvent("dropped-on-floor")

	rec := NewFlightRecorder(16)
	SetFlightRecorder(rec)
	defer SetFlightRecorder(nil)
	RecordEvent("checkpoint", "path", "x.json")
	if events := Recorder().Events(); len(events) != 1 || events[0].Kind != "checkpoint" {
		t.Fatalf("global record missing: %+v", events)
	}

	// Odd kv tail is tolerated (last key dropped).
	rec.Record("odd", "k1", "v1", "dangling")
	events := rec.Events()
	last := events[len(events)-1]
	if len(last.Fields) != 1 || last.Fields[0] != (KV{"k1", "v1"}) {
		t.Fatalf("odd kv handling: %+v", last.Fields)
	}
}
