package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Log-linear bucket layout (HdrHistogram-style): values below
// histSubBuckets get one exact bucket each; above that, every power-of-two
// octave is subdivided into histSubBuckets linear buckets, bounding the
// relative quantile error by 1/histSubBuckets (≈3.1%).
const (
	histSubBits    = 5
	histSubBuckets = 1 << histSubBits
	// histBuckets covers every non-negative int64: the exact region plus
	// (63 - histSubBits + 1) octaves of histSubBuckets buckets each.
	histBuckets = (64 - histSubBits) << histSubBits
)

// Histogram is a fixed-memory, lock-free log-linear histogram of
// non-negative int64 samples (typically nanoseconds). All methods are
// safe for concurrent use and no-ops on a nil receiver, so disabled
// instrumentation costs one nil check and zero allocations.
//
// Counts are atomic per field; a Snapshot taken concurrently with
// recording is internally consistent per bucket but not across fields.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid only when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// NewHistogram returns an empty standalone histogram (registries create
// theirs via Registry.Histogram).
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

// bucketIndex maps a sample to its bucket. Negative samples clamp to 0.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < histSubBuckets {
		return int(v)
	}
	h := bits.Len64(uint64(v)) - 1 // position of the highest set bit
	octave := h - histSubBits + 1
	sub := int((uint64(v) >> uint(h-histSubBits)) & (histSubBuckets - 1))
	return octave<<histSubBits | sub
}

// bucketLow returns the inclusive lower bound of bucket i.
func bucketLow(i int) int64 {
	if i < histSubBuckets {
		return int64(i)
	}
	octave := i >> histSubBits
	sub := i & (histSubBuckets - 1)
	return (int64(histSubBuckets) + int64(sub)) << uint(octave-1)
}

// bucketHigh returns the inclusive upper bound of bucket i.
func bucketHigh(i int) int64 {
	if i+1 >= histBuckets {
		return math.MaxInt64
	}
	return bucketLow(i+1) - 1
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketIndex(v)].Add(1)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the exact arithmetic mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest recorded sample (0 when empty).
func (h *Histogram) Max() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Min returns the smallest recorded sample (0 when empty).
func (h *Histogram) Min() int64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Quantile returns a conservative nearest-rank estimate of the q-th
// quantile (q in [0,1]): the upper bound of the bucket holding the rank,
// clamped to the observed maximum. The estimate never undershoots the
// exact nearest-rank value and overshoots it by at most one bucket width
// (relative error ≤ 1/32); samples below 32 are exact.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.buckets[i].Load()
		if c == 0 {
			continue
		}
		cum += c
		if cum >= rank {
			v := bucketHigh(i)
			if mx := h.max.Load(); v > mx {
				v = mx
			}
			return v
		}
	}
	return h.max.Load()
}

// Bucket is one non-empty bucket of a histogram snapshot.
type Bucket struct {
	Low   int64 `json:"low"`   // inclusive lower bound
	High  int64 `json:"high"`  // inclusive upper bound
	Count int64 `json:"count"` // samples in [Low, High]
}

// HistogramSnapshot is a point-in-time copy of a histogram, carrying the
// non-empty buckets and headline quantiles.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Min     int64    `json:"min"`
	Max     int64    `json:"max"`
	P50     int64    `json:"p50"`
	P95     int64    `json:"p95"`
	P99     int64    `json:"p99"`
	P999    int64    `json:"p999"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot copies the histogram state (nil-safe; empty snapshot on nil).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.Count(), Sum: h.Sum(), Min: h.Min(), Max: h.Max(),
		P50: h.Quantile(0.50), P95: h.Quantile(0.95),
		P99: h.Quantile(0.99), P999: h.Quantile(0.999),
	}
	for i := 0; i < histBuckets; i++ {
		if c := h.buckets[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, Bucket{Low: bucketLow(i), High: bucketHigh(i), Count: c})
		}
	}
	return s
}
