package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// exactQuantile is the nearest-rank quantile on a sorted copy.
func exactQuantile(vals []int64, q float64) int64 {
	s := append([]int64(nil), vals...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	rank := int(math.Ceil(q * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// checkQuantiles asserts the histogram's quantile estimates stay within
// the documented bucket error bound of the exact nearest-rank values:
// never below, and above by at most one bucket width (≤1/32 relative).
func checkQuantiles(t *testing.T, vals []int64, qs ...float64) {
	t.Helper()
	h := NewHistogram()
	for _, v := range vals {
		h.Record(v)
	}
	for _, q := range qs {
		exact := exactQuantile(vals, q)
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q=%g: estimate %d below exact %d", q, got, exact)
		}
		bound := exact + exact/histSubBuckets + 1
		if got > bound {
			t.Errorf("q=%g: estimate %d exceeds error bound %d (exact %d)", q, got, bound, exact)
		}
	}
}

func TestHistogramQuantileUniform(t *testing.T) {
	vals := make([]int64, 10000)
	for i := range vals {
		vals[i] = int64(i + 1) // uniform 1..10000
	}
	checkQuantiles(t, vals, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0)
}

func TestHistogramQuantileLogNormalish(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vals := make([]int64, 20000)
	for i := range vals {
		vals[i] = int64(math.Exp(rng.NormFloat64()*1.5+10)) + 1 // ~e^10 ns scale, heavy tail
	}
	checkQuantiles(t, vals, 0.5, 0.95, 0.99, 0.999)
}

func TestHistogramQuantileConstant(t *testing.T) {
	vals := make([]int64, 500)
	for i := range vals {
		vals[i] = 123_456_789
	}
	h := NewHistogram()
	for _, v := range vals {
		h.Record(v)
	}
	// Clamping to the observed max makes every quantile of a constant
	// distribution exact.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 123_456_789 {
			t.Fatalf("q=%g of constant distribution = %d, want 123456789", q, got)
		}
	}
}

func TestHistogramQuantileTwoPoint(t *testing.T) {
	// 99 fast requests, 1 slow: p50/p99 must stay at the fast mode (within
	// bucket error), p100 must be the exact outlier.
	var vals []int64
	for i := 0; i < 99; i++ {
		vals = append(vals, 1000)
	}
	vals = append(vals, 5_000_000)
	checkQuantiles(t, vals, 0.5, 0.99)
	h := NewHistogram()
	for _, v := range vals {
		h.Record(v)
	}
	if got := h.Quantile(1); got != 5_000_000 {
		t.Fatalf("p100 = %d, want exact max 5000000", got)
	}
}

func TestHistogramExactRegion(t *testing.T) {
	// Values below 32 land in width-1 buckets: quantiles are exact.
	h := NewHistogram()
	for v := int64(0); v < 32; v++ {
		h.Record(v)
	}
	if got := h.Quantile(0.5); got != 15 {
		t.Fatalf("p50 of 0..31 = %d, want 15", got)
	}
	if h.Min() != 0 || h.Max() != 31 || h.Count() != 32 {
		t.Fatalf("min/max/count = %d/%d/%d, want 0/31/32", h.Min(), h.Max(), h.Count())
	}
}

func TestHistogramBucketLayout(t *testing.T) {
	// Round-trip: every value must fall inside its own bucket's bounds,
	// and bucket bounds must tile the axis without gaps or overlaps.
	for _, v := range []int64{0, 1, 31, 32, 33, 63, 64, 100, 1023, 1024, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		i := bucketIndex(v)
		if lo, hi := bucketLow(i), bucketHigh(i); v < lo || v > hi {
			t.Errorf("value %d mapped to bucket %d [%d,%d]", v, i, lo, hi)
		}
	}
	for i := 0; i < histBuckets-1; i++ {
		if bucketHigh(i)+1 != bucketLow(i+1) {
			t.Fatalf("gap between buckets %d and %d: high %d, next low %d",
				i, i+1, bucketHigh(i), bucketLow(i+1))
		}
	}
}

func TestHistogramNilAndNegative(t *testing.T) {
	var h *Histogram
	h.Record(5) // must not panic
	if h.Quantile(0.5) != 0 || h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("nil histogram must read as empty")
	}
	h2 := NewHistogram()
	h2.Record(-100) // clamps to 0
	if h2.Min() != 0 || h2.Max() != 0 || h2.Count() != 1 {
		t.Fatalf("negative sample should clamp to 0: min=%d max=%d", h2.Min(), h2.Max())
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 10000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("count = %d, want %d", h.Count(), goroutines*per)
	}
	var want int64 = goroutines * per * (goroutines*per - 1) / 2
	if h.Sum() != want {
		t.Fatalf("sum = %d, want %d", h.Sum(), want)
	}
	snap := h.Snapshot()
	var n int64
	for _, b := range snap.Buckets {
		n += b.Count
	}
	if n != h.Count() {
		t.Fatalf("snapshot bucket counts sum to %d, want %d", n, h.Count())
	}
}
