// Package httpobs serves live introspection over HTTP for any autoblox
// process (coordinator, worker, or single-binary run):
//
//	/metrics      Prometheus text exposition of the process registry
//	/statusz      JSON fleet/process status (pluggable provider)
//	/tunez        JSON live tune progress (same snapshot as -progress)
//	/eventz       JSON flight-recorder dump (recent structured events)
//	/debug/pprof  net/http/pprof profiles
//
// The server is an observer only: every handler renders a point-in-time
// snapshot, and a nil registry/status/tune/flight source renders an
// empty document rather than an error, so wiring is optional per
// binary.
package httpobs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime"
	"time"

	"autoblox/internal/obs"
)

// Options selects the data sources behind each endpoint. Any field may
// be nil; the matching endpoint then serves an empty snapshot.
type Options struct {
	// Registry backs /metrics.
	Registry *obs.Registry
	// Tune backs /tunez.
	Tune *obs.TuneStatus
	// Flight backs /eventz; nil falls back to the global recorder.
	Flight *obs.FlightRecorder
	// Status supplies the application section of /statusz — typically
	// the distributed fleet view (connected workers, leases, per-worker
	// tallies). It must return a JSON-serializable value.
	Status func() any
}

// Server is a running introspection endpoint.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// Start listens on addr (e.g. "localhost:8080", ":0" for an ephemeral
// port) and serves the introspection endpoints until Close.
func Start(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, start: time.Now()}

	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := opts.Registry.WritePrometheus(w); err != nil {
			fmt.Fprintln(os.Stderr, "httpobs: /metrics:", err)
		}
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		doc := map[string]any{
			"pid":        os.Getpid(),
			"go_version": runtime.Version(),
			"goroutines": runtime.NumGoroutine(),
			"uptime":     time.Since(s.start).Round(time.Millisecond).String(),
		}
		if opts.Status != nil {
			if v := opts.Status(); v != nil {
				doc["fleet"] = v
			}
		}
		writeJSON(w, doc)
	})
	mux.HandleFunc("/tunez", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, opts.Tune.Snapshot())
	})
	mux.HandleFunc("/eventz", func(w http.ResponseWriter, r *http.Request) {
		rec := opts.Flight
		if rec == nil {
			rec = obs.Recorder()
		}
		w.Header().Set("Content-Type", "application/json")
		if err := rec.WriteJSON(w); err != nil {
			fmt.Fprintln(os.Stderr, "httpobs: /eventz:", err)
		}
	})
	// pprof registers on http.DefaultServeMux via init; re-register its
	// handlers explicitly so this private mux serves them too.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s.srv = &http.Server{Handler: mux}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "httpobs:", err)
		}
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// handleIndex lists the endpoints.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, `autoblox introspection
/metrics      Prometheus text exposition
/statusz      process + fleet status (JSON)
/tunez        live tune progress (JSON)
/eventz       flight recorder dump (JSON)
/debug/pprof  profiles
`)
}

// writeJSON writes v as indented JSON.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, "httpobs:", err)
	}
}
