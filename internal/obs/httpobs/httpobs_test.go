package httpobs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"autoblox/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("sim_runs_total").Add(9)
	reg.Counter(`worker_jobs_total{worker="w1"}`).Add(4)

	tune := obs.NewTuneStatus()
	tune.Begin("Database", 10)
	tune.Update(2, 0.75)

	flight := obs.NewFlightRecorder(16)
	flight.Record("lease-expired", "lease", "3")

	srv, err := Start("127.0.0.1:0", Options{
		Registry: reg,
		Tune:     tune,
		Flight:   flight,
		Status:   func() any { return map[string]int{"workers": 2} },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"# TYPE sim_runs_total counter",
		"sim_runs_total 9",
		`worker_jobs_total{worker="w1"} 4`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = get(t, base+"/statusz")
	if code != 200 {
		t.Fatalf("/statusz status %d", code)
	}
	var statusz struct {
		PID   int            `json:"pid"`
		Fleet map[string]int `json:"fleet"`
	}
	if err := json.Unmarshal([]byte(body), &statusz); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, body)
	}
	if statusz.PID == 0 || statusz.Fleet["workers"] != 2 {
		t.Fatalf("/statusz content: %s", body)
	}

	code, body = get(t, base+"/tunez")
	if code != 200 {
		t.Fatalf("/tunez status %d", code)
	}
	var snap obs.TuneSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/tunez not JSON: %v\n%s", err, body)
	}
	if snap.Target != "Database" || snap.Iteration != 3 || snap.BestGrade != 0.75 {
		t.Fatalf("/tunez content: %+v", snap)
	}

	code, body = get(t, base+"/eventz")
	if code != 200 {
		t.Fatalf("/eventz status %d", code)
	}
	var events []obs.FlightEvent
	if err := json.Unmarshal([]byte(body), &events); err != nil {
		t.Fatalf("/eventz not JSON: %v\n%s", err, body)
	}
	if len(events) != 1 || events[0].Kind != "lease-expired" {
		t.Fatalf("/eventz content: %s", body)
	}

	if code, _ := get(t, base+"/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
	if code, body := get(t, base+"/"); code != 200 || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %s", code, body)
	}
	if code, _ := get(t, base+"/nonexistent"); code != 404 {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

// TestServerNilSources: every endpoint stays up with no data sources —
// wiring is optional per binary.
func TestServerNilSources(t *testing.T) {
	srv, err := Start("127.0.0.1:0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	for _, path := range []string{"/metrics", "/statusz", "/tunez", "/eventz"} {
		if code, _ := get(t, base+path); code != 200 {
			t.Errorf("%s status %d with nil sources", path, code)
		}
	}
}
