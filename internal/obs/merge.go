package obs

import (
	"strconv"
	"strings"
)

// Metric merging and delta encoding: the primitives behind fleet-wide
// aggregation. A worker process snapshots its registry, delta-encodes it
// against the previous push, and ships the delta over the wire; the
// coordinator absorbs each delta into one fleet registry under a
// per-worker label. Histogram merging is exact — every process shares
// the same fixed log-linear bucket layout, so a snapshot bucket's lower
// bound identifies its index and counts add without re-binning error.

// Merge folds a histogram snapshot into h (no-op on nil h or an empty
// snapshot). Merging is exact: quantiles of the merged histogram carry
// the same ≤1/32 relative bin error as a histogram that recorded the
// combined sample stream directly. Snapshots from DeltaSince compose the
// same way, because bucket counts are additive and Min/Max only ever
// tighten monotonically.
func (h *Histogram) Merge(s HistogramSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	h.count.Add(s.Count)
	h.sum.Add(s.Sum)
	for _, b := range s.Buckets {
		h.buckets[bucketIndex(b.Low)].Add(b.Count)
	}
	for {
		cur := h.min.Load()
		if s.Min >= cur || h.min.CompareAndSwap(cur, s.Min) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if s.Max <= cur || h.max.CompareAndSwap(cur, s.Max) {
			break
		}
	}
}

// MergeSnapshots combines two histogram snapshots into one, as if a
// single histogram had recorded both sample streams.
func MergeSnapshots(a, b HistogramSnapshot) HistogramSnapshot {
	h := NewHistogram()
	h.Merge(a)
	h.Merge(b)
	return h.Snapshot()
}

// DeltaSince returns the changes in s relative to an earlier snapshot
// prev of the same registry: counter increments, gauge values that
// changed (gauges are absolute, so the current value is the delta
// representation), and per-bucket histogram count increments. Series
// absent from prev appear whole. The result is what a worker pushes
// over the wire; Registry.Absorb applies it on the far side.
func (s Snapshot) DeltaSince(prev Snapshot) Snapshot {
	d := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		if dv := v - prev.Counters[name]; dv != 0 {
			d.Counters[name] = dv
		}
	}
	for name, v := range s.Gauges {
		if pv, ok := prev.Gauges[name]; !ok || pv != v {
			d.Gauges[name] = v
		}
	}
	for name, h := range s.Histograms {
		ph, ok := prev.Histograms[name]
		if !ok {
			d.Histograms[name] = h
			continue
		}
		if h.Count == ph.Count {
			continue
		}
		d.Histograms[name] = histDelta(h, ph)
	}
	return d
}

// Empty reports whether a snapshot carries no series at all (a delta
// with nothing to push).
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// histDelta subtracts prev's bucket counts from cur's. Both bucket lists
// are sorted by Low (Snapshot emits them in index order), so one merge
// walk suffices. Min/Max stay absolute: they tighten monotonically, so
// merging the current values is always correct.
func histDelta(cur, prev HistogramSnapshot) HistogramSnapshot {
	d := HistogramSnapshot{
		Count: cur.Count - prev.Count,
		Sum:   cur.Sum - prev.Sum,
		Min:   cur.Min,
		Max:   cur.Max,
		P50:   cur.P50, P95: cur.P95, P99: cur.P99, P999: cur.P999,
	}
	j := 0
	for _, b := range cur.Buckets {
		for j < len(prev.Buckets) && prev.Buckets[j].Low < b.Low {
			j++
		}
		c := b.Count
		if j < len(prev.Buckets) && prev.Buckets[j].Low == b.Low {
			c -= prev.Buckets[j].Count
		}
		if c != 0 {
			d.Buckets = append(d.Buckets, Bucket{Low: b.Low, High: b.High, Count: c})
		}
	}
	return d
}

// Absorb folds a snapshot (typically a DeltaSince delta) into the
// registry, rewriting every series name with an extra label — the
// coordinator calls Absorb(delta, "worker", name) to keep one fleet
// registry with per-worker series. Counter deltas add, gauge values
// overwrite, histogram deltas merge exactly. An empty labelKey absorbs
// under the original names. No-op on a nil registry.
func (r *Registry) Absorb(s Snapshot, labelKey, labelValue string) {
	if r == nil {
		return
	}
	for name, v := range s.Counters {
		r.Counter(WithLabel(name, labelKey, labelValue)).Add(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(WithLabel(name, labelKey, labelValue)).Set(v)
	}
	for name, h := range s.Histograms {
		r.Histogram(WithLabel(name, labelKey, labelValue)).Merge(h)
	}
}

// WithLabel appends key="value" to a series name's baked-in label set,
// creating one when the name has none. The value is quoted with Go
// escaping, which matches the Prometheus label escaping rules for
// backslash, quote and newline.
func WithLabel(name, key, value string) string {
	if key == "" {
		return name
	}
	label := key + "=" + strconv.Quote(value)
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		if i == len(name)-2 { // empty label set "name{}"
			return name[:len(name)-1] + label + "}"
		}
		return name[:len(name)-1] + "," + label + "}"
	}
	return name + "{" + label + "}"
}
