package obs

import (
	"math/rand"
	"sync"
	"testing"
)

// TestHistogramMergeExact is the merge property test: because every
// histogram shares one fixed bucket layout, Merge(a, b) must be
// bucket-for-bucket identical to a histogram that recorded both sample
// streams directly — same counts, sum, min/max, and therefore identical
// quantiles (within the layout's usual ≤1/32 bin error vs. the true
// stream, but with NO additional merge error).
func TestHistogramMergeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		a, b, combined := NewHistogram(), NewHistogram(), NewHistogram()
		na, nb := rng.Intn(2000), rng.Intn(2000)
		for i := 0; i < na; i++ {
			v := rng.Int63n(1 << uint(8+rng.Intn(40)))
			a.Record(v)
			combined.Record(v)
		}
		for i := 0; i < nb; i++ {
			v := rng.Int63n(1 << uint(8+rng.Intn(40)))
			b.Record(v)
			combined.Record(v)
		}

		merged := NewHistogram()
		merged.Merge(a.Snapshot())
		merged.Merge(b.Snapshot())
		got, want := merged.Snapshot(), combined.Snapshot()

		if got.Count != want.Count || got.Sum != want.Sum {
			t.Fatalf("trial %d: merged count/sum %d/%d, combined %d/%d", trial, got.Count, got.Sum, want.Count, want.Sum)
		}
		if want.Count > 0 && (got.Min != want.Min || got.Max != want.Max) {
			t.Fatalf("trial %d: merged min/max %d/%d, combined %d/%d", trial, got.Min, got.Max, want.Min, want.Max)
		}
		if len(got.Buckets) != len(want.Buckets) {
			t.Fatalf("trial %d: merged %d buckets, combined %d", trial, len(got.Buckets), len(want.Buckets))
		}
		for i := range got.Buckets {
			if got.Buckets[i] != want.Buckets[i] {
				t.Fatalf("trial %d: bucket %d: merged %+v, combined %+v", trial, i, got.Buckets[i], want.Buckets[i])
			}
		}
		for _, q := range []struct {
			name      string
			got, want int64
		}{
			{"p50", got.P50, want.P50}, {"p95", got.P95, want.P95},
			{"p99", got.P99, want.P99}, {"p999", got.P999, want.P999},
		} {
			if q.got != q.want {
				t.Fatalf("trial %d: %s: merged %d, combined %d", trial, q.name, q.got, q.want)
			}
		}
	}
}

func TestMergeSnapshots(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(10)
	a.Record(20)
	b.Record(1000)
	s := MergeSnapshots(a.Snapshot(), b.Snapshot())
	if s.Count != 3 || s.Sum != 1030 || s.Min != 10 || s.Max != 1000 {
		t.Fatalf("bad merged snapshot: %+v", s)
	}
	// Merging an empty snapshot is a no-op.
	h := NewHistogram()
	h.Merge(HistogramSnapshot{})
	if h.Count() != 0 {
		t.Fatal("empty merge recorded samples")
	}
}

// TestDeltaSinceAbsorbRoundTrip pins the wire contract: pushing
// successive deltas of a live registry into a second registry (under a
// worker label) must reproduce the source registry's series exactly.
func TestDeltaSinceAbsorbRoundTrip(t *testing.T) {
	src := NewRegistry()
	fleet := NewRegistry()
	var prev Snapshot

	push := func() {
		cur := src.Snapshot()
		delta := cur.DeltaSince(prev)
		fleet.Absorb(delta, "worker", "w1")
		prev = cur
	}

	src.Counter("jobs_total").Add(3)
	src.Gauge("depth").Set(2.5)
	src.Histogram("lat_ns").Record(100)
	src.Histogram("lat_ns").Record(200)
	push()

	src.Counter("jobs_total").Add(4)
	src.Gauge("depth").Set(1.0)
	src.Histogram("lat_ns").Record(100)
	src.Histogram("lat_ns").Record(1 << 20)
	push()

	// A push with no changes must be empty.
	if d := src.Snapshot().DeltaSince(prev); !d.Empty() {
		t.Fatalf("idle delta not empty: %+v", d)
	}

	got := fleet.Snapshot()
	if n := got.Counters[`jobs_total{worker="w1"}`]; n != 7 {
		t.Fatalf("absorbed counter = %d, want 7", n)
	}
	if g := got.Gauges[`depth{worker="w1"}`]; g != 1.0 {
		t.Fatalf("absorbed gauge = %g, want 1.0", g)
	}
	want := src.Snapshot().Histograms["lat_ns"]
	h := got.Histograms[`lat_ns{worker="w1"}`]
	if h.Count != want.Count || h.Sum != want.Sum || h.Min != want.Min || h.Max != want.Max {
		t.Fatalf("absorbed histogram %+v, want %+v", h, want)
	}
	if len(h.Buckets) != len(want.Buckets) {
		t.Fatalf("absorbed %d buckets, want %d", len(h.Buckets), len(want.Buckets))
	}
	for i := range h.Buckets {
		if h.Buckets[i] != want.Buckets[i] {
			t.Fatalf("bucket %d: absorbed %+v, want %+v", i, h.Buckets[i], want.Buckets[i])
		}
	}
}

func TestWithLabel(t *testing.T) {
	cases := []struct {
		name, key, value, want string
	}{
		{"jobs_total", "worker", "w1", `jobs_total{worker="w1"}`},
		{`busy_ns{worker="3"}`, "host", "h", `busy_ns{worker="3",host="h"}`},
		{"plain{}", "k", "v", `plain{k="v"}`},
		{"x", "", "ignored", "x"},
		{"esc", "k", `a"b\c`, `esc{k="a\"b\\c"}`},
	}
	for _, c := range cases {
		if got := WithLabel(c.name, c.key, c.value); got != c.want {
			t.Errorf("WithLabel(%q, %q, %q) = %q, want %q", c.name, c.key, c.value, got, c.want)
		}
	}
}

// TestSnapshotUnderConcurrentWrites is the race-detector stress test:
// snapshots, deltas and merges taken while writers hammer the registry
// must never race or produce impossible values (negative counters).
func TestSnapshotUnderConcurrentWrites(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("ops_total")
			g := r.Gauge("depth")
			h := r.Histogram("lat_ns")
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(float64(i))
				h.Record(int64(i % 4096))
			}
		}(w)
	}
	fleet := NewRegistry()
	var prev Snapshot
	for i := 0; i < 200; i++ {
		cur := r.Snapshot()
		if n := cur.Counters["ops_total"]; n < prev.Counters["ops_total"] {
			t.Fatalf("counter went backwards: %d then %d", prev.Counters["ops_total"], n)
		}
		delta := cur.DeltaSince(prev)
		if d := delta.Counters["ops_total"]; d < 0 {
			t.Fatalf("negative counter delta %d", d)
		}
		fleet.Absorb(delta, "worker", "stress")
		prev = cur
	}
	close(stop)
	wg.Wait()
}
