package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Progress periodically prints a one-line status to a writer (typically
// stderr). It renders TuneSnapshot.Line from the same TuneStatus that
// backs the /tunez HTTP endpoint, so the ticker and the endpoint can
// never disagree. It is purely an observer: it never influences the
// computation it reports on.
type Progress struct {
	w        io.Writer
	st       *TuneStatus
	interval time.Duration

	start    time.Time
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewProgress builds a reporter over a tune status. A zero interval
// defaults to 2s.
func NewProgress(w io.Writer, st *TuneStatus, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if st == nil {
		st = NewTuneStatus()
	}
	return &Progress{
		w: w, st: st, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

// Status exposes the backing TuneStatus (nil on a nil reporter).
func (p *Progress) Status() *TuneStatus {
	if p == nil {
		return nil
	}
	return p.st
}

// SetTotal declares the expected iteration count (enables the ETA).
func (p *Progress) SetTotal(n int) {
	if p != nil {
		p.st.SetTotal(n)
	}
}

// Update records iteration progress; wire it into TunerOptions.OnIteration.
func (p *Progress) Update(iter int, best float64) {
	if p == nil {
		return
	}
	p.st.Update(iter, best)
}

// Start launches the ticker goroutine.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.start = time.Now()
	go func() {
		defer close(p.done)
		tick := time.NewTicker(p.interval)
		defer tick.Stop()
		lastSims := p.st.Snapshot().Sims
		lastTime := p.start
		for {
			select {
			case <-p.stop:
				return
			case now := <-tick.C:
				snap := p.st.Snapshot()
				rate := float64(snap.Sims-lastSims) / now.Sub(lastTime).Seconds()
				lastSims, lastTime = snap.Sims, now
				fmt.Fprintln(p.w, snap.Line(rate))
			}
		}
	}()
}

// Stop halts the ticker and prints a final summary line.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.stop)
		<-p.done
		p.st.Done()
		elapsed := time.Since(p.start)
		cur := p.st.Snapshot().Sims
		fmt.Fprintf(p.w, "progress: done: %d sims in %v (%.1f sims/s)\n",
			cur, elapsed.Round(time.Millisecond), float64(cur)/elapsed.Seconds())
	})
}
