package obs

import (
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Progress periodically prints a one-line status — simulations/second
// from a counter, plus iteration progress and an ETA when the caller
// feeds them in — to a writer (typically stderr). It is purely an
// observer: it never influences the computation it reports on.
type Progress struct {
	w        io.Writer
	sims     *Counter // may be nil; rate then reads as 0
	interval time.Duration

	total atomic.Int64
	iter  atomic.Int64
	best  atomic.Uint64 // float64 bits

	start    time.Time
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// NewProgress builds a reporter over a sims counter. A zero interval
// defaults to 2s.
func NewProgress(w io.Writer, sims *Counter, interval time.Duration) *Progress {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	return &Progress{
		w: w, sims: sims, interval: interval,
		stop: make(chan struct{}), done: make(chan struct{}),
	}
}

// SetTotal declares the expected iteration count (enables the ETA).
func (p *Progress) SetTotal(n int) {
	if p != nil {
		p.total.Store(int64(n))
	}
}

// Update records iteration progress; wire it into TunerOptions.OnIteration.
func (p *Progress) Update(iter int, best float64) {
	if p == nil {
		return
	}
	p.iter.Store(int64(iter) + 1)
	p.best.Store(math.Float64bits(best))
}

// Start launches the ticker goroutine.
func (p *Progress) Start() {
	if p == nil {
		return
	}
	p.start = time.Now()
	go func() {
		defer close(p.done)
		tick := time.NewTicker(p.interval)
		defer tick.Stop()
		lastSims := p.sims.Value()
		lastTime := p.start
		for {
			select {
			case <-p.stop:
				return
			case now := <-tick.C:
				cur := p.sims.Value()
				rate := float64(cur-lastSims) / now.Sub(lastTime).Seconds()
				lastSims, lastTime = cur, now
				p.line(cur, rate)
			}
		}
	}()
}

// Stop halts the ticker and prints a final summary line.
func (p *Progress) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() {
		close(p.stop)
		<-p.done
		elapsed := time.Since(p.start)
		cur := p.sims.Value()
		fmt.Fprintf(p.w, "progress: done: %d sims in %v (%.1f sims/s)\n",
			cur, elapsed.Round(time.Millisecond), float64(cur)/elapsed.Seconds())
	})
}

// line prints one status line.
func (p *Progress) line(sims int64, rate float64) {
	fmt.Fprintf(p.w, "progress: %d sims (%.1f/s)", sims, rate)
	iter, total := p.iter.Load(), p.total.Load()
	if iter > 0 {
		fmt.Fprintf(p.w, " iter %d", iter)
		if total > 0 {
			fmt.Fprintf(p.w, "/%d", total)
		}
		fmt.Fprintf(p.w, " best %.4f", math.Float64frombits(p.best.Load()))
		if total > iter {
			eta := time.Duration(float64(time.Since(p.start)) / float64(iter) * float64(total-iter))
			fmt.Fprintf(p.w, " eta %v", eta.Round(time.Second))
		}
	}
	fmt.Fprintln(p.w)
}
