package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Prometheus text exposition, lint-clean: every metric family gets a
// `# HELP` and `# TYPE` header, label values are escaped per the
// exposition format (backslash, quote, newline), and both families and
// the series within a family are emitted in sorted order, so two
// exports of the same state are byte-identical.

// SetHelp registers the HELP text for a metric family (the series name
// with any baked-in label set stripped). Unregistered families export a
// generic description. No-op on a nil registry.
func (r *Registry) SetHelp(family, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.help == nil {
		r.help = map[string]string{}
	}
	r.help[family] = text
}

// helpFor resolves a family's HELP text.
func (r *Registry) helpFor(family string) string {
	if r != nil {
		r.mu.RLock()
		text, ok := r.help[family]
		r.mu.RUnlock()
		if ok {
			return text
		}
	}
	return "autoblox metric " + family
}

// splitSeries separates a series name into its family and baked-in
// label-set body ("" when the name carries no labels).
func splitSeries(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// labelPair is one parsed baked-in label.
type labelPair struct{ key, value string }

// parseLabels splits a label-set body into pairs. Values may be quoted
// (commas and escapes inside quotes are honored) or bare; either way
// they are re-escaped on output, so a caller that baked an unescaped
// value still exports legally.
func parseLabels(body string) []labelPair {
	var out []labelPair
	for i := 0; i < len(body); {
		// key
		eq := -1
		for j := i; j < len(body); j++ {
			if body[j] == '=' {
				eq = j
				break
			}
		}
		if eq < 0 {
			break
		}
		key := strings.TrimSpace(body[i:eq])
		// value: quoted or bare
		j := eq + 1
		var val string
		if j < len(body) && body[j] == '"' {
			j++
			var b strings.Builder
			for j < len(body) && body[j] != '"' {
				if body[j] == '\\' && j+1 < len(body) {
					j++
					switch body[j] {
					case 'n':
						b.WriteByte('\n')
					case 't':
						b.WriteByte('\t')
					default:
						b.WriteByte(body[j])
					}
				} else {
					b.WriteByte(body[j])
				}
				j++
			}
			j++ // closing quote
			val = b.String()
		} else {
			k := j
			for k < len(body) && body[k] != ',' {
				k++
			}
			val = strings.TrimSpace(body[j:k])
			j = k
		}
		out = append(out, labelPair{key: key, value: val})
		for j < len(body) && (body[j] == ',' || body[j] == ' ') {
			j++
		}
		i = j
	}
	return out
}

// escapeLabelValue applies the exposition-format escapes.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// renderLabels formats parsed pairs (plus optional extras) back into a
// `{k="v",...}` body; "" when there are no labels at all.
func renderLabels(pairs []labelPair, extra ...labelPair) string {
	all := append(append([]labelPair{}, pairs...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// promSample is one rendered sample line body (everything after the
// family-derived name prefix).
type promSample struct {
	sortKey string // label body, for deterministic within-family order
	lines   []string
}

// promFamily groups the series of one metric family.
type promFamily struct {
	name    string
	kind    string // "counter", "gauge", "histogram"
	samples []promSample
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format: `# HELP` and `# TYPE` headers per family, counters and gauges
// as plain samples, histograms as cumulative `_bucket{le=...}` series
// (non-empty buckets only) plus `_sum` and `_count`. Families and the
// series within each family are sorted, label values escaped — the
// output is deterministic and promlint-clean.
func (r *Registry) WritePrometheus(w io.Writer) error {
	s := r.Snapshot()
	fams := map[string]*promFamily{}
	add := func(name, kind string, sample promSample) {
		f, ok := fams[name]
		if !ok {
			f = &promFamily{name: name, kind: kind}
			fams[name] = f
		}
		f.samples = append(f.samples, sample)
	}

	for name, v := range s.Counters {
		fam, body := splitSeries(name)
		labels := renderLabels(parseLabels(body))
		add(fam, "counter", promSample{
			sortKey: labels,
			lines:   []string{fmt.Sprintf("%s%s %d", fam, labels, v)},
		})
	}
	for name, v := range s.Gauges {
		fam, body := splitSeries(name)
		labels := renderLabels(parseLabels(body))
		add(fam, "gauge", promSample{
			sortKey: labels,
			lines:   []string{fmt.Sprintf("%s%s %g", fam, labels, v)},
		})
	}
	for name, h := range s.Histograms {
		fam, body := splitSeries(name)
		pairs := parseLabels(body)
		var lines []string
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := renderLabels(pairs, labelPair{key: "le", value: fmt.Sprintf("%d", b.High)})
			lines = append(lines, fmt.Sprintf("%s_bucket%s %d", fam, le, cum))
		}
		inf := renderLabels(pairs, labelPair{key: "le", value: "+Inf"})
		labels := renderLabels(pairs)
		lines = append(lines,
			fmt.Sprintf("%s_bucket%s %d", fam, inf, h.Count),
			fmt.Sprintf("%s_sum%s %d", fam, labels, h.Sum),
			fmt.Sprintf("%s_count%s %d", fam, labels, h.Count),
		)
		add(fam, "histogram", promSample{sortKey: labels, lines: lines})
	}

	names := make([]string, 0, len(fams))
	for name := range fams {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		sort.Slice(f.samples, func(a, b int) bool { return f.samples[a].sortKey < f.samples[b].sortKey })
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, r.helpFor(f.name), f.name, f.kind); err != nil {
			return err
		}
		for _, sm := range f.samples {
			for _, line := range sm.lines {
				if _, err := fmt.Fprintln(w, line); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
