package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full exposition output: HELP/TYPE
// headers per family, sorted families, sorted series within a family,
// escaped label values, and cumulative histogram buckets. Byte-exact —
// any drift in the exporter shows up here.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("sim_runs_total", "fresh simulations executed")
	r.Counter("sim_runs_total").Add(42)
	r.Counter(`worker_jobs_total{worker="b"}`).Add(2)
	r.Counter(`worker_jobs_total{worker="a"}`).Add(1)
	r.Gauge(WithLabel("depth", "path", `a\b`)).Set(1.5)
	h := r.Histogram("lat_ns")
	h.Record(3)
	h.Record(3)
	h.Record(40)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()

	want := `# HELP depth autoblox metric depth
# TYPE depth gauge
depth{path="a\\b"} 1.5
# HELP lat_ns autoblox metric lat_ns
# TYPE lat_ns histogram
lat_ns_bucket{le="3"} 2
lat_ns_bucket{le="40"} 3
lat_ns_bucket{le="+Inf"} 3
lat_ns_sum 46
lat_ns_count 3
# HELP sim_runs_total fresh simulations executed
# TYPE sim_runs_total counter
sim_runs_total 42
# HELP worker_jobs_total autoblox metric worker_jobs_total
# TYPE worker_jobs_total counter
worker_jobs_total{worker="a"} 1
worker_jobs_total{worker="b"} 2
`
	if got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Determinism: a second export of the same state is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != got {
		t.Fatal("two exports of the same registry differ")
	}
}

func TestSplitAndParseLabels(t *testing.T) {
	fam, body := splitSeries(`busy_ns{worker="a,b",k=bare}`)
	if fam != "busy_ns" {
		t.Fatalf("family = %q", fam)
	}
	pairs := parseLabels(body)
	if len(pairs) != 2 || pairs[0] != (labelPair{"worker", "a,b"}) || pairs[1] != (labelPair{"k", "bare"}) {
		t.Fatalf("parsed pairs = %+v", pairs)
	}
	if fam, body := splitSeries("plain"); fam != "plain" || body != "" {
		t.Fatalf("splitSeries(plain) = %q, %q", fam, body)
	}
}
