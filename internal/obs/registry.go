// Package obs is a dependency-free observability layer: a metrics
// registry (counters, gauges, log-linear histograms) with Prometheus-text
// and JSON snapshot exporters, span-based tracing in Chrome trace_event
// JSONL format, and a progress ticker.
//
// Every entry point is nil-safe: a nil *Registry, *Counter, *Gauge,
// *Histogram, *Tracer or *Span turns the corresponding operation into a
// zero-allocation no-op, so instrumented code needs no "is observability
// on?" branches and disabled runs pay (almost) nothing. Nothing in this
// package touches any RNG stream — instrumented and uninstrumented runs
// of deterministic code remain bit-for-bit identical.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64 metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (no-op on nil).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d to the gauge (no-op on nil).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry holds named metrics. Metric handles are created on first use
// and cached, so hot paths should look their handles up once. Names
// should be Prometheus-compatible (snake_case, optionally with a baked-in
// label set such as `worker_busy_ns{worker="3"}`).
//
// A nil *Registry is the disabled state: every lookup returns a nil
// handle whose operations are zero-allocation no-ops.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string // family -> HELP text (see SetHelp)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil on a
// nil registry.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.histograms[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.histograms[name]; !ok {
		h = NewHistogram()
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time JSON-serializable copy of a registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies every metric (empty snapshot on nil).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// WriteJSON writes the registry snapshot as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
