package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRegistryNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("c").Add(3)
	r.Gauge("g").Set(1.5)
	r.Histogram("h").Record(9)
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil registry counter = %d, want 0", got)
	}
	s := r.Snapshot()
	if len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestRegistryHandleIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x") != r.Counter("x") {
		t.Fatal("same name must return the same counter handle")
	}
	if r.Histogram("x") != r.Histogram("x") {
		t.Fatal("same name must return the same histogram handle")
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("hits").Inc()
				r.Gauge("load").Set(float64(i))
				r.Histogram("lat").Record(int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("hits").Value(); got != 16000 {
		t.Fatalf("counter = %d, want 16000", got)
	}
	if got := r.Histogram("lat").Count(); got != 16000 {
		t.Fatalf("histogram count = %d, want 16000", got)
	}
}

func TestGaugeAdd(t *testing.T) {
	g := &Gauge{}
	g.Set(1.25)
	g.Add(0.75)
	if got := g.Value(); got != 2.0 {
		t.Fatalf("gauge = %v, want 2.0", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sim_runs_total").Add(42)
	r.Counter(`worker_busy_ns{worker="3"}`).Add(7)
	r.Gauge("queue_depth").Set(3.5)
	h := r.Histogram("latency_ns")
	h.Record(10)
	h.Record(10)
	h.Record(1000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"sim_runs_total 42\n",
		`worker_busy_ns{worker="3"} 7` + "\n",
		"queue_depth 3.5\n",
		`latency_ns_bucket{le="10"} 2` + "\n",
		`latency_ns_bucket{le="+Inf"} 3` + "\n",
		"latency_ns_sum 1020\n",
		"latency_ns_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be monotone: the 1000-sample bucket
	// line carries the full count.
	if !strings.Contains(out, "} 3\n") {
		t.Errorf("expected a cumulative bucket reaching 3:\n%s", out)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs").Add(5)
	r.Histogram("lat").Record(100)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var s Snapshot
	if err := json.Unmarshal(buf.Bytes(), &s); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if s.Counters["runs"] != 5 {
		t.Fatalf("counters = %+v, want runs=5", s.Counters)
	}
	if h := s.Histograms["lat"]; h.Count != 1 || h.P50 < 100 {
		t.Fatalf("histogram snapshot = %+v", s.Histograms["lat"])
	}
}
