package obs

import (
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer emits spans as Chrome trace_event objects, one JSON object per
// line (JSONL). The output loads directly in Perfetto
// (https://ui.perfetto.dev) and, wrapped in `[...]`, in chrome://tracing.
// Every span becomes a complete ("ph":"X") event with microsecond
// timestamps relative to the tracer's start.
//
// A nil *Tracer (and the nil *Span it hands out) is the disabled state:
// StartSpan and every Span method are zero-allocation no-ops.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	buf   []byte
	start time.Time
	now   func() time.Time // injectable clock (tests)
	err   error
}

// NewTracer wraps a writer. The caller owns the writer's lifecycle
// (buffering, flushing, closing).
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: w, now: time.Now}
	t.start = t.now()
	return t
}

// ID returns a stable 16-hex-digit identifier for this tracer, derived
// from its start time. Coordinators stamp leases with it so worker-side
// trace events can be correlated back to the originating tune ("" on a
// nil tracer).
func (t *Tracer) ID() string {
	if t == nil {
		return ""
	}
	return strconv.FormatUint(uint64(t.start.UnixNano()), 16)
}

// Complete emits a complete ("ph":"X") event with an explicitly supplied
// start time and duration, rather than measuring them live. This is how
// the coordinator replays remote worker spans into its own timeline
// after clock-offset correction: start is expressed in the tracer's own
// clock domain (events before the tracer started clamp to ts=0). Args
// are alternating key/value pairs.
func (t *Tracer) Complete(name string, lane int64, start time.Time, dur time.Duration, args ...string) {
	if t == nil {
		return
	}
	var as []spanArg
	for i := 0; i+1 < len(args); i += 2 {
		as = append(as, spanArg{args[i], args[i+1]})
	}
	ts := start.Sub(t.start)
	if ts < 0 {
		ts = 0
	}
	if dur < 0 {
		dur = 0
	}
	t.emit(name, "X", lane, ts, dur, as)
}

// Err reports the first write error, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Span is one in-progress traced operation. Create with StartSpan, add
// annotations with Arg/ArgInt/ArgFloat/Lane, finish with End. All
// methods are no-ops on a nil span.
type Span struct {
	t     *Tracer
	name  string
	tid   int64
	begin time.Duration
	args  []spanArg
}

type spanArg struct{ key, val string }

// StartSpan opens a span at the current time (nil on a nil tracer).
func (t *Tracer) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, tid: 1, begin: t.now().Sub(t.start)}
}

// Arg attaches a string annotation; returns the span for chaining.
func (s *Span) Arg(key, value string) *Span {
	if s != nil {
		s.args = append(s.args, spanArg{key, value})
	}
	return s
}

// ArgInt attaches an integer annotation.
func (s *Span) ArgInt(key string, v int64) *Span {
	if s != nil {
		s.args = append(s.args, spanArg{key, strconv.FormatInt(v, 10)})
	}
	return s
}

// ArgFloat attaches a float annotation.
func (s *Span) ArgFloat(key string, v float64) *Span {
	if s != nil {
		s.args = append(s.args, spanArg{key, strconv.FormatFloat(v, 'g', -1, 64)})
	}
	return s
}

// Lane assigns the span to a trace lane ("tid" in the Chrome format);
// concurrent spans render stacked per lane, so workers should each use a
// distinct lane.
func (s *Span) Lane(tid int64) *Span {
	if s != nil {
		s.tid = tid
	}
	return s
}

// End closes the span and writes its event line.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	end := t.now().Sub(t.start)
	t.emit(s.name, "X", s.tid, s.begin, end-s.begin, s.args)
}

// Instant writes a zero-duration instant event ("ph":"i").
func (t *Tracer) Instant(name string, args ...string) {
	if t == nil {
		return
	}
	var as []spanArg
	for i := 0; i+1 < len(args); i += 2 {
		as = append(as, spanArg{args[i], args[i+1]})
	}
	t.emit(name, "i", 1, t.now().Sub(t.start), -1, as)
}

// emit serializes one event. Fields are written in a fixed order so the
// output is deterministic given deterministic timestamps.
func (t *Tracer) emit(name, ph string, tid int64, ts, dur time.Duration, args []spanArg) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.buf[:0]
	b = append(b, `{"name":`...)
	b = strconv.AppendQuote(b, name)
	b = append(b, `,"cat":"autoblox","ph":"`...)
	b = append(b, ph...)
	b = append(b, `","ts":`...)
	b = appendMicros(b, ts)
	if dur >= 0 {
		b = append(b, `,"dur":`...)
		b = appendMicros(b, dur)
	}
	b = append(b, `,"pid":1,"tid":`...)
	b = strconv.AppendInt(b, tid, 10)
	if ph == "i" {
		b = append(b, `,"s":"g"`...)
	}
	if len(args) > 0 {
		b = append(b, `,"args":{`...)
		for i, a := range args {
			if i > 0 {
				b = append(b, ',')
			}
			b = strconv.AppendQuote(b, a.key)
			b = append(b, ':')
			b = strconv.AppendQuote(b, a.val)
		}
		b = append(b, '}')
	}
	b = append(b, "}\n"...)
	t.buf = b
	if t.err == nil {
		_, t.err = t.w.Write(b)
	}
}

// appendMicros renders a duration as microseconds with nanosecond
// precision (three decimals).
func appendMicros(b []byte, d time.Duration) []byte {
	us := d.Nanoseconds() / 1000
	frac := d.Nanoseconds() % 1000
	b = strconv.AppendInt(b, us, 10)
	b = append(b, '.')
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}

// globalTracer is the process-wide tracer used by the package-level
// StartSpan, so deeply nested pipeline stages (clusterer, pruner, tuner,
// validator) need no tracer plumbing.
var globalTracer atomic.Pointer[Tracer]

// SetTracer installs (or, with nil, removes) the global tracer.
func SetTracer(t *Tracer) { globalTracer.Store(t) }

// StartSpan opens a span on the global tracer; with no tracer installed
// it returns nil, whose methods all no-op without allocating.
func StartSpan(name string) *Span {
	return globalTracer.Load().StartSpan(name)
}

// Instant emits an instant event on the global tracer, if installed.
func Instant(name string, args ...string) {
	globalTracer.Load().Instant(name, args...)
}

// TraceID returns the global tracer's correlation ID ("" when tracing is
// disabled).
func TraceID() string {
	return globalTracer.Load().ID()
}

// Complete emits an explicit-time complete event on the global tracer,
// if installed.
func Complete(name string, lane int64, start time.Time, dur time.Duration, args ...string) {
	globalTracer.Load().Complete(name, lane, start, dur, args...)
}
