package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a deterministic clock: each call advances 1.5ms.
func fakeClock() func() time.Time {
	base := time.Unix(0, 0)
	n := 0
	return func() time.Time {
		n++
		return base.Add(time.Duration(n) * 1500 * time.Microsecond)
	}
}

// goldenTrace drives a fixed span sequence against a deterministic clock.
func goldenTrace(w *bytes.Buffer) *Tracer {
	tr := NewTracer(w)
	tr.now = fakeClock()
	tr.start = time.Unix(0, 0)
	s1 := tr.StartSpan("tune").Arg("target", "Database")
	s2 := tr.StartSpan("iteration").ArgInt("iter", 3).Lane(2)
	s2.End()
	tr.Instant("gc", "plane", "4")
	s1.End()
	return tr
}

// TestTraceGolden locks the Chrome trace_event JSONL wire format: one
// complete JSON object per line with fixed field order, microsecond
// timestamps, pid/tid lanes and string-valued args.
func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	tr := goldenTrace(&buf)
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.jsonl")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output diverged from %s:\n got:\n%s\nwant:\n%s", golden, buf.String(), want)
	}
}

// TestTraceLinesAreValidJSON: every emitted line must parse standalone
// (the JSONL contract Perfetto relies on) and carry the trace_event
// required fields.
func TestTraceLinesAreValidJSON(t *testing.T) {
	var buf bytes.Buffer
	goldenTrace(&buf)
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 3 {
		t.Fatalf("expected 3 event lines, got %d", len(lines))
	}
	for _, line := range lines {
		var ev struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		}
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line is not valid JSON: %v\n%s", err, line)
		}
		if ev.Name == "" || ev.Ph == "" || ev.Pid != 1 {
			t.Fatalf("missing required trace_event fields: %s", line)
		}
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.StartSpan("x")
	if s != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	s.Arg("k", "v").ArgInt("i", 1).ArgFloat("f", 2.5).Lane(3)
	s.End() // must not panic
	tr.Instant("y")

	SetTracer(nil)
	if got := StartSpan("global"); got != nil {
		t.Fatal("global StartSpan must return nil with no tracer installed")
	}
	Instant("global") // must not panic
}

func TestGlobalTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	SetTracer(tr)
	defer SetTracer(nil)
	StartSpan("op").End()
	if buf.Len() == 0 {
		t.Fatal("global tracer did not record the span")
	}
}

func TestTracerConcurrentSpans(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.StartSpan("work").Lane(int64(g)).End()
			}
		}(g)
	}
	wg.Wait()
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 800 {
		t.Fatalf("expected 800 events, got %d", len(lines))
	}
	for _, line := range lines {
		if !json.Valid(line) {
			t.Fatalf("interleaved write corrupted a line: %s", line)
		}
	}
}
