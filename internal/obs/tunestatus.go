package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// TuneStatus is the single live-progress source for a tuning run: the
// -progress stderr ticker and the /tunez HTTP endpoint both render a
// TuneSnapshot taken from the same TuneStatus, so the two surfaces can
// never disagree. It is a pure observer — atomically updated from the
// tuner's OnIteration/OnCheckpoint hooks, never read by the search.
// All methods are nil-safe no-ops.
type TuneStatus struct {
	mu       sync.Mutex // guards target, ckptPath
	target   string
	ckptPath string

	startNS   atomic.Int64 // unix ns of Begin; 0 = no run yet
	total     atomic.Int64
	iter      atomic.Int64
	best      atomic.Uint64 // float64 bits
	sims      atomic.Pointer[Counter]
	ckptNS    atomic.Int64 // unix ns of the last checkpoint write
	running   atomic.Bool
	frontSize atomic.Int64  // Pareto mode: current non-dominated set size
	frontHV   atomic.Uint64 // Pareto mode: hypervolume float64 bits
}

// NewTuneStatus returns an empty status.
func NewTuneStatus() *TuneStatus { return &TuneStatus{} }

// SetSims wires the counter that tracks fresh measurements (sims spent).
func (s *TuneStatus) SetSims(c *Counter) {
	if s != nil {
		s.sims.Store(c)
	}
}

// Begin marks the start of a tuning run.
func (s *TuneStatus) Begin(target string, totalIters int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.target = target
	s.mu.Unlock()
	s.total.Store(int64(totalIters))
	s.iter.Store(0)
	s.best.Store(math.Float64bits(math.NaN()))
	s.startNS.Store(time.Now().UnixNano())
	s.running.Store(true)
}

// SetTotal declares the expected iteration count (enables the ETA).
func (s *TuneStatus) SetTotal(n int) {
	if s != nil {
		s.total.Store(int64(n))
	}
}

// Update records iteration progress; its signature matches the tuner's
// OnIteration hook, so CLIs wire it directly.
func (s *TuneStatus) Update(iter int, best float64) {
	if s == nil {
		return
	}
	if s.startNS.Load() == 0 {
		s.startNS.Store(time.Now().UnixNano())
		s.running.Store(true)
	}
	s.iter.Store(int64(iter) + 1)
	s.best.Store(math.Float64bits(best))
}

// UpdateFront records the Pareto front's size and normalized
// hypervolume; its signature matches the tuner's OnFront hook. Scalar
// runs never call it, so the snapshot's front fields stay zero/absent.
func (s *TuneStatus) UpdateFront(size int, hypervolume float64) {
	if s == nil {
		return
	}
	s.frontSize.Store(int64(size))
	s.frontHV.Store(math.Float64bits(hypervolume))
}

// MarkCheckpoint records a successful checkpoint write; its signature
// matches the tuner's OnCheckpoint hook.
func (s *TuneStatus) MarkCheckpoint(path string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ckptPath = path
	s.mu.Unlock()
	s.ckptNS.Store(time.Now().UnixNano())
}

// Done marks the run finished.
func (s *TuneStatus) Done() {
	if s != nil {
		s.running.Store(false)
	}
}

// TuneSnapshot is a point-in-time view of a tuning run — the one struct
// behind both the -progress ticker line and /tunez.
type TuneSnapshot struct {
	Target          string  `json:"target,omitempty"`
	Running         bool    `json:"running"`
	Iteration       int     `json:"iteration"`
	TotalIterations int     `json:"total_iterations,omitempty"`
	BestGrade       float64 `json:"best_grade"`
	Sims            int64   `json:"sims"`
	ElapsedNS       int64   `json:"elapsed_ns"`
	CheckpointPath  string  `json:"checkpoint_path,omitempty"`
	// CheckpointAgeNS is time since the last checkpoint write; -1 when
	// no checkpoint was written yet.
	CheckpointAgeNS int64 `json:"checkpoint_age_ns"`
	// FrontSize / Hypervolume describe the current Pareto front
	// (multi-objective runs only; both absent on scalar runs).
	FrontSize   int     `json:"front_size,omitempty"`
	Hypervolume float64 `json:"hypervolume,omitempty"`
}

// Snapshot captures the current state (zero snapshot on nil).
func (s *TuneStatus) Snapshot() TuneSnapshot {
	if s == nil {
		return TuneSnapshot{CheckpointAgeNS: -1}
	}
	s.mu.Lock()
	target, ckptPath := s.target, s.ckptPath
	s.mu.Unlock()
	snap := TuneSnapshot{
		Target:          target,
		Running:         s.running.Load(),
		Iteration:       int(s.iter.Load()),
		TotalIterations: int(s.total.Load()),
		Sims:            s.sims.Load().Value(),
		CheckpointPath:  ckptPath,
		CheckpointAgeNS: -1,
	}
	if b := math.Float64frombits(s.best.Load()); !math.IsNaN(b) {
		snap.BestGrade = b
	}
	if n := s.frontSize.Load(); n > 0 {
		snap.FrontSize = int(n)
		snap.Hypervolume = math.Float64frombits(s.frontHV.Load())
	}
	if start := s.startNS.Load(); start != 0 {
		snap.ElapsedNS = time.Now().UnixNano() - start
	}
	if ck := s.ckptNS.Load(); ck != 0 {
		snap.CheckpointAgeNS = time.Now().UnixNano() - ck
	}
	return snap
}

// Line renders the snapshot as the canonical one-line progress report,
// optionally with a sims/sec rate (NaN suppresses it).
func (s TuneSnapshot) Line(rate float64) string {
	out := fmt.Sprintf("progress: %d sims", s.Sims)
	if !math.IsNaN(rate) {
		out += fmt.Sprintf(" (%.1f/s)", rate)
	}
	if s.Iteration > 0 {
		out += fmt.Sprintf(" iter %d", s.Iteration)
		if s.TotalIterations > 0 {
			out += fmt.Sprintf("/%d", s.TotalIterations)
		}
		out += fmt.Sprintf(" best %.4f", s.BestGrade)
		if s.FrontSize > 0 {
			out += fmt.Sprintf(" front %d hv %.3f", s.FrontSize, s.Hypervolume)
		}
		if s.TotalIterations > s.Iteration && s.ElapsedNS > 0 {
			eta := time.Duration(float64(s.ElapsedNS) / float64(s.Iteration) * float64(s.TotalIterations-s.Iteration))
			out += fmt.Sprintf(" eta %v", eta.Round(time.Second))
		}
	}
	if s.CheckpointAgeNS >= 0 {
		out += fmt.Sprintf(" ckpt %vago", time.Duration(s.CheckpointAgeNS).Round(time.Second))
	}
	return out
}
