package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestTuneStatusSnapshot pins the single-source-of-truth contract: the
// snapshot that /tunez serves and the line the -progress ticker prints
// both derive from the same TuneStatus state.
func TestTuneStatusSnapshot(t *testing.T) {
	st := NewTuneStatus()
	reg := NewRegistry()
	sims := reg.Counter("validator_sim_runs_total")
	st.SetSims(sims)

	if s := st.Snapshot(); s.Running || s.Iteration != 0 || s.CheckpointAgeNS != -1 {
		t.Fatalf("fresh status snapshot: %+v", s)
	}

	st.Begin("Database", 89)
	sims.Add(12)
	st.Update(4, 0.8375) // OnIteration passes 0-based iter
	st.MarkCheckpoint("ck.json")

	s := st.Snapshot()
	if !s.Running || s.Target != "Database" || s.Iteration != 5 || s.TotalIterations != 89 {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.BestGrade != 0.8375 || s.Sims != 12 || s.CheckpointPath != "ck.json" {
		t.Fatalf("snapshot: %+v", s)
	}
	if s.CheckpointAgeNS < 0 || s.ElapsedNS <= 0 {
		t.Fatalf("ages not tracked: %+v", s)
	}

	line := s.Line(3.5)
	for _, want := range []string{"progress: 12 sims", "(3.5/s)", "iter 5/89", "best 0.8375", "eta ", "ckpt "} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
	// NaN rate suppresses the rate clause (the /tunez rendering).
	if l := s.Line(math.NaN()); strings.Contains(l, "/s)") {
		t.Errorf("NaN rate still rendered: %q", l)
	}

	st.Done()
	if st.Snapshot().Running {
		t.Fatal("Done did not clear running")
	}
}

func TestTuneStatusNil(t *testing.T) {
	var st *TuneStatus
	st.Begin("x", 1)
	st.SetSims(nil)
	st.SetTotal(3)
	st.Update(0, 1)
	st.MarkCheckpoint("p")
	st.Done()
	if s := st.Snapshot(); s.Iteration != 0 || s.CheckpointAgeNS != -1 {
		t.Fatalf("nil snapshot: %+v", s)
	}
}

// TestProgressRendersTuneStatus pins the unification: the ticker's output
// comes from TuneSnapshot.Line over the shared status.
func TestProgressRendersTuneStatus(t *testing.T) {
	st := NewTuneStatus()
	reg := NewRegistry()
	sims := reg.Counter("sims")
	st.SetSims(sims)
	var buf strings.Builder
	p := NewProgress(&buf, st, 10*time.Millisecond)
	if p.Status() != st {
		t.Fatal("Progress not backed by the given TuneStatus")
	}
	p.SetTotal(10)
	p.Start()
	sims.Add(5)
	p.Update(1, 0.5)
	time.Sleep(35 * time.Millisecond)
	p.Stop()
	out := buf.String()
	if !strings.Contains(out, "iter 2/10") || !strings.Contains(out, "best 0.5000") {
		t.Fatalf("ticker output missing shared state:\n%s", out)
	}
	if !strings.Contains(out, "progress: done: 5 sims") {
		t.Fatalf("missing final summary:\n%s", out)
	}
	if st.Snapshot().Running {
		t.Fatal("Stop did not mark the status done")
	}
}
