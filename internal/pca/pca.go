// Package pca implements Principal Component Analysis as used by the
// AutoBlox workload-clustering pipeline (§3.1 of the paper): each I/O
// trace window is reduced to a small number of dimensions before k-means
// clustering. The paper reduces each window to 5 dimensions, which
// captures ~70% of the explainable variance of their dataset.
package pca

import (
	"errors"
	"fmt"

	"autoblox/internal/linalg"
)

// PCA holds a fitted principal-component model.
type PCA struct {
	// Components holds one principal axis per row (nComponents × nFeatures).
	Components *linalg.Matrix
	// Mean is the per-feature mean subtracted before projection.
	Mean []float64
	// ExplainedVariance holds the eigenvalue (variance) of each kept
	// component, descending.
	ExplainedVariance []float64
	// ExplainedVarianceRatio is ExplainedVariance normalized by the total
	// variance of the training data.
	ExplainedVarianceRatio []float64
}

// Fit computes the top-k principal components of data (rows are samples,
// columns features). k must be between 1 and the number of features.
func Fit(data *linalg.Matrix, k int) (*PCA, error) {
	n, d := data.Rows, data.Cols
	if n == 0 || d == 0 {
		return nil, errors.New("pca: empty data")
	}
	if k < 1 || k > d {
		return nil, fmt.Errorf("pca: k=%d out of range [1,%d]", k, d)
	}

	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}

	// Covariance matrix (d×d).
	cov := linalg.NewMatrix(d, d)
	for i := 0; i < n; i++ {
		row := data.Row(i)
		for a := 0; a < d; a++ {
			da := row[a] - mean[a]
			if da == 0 {
				continue
			}
			for b := a; b < d; b++ {
				cov.Data[a*d+b] += da * (row[b] - mean[b])
			}
		}
	}
	denom := float64(n - 1)
	if n == 1 {
		denom = 1
	}
	for a := 0; a < d; a++ {
		for b := a; b < d; b++ {
			v := cov.At(a, b) / denom
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}

	vals, vecs, err := linalg.EigenSym(cov)
	if err != nil {
		return nil, fmt.Errorf("pca: eigendecomposition failed: %w", err)
	}

	var total float64
	for _, v := range vals {
		if v > 0 {
			total += v
		}
	}
	comp := linalg.NewMatrix(k, d)
	ev := make([]float64, k)
	ratio := make([]float64, k)
	for c := 0; c < k; c++ {
		for r := 0; r < d; r++ {
			comp.Set(c, r, vecs.At(r, c))
		}
		ev[c] = vals[c]
		if total > 0 {
			ratio[c] = vals[c] / total
		}
	}
	return &PCA{Components: comp, Mean: mean, ExplainedVariance: ev, ExplainedVarianceRatio: ratio}, nil
}

// Transform projects data (rows are samples) onto the fitted components,
// returning an nSamples × nComponents matrix.
func (p *PCA) Transform(data *linalg.Matrix) (*linalg.Matrix, error) {
	if data.Cols != len(p.Mean) {
		return nil, fmt.Errorf("pca: data has %d features, model fitted on %d", data.Cols, len(p.Mean))
	}
	k := p.Components.Rows
	out := linalg.NewMatrix(data.Rows, k)
	centered := make([]float64, data.Cols)
	for i := 0; i < data.Rows; i++ {
		row := data.Row(i)
		for j := range row {
			centered[j] = row[j] - p.Mean[j]
		}
		for c := 0; c < k; c++ {
			out.Set(i, c, linalg.Dot(p.Components.Row(c), centered))
		}
	}
	return out, nil
}

// TransformVec projects a single sample.
func (p *PCA) TransformVec(v []float64) ([]float64, error) {
	m := linalg.FromRows([][]float64{v})
	out, err := p.Transform(m)
	if err != nil {
		return nil, err
	}
	return out.Row(0), nil
}

// FitTransform fits the model and immediately projects the training data.
func FitTransform(data *linalg.Matrix, k int) (*PCA, *linalg.Matrix, error) {
	p, err := Fit(data, k)
	if err != nil {
		return nil, nil, err
	}
	t, err := p.Transform(data)
	if err != nil {
		return nil, nil, err
	}
	return p, t, nil
}
