package pca

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"autoblox/internal/linalg"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit(linalg.NewMatrix(0, 0), 1); err == nil {
		t.Fatal("expected error on empty data")
	}
	data := linalg.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := Fit(data, 0); err == nil {
		t.Fatal("expected error on k=0")
	}
	if _, err := Fit(data, 3); err == nil {
		t.Fatal("expected error on k>features")
	}
}

func TestKnownDirection(t *testing.T) {
	// Points along the line y = 2x with tiny orthogonal noise: first
	// component must align with (1,2)/√5.
	rng := rand.New(rand.NewSource(1))
	rows := make([][]float64, 200)
	for i := range rows {
		x := rng.NormFloat64() * 10
		rows[i] = []float64{x + rng.NormFloat64()*0.01, 2*x + rng.NormFloat64()*0.01}
	}
	p, err := Fit(linalg.FromRows(rows), 2)
	if err != nil {
		t.Fatal(err)
	}
	c0 := p.Components.Row(0)
	// Direction up to sign.
	ratio := c0[1] / c0[0]
	if math.Abs(ratio-2) > 0.05 {
		t.Fatalf("first component %v, want direction (1,2)", c0)
	}
	if p.ExplainedVarianceRatio[0] < 0.99 {
		t.Fatalf("first component should explain ~all variance, got %v", p.ExplainedVarianceRatio)
	}
}

func TestTransformDimensions(t *testing.T) {
	data := linalg.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}})
	p, proj, err := FitTransform(data, 2)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Rows != 3 || proj.Cols != 2 {
		t.Fatalf("projection dims = %dx%d, want 3x2", proj.Rows, proj.Cols)
	}
	v, err := p.TransformVec([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if math.Abs(v[j]-proj.At(0, j)) > 1e-12 {
			t.Fatalf("TransformVec disagrees with Transform: %v vs %v", v, proj.Row(0))
		}
	}
}

func TestTransformFeatureMismatch(t *testing.T) {
	data := linalg.FromRows([][]float64{{1, 2}, {3, 4}, {5, 7}})
	p, err := Fit(data, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Transform(linalg.FromRows([][]float64{{1, 2, 3}})); err == nil {
		t.Fatal("expected feature-count mismatch error")
	}
}

// Property: total variance of a full-rank projection equals the total
// variance of the input (PCA is a rotation).
func TestVariancePreservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 20+rng.Intn(30), 2+rng.Intn(4)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64() * float64(1+j)
			}
		}
		data := linalg.FromRows(rows)
		p, proj, err := FitTransform(data, d)
		if err != nil {
			return false
		}
		origVar := totalVariance(data)
		projVar := totalVariance(proj)
		if math.Abs(origVar-projVar) > 1e-6*math.Max(1, origVar) {
			return false
		}
		// Ratios sum to ~1 for a full decomposition.
		var sum float64
		for _, r := range p.ExplainedVarianceRatio {
			sum += r
		}
		return math.Abs(sum-1) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: explained variance is non-increasing.
func TestExplainedVarianceOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 15+rng.Intn(20), 2+rng.Intn(5)
		rows := make([][]float64, n)
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
		}
		p, err := Fit(linalg.FromRows(rows), d)
		if err != nil {
			return false
		}
		for i := 1; i < d; i++ {
			if p.ExplainedVariance[i] > p.ExplainedVariance[i-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func totalVariance(m *linalg.Matrix) float64 {
	n, d := m.Rows, m.Cols
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		for j, v := range m.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	var tot float64
	for i := 0; i < n; i++ {
		for j, v := range m.Row(i) {
			dv := v - mean[j]
			tot += dv * dv
		}
	}
	return tot / float64(n-1)
}
