// Package plot renders simple, dependency-free SVG charts from the
// experiment data: the Fig. 2 scatter, Fig. 10-style trajectories,
// Fig. 11/12 sweep curves and Fig. 7/8 bars. cmd/plot turns the CSV
// exports of cmd/experiments into figures.
package plot

import (
	"fmt"
	"math"
	"strings"
)

const (
	width   = 680
	height  = 440
	marginL = 70
	marginR = 160 // room for the legend
	marginT = 46
	marginB = 56
)

// palette holds categorical series colors.
var palette = []string{
	"#4363d8", "#e6194b", "#3cb44b", "#f58231", "#911eb4",
	"#46f0f0", "#f032e6", "#808000", "#9a6324", "#000075",
}

// Point is one scatter sample.
type Point struct {
	X, Y   float64
	Series string
}

type canvas struct {
	sb                     strings.Builder
	xMin, xMax, yMin, yMax float64
}

func newCanvas(title, xLabel, yLabel string, xMin, xMax, yMin, yMax float64) *canvas {
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	// Pad the data range 5%.
	xPad, yPad := (xMax-xMin)*0.05, (yMax-yMin)*0.05
	c := &canvas{xMin: xMin - xPad, xMax: xMax + xPad, yMin: yMin - yPad, yMax: yMax + yPad}
	fmt.Fprintf(&c.sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", width, height)
	fmt.Fprintf(&c.sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&c.sb, `<text x="%d" y="24" font-size="15" font-weight="bold">%s</text>`+"\n", marginL, esc(title))
	// Axes.
	fmt.Fprintf(&c.sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, height-marginB, width-marginR, height-marginB)
	fmt.Fprintf(&c.sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n",
		marginL, marginT, marginL, height-marginB)
	fmt.Fprintf(&c.sb, `<text x="%d" y="%d" font-size="12" text-anchor="middle">%s</text>`+"\n",
		(marginL+width-marginR)/2, height-14, esc(xLabel))
	fmt.Fprintf(&c.sb, `<text x="16" y="%d" font-size="12" transform="rotate(-90 16 %d)" text-anchor="middle">%s</text>`+"\n",
		(marginT+height-marginB)/2, (marginT+height-marginB)/2, esc(yLabel))
	c.ticks()
	return c
}

func (c *canvas) px(x float64) float64 {
	return marginL + (x-c.xMin)/(c.xMax-c.xMin)*float64(width-marginL-marginR)
}

func (c *canvas) py(y float64) float64 {
	return float64(height-marginB) - (y-c.yMin)/(c.yMax-c.yMin)*float64(height-marginT-marginB)
}

// ticks draws 5 ticks per axis with labels.
func (c *canvas) ticks() {
	for i := 0; i <= 4; i++ {
		xv := c.xMin + (c.xMax-c.xMin)*float64(i)/4
		yv := c.yMin + (c.yMax-c.yMin)*float64(i)/4
		fmt.Fprintf(&c.sb, `<line x1="%.1f" y1="%d" x2="%.1f" y2="%d" stroke="black"/>`+"\n",
			c.px(xv), height-marginB, c.px(xv), height-marginB+4)
		fmt.Fprintf(&c.sb, `<text x="%.1f" y="%d" font-size="10" text-anchor="middle">%s</text>`+"\n",
			c.px(xv), height-marginB+16, fmtTick(xv))
		fmt.Fprintf(&c.sb, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="black"/>`+"\n",
			marginL-4, c.py(yv), marginL, c.py(yv))
		fmt.Fprintf(&c.sb, `<text x="%d" y="%.1f" font-size="10" text-anchor="end">%s</text>`+"\n",
			marginL-7, c.py(yv)+3, fmtTick(yv))
	}
}

func (c *canvas) legend(names []string) {
	for i, name := range names {
		y := marginT + 10 + i*18
		fmt.Fprintf(&c.sb, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n",
			width-marginR+14, y, palette[i%len(palette)])
		fmt.Fprintf(&c.sb, `<text x="%d" y="%d" font-size="11">%s</text>`+"\n",
			width-marginR+29, y+9, esc(name))
	}
}

func (c *canvas) finish() []byte {
	c.sb.WriteString("</svg>\n")
	return []byte(c.sb.String())
}

// Scatter renders a category-colored scatter plot (the Fig. 2 shape).
func Scatter(title, xLabel, yLabel string, pts []Point) []byte {
	if len(pts) == 0 {
		return emptyChart(title)
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	var names []string
	idx := map[string]int{}
	for _, p := range pts {
		xMin, xMax = math.Min(xMin, p.X), math.Max(xMax, p.X)
		yMin, yMax = math.Min(yMin, p.Y), math.Max(yMax, p.Y)
		if _, ok := idx[p.Series]; !ok {
			idx[p.Series] = len(names)
			names = append(names, p.Series)
		}
	}
	c := newCanvas(title, xLabel, yLabel, xMin, xMax, yMin, yMax)
	for _, p := range pts {
		fmt.Fprintf(&c.sb, `<circle cx="%.1f" cy="%.1f" r="4" fill="%s" fill-opacity="0.8"/>`+"\n",
			c.px(p.X), c.py(p.Y), palette[idx[p.Series]%len(palette)])
	}
	c.legend(names)
	return c.finish()
}

// Series is one named line.
type Series struct {
	Name string
	X, Y []float64
}

// Lines renders multi-series line charts (Figs. 10–12 shapes).
func Lines(title, xLabel, yLabel string, series []Series) []byte {
	if len(series) == 0 {
		return emptyChart(title)
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			xMin, xMax = math.Min(xMin, s.X[i]), math.Max(xMax, s.X[i])
			yMin, yMax = math.Min(yMin, s.Y[i]), math.Max(yMax, s.Y[i])
		}
	}
	c := newCanvas(title, xLabel, yLabel, xMin, xMax, yMin, yMax)
	var names []string
	for si, s := range series {
		names = append(names, s.Name)
		var path strings.Builder
		for i := range s.X {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			fmt.Fprintf(&path, "%s%.1f %.1f ", cmd, c.px(s.X[i]), c.py(s.Y[i]))
		}
		fmt.Fprintf(&c.sb, `<path d="%s" fill="none" stroke="%s" stroke-width="2"/>`+"\n",
			strings.TrimSpace(path.String()), palette[si%len(palette)])
		for i := range s.X {
			fmt.Fprintf(&c.sb, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`+"\n",
				c.px(s.X[i]), c.py(s.Y[i]), palette[si%len(palette)])
		}
	}
	c.legend(names)
	return c.finish()
}

// Bars renders a labeled bar chart (Figs. 7–8 shapes); a second value
// set, when given, draws grouped bars.
func Bars(title, yLabel string, labels []string, groups []Series) []byte {
	if len(labels) == 0 || len(groups) == 0 {
		return emptyChart(title)
	}
	yMax := math.Inf(-1)
	for _, g := range groups {
		for _, v := range g.Y {
			yMax = math.Max(yMax, v)
		}
	}
	c := newCanvas(title, "", yLabel, 0, float64(len(labels)), 0, yMax)
	span := float64(width-marginL-marginR) / float64(len(labels))
	barW := span * 0.8 / float64(len(groups))
	var names []string
	for gi, g := range groups {
		names = append(names, g.Name)
		for i, v := range g.Y {
			if i >= len(labels) {
				break
			}
			x := marginL + span*float64(i) + span*0.1 + barW*float64(gi)
			y := c.py(v)
			fmt.Fprintf(&c.sb, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
				x, y, barW, float64(height-marginB)-y, palette[gi%len(palette)])
		}
	}
	for i, l := range labels {
		x := marginL + span*(float64(i)+0.5)
		fmt.Fprintf(&c.sb, `<text x="%.1f" y="%d" font-size="10" text-anchor="end" transform="rotate(-35 %.1f %d)">%s</text>`+"\n",
			x, height-marginB+14, x, height-marginB+14, esc(trunc(l, 14)))
	}
	if len(groups) > 1 {
		c.legend(names)
	}
	return c.finish()
}

func emptyChart(title string) []byte {
	c := newCanvas(title, "", "", 0, 1, 0, 1)
	fmt.Fprintf(&c.sb, `<text x="%d" y="%d" font-size="13">no data</text>`+"\n", marginL+20, height/2)
	return c.finish()
}

func fmtTick(v float64) string {
	a := math.Abs(v)
	switch {
	case a >= 1000:
		return fmt.Sprintf("%.0f", v)
	case a >= 10:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.2f", v)
	}
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func trunc(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n]
}
