package plot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

// validSVG checks the output parses as XML and contains the expected
// element kinds.
func validSVG(t *testing.T, svg []byte, wantElems ...string) {
	t.Helper()
	dec := xml.NewDecoder(bytes.NewReader(svg))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("invalid XML: %v\n%s", err, svg)
		}
	}
	for _, el := range wantElems {
		if !strings.Contains(string(svg), "<"+el) {
			t.Fatalf("SVG missing <%s>:\n%s", el, svg)
		}
	}
}

func TestScatter(t *testing.T) {
	pts := []Point{
		{X: 1, Y: 2, Series: "A"}, {X: 2, Y: 3, Series: "A"},
		{X: -1, Y: 0, Series: "B"}, {X: 0.5, Y: 1.5, Series: "B"},
	}
	svg := Scatter("title with <chars> & \"quotes\"", "pc1", "pc2", pts)
	validSVG(t, svg, "svg", "circle", "line", "text")
	if n := strings.Count(string(svg), "<circle"); n != 4 {
		t.Fatalf("expected 4 points, found %d circles", n)
	}
	// Legend lists both series.
	for _, s := range []string{"A", "B"} {
		if !strings.Contains(string(svg), ">"+s+"<") {
			t.Fatalf("legend missing %q", s)
		}
	}
	validSVG(t, Scatter("empty", "x", "y", nil), "svg", "text")
}

func TestLines(t *testing.T) {
	series := []Series{
		{Name: "ordered", X: []float64{0, 1, 2}, Y: []float64{0.1, 0.5, 0.6}},
		{Name: "unordered", X: []float64{0, 1, 2}, Y: []float64{0.1, 0.2, 0.3}},
	}
	svg := Lines("fig10", "iteration", "grade", series)
	validSVG(t, svg, "svg", "path", "circle")
	if n := strings.Count(string(svg), "<path"); n != 2 {
		t.Fatalf("expected 2 paths, found %d", n)
	}
	validSVG(t, Lines("empty", "", "", nil), "svg")
}

func TestBars(t *testing.T) {
	svg := Bars("fig7", "joules", []string{"Database", "WebSearchVeryLongName"},
		[]Series{
			{Name: "baseline", Y: []float64{0.5, 0.7}},
			{Name: "learned", Y: []float64{0.3, 0.71}},
		})
	validSVG(t, svg, "svg", "rect", "text")
	if n := strings.Count(string(svg), "<rect"); n < 5 { // 4 bars + background + legend swatches
		t.Fatalf("too few rects: %d", n)
	}
	validSVG(t, Bars("empty", "", nil, nil), "svg")
}

func TestDegenerateRanges(t *testing.T) {
	// All-equal values must not divide by zero.
	svg := Lines("flat", "x", "y", []Series{{Name: "s", X: []float64{1, 1, 1}, Y: []float64{2, 2, 2}}})
	validSVG(t, svg, "svg", "path")
	if strings.Contains(string(svg), "NaN") || strings.Contains(string(svg), "Inf") {
		t.Fatal("degenerate range produced NaN/Inf coordinates")
	}
}
