// Package ridge implements L2-regularized (ridge) linear regression.
//
// AutoBlox (§3.3) uses ridge regression for fine-grained parameter
// pruning: the regression coefficient of each (standardized) SSD
// parameter against storage performance measures the strength of its
// linear correlation; parameters whose |coefficient| falls below a
// threshold (±0.001 by default) are pruned, and the |coefficient|
// ordering becomes the tuning order of §3.4.
package ridge

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"autoblox/internal/linalg"
)

// Model holds a fitted ridge regression.
type Model struct {
	// Coef holds one weight per feature, in the standardized space when
	// Standardize was set.
	Coef []float64
	// Intercept is the bias term.
	Intercept float64
	// Alpha is the L2 regularization strength used for the fit.
	Alpha float64

	standardized bool
	featMean     []float64
	featStd      []float64
}

// Config controls the fit.
type Config struct {
	// Alpha is the L2 penalty (default 1.0).
	Alpha float64
	// Standardize centers/scales features to unit variance before the fit
	// so coefficients are comparable across parameters of very different
	// magnitudes (page counts vs cache bytes). Recommended — AutoBlox
	// compares raw coefficient magnitudes across parameters.
	Standardize bool
}

// Fit solves min_w ||Xw + b - y||² + α||w||² in closed form.
func Fit(x *linalg.Matrix, y []float64, cfg Config) (*Model, error) {
	n, d := x.Rows, x.Cols
	if n == 0 || d == 0 {
		return nil, errors.New("ridge: empty design matrix")
	}
	if len(y) != n {
		return nil, fmt.Errorf("ridge: %d targets for %d samples", len(y), n)
	}
	if cfg.Alpha < 0 {
		return nil, fmt.Errorf("ridge: negative alpha %g", cfg.Alpha)
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 1.0
	}

	m := &Model{Alpha: cfg.Alpha, standardized: cfg.Standardize}
	work := x
	if cfg.Standardize {
		work, m.featMean, m.featStd = standardize(x)
	}

	// Center y; the intercept absorbs the means.
	var yMean float64
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(n)
	yc := make([]float64, n)
	for i, v := range y {
		yc[i] = v - yMean
	}

	// Center features (if not already standardized).
	xMean := make([]float64, d)
	if !cfg.Standardize {
		for i := 0; i < n; i++ {
			for j, v := range work.Row(i) {
				xMean[j] += v
			}
		}
		for j := range xMean {
			xMean[j] /= float64(n)
		}
		centered := linalg.NewMatrix(n, d)
		for i := 0; i < n; i++ {
			for j, v := range work.Row(i) {
				centered.Set(i, j, v-xMean[j])
			}
		}
		work = centered
	}

	// Normal equations: (XᵀX + αI)w = Xᵀy.
	xt := work.T()
	gram := xt.Mul(work).AddDiag(cfg.Alpha)
	rhs := xt.MulVec(yc)
	w, err := linalg.SolveSPD(gram, rhs)
	if err != nil {
		return nil, fmt.Errorf("ridge: normal equations: %w", err)
	}
	m.Coef = w

	m.Intercept = yMean
	if !cfg.Standardize {
		for j := range w {
			m.Intercept -= w[j] * xMean[j]
		}
	}
	return m, nil
}

// Predict evaluates the model on each row of x.
func (m *Model) Predict(x *linalg.Matrix) []float64 {
	out := make([]float64, x.Rows)
	for i := 0; i < x.Rows; i++ {
		out[i] = m.PredictVec(x.Row(i))
	}
	return out
}

// PredictVec evaluates the model on one sample.
func (m *Model) PredictVec(v []float64) float64 {
	s := m.Intercept
	for j, w := range m.Coef {
		xj := v[j]
		if m.standardized {
			xj = (xj - m.featMean[j]) / m.featStd[j]
		}
		s += w * xj
	}
	return s
}

// R2 returns the coefficient of determination on (x, y).
func (m *Model) R2(x *linalg.Matrix, y []float64) float64 {
	var yMean float64
	for _, v := range y {
		yMean += v
	}
	yMean /= float64(len(y))
	var ssRes, ssTot float64
	for i, v := range y {
		p := m.PredictVec(x.Row(i))
		ssRes += (v - p) * (v - p)
		ssTot += (v - yMean) * (v - yMean)
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// RankedFeature pairs a feature index with its coefficient.
type RankedFeature struct {
	Index int
	Coef  float64
}

// RankByMagnitude returns features sorted by descending |coefficient| —
// the tuning order used by AutoBlox's automated search.
func (m *Model) RankByMagnitude() []RankedFeature {
	out := make([]RankedFeature, len(m.Coef))
	for i, c := range m.Coef {
		out[i] = RankedFeature{Index: i, Coef: c}
	}
	sort.SliceStable(out, func(a, b int) bool {
		return math.Abs(out[a].Coef) > math.Abs(out[b].Coef)
	})
	return out
}

// PruneBelow returns the indices of features whose |coefficient| is below
// threshold — the insensitive parameters dropped in fine-grained pruning.
func (m *Model) PruneBelow(threshold float64) []int {
	var pruned []int
	for i, c := range m.Coef {
		if math.Abs(c) < threshold {
			pruned = append(pruned, i)
		}
	}
	return pruned
}

func standardize(x *linalg.Matrix) (*linalg.Matrix, []float64, []float64) {
	n, d := x.Rows, x.Cols
	mean := make([]float64, d)
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	std := make([]float64, d)
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			dv := v - mean[j]
			std[j] += dv * dv
		}
	}
	for j := range std {
		std[j] = math.Sqrt(std[j] / float64(n))
		if std[j] == 0 {
			std[j] = 1 // constant feature: coefficient will be 0 anyway
		}
	}
	out := linalg.NewMatrix(n, d)
	for i := 0; i < n; i++ {
		for j, v := range x.Row(i) {
			out.Set(i, j, (v-mean[j])/std[j])
		}
	}
	return out, mean, std
}
