package ridge

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"autoblox/internal/linalg"
)

func TestFitErrors(t *testing.T) {
	if _, err := Fit(linalg.NewMatrix(0, 0), nil, Config{}); err == nil {
		t.Fatal("expected error on empty data")
	}
	x := linalg.FromRows([][]float64{{1}, {2}})
	if _, err := Fit(x, []float64{1}, Config{}); err == nil {
		t.Fatal("expected error on length mismatch")
	}
	if _, err := Fit(x, []float64{1, 2}, Config{Alpha: -1}); err == nil {
		t.Fatal("expected error on negative alpha")
	}
}

func TestRecoverLinearRelation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 300
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		rows[i] = []float64{a, b}
		y[i] = 3*a - 2*b + 5 + rng.NormFloat64()*0.01
	}
	m, err := Fit(linalg.FromRows(rows), y, Config{Alpha: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-3) > 0.05 || math.Abs(m.Coef[1]+2) > 0.05 {
		t.Fatalf("coef = %v, want [3 -2]", m.Coef)
	}
	if math.Abs(m.Intercept-5) > 0.05 {
		t.Fatalf("intercept = %g, want 5", m.Intercept)
	}
	if r2 := m.R2(linalg.FromRows(rows), y); r2 < 0.999 {
		t.Fatalf("R2 = %g", r2)
	}
}

func TestStandardizedCoefficientsComparable(t *testing.T) {
	// Feature 0 spans [0,1]; feature 1 spans [0,1e9]. Both contribute
	// equally to y, so standardized coefficients must be nearly equal.
	rng := rand.New(rand.NewSource(2))
	n := 400
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		a := rng.Float64()
		b := rng.Float64() * 1e9
		rows[i] = []float64{a, b}
		y[i] = a + b/1e9
	}
	m, err := Fit(linalg.FromRows(rows), y, Config{Alpha: 1e-6, Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[0]-m.Coef[1]) > 0.06*math.Abs(m.Coef[0]) {
		t.Fatalf("standardized coefficients should match: %v", m.Coef)
	}
	// Prediction must still work in the raw space.
	if r2 := m.R2(linalg.FromRows(rows), y); r2 < 0.999 {
		t.Fatalf("R2 = %g", r2)
	}
}

func TestShrinkageMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 100
	rows := make([][]float64, n)
	y := make([]float64, n)
	for i := range rows {
		a := rng.NormFloat64()
		rows[i] = []float64{a}
		y[i] = 2 * a
	}
	x := linalg.FromRows(rows)
	var prev float64 = math.Inf(1)
	for _, alpha := range []float64{0.001, 1, 100, 10000} {
		m, err := Fit(x, y, Config{Alpha: alpha})
		if err != nil {
			t.Fatal(err)
		}
		w := math.Abs(m.Coef[0])
		if w > prev+1e-9 {
			t.Fatalf("|coef| should shrink with alpha: %g -> %g at alpha=%g", prev, w, alpha)
		}
		prev = w
	}
}

func TestRankAndPrune(t *testing.T) {
	m := &Model{Coef: []float64{0.5, -0.0001, 2.0, 0.0005, -1.0}}
	ranked := m.RankByMagnitude()
	wantOrder := []int{2, 4, 0, 3, 1}
	for i, r := range ranked {
		if r.Index != wantOrder[i] {
			t.Fatalf("rank order = %v", ranked)
		}
	}
	pruned := m.PruneBelow(0.001)
	if len(pruned) != 2 || pruned[0] != 1 || pruned[1] != 3 {
		t.Fatalf("pruned = %v, want [1 3]", pruned)
	}
}

func TestConstantFeatureGetsZeroCoef(t *testing.T) {
	rows := [][]float64{{1, 5}, {2, 5}, {3, 5}, {4, 5}}
	y := []float64{2, 4, 6, 8}
	m, err := Fit(linalg.FromRows(rows), y, Config{Alpha: 0.001, Standardize: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Coef[1]) > 1e-9 {
		t.Fatalf("constant feature coefficient should be 0, got %g", m.Coef[1])
	}
}

// Property: predictions are invariant to whether standardization is used
// (up to regularization differences at tiny alpha).
func TestStandardizeInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := 40+rng.Intn(40), 1+rng.Intn(3)
		rows := make([][]float64, n)
		y := make([]float64, n)
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.NormFloat64()
		}
		for i := range rows {
			rows[i] = make([]float64, d)
			for j := range rows[i] {
				rows[i][j] = rng.NormFloat64()
			}
			y[i] = linalg.Dot(w, rows[i]) + rng.NormFloat64()*0.001
		}
		x := linalg.FromRows(rows)
		a, err1 := Fit(x, y, Config{Alpha: 1e-8})
		b, err2 := Fit(x, y, Config{Alpha: 1e-8, Standardize: true})
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if math.Abs(a.PredictVec(x.Row(i))-b.PredictVec(x.Row(i))) > 1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
