package ssd

import "fmt"

// AllocScheme selects the plane-allocation (page striping) order — the
// priority in which the Channel (C), Way/chip (W), Die (D) and Plane (P)
// coordinates advance as consecutive pages are written. §3.2 of the
// paper models the scheme as a 16-way categorical parameter; we expose
// the 16 orderings whose first axis is Channel or Way (striping that
// starts at a die or plane within a single chip serializes the bus and is
// never selected in practice, matching the paper's 16-value list).
type AllocScheme uint8

// The 16 plane-allocation schemes. The name lists the axis priority,
// fastest-varying first.
const (
	AllocCWDP AllocScheme = iota
	AllocCWPD
	AllocCDWP
	AllocCDPW
	AllocCPWD
	AllocCPDW
	AllocWCDP
	AllocWCPD
	AllocWDCP
	AllocWDPC
	AllocWPCD
	AllocWPDC
	AllocCW // degenerate 2-axis orders: remaining axes in natural order
	AllocWC
	AllocCD
	AllocCP

	// NumAllocSchemes is the size of the categorical domain.
	NumAllocSchemes = 16
)

// planeAllocator decides where consecutively striped logical pages land
// and how dense plane indices map back to coordinates. All registered
// schemes share the ordered-stride allocator below; the interface is
// the seam a future non-linear placement policy would implement.
type planeAllocator interface {
	// locate maps a stripe counter to (channel, chip, die, plane).
	locate(counter uint64) (ch, chip, die, plane int)
	// planeIndex flattens coordinates into a dense plane index.
	planeIndex(ch, chip, die, plane int) planeID
	// channelOf recovers the channel from a dense plane index.
	channelOf(p planeID) int
}

// allocSchemeTable is the single source of truth for the plane
// allocation domain: row order defines the wire value, and each row
// carries the axis priority its ordered allocator stripes with
// (0=Channel, 1=Way/chip, 2=Die, 3=Plane; fastest-varying first).
var allocSchemeTable = [NumAllocSchemes]struct {
	name  string
	order [4]int
}{
	AllocCWDP: {"CWDP", [4]int{0, 1, 2, 3}},
	AllocCWPD: {"CWPD", [4]int{0, 1, 3, 2}},
	AllocCDWP: {"CDWP", [4]int{0, 2, 1, 3}},
	AllocCDPW: {"CDPW", [4]int{0, 2, 3, 1}},
	AllocCPWD: {"CPWD", [4]int{0, 3, 1, 2}},
	AllocCPDW: {"CPDW", [4]int{0, 3, 2, 1}},
	AllocWCDP: {"WCDP", [4]int{1, 0, 2, 3}},
	AllocWCPD: {"WCPD", [4]int{1, 0, 3, 2}},
	AllocWDCP: {"WDCP", [4]int{1, 2, 0, 3}},
	AllocWDPC: {"WDPC", [4]int{1, 2, 3, 0}},
	AllocWPCD: {"WPCD", [4]int{1, 3, 0, 2}},
	AllocWPDC: {"WPDC", [4]int{1, 3, 2, 0}},
	AllocCW:   {"CW", [4]int{0, 1, 2, 3}}, // same expansion as CWDP
	AllocWC:   {"WC", [4]int{1, 0, 2, 3}},
	AllocCD:   {"CD", [4]int{0, 2, 1, 3}},
	AllocCP:   {"CP", [4]int{0, 3, 1, 2}},
}

var allocSchemes = func() *policyDomain {
	names := make([]string, len(allocSchemeTable))
	docs := make([]string, len(allocSchemeTable))
	for i, e := range allocSchemeTable {
		names[i] = e.name
	}
	return newPolicyDomain("plane allocation scheme", names, docs)
}()

func (a AllocScheme) valid() bool { return allocSchemes.valid(uint8(a)) }

// String returns the scheme's axis mnemonic.
func (a AllocScheme) String() string {
	if !a.valid() {
		return fmt.Sprintf("AllocScheme(%d)", uint8(a))
	}
	return allocSchemes.name(uint8(a))
}

// ParseAllocScheme resolves a mnemonic like "CWDP".
func ParseAllocScheme(s string) (AllocScheme, error) {
	v, err := allocSchemes.parse(s)
	return AllocScheme(v), err
}

// AllocSchemeNames returns the scheme mnemonics in value order.
func AllocSchemeNames() []string { return allocSchemes.allNames() }

// newPlaneAllocator instantiates the device's configured scheme; the
// caller validates p first.
func newPlaneAllocator(p *DeviceParams) planeAllocator { return newAllocator(p) }

// planeID flattens a (channel, chip, die, plane) coordinate.
type planeID int32

// allocator converts a monotonically increasing write-stripe counter into
// plane coordinates following the scheme's axis priority.
type allocator struct {
	order [4]int
	dims  [4]int // channel, chip, die, plane counts
	// strides in counter space per axis, derived from order.
	strides [4]int
	total   int
}

func newAllocator(p *DeviceParams) *allocator {
	a := &allocator{
		order: allocSchemeTable[p.PlaneAllocScheme].order,
		dims:  [4]int{p.Channels, p.ChipsPerChannel, p.DiesPerChip, p.PlanesPerDie},
	}
	stride := 1
	for _, axis := range a.order {
		a.strides[axis] = stride
		stride *= a.dims[axis]
	}
	a.total = stride
	return a
}

// locate maps a stripe counter to (channel, chip, die, plane).
func (a *allocator) locate(counter uint64) (ch, chip, die, plane int) {
	c := int(counter % uint64(a.total))
	coord := [4]int{
		(c / a.strides[0]) % a.dims[0],
		(c / a.strides[1]) % a.dims[1],
		(c / a.strides[2]) % a.dims[2],
		(c / a.strides[3]) % a.dims[3],
	}
	return coord[0], coord[1], coord[2], coord[3]
}

// planeIndex flattens coordinates into a dense plane index.
func (a *allocator) planeIndex(ch, chip, die, plane int) planeID {
	return planeID(((ch*a.dims[1]+chip)*a.dims[2]+die)*a.dims[3] + plane)
}

// channelOf recovers the channel from a dense plane index.
func (a *allocator) channelOf(p planeID) int {
	return int(p) / (a.dims[1] * a.dims[2] * a.dims[3])
}
