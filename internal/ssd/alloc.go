package ssd

import "fmt"

// AllocScheme selects the plane-allocation (page striping) order — the
// priority in which the Channel (C), Way/chip (W), Die (D) and Plane (P)
// coordinates advance as consecutive pages are written. §3.2 of the
// paper models the scheme as a 16-way categorical parameter; we expose
// the 16 orderings whose first axis is Channel or Way (striping that
// starts at a die or plane within a single chip serializes the bus and is
// never selected in practice, matching the paper's 16-value list).
type AllocScheme uint8

// The 16 plane-allocation schemes. The name lists the axis priority,
// fastest-varying first.
const (
	AllocCWDP AllocScheme = iota
	AllocCWPD
	AllocCDWP
	AllocCDPW
	AllocCPWD
	AllocCPDW
	AllocWCDP
	AllocWCPD
	AllocWDCP
	AllocWDPC
	AllocWPCD
	AllocWPDC
	AllocCW // degenerate 2-axis orders: remaining axes in natural order
	AllocWC
	AllocCD
	AllocCP

	// NumAllocSchemes is the size of the categorical domain.
	NumAllocSchemes = 16
)

var allocNames = [NumAllocSchemes]string{
	"CWDP", "CWPD", "CDWP", "CDPW", "CPWD", "CPDW",
	"WCDP", "WCPD", "WDCP", "WDPC", "WPCD", "WPDC",
	"CW", "WC", "CD", "CP",
}

// axis order per scheme: 0=Channel, 1=Way(chip), 2=Die, 3=Plane;
// fastest-varying axis first.
var allocOrders = [NumAllocSchemes][4]int{
	{0, 1, 2, 3}, // CWDP
	{0, 1, 3, 2}, // CWPD
	{0, 2, 1, 3}, // CDWP
	{0, 2, 3, 1}, // CDPW
	{0, 3, 1, 2}, // CPWD
	{0, 3, 2, 1}, // CPDW
	{1, 0, 2, 3}, // WCDP
	{1, 0, 3, 2}, // WCPD
	{1, 2, 0, 3}, // WDCP
	{1, 2, 3, 0}, // WDPC
	{1, 3, 0, 2}, // WPCD
	{1, 3, 2, 0}, // WPDC
	{0, 1, 2, 3}, // CW (same expansion as CWDP)
	{1, 0, 2, 3}, // WC
	{0, 2, 1, 3}, // CD
	{0, 3, 1, 2}, // CP
}

func (a AllocScheme) valid() bool { return a < NumAllocSchemes }

// String returns the scheme's axis mnemonic.
func (a AllocScheme) String() string {
	if !a.valid() {
		return fmt.Sprintf("AllocScheme(%d)", uint8(a))
	}
	return allocNames[a]
}

// ParseAllocScheme resolves a mnemonic like "CWDP".
func ParseAllocScheme(s string) (AllocScheme, error) {
	for i, n := range allocNames {
		if n == s {
			return AllocScheme(i), nil
		}
	}
	return 0, fmt.Errorf("ssd: unknown allocation scheme %q", s)
}

// planeID flattens a (channel, chip, die, plane) coordinate.
type planeID int32

// allocator converts a monotonically increasing write-stripe counter into
// plane coordinates following the scheme's axis priority.
type allocator struct {
	order [4]int
	dims  [4]int // channel, chip, die, plane counts
	// strides in counter space per axis, derived from order.
	strides [4]int
	total   int
}

func newAllocator(p *DeviceParams) *allocator {
	a := &allocator{
		order: allocOrders[p.PlaneAllocScheme],
		dims:  [4]int{p.Channels, p.ChipsPerChannel, p.DiesPerChip, p.PlanesPerDie},
	}
	stride := 1
	for _, axis := range a.order {
		a.strides[axis] = stride
		stride *= a.dims[axis]
	}
	a.total = stride
	return a
}

// locate maps a stripe counter to (channel, chip, die, plane).
func (a *allocator) locate(counter uint64) (ch, chip, die, plane int) {
	c := int(counter % uint64(a.total))
	coord := [4]int{
		(c / a.strides[0]) % a.dims[0],
		(c / a.strides[1]) % a.dims[1],
		(c / a.strides[2]) % a.dims[2],
		(c / a.strides[3]) % a.dims[3],
	}
	return coord[0], coord[1], coord[2], coord[3]
}

// planeIndex flattens coordinates into a dense plane index.
func (a *allocator) planeIndex(ch, chip, die, plane int) planeID {
	return planeID(((ch*a.dims[1]+chip)*a.dims[2]+die)*a.dims[3] + plane)
}

// channelOf recovers the channel from a dense plane index.
func (a *allocator) channelOf(p planeID) int {
	return int(p) / (a.dims[1] * a.dims[2] * a.dims[3])
}
