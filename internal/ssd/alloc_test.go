package ssd

import (
	"testing"
	"testing/quick"
)

func TestAllocSchemeNames(t *testing.T) {
	for i := 0; i < NumAllocSchemes; i++ {
		s := AllocScheme(i)
		if !s.valid() {
			t.Fatalf("scheme %d invalid", i)
		}
		parsed, err := ParseAllocScheme(s.String())
		if err != nil {
			t.Fatalf("ParseAllocScheme(%s): %v", s, err)
		}
		if parsed != s {
			t.Fatalf("round trip %s -> %s", s, parsed)
		}
	}
	if AllocScheme(200).valid() {
		t.Fatal("200 should be invalid")
	}
	if _, err := ParseAllocScheme("XXXX"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestAllocatorCoversAllPlanes(t *testing.T) {
	p := DefaultParams()
	p.Channels, p.ChipsPerChannel, p.DiesPerChip, p.PlanesPerDie = 4, 3, 2, 2
	for scheme := 0; scheme < NumAllocSchemes; scheme++ {
		p.PlaneAllocScheme = AllocScheme(scheme)
		a := newAllocator(&p)
		total := p.TotalPlanes()
		seen := make(map[planeID]bool)
		for c := uint64(0); c < uint64(total); c++ {
			ch, chip, die, plane := a.locate(c)
			if ch >= p.Channels || chip >= p.ChipsPerChannel || die >= p.DiesPerChip || plane >= p.PlanesPerDie {
				t.Fatalf("scheme %s: coordinate out of range", p.PlaneAllocScheme)
			}
			seen[a.planeIndex(ch, chip, die, plane)] = true
		}
		if len(seen) != total {
			t.Fatalf("scheme %s: one stripe cycle covered %d/%d planes", p.PlaneAllocScheme, len(seen), total)
		}
	}
}

func TestChannelFirstSchemeStripesChannels(t *testing.T) {
	p := DefaultParams()
	p.PlaneAllocScheme = AllocCWDP
	a := newAllocator(&p)
	// Consecutive counters must advance the channel first.
	for c := uint64(0); c < uint64(p.Channels); c++ {
		ch, _, _, _ := a.locate(c)
		if ch != int(c) {
			t.Fatalf("CWDP: counter %d landed on channel %d", c, ch)
		}
	}
}

func TestChannelOf(t *testing.T) {
	f := func(chRaw, chipRaw, dieRaw, plRaw uint8) bool {
		p := DefaultParams()
		p.Channels, p.ChipsPerChannel = 1+int(chRaw%8), 1+int(chipRaw%4)
		p.DiesPerChip, p.PlanesPerDie = 1+int(dieRaw%4), 1+int(plRaw%4)
		a := newAllocator(&p)
		for ch := 0; ch < p.Channels; ch++ {
			for chip := 0; chip < p.ChipsPerChannel; chip++ {
				for die := 0; die < p.DiesPerChip; die++ {
					for pl := 0; pl < p.PlanesPerDie; pl++ {
						id := a.planeIndex(ch, chip, die, pl)
						if a.channelOf(id) != ch {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
