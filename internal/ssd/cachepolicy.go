package ssd

import "container/list"

// CachePolicy selects the data-cache replacement policy.
type CachePolicy uint8

const (
	// CacheLRU evicts the least-recently-used entry.
	CacheLRU CachePolicy = iota
	// CacheFIFO evicts in insertion order.
	CacheFIFO
	// CacheCFLRU prefers evicting clean entries over dirty ones.
	CacheCFLRU
	// CacheCLOCK approximates LRU with a second-chance sweep over a
	// reference bit, the classic low-overhead CLOCK algorithm.
	CacheCLOCK
)

// cacheReplacementPolicy decides how dataCache entries age and which
// one is displaced when the cache is full. The cache owns the list and
// map bookkeeping; the policy only orders it.
type cacheReplacementPolicy interface {
	// touched refreshes el after a hit (read or overwrite).
	touched(d *dataCache, el *list.Element)
	// pickEvict chooses the entry to displace; nil means evict nothing.
	pickEvict(d *dataCache) *list.Element
}

// cachePolicyTable is the single source of truth for the cache
// replacement domain: row order defines the wire value. To add a
// policy, append a row and implement its type below.
var cachePolicyTable = []policyEntry[cacheReplacementPolicy]{
	CacheLRU:   {name: "LRU", doc: "evict least recently used", make: func(*DeviceParams) cacheReplacementPolicy { return lruCache{} }},
	CacheFIFO:  {name: "FIFO", doc: "evict in insertion order", make: func(*DeviceParams) cacheReplacementPolicy { return fifoCache{} }},
	CacheCFLRU: {name: "CFLRU", doc: "LRU preferring clean pages", make: func(*DeviceParams) cacheReplacementPolicy { return cflruCache{} }},
	CacheCLOCK: {name: "CLOCK", doc: "second-chance approximation of LRU", make: func(*DeviceParams) cacheReplacementPolicy { return clockCache{} }},
}

var cachePolicies = domainOf("cache policy", cachePolicyTable)

func (c CachePolicy) valid() bool { return cachePolicies.valid(uint8(c)) }

// String returns the policy's registry name.
func (c CachePolicy) String() string { return cachePolicies.name(uint8(c)) }

// ParseCachePolicy resolves a registry name like "LRU".
func ParseCachePolicy(s string) (CachePolicy, error) {
	v, err := cachePolicies.parse(s)
	return CachePolicy(v), err
}

// CachePolicyNames returns the registered policy names in value order.
func CachePolicyNames() []string { return cachePolicies.allNames() }

// DescribeCachePolicies renders the registry as CLI flag help.
func DescribeCachePolicies() string { return cachePolicies.describe() }

// --- DRAM data cache. ---

// dataCache simulates the controller DRAM data cache at page
// granularity; the replacement policy is pluggable.
type dataCache struct {
	capacity int
	pol      cacheReplacementPolicy
	ll       *list.List
	entries  map[int64]*list.Element
	dirty    int
}

type cacheEntry struct {
	lp    int64
	dirty bool
	ref   bool // CLOCK reference bit
}

// newDataCache sizes the DRAM data cache; scale keeps its coverage of
// the simulated space equal to the real cache's coverage of the device.
func newDataCache(p *DeviceParams, scale int64) *dataCache {
	line := int64(p.CacheLineBytes)
	if line < 512 {
		line = int64(p.PageSizeBytes)
	}
	capEntries := int(p.DataCacheBytes / line / scale)
	if capEntries < 1 {
		capEntries = 1
	}
	return &dataCache{
		capacity: capEntries,
		pol:      cachePolicyTable[p.CachePolicy].make(p),
		ll:       list.New(),
		entries:  make(map[int64]*list.Element),
	}
}

// read reports a hit; on hit the policy refreshes the entry.
func (d *dataCache) read(lp int64) bool {
	el, ok := d.entries[lp]
	if ok {
		d.pol.touched(d, el)
	}
	return ok
}

// insert adds lp (dirty for writes). When a dirty entry is displaced it
// returns that entry's logical page, which must be programmed to flash.
func (d *dataCache) insert(lp int64, dirty bool) (evictedLP int64, dirtyEvict bool) {
	if el, ok := d.entries[lp]; ok {
		e := el.Value.(*cacheEntry)
		if dirty && !e.dirty {
			d.dirty++
		}
		e.dirty = e.dirty || dirty
		d.pol.touched(d, el)
		return 0, false
	}
	if d.ll.Len() >= d.capacity {
		victim := d.pol.pickEvict(d)
		if victim != nil {
			e := victim.Value.(*cacheEntry)
			evictedLP, dirtyEvict = e.lp, e.dirty
			if e.dirty {
				d.dirty--
			}
			delete(d.entries, e.lp)
			// Recycle the victim's element and entry in place of
			// Remove+PushFront so steady-state inserts allocate nothing.
			e.lp, e.dirty, e.ref = lp, dirty, false
			d.ll.MoveToFront(victim)
			d.entries[lp] = victim
			if dirty {
				d.dirty++
			}
			return evictedLP, dirtyEvict
		}
	}
	d.entries[lp] = d.ll.PushFront(&cacheEntry{lp: lp, dirty: dirty})
	if dirty {
		d.dirty++
	}
	return evictedLP, dirtyEvict
}

// dirtyFraction reports the share of cache lines holding unwritten data.
// invalidate drops lp from the cache without writing it back: a TRIM
// declares the data dead, so a dirty copy is discarded, not flushed.
func (d *dataCache) invalidate(lp int64) {
	el, ok := d.entries[lp]
	if !ok {
		return
	}
	if el.Value.(*cacheEntry).dirty {
		d.dirty--
	}
	delete(d.entries, lp)
	d.ll.Remove(el)
}

func (d *dataCache) dirtyFraction() float64 {
	if d.ll.Len() == 0 {
		return 0
	}
	return float64(d.dirty) / float64(d.ll.Len())
}

// flushOldestDirty marks the least-recently-used dirty entry clean,
// returning its logical page; ok is false when no entry is dirty.
func (d *dataCache) flushOldestDirty() (lp int64, ok bool) {
	for el := d.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*cacheEntry)
		if e.dirty {
			e.dirty = false
			d.dirty--
			return e.lp, true
		}
	}
	return 0, false
}

// lruCache implements CacheLRU.
type lruCache struct{}

func (lruCache) touched(d *dataCache, el *list.Element) { d.ll.MoveToFront(el) }
func (lruCache) pickEvict(d *dataCache) *list.Element   { return d.ll.Back() }

// fifoCache implements CacheFIFO: hits never reorder the queue.
type fifoCache struct{}

func (fifoCache) touched(*dataCache, *list.Element)    {}
func (fifoCache) pickEvict(d *dataCache) *list.Element { return d.ll.Back() }

// cflruCache implements CacheCFLRU.
type cflruCache struct{}

func (cflruCache) touched(d *dataCache, el *list.Element) { d.ll.MoveToFront(el) }

func (cflruCache) pickEvict(d *dataCache) *list.Element {
	back := d.ll.Back()
	// CFLRU: scan a window from the back for a clean entry first.
	const window = 16
	el := back
	for i := 0; i < window && el != nil; i++ {
		if !el.Value.(*cacheEntry).dirty {
			return el
		}
		el = el.Prev()
	}
	return back
}

// clockCache implements CacheCLOCK. Hits only set the reference bit;
// the eviction sweep walks from the cold end, granting each referenced
// entry a second chance (bit cleared, rotated to the hot end) until an
// unreferenced entry is found. Bounded by one full lap.
type clockCache struct{}

func (clockCache) touched(d *dataCache, el *list.Element) { el.Value.(*cacheEntry).ref = true }

func (clockCache) pickEvict(d *dataCache) *list.Element {
	for i, n := 0, d.ll.Len(); i < n; i++ {
		back := d.ll.Back()
		e := back.Value.(*cacheEntry)
		if !e.ref {
			return back
		}
		e.ref = false
		d.ll.MoveToFront(back)
	}
	return d.ll.Back()
}
