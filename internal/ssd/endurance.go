package ssd

import "time"

// Endurance model: flash blocks survive a bounded number of
// program/erase cycles; wear leveling's job (and the paper's
// Static/Dynamic wear-leveling parameters) is to spread those cycles
// evenly so the device's lifetime is set by the average rather than the
// hottest block.

// peCycleLimit returns the rated P/E cycles for a flash type.
func peCycleLimit(t FlashType) int64 {
	switch t {
	case SLC:
		return 100_000
	case MLC:
		return 3_000
	default: // TLC
		return 1_000
	}
}

// WearReport summarizes block wear after a run.
type WearReport struct {
	// MaxEraseCount / MeanEraseCount over all simulated blocks (scaled
	// device; relative spread is what matters).
	MaxEraseCount  int64
	MeanEraseCount float64
	// Imbalance is max/mean (1.0 = perfectly level).
	Imbalance float64
	// PECycleLimit is the flash type's rated endurance.
	PECycleLimit int64
	// ProjectedLifetime extrapolates the measured erase rate (erases per
	// simulated second, on the hottest block) to the time until the
	// first block exceeds its P/E rating. Zero when no erases occurred.
	ProjectedLifetime time.Duration
}

// computeWear derives a WearReport from per-block erase counts, the
// flash type's P/E rating and the run's makespan — the pure core of the
// endurance model, shared by the engine and its tests.
func computeWear(counts []int64, limit, makespanNS int64) WearReport {
	r := WearReport{PECycleLimit: limit}
	var total int64
	for _, ec := range counts {
		total += ec
		if ec > r.MaxEraseCount {
			r.MaxEraseCount = ec
		}
	}
	if len(counts) > 0 {
		r.MeanEraseCount = float64(total) / float64(len(counts))
	}
	if r.MeanEraseCount > 0 {
		r.Imbalance = float64(r.MaxEraseCount) / r.MeanEraseCount
	}
	if r.MaxEraseCount > 0 && makespanNS > 0 {
		// Erases per second on the hottest block → seconds to the limit.
		rate := float64(r.MaxEraseCount) / (float64(makespanNS) / 1e9)
		secs := float64(r.PECycleLimit-r.MaxEraseCount) / rate
		if secs > 0 {
			const maxDur = float64(1<<62 - 1)
			ns := secs * 1e9
			if ns > maxDur {
				ns = maxDur
			}
			r.ProjectedLifetime = time.Duration(ns)
		}
	}
	return r
}

// Wear computes the wear report for a finished engine.
func (e *engine) wear(makespanNS int64) WearReport {
	var counts []int64
	for i := range e.ftl.planes {
		fp := &e.ftl.planes[i]
		for b := range fp.blocks {
			counts = append(counts, int64(fp.blocks[b].eraseCount))
		}
	}
	return computeWear(counts, peCycleLimit(e.p.FlashType), makespanNS)
}
