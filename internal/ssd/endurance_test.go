package ssd

import (
	"math"
	"testing"
	"time"
)

func TestComputeWearExtrapolation(t *testing.T) {
	// Hottest block at 100 erases over a 10-second run, limit 3000:
	// rate = 10 erases/s, remaining 2900 cycles → 290 s of lifetime.
	counts := []int64{100, 50, 50}
	r := computeWear(counts, 3000, 10*int64(time.Second))
	if r.MaxEraseCount != 100 {
		t.Fatalf("MaxEraseCount = %d, want 100", r.MaxEraseCount)
	}
	if want := 200.0 / 3.0; math.Abs(r.MeanEraseCount-want) > 1e-9 {
		t.Fatalf("MeanEraseCount = %g, want %g", r.MeanEraseCount, want)
	}
	if want := 290 * time.Second; r.ProjectedLifetime != want {
		t.Fatalf("ProjectedLifetime = %v, want %v", r.ProjectedLifetime, want)
	}
	if r.PECycleLimit != 3000 {
		t.Fatalf("PECycleLimit = %d, want 3000", r.PECycleLimit)
	}
}

func TestComputeWearImbalance(t *testing.T) {
	// max 90 over mean 30 → imbalance 3.0.
	r := computeWear([]int64{90, 0, 0}, 1000, int64(time.Second))
	if want := 3.0; math.Abs(r.Imbalance-want) > 1e-9 {
		t.Fatalf("Imbalance = %g, want %g", r.Imbalance, want)
	}
	// Perfectly level wear → imbalance exactly 1.
	r = computeWear([]int64{7, 7, 7, 7}, 1000, int64(time.Second))
	if r.Imbalance != 1.0 {
		t.Fatalf("level Imbalance = %g, want 1", r.Imbalance)
	}
}

func TestComputeWearZeroErases(t *testing.T) {
	// No erases: no imbalance, no lifetime projection (0 = unbounded).
	r := computeWear([]int64{0, 0, 0}, 3000, 10*int64(time.Second))
	if r.MaxEraseCount != 0 || r.MeanEraseCount != 0 || r.Imbalance != 0 {
		t.Fatalf("zero-erase report not zero: %+v", r)
	}
	if r.ProjectedLifetime != 0 {
		t.Fatalf("ProjectedLifetime = %v, want 0 (unbounded)", r.ProjectedLifetime)
	}
	// Same for an empty block set.
	r = computeWear(nil, 3000, 10*int64(time.Second))
	if r.MaxEraseCount != 0 || r.MeanEraseCount != 0 || r.ProjectedLifetime != 0 {
		t.Fatalf("empty report not zero: %+v", r)
	}
}

func TestComputeWearZeroMakespan(t *testing.T) {
	// Erases happened but the makespan is 0: no rate to extrapolate.
	r := computeWear([]int64{10, 5}, 3000, 0)
	if r.MaxEraseCount != 10 {
		t.Fatalf("MaxEraseCount = %d, want 10", r.MaxEraseCount)
	}
	if r.ProjectedLifetime != 0 {
		t.Fatalf("ProjectedLifetime = %v, want 0", r.ProjectedLifetime)
	}
}

func TestComputeWearPastLimit(t *testing.T) {
	// Hottest block already past its rating: no positive lifetime left.
	r := computeWear([]int64{3500}, 3000, 10*int64(time.Second))
	if r.ProjectedLifetime != 0 {
		t.Fatalf("ProjectedLifetime = %v, want 0", r.ProjectedLifetime)
	}
}

func TestComputeWearLifetimeCap(t *testing.T) {
	// A near-zero erase rate extrapolates to an astronomically long
	// lifetime; the report must cap instead of overflowing Duration.
	r := computeWear([]int64{1}, 100_000, int64(time.Second))
	if r.ProjectedLifetime <= 0 {
		t.Fatalf("ProjectedLifetime = %v, want positive", r.ProjectedLifetime)
	}
	r = computeWear([]int64{1}, math.MaxInt64/2, int64(time.Second))
	if r.ProjectedLifetime <= 0 {
		t.Fatalf("capped ProjectedLifetime = %v, want positive", r.ProjectedLifetime)
	}
}
