package ssd

import "errors"

// Fault injection. Real flash fails: programs abort, erases wear out,
// reads need retry ladders, whole dies go dark. The model here follows
// the device-level fault handling every production FTL implements —
// bad-block retirement with remapping, stepped read-retry with an ECC
// soft-decode fallback, and die failure with plane remapping — driven by
// one seeded counter-based RNG so fault-injected runs are bit-for-bit
// reproducible and independent of host-side parallelism. Faults degrade
// the device gracefully: retired blocks shrink the effective
// over-provisioning until, in the limit, a plane runs out of erase
// units and the run ends with ErrOutOfSpace instead of a panic.

// ErrOutOfSpace is the sticky fatal error raised when a plane has no
// free block left even after emergency garbage collection — either the
// configured over-provisioning is too small, or fault-driven block
// retirement consumed it. It is surfaced through the Run/RunSource
// error return, never as a panic.
var ErrOutOfSpace = errors.New("ssd: plane out of free blocks after GC (over-provisioning exhausted)")

// FaultProfile configures seeded fault injection. The zero value (and
// any profile with Rate == 0 and DieFailures == 0) disables injection
// entirely; disabled runs are bit-identical to builds without the
// fault model.
type FaultProfile struct {
	// Rate is the per-operation failure probability applied to page
	// programs, block erases and the first read-retry trigger.
	// 0 disables fault injection; values above 0.5 are rejected.
	Rate float64
	// Seed derives the private fault RNG stream. Two runs with equal
	// params, trace and Seed inject identical faults.
	Seed int64
	// DieFailures fails this many whole dies at initialization; their
	// planes are remapped onto the surviving dies.
	DieFailures int
}

// Enabled reports whether the profile injects any faults.
func (f FaultProfile) Enabled() bool { return f.Rate > 0 || f.DieFailures > 0 }

// faultRNG is a splitmix64 counter RNG: tiny, seedable, and sequence-
// stable (each draw advances the state by a fixed increment), which is
// exactly what deterministic replay across checkpoint/resume and
// parallel validation needs.
type faultRNG struct{ state uint64 }

func newFaultRNG(seed int64) *faultRNG {
	return &faultRNG{state: uint64(seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
}

func (r *faultRNG) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// float64 returns a uniform draw in [0, 1).
func (r *faultRNG) float64() float64 { return float64(r.next()>>11) / (1 << 53) }

// retireFailLimit is the cumulative program-failure budget of a block:
// once exceeded, the block is retired at its next erase (bad-block
// management's grown-defect path).
const retireFailLimit = 3

// eccSoftDecodeMult is the latency multiplier of an ECC soft-decode
// (LDPC soft-decision) pass relative to the hard-decode ECCLatency,
// charged when the read-retry ladder is exhausted.
const eccSoftDecodeMult = 8

// faultState is the per-FTL fault-injection state: the seeded RNG, the
// die-failure remap table, and the counters exported through Result
// and the obs registry.
type faultState struct {
	rate float64
	rng  *faultRNG

	// deadPlane marks planes of failed dies; redirect maps every plane
	// to itself (alive) or to the next surviving plane (dead). Nil when
	// no die failed.
	deadPlane []bool
	redirect  []planeID

	// Counters. The op counters reset with the other FTL counters at
	// the warm-up boundary; retiredBlocks/factoryBadBlocks are state
	// gauges and persist.
	programFailures  int64
	eraseFailures    int64
	readRetries      int64
	eccSoftDecodes   int64
	retiredBlocks    int64
	factoryBadBlocks int64
}

func newFaultState(p *DeviceParams) *faultState {
	return &faultState{rate: p.Faults.Rate, rng: newFaultRNG(p.Faults.Seed)}
}

// programFails draws one program-failure event.
func (s *faultState) programFails() bool {
	return s.rate > 0 && s.rng.float64() < s.rate
}

// retireAtErase decides, at erase time, whether the block is retired:
// either its grown-defect budget is exhausted or the erase itself
// fails.
func (s *faultState) retireAtErase(b *flashBlock) bool {
	if b.failCount > retireFailLimit {
		return true
	}
	if s.rate > 0 && s.rng.float64() < s.rate {
		s.eraseFailures++
		return true
	}
	return false
}

// readRetrySteps draws the number of read-retry steps a page read
// needs: usually 0, otherwise a geometric ladder capped at limit.
// Returning limit means the ladder was exhausted and the controller
// falls back to ECC soft-decode.
func (s *faultState) readRetrySteps(limit int) int {
	if s.rate <= 0 || s.rng.float64() >= s.rate {
		return 0
	}
	if limit < 1 {
		limit = 1
	}
	steps := 1
	for steps < limit && s.rng.float64() < 0.5 {
		steps++
	}
	return steps
}

// resetOpCounters clears the measurement-phase fault counters at the
// warm-up boundary; retirement gauges persist (they are device state,
// not traffic).
func (s *faultState) resetOpCounters() {
	s.programFailures, s.eraseFailures, s.readRetries, s.eccSoftDecodes = 0, 0, 0, 0
}

// redirectPlane remaps pl onto a surviving plane when its die failed.
func (f *ftl) redirectPlane(pl planeID) planeID {
	if f.faults != nil && f.faults.redirect != nil {
		return f.faults.redirect[pl]
	}
	return pl
}
