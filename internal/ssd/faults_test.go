package ssd

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"autoblox/internal/workload"
)

// TestZeroFaultRateMatchesGolden pins the central gating guarantee: a
// FaultProfile with Rate == 0 and no die failures — even with a nonzero
// Seed — leaves the simulator bit-identical to the pre-fault-model
// golden results (the fault state is never even allocated).
func TestZeroFaultRateMatchesGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full simulations")
	}
	fiu := workload.MustGenerate(workload.FIU, workload.Options{Requests: 12000, Seed: 11})
	p := smallDevice()
	p.Faults = FaultProfile{Rate: 0, Seed: 12345, DieFailures: 0}
	if p.Faults.Enabled() {
		t.Fatal("Rate=0 profile must be disabled")
	}
	got := runTrace(t, p, fiu)
	want := goldenRows[0] // small/gc=0/cache=0/fiu
	if int64(got.AvgLatency) != want.avgLatencyNs {
		t.Errorf("AvgLatency %d ns, want golden %d ns", int64(got.AvgLatency), want.avgLatencyNs)
	}
	if bits := math.Float64bits(got.EnergyJoules); bits != want.energyBits {
		t.Errorf("EnergyJoules 0x%x, want golden 0x%x", bits, want.energyBits)
	}
	if bits := math.Float64bits(got.ThroughputBps); bits != want.throughputBits {
		t.Errorf("ThroughputBps 0x%x, want golden 0x%x", bits, want.throughputBits)
	}
	if got.Erases != want.erases || got.UserPrograms != want.userPrograms || got.GCPrograms != want.gcPrograms {
		t.Errorf("op counters (%d,%d,%d) diverged from golden (%d,%d,%d)",
			got.Erases, got.UserPrograms, got.GCPrograms, want.erases, want.userPrograms, want.gcPrograms)
	}
	if got.ProgramFailures != 0 || got.ReadRetries != 0 || got.RetiredBlocks != 0 || got.FactoryBadBlocks != 0 {
		t.Errorf("disabled profile produced fault counters: %+v", got)
	}

	db := workload.MustGenerate(workload.Database, workload.Options{Requests: 3000, Seed: 11})
	pd := DefaultParams()
	pd.Faults = FaultProfile{Seed: 99}
	gotDB := runTrace(t, pd, db)
	wantDB := goldenRows[6] // default/alloc=CWDP/db
	if int64(gotDB.AvgLatency) != wantDB.avgLatencyNs {
		t.Errorf("db AvgLatency %d ns, want golden %d ns", int64(gotDB.AvgLatency), wantDB.avgLatencyNs)
	}
	if bits := math.Float64bits(gotDB.EnergyJoules); bits != wantDB.energyBits {
		t.Errorf("db EnergyJoules 0x%x, want golden 0x%x", bits, wantDB.energyBits)
	}
}

// faultTolerantDevice is smallDevice with enough over-provisioning
// headroom that moderate fault rates degrade the device without
// consuming it: retirement under pressure is a correct ErrOutOfSpace,
// but these tests want runs that survive to a Result.
func faultTolerantDevice() DeviceParams {
	p := smallDevice()
	p.OverprovisionRatio = 0.25
	p.InitialOccupancyFrac = 0.5
	return p
}

// TestFaultInjectionDeterministic verifies the whole faulted Result —
// every counter, quantile and float — is reproducible run-to-run for a
// fixed (params, seed, trace) triple.
func TestFaultInjectionDeterministic(t *testing.T) {
	tr := workload.MustGenerate(workload.FIU, workload.Options{Requests: 6000, Seed: 11})
	p := faultTolerantDevice()
	p.Faults = FaultProfile{Rate: 0.01, Seed: 42}
	a := runTrace(t, p, tr)
	b := runTrace(t, p, tr)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("faulted runs diverged:\n a=%+v\n b=%+v", a, b)
	}
	if a.ProgramFailures == 0 {
		t.Error("expected program failures at rate 0.01 under write pressure")
	}
	if a.ReadRetries == 0 {
		t.Error("expected read retries at rate 0.01")
	}
	if a.FactoryBadBlocks == 0 {
		t.Error("expected factory bad blocks (BadBlockPct=0.5 with faults enabled)")
	}
}

// TestFaultSeedChangesInjection: different seeds must produce different
// fault streams (otherwise the seed is not actually wired through).
func TestFaultSeedChangesInjection(t *testing.T) {
	tr := workload.MustGenerate(workload.FIU, workload.Options{Requests: 6000, Seed: 11})
	p := faultTolerantDevice()
	p.Faults = FaultProfile{Rate: 0.01, Seed: 1}
	a := runTrace(t, p, tr)
	p.Faults.Seed = 2
	b := runTrace(t, p, tr)
	if reflect.DeepEqual(a, b) {
		t.Fatal("seed 1 and seed 2 produced identical faulted results")
	}
}

// TestReadRetryPenalty: on a read-heavy workload, injected read retries
// and ECC soft decodes can only lengthen the critical path.
func TestReadRetryPenalty(t *testing.T) {
	tr := workload.MustGenerate(workload.WebSearch, workload.Options{Requests: 5000, Seed: 7})
	p := faultTolerantDevice()
	clean := runTrace(t, p, tr)
	p.Faults = FaultProfile{Rate: 0.05, Seed: 5}
	faulted := runTrace(t, p, tr)
	if faulted.ReadRetries == 0 {
		t.Fatal("expected read retries at rate 0.05 on a read-heavy trace")
	}
	if faulted.AvgLatency < clean.AvgLatency {
		t.Fatalf("read retries shortened latency: %v < %v", faulted.AvgLatency, clean.AvgLatency)
	}
}

// TestDieFailureRemap: failing a die must redirect its traffic to the
// surviving planes and still complete the run; failing every die is a
// validation error.
func TestDieFailureRemap(t *testing.T) {
	tr := workload.MustGenerate(workload.Database, workload.Options{Requests: 3000, Seed: 11})
	p := faultTolerantDevice()
	p.DiesPerChip = 2
	p.InitialOccupancyFrac = 0.3
	p.Faults = FaultProfile{Seed: 9, DieFailures: 1}
	res := runTrace(t, p, tr)
	if res.Requests == 0 {
		t.Fatal("die-failure run produced no requests")
	}

	f, err := newFTL(&p)
	if err != nil {
		t.Fatal(err)
	}
	deadPlanes := 0
	for pl, dead := range f.faults.deadPlane {
		if !dead {
			continue
		}
		deadPlanes++
		if f.faults.redirect[pl] == planeID(pl) {
			t.Fatalf("dead plane %d redirects to itself", pl)
		}
		if f.faults.deadPlane[f.faults.redirect[pl]] {
			t.Fatalf("dead plane %d redirects to another dead plane", pl)
		}
	}
	if want := p.PlanesPerDie * p.Faults.DieFailures; deadPlanes != want {
		t.Fatalf("%d dead planes, want %d", deadPlanes, want)
	}

	p.Faults.DieFailures = p.Channels * p.ChipsPerChannel * p.DiesPerChip
	if err := p.Validate(); err == nil {
		t.Fatal("failing every die must not validate")
	}
}

// TestOutOfSpaceIsTypedError drives the FTL under an extreme erase-
// failure rate until fault-driven retirement consumes the over-
// provisioning: the result must be the sticky ErrOutOfSpace, never a
// panic.
func TestOutOfSpaceIsTypedError(t *testing.T) {
	p := smallDevice()
	p.Faults = FaultProfile{Rate: 0.4, Seed: 1}
	f, err := newFTL(&p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5_000_000 && f.fatal == nil; i++ {
		f.placePage(int64(i)%f.logicalPages, 0)
	}
	if !errors.Is(f.fatal, ErrOutOfSpace) {
		t.Fatalf("fatal = %v, want ErrOutOfSpace", f.fatal)
	}
	if f.faults.retiredBlocks == 0 {
		t.Fatal("out-of-space without retired blocks")
	}
	// The wedged FTL keeps answering placePage without panicking.
	f.placePage(0, 0)
}
