package ssd

import (
	"container/list"
	"fmt"
)

// targetSimPages caps the number of physical flash pages the simulator
// materializes. Real devices hold tens of millions of pages; simulating
// each would dominate memory and time inside the tuning loop, so — like
// other fast SSD models — we simulate a proportionally scaled device:
// the parallelism (channels × chips × dies × planes), page size, over-
// provisioning ratio and occupancy fraction are preserved exactly, while
// blocks-per-plane (and, in extreme layouts, pages-per-block) are scaled
// down. GC pressure depends on the *ratios*, which scaling preserves.
const targetSimPages = 1 << 20

// unmapped marks a logical page with no physical location.
const unmapped = int64(-1)

// ppa packs a physical page address: plane(16) | block(24) | slot(24).
func packPPA(plane planeID, block, slot int32) int64 {
	return int64(plane)<<48 | int64(block)<<24 | int64(slot)
}

func unpackPPA(v int64) (plane planeID, block, slot int32) {
	return planeID(uint64(v) >> 48), int32(uint64(v)>>24) & 0xFFFFFF, int32(v) & 0xFFFFFF
}

// flashBlock is one erase unit.
type flashBlock struct {
	pages      []int32 // logical page per slot; -1 = free-or-stale
	valid      int32
	writePtr   int32
	eraseCount int32
	allocSeq   int64 // allocation order, for FIFO GC
	lane       int32 // write lane the block was activated on
	failCount  int32 // cumulative program failures (fault injection)
	retired    bool  // bad block: factory-marked or grown defect
}

func (b *flashBlock) full(pagesPerBlock int32) bool { return b.writePtr >= pagesPerBlock }

// flashPlane is the unit of operation parallelism in the model.
type flashPlane struct {
	blocks []flashBlock
	// actives holds one open (being-written) block per write lane; -1
	// marks a lane that has not been activated yet. Conventional devices
	// have exactly one lane, so actives[0] plays the role the old scalar
	// active field did; multi-stream and ZNS devices fan host writes out
	// over several lanes (see hostifc.go).
	actives   []int32
	freeList  []int32
	nextFree  int64 // ns timestamp when the plane is idle again
	allocSeq  int64
	minErase  int32
	maxErase  int32
	gcRuns    int
	wlSwaps   int
	moveCount int64
}

// isActive reports whether block b is an open write block on any lane.
func (fp *flashPlane) isActive(b int32) bool {
	for _, a := range fp.actives {
		if a == b {
			return true
		}
	}
	return false
}

// ftl holds the page-mapped flash translation layer state. The three
// policy seams — plane allocation, GC victim selection and (in
// dataCache) cache replacement — are interfaces instantiated from the
// policy registry, so the FTL mechanics stay policy-agnostic.
type ftl struct {
	p      *DeviceParams
	alloc  planeAllocator
	gcPick gcVictimPolicy

	// Scaled geometry.
	blocksPerPlane int32
	pagesPerBlock  int32
	logicalPages   int64
	sectorsPerPage int64
	// capScale is realPhysicalPages / simulatedPhysicalPages. LBAs are
	// divided by it (preserving the workload's span *fraction* and
	// locality structure on the scaled device) and the DRAM cache / CMT
	// entry counts are divided by it (preserving coverage ratios).
	capScale int64

	planes  []flashPlane
	mapping []int64 // logical page -> packed PPA
	stripe  uint64  // write-striping counter

	gcMinFree int32

	// Host-interface model state (hostifc.go). lanes is the per-plane
	// write-lane count (1 for conventional); streamOf records the last
	// host stream tag per logical page (multi-stream only); zns holds the
	// zone write pointers (ZNS only).
	lanes        int
	streamOf     []uint8
	zns          *znsState
	trimmedPages int64 // mapped pages invalidated by host TRIM

	// faults is the seeded fault-injection state (faults.go); nil when
	// the device's FaultProfile is disabled, so fault-free runs take no
	// extra branches with observable effects.
	faults *faultState
	// fatal is the sticky unrecoverable device error (ErrOutOfSpace);
	// once set the engine stops issuing work and surfaces it through
	// the Run/RunSource error return.
	fatal error

	// Counters for metrics/energy.
	userReads, userPrograms     int64
	gcReads, gcPrograms         int64
	erases                      int64
	mappingReads, mappingWrites int64
}

// newFTL builds the scaled FTL for params p.
func newFTL(p *DeviceParams) (*ftl, error) {
	planes := p.TotalPlanes()
	bpp, ppb := scaleGeometry(p, planes)

	f := &ftl{
		p:              p,
		alloc:          newPlaneAllocator(p),
		gcPick:         newGCVictimPolicy(p),
		blocksPerPlane: bpp,
		pagesPerBlock:  ppb,
		sectorsPerPage: int64(p.PageSizeBytes / 512),
	}
	totalPhys := int64(planes) * int64(bpp) * int64(ppb)
	realPhys := int64(planes) * int64(p.BlocksPerPlane) * int64(p.PagesPerBlock)
	f.capScale = realPhys / totalPhys
	if f.capScale < 1 {
		f.capScale = 1
	}
	f.logicalPages = int64(float64(totalPhys) * (1 - p.OverprovisionRatio))
	if f.logicalPages < 1 {
		return nil, fmt.Errorf("ssd: over-provisioning leaves no logical space")
	}
	f.gcMinFree = int32(float64(bpp) * p.GCThresholdPct / 100)
	if f.gcMinFree < 1 {
		f.gcMinFree = 1
	}
	if f.gcMinFree >= bpp-1 {
		f.gcMinFree = bpp - 2
	}

	f.lanes = laneCount(p, bpp)
	switch p.HostIfcModel {
	case IfcMultiStream:
		f.streamOf = make([]uint8, f.logicalPages)
	case IfcZNS:
		f.zns = newZNSState(p, f.logicalPages, f.capScale, ppb, f.lanes)
	}

	f.planes = make([]flashPlane, planes)
	for i := range f.planes {
		pl := &f.planes[i]
		pl.blocks = make([]flashBlock, bpp)
		pl.freeList = make([]int32, 0, bpp)
		for b := int32(bpp - 1); b >= 1; b-- {
			pl.freeList = append(pl.freeList, b)
		}
		// Lane 0 opens block 0 immediately (matching the historical single
		// active block); further lanes activate lazily on first use so
		// unused lanes never consume free blocks.
		pl.actives = make([]int32, f.lanes)
		for l := 1; l < f.lanes; l++ {
			pl.actives[l] = -1
		}
		pl.blocks[0].pages = make([]int32, ppb)
		fillStale(pl.blocks[0].pages)
	}
	f.mapping = make([]int64, f.logicalPages)
	for i := range f.mapping {
		f.mapping[i] = unmapped
	}
	if p.Faults.Enabled() {
		if err := f.initFaults(p, planes); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// initFaults seeds the fault RNG and applies the initialization-time
// fault population: failed dies (with plane remapping onto survivors)
// and factory-marked bad blocks (drawn from BadBlockPct, retired off
// the free lists). Draw order is fixed — dies first, then blocks in
// plane/block order — so a given (params, seed) pair always yields the
// same defect map.
func (f *ftl) initFaults(p *DeviceParams, planes int) error {
	fs := newFaultState(p)
	f.faults = fs

	if n := p.Faults.DieFailures; n > 0 {
		totalDies := p.Channels * p.ChipsPerChannel * p.DiesPerChip
		if n >= totalDies {
			return fmt.Errorf("ssd: fault profile fails all %d dies", totalDies)
		}
		dead := make([]bool, totalDies)
		for k := 0; k < n; k++ {
			d := int(fs.rng.next() % uint64(totalDies))
			for dead[d] {
				d = (d + 1) % totalDies
			}
			dead[d] = true
		}
		// planeIndex iterates planes fastest, so plane pl belongs to die
		// pl / PlanesPerDie.
		fs.deadPlane = make([]bool, planes)
		for pl := 0; pl < planes; pl++ {
			fs.deadPlane[pl] = dead[pl/p.PlanesPerDie]
		}
		fs.redirect = make([]planeID, planes)
		for pl := range fs.redirect {
			t := pl
			for fs.deadPlane[t] {
				t = (t + 1) % planes
			}
			fs.redirect[pl] = planeID(t)
		}
	}

	// Factory bad blocks: each non-active block is marked bad with
	// probability BadBlockPct/100, capped so every plane keeps enough
	// free blocks to operate (the cap only binds at absurd rates).
	if pct := p.BadBlockPct / 100; pct > 0 {
		for pi := range f.planes {
			fp := &f.planes[pi]
			maxBad := len(fp.freeList) - int(f.gcMinFree) - 2
			bad := 0
			for _, b := range fp.freeList {
				if bad >= maxBad {
					break
				}
				if fs.rng.float64() < pct {
					fp.blocks[b].retired = true
					fs.factoryBadBlocks++
					bad++
				}
			}
			if bad > 0 {
				live := fp.freeList[:0]
				for _, b := range fp.freeList {
					if !fp.blocks[b].retired {
						live = append(live, b)
					}
				}
				fp.freeList = live
			}
		}
	}
	return nil
}

func fillStale(s []int32) {
	for i := range s {
		s[i] = -1
	}
}

// scaleGeometry picks the simulated blocks-per-plane / pages-per-block.
func scaleGeometry(p *DeviceParams, planes int) (bpp, ppb int32) {
	bpp, ppb = int32(p.BlocksPerPlane), int32(p.PagesPerBlock)
	total := func() int64 { return int64(planes) * int64(bpp) * int64(ppb) }
	for total() > targetSimPages && bpp > 8 {
		bpp /= 2
	}
	for total() > 4*targetSimPages && ppb > 32 {
		ppb /= 2
	}
	return bpp, ppb
}

// logicalPage folds an LBA (in sectors) onto the simulated logical
// space: the real logical page index is divided by capScale (a linear
// shrink that keeps the workload's footprint the same *fraction* of the
// device and preserves hot/cold structure), then wrapped defensively.
func (f *ftl) logicalPage(lba uint64) int64 {
	return (int64(lba/uint64(f.sectorsPerPage)) / f.capScale) % f.logicalPages
}

// pageSpan returns the first folded logical page of a request and how
// many consecutive logical pages it touches (callers index page k as
// (firstLP + k) % logicalPages). The count is computed in unfolded page
// space, so a request whose folded range wraps past the end of the
// logical space is modeled page for page instead of collapsing to a
// single page; it is clamped to logicalPages because the modular space
// cannot hold more distinct pages than that.
func (f *ftl) pageSpan(lba uint64, sectors uint32) (firstLP, nPages int64) {
	end := lba + uint64(sectors)
	if sectors == 0 {
		end = lba + 1 // defensive: zero-length request touches its page
	}
	first := int64(lba/uint64(f.sectorsPerPage)) / f.capScale
	last := int64((end-1)/uint64(f.sectorsPerPage)) / f.capScale
	nPages = last - first + 1
	if nPages < 1 {
		nPages = 1
	}
	if nPages > f.logicalPages {
		nPages = f.logicalPages
	}
	return first % f.logicalPages, nPages
}

// prefill marks frac of logical pages as written, without timing — the
// paper's "warm up the SSD simulator ... occupy at least 50% of the
// storage capacity".
func (f *ftl) prefill(frac float64) {
	n := int64(float64(f.logicalPages) * frac)
	for lp := int64(0); lp < n; lp++ {
		f.placePage(lp, 0)
	}
	// Reset op counters: warm-up traffic is not part of the measurement.
	f.userPrograms, f.gcPrograms, f.gcReads, f.erases = 0, 0, 0, 0
	for i := range f.planes {
		f.planes[i].gcRuns = 0
		f.planes[i].moveCount = 0
	}
}

// placePage allocates a physical slot for lp on the given write lane,
// updates mapping and valid counters, and returns the plane it landed on
// together with the number of GC page-moves and erases that the
// allocation triggered (zero when no GC ran). Timing is the caller's
// job; lane selection (hostLane) is too.
func (f *ftl) placePage(lp int64, lane int32) (pl planeID, gcMoves, gcErases int32) {
	if f.fatal != nil {
		return 0, 0, 0 // device wedged; engine surfaces f.fatal
	}
	ch, chip, die, plane := f.alloc.locate(f.stripe)
	f.stripe++
	pl = f.redirectPlane(f.alloc.planeIndex(ch, chip, die, plane))
	fp := &f.planes[pl]

	// Invalidate the previous location.
	if old := f.mapping[lp]; old != unmapped {
		opl, ob, oslot := unpackPPA(old)
		blk := &f.planes[opl].blocks[ob]
		if blk.pages[oslot] == int32(lp) {
			blk.pages[oslot] = -1
			blk.valid--
		}
	}

	ab := fp.actives[lane]
	if ab < 0 || fp.blocks[ab].full(f.pagesPerBlock) {
		f.advanceActive(fp, lane)
		if f.fatal != nil {
			f.mapping[lp] = unmapped
			return pl, 0, 0
		}
		ab = fp.actives[lane]
	}
	blk := &fp.blocks[ab]
	if f.faults != nil {
		// Program failures: a failed program leaves its slot unusable
		// until the block is erased (counted against the block's grown-
		// defect budget); the controller retries on the next slot.
		for f.faults.programFails() {
			blk.pages[blk.writePtr] = -1
			blk.writePtr++
			blk.failCount++
			f.faults.programFailures++
			if blk.full(f.pagesPerBlock) {
				f.advanceActive(fp, lane)
				if f.fatal != nil {
					f.mapping[lp] = unmapped
					return pl, 0, 0
				}
				blk = &fp.blocks[fp.actives[lane]]
			}
		}
	}
	slot := blk.writePtr
	blk.writePtr++
	blk.pages[slot] = int32(lp)
	blk.valid++
	f.mapping[lp] = packPPA(pl, fp.actives[lane], slot)

	if int32(len(fp.freeList)) < f.gcMinFree {
		gcMoves, gcErases = f.collect(fp, pl)
	}
	return pl, gcMoves, gcErases
}

// advanceActive opens a fresh free block as the lane's active block.
func (f *ftl) advanceActive(fp *flashPlane, lane int32) {
	if len(fp.freeList) == 0 {
		// Emergency GC: free at least one block synchronously.
		f.collect(fp, f.planeIDOf(fp))
		if len(fp.freeList) == 0 {
			// Over-provisioning too small, or fault-driven retirement
			// consumed it. Sticky typed error, not a panic: the engine
			// checks f.fatal at the next request boundary.
			f.fatal = ErrOutOfSpace
			return
		}
	}
	nb := fp.freeList[len(fp.freeList)-1]
	fp.freeList = fp.freeList[:len(fp.freeList)-1]
	fp.actives[lane] = nb
	blk := &fp.blocks[nb]
	if blk.pages == nil {
		blk.pages = make([]int32, f.pagesPerBlock)
	}
	fillStale(blk.pages)
	blk.writePtr = 0
	blk.valid = 0
	blk.lane = lane
	fp.allocSeq++
	blk.allocSeq = fp.allocSeq
}

func (f *ftl) planeIDOf(fp *flashPlane) planeID {
	for i := range f.planes {
		if &f.planes[i] == fp {
			return planeID(i)
		}
	}
	return 0
}

// collect reclaims blocks on the plane until the free list is healthy.
// It returns the number of valid-page moves and erases performed so the
// engine can charge their time and energy.
func (f *ftl) collect(fp *flashPlane, pl planeID) (moves, erasesDone int32) {
	// Progress guard: a plane whose blocks are all (nearly) fully valid
	// cannot be compacted further — each evacuation consumes as much
	// space as the erase frees. Bound the rounds to avoid livelock.
	maxRounds := 2 * int(f.blocksPerPlane)
	for round := 0; int32(len(fp.freeList)) < f.gcMinFree && round < maxRounds; round++ {
		victim := f.pickVictim(fp)
		if victim < 0 {
			break
		}
		blk := &fp.blocks[victim]
		// Move surviving pages into the victim lane's active block:
		// evacuating onto the same lane keeps stream/zone isolation (GC
		// never mixes lanes in one block), and with a single lane it is
		// exactly the historical behavior.
		lane := blk.lane
		for slot := int32(0); slot < blk.writePtr; slot++ {
			lp := blk.pages[slot]
			if lp < 0 {
				continue
			}
			if f.mapping[lp] != packPPA(pl, victim, slot) {
				continue // stale
			}
			dst := &fp.blocks[fp.actives[lane]]
			if dst.full(f.pagesPerBlock) {
				// The active block filled during GC; grab a free block
				// directly (one is guaranteed: we only erase after moving).
				if len(fp.freeList) == 0 {
					// Cannot make progress; leave remaining pages.
					break
				}
				f.advanceActive(fp, lane)
				dst = &fp.blocks[fp.actives[lane]]
			}
			s := dst.writePtr
			dst.writePtr++
			dst.pages[s] = lp
			dst.valid++
			f.mapping[lp] = packPPA(pl, fp.actives[lane], s)
			blk.pages[slot] = -1
			blk.valid--
			moves++
		}
		if blk.valid > 0 {
			// Could not fully evacuate; give up to avoid livelock.
			break
		}
		if f.faults != nil && f.faults.retireAtErase(blk) {
			// Bad-block retirement: the erase failed (or the block's
			// grown-defect budget ran out), so the block leaves service
			// instead of rejoining the free list — shrinking the plane's
			// effective over-provisioning. It stays permanently "full"
			// and is skipped by every victim policy via the retired flag.
			blk.retired = true
			blk.writePtr = f.pagesPerBlock
			blk.valid = 0
			f.faults.retiredBlocks++
			fp.gcRuns++
			continue
		}
		// Erase.
		blk.writePtr = 0
		blk.valid = 0
		blk.eraseCount++
		if blk.eraseCount > fp.maxErase {
			fp.maxErase = blk.eraseCount
		}
		fp.freeList = append(fp.freeList, victim)
		erasesDone++
		fp.gcRuns++
	}
	fp.moveCount += int64(moves)
	f.gcReads += int64(moves)
	f.gcPrograms += int64(moves)
	f.erases += int64(erasesDone)

	// Static wear leveling: when the erase-count spread exceeds the
	// threshold, swap a cold block with a hot one. Modeled as an extra
	// full-block migration charged like GC moves.
	if f.p.StaticWearLeveling && fp.maxErase-fp.minErase > int32(f.p.WearLevelingThresh) {
		fp.wlSwaps++
		fp.minErase = fp.maxErase - int32(f.p.WearLevelingThresh)/2
		moves += f.pagesPerBlock
		f.gcReads += int64(f.pagesPerBlock)
		f.gcPrograms += int64(f.pagesPerBlock)
		erasesDone++
		f.erases++
	}
	return moves, erasesDone
}

// noteStream records the host stream tag of a written logical page
// (multi-stream model only; a no-op elsewhere). The tag is remembered
// because the actual flash program may happen much later, at cache
// eviction, and must still land on the stream's lane.
func (f *ftl) noteStream(lp int64, stream uint32) {
	if f.streamOf != nil {
		f.streamOf[lp] = uint8(stream)
	}
}

// laneFor maps a logical page to its per-plane write lane under the
// configured host-interface model. Conventional devices have a single
// lane; multi-stream routes by the page's recorded stream tag; ZNS
// routes by the page's open-zone slot.
func (f *ftl) laneFor(lp int64) int32 {
	switch f.p.HostIfcModel {
	case IfcMultiStream:
		return int32(int(f.streamOf[lp]) % f.lanes)
	case IfcZNS:
		return f.zns.slotFor(f.zns.zoneOf(lp))
	}
	return 0
}

// trimPage drops lp's mapping and stales its physical slot — the GC
// credit of a TRIM: the page no longer needs to be moved at collection
// time. Reports whether lp was actually mapped.
func (f *ftl) trimPage(lp int64) bool {
	v := f.mapping[lp]
	if v == unmapped {
		return false
	}
	opl, ob, oslot := unpackPPA(v)
	blk := &f.planes[opl].blocks[ob]
	if blk.pages[oslot] == int32(lp) {
		blk.pages[oslot] = -1
		blk.valid--
	}
	f.mapping[lp] = unmapped
	f.trimmedPages++
	return true
}

// pickVictim selects a GC victim block index via the configured policy,
// or -1 when none qualifies.
func (f *ftl) pickVictim(fp *flashPlane) int32 {
	return f.gcPick.pickVictim(f, fp)
}

// lookup returns the plane that holds lp. Pages never written are given a
// deterministic pseudo-location so that reads of cold data still exercise
// the layout (they are spread exactly like striped writes would be).
func (f *ftl) lookup(lp int64) planeID {
	if v := f.mapping[lp]; v != unmapped {
		pl, _, _ := unpackPPA(v)
		return pl
	}
	ch, chip, die, plane := f.alloc.locate(uint64(lp))
	return f.redirectPlane(f.alloc.planeIndex(ch, chip, die, plane))
}

// --- Cached mapping table (DFTL-style). ---

// cmt simulates the cached mapping table: an LRU of mapping regions.
// A miss costs a flash read of the mapping page (charged by the engine);
// a dirty eviction costs a mapping program.
type cmt struct {
	capacity int
	ll       *list.List
	entries  map[int64]*list.Element
	gran     int64
}

type cmtEntry struct {
	region int64
	dirty  bool
}

// newCMT sizes the cached mapping table; scale is the device capacity
// scale factor, so CMT coverage of the simulated space matches the real
// CMT's coverage of the real device.
func newCMT(p *DeviceParams, scale int64) *cmt {
	gran := int64(p.MappingGranularity)
	if gran < 1 {
		gran = 1
	}
	capEntries := int(p.CMTBytes / int64(p.CMTEntryBytes) / scale)
	if capEntries < 1 {
		capEntries = 1
	}
	return &cmt{capacity: capEntries, ll: list.New(), entries: make(map[int64]*list.Element), gran: gran}
}

// access touches the mapping region of lp. It reports whether the access
// missed and whether the resulting eviction wrote back a dirty entry.
func (c *cmt) access(lp int64, write bool) (miss, dirtyEvict bool) {
	region := lp / c.gran
	if el, ok := c.entries[region]; ok {
		c.ll.MoveToFront(el)
		if write {
			el.Value.(*cmtEntry).dirty = true
		}
		return false, false
	}
	miss = true
	if c.ll.Len() >= c.capacity {
		back := c.ll.Back()
		if back != nil {
			e := back.Value.(*cmtEntry)
			dirtyEvict = e.dirty
			delete(c.entries, e.region)
			c.ll.Remove(back)
		}
	}
	c.entries[region] = c.ll.PushFront(&cmtEntry{region: region, dirty: write})
	return miss, dirtyEvict
}

// The DRAM data cache and its pluggable replacement policies live in
// cachepolicy.go.
