package ssd

import (
	"testing"
	"testing/quick"

	"autoblox/internal/workload"
)

func newTestFTL(t *testing.T, mutate func(*DeviceParams)) *ftl {
	t.Helper()
	p := smallDevice()
	if mutate != nil {
		mutate(&p)
	}
	f, err := newFTL(&p)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestPPARoundTrip(t *testing.T) {
	f := func(planeRaw uint16, blockRaw, slotRaw uint32) bool {
		plane := planeID(planeRaw % (1 << 15))
		block := int32(blockRaw % (1 << 23))
		slot := int32(slotRaw % (1 << 23))
		gp, gb, gs := unpackPPA(packPPA(plane, block, slot))
		return gp == plane && gb == block && gs == slot
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPlacePageInvalidatesOldCopy(t *testing.T) {
	f := newTestFTL(t, nil)
	pl1, _, _ := f.placePage(42, 0)
	old := f.mapping[42]
	opl, ob, oslot := unpackPPA(old)
	if opl != pl1 {
		t.Fatal("mapping does not match returned plane")
	}
	// Overwrite: old slot becomes stale, valid count drops.
	before := f.planes[opl].blocks[ob].valid
	f.placePage(42, 0)
	after := f.planes[opl].blocks[ob].valid
	if f.planes[opl].blocks[ob].pages[oslot] != -1 {
		t.Fatal("old slot not invalidated")
	}
	if after != before-1 {
		t.Fatalf("valid count %d -> %d, want decrement", before, after)
	}
}

func TestLogicalSpaceBounds(t *testing.T) {
	f := newTestFTL(t, nil)
	// Any LBA folds into [0, logicalPages).
	for _, lba := range []uint64{0, 1, 1 << 20, 1 << 40, ^uint64(0) >> 1} {
		lp := f.logicalPage(lba)
		if lp < 0 || lp >= f.logicalPages {
			t.Fatalf("logicalPage(%d) = %d outside [0,%d)", lba, lp, f.logicalPages)
		}
	}
}

func TestValidCountsConsistentUnderChurn(t *testing.T) {
	f := newTestFTL(t, nil)
	// Hammer a small working set so GC churns, then audit invariants.
	ws := f.logicalPages / 2
	for i := int64(0); i < ws*6; i++ {
		f.placePage(i%ws, 0)
	}
	var totalValid int64
	for pi := range f.planes {
		fp := &f.planes[pi]
		for bi := range fp.blocks {
			blk := &fp.blocks[bi]
			if blk.valid < 0 {
				t.Fatalf("negative valid count on plane %d block %d", pi, bi)
			}
			var live int32
			for slot := int32(0); slot < blk.writePtr; slot++ {
				lp := blk.pages[slot]
				if lp < 0 {
					continue
				}
				if f.mapping[lp] == packPPA(planeID(pi), int32(bi), slot) {
					live++
				}
			}
			if live != blk.valid {
				t.Fatalf("plane %d block %d: recorded valid %d, actual live %d", pi, bi, blk.valid, live)
			}
			totalValid += int64(blk.valid)
		}
	}
	// Every mapped page is live exactly once.
	var mapped int64
	for _, m := range f.mapping {
		if m != unmapped {
			mapped++
		}
	}
	if mapped != totalValid {
		t.Fatalf("mapped pages %d != total valid %d", mapped, totalValid)
	}
	if f.erases == 0 {
		t.Fatal("churn of 3x logical space should trigger erases")
	}
}

func TestGreedyVsFIFOWriteAmplification(t *testing.T) {
	// Greedy GC picks minimum-valid victims, so its write amplification
	// must not exceed FIFO's on a skewed workload.
	tr := testTrace(workload.FIU, 20000)
	greedy := smallDevice()
	greedy.GCPolicy = GCGreedy
	fifo := smallDevice()
	fifo.GCPolicy = GCFIFO
	rg := runTrace(t, greedy, tr)
	rf := runTrace(t, fifo, tr)
	if rg.GCRuns == 0 || rf.GCRuns == 0 {
		t.Skip("no GC pressure")
	}
	if rg.WriteAmplification > rf.WriteAmplification*1.05 {
		t.Fatalf("greedy WA %.3f should not exceed FIFO WA %.3f", rg.WriteAmplification, rf.WriteAmplification)
	}
}

func TestOverprovisioningReducesWA(t *testing.T) {
	tr := testTrace(workload.FIU, 20000)
	lowOP := smallDevice()
	lowOP.OverprovisionRatio = 0.05
	highOP := smallDevice()
	highOP.OverprovisionRatio = 0.28
	rl := runTrace(t, lowOP, tr)
	rh := runTrace(t, highOP, tr)
	if rl.GCRuns == 0 {
		t.Skip("no GC pressure")
	}
	if rh.WriteAmplification > rl.WriteAmplification {
		t.Fatalf("28%% OP WA %.3f should not exceed 5%% OP WA %.3f",
			rh.WriteAmplification, rl.WriteAmplification)
	}
}

func TestCMTGranularityTradeoff(t *testing.T) {
	// Coarser mapping granularity covers more pages per entry: fewer
	// misses for a sequential-leaning workload.
	tr := testTrace(workload.LevelDB, 8000)
	fine := DefaultParams()
	fine.CMTBytes = 64 << 10
	fine.MappingGranularity = 1
	coarse := DefaultParams()
	coarse.CMTBytes = 64 << 10
	coarse.MappingGranularity = 8
	rf := runTrace(t, fine, tr)
	rc := runTrace(t, coarse, tr)
	if rc.MappingReads > rf.MappingReads {
		t.Fatalf("granularity 8 mapping reads %d should not exceed granularity 1's %d",
			rc.MappingReads, rf.MappingReads)
	}
}

func TestCachePoliciesAllWork(t *testing.T) {
	tr := testTrace(workload.VDI, 5000)
	// Iterate the registry, not a literal list, so a newly registered
	// policy is exercised automatically.
	for i := range CachePolicyNames() {
		pol := CachePolicy(i)
		p := DefaultParams()
		p.CachePolicy = pol
		res := runTrace(t, p, tr)
		if res.AvgLatency <= 0 || res.CacheHits <= 0 {
			t.Fatalf("policy %s produced bad results", pol)
		}
	}
}

func TestAllocSchemesAllSimulate(t *testing.T) {
	tr := testTrace(workload.Database, 2000)
	for scheme := 0; scheme < NumAllocSchemes; scheme++ {
		p := DefaultParams()
		p.PlaneAllocScheme = AllocScheme(scheme)
		res := runTrace(t, p, tr)
		if res.AvgLatency <= 0 {
			t.Fatalf("scheme %s produced bad results", AllocScheme(scheme))
		}
	}
}

func TestChannelFirstBeatsPlaneFirstForParallelWrites(t *testing.T) {
	// Channel-first striping (CWDP) spreads consecutive writes across
	// buses; plane-first (WPDC-like orders starting within one chip
	// region) serializes them. Compare a write-heavy sequential stream.
	tr := testTrace(workload.CloudStorage, 4000)
	cwdp := DefaultParams()
	cwdp.PlaneAllocScheme = AllocCWDP
	wpdc := DefaultParams()
	wpdc.PlaneAllocScheme = AllocWPDC
	rc := runTrace(t, cwdp, tr)
	rw := runTrace(t, wpdc, tr)
	// CWDP must not lose on throughput (it can tie if the bus is idle).
	if rc.ThroughputBps < rw.ThroughputBps*0.98 {
		t.Fatalf("CWDP throughput %g lost to WPDC %g", rc.ThroughputBps, rw.ThroughputBps)
	}
}

func TestWearReport(t *testing.T) {
	tr := testTrace(workload.FIU, 25000)
	p := smallDevice()
	res := runTrace(t, p, tr)
	w := res.Wear
	if w.PECycleLimit != peCycleLimit(p.FlashType) {
		t.Fatalf("PE limit %d", w.PECycleLimit)
	}
	if res.Erases > 0 {
		if w.MaxEraseCount <= 0 || w.MeanEraseCount <= 0 {
			t.Fatalf("erases happened but wear empty: %+v", w)
		}
		if w.Imbalance < 1 {
			t.Fatalf("imbalance %g < 1", w.Imbalance)
		}
		if w.ProjectedLifetime <= 0 {
			t.Fatalf("no projected lifetime despite erases")
		}
	}
	// Static wear leveling should not worsen the imbalance.
	noWL := p
	noWL.StaticWearLeveling = false
	noWL.DynamicWearLeveling = false
	rNo := runTrace(t, noWL, tr)
	if rNo.Erases == 0 || res.Erases == 0 {
		t.Skip("no GC pressure")
	}
	if res.Wear.Imbalance > rNo.Wear.Imbalance*1.25 {
		t.Fatalf("wear leveling imbalance %.2f much worse than none %.2f",
			res.Wear.Imbalance, rNo.Wear.Imbalance)
	}
}

func TestPECycleLimitsOrdered(t *testing.T) {
	if !(peCycleLimit(SLC) > peCycleLimit(MLC) && peCycleLimit(MLC) > peCycleLimit(TLC)) {
		t.Fatal("PE cycle limits must be SLC > MLC > TLC")
	}
}
