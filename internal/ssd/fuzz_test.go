package ssd

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParamsJSON fuzzes the device-file codec for the fixed-point
// property: any input that decodes (and therefore validates) must
// re-encode, and the decode→encode cycle must be idempotent from the
// first encoding on — enc(dec(b)) == enc(dec(enc(dec(b)))) byte for
// byte. This is what makes SaveParams/LoadParams round-trips lossless
// (the microsecond/MB quantization happens exactly once).
func FuzzParamsJSON(f *testing.F) {
	for _, p := range []DeviceParams{DefaultParams(), Intel750(), Samsung850Pro(), SamsungZSSD()} {
		b, err := MarshalJSONParams(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	faulted := DefaultParams()
	faulted.Faults = FaultProfile{Rate: 0.01, Seed: 7, DieFailures: 1}
	if b, err := MarshalJSONParams(faulted); err == nil {
		f.Add(b)
	}
	zoned := DefaultParams()
	zoned.HostIfcModel = IfcZNS
	zoned.ZoneSizeMB, zoned.MaxOpenZones = 128, 16
	if b, err := MarshalJSONParams(zoned); err == nil {
		f.Add(b)
	}
	streamed := DefaultParams()
	streamed.HostIfcModel = IfcMultiStream
	streamed.WriteStreams = 8
	if b, err := MarshalJSONParams(streamed); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{"gc_policy":"bogus"}`))
	f.Add([]byte(`{"host_ifc":"open-channel"}`))
	f.Add([]byte(`{"read_latency_us":0.0030000000000000001}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalJSONParams(data)
		if err != nil {
			return // invalid inputs are fine; they just must not panic
		}
		b1, err := MarshalJSONParams(p)
		if err != nil {
			t.Fatalf("validated params failed to marshal: %v", err)
		}
		p2, err := UnmarshalJSONParams(b1)
		if err != nil {
			t.Fatalf("own encoding failed to decode: %v\n%s", err, b1)
		}
		b2, err := MarshalJSONParams(p2)
		if err != nil {
			t.Fatalf("re-marshal failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("decode→encode not a fixed point:\nfirst:  %s\nsecond: %s", b1, b2)
		}
	})
}

// TestUnknownPolicyNamesError pins that unknown registry names in
// device files error out instead of silently defaulting.
func TestUnknownPolicyNamesError(t *testing.T) {
	cases := []string{
		`{"gc_policy":"bogus"}`,
		`{"cache_policy":"MRU"}`,
		`{"plane_alloc_scheme":"XYZW"}`,
		`{"flash_type":"QLC9000"}`,
		`{"interface":"SCSI"}`,
		`{"host_ifc":"open-channel"}`,
	}
	for _, c := range cases {
		if _, err := UnmarshalJSONParams([]byte(c)); err == nil {
			t.Errorf("%s: expected unknown-name error", c)
		} else if !strings.Contains(err.Error(), "unknown") {
			t.Errorf("%s: error %q does not mention the unknown name", c, err)
		}
	}
}
