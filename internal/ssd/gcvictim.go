package ssd

// GCPolicy selects the victim-block (garbage collection) policy.
type GCPolicy uint8

const (
	// GCGreedy picks the block with the fewest valid pages.
	GCGreedy GCPolicy = iota
	// GCFIFO erases blocks in allocation order.
	GCFIFO
	// GCCostBenefit weighs reclaimable space against copy cost and
	// block age (the classic LFS/eNVy cost-benefit cleaner), discounted
	// by wear so heavily erased blocks are spared.
	GCCostBenefit
)

// gcVictimPolicy selects a GC victim block on one plane, or -1 when no
// block qualifies. Implementations must be deterministic: equal scores
// resolve to the lowest block index (or, for greedy with dynamic wear
// leveling, the documented erase-count tie-break).
type gcVictimPolicy interface {
	pickVictim(f *ftl, fp *flashPlane) int32
}

// gcPolicyTable is the single source of truth for the GC victim
// domain: row order defines the wire value. To add a policy, append a
// row here and implement its type below — validation, JSON, the config
// space and the CLI pick it up from the registry.
var gcPolicyTable = []policyEntry[gcVictimPolicy]{
	GCGreedy:      {name: "greedy", doc: "fewest valid pages first", make: func(*DeviceParams) gcVictimPolicy { return greedyVictim{} }},
	GCFIFO:        {name: "fifo", doc: "oldest allocated block first", make: func(*DeviceParams) gcVictimPolicy { return fifoVictim{} }},
	GCCostBenefit: {name: "costbenefit", doc: "age-weighted benefit/cost, wear-aware", make: func(*DeviceParams) gcVictimPolicy { return costBenefitVictim{} }},
}

var gcPolicies = domainOf("gc policy", gcPolicyTable)

func (g GCPolicy) valid() bool { return gcPolicies.valid(uint8(g)) }

// String returns the policy's registry name.
func (g GCPolicy) String() string { return gcPolicies.name(uint8(g)) }

// ParseGCPolicy resolves a registry name like "greedy".
func ParseGCPolicy(s string) (GCPolicy, error) {
	v, err := gcPolicies.parse(s)
	return GCPolicy(v), err
}

// GCPolicyNames returns the registered policy names in value order.
func GCPolicyNames() []string { return gcPolicies.allNames() }

// DescribeGCPolicies renders the registry as CLI flag help.
func DescribeGCPolicies() string { return gcPolicies.describe() }

// newGCVictimPolicy instantiates the device's configured policy; the
// caller validates p first.
func newGCVictimPolicy(p *DeviceParams) gcVictimPolicy {
	return gcPolicyTable[p.GCPolicy].make(p)
}

// greedyVictim implements GCGreedy: minimum valid pages wins.
type greedyVictim struct{}

func (greedyVictim) pickVictim(f *ftl, fp *flashPlane) int32 {
	best := int32(-1)
	var minValid int32 = 1<<31 - 1
	for i := range fp.blocks {
		b := &fp.blocks[i]
		if fp.isActive(int32(i)) || b.retired || !b.full(f.pagesPerBlock) {
			continue
		}
		better := b.valid < minValid
		// Dynamic wear leveling: among equally garbage-rich victims,
		// prefer the least-worn block so erase counts stay even.
		if f.p.DynamicWearLeveling && b.valid == minValid && best >= 0 &&
			b.eraseCount < fp.blocks[best].eraseCount {
			better = true
		}
		if better {
			minValid = b.valid
			best = int32(i)
		}
	}
	// Refuse hopeless victims (everything still valid).
	if best >= 0 && fp.blocks[best].valid >= f.pagesPerBlock {
		return -1
	}
	return best
}

// fifoVictim implements GCFIFO: oldest allocation sequence wins.
type fifoVictim struct{}

func (fifoVictim) pickVictim(f *ftl, fp *flashPlane) int32 {
	best := int32(-1)
	var oldest int64 = 1<<63 - 1
	for i := range fp.blocks {
		b := &fp.blocks[i]
		if fp.isActive(int32(i)) || b.retired || !b.full(f.pagesPerBlock) {
			continue
		}
		if b.valid >= f.pagesPerBlock {
			continue // erasing a fully-valid block frees nothing
		}
		if b.allocSeq < oldest {
			oldest = b.allocSeq
			best = int32(i)
		}
	}
	return best
}

// costBenefitVictim implements GCCostBenefit. Each candidate scores
// age · (1-u)/(1+u), where u is the block's valid-page ratio: (1-u) is
// the space an erase reclaims, (1+u) the erase-plus-copy cost of
// evacuating it, and age (plane allocation sequence distance) rewards
// blocks whose surviving pages have proven cold — the segment-cleaning
// rule of LFS/eNVy. The score is then divided by (1 + erase/PE-limit)
// so nearly worn-out blocks lose ties, folding wear awareness into
// victim selection itself.
type costBenefitVictim struct{}

func (costBenefitVictim) pickVictim(f *ftl, fp *flashPlane) int32 {
	peLimit := float64(peCycleLimit(f.p.FlashType))
	ppb := float64(f.pagesPerBlock)
	best := int32(-1)
	bestScore := 0.0
	for i := range fp.blocks {
		b := &fp.blocks[i]
		if fp.isActive(int32(i)) || b.retired || !b.full(f.pagesPerBlock) {
			continue
		}
		if b.valid >= f.pagesPerBlock {
			continue // erasing a fully-valid block frees nothing
		}
		u := float64(b.valid) / ppb
		age := float64(fp.allocSeq-b.allocSeq) + 1
		score := age * (1 - u) / (1 + u)
		score /= 1 + float64(b.eraseCount)/peLimit
		if best < 0 || score > bestScore {
			bestScore = score
			best = int32(i)
		}
	}
	return best
}
