package ssd

import (
	"math"
	"testing"

	"autoblox/internal/workload"
)

// The golden rows below were captured from the simulator BEFORE the
// policy layer was decomposed behind interfaces (commit 6d5696b), by
// running exactly the cases reconstructed in TestGoldenResultsStable.
// The refactor must be a pure restructuring for pre-existing policy
// values: every counter and every float must match bit-for-bit
// (Float64bits, not approximate comparison). If this test fails after
// an intentional behavioral change to an existing policy, the golden
// values must be re-captured and the change called out in review.

type goldenRow struct {
	name           string
	avgLatencyNs   int64
	p99LatencyNs   int64
	energyBits     uint64 // math.Float64bits(Result.EnergyJoules)
	throughputBits uint64 // math.Float64bits(Result.ThroughputBps)
	erases         int64
	gcRuns         int64
	userPrograms   int64
	gcPrograms     int64
	cacheHits      int64
}

var goldenRows = []goldenRow{
	{"small/gc=0/cache=0/fiu", 172582644, 209715199, 0x402d0822bb79aa14, 0x4165c4fc5deda418, 2181, 2181, 12633, 126949, 234},
	{"small/gc=0/cache=1/fiu", 178091200, 234881023, 0x402da6b71b955410, 0x4165177c88c047da, 2220, 2220, 12637, 129430, 235},
	{"small/gc=0/cache=2/fiu", 168250714, 209715199, 0x402ced9b5d1c6df3, 0x416657bce97fe238, 2188, 2188, 12633, 127394, 235},
	{"small/gc=1/cache=0/fiu", 219292130, 377487359, 0x40317dd10615042f, 0x41612184e80dfe73, 2579, 2579, 12633, 152425, 234},
	{"small/gc=1/cache=1/fiu", 235643302, 377487359, 0x403254adee833f5c, 0x415fe9be015141c1, 2680, 2680, 12637, 158880, 235},
	{"small/gc=1/cache=2/fiu", 214276492, 377487359, 0x4031665e702fbe9d, 0x416184fe1580842d, 2580, 2580, 12633, 152483, 235},
	{"default/alloc=CWDP/db", 208519, 368639, 0x3f97cce43fb04370, 0x41d9530e3872dd56, 0, 0, 0, 0, 316},
	{"default/alloc=WPDC/db", 206021, 360447, 0x3f97c238eb82ce0c, 0x41d97b1aa66b590e, 0, 0, 0, 0, 316},
	{"default/alloc=CD/db", 208519, 368639, 0x3f97cce43fb04370, 0x41d9530e3872dd56, 0, 0, 0, 0, 316},
}

// goldenCases rebuilds the captured configurations: every pre-existing
// (GC × cache) policy pair on the GC-pressured small device over a
// write-heavy FIU trace, plus three representative allocation schemes
// on the default device over a Database trace.
func goldenCases(t *testing.T) map[string]*Result {
	t.Helper()
	out := make(map[string]*Result, len(goldenRows))
	fiu := workload.MustGenerate(workload.FIU, workload.Options{Requests: 12000, Seed: 11})
	for _, gc := range []GCPolicy{GCGreedy, GCFIFO} {
		for _, cp := range []CachePolicy{CacheLRU, CacheFIFO, CacheCFLRU} {
			p := smallDevice()
			p.GCPolicy = gc
			p.CachePolicy = cp
			name := "small/gc=" + itoa(int(gc)) + "/cache=" + itoa(int(cp)) + "/fiu"
			out[name] = runTrace(t, p, fiu)
		}
	}
	db := workload.MustGenerate(workload.Database, workload.Options{Requests: 3000, Seed: 11})
	for _, scheme := range []AllocScheme{AllocCWDP, AllocWPDC, AllocCD} {
		p := DefaultParams()
		p.PlaneAllocScheme = scheme
		out["default/alloc="+scheme.String()+"/db"] = runTrace(t, p, db)
	}
	return out
}

func itoa(v int) string { return string(rune('0' + v)) }

func TestGoldenResultsStable(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus runs 9 full simulations")
	}
	results := goldenCases(t)
	if len(results) != len(goldenRows) {
		t.Fatalf("built %d cases for %d golden rows", len(results), len(goldenRows))
	}
	for _, want := range goldenRows {
		got, ok := results[want.name]
		if !ok {
			t.Errorf("%s: case not reconstructed", want.name)
			continue
		}
		if int64(got.AvgLatency) != want.avgLatencyNs {
			t.Errorf("%s: AvgLatency %d ns, want %d ns", want.name, int64(got.AvgLatency), want.avgLatencyNs)
		}
		if int64(got.P99Latency) != want.p99LatencyNs {
			t.Errorf("%s: P99 %d ns, want %d ns", want.name, int64(got.P99Latency), want.p99LatencyNs)
		}
		if bits := math.Float64bits(got.EnergyJoules); bits != want.energyBits {
			t.Errorf("%s: EnergyJoules %v (0x%x), want 0x%x", want.name, got.EnergyJoules, bits, want.energyBits)
		}
		if bits := math.Float64bits(got.ThroughputBps); bits != want.throughputBits {
			t.Errorf("%s: ThroughputBps %v (0x%x), want 0x%x", want.name, got.ThroughputBps, bits, want.throughputBits)
		}
		if got.Erases != want.erases {
			t.Errorf("%s: Erases %d, want %d", want.name, got.Erases, want.erases)
		}
		if int64(got.GCRuns) != want.gcRuns {
			t.Errorf("%s: GCRuns %d, want %d", want.name, got.GCRuns, want.gcRuns)
		}
		if got.UserPrograms != want.userPrograms {
			t.Errorf("%s: UserPrograms %d, want %d", want.name, got.UserPrograms, want.userPrograms)
		}
		if got.GCPrograms != want.gcPrograms {
			t.Errorf("%s: GCPrograms %d, want %d", want.name, got.GCPrograms, want.gcPrograms)
		}
		if got.CacheHits != want.cacheHits {
			t.Errorf("%s: CacheHits %d, want %d", want.name, got.CacheHits, want.cacheHits)
		}
	}
}
