package ssd

import (
	"autoblox/internal/trace"
)

// Host-side request admission: NVMe multi-queue submission and optional
// adjacent-request merging.
//
// NVMe exposes QueueCount independent submission queues, each QueueDepth
// deep; the device services them in round-robin. SATA has a single
// 32-deep NCQ queue. The engine models admission as one completion
// window per queue: request j of queue q dispatches when slot
// (j mod QueueDepth) of queue q frees. Total outstanding commands are
// therefore QueueDepth × QueueCount for NVMe, matching real devices.

// hostQueues tracks per-queue completion windows.
type hostQueues struct {
	windows [][]int64 // [queue][slot] completion times
	counts  []int     // requests admitted per queue
}

func newHostQueues(p *DeviceParams) *hostQueues {
	qc := p.QueueCount
	qd := p.QueueDepth
	if p.HostInterface == SATA {
		qc = 1
		if qd > 32 {
			qd = 32 // NCQ ceiling
		}
	}
	if qc < 1 {
		qc = 1
	}
	if qd < 1 {
		qd = 1
	}
	h := &hostQueues{windows: make([][]int64, qc), counts: make([]int, qc)}
	for i := range h.windows {
		h.windows[i] = make([]int64, qd)
	}
	return h
}

// hostSlot identifies the queue slot an admitted request occupies; pass
// it to complete. A plain value token (rather than a commit closure)
// keeps admission allocation-free on the per-request hot path.
type hostSlot struct{ q, slot int }

// admit returns the dispatch time for a request arriving at `arrival` on
// the least-loaded queue, and the slot to release via complete.
func (h *hostQueues) admit(arrival int64) (dispatch int64, s hostSlot) {
	// Host drivers steer submissions to the queue with the earliest free
	// slot (per-CPU queues drained independently).
	bestQ, bestSlot, bestGate := 0, 0, int64(1<<62)
	for q := range h.windows {
		slot := h.counts[q] % len(h.windows[q])
		gate := h.windows[q][slot]
		if gate < bestGate {
			bestQ, bestSlot, bestGate = q, slot, gate
		}
	}
	dispatch = arrival
	if bestGate > dispatch {
		dispatch = bestGate
	}
	h.counts[bestQ]++
	return dispatch, hostSlot{q: bestQ, slot: bestSlot}
}

// complete records the completion time of the request occupying s,
// freeing the slot for the next admission.
func (h *hostQueues) complete(s hostSlot, done int64) {
	h.windows[s.q][s.slot] = done
}

const (
	mergeWindowNS  = 200_000 // 200µs plug window
	maxMergedBytes = 1 << 20 // cap merged requests at 1MB
)

// canMerge reports whether the block layer would coalesce r into the
// accumulating request cur: contiguous, same direction (and same
// multi-stream tag — merging across streams would destroy the placement
// hint), within the plug window of the accumulator's arrival, and under
// the merged-size cap.
func canMerge(cur, r trace.Request) bool {
	contiguous := cur.LBA+uint64(cur.Sectors) == r.LBA
	sameOp := cur.Op == r.Op && cur.Stream == r.Stream
	inWindow := r.Arrival.Nanoseconds()-cur.Arrival.Nanoseconds() <= mergeWindowNS
	smallEnough := (uint64(cur.Sectors)+uint64(r.Sectors))*512 <= maxMergedBytes
	return contiguous && sameOp && inWindow && smallEnough
}

// mergeStream coalesces contiguous same-direction requests on the fly
// (the block layer's request merging, which the IOMergingEnabled
// parameter controls) with a single request of lookahead, so merging
// adds O(1) memory to the streaming pipeline.
type mergeStream struct {
	src     requestStream
	pending trace.Request
	have    bool
	done    bool
	merged  int64
}

func newMergeStream(src requestStream) *mergeStream {
	return &mergeStream{src: src}
}

func (m *mergeStream) Next() (trace.Request, bool) {
	if m.done {
		return trace.Request{}, false
	}
	if !m.have {
		r, ok := m.src.Next()
		if !ok {
			m.done = true
			return trace.Request{}, false
		}
		m.pending = r
	}
	cur := m.pending
	m.have = false
	for {
		r, ok := m.src.Next()
		if !ok {
			m.done = true
			return cur, true
		}
		if canMerge(cur, r) {
			cur.Sectors += r.Sectors
			m.merged++
			continue
		}
		m.pending, m.have = r, true
		return cur, true
	}
}

// mergeRequests is the materialized form of mergeStream, kept for tests
// and callers that already hold a request slice. Returns the merged
// request stream and the number of merges performed.
func mergeRequests(reqs []trace.Request) ([]trace.Request, int64) {
	if len(reqs) == 0 {
		return reqs, 0
	}
	ms := newMergeStream((&trace.Trace{Requests: reqs}).Source())
	out := make([]trace.Request, 0, len(reqs))
	for {
		r, ok := ms.Next()
		if !ok {
			break
		}
		out = append(out, r)
	}
	return out, ms.merged
}
