package ssd

import (
	"autoblox/internal/trace"
)

// Host-side request admission: NVMe multi-queue submission and optional
// adjacent-request merging.
//
// NVMe exposes QueueCount independent submission queues, each QueueDepth
// deep; the device services them in round-robin. SATA has a single
// 32-deep NCQ queue. The engine models admission as one completion
// window per queue: request j of queue q dispatches when slot
// (j mod QueueDepth) of queue q frees. Total outstanding commands are
// therefore QueueDepth × QueueCount for NVMe, matching real devices.

// hostQueues tracks per-queue completion windows.
type hostQueues struct {
	windows [][]int64 // [queue][slot] completion times
	counts  []int     // requests admitted per queue
}

func newHostQueues(p *DeviceParams) *hostQueues {
	qc := p.QueueCount
	qd := p.QueueDepth
	if p.HostInterface == SATA {
		qc = 1
		if qd > 32 {
			qd = 32 // NCQ ceiling
		}
	}
	if qc < 1 {
		qc = 1
	}
	if qd < 1 {
		qd = 1
	}
	h := &hostQueues{windows: make([][]int64, qc), counts: make([]int, qc)}
	for i := range h.windows {
		h.windows[i] = make([]int64, qd)
	}
	return h
}

// admit returns the dispatch time for a request arriving at `arrival` on
// the least-loaded queue, and a commit function to record its completion.
func (h *hostQueues) admit(arrival int64) (dispatch int64, commit func(done int64)) {
	// Host drivers steer submissions to the queue with the earliest free
	// slot (per-CPU queues drained independently).
	bestQ, bestSlot, bestGate := 0, 0, int64(1<<62)
	for q := range h.windows {
		slot := h.counts[q] % len(h.windows[q])
		gate := h.windows[q][slot]
		if gate < bestGate {
			bestQ, bestSlot, bestGate = q, slot, gate
		}
	}
	dispatch = arrival
	if bestGate > dispatch {
		dispatch = bestGate
	}
	h.counts[bestQ]++
	return dispatch, func(done int64) { h.windows[bestQ][bestSlot] = done }
}

// mergeRequests coalesces contiguous same-direction requests that arrive
// within mergeWindowNS of each other (the block layer's request merging,
// which the IOMergingEnabled parameter controls). Returns the merged
// request stream and the number of merges performed.
func mergeRequests(reqs []trace.Request) ([]trace.Request, int64) {
	const (
		mergeWindowNS  = 200_000 // 200µs plug window
		maxMergedBytes = 1 << 20 // cap merged requests at 1MB
	)
	if len(reqs) == 0 {
		return reqs, 0
	}
	out := make([]trace.Request, 0, len(reqs))
	merged := int64(0)
	cur := reqs[0]
	for _, r := range reqs[1:] {
		contiguous := cur.LBA+uint64(cur.Sectors) == r.LBA
		sameOp := cur.Op == r.Op
		inWindow := r.Arrival.Nanoseconds()-cur.Arrival.Nanoseconds() <= mergeWindowNS
		smallEnough := (uint64(cur.Sectors)+uint64(r.Sectors))*512 <= maxMergedBytes
		if contiguous && sameOp && inWindow && smallEnough {
			cur.Sectors += r.Sectors
			merged++
			continue
		}
		out = append(out, cur)
		cur = r
	}
	out = append(out, cur)
	return out, merged
}
