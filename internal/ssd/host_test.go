package ssd

import (
	"testing"
	"time"

	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

func TestMergeRequestsContiguous(t *testing.T) {
	reqs := []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8, Op: trace.Write},
		{Arrival: 10 * time.Microsecond, LBA: 8, Sectors: 8, Op: trace.Write},
		{Arrival: 20 * time.Microsecond, LBA: 16, Sectors: 8, Op: trace.Write},
		{Arrival: 30 * time.Microsecond, LBA: 1000, Sectors: 8, Op: trace.Write}, // gap
	}
	out, merged := mergeRequests(reqs)
	if merged != 2 || len(out) != 2 {
		t.Fatalf("merged=%d len=%d, want 2/2", merged, len(out))
	}
	if out[0].Sectors != 24 || out[0].LBA != 0 {
		t.Fatalf("merged request wrong: %+v", out[0])
	}
}

func TestMergeRespectsOpAndWindowAndSize(t *testing.T) {
	// Different op: no merge.
	reqs := []trace.Request{
		{LBA: 0, Sectors: 8, Op: trace.Write},
		{LBA: 8, Sectors: 8, Op: trace.Read},
	}
	if _, merged := mergeRequests(reqs); merged != 0 {
		t.Fatal("merged across op boundary")
	}
	// Outside the plug window: no merge.
	reqs = []trace.Request{
		{Arrival: 0, LBA: 0, Sectors: 8, Op: trace.Read},
		{Arrival: time.Second, LBA: 8, Sectors: 8, Op: trace.Read},
	}
	if _, merged := mergeRequests(reqs); merged != 0 {
		t.Fatal("merged across a 1s gap")
	}
	// Size cap: 1MB.
	reqs = []trace.Request{
		{LBA: 0, Sectors: 2000, Op: trace.Read},
		{LBA: 2000, Sectors: 2000, Op: trace.Read},
	}
	if _, merged := mergeRequests(reqs); merged != 0 {
		t.Fatal("merged past the 1MB cap")
	}
	// Empty input.
	if out, merged := mergeRequests(nil); merged != 0 || len(out) != 0 {
		t.Fatal("empty input mishandled")
	}
}

func TestHostQueuesDepthGating(t *testing.T) {
	p := DefaultParams()
	p.QueueCount, p.QueueDepth = 1, 2
	h := newHostQueues(&p)
	d, c := h.admit(0)
	if d != 0 {
		t.Fatalf("first dispatch = %d", d)
	}
	h.complete(c, 100)
	d, c = h.admit(0)
	if d != 0 {
		t.Fatalf("second dispatch = %d (QD 2 allows it)", d)
	}
	h.complete(c, 200)
	// Third request reuses slot 0: gated on its completion (100).
	d, c = h.admit(0)
	if d != 100 {
		t.Fatalf("third dispatch = %d, want 100", d)
	}
	h.complete(c, 250)
	// Fourth reuses slot 1 (completion 200).
	d, _ = h.admit(0)
	if d != 200 {
		t.Fatalf("fourth dispatch = %d, want 200", d)
	}
}

func TestHostQueuesMultiQueueSteering(t *testing.T) {
	p := DefaultParams()
	p.QueueCount, p.QueueDepth = 2, 1
	h := newHostQueues(&p)
	d, c := h.admit(0)
	if d != 0 {
		t.Fatal("q0 should be free")
	}
	h.complete(c, 100)
	// Second request steers to the other (empty) queue.
	d, c = h.admit(0)
	if d != 0 {
		t.Fatalf("second dispatch = %d, want 0 via queue 1", d)
	}
	h.complete(c, 300)
	// Third picks the earliest-freeing slot: q0 at 100.
	d, _ = h.admit(0)
	if d != 100 {
		t.Fatalf("third dispatch = %d, want 100", d)
	}
}

func TestSATASingleQueue(t *testing.T) {
	p := DefaultParams()
	p.HostInterface = SATA
	p.QueueCount, p.QueueDepth = 8, 256
	h := newHostQueues(&p)
	if len(h.windows) != 1 || len(h.windows[0]) != 32 {
		t.Fatalf("SATA should clamp to one 32-deep queue, got %dx%d", len(h.windows), len(h.windows[0]))
	}
}

func TestQueueCountLiftsSaturatedThroughput(t *testing.T) {
	tr := testTrace(workload.Database, 8000)
	one := DefaultParams()
	one.QueueCount = 1
	many := DefaultParams()
	many.QueueCount = 8
	r1 := runTrace(t, one, tr)
	r8 := runTrace(t, many, tr)
	if r8.ThroughputBps <= r1.ThroughputBps {
		t.Fatalf("8 queues (%g Bps) should beat 1 queue (%g Bps) under saturation",
			r8.ThroughputBps, r1.ThroughputBps)
	}
}

func TestMergingHelpsSequentialWorkload(t *testing.T) {
	tr := testTrace(workload.CloudStorage, 5000)
	on := DefaultParams()
	on.IOMergingEnabled = true
	off := DefaultParams()
	off.IOMergingEnabled = false
	rOn := runTrace(t, on, tr)
	rOff := runTrace(t, off, tr)
	if rOn.MergedRequests == 0 {
		t.Fatal("sequential workload should produce merges")
	}
	if rOff.MergedRequests != 0 {
		t.Fatal("merging disabled but merges recorded")
	}
	// Throughput must not regress from merging.
	if rOn.ThroughputBps < rOff.ThroughputBps*0.95 {
		t.Fatalf("merging regressed throughput: %g vs %g", rOn.ThroughputBps, rOff.ThroughputBps)
	}
}

func TestOOOSchedulingBoundsReadWaits(t *testing.T) {
	// Write-heavy + reads: OOO lets reads bypass queued programs.
	tr := testTrace(workload.FIU, 12000)
	p := smallDevice()
	p.SuspendEnabled = false
	fifo := p
	fifo.TransactionSchedOOO = false
	ooo := p
	ooo.TransactionSchedOOO = true
	rFifo := runTrace(t, fifo, tr)
	rOoo := runTrace(t, ooo, tr)
	if rOoo.AvgLatency > rFifo.AvgLatency {
		t.Fatalf("OOO latency %v should not exceed FIFO %v", rOoo.AvgLatency, rFifo.AvgLatency)
	}
}

func TestProactiveFlushTriggers(t *testing.T) {
	p := smallDevice()
	p.WriteBufferFlushPct = 10 // flush aggressively
	tr := testTrace(workload.FIU, 8000)
	res := runTrace(t, p, tr)
	if res.ProactiveFlushes == 0 {
		t.Fatal("aggressive flush threshold produced no proactive flushes")
	}
	lazy := smallDevice()
	lazy.WriteBufferFlushPct = 99.9
	resLazy := runTrace(t, lazy, tr)
	if resLazy.ProactiveFlushes >= res.ProactiveFlushes {
		t.Fatalf("lazy threshold should flush less: %d vs %d",
			resLazy.ProactiveFlushes, res.ProactiveFlushes)
	}
}

func TestDynamicWearLevelingEvensWear(t *testing.T) {
	tr := testTrace(workload.FIU, 25000)
	on := smallDevice()
	on.DynamicWearLeveling = true
	on.StaticWearLeveling = false
	off := smallDevice()
	off.DynamicWearLeveling = false
	off.StaticWearLeveling = false
	rOn := runTrace(t, on, tr)
	rOff := runTrace(t, off, tr)
	// Both must run GC for the comparison to mean anything.
	if rOn.GCRuns == 0 || rOff.GCRuns == 0 {
		t.Skip("no GC pressure")
	}
	// Dynamic WL selects cooler victims; the performance effect is small
	// but it must not break anything.
	if rOn.AvgLatency <= 0 || rOff.AvgLatency <= 0 {
		t.Fatal("bad latencies")
	}
}

func TestHostLinkBandwidthConserved(t *testing.T) {
	// Aggregate measured throughput can never exceed the host link's
	// bandwidth, no matter how parallel the flash back-end is.
	tr := testTrace(workload.HDFS, 6000) // large sequential, link-saturating
	p := DefaultParams()
	p.Channels = 32
	p.PCIeLanes = 1 // 985 MB/s link
	res := runTrace(t, p, tr)
	if res.ThroughputBps > p.HostBandwidthBps()*1.02 {
		t.Fatalf("throughput %g exceeds host link %g", res.ThroughputBps, p.HostBandwidthBps())
	}
}

func TestEnergyComponentsOrdering(t *testing.T) {
	// A flash-heavy run must cost more energy than the same device idle
	// over the same span (background power only).
	tr := testTrace(workload.CloudStorage, 4000)
	res := runTrace(t, DefaultParams(), tr)
	// Rough background-only bound: DRAM + controller idle + flash standby.
	seconds := res.Makespan.Seconds()
	dramGB := float64(DefaultParams().DataCacheBytes+DefaultParams().CMTBytes) / (1 << 30)
	backgroundJ := dramGB*0.18*seconds + 0.09*seconds + 0.0008*float64(8*4*2)*seconds
	if res.EnergyJoules <= backgroundJ {
		t.Fatalf("active run energy %g should exceed background-only %g", res.EnergyJoules, backgroundJ)
	}
}
