package ssd

// Host-interface command-set models. The conventional block interface,
// zoned namespaces (ZNS) and multi-stream (directive) writes differ in
// what the host tells the device about data placement; the FTL turns
// that into "lanes": per-plane active write blocks. Conventional devices
// have one lane, a multi-stream device has one lane per write stream
// (so GC never mixes streams in a block), and a ZNS device has one lane
// per open zone slot. TRIM/discard is handled uniformly by all three
// models (mapping invalidation, stale-page accounting, GC credit);
// hostifc-specific write-pointer state lives in znsState below.

// HostIfc selects the host-interface command-set model.
type HostIfc uint8

const (
	// IfcConventional is the classic block interface: the device owns
	// placement entirely, one active write block per plane.
	IfcConventional HostIfc = iota
	// IfcZNS is the zoned-namespace model: the logical space is split
	// into zones with per-zone write pointers; sequential (append-order)
	// writes are free, rewrites below the pointer are violations charged
	// a reclaim penalty, a full-zone TRIM is a zone reset, and the
	// mapping table is zone-granular (the ZNS metadata saving).
	IfcZNS
	// IfcMultiStream is the multi-stream (write directive) model:
	// stream-tagged writes are routed to per-stream active blocks, so
	// GC never mixes streams and same-lifetime data dies together.
	IfcMultiStream
)

// hostIfcTable is the single source of truth for the host-interface
// model domain: row order defines the wire value.
var hostIfcTable = []policyEntry[struct{}]{
	IfcConventional: {name: "conventional", doc: "block interface, device-managed placement"},
	IfcZNS:          {name: "zns", doc: "zoned namespace: write pointers, zone-granular mapping"},
	IfcMultiStream:  {name: "multistream", doc: "stream-tagged writes, per-stream GC isolation"},
}

var hostIfcs = domainOf("host interface model", hostIfcTable)

func (h HostIfc) valid() bool { return hostIfcs.valid(uint8(h)) }

// String returns the model's registry name.
func (h HostIfc) String() string { return hostIfcs.name(uint8(h)) }

// ParseHostIfc resolves a registry name like "zns".
func ParseHostIfc(s string) (HostIfc, error) {
	v, err := hostIfcs.parse(s)
	return HostIfc(v), err
}

// HostIfcNames returns the registered model names in value order.
func HostIfcNames() []string { return hostIfcs.allNames() }

// DescribeHostIfcs renders the registry as CLI flag help.
func DescribeHostIfcs() string { return hostIfcs.describe() }

// laneCount returns the number of per-plane write lanes the configured
// model needs, clamped so every plane keeps enough non-active blocks
// for GC to make progress (each lane pins one active block per plane).
func laneCount(p *DeviceParams, blocksPerPlane int32) int {
	lanes := 1
	switch p.HostIfcModel {
	case IfcMultiStream:
		lanes = p.WriteStreams
	case IfcZNS:
		lanes = p.MaxOpenZones
	}
	if max := int(blocksPerPlane) / 4; lanes > max {
		lanes = max
	}
	if lanes < 1 {
		lanes = 1
	}
	return lanes
}

// znsState is the zoned-namespace bookkeeping over the folded logical
// space: per-zone write pointers and the open-zone slot table that maps
// zones onto write lanes. Slots are recycled in FIFO (round-robin)
// order when a write opens a zone beyond MaxOpenZones.
type znsState struct {
	zonePages  int64   // folded logical pages per zone
	wp         []int64 // per-zone write pointer (page offset into the zone)
	slotOfZone []int16 // zone -> open lane slot, -1 when closed
	zoneOfSlot []int64 // lane slot -> zone currently holding it, -1 when empty
	nextSlot   int     // FIFO recycle cursor
	violations int64   // writes below the zone write pointer
	resets     int64   // full-zone TRIMs observed (reset-as-erase)
}

// newZNSState sizes zones on the scaled device: the configured zone
// size is folded by capScale like every address, and clamped to at
// least one simulated erase block (a zone is never smaller than the
// erase unit it maps onto).
func newZNSState(p *DeviceParams, logicalPages, capScale int64, pagesPerBlock int32, lanes int) *znsState {
	zonePages := (int64(p.ZoneSizeMB) << 20 / int64(p.PageSizeBytes)) / capScale
	if zonePages < int64(pagesPerBlock) {
		zonePages = int64(pagesPerBlock)
	}
	zones := (logicalPages + zonePages - 1) / zonePages
	z := &znsState{
		zonePages:  zonePages,
		wp:         make([]int64, zones),
		slotOfZone: make([]int16, zones),
		zoneOfSlot: make([]int64, lanes),
	}
	for i := range z.slotOfZone {
		z.slotOfZone[i] = -1
	}
	for i := range z.zoneOfSlot {
		z.zoneOfSlot[i] = -1
	}
	return z
}

func (z *znsState) zoneOf(lp int64) int64 { return lp / z.zonePages }

// slotFor returns the zone's open lane slot, opening the zone (and
// implicitly closing the slot's previous tenant) when needed.
func (z *znsState) slotFor(zone int64) int32 {
	if s := z.slotOfZone[zone]; s >= 0 {
		return int32(s)
	}
	s := z.nextSlot
	z.nextSlot = (z.nextSlot + 1) % len(z.zoneOfSlot)
	if old := z.zoneOfSlot[s]; old >= 0 {
		z.slotOfZone[old] = -1
	}
	z.zoneOfSlot[s] = zone
	z.slotOfZone[zone] = int16(s)
	return int32(s)
}

// noteWrite advances the zone write pointer for a host write of lp and
// reports whether the write violates the pointer. Appends at or past
// the pointer advance it (capScale folding can legitimately skip
// forward); a rewrite of the frontier page (wp-1) is tolerated because
// folding collapses adjacent real pages onto it; anything further below
// the pointer is a violation the engine charges a reclaim penalty for.
func (z *znsState) noteWrite(lp int64) (violation bool) {
	zi := lp / z.zonePages
	off := lp % z.zonePages
	switch {
	case off >= z.wp[zi]:
		z.wp[zi] = off + 1
	case off >= z.wp[zi]-1:
		// frontier rewrite: folded duplicate, tolerated
	default:
		z.violations++
		return true
	}
	return false
}

// noteTrim applies reset-as-erase: every zone fully covered by the
// trimmed span [firstLP, firstLP+nPages) has its write pointer reset.
// The per-page invalidation (stale-page accounting, GC credit) is done
// separately by ftl.trimPage.
func (z *znsState) noteTrim(firstLP, nPages int64) {
	zones := int64(len(z.wp))
	firstZone := (firstLP + z.zonePages - 1) / z.zonePages
	endZone := (firstLP + nPages) / z.zonePages // exclusive
	for zi := firstZone; zi < endZone; zi++ {
		i := zi % zones
		if z.wp[i] != 0 {
			z.wp[i] = 0
			z.resets++
		}
	}
}

// reset clears the measurement-phase write-pointer state. The engine
// calls it between the warm-up and measured sweeps: both sweeps replay
// the same trace, so carrying warm-up pointers over would turn every
// measured write into a stale rewrite. Slot assignments are kept —
// they are placement state, like block occupancy.
func (z *znsState) reset() {
	for i := range z.wp {
		z.wp[i] = 0
	}
	z.violations, z.resets = 0, 0
}
