package ssd

import (
	"context"
	"testing"
	"time"

	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

func TestHostIfcRegistry(t *testing.T) {
	names := HostIfcNames()
	want := []string{"conventional", "zns", "multistream"}
	if len(names) != len(want) {
		t.Fatalf("HostIfcNames = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("HostIfcNames[%d] = %q, want %q", i, names[i], n)
		}
		got, err := ParseHostIfc(n)
		if err != nil {
			t.Fatalf("ParseHostIfc(%q): %v", n, err)
		}
		if got != HostIfc(i) || got.String() != n {
			t.Fatalf("ParseHostIfc(%q) = %d (%q), want %d", n, got, got.String(), i)
		}
	}
	if _, err := ParseHostIfc("open-channel"); err == nil {
		t.Fatal("ParseHostIfc accepted an unknown model")
	}
	if DescribeHostIfcs() == "" {
		t.Fatal("DescribeHostIfcs is empty")
	}
}

func TestLaneCount(t *testing.T) {
	p := DefaultParams()
	p.WriteStreams, p.MaxOpenZones = 4, 8
	cases := []struct {
		model HostIfc
		bpp   int32
		want  int
	}{
		{IfcConventional, 64, 1},
		{IfcMultiStream, 64, 4},
		{IfcZNS, 64, 8},
		{IfcZNS, 16, 4},        // clamped to bpp/4
		{IfcMultiStream, 4, 1}, // never below one lane
	}
	for _, c := range cases {
		p.HostIfcModel = c.model
		if got := laneCount(&p, c.bpp); got != c.want {
			t.Fatalf("laneCount(%s, bpp=%d) = %d, want %d", c.model, c.bpp, got, c.want)
		}
	}
}

// testZNSState builds a znsState directly (bypassing device geometry)
// so write-pointer transitions can be tested exhaustively.
func testZNSState(zones int, zonePages int64, slots int) *znsState {
	z := &znsState{
		zonePages:  zonePages,
		wp:         make([]int64, zones),
		slotOfZone: make([]int16, zones),
		zoneOfSlot: make([]int64, slots),
	}
	for i := range z.slotOfZone {
		z.slotOfZone[i] = -1
	}
	for i := range z.zoneOfSlot {
		z.zoneOfSlot[i] = -1
	}
	return z
}

func TestZNSWritePointer(t *testing.T) {
	z := testZNSState(4, 8, 2)
	for lp := int64(0); lp < 8; lp++ {
		if z.noteWrite(lp) {
			t.Fatalf("sequential append at lp %d flagged as violation", lp)
		}
	}
	if z.wp[0] != 8 {
		t.Fatalf("wp[0] = %d after filling zone 0, want 8", z.wp[0])
	}
	if z.noteWrite(7) {
		t.Fatal("frontier rewrite (wp-1) must be tolerated, capScale folds neighbors onto it")
	}
	if z.noteWrite(3) != true || z.violations != 1 {
		t.Fatalf("rewrite below wp-1 must count one violation, got %d", z.violations)
	}
	if z.wp[0] != 8 {
		t.Fatalf("violating write moved wp[0] to %d", z.wp[0])
	}
	// capScale folding may skip pages forward: an append past the
	// pointer is legal and advances it to just past the write.
	if z.noteWrite(8+3) || z.wp[1] != 4 {
		t.Fatalf("skip-forward append: violations=%d wp[1]=%d, want 0 and 4", z.violations-1, z.wp[1])
	}

	// Full-zone trim is a zone reset; a partial trim is not.
	z.noteTrim(0, 8)
	if z.wp[0] != 0 || z.resets != 1 {
		t.Fatalf("full-zone trim: wp[0]=%d resets=%d, want 0 and 1", z.wp[0], z.resets)
	}
	z.noteTrim(8, 4)
	if z.wp[1] != 4 || z.resets != 1 {
		t.Fatalf("partial trim must not reset: wp[1]=%d resets=%d", z.wp[1], z.resets)
	}

	z.slotFor(0)
	z.reset()
	if z.wp[1] != 0 || z.violations != 0 || z.resets != 0 {
		t.Fatalf("reset left wp[1]=%d violations=%d resets=%d", z.wp[1], z.violations, z.resets)
	}
	if z.slotOfZone[0] < 0 {
		t.Fatal("reset must keep slot assignments (placement state)")
	}
}

func TestZNSSlotRecyclingFIFO(t *testing.T) {
	z := testZNSState(4, 8, 2)
	if s := z.slotFor(0); s != 0 {
		t.Fatalf("first open got slot %d, want 0", s)
	}
	if s := z.slotFor(1); s != 1 {
		t.Fatalf("second open got slot %d, want 1", s)
	}
	if s := z.slotFor(2); s != 0 {
		t.Fatalf("third open should recycle slot 0, got %d", s)
	}
	if z.slotOfZone[0] != -1 {
		t.Fatal("recycling slot 0 must close its previous tenant (zone 0)")
	}
	if s := z.slotFor(0); s != 1 {
		t.Fatalf("reopening zone 0 should take slot 1, got %d", s)
	}
	if s := z.slotFor(2); s != 0 {
		t.Fatalf("zone 2 is still open on slot 0, got %d", s)
	}
}

// auditZones checks ZNS bookkeeping invariants: write pointers within
// zone bounds and the open-slot table being a consistent partial
// bijection. No-op for other interface models.
func auditZones(t *testing.T, label string, f *ftl) {
	t.Helper()
	z := f.zns
	if z == nil {
		return
	}
	if z.zonePages < int64(f.pagesPerBlock) {
		t.Fatalf("%s: zonePages %d below erase-block size %d", label, z.zonePages, f.pagesPerBlock)
	}
	for zi, wp := range z.wp {
		if wp < 0 || wp > z.zonePages {
			t.Fatalf("%s: zone %d write pointer %d out of [0, %d]", label, zi, wp, z.zonePages)
		}
	}
	for s, zone := range z.zoneOfSlot {
		if zone >= 0 && z.slotOfZone[zone] != int16(s) {
			t.Fatalf("%s: slot %d claims zone %d but zone maps to slot %d", label, s, zone, z.slotOfZone[zone])
		}
	}
	for zone, s := range z.slotOfZone {
		if s >= 0 && z.zoneOfSlot[s] != int64(zone) {
			t.Fatalf("%s: zone %d claims slot %d but slot holds zone %d", label, zone, s, z.zoneOfSlot[s])
		}
	}
}

// auditStreamIsolation verifies the multi-stream placement guarantee:
// every live flash page sits in a block of its stream's lane. A
// mismatch is legal only while a newer copy of the page is still in the
// data cache — the flash copy predates a stream retag and dies at the
// pending flush. No-op for other interface models.
func auditStreamIsolation(t *testing.T, label string, e *engine) {
	t.Helper()
	f := e.ftl
	if f.streamOf == nil {
		return
	}
	for pi := range f.planes {
		fp := &f.planes[pi]
		for bi := range fp.blocks {
			blk := &fp.blocks[bi]
			for slot := int32(0); slot < blk.writePtr; slot++ {
				lp := blk.pages[slot]
				if lp < 0 {
					continue
				}
				want := int32(int(f.streamOf[lp]) % f.lanes)
				if want == blk.lane {
					continue
				}
				if _, cached := e.cache.entries[int64(lp)]; cached {
					continue
				}
				t.Fatalf("%s: lp %d (stream %d, lane %d) live in plane %d block %d of lane %d",
					label, lp, f.streamOf[lp], want, pi, bi, blk.lane)
			}
		}
	}
}

func TestMultiStreamIsolation(t *testing.T) {
	p := smallDevice()
	p.HostIfcModel = IfcMultiStream
	p.WriteStreams = 4
	tr := workload.MustGenerate(workload.FIU,
		workload.Options{Requests: 8000, Seed: 5, Streams: 4, TrimRatio: 0.05})
	eng, err := newEngine(&p)
	if err != nil {
		t.Fatal(err)
	}
	if eng.ftl.lanes != 4 {
		t.Fatalf("multi-stream device has %d lanes, want 4", eng.ftl.lanes)
	}
	src := tr.Source()
	if _, err := eng.warmup(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	src.Reset()
	if _, err := eng.run(context.Background(), src); err != nil {
		t.Fatal(err)
	}
	auditFTL(t, "multistream", eng.ftl)
	auditStreamIsolation(t, "multistream", eng)
	lanesUsed := make(map[int32]bool)
	for pi := range eng.ftl.planes {
		fp := &eng.ftl.planes[pi]
		for bi := range fp.blocks {
			if fp.blocks[bi].valid > 0 {
				lanesUsed[fp.blocks[bi].lane] = true
			}
		}
	}
	if len(lanesUsed) < 2 {
		t.Fatalf("tagged workload used %d lanes, want several", len(lanesUsed))
	}
}

// TestZNSSimViolationsAndResets drives a ZNS device with a hand-built
// trace: a full sequential fill of zone 0 (clean appends), one rewrite
// below the zone write pointer (a violation), and a full-zone TRIM (a
// zone reset). The Result counters must see exactly those events.
func TestZNSSimViolationsAndResets(t *testing.T) {
	p := smallDevice()
	p.HostIfcModel = IfcZNS
	p.ZoneSizeMB = 1 // many zones on the small test device
	probe, err := newEngine(&p)
	if err != nil {
		t.Fatal(err)
	}
	z := probe.ftl.zns
	spp := probe.ftl.sectorsPerPage
	scale := probe.ftl.capScale
	step := uint64(spp * scale) // LBA stride between folded pages
	zp := z.zonePages
	if zp >= probe.ftl.logicalPages {
		t.Fatalf("zone (%d pages) should be smaller than the device (%d pages)", zp, probe.ftl.logicalPages)
	}

	var reqs []trace.Request
	add := func(op trace.Op, lp int64, sectors uint32) {
		reqs = append(reqs, trace.Request{
			Arrival: time.Duration(len(reqs)) * time.Microsecond,
			LBA:     uint64(lp) * step, Sectors: sectors, Op: op,
		})
	}
	for lp := int64(0); lp < zp; lp++ {
		add(trace.Write, lp, uint32(spp))
	}
	add(trace.Write, 2, uint32(spp))            // below wp: violation
	add(trace.Trim, 0, uint32(uint64(zp)*step)) // covers zone 0: reset
	add(trace.Write, 0, uint32(spp))            // clean append after reset

	sim, err := NewSimulator(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(&trace.Trace{Name: "zns-script", Requests: reqs})
	if err != nil {
		t.Fatal(err)
	}
	if res.WPViolations != 1 {
		t.Fatalf("WPViolations = %d, want 1", res.WPViolations)
	}
	if res.ZoneResets != 1 {
		t.Fatalf("ZoneResets = %d, want 1", res.ZoneResets)
	}
	if res.UserTrims != 1 {
		t.Fatalf("UserTrims = %d, want 1", res.UserTrims)
	}
	if res.TrimmedPages == 0 {
		t.Fatal("full-zone TRIM invalidated no pages")
	}
}

func TestTrimAccountingConventional(t *testing.T) {
	p := smallDevice()
	tr := workload.MustGenerate(workload.FIU,
		workload.Options{Requests: 6000, Seed: 9, TrimRatio: 0.2})
	res := runTrace(t, p, tr)
	if res.UserTrims == 0 {
		t.Fatal("trim-heavy workload produced no UserTrims")
	}
	if res.TrimmedPages == 0 {
		t.Fatal("trims invalidated no mapped pages")
	}
	if res.WPViolations != 0 || res.ZoneResets != 0 {
		t.Fatalf("conventional device reported ZNS counters: %d violations, %d resets",
			res.WPViolations, res.ZoneResets)
	}
}

func benchSimIfc(b *testing.B, model HostIfc) {
	p := DefaultParams()
	p.HostIfcModel = model
	sim, err := NewSimulator(p)
	if err != nil {
		b.Fatal(err)
	}
	opt := workload.Options{Requests: 50_000, Seed: 11, TrimRatio: 0.05, Streams: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunSource(workload.MustSource(workload.Database, opt)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimZNS(b *testing.B)         { benchSimIfc(b, IfcZNS) }
func BenchmarkSimMultiStream(b *testing.B) { benchSimIfc(b, IfcMultiStream) }
