package ssd

import (
	"testing"

	"autoblox/internal/workload"
)

// auditFTL checks the FTL conservation invariants after arbitrary churn:
// every mapped logical page is live in exactly one physical slot, every
// live slot is the one its mapping points at, per-block valid counters
// match a recount, and no counter went negative.
func auditFTL(t *testing.T, label string, f *ftl) {
	t.Helper()
	liveCount := make(map[int32]int32)
	var totalValid int64
	for pi := range f.planes {
		fp := &f.planes[pi]
		for bi := range fp.blocks {
			blk := &fp.blocks[bi]
			if blk.valid < 0 {
				t.Fatalf("%s: plane %d block %d valid = %d", label, pi, bi, blk.valid)
			}
			if blk.writePtr < 0 || blk.writePtr > f.pagesPerBlock {
				t.Fatalf("%s: plane %d block %d writePtr = %d", label, pi, bi, blk.writePtr)
			}
			totalValid += int64(blk.valid)
			var recount int32
			for slot := int32(0); slot < blk.writePtr; slot++ {
				lp := blk.pages[slot]
				if lp < 0 {
					continue
				}
				recount++
				liveCount[lp]++
				if f.mapping[lp] != packPPA(planeID(pi), int32(bi), slot) {
					t.Fatalf("%s: lp %d live in plane %d block %d slot %d but mapping disagrees", label, lp, pi, bi, slot)
				}
			}
			if recount != blk.valid {
				t.Fatalf("%s: plane %d block %d valid = %d but recount = %d", label, pi, bi, blk.valid, recount)
			}
		}
	}
	var mapped int64
	for lp, ppa := range f.mapping {
		if ppa == unmapped {
			if liveCount[int32(lp)] != 0 {
				t.Fatalf("%s: unmapped lp %d has %d live copies", label, lp, liveCount[int32(lp)])
			}
			continue
		}
		mapped++
		if liveCount[int32(lp)] != 1 {
			t.Fatalf("%s: lp %d has %d live copies, want exactly 1", label, lp, liveCount[int32(lp)])
		}
	}
	if mapped != totalValid {
		t.Fatalf("%s: %d mapped logical pages but %d valid physical pages", label, mapped, totalValid)
	}
}

func eraseCounts(f *ftl) [][]int32 {
	out := make([][]int32, len(f.planes))
	for pi := range f.planes {
		fp := &f.planes[pi]
		out[pi] = make([]int32, len(fp.blocks))
		for bi := range fp.blocks {
			out[pi][bi] = fp.blocks[bi].eraseCount
		}
	}
	return out
}

// TestFTLConservationInvariants replays a mixed read/write trace on a
// GC-pressured device under every (GC policy × cache policy × alloc
// scheme) combination, then audits that no logical page was lost or
// duplicated and that erase counts only ever grew.
func TestFTLConservationInvariants(t *testing.T) {
	tr := workload.MustGenerate(workload.FIU, workload.Options{Requests: 2500, Seed: 11})
	schemes := AllocSchemeNames()
	if testing.Short() {
		schemes = schemes[:4] // 48 combinations instead of 192
	}
	for gi := range GCPolicyNames() {
		for ci := range CachePolicyNames() {
			for si := range schemes {
				p := smallDevice()
				p.GCPolicy = GCPolicy(gi)
				p.CachePolicy = CachePolicy(ci)
				p.PlaneAllocScheme = AllocScheme(si)
				label := p.GCPolicy.String() + "/" + p.CachePolicy.String() + "/" + p.PlaneAllocScheme.String()
				eng, err := newEngine(&p)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				src := tr.Source()
				if _, err := eng.warmup(src); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				auditFTL(t, label+"/warm", eng.ftl)
				before := eraseCounts(eng.ftl)
				src.Reset()
				if _, err := eng.run(src); err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				auditFTL(t, label, eng.ftl)
				after := eraseCounts(eng.ftl)
				for pi := range after {
					for bi := range after[pi] {
						if after[pi][bi] < before[pi][bi] {
							t.Fatalf("%s: plane %d block %d erase count went %d -> %d", label, pi, bi, before[pi][bi], after[pi][bi])
						}
					}
				}
			}
		}
	}
}
