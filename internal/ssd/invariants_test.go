package ssd

import (
	"context"
	"testing"

	"autoblox/internal/workload"
)

// auditFTL checks the FTL conservation invariants after arbitrary churn:
// every mapped logical page is live in exactly one physical slot, every
// live slot is the one its mapping points at, per-block valid counters
// match a recount, and no counter went negative.
func auditFTL(t *testing.T, label string, f *ftl) {
	t.Helper()
	liveCount := make(map[int32]int32)
	var totalValid int64
	for pi := range f.planes {
		fp := &f.planes[pi]
		for bi := range fp.blocks {
			blk := &fp.blocks[bi]
			if blk.valid < 0 {
				t.Fatalf("%s: plane %d block %d valid = %d", label, pi, bi, blk.valid)
			}
			if blk.writePtr < 0 || blk.writePtr > f.pagesPerBlock {
				t.Fatalf("%s: plane %d block %d writePtr = %d", label, pi, bi, blk.writePtr)
			}
			totalValid += int64(blk.valid)
			var recount int32
			for slot := int32(0); slot < blk.writePtr; slot++ {
				lp := blk.pages[slot]
				if lp < 0 {
					continue
				}
				recount++
				liveCount[lp]++
				if f.mapping[lp] != packPPA(planeID(pi), int32(bi), slot) {
					t.Fatalf("%s: lp %d live in plane %d block %d slot %d but mapping disagrees", label, lp, pi, bi, slot)
				}
			}
			if recount != blk.valid {
				t.Fatalf("%s: plane %d block %d valid = %d but recount = %d", label, pi, bi, blk.valid, recount)
			}
		}
	}
	var mapped int64
	for lp, ppa := range f.mapping {
		if ppa == unmapped {
			if liveCount[int32(lp)] != 0 {
				t.Fatalf("%s: unmapped lp %d has %d live copies", label, lp, liveCount[int32(lp)])
			}
			continue
		}
		mapped++
		if liveCount[int32(lp)] != 1 {
			t.Fatalf("%s: lp %d has %d live copies, want exactly 1", label, lp, liveCount[int32(lp)])
		}
	}
	if mapped != totalValid {
		t.Fatalf("%s: %d mapped logical pages but %d valid physical pages", label, mapped, totalValid)
	}
}

func eraseCounts(f *ftl) [][]int32 {
	out := make([][]int32, len(f.planes))
	for pi := range f.planes {
		fp := &f.planes[pi]
		out[pi] = make([]int32, len(fp.blocks))
		for bi := range fp.blocks {
			out[pi][bi] = fp.blocks[bi].eraseCount
		}
	}
	return out
}

// sweepPolicyMatrix replays a mixed read/write/trim trace (with stream
// tags) on a GC-pressured device under every (host interface × GC
// policy × cache policy × alloc scheme) combination, audits that no
// logical page was lost or duplicated and that erase counts only ever
// grew, and — with faults enabled — that retired blocks stay off the
// free lists. Model-specific audits ride along: zone write-pointer
// bounds for ZNS, per-lane stream isolation for multi-stream.
func sweepPolicyMatrix(t *testing.T, faults FaultProfile, tweak func(*DeviceParams)) {
	tr := workload.MustGenerate(workload.FIU,
		workload.Options{Requests: 2500, Seed: 11, TrimRatio: 0.08, Streams: 3})
	schemes := AllocSchemeNames()
	if testing.Short() {
		schemes = schemes[:4] // 144 combinations instead of 576
	}
	for ii := range HostIfcNames() {
		for gi := range GCPolicyNames() {
			for ci := range CachePolicyNames() {
				for si := range schemes {
					p := smallDevice()
					p.HostIfcModel = HostIfc(ii)
					p.ZoneSizeMB = 1 // many zones on the small test device
					p.MaxOpenZones = 4
					p.WriteStreams = 3
					p.GCPolicy = GCPolicy(gi)
					p.CachePolicy = CachePolicy(ci)
					p.PlaneAllocScheme = AllocScheme(si)
					p.Faults = faults
					if tweak != nil {
						tweak(&p)
					}
					label := p.HostIfcModel.String() + "/" + p.GCPolicy.String() + "/" + p.CachePolicy.String() + "/" + p.PlaneAllocScheme.String()
					eng, err := newEngine(&p)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					src := tr.Source()
					if _, err := eng.warmup(context.Background(), src); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					auditFTL(t, label+"/warm", eng.ftl)
					before := eraseCounts(eng.ftl)
					src.Reset()
					if _, err := eng.run(context.Background(), src); err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					auditFTL(t, label, eng.ftl)
					after := eraseCounts(eng.ftl)
					for pi := range after {
						for bi := range after[pi] {
							if after[pi][bi] < before[pi][bi] {
								t.Fatalf("%s: plane %d block %d erase count went %d -> %d", label, pi, bi, before[pi][bi], after[pi][bi])
							}
						}
					}
					auditRetired(t, label, eng.ftl)
					auditZones(t, label, eng.ftl)
					auditStreamIsolation(t, label, eng)
				}
			}
		}
	}
}

// auditRetired verifies retired blocks never reappear on a free list or
// as an active block.
func auditRetired(t *testing.T, label string, f *ftl) {
	t.Helper()
	for pi := range f.planes {
		fp := &f.planes[pi]
		for _, a := range fp.actives {
			if a >= 0 && fp.blocks[a].retired {
				t.Fatalf("%s: plane %d active block %d is retired", label, pi, a)
			}
		}
		for _, b := range fp.freeList {
			if fp.blocks[b].retired {
				t.Fatalf("%s: plane %d retired block %d on free list", label, pi, b)
			}
		}
	}
}

func TestFTLConservationInvariants(t *testing.T) {
	sweepPolicyMatrix(t, FaultProfile{}, nil)
}

// TestFTLConservationInvariantsWithFaults re-runs the full policy
// matrix with program/erase/read faults injected: conservation and
// erase monotonicity must survive slot-wasting program failures,
// bad-block retirement and read-retry churn.
func TestFTLConservationInvariantsWithFaults(t *testing.T) {
	sweepPolicyMatrix(t, FaultProfile{Rate: 0.01, Seed: 7}, nil)
}

// TestFTLConservationInvariantsWithDieFailure adds a failed die on top
// of the fault rate, exercising the plane-remapping path. The device
// gets more dies and a lower occupancy than smallDevice: losing one of
// smallDevice's four dies removes more capacity than its 8%
// over-provisioning covers, which is (correctly) ErrOutOfSpace.
func TestFTLConservationInvariantsWithDieFailure(t *testing.T) {
	sweepPolicyMatrix(t, FaultProfile{Rate: 0.005, Seed: 3, DieFailures: 1}, func(p *DeviceParams) {
		p.DiesPerChip = 2
		p.InitialOccupancyFrac = 0.4
	})
}
