package ssd

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"
)

// JSON (de)serialization of DeviceParams, used by cmd/ssdsim to load
// custom device files and by AutoDB consumers who want to export learned
// configurations. Durations are expressed in microseconds and sizes in
// MB, matching how the paper (and SSD spec sheets) quote them.

// deviceJSON is the stable on-disk schema.
type deviceJSON struct {
	Channels        int `json:"channels"`
	ChipsPerChannel int `json:"chips_per_channel"`
	DiesPerChip     int `json:"dies_per_chip"`
	PlanesPerDie    int `json:"planes_per_die"`
	BlocksPerPlane  int `json:"blocks_per_plane"`
	PagesPerBlock   int `json:"pages_per_block"`
	PageSizeBytes   int `json:"page_size_bytes"`

	FlashType       string  `json:"flash_type"`
	ReadLatencyUS   float64 `json:"read_latency_us"`
	ProgramUS       float64 `json:"program_latency_us"`
	EraseUS         float64 `json:"erase_latency_us"`
	SuspendProgUS   float64 `json:"suspend_program_us"`
	SuspendEraseUS  float64 `json:"suspend_erase_us"`
	SuspendEnabled  bool    `json:"suspend_enabled"`
	ChannelMTps     float64 `json:"channel_mtps"`
	ChannelWidthBit int     `json:"channel_width_bit"`

	DataCacheMB        int64   `json:"data_cache_mb"`
	CMTMB              int64   `json:"cmt_mb"`
	CMTEntryBytes      int     `json:"cmt_entry_bytes"`
	MappingGranularity int     `json:"mapping_granularity"`
	CacheLineKB        int     `json:"cache_line_kb"`
	CachePolicy        string  `json:"cache_policy"`
	ReadCacheEnabled   bool    `json:"read_cache_enabled"`
	ControllerMHz      int     `json:"controller_mhz"`
	DRAMMHz            int     `json:"dram_mhz"`
	DRAMBusBits        int     `json:"dram_bus_bits"`
	ECCUS              float64 `json:"ecc_latency_us"`
	FirmwareUS         float64 `json:"firmware_overhead_us"`

	Interface    string  `json:"interface"`
	HostIfcModel string  `json:"host_ifc,omitempty"`
	ZoneSizeMB   int     `json:"zone_size_mb,omitempty"`
	MaxOpenZones int     `json:"max_open_zones,omitempty"`
	WriteStreams int     `json:"write_streams,omitempty"`
	QueueDepth   int     `json:"queue_depth"`
	QueueCount   int     `json:"queue_count"`
	PCIeLanes    int     `json:"pcie_lanes"`
	PCIeLaneMBps float64 `json:"pcie_lane_mbps"`

	OverprovisionRatio   float64 `json:"overprovision_ratio"`
	GCThresholdPct       float64 `json:"gc_threshold_pct"`
	GCPolicy             string  `json:"gc_policy"`
	CopybackEnabled      bool    `json:"copyback_enabled"`
	StaticWearLeveling   bool    `json:"static_wear_leveling"`
	WearLevelingThresh   int     `json:"wear_leveling_threshold"`
	DynamicWearLeveling  bool    `json:"dynamic_wear_leveling"`
	PlaneAllocScheme     string  `json:"plane_alloc_scheme"`
	WriteBufferFlushPct  float64 `json:"write_buffer_flush_pct"`
	PageMetadataBytes    int     `json:"page_metadata_bytes"`
	BadBlockPct          float64 `json:"bad_block_pct"`
	ReadRetryLimit       int     `json:"read_retry_limit"`
	IOMergingEnabled     bool    `json:"io_merging_enabled"`
	TransactionSchedOOO  bool    `json:"transaction_sched_ooo"`
	InitialOccupancyFrac float64 `json:"initial_occupancy_frac"`

	// Fault injection; omitted when disabled so fault-free device files
	// keep their historical byte layout.
	FaultRate        float64 `json:"fault_rate,omitempty"`
	FaultSeed        int64   `json:"fault_seed,omitempty"`
	FaultDieFailures int     `json:"fault_die_failures,omitempty"`
}

// us converts microseconds to a Duration, rounding to the nearest
// nanosecond: truncation would turn e.g. 3ns → 0.003µs → 2.999…µs→ 2ns
// and break the decode→encode→decode fixed point FuzzParamsJSON pins.
func us(v float64) time.Duration { return time.Duration(math.Round(v * 1000)) }

// MarshalJSONParams serializes a device configuration.
func MarshalJSONParams(p DeviceParams) ([]byte, error) {
	j := deviceJSON{
		Channels: p.Channels, ChipsPerChannel: p.ChipsPerChannel,
		DiesPerChip: p.DiesPerChip, PlanesPerDie: p.PlanesPerDie,
		BlocksPerPlane: p.BlocksPerPlane, PagesPerBlock: p.PagesPerBlock,
		PageSizeBytes: p.PageSizeBytes,

		FlashType:      p.FlashType.String(),
		ReadLatencyUS:  float64(p.ReadLatency) / float64(time.Microsecond),
		ProgramUS:      float64(p.ProgramLatency) / float64(time.Microsecond),
		EraseUS:        float64(p.EraseLatency) / float64(time.Microsecond),
		SuspendProgUS:  float64(p.SuspendProgram) / float64(time.Microsecond),
		SuspendEraseUS: float64(p.SuspendErase) / float64(time.Microsecond),
		SuspendEnabled: p.SuspendEnabled,
		ChannelMTps:    p.ChannelMTps, ChannelWidthBit: p.ChannelWidthBit,

		DataCacheMB: p.DataCacheBytes >> 20, CMTMB: p.CMTBytes >> 20,
		CMTEntryBytes: p.CMTEntryBytes, MappingGranularity: p.MappingGranularity,
		CacheLineKB: p.CacheLineBytes >> 10, CachePolicy: p.CachePolicy.String(),
		ReadCacheEnabled: p.ReadCacheEnabled, ControllerMHz: p.ControllerMHz,
		DRAMMHz: p.DRAMMHz, DRAMBusBits: p.DRAMBusBits,
		ECCUS:      float64(p.ECCLatency) / float64(time.Microsecond),
		FirmwareUS: float64(p.FirmwareOverhead) / float64(time.Microsecond),

		Interface: p.HostInterface.String(), HostIfcModel: p.HostIfcModel.String(),
		ZoneSizeMB: p.ZoneSizeMB, MaxOpenZones: p.MaxOpenZones, WriteStreams: p.WriteStreams,
		QueueDepth: p.QueueDepth,
		QueueCount: p.QueueCount, PCIeLanes: p.PCIeLanes, PCIeLaneMBps: p.PCIeLaneMBps,

		OverprovisionRatio: p.OverprovisionRatio, GCThresholdPct: p.GCThresholdPct,
		GCPolicy: p.GCPolicy.String(), CopybackEnabled: p.CopybackEnabled,
		StaticWearLeveling: p.StaticWearLeveling, WearLevelingThresh: p.WearLevelingThresh,
		DynamicWearLeveling: p.DynamicWearLeveling, PlaneAllocScheme: p.PlaneAllocScheme.String(),
		WriteBufferFlushPct: p.WriteBufferFlushPct, PageMetadataBytes: p.PageMetadataBytes,
		BadBlockPct: p.BadBlockPct, ReadRetryLimit: p.ReadRetryLimit,
		IOMergingEnabled: p.IOMergingEnabled, TransactionSchedOOO: p.TransactionSchedOOO,
		InitialOccupancyFrac: p.InitialOccupancyFrac,

		FaultRate: p.Faults.Rate, FaultSeed: p.Faults.Seed,
		FaultDieFailures: p.Faults.DieFailures,
	}
	return json.MarshalIndent(j, "", "  ")
}

// UnmarshalJSONParams parses a device configuration and validates it.
func UnmarshalJSONParams(data []byte) (DeviceParams, error) {
	var j deviceJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return DeviceParams{}, fmt.Errorf("ssd: parse device json: %w", err)
	}
	p := DeviceParams{
		Channels: j.Channels, ChipsPerChannel: j.ChipsPerChannel,
		DiesPerChip: j.DiesPerChip, PlanesPerDie: j.PlanesPerDie,
		BlocksPerPlane: j.BlocksPerPlane, PagesPerBlock: j.PagesPerBlock,
		PageSizeBytes: j.PageSizeBytes,

		ReadLatency: us(j.ReadLatencyUS), ProgramLatency: us(j.ProgramUS),
		EraseLatency: us(j.EraseUS), SuspendProgram: us(j.SuspendProgUS),
		SuspendErase: us(j.SuspendEraseUS), SuspendEnabled: j.SuspendEnabled,
		ChannelMTps: j.ChannelMTps, ChannelWidthBit: j.ChannelWidthBit,

		DataCacheBytes: j.DataCacheMB << 20, CMTBytes: j.CMTMB << 20,
		CMTEntryBytes: j.CMTEntryBytes, MappingGranularity: j.MappingGranularity,
		CacheLineBytes: j.CacheLineKB << 10, ReadCacheEnabled: j.ReadCacheEnabled,
		ControllerMHz: j.ControllerMHz, DRAMMHz: j.DRAMMHz, DRAMBusBits: j.DRAMBusBits,
		ECCLatency: us(j.ECCUS), FirmwareOverhead: us(j.FirmwareUS),

		ZoneSizeMB: j.ZoneSizeMB, MaxOpenZones: j.MaxOpenZones,
		WriteStreams: j.WriteStreams,
		QueueDepth:   j.QueueDepth, QueueCount: j.QueueCount,
		PCIeLanes: j.PCIeLanes, PCIeLaneMBps: j.PCIeLaneMBps,

		OverprovisionRatio: j.OverprovisionRatio, GCThresholdPct: j.GCThresholdPct,
		CopybackEnabled: j.CopybackEnabled, StaticWearLeveling: j.StaticWearLeveling,
		WearLevelingThresh: j.WearLevelingThresh, DynamicWearLeveling: j.DynamicWearLeveling,
		WriteBufferFlushPct: j.WriteBufferFlushPct, PageMetadataBytes: j.PageMetadataBytes,
		BadBlockPct: j.BadBlockPct, ReadRetryLimit: j.ReadRetryLimit,
		IOMergingEnabled: j.IOMergingEnabled, TransactionSchedOOO: j.TransactionSchedOOO,
		InitialOccupancyFrac: j.InitialOccupancyFrac,

		Faults: FaultProfile{Rate: j.FaultRate, Seed: j.FaultSeed, DieFailures: j.FaultDieFailures},
	}
	// Enum fields resolve through the policy registry: empty strings keep
	// the lenient defaults (MLC, NVMe, LRU, greedy, CWDP, conventional)
	// and unknown names error instead of silently defaulting. The
	// host-interface model numerics default likewise, so pre-existing
	// device files that omit them keep parsing.
	p.FlashType, p.HostInterface = MLC, NVMe
	p.CachePolicy, p.GCPolicy = CacheLRU, GCGreedy
	p.HostIfcModel = IfcConventional
	if p.ZoneSizeMB == 0 {
		p.ZoneSizeMB = 256
	}
	if p.MaxOpenZones == 0 {
		p.MaxOpenZones = 8
	}
	if p.WriteStreams == 0 {
		p.WriteStreams = 4
	}
	var err error
	if j.FlashType != "" {
		if p.FlashType, err = ParseFlashType(j.FlashType); err != nil {
			return DeviceParams{}, err
		}
	}
	if j.Interface != "" {
		if p.HostInterface, err = ParseInterface(j.Interface); err != nil {
			return DeviceParams{}, err
		}
	}
	if j.CachePolicy != "" {
		if p.CachePolicy, err = ParseCachePolicy(j.CachePolicy); err != nil {
			return DeviceParams{}, err
		}
	}
	if j.GCPolicy != "" {
		if p.GCPolicy, err = ParseGCPolicy(j.GCPolicy); err != nil {
			return DeviceParams{}, err
		}
	}
	if j.PlaneAllocScheme != "" {
		if p.PlaneAllocScheme, err = ParseAllocScheme(j.PlaneAllocScheme); err != nil {
			return DeviceParams{}, err
		}
	}
	if j.HostIfcModel != "" {
		if p.HostIfcModel, err = ParseHostIfc(j.HostIfcModel); err != nil {
			return DeviceParams{}, err
		}
	}
	if err := p.Validate(); err != nil {
		return DeviceParams{}, err
	}
	return p, nil
}

// LoadParams reads a device configuration from a JSON file.
func LoadParams(path string) (DeviceParams, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return DeviceParams{}, fmt.Errorf("ssd: %w", err)
	}
	return UnmarshalJSONParams(data)
}

// SaveParams writes a device configuration to a JSON file.
func SaveParams(path string, p DeviceParams) error {
	data, err := MarshalJSONParams(p)
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}
