package ssd

import (
	"path/filepath"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	for _, p := range []DeviceParams{Intel750(), Samsung850Pro(), SamsungZSSD(), DefaultParams()} {
		blob, err := MarshalJSONParams(p)
		if err != nil {
			t.Fatal(err)
		}
		got, err := UnmarshalJSONParams(blob)
		if err != nil {
			t.Fatal(err)
		}
		if got != p {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, p)
		}
	}
}

func TestJSONFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.json")
	if err := SaveParams(path, SamsungZSSD()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadParams(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != SamsungZSSD() {
		t.Fatal("file round trip mismatch")
	}
	if _, err := LoadParams(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestJSONRejectsBadValues(t *testing.T) {
	cases := []string{
		`{`, // malformed
		`{"flash_type":"QLC"}`,
		`{"flash_type":"MLC","interface":"SCSI"}`,
		`{"flash_type":"MLC","cache_policy":"MRU"}`,
		`{"flash_type":"MLC","gc_policy":"oracle"}`,
		`{"flash_type":"MLC","plane_alloc_scheme":"ZZZZ"}`,
		`{"flash_type":"MLC","channels":0}`, // fails Validate
	}
	for _, c := range cases {
		if _, err := UnmarshalJSONParams([]byte(c)); err == nil {
			t.Fatalf("expected error for %s", c)
		}
	}
}

func TestJSONDefaultsAreLenient(t *testing.T) {
	// Empty enum fields pick sensible defaults; everything else must be
	// given explicitly (Validate catches omissions).
	blob, _ := MarshalJSONParams(DefaultParams())
	p, err := UnmarshalJSONParams(blob)
	if err != nil {
		t.Fatal(err)
	}
	if p.FlashType != MLC {
		t.Fatal("unexpected flash type")
	}
}
