// Package ssd implements a discrete-event, multi-queue SSD simulator in
// the spirit of MQSim (Tavakkol et al., FAST'18), which the paper uses
// for efficiency validation. The simulator models the resources whose
// contention determines SSD performance — channel buses, dies/planes,
// the DFTL-style cached mapping table, the DRAM data cache, garbage
// collection and wear leveling — plus the energy accounting AutoBlox adds
// on top of MQSim (flash op energy, DRAM power, controller power).
//
// Fidelity note: like MQSim, this is an event/transaction-level model,
// not a gate-level one. Absolute latencies differ from any physical
// device; relative behaviour across configurations (the input AutoBlox
// learns from) is what the model preserves.
package ssd

import (
	"errors"
	"fmt"
	"time"
)

// Interface is the host-device protocol.
type Interface uint8

const (
	// NVMe is the PCIe-attached multi-queue interface.
	NVMe Interface = iota
	// SATA is the legacy single-queue (NCQ) interface.
	SATA
)

// interfaceTable registers the host-interface enum so its labels come
// from the same registry as the policy domains.
var interfaceTable = []policyEntry[struct{}]{
	NVMe: {name: "NVMe", doc: "PCIe multi-queue"},
	SATA: {name: "SATA", doc: "legacy single-queue (NCQ)"},
}

var interfaces = domainOf("interface", interfaceTable)

func (i Interface) valid() bool { return interfaces.valid(uint8(i)) }

func (i Interface) String() string { return interfaces.name(uint8(i)) }

// ParseInterface resolves a registry name like "NVMe".
func ParseInterface(s string) (Interface, error) {
	v, err := interfaces.parse(s)
	return Interface(v), err
}

// InterfaceNames returns the interface labels in value order.
func InterfaceNames() []string { return interfaces.allNames() }

// FlashType selects the NAND cell technology.
type FlashType uint8

const (
	// SLC stores one bit per cell (fastest, e.g. Samsung Z-SSD Z-NAND).
	SLC FlashType = iota
	// MLC stores two bits per cell (Intel 750, Samsung 850 PRO).
	MLC
	// TLC stores three bits per cell.
	TLC
)

// flashTypeTable registers the NAND cell technologies.
var flashTypeTable = []policyEntry[struct{}]{
	SLC: {name: "SLC", doc: "1 bit/cell"},
	MLC: {name: "MLC", doc: "2 bits/cell"},
	TLC: {name: "TLC", doc: "3 bits/cell"},
}

var flashTypes = domainOf("flash type", flashTypeTable)

func (f FlashType) valid() bool { return flashTypes.valid(uint8(f)) }

func (f FlashType) String() string { return flashTypes.name(uint8(f)) }

// ParseFlashType resolves a registry name like "MLC".
func ParseFlashType(s string) (FlashType, error) {
	v, err := flashTypes.parse(s)
	return FlashType(v), err
}

// FlashTypeNames returns the flash-type labels in value order.
func FlashTypeNames() []string { return flashTypes.allNames() }

// DeviceParams is a fully resolved SSD hardware configuration — the
// simulator's input. ssdconf builds these from the tunable parameter
// space.
type DeviceParams struct {
	// --- Flash geometry.
	Channels        int
	ChipsPerChannel int
	DiesPerChip     int
	PlanesPerDie    int
	BlocksPerPlane  int
	PagesPerBlock   int
	PageSizeBytes   int

	// --- Flash timing.
	FlashType       FlashType
	ReadLatency     time.Duration // page read (tR)
	ProgramLatency  time.Duration // page program (tPROG)
	EraseLatency    time.Duration // block erase (tBERS)
	SuspendProgram  time.Duration // program-suspend service window
	SuspendErase    time.Duration // erase-suspend service window
	SuspendEnabled  bool
	ChannelMTps     float64 // channel transfer rate, mega-transfers/s
	ChannelWidthBit int     // channel bus width in bits

	// --- Controller and DRAM.
	DataCacheBytes     int64
	CMTBytes           int64
	CMTEntryBytes      int
	MappingGranularity int // logical pages covered per CMT entry
	CacheLineBytes     int
	CachePolicy        CachePolicy
	ReadCacheEnabled   bool
	ControllerMHz      int
	DRAMMHz            int
	DRAMBusBits        int
	ECCLatency         time.Duration
	FirmwareOverhead   time.Duration // per-command FTL processing

	// --- Host interface.
	HostInterface Interface
	HostIfcModel  HostIfc // command-set model: conventional, ZNS, multi-stream
	ZoneSizeMB    int     // ZNS zone size (ignored by other models)
	MaxOpenZones  int     // ZNS open-zone limit = per-plane write lanes
	WriteStreams  int     // multi-stream lane count (ignored by other models)
	QueueDepth    int
	QueueCount    int
	PCIeLanes     int
	PCIeLaneMBps  float64 // per-lane usable bandwidth

	// --- FTL policies.
	OverprovisionRatio   float64 // e.g. 0.07 = 7% spare capacity
	GCThresholdPct       float64 // run GC when free blocks fall below this %
	GCPolicy             GCPolicy
	CopybackEnabled      bool // on-chip GC copy, skipping the channel bus
	StaticWearLeveling   bool
	WearLevelingThresh   int // erase-count delta that triggers a swap
	DynamicWearLeveling  bool
	PlaneAllocScheme     AllocScheme
	WriteBufferFlushPct  float64 // flush dirty cache above this occupancy %
	PageMetadataBytes    int     // per-page OOB metadata (spare area)
	BadBlockPct          float64 // factory bad-block ratio
	ReadRetryLimit       int
	IOMergingEnabled     bool
	TransactionSchedOOO  bool    // out-of-order transaction scheduling
	InitialOccupancyFrac float64 // pre-fill fraction before measurement

	// --- Fault injection (faults.go). The zero value disables it.
	Faults FaultProfile
}

// PagesPerPlane returns the page count of one plane.
func (p *DeviceParams) PagesPerPlane() int { return p.BlocksPerPlane * p.PagesPerBlock }

// TotalPlanes returns the number of planes across the device.
func (p *DeviceParams) TotalPlanes() int {
	return p.Channels * p.ChipsPerChannel * p.DiesPerChip * p.PlanesPerDie
}

// CapacityBytes returns the raw flash capacity.
func (p *DeviceParams) CapacityBytes() int64 {
	return int64(p.TotalPlanes()) * int64(p.PagesPerPlane()) * int64(p.PageSizeBytes)
}

// UsableBytes returns capacity after over-provisioning and bad blocks.
func (p *DeviceParams) UsableBytes() int64 {
	raw := float64(p.CapacityBytes())
	return int64(raw * (1 - p.OverprovisionRatio) * (1 - p.BadBlockPct/100))
}

// ChannelBandwidthBps returns one channel's peak transfer bandwidth in
// bytes/second.
func (p *DeviceParams) ChannelBandwidthBps() float64 {
	return p.ChannelMTps * 1e6 * float64(p.ChannelWidthBit) / 8
}

// HostBandwidthBps returns the host link bandwidth in bytes/second.
func (p *DeviceParams) HostBandwidthBps() float64 {
	if p.HostInterface == SATA {
		return 600e6 // SATA III payload rate
	}
	return float64(p.PCIeLanes) * p.PCIeLaneMBps * 1e6
}

// Validate reports the first structural problem with the configuration.
func (p *DeviceParams) Validate() error {
	type check struct {
		ok  bool
		msg string
	}
	checks := []check{
		{p.Channels >= 1, "Channels must be >= 1"},
		{p.ChipsPerChannel >= 1, "ChipsPerChannel must be >= 1"},
		{p.DiesPerChip >= 1, "DiesPerChip must be >= 1"},
		{p.PlanesPerDie >= 1, "PlanesPerDie must be >= 1"},
		{p.BlocksPerPlane >= 4, "BlocksPerPlane must be >= 4"},
		{p.PagesPerBlock >= 4, "PagesPerBlock must be >= 4"},
		{p.PageSizeBytes >= 512, "PageSizeBytes must be >= 512"},
		{p.PageSizeBytes%512 == 0, "PageSizeBytes must be a sector multiple"},
		{p.ReadLatency > 0, "ReadLatency must be positive"},
		{p.ProgramLatency > 0, "ProgramLatency must be positive"},
		{p.EraseLatency > 0, "EraseLatency must be positive"},
		{p.ChannelMTps > 0, "ChannelMTps must be positive"},
		{p.ChannelWidthBit > 0, "ChannelWidthBit must be positive"},
		{p.QueueDepth >= 1, "QueueDepth must be >= 1"},
		{p.ZoneSizeMB >= 1 && p.ZoneSizeMB <= 1<<20, "ZoneSizeMB out of range"},
		{p.MaxOpenZones >= 1 && p.MaxOpenZones <= 1024, "MaxOpenZones out of range"},
		{p.WriteStreams >= 1 && p.WriteStreams <= 256, "WriteStreams out of range"},
		{p.OverprovisionRatio >= 0 && p.OverprovisionRatio < 0.9, "OverprovisionRatio out of range"},
		{p.GCThresholdPct > 0 && p.GCThresholdPct < 100, "GCThresholdPct out of range"},
		{p.HostInterface != NVMe || p.PCIeLanes >= 1, "NVMe requires PCIeLanes >= 1"},
		{p.MappingGranularity >= 1, "MappingGranularity must be >= 1"},
		{p.CMTEntryBytes >= 1, "CMTEntryBytes must be >= 1"},
		{p.InitialOccupancyFrac >= 0 && p.InitialOccupancyFrac < 1, "InitialOccupancyFrac out of range"},

		// Range checks on the remaining numeric fields. Besides catching
		// typos in hand-written device files, the bounds keep every
		// validated configuration JSON-round-trippable (no NaN/Inf, and
		// durations small enough that the microsecond float encoding is
		// exact — see FuzzParamsJSON).
		{p.Channels <= 1024 && p.ChipsPerChannel <= 1024 && p.DiesPerChip <= 1024 && p.PlanesPerDie <= 1024,
			"geometry fan-out out of range (each level must be <= 1024)"},
		{p.BlocksPerPlane <= 1<<20 && p.PagesPerBlock <= 1<<20, "BlocksPerPlane/PagesPerBlock out of range"},
		{p.PageSizeBytes <= 1<<26, "PageSizeBytes out of range"},
		{p.ReadLatency <= time.Second, "ReadLatency out of range"},
		{p.ProgramLatency <= 10*time.Second, "ProgramLatency out of range"},
		{p.EraseLatency <= 60*time.Second, "EraseLatency out of range"},
		{p.SuspendProgram >= 0 && p.SuspendProgram <= 60*time.Second, "SuspendProgram out of range"},
		{p.SuspendErase >= 0 && p.SuspendErase <= 60*time.Second, "SuspendErase out of range"},
		{p.ECCLatency >= 0 && p.ECCLatency <= time.Second, "ECCLatency out of range"},
		{p.FirmwareOverhead >= 0 && p.FirmwareOverhead <= time.Second, "FirmwareOverhead out of range"},
		{p.ChannelMTps <= 1e6, "ChannelMTps out of range"},
		{p.PCIeLaneMBps >= 0 && p.PCIeLaneMBps <= 1e6, "PCIeLaneMBps out of range"},
		{p.WriteBufferFlushPct >= 0 && p.WriteBufferFlushPct <= 100, "WriteBufferFlushPct out of range"},
		{p.BadBlockPct >= 0 && p.BadBlockPct <= 50, "BadBlockPct out of range"},
		{p.ReadRetryLimit >= 0 && p.ReadRetryLimit <= 64, "ReadRetryLimit out of range"},
		{p.DataCacheBytes >= 0 && p.CMTBytes >= 0, "cache sizes must be non-negative"},
		{p.CacheLineBytes >= 0 && p.PageMetadataBytes >= 0 && p.WearLevelingThresh >= 0,
			"CacheLineBytes/PageMetadataBytes/WearLevelingThresh must be non-negative"},
		{p.Faults.Rate >= 0 && p.Faults.Rate <= 0.5, "Faults.Rate out of range [0, 0.5]"},
		{p.Faults.DieFailures >= 0 && p.Faults.DieFailures < p.Channels*p.ChipsPerChannel*p.DiesPerChip,
			"Faults.DieFailures must leave at least one live die"},
	}
	for _, c := range checks {
		if !c.ok {
			return errors.New("ssd: " + c.msg)
		}
	}
	// Every registry-backed enum must name a registered policy.
	if !p.PlaneAllocScheme.valid() {
		return fmt.Errorf("ssd: invalid plane allocation scheme %d", p.PlaneAllocScheme)
	}
	if !p.GCPolicy.valid() {
		return fmt.Errorf("ssd: invalid gc policy %d", p.GCPolicy)
	}
	if !p.CachePolicy.valid() {
		return fmt.Errorf("ssd: invalid cache policy %d", p.CachePolicy)
	}
	if !p.HostInterface.valid() {
		return fmt.Errorf("ssd: invalid host interface %d", p.HostInterface)
	}
	if !p.HostIfcModel.valid() {
		return fmt.Errorf("ssd: invalid host interface model %d", p.HostIfcModel)
	}
	if !p.FlashType.valid() {
		return fmt.Errorf("ssd: invalid flash type %d", p.FlashType)
	}
	return nil
}

// flashDefaults returns (read, program, erase) latencies typical for a
// flash type; used by baseline configurations and the what-if bounds.
func flashDefaults(t FlashType) (read, program, erase time.Duration) {
	switch t {
	case SLC:
		return 25 * time.Microsecond, 200 * time.Microsecond, 1500 * time.Microsecond
	case MLC:
		return 83 * time.Microsecond, 1166 * time.Microsecond, 3000 * time.Microsecond
	default: // TLC
		return 110 * time.Microsecond, 2500 * time.Microsecond, 4500 * time.Microsecond
	}
}

// DefaultParams returns a conservative, valid MLC NVMe device used as a
// starting point by tests and examples.
func DefaultParams() DeviceParams {
	r, pr, e := flashDefaults(MLC)
	return DeviceParams{
		Channels:        8,
		ChipsPerChannel: 4,
		DiesPerChip:     2,
		PlanesPerDie:    2,
		BlocksPerPlane:  512,
		PagesPerBlock:   256,
		PageSizeBytes:   16384,

		FlashType:       MLC,
		ReadLatency:     r,
		ProgramLatency:  pr,
		EraseLatency:    e,
		SuspendProgram:  50 * time.Microsecond,
		SuspendErase:    100 * time.Microsecond,
		ChannelMTps:     333,
		ChannelWidthBit: 8,

		DataCacheBytes:     512 << 20,
		CMTBytes:           128 << 20,
		CMTEntryBytes:      8,
		MappingGranularity: 1,
		CacheLineBytes:     16384,
		CachePolicy:        CacheLRU,
		ReadCacheEnabled:   true,
		ControllerMHz:      500,
		DRAMMHz:            800,
		DRAMBusBits:        32,
		ECCLatency:         8 * time.Microsecond,
		FirmwareOverhead:   3 * time.Microsecond,

		HostInterface: NVMe,
		HostIfcModel:  IfcConventional,
		ZoneSizeMB:    256,
		MaxOpenZones:  8,
		WriteStreams:  4,
		QueueDepth:    32,
		QueueCount:    8,
		PCIeLanes:     4,
		PCIeLaneMBps:  985,

		OverprovisionRatio:   0.07,
		GCThresholdPct:       5,
		GCPolicy:             GCGreedy,
		CopybackEnabled:      false,
		StaticWearLeveling:   true,
		WearLevelingThresh:   100,
		DynamicWearLeveling:  true,
		PlaneAllocScheme:     AllocCWDP,
		WriteBufferFlushPct:  80,
		PageMetadataBytes:    448,
		BadBlockPct:          0.5,
		ReadRetryLimit:       3,
		IOMergingEnabled:     true,
		TransactionSchedOOO:  true,
		InitialOccupancyFrac: 0.5,
	}
}

// Intel750 approximates the Intel 750 NVMe MLC SSD configuration the
// paper uses as its primary reference (CAMELab SimpleSSD config values:
// 12-deep channel fan-out, 800MB data cache, 256MB CMT, 333MT/s bus).
func Intel750() DeviceParams {
	p := DefaultParams()
	p.Channels = 12
	p.ChipsPerChannel = 5
	p.DiesPerChip = 8
	p.PlanesPerDie = 1
	p.BlocksPerPlane = 512
	p.PagesPerBlock = 512
	p.PageSizeBytes = 4096 // 480 planes × 512 × 512 × 4KB = 512 GiB raw
	p.DataCacheBytes = 800 << 20
	p.CMTBytes = 256 << 20
	p.ChannelMTps = 333
	p.QueueDepth = 32
	p.HostInterface = NVMe
	p.FlashType = MLC
	p.ReadLatency, p.ProgramLatency, p.EraseLatency = 83*time.Microsecond, 1166*time.Microsecond, 3*time.Millisecond
	return p
}

// Samsung850Pro approximates the Samsung 850 PRO SATA MLC SSD.
func Samsung850Pro() DeviceParams {
	p := DefaultParams()
	p.Channels = 8
	p.ChipsPerChannel = 8
	p.DiesPerChip = 2
	p.PlanesPerDie = 2
	p.BlocksPerPlane = 512
	p.PagesPerBlock = 256
	p.PageSizeBytes = 16384 // 256 planes × 512 × 256 × 16KB = 512 GiB raw
	p.DataCacheBytes = 512 << 20
	p.CMTBytes = 128 << 20
	p.ChannelMTps = 300
	p.HostInterface = SATA
	p.QueueDepth = 32 // NCQ
	p.FlashType = MLC
	p.ReadLatency, p.ProgramLatency, p.EraseLatency = 75*time.Microsecond, 1100*time.Microsecond, 3*time.Millisecond
	return p
}

// SamsungZSSD approximates the Samsung Z-SSD (NVMe, SLC-like Z-NAND).
func SamsungZSSD() DeviceParams {
	p := DefaultParams()
	p.Channels = 16
	p.ChipsPerChannel = 2
	p.DiesPerChip = 2
	p.PlanesPerDie = 2
	p.BlocksPerPlane = 512
	p.PagesPerBlock = 512
	p.PageSizeBytes = 16384 // 128 planes × 512 × 512 × 16KB = 512 GiB raw
	p.DataCacheBytes = 1024 << 20
	p.CMTBytes = 256 << 20
	p.ChannelMTps = 667
	p.HostInterface = NVMe
	p.QueueDepth = 64
	p.FlashType = SLC
	p.ReadLatency, p.ProgramLatency, p.EraseLatency = 3*time.Microsecond, 100*time.Microsecond, 1*time.Millisecond
	return p
}
