package ssd

import (
	"errors"
	"fmt"
	"strings"
)

// This file is the central policy registry. Each pluggable policy
// domain — GC victim selection (gcvictim.go), cache replacement
// (cachepolicy.go), plane allocation (alloc.go), plus the constrained
// interface/flash-type enums (params.go) — declares one table in its
// own file; the policyDomain built from that table then owns the
// name↔value mapping consumed everywhere else: DeviceParams.Validate,
// the JSON codec, the ssdconf.Space categorical dimensions and the CLI
// flag help all derive from it. Adding a policy means appending one
// table row (and its implementation) in one file.

// policyEntry is one row of a domain table: the canonical wire name,
// a one-line description for CLI help, and the constructor invoked
// when a device using the policy is built. T is the domain's policy
// interface; pure enums (Interface, FlashType) use struct{} and leave
// make nil.
type policyEntry[T any] struct {
	name string
	doc  string
	make func(p *DeviceParams) T
}

// domainOf derives the name↔value registry from a domain table. The
// table's index order defines the stable wire value: row i is enum
// value i in JSON, in the ssdconf grid, and in one-hot encodings.
func domainOf[T any](label string, table []policyEntry[T]) *policyDomain {
	names := make([]string, len(table))
	docs := make([]string, len(table))
	for i, e := range table {
		names[i], docs[i] = e.name, e.doc
	}
	return newPolicyDomain(label, names, docs)
}

// policyDomain owns one policy domain's name↔value mapping.
type policyDomain struct {
	label string   // human label used in error messages, e.g. "gc policy"
	names []string // value -> canonical name; dense from 0
	docs  []string // value -> one-line description
	index map[string]uint8
	// err records a malformed domain table. Tables are package-level
	// literals, so instead of panicking at init the defect is stored and
	// surfaced as a typed error from every validation/parse path that
	// touches the domain (DeviceParams.Validate, the JSON codec, CLI
	// flag parsing).
	err error
}

func newPolicyDomain(label string, names, docs []string) *policyDomain {
	d := &policyDomain{label: label, names: names, docs: docs, index: make(map[string]uint8, len(names))}
	if len(names) == 0 || len(names) != len(docs) || len(names) > 256 {
		d.err = errors.New("ssd: malformed policy table for " + label)
		return d
	}
	for i, n := range names {
		if n == "" {
			d.err = fmt.Errorf("ssd: %s value %d has no name", label, i)
			return d
		}
		if _, dup := d.index[n]; dup {
			d.err = errors.New("ssd: duplicate " + label + " name " + n)
			return d
		}
		d.index[n] = uint8(i)
	}
	return d
}

func (d *policyDomain) valid(v uint8) bool { return d.err == nil && int(v) < len(d.names) }

func (d *policyDomain) name(v uint8) string {
	if !d.valid(v) {
		return fmt.Sprintf("%s(%d)", d.label, v)
	}
	return d.names[v]
}

func (d *policyDomain) parse(s string) (uint8, error) {
	if d.err != nil {
		return 0, d.err
	}
	if v, ok := d.index[s]; ok {
		return v, nil
	}
	return 0, fmt.Errorf("ssd: unknown %s %q (valid: %s)", d.label, s, strings.Join(d.names, ", "))
}

// allNames returns the value-ordered name list (a fresh copy, so
// callers such as ssdconf can keep it without aliasing the registry).
func (d *policyDomain) allNames() []string {
	return append([]string(nil), d.names...)
}

// describe renders "name (doc), ..." for CLI flag help.
func (d *policyDomain) describe() string {
	var b strings.Builder
	for i, n := range d.names {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(n)
		if d.docs[i] != "" {
			b.WriteString(" (")
			b.WriteString(d.docs[i])
			b.WriteString(")")
		}
	}
	return b.String()
}
