package ssd

import (
	"strings"
	"testing"

	"autoblox/internal/workload"
)

// Every policy domain must round-trip name <-> value through the
// registry, expose unique names, and reject unknown names with an error
// (never a silent default).
func TestPolicyRegistryRoundTrips(t *testing.T) {
	for i, name := range GCPolicyNames() {
		v, err := ParseGCPolicy(name)
		if err != nil || v != GCPolicy(i) {
			t.Fatalf("ParseGCPolicy(%q) = %v, %v; want %d", name, v, err, i)
		}
		if GCPolicy(i).String() != name {
			t.Fatalf("GCPolicy(%d).String() = %q, want %q", i, GCPolicy(i).String(), name)
		}
	}
	for i, name := range CachePolicyNames() {
		v, err := ParseCachePolicy(name)
		if err != nil || v != CachePolicy(i) {
			t.Fatalf("ParseCachePolicy(%q) = %v, %v; want %d", name, v, err, i)
		}
		if CachePolicy(i).String() != name {
			t.Fatalf("CachePolicy(%d).String() = %q, want %q", i, CachePolicy(i).String(), name)
		}
	}
	for i, name := range AllocSchemeNames() {
		v, err := ParseAllocScheme(name)
		if err != nil || v != AllocScheme(i) {
			t.Fatalf("ParseAllocScheme(%q) = %v, %v; want %d", name, v, err, i)
		}
	}
	for i, name := range InterfaceNames() {
		v, err := ParseInterface(name)
		if err != nil || v != Interface(i) {
			t.Fatalf("ParseInterface(%q) = %v, %v; want %d", name, v, err, i)
		}
	}
	for i, name := range FlashTypeNames() {
		v, err := ParseFlashType(name)
		if err != nil || v != FlashType(i) {
			t.Fatalf("ParseFlashType(%q) = %v, %v; want %d", name, v, err, i)
		}
	}
	for _, lists := range [][]string{GCPolicyNames(), CachePolicyNames(), AllocSchemeNames(), InterfaceNames(), FlashTypeNames()} {
		seen := map[string]bool{}
		for _, n := range lists {
			if n == "" || seen[n] {
				t.Fatalf("empty or duplicate registry name %q in %v", n, lists)
			}
			seen[n] = true
		}
	}
	if _, err := ParseGCPolicy("oracle"); err == nil {
		t.Fatal("unknown gc policy accepted")
	}
	if _, err := ParseCachePolicy("MRU"); err == nil {
		t.Fatal("unknown cache policy accepted")
	}
	// The error message lists the valid names for the operator.
	_, err := ParseGCPolicy("nope")
	if err == nil || !strings.Contains(err.Error(), "costbenefit") {
		t.Fatalf("parse error should list valid names, got %v", err)
	}
}

func TestDescribeHelpersListPolicies(t *testing.T) {
	gc := DescribeGCPolicies()
	for _, want := range []string{"greedy", "fifo", "costbenefit"} {
		if !strings.Contains(gc, want) {
			t.Fatalf("DescribeGCPolicies() = %q missing %q", gc, want)
		}
	}
	cp := DescribeCachePolicies()
	for _, want := range []string{"LRU", "CLOCK", "second-chance"} {
		if !strings.Contains(cp, want) {
			t.Fatalf("DescribeCachePolicies() = %q missing %q", cp, want)
		}
	}
}

func TestValidateRejectsUnknownPolicyValues(t *testing.T) {
	bad := []func(*DeviceParams){
		func(p *DeviceParams) { p.GCPolicy = GCPolicy(99) },
		func(p *DeviceParams) { p.CachePolicy = CachePolicy(99) },
		func(p *DeviceParams) { p.HostInterface = Interface(9) },
		func(p *DeviceParams) { p.FlashType = FlashType(9) },
		func(p *DeviceParams) { p.PlaneAllocScheme = AllocScheme(200) },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: out-of-domain policy value accepted", i)
		}
	}
}

// fullBlock force-writes a block's GC-relevant state for victim-policy
// unit tests.
func fullBlock(f *ftl, fp *flashPlane, i, valid int32, seq int64, erases int32) {
	b := &fp.blocks[i]
	b.pages = make([]int32, f.pagesPerBlock)
	fillStale(b.pages)
	b.writePtr = f.pagesPerBlock
	b.valid = valid
	b.allocSeq = seq
	b.eraseCount = erases
}

// Cost-benefit must prefer an old block with slightly more valid pages
// over a young sparse one (the LFS rule greedy cannot express), and
// among otherwise equal candidates must spare the worn block.
func TestCostBenefitVictimAgeAndWear(t *testing.T) {
	f := newTestFTL(t, func(p *DeviceParams) { p.GCPolicy = GCCostBenefit })
	fp := &f.planes[0]
	fp.allocSeq = 60
	fullBlock(f, fp, 1, 12, 1, 0)  // old, slightly more valid
	fullBlock(f, fp, 2, 10, 55, 0) // young, sparser
	if got := f.pickVictim(fp); got != 1 {
		t.Fatalf("cost-benefit picked block %d, want the old block 1", got)
	}
	if got := (greedyVictim{}).pickVictim(f, fp); got != 2 {
		t.Fatalf("greedy picked block %d, want the sparser block 2 (contrast case broken)", got)
	}

	// Wear discount: same age and utilization, very different wear.
	f2 := newTestFTL(t, func(p *DeviceParams) { p.GCPolicy = GCCostBenefit })
	fp2 := &f2.planes[0]
	fp2.allocSeq = 20
	fullBlock(f2, fp2, 1, 10, 5, 1000)
	fullBlock(f2, fp2, 2, 10, 5, 0)
	if got := f2.pickVictim(fp2); got != 2 {
		t.Fatalf("cost-benefit picked worn block %d, want the fresh block 2", got)
	}

	// Fully-valid blocks are never victims.
	f3 := newTestFTL(t, func(p *DeviceParams) { p.GCPolicy = GCCostBenefit })
	fp3 := &f3.planes[0]
	fullBlock(f3, fp3, 1, f3.pagesPerBlock, 1, 0)
	if got := f3.pickVictim(fp3); got != -1 {
		t.Fatalf("cost-benefit picked fully-valid block %d, want -1", got)
	}
}

// CLOCK grants referenced entries a second chance: a read sets the
// reference bit, and the eviction sweep skips that entry once,
// displacing the first unreferenced one instead.
func TestClockSecondChance(t *testing.T) {
	p := DefaultParams()
	p.CachePolicy = CacheCLOCK
	p.DataCacheBytes = 4 * int64(p.CacheLineBytes)
	d := newDataCache(&p, 1)
	if d.capacity != 4 {
		t.Fatalf("capacity = %d, want 4", d.capacity)
	}
	for lp := int64(1); lp <= 4; lp++ {
		d.insert(lp, false)
	}
	if !d.read(1) {
		t.Fatal("warm entry missed")
	}
	evicted, _ := d.insert(5, false)
	if evicted != 2 {
		t.Fatalf("evicted lp %d, want 2 (1 was referenced and spared)", evicted)
	}
	if !d.read(1) || d.read(2) {
		t.Fatal("reference bit not honored: 1 should survive, 2 should be gone")
	}
	// All referenced: the sweep clears every bit and still evicts.
	for lp := int64(3); lp <= 5; lp++ {
		d.read(lp)
	}
	if _, ok := d.entries[1]; !ok {
		t.Fatal("setup lost entry 1")
	}
	d.insert(6, false)
	if d.ll.Len() != d.capacity {
		t.Fatalf("cache holds %d entries, want %d", d.ll.Len(), d.capacity)
	}
}

// Every registered GC policy must drive a full simulation with real GC
// pressure.
func TestGCPoliciesAllSimulate(t *testing.T) {
	tr := workload.MustGenerate(workload.FIU, workload.Options{Requests: 8000, Seed: 11})
	for i := range GCPolicyNames() {
		pol := GCPolicy(i)
		p := smallDevice()
		p.GCPolicy = pol
		res := runTrace(t, p, tr)
		if res.AvgLatency <= 0 || res.GCRuns == 0 {
			t.Fatalf("policy %s: AvgLatency=%v GCRuns=%d", pol, res.AvgLatency, res.GCRuns)
		}
	}
}

// BenchmarkGCVictimPolicy measures steady-state write cost per policy
// with GC in the loop (victim selection is the dominant varying cost).
// cmd/benchjson picks these up for the CI BENCH artifact.
func BenchmarkGCVictimPolicy(b *testing.B) {
	for _, name := range GCPolicyNames() {
		pol, err := ParseGCPolicy(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			p := smallDevice()
			p.GCPolicy = pol
			f, err := newFTL(&p)
			if err != nil {
				b.Fatal(err)
			}
			f.prefill(0.9)
			ws := f.logicalPages / 4
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.placePage(int64(i)%ws, 0)
			}
		})
	}
}
