package ssd

// Energy model.
//
// The paper extends MQSim with power modeling for the three major
// consumers: flash chips (per-op energy following the characterization of
// Grupp et al., MICRO'09), SSD DRAM (DRAMPower-style: per-access energy
// plus background power) and the storage processor (gem5-style ARM
// active/idle power). We reproduce the same structure analytically from
// the op counters the simulator already maintains; the relationships that
// matter for the power-budget constraint and Fig. 7 — more chips → more
// idle power, fewer controller-busy cycles with better layouts, MLC/TLC
// programs costing multiples of SLC — are preserved.

// Per-operation flash energy in microjoules, scaled to the page size.
// Values per 16KB page; derived from published NAND characterizations.
func flashOpEnergyUJ(t FlashType, pageBytes int) (read, program, erase float64) {
	scale := float64(pageBytes) / 16384.0
	switch t {
	case SLC:
		read, program, erase = 12, 28, 110
	case MLC:
		read, program, erase = 18, 60, 160
	default: // TLC
		read, program, erase = 25, 110, 210
	}
	return read * scale, program * scale, erase * scale
}

// Standby power per flash die in milliwatts.
const flashDieStandbyMW = 0.8

// Controller power in milliwatts per 100 MHz (active adds on top of idle).
const (
	controllerIdleMWPer100MHz   = 18
	controllerActiveMWPer100MHz = 65
)

// DRAM energy coefficients.
const (
	dramEnergyPerByteNJ   = 0.12 // activate+IO energy per byte moved
	dramBackgroundMWPerGB = 180  // background/refresh power per GB
)

// energy computes total energy in joules for the run.
func (e *engine) energy(r *Result, makespanNS int64) float64 {
	p := e.p
	seconds := float64(makespanNS) / 1e9

	// Flash op energy.
	readUJ, progUJ, eraseUJ := flashOpEnergyUJ(p.FlashType, p.PageSizeBytes)
	flashReads := float64(r.UserReads + r.GCReads + r.MappingReads)
	flashProgs := float64(r.UserPrograms + r.GCPrograms + r.MappingWrites)
	flashJ := (flashReads*readUJ + flashProgs*progUJ + float64(r.Erases)*eraseUJ) / 1e6

	// Flash standby: all dies idle-burn for the whole run.
	dies := float64(p.Channels * p.ChipsPerChannel * p.DiesPerChip)
	flashJ += dies * flashDieStandbyMW / 1e3 * seconds

	// DRAM: background power scales with capacity; access energy with
	// bytes moved through the data cache and the CMT.
	dramGB := float64(p.DataCacheBytes+p.CMTBytes) / (1 << 30)
	dramJ := dramGB * dramBackgroundMWPerGB / 1e3 * seconds
	bytesMoved := float64(e.dramAccesses) * float64(p.PageSizeBytes)
	dramJ += bytesMoved * dramEnergyPerByteNJ / 1e9

	// Controller: idle power for the makespan plus active power for the
	// time the controller is actually processing commands, approximated
	// by firmware overhead per op plus channel-busy time.
	mhz := float64(p.ControllerMHz)
	idleJ := mhz / 100 * controllerIdleMWPer100MHz / 1e3 * seconds
	ops := flashReads + flashProgs + float64(r.Erases) + float64(r.CacheHits)
	activeSec := ops*float64(e.fwNS)/1e9 + float64(e.channelBusyNS)/1e9
	if activeSec > seconds {
		activeSec = seconds
	}
	activeJ := mhz / 100 * controllerActiveMWPer100MHz / 1e3 * activeSec

	return flashJ + dramJ + idleJ + activeJ
}
