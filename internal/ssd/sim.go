package ssd

import (
	"context"
	"fmt"
	"time"

	"autoblox/internal/obs"
	"autoblox/internal/trace"
)

// Result carries the measured performance and energy of one simulation.
type Result struct {
	Requests int
	// AvgLatency is the mean request latency (exact).
	AvgLatency time.Duration
	// P50/P95/P99/P999Latency are request-latency quantiles estimated
	// from a log-linear histogram of every request (conservative
	// nearest-rank upper bounds, ≤1/32 relative bucket error — see
	// obs.Histogram.Quantile). The histogram replaces the former
	// sort-the-whole-latency-slice single-P99 computation.
	P50Latency  time.Duration
	P95Latency  time.Duration
	P99Latency  time.Duration
	P999Latency time.Duration
	// LatencyHistogram is the full per-request latency distribution
	// (nanosecond samples) the quantiles above are read from.
	LatencyHistogram obs.HistogramSnapshot
	// ThroughputBps is total payload bytes divided by makespan.
	ThroughputBps float64
	// IOPS is requests divided by makespan.
	IOPS float64
	// Makespan is the span from first arrival to last completion.
	Makespan time.Duration
	// EnergyJoules is the modeled total device energy over the run.
	EnergyJoules float64
	// AvgPowerWatts is EnergyJoules / Makespan.
	AvgPowerWatts float64

	// Operation counters (post warm-up).
	UserReads, UserPrograms     int64
	GCReads, GCPrograms         int64
	Erases                      int64
	MappingReads, MappingWrites int64
	CacheHits, CacheMisses      int64
	CMTHits, CMTMisses          int64
	GCRuns                      int
	WearLevelSwaps              int
	// MergedRequests counts block-layer request merges (IOMergingEnabled).
	MergedRequests int64
	// ProactiveFlushes counts background dirty-cache write-backs
	// triggered by the WriteBufferFlushPct threshold.
	ProactiveFlushes int64
	// WriteAmplification is (user + GC programs) / user programs.
	WriteAmplification float64
	// Fault-injection counters (all zero when the FaultProfile is
	// disabled). The op counters cover the measured phase only;
	// RetiredBlocks/FactoryBadBlocks are end-of-run device state.
	ProgramFailures  int64
	EraseFailures    int64
	ReadRetries      int64
	ECCSoftDecodes   int64
	RetiredBlocks    int64
	FactoryBadBlocks int64
	// Host-interface model counters (hostifc.go). UserTrims counts TRIM
	// requests in the measured phase; TrimmedPages counts the mapped
	// logical pages they invalidated. WPViolations and ZoneResets are
	// zero unless the device runs the ZNS model.
	UserTrims    int64
	TrimmedPages int64
	WPViolations int64
	ZoneResets   int64
	// ChannelUtilization is the mean fraction of the makespan each
	// channel bus spent transferring data.
	ChannelUtilization float64
	// Wear summarizes block erase-count spread and projected endurance.
	Wear WearReport
}

// Simulator runs traces against a device configuration.
type Simulator struct {
	p DeviceParams
	// Obs, when non-nil, receives cross-run metrics: the shared
	// per-request latency histogram plus GC-pause and channel-stall
	// distributions. It never influences simulation results — instrumented
	// and uninstrumented runs are bit-for-bit identical — and may be
	// shared by concurrently running simulators (recording is atomic).
	Obs *obs.Registry
}

// Registry metric names recorded by instrumented simulations.
const (
	MetricRequestLatency = "ssd_request_latency_ns"
	MetricGCPause        = "ssd_gc_pause_ns"
	MetricChannelStall   = "ssd_channel_stall_ns"

	MetricFaultProgramFailures = "ssd_fault_program_failures_total"
	MetricFaultEraseFailures   = "ssd_fault_erase_failures_total"
	MetricFaultReadRetries     = "ssd_fault_read_retries_total"
	MetricFaultECCSoftDecodes  = "ssd_fault_ecc_soft_decodes_total"
	MetricFaultRetiredBlocks   = "ssd_fault_retired_blocks_total"
)

// NewSimulator validates params and returns a simulator.
func NewSimulator(p DeviceParams) (*Simulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Simulator{p: p}, nil
}

// Params returns the device configuration.
func (s *Simulator) Params() DeviceParams { return s.p }

// Run simulates the trace and returns measured metrics. Each call uses
// fresh device state (including the warm-up prefill), so runs are
// independent and deterministic. Run is a thin wrapper over RunSource;
// the two paths produce bit-for-bit identical results.
func (s *Simulator) Run(tr *trace.Trace) (*Result, error) {
	return s.RunSource(tr.Source())
}

// RunSource simulates a streaming trace without ever materializing it:
// the warm-up pass and the measured pass each consume one
// Reset-separated sweep of the source, and per-run memory is O(device
// state) — independent of trace length. The source must satisfy the
// trace.Source determinism contract (two sweeps yield identical request
// sequences); generator- and file-backed sources do by construction.
func (s *Simulator) RunSource(src trace.Source) (*Result, error) {
	return s.RunSourceContext(context.Background(), src)
}

// RunSourceContext is RunSource with cooperative cancellation: the
// warm-up and measured sweeps poll ctx every 1024 requests and return
// ctx.Err() when it fires, so a per-simulation timeout or an
// interrupted tuning run stops a simulation mid-flight instead of
// waiting out the trace. Cancellation never produces a partial Result.
func (s *Simulator) RunSourceContext(ctx context.Context, src trace.Source) (*Result, error) {
	eng, err := newEngine(&s.p)
	if err != nil {
		return nil, err
	}
	n, err := eng.warmup(ctx, src)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("ssd: empty trace")
	}
	src.Reset()
	if err := src.Err(); err != nil {
		return nil, fmt.Errorf("ssd: rewind for measured pass: %w", err)
	}
	// Observability handles attach after warm-up so registry histograms
	// only see measured-phase events (warm-up replays the trace once).
	if s.Obs != nil {
		eng.reqHist = s.Obs.Histogram(MetricRequestLatency)
		eng.gcHist = s.Obs.Histogram(MetricGCPause)
		eng.stallHist = s.Obs.Histogram(MetricChannelStall)
	}
	res, err := eng.run(ctx, src)
	if err != nil {
		return nil, err
	}
	if fa := eng.ftl.faults; fa != nil && s.Obs != nil {
		s.Obs.Counter(MetricFaultProgramFailures).Add(fa.programFailures)
		s.Obs.Counter(MetricFaultEraseFailures).Add(fa.eraseFailures)
		s.Obs.Counter(MetricFaultReadRetries).Add(fa.readRetries)
		s.Obs.Counter(MetricFaultECCSoftDecodes).Add(fa.eccSoftDecodes)
		s.Obs.Counter(MetricFaultRetiredBlocks).Add(fa.retiredBlocks)
	}
	return res, nil
}

// warmup replays the trace once with timing disabled so the CMT, the
// data cache and the FTL's block occupancy reach steady state before
// measurement — the paper warms the simulator with traces before
// validation for the same reason (cold compulsory misses would otherwise
// dominate the measurement window). It returns the number of requests
// seen, so the caller can reject empty traces.
// The data cache is deliberately left cold: a sampled trace's footprint
// is far smaller than the production workload's, so warming the cache
// with the measurement trace would let configurations "win" by fitting
// the whole sample in DRAM — a hit rate the real workload could never
// see. Measured-phase cache hits therefore reflect only genuine
// intra-trace reuse.
func (e *engine) warmup(ctx context.Context, src trace.Source) (int, error) {
	e.warming = true
	defer func() { e.warming = false }()
	src.Reset()
	n := 0
	for {
		if n&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		req, ok := src.Next()
		if !ok {
			break
		}
		n++
		firstLP, nPages := e.ftl.pageSpan(req.LBA, req.Sectors)
		for k := int64(0); k < nPages; k++ {
			lp := (firstLP + k) % e.ftl.logicalPages
			switch req.Op {
			case trace.Read:
				e.readPage(lp, 0)
			case trace.Trim:
				e.trimPage(lp, 0)
			default:
				e.writePage(lp, 0, req.Stream)
			}
		}
	}
	if err := src.Err(); err != nil {
		return n, fmt.Errorf("ssd: warm-up sweep: %w", err)
	}
	if err := e.ftl.fatal; err != nil {
		return n, fmt.Errorf("%w (during warm-up)", err)
	}
	// Reset counters and timelines accumulated during warm-up.
	f := e.ftl
	f.userReads, f.userPrograms, f.gcReads, f.gcPrograms = 0, 0, 0, 0
	f.erases, f.mappingReads, f.mappingWrites = 0, 0, 0
	if f.faults != nil {
		f.faults.resetOpCounters()
	}
	for i := range f.planes {
		f.planes[i].gcRuns = 0
		f.planes[i].wlSwaps = 0
		f.planes[i].moveCount = 0
		f.planes[i].nextFree = 0
	}
	for i := range e.channelFree {
		e.channelFree[i] = 0
	}
	e.hostFree = 0
	e.cacheHits, e.cacheMisses, e.cmtHits, e.cmtMisses = 0, 0, 0, 0
	e.channelBusyNS, e.dramAccesses = 0, 0
	f.trimmedPages = 0
	if f.zns != nil {
		// The measured pass replays the same trace; stale warm-up write
		// pointers would turn every measured write into a violation, so
		// pointer state resets while block occupancy (the point of warming
		// up) is kept.
		f.zns.reset()
		for i := range e.zoneFree {
			e.zoneFree[i] = 0
		}
	}
	return n, nil
}

// engine is the per-run simulation state.
type engine struct {
	p     *DeviceParams
	ftl   *ftl
	cmt   *cmt
	cache *dataCache

	channelFree []int64 // per-channel bus timeline (ns)
	hostFree    int64   // shared host-link timeline (ns)
	zoneFree    []int64 // per-zone append-serialization timeline (ZNS only)
	warming     bool    // warm-up pass: FTL/CMT state only, no data cache

	// Derived per-op costs (ns).
	readNS, progNS, eraseNS int64
	xferNS                  int64 // one page over the channel bus
	dramNS                  int64 // one page through DRAM
	eccNS, fwNS             int64
	hostCmdNS               int64
	hostBps                 float64

	// Stats.
	cacheHits, cacheMisses int64
	cmtHits, cmtMisses     int64
	channelBusyNS          int64
	dramAccesses           int64
	mergedRequests         int64
	proactiveFlushes       int64
	userTrims              int64

	// latHist is the per-run request-latency histogram Result quantiles
	// are computed from (always allocated).
	latHist *obs.Histogram
	// Registry-backed histograms; nil (no-op) when the simulator runs
	// uninstrumented.
	reqHist, gcHist, stallHist *obs.Histogram
}

func newEngine(p *DeviceParams) (*engine, error) {
	f, err := newFTL(p)
	if err != nil {
		return nil, err
	}
	e := &engine{
		p:           p,
		ftl:         f,
		cmt:         newCMT(p, f.capScale),
		cache:       newDataCache(p, f.capScale),
		channelFree: make([]int64, p.Channels),
		latHist:     obs.NewHistogram(),
	}
	if f.zns != nil {
		// Zone-granular mapping: a ZNS device only tracks one write
		// pointer per zone, so a CMT entry covers a whole zone — the
		// model's metadata advantage over page-mapped conventional FTLs.
		e.cmt.gran = f.zns.zonePages
		e.zoneFree = make([]int64, len(f.zns.wp))
	}
	e.readNS = p.ReadLatency.Nanoseconds()
	e.progNS = p.ProgramLatency.Nanoseconds()
	e.eraseNS = p.EraseLatency.Nanoseconds()
	e.xferNS = int64(float64(p.PageSizeBytes) / p.ChannelBandwidthBps() * 1e9)
	// DRAM move of one page: bus width × frequency.
	dramBps := float64(p.DRAMMHz) * 1e6 * float64(p.DRAMBusBits) / 8 * 2 // DDR
	e.dramNS = int64(float64(p.PageSizeBytes)/dramBps*1e9) + 300         // + access latency
	e.eccNS = p.ECCLatency.Nanoseconds()
	e.fwNS = p.FirmwareOverhead.Nanoseconds()
	e.hostBps = p.HostBandwidthBps()
	if p.HostInterface == SATA {
		e.hostCmdNS = 25_000 // AHCI command overhead
	} else {
		qc := p.QueueCount
		if qc < 1 {
			qc = 1
		}
		e.hostCmdNS = int64(8_000 / qc)
		if e.hostCmdNS < 1_000 {
			e.hostCmdNS = 1_000
		}
	}
	f.prefill(p.InitialOccupancyFrac)
	if f.fatal != nil {
		return nil, fmt.Errorf("%w (during prefill)", f.fatal)
	}
	return e, nil
}

// requestStream is the minimal pull interface the measured pass
// consumes; both trace.Source and the block-layer merge adapter
// satisfy it.
type requestStream interface {
	Next() (trace.Request, bool)
}

// run executes the measured pass over one sweep of the source. Latencies
// are folded into a running sum plus the latency histogram as they are
// produced — there is no per-request buffer, so memory stays O(device
// state) regardless of trace length.
func (e *engine) run(ctx context.Context, src trace.Source) (*Result, error) {
	var stream requestStream = src
	var ms *mergeStream
	if e.p.IOMergingEnabled {
		ms = newMergeStream(src)
		stream = ms
	}
	queues := newHostQueues(e.p)

	var (
		count, latSum  int64
		totalBytes     uint64
		firstArrival   int64
		lastCompletion int64
	)

	for {
		if count&1023 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if err := e.ftl.fatal; err != nil {
			return nil, fmt.Errorf("%w (after %d measured requests)", err, count)
		}
		req, ok := stream.Next()
		if !ok {
			break
		}
		arrival := req.Arrival.Nanoseconds()
		if count == 0 {
			firstArrival = arrival
		}
		// Queue-depth backpressure: the request is dispatched to the
		// device once a slot in one of the submission queues frees.
		// Latency is measured from dispatch (device-level latency, what
		// an SSD vendor reports and what the paper's bounded speedup
		// ratios imply); host-side queueing shows up in
		// throughput/makespan instead.
		dispatch, slot := queues.admit(arrival)
		start := dispatch + e.hostCmdNS + e.fwNS

		// TRIMs carry no payload: nothing crosses the host link and the
		// request contributes no throughput bytes.
		var hostXfer int64
		if req.Op != trace.Trim {
			hostXfer = int64(float64(req.Bytes()) / e.hostBps * 1e9)
			totalBytes += req.Bytes()
		}

		// Split into logical pages.
		firstLP, nPages := e.ftl.pageSpan(req.LBA, req.Sectors)
		if req.Op == trace.Trim {
			e.userTrims++
			if z := e.ftl.zns; z != nil {
				z.noteTrim(firstLP, nPages)
			}
		}

		done := start
		for k := int64(0); k < nPages; k++ {
			lp := (firstLP + k) % e.ftl.logicalPages
			var t int64
			switch req.Op {
			case trace.Read:
				t = e.readPage(lp, start)
			case trace.Trim:
				t = e.trimPage(lp, start)
			default:
				t = e.writePage(lp, start, req.Stream)
			}
			if t > done {
				done = t
			}
		}
		// The host link is a shared resource: the request's payload
		// serializes over PCIe/SATA after the flash work completes.
		xferBegin := done
		if e.hostFree > xferBegin {
			xferBegin = e.hostFree
		}
		e.hostFree = xferBegin + hostXfer
		done = xferBegin + hostXfer
		queues.complete(slot, done)
		lat := done - dispatch
		latSum += lat
		count++
		e.latHist.Record(lat)
		e.reqHist.Record(lat)
		if done > lastCompletion {
			lastCompletion = done
		}
	}
	if err := src.Err(); err != nil {
		return nil, fmt.Errorf("ssd: measured sweep: %w", err)
	}
	if err := e.ftl.fatal; err != nil {
		return nil, fmt.Errorf("%w (after %d measured requests)", err, count)
	}
	if count == 0 {
		return nil, fmt.Errorf("ssd: empty trace")
	}
	if ms != nil {
		e.mergedRequests = ms.merged
	}

	return e.buildResult(count, latSum, totalBytes, firstArrival, lastCompletion), nil
}

// readPage returns the completion time of a logical-page read started at
// t (ns).
func (e *engine) readPage(lp, t int64) int64 {
	if e.warming {
		e.mappingAccess(lp, t, false)
		return t
	}
	// Data-cache hit?
	if e.cache.read(lp) {
		e.cacheHits++
		e.dramAccesses++
		return t + e.dramNS
	}
	e.cacheMisses++

	// Mapping lookup through the CMT.
	t = e.mappingAccess(lp, t, false)

	pl := e.ftl.lookup(lp)
	done := e.flashRead(pl, t)
	e.ftl.userReads++
	if e.p.ReadCacheEnabled {
		if victim, dirtyEvict := e.cache.insert(lp, false); dirtyEvict {
			e.flushDirty(victim, done)
		}
	}
	return done
}

// writePage returns the completion time of a logical-page write started
// at t (ns). stream is the host's multi-stream tag (ignored by other
// interface models).
func (e *engine) writePage(lp, t int64, stream uint32) int64 {
	e.ftl.noteStream(lp, stream)
	if e.warming {
		e.mappingAccess(lp, t, true)
		if z := e.ftl.zns; z != nil {
			z.noteWrite(lp)
		}
		e.ftl.placePage(lp, e.ftl.laneFor(lp))
		return t
	}
	t = e.mappingAccess(lp, t, true)
	if z := e.ftl.zns; z != nil {
		// Zone-append serialization: writes to one zone are ordered
		// through its append point (one DRAM pass each), and a write below
		// the zone write pointer pays a read-modify-reclaim penalty — the
		// cost a ZNS host incurs for violating the sequential-write rule.
		zi := z.zoneOf(lp)
		if e.zoneFree[zi] > t {
			t = e.zoneFree[zi]
		}
		e.zoneFree[zi] = t + e.dramNS
		if z.noteWrite(lp) {
			t += e.progNS
		}
	}
	e.dramAccesses++
	victim, dirtyEvict := e.cache.insert(lp, true)
	done := t + e.dramNS
	if dirtyEvict {
		// The evicted page must be programmed to flash; the new write
		// waits for the eviction's bus slot (cache backpressure).
		busStart := e.flushDirty(victim, t)
		if busStart+e.dramNS > done {
			done = busStart + e.dramNS
		}
	}
	// Proactive write-back: above the WriteBufferFlushPct threshold the
	// controller flushes dirty lines in the background (charged to the
	// flash timelines, not to this request), keeping eviction stalls off
	// the critical path.
	if e.p.WriteBufferFlushPct > 0 {
		for e.cache.dirtyFraction() > e.p.WriteBufferFlushPct/100 {
			victim, ok := e.cache.flushOldestDirty()
			if !ok {
				break
			}
			e.flushDirty(victim, t)
			e.proactiveFlushes++
		}
	}
	return done
}

// trimPage applies a TRIM to one logical page: the mapping update is a
// CMT write (a genuinely dirty mapping entry), any cached copy is
// dropped without write-back, and the physical slot is staled so GC
// gets the reclaim credit. No flash data moves — the only time charged
// is the mapping access itself.
func (e *engine) trimPage(lp, t int64) int64 {
	if e.warming {
		e.mappingAccess(lp, t, true)
		e.ftl.trimPage(lp)
		return t
	}
	t = e.mappingAccess(lp, t, true)
	e.cache.invalidate(lp)
	e.ftl.trimPage(lp)
	return t
}

// flushDirty programs one dirty cache page to flash, charging GC if the
// allocation triggers it. It returns the time the page left DRAM (the
// channel-transfer start), which is when its cache slot is reusable.
func (e *engine) flushDirty(lp, t int64) (busStart int64) {
	pl, gcMoves, gcErases := e.ftl.placePage(lp, e.ftl.laneFor(lp))
	e.ftl.userPrograms++
	busStart = e.flashProgram(pl, t)
	e.chargeGC(pl, gcMoves, gcErases, t)
	return busStart
}

// mappingAccess models the CMT: a miss reads the mapping page from
// flash; a dirty eviction programs one back.
func (e *engine) mappingAccess(lp, t int64, write bool) int64 {
	miss, dirtyEvict := e.cmt.access(lp, write)
	if !miss {
		e.cmtHits++
		return t
	}
	e.cmtMisses++
	e.ftl.mappingReads++
	// The mapping page lives on a deterministic plane.
	pl := e.ftl.lookup(lp)
	t = e.flashRead(pl, t)
	if dirtyEvict {
		e.ftl.mappingWrites++
		e.flashProgram(pl, t) // asynchronous write-back occupies resources
	}
	return t
}

// flashRead charges one page read on plane pl starting no earlier than t
// and returns its completion time (after the channel transfer and ECC).
func (e *engine) flashRead(pl planeID, t int64) int64 {
	fp := &e.ftl.planes[pl]
	begin := t
	if fp.nextFree > begin {
		wait := fp.nextFree - begin
		// Out-of-order transaction scheduling: a read can bypass
		// *queued* (not yet started) programs, so its wait is bounded by
		// the one in-flight operation rather than the whole backlog.
		if e.p.TransactionSchedOOO && wait > e.progNS {
			wait = e.progNS
			fp.nextFree += e.readNS // the bypassed work still happens
		}
		if e.p.SuspendEnabled && wait > e.p.SuspendProgram.Nanoseconds() {
			// Program/erase suspension bounds the read's wait further;
			// the suspended operation resumes afterwards.
			wait = e.p.SuspendProgram.Nanoseconds()
			fp.nextFree += e.readNS
		}
		begin += wait
	}
	cellDone := begin + e.readNS
	var softDecode int64
	if fa := e.ftl.faults; fa != nil && !e.warming {
		// Stepped read-retry: each retry re-senses the page at a shifted
		// read voltage, re-occupying the plane; an exhausted ladder falls
		// back to an ECC soft-decode pass charged after the transfer.
		if steps := fa.readRetrySteps(e.p.ReadRetryLimit); steps > 0 {
			cellDone += int64(steps) * e.readNS
			fa.readRetries += int64(steps)
			if steps >= e.p.ReadRetryLimit {
				fa.eccSoftDecodes++
				softDecode = eccSoftDecodeMult * e.eccNS
			}
		}
	}
	fp.nextFree = cellDone

	ch := e.ftl.alloc.channelOf(pl)
	xferBegin := cellDone
	if e.channelFree[ch] > xferBegin {
		xferBegin = e.channelFree[ch]
		e.stallHist.Record(xferBegin - cellDone)
	}
	e.channelFree[ch] = xferBegin + e.xferNS
	e.channelBusyNS += e.xferNS
	return xferBegin + e.xferNS + e.eccNS + softDecode
}

// flashProgram charges one page program on plane pl (bus transfer first,
// then the cell program). It returns the bus-transfer start time.
func (e *engine) flashProgram(pl planeID, t int64) (busStart int64) {
	ch := e.ftl.alloc.channelOf(pl)
	busStart = t
	if e.channelFree[ch] > busStart {
		busStart = e.channelFree[ch]
		e.stallHist.Record(busStart - t)
	}
	e.channelFree[ch] = busStart + e.xferNS
	e.channelBusyNS += e.xferNS

	fp := &e.ftl.planes[pl]
	cellBegin := busStart + e.xferNS
	if fp.nextFree > cellBegin {
		cellBegin = fp.nextFree
	}
	fp.nextFree = cellBegin + e.progNS
	return busStart
}

// chargeGC adds the time cost of GC activity to the plane (and channel,
// unless copyback keeps moves on-chip). GC work that could have run
// during the plane's preceding idle gap is absorbed — real controllers
// collect garbage in the background, so only the portion that spills
// into foreground time delays requests. t is the trigger time.
func (e *engine) chargeGC(pl planeID, moves, erases int32, t int64) {
	if moves == 0 && erases == 0 {
		return
	}
	fp := &e.ftl.planes[pl]
	per := e.readNS + e.progNS
	if !e.p.CopybackEnabled {
		per += 2 * e.xferNS
		ch := e.ftl.alloc.channelOf(pl)
		e.channelFree[ch] += int64(moves) * 2 * e.xferNS
		e.channelBusyNS += int64(moves) * 2 * e.xferNS
	}
	busy := int64(moves)*per + int64(erases)*e.eraseNS
	if idle := t - fp.nextFree; idle > 0 {
		if idle >= busy {
			busy = 0
		} else {
			busy -= idle
		}
	}
	// The foreground spill (post-idle-absorption) is the GC pause a
	// request actually observes; absorbed background GC records as 0.
	e.gcHist.Record(busy)
	fp.nextFree += busy
}

func (e *engine) buildResult(count, latSum int64, totalBytes uint64, firstArrival, lastCompletion int64) *Result {
	r := &Result{Requests: int(count)}
	r.AvgLatency = time.Duration(latSum / count)
	r.P50Latency = time.Duration(e.latHist.Quantile(0.50))
	r.P95Latency = time.Duration(e.latHist.Quantile(0.95))
	r.P99Latency = time.Duration(e.latHist.Quantile(0.99))
	r.P999Latency = time.Duration(e.latHist.Quantile(0.999))
	r.LatencyHistogram = e.latHist.Snapshot()

	// A single-request trace (or one whose arrivals all coincide before a
	// shared completion) can yield lastCompletion == firstArrival, and a
	// dispatch gated far past the final completion can even drive the
	// difference negative. Rates divided by such a makespan were Inf/NaN;
	// fall back to the total device-busy time (the latency sum) so IOPS,
	// throughput and average power stay finite and meaningful.
	makespan := lastCompletion - firstArrival
	if makespan <= 0 {
		makespan = latSum
		if makespan <= 0 {
			makespan = 1
		}
	}
	r.Makespan = time.Duration(makespan)
	r.ThroughputBps = float64(totalBytes) / (float64(makespan) / 1e9)
	r.IOPS = float64(count) / (float64(makespan) / 1e9)

	f := e.ftl
	r.UserReads, r.UserPrograms = f.userReads, f.userPrograms
	r.GCReads, r.GCPrograms = f.gcReads, f.gcPrograms
	r.Erases = f.erases
	r.MappingReads, r.MappingWrites = f.mappingReads, f.mappingWrites
	r.CacheHits, r.CacheMisses = e.cacheHits, e.cacheMisses
	r.CMTHits, r.CMTMisses = e.cmtHits, e.cmtMisses
	for i := range f.planes {
		r.GCRuns += f.planes[i].gcRuns
		r.WearLevelSwaps += f.planes[i].wlSwaps
	}
	r.MergedRequests = e.mergedRequests
	r.ProactiveFlushes = e.proactiveFlushes
	r.UserTrims = e.userTrims
	r.TrimmedPages = f.trimmedPages
	if f.zns != nil {
		r.WPViolations = f.zns.violations
		r.ZoneResets = f.zns.resets
	}
	if fa := f.faults; fa != nil {
		r.ProgramFailures = fa.programFailures
		r.EraseFailures = fa.eraseFailures
		r.ReadRetries = fa.readRetries
		r.ECCSoftDecodes = fa.eccSoftDecodes
		r.RetiredBlocks = fa.retiredBlocks
		r.FactoryBadBlocks = fa.factoryBadBlocks
	}
	r.ChannelUtilization = float64(e.channelBusyNS) / (float64(makespan) * float64(e.p.Channels))
	if f.userPrograms > 0 {
		r.WriteAmplification = float64(f.userPrograms+f.gcPrograms) / float64(f.userPrograms)
	} else {
		r.WriteAmplification = 1
	}

	r.Wear = e.wear(makespan)
	r.EnergyJoules = e.energy(r, makespan)
	r.AvgPowerWatts = r.EnergyJoules / (float64(makespan) / 1e9)
	return r
}
