package ssd

import (
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

func runTrace(t *testing.T, p DeviceParams, tr *trace.Trace) *Result {
	t.Helper()
	sim, err := NewSimulator(p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func testTrace(cat workload.Category, n int) *trace.Trace {
	return workload.MustGenerate(cat, workload.Options{Requests: n, Seed: 11})
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*DeviceParams){
		func(p *DeviceParams) { p.Channels = 0 },
		func(p *DeviceParams) { p.PageSizeBytes = 1000 },
		func(p *DeviceParams) { p.ReadLatency = 0 },
		func(p *DeviceParams) { p.QueueDepth = 0 },
		func(p *DeviceParams) { p.OverprovisionRatio = 0.95 },
		func(p *DeviceParams) { p.GCThresholdPct = 0 },
		func(p *DeviceParams) { p.PlaneAllocScheme = AllocScheme(99) },
		func(p *DeviceParams) { p.InitialOccupancyFrac = 1.0 },
		func(p *DeviceParams) { p.HostInterface = NVMe; p.PCIeLanes = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Fatalf("case %d: expected validation error", i)
		}
		if _, err := NewSimulator(p); err == nil {
			t.Fatalf("case %d: NewSimulator should reject invalid params", i)
		}
	}
	p := DefaultParams()
	if err := p.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
}

func TestDerivedQuantities(t *testing.T) {
	p := DefaultParams()
	wantCap := int64(p.TotalPlanes()) * int64(p.BlocksPerPlane) * int64(p.PagesPerBlock) * int64(p.PageSizeBytes)
	if p.CapacityBytes() != wantCap {
		t.Fatalf("CapacityBytes = %d, want %d", p.CapacityBytes(), wantCap)
	}
	if p.UsableBytes() >= p.CapacityBytes() {
		t.Fatal("usable must be below raw capacity")
	}
	if p.ChannelBandwidthBps() != 333e6 {
		t.Fatalf("ChannelBandwidthBps = %g", p.ChannelBandwidthBps())
	}
	sata := p
	sata.HostInterface = SATA
	if sata.HostBandwidthBps() != 600e6 {
		t.Fatal("SATA bandwidth should be 600MB/s")
	}
	if p.HostBandwidthBps() <= sata.HostBandwidthBps() {
		t.Fatal("x4 PCIe should beat SATA")
	}
}

func TestBaselinesAreValid(t *testing.T) {
	for _, p := range []DeviceParams{Intel750(), Samsung850Pro(), SamsungZSSD(), DefaultParams()} {
		if err := p.Validate(); err != nil {
			t.Fatalf("baseline invalid: %v", err)
		}
	}
	if Intel750().HostInterface != NVMe || Samsung850Pro().HostInterface != SATA {
		t.Fatal("baseline interfaces wrong")
	}
	if SamsungZSSD().FlashType != SLC {
		t.Fatal("Z-SSD must be SLC")
	}
}

func TestEmptyTrace(t *testing.T) {
	sim, _ := NewSimulator(DefaultParams())
	if _, err := sim.Run(&trace.Trace{}); err == nil {
		t.Fatal("expected error for empty trace")
	}
}

func TestBasicRunSane(t *testing.T) {
	res := runTrace(t, DefaultParams(), testTrace(workload.Database, 4000))
	// The block layer may merge contiguous requests (IOMergingEnabled);
	// serviced + merged must account for every submitted request.
	if res.Requests+int(res.MergedRequests) != 4000 {
		t.Fatalf("Requests %d + merged %d != 4000", res.Requests, res.MergedRequests)
	}
	if res.AvgLatency <= 0 || res.P99Latency < res.AvgLatency {
		t.Fatalf("latency stats wrong: avg=%v p99=%v", res.AvgLatency, res.P99Latency)
	}
	// The histogram-derived quantiles must be ordered and bounded by the
	// observed extremes.
	if res.P50Latency <= 0 || res.P50Latency > res.P95Latency ||
		res.P95Latency > res.P99Latency || res.P99Latency > res.P999Latency {
		t.Fatalf("quantiles out of order: p50=%v p95=%v p99=%v p99.9=%v",
			res.P50Latency, res.P95Latency, res.P99Latency, res.P999Latency)
	}
	if h := res.LatencyHistogram; h.Count != int64(res.Requests) ||
		res.P999Latency.Nanoseconds() > h.Max {
		t.Fatalf("latency histogram inconsistent: count=%d requests=%d p99.9=%v max=%dns",
			h.Count, res.Requests, res.P999Latency, h.Max)
	}
	if res.ThroughputBps <= 0 || res.IOPS <= 0 {
		t.Fatalf("throughput wrong: %g Bps %g IOPS", res.ThroughputBps, res.IOPS)
	}
	if res.EnergyJoules <= 0 || res.AvgPowerWatts <= 0 {
		t.Fatalf("energy wrong: %g J %g W", res.EnergyJoules, res.AvgPowerWatts)
	}
	if res.AvgPowerWatts > 100 {
		t.Fatalf("power %g W implausible for an SSD", res.AvgPowerWatts)
	}
	if res.WriteAmplification < 1 {
		t.Fatalf("WA = %g < 1", res.WriteAmplification)
	}
}

func TestDeterminism(t *testing.T) {
	tr := testTrace(workload.KVStore, 3000)
	a := runTrace(t, DefaultParams(), tr)
	b := runTrace(t, DefaultParams(), tr)
	if a.AvgLatency != b.AvgLatency || a.EnergyJoules != b.EnergyJoules {
		t.Fatal("simulation not deterministic")
	}
}

func TestMoreChannelsHelpIntensiveWorkload(t *testing.T) {
	tr := testTrace(workload.CloudStorage, 5000)
	narrow := DefaultParams()
	narrow.Channels = 2
	wide := DefaultParams()
	wide.Channels = 16
	rn := runTrace(t, narrow, tr)
	rw := runTrace(t, wide, tr)
	if rw.ThroughputBps <= rn.ThroughputBps {
		t.Fatalf("16ch throughput %g should beat 2ch %g", rw.ThroughputBps, rn.ThroughputBps)
	}
	if rw.AvgLatency >= rn.AvgLatency {
		t.Fatalf("16ch latency %v should beat 2ch %v", rw.AvgLatency, rn.AvgLatency)
	}
}

func TestSLCFasterThanTLC(t *testing.T) {
	tr := testTrace(workload.WebSearch, 4000)
	slc := DefaultParams()
	slc.FlashType = SLC
	slc.ReadLatency, slc.ProgramLatency, slc.EraseLatency = flashDefaults(SLC)
	tlc := DefaultParams()
	tlc.FlashType = TLC
	tlc.ReadLatency, tlc.ProgramLatency, tlc.EraseLatency = flashDefaults(TLC)
	rs := runTrace(t, slc, tr)
	rt := runTrace(t, tlc, tr)
	if rs.AvgLatency >= rt.AvgLatency {
		t.Fatalf("SLC latency %v should beat TLC %v", rs.AvgLatency, rt.AvgLatency)
	}
}

func TestLargerCMTReducesMappingReads(t *testing.T) {
	tr := testTrace(workload.WebSearch, 6000) // wide random read span
	small := DefaultParams()
	small.CMTBytes = 4 << 10 // 512 entries
	big := DefaultParams()
	big.CMTBytes = 512 << 20
	rsSmall := runTrace(t, small, tr)
	rsBig := runTrace(t, big, tr)
	if rsSmall.MappingReads <= rsBig.MappingReads {
		t.Fatalf("small CMT mapping reads %d should exceed big CMT %d",
			rsSmall.MappingReads, rsBig.MappingReads)
	}
	if rsSmall.AvgLatency <= rsBig.AvgLatency {
		t.Fatalf("small CMT latency %v should exceed big CMT %v",
			rsSmall.AvgLatency, rsBig.AvgLatency)
	}
}

func TestDataCacheHitsHelpHotReads(t *testing.T) {
	// A hot, read-heavy workload should see cache hits with a large
	// cache and fewer with a tiny one.
	tr := testTrace(workload.VDI, 6000)
	small := DefaultParams()
	small.DataCacheBytes = 1 << 20
	big := DefaultParams()
	big.DataCacheBytes = 2 << 30
	rSmall := runTrace(t, small, tr)
	rBig := runTrace(t, big, tr)
	if rBig.CacheHits <= rSmall.CacheHits {
		t.Fatalf("big cache hits %d should exceed small cache %d", rBig.CacheHits, rSmall.CacheHits)
	}
}

// smallDevice returns a deliberately small SSD whose capacity is
// comparable to a short trace's footprint, so GC dynamics are exercised
// within test-sized runs.
func smallDevice() DeviceParams {
	p := DefaultParams()
	p.Channels, p.ChipsPerChannel, p.DiesPerChip, p.PlanesPerDie = 2, 2, 1, 1
	p.BlocksPerPlane, p.PagesPerBlock = 64, 64
	p.DataCacheBytes = 2 << 20
	p.CMTBytes = 1 << 20
	p.InitialOccupancyFrac = 0.85
	p.OverprovisionRatio = 0.08
	p.GCThresholdPct = 10
	return p
}

func TestGCActivityUnderWriteHeavyLoad(t *testing.T) {
	p := smallDevice()
	tr := testTrace(workload.FIU, 20000) // write-dominated
	res := runTrace(t, p, tr)
	if res.GCRuns == 0 || res.Erases == 0 {
		t.Fatalf("expected GC under write pressure: runs=%d erases=%d", res.GCRuns, res.Erases)
	}
	if res.WriteAmplification <= 1 {
		t.Fatalf("WA should exceed 1 under GC, got %g", res.WriteAmplification)
	}
}

func TestNVMeBeatsSATAForThroughput(t *testing.T) {
	tr := testTrace(workload.CloudStorage, 5000)
	nvme := DefaultParams()
	sata := DefaultParams()
	sata.HostInterface = SATA
	rn := runTrace(t, nvme, tr)
	rs := runTrace(t, sata, tr)
	if rn.ThroughputBps <= rs.ThroughputBps {
		t.Fatalf("NVMe %g Bps should beat SATA %g Bps", rn.ThroughputBps, rs.ThroughputBps)
	}
}

func TestQueueDepthHelpsSaturatedThroughput(t *testing.T) {
	// Device-level latency is measured from dispatch, so deeper queues
	// pay off in throughput (more overlap), not in per-request latency.
	tr := testTrace(workload.Database, 8000) // saturated on default device
	shallow := DefaultParams()
	shallow.QueueDepth = 1
	deep := DefaultParams()
	deep.QueueDepth = 64
	rsh := runTrace(t, shallow, tr)
	rde := runTrace(t, deep, tr)
	if rde.ThroughputBps <= rsh.ThroughputBps {
		t.Fatalf("QD64 throughput %g should beat QD1 %g", rde.ThroughputBps, rsh.ThroughputBps)
	}
}

func TestInsensitiveParamsAreInert(t *testing.T) {
	// The paper's coarse pruning finds parameters with no performance
	// effect; verify a few are genuinely inert in the model.
	tr := testTrace(workload.Database, 3000)
	base := runTrace(t, DefaultParams(), tr)
	for _, mutate := range []func(*DeviceParams){
		func(p *DeviceParams) { p.PageMetadataBytes *= 4 },
		func(p *DeviceParams) { p.ReadRetryLimit *= 8 },
		func(p *DeviceParams) { p.BadBlockPct *= 2 },
	} {
		p := DefaultParams()
		mutate(&p)
		r := runTrace(t, p, tr)
		if r.AvgLatency != base.AvgLatency {
			t.Fatalf("insensitive parameter changed latency: %v vs %v", r.AvgLatency, base.AvgLatency)
		}
	}
}

func TestCopybackReducesChannelPressure(t *testing.T) {
	p := smallDevice()
	tr := testTrace(workload.FIU, 20000)
	noCB := p
	noCB.CopybackEnabled = false
	cb := p
	cb.CopybackEnabled = true
	rNo := runTrace(t, noCB, tr)
	rCB := runTrace(t, cb, tr)
	if rCB.GCRuns == 0 {
		t.Skip("no GC triggered")
	}
	if rCB.AvgLatency > rNo.AvgLatency {
		t.Fatalf("copyback latency %v should not exceed non-copyback %v", rCB.AvgLatency, rNo.AvgLatency)
	}
}

// Property: random (valid) geometry always produces positive latencies
// and finite results.
func TestSimulationSanityProperty(t *testing.T) {
	tr := testTrace(workload.Database, 800)
	f := func(chRaw, chipRaw, dieRaw, plRaw, qdRaw uint8) bool {
		p := DefaultParams()
		p.Channels = 1 + int(chRaw%16)
		p.ChipsPerChannel = 1 + int(chipRaw%8)
		p.DiesPerChip = 1 + int(dieRaw%8)
		p.PlanesPerDie = 1 + int(plRaw%4)
		p.QueueDepth = 1 + int(qdRaw%64)
		sim, err := NewSimulator(p)
		if err != nil {
			return false
		}
		res, err := sim.Run(tr)
		if err != nil {
			return false
		}
		return res.AvgLatency > 0 && res.ThroughputBps > 0 && res.EnergyJoules > 0 &&
			res.Makespan >= time.Duration(0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyScalesWithDRAM(t *testing.T) {
	// A sparse trace (long idle spans) makes DRAM background power the
	// dominant energy term, isolating the capacity effect.
	tr := &trace.Trace{Name: "sparse"}
	for i := 0; i < 200; i++ {
		tr.Requests = append(tr.Requests, trace.Request{
			Arrival: time.Duration(i) * 10 * time.Millisecond,
			LBA:     uint64(i * 1024), Sectors: 8, Op: trace.Read,
		})
	}
	small := DefaultParams()
	small.DataCacheBytes = 64 << 20
	big := DefaultParams()
	big.DataCacheBytes = 2 << 30
	rs := runTrace(t, small, tr)
	rb := runTrace(t, big, tr)
	if rb.EnergyJoules <= rs.EnergyJoules {
		t.Fatalf("more DRAM should cost energy: %g vs %g J", rb.EnergyJoules, rs.EnergyJoules)
	}
}

func TestScaleGeometryPreservesSmallDevices(t *testing.T) {
	p := DefaultParams()
	p.Channels, p.ChipsPerChannel, p.DiesPerChip, p.PlanesPerDie = 2, 1, 1, 1
	p.BlocksPerPlane, p.PagesPerBlock = 64, 64
	bpp, ppb := scaleGeometry(&p, p.TotalPlanes())
	if bpp != 64 || ppb != 64 {
		t.Fatalf("small device should not be scaled: %d/%d", bpp, ppb)
	}
	big := DefaultParams()
	big.Channels, big.ChipsPerChannel, big.DiesPerChip, big.PlanesPerDie = 32, 8, 8, 16
	bpp2, ppb2 := scaleGeometry(&big, big.TotalPlanes())
	if int64(big.TotalPlanes())*int64(bpp2)*int64(ppb2) > 8*targetSimPages {
		t.Fatal("huge device not scaled enough")
	}
}

// TestSimulatorRunDeterminism locks in the property the parallel
// validation engine depends on: Run has no hidden randomness or
// shared state, so the same (device, trace) pair always produces a
// byte-identical Result — every latency, energy and operation counter.
func TestSimulatorRunDeterminism(t *testing.T) {
	p := DefaultParams()
	tr := testTrace(workload.Database, 3000)
	a := runTrace(t, p, tr)
	b := runTrace(t, p, tr)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("simulator nondeterministic for identical inputs:\n first  %+v\n second %+v", a, b)
	}
	// A fresh simulator over a fresh (identically seeded) trace must
	// agree too — the validator may rebuild either between runs.
	c := runTrace(t, DefaultParams(), testTrace(workload.Database, 3000))
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("simulator result depends on instance identity:\n first %+v\n fresh %+v", a, c)
	}
}
