package ssd

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"

	"autoblox/internal/trace"
	"autoblox/internal/workload"
)

// TestStreamedMatchesMaterialized is the golden equivalence test of the
// streaming refactor: for every workload category, RunSource over the
// lazy generator cursor must produce a Result bit-for-bit identical to
// Run over the materialized trace — every latency, counter, float and
// histogram bucket.
func TestStreamedMatchesMaterialized(t *testing.T) {
	opt := workload.Options{Requests: 3000, Seed: 11}
	for _, c := range workload.All() {
		p := smallDevice()
		sim, err := NewSimulator(p)
		if err != nil {
			t.Fatal(err)
		}
		materialized, err := sim.Run(workload.MustGenerate(c, opt))
		if err != nil {
			t.Fatalf("%s: materialized run: %v", c, err)
		}
		streamed, err := sim.RunSource(workload.MustSource(c, opt))
		if err != nil {
			t.Fatalf("%s: streamed run: %v", c, err)
		}
		if !reflect.DeepEqual(streamed, materialized) {
			t.Errorf("%s: streamed result differs from materialized:\n streamed     %+v\n materialized %+v",
				c, streamed, materialized)
		}
	}
	// And on the default (large) device for a couple of categories, so the
	// equivalence is not an artifact of the small test geometry.
	for _, c := range []workload.Category{workload.Database, workload.FIU} {
		sim, err := NewSimulator(DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		materialized, err := sim.Run(workload.MustGenerate(c, opt))
		if err != nil {
			t.Fatal(err)
		}
		streamed, err := sim.RunSource(workload.MustSource(c, opt))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(streamed, materialized) {
			t.Errorf("%s/default: streamed result differs from materialized", c)
		}
	}
}

// TestRunSourceStreamingReader closes the file loop: a trace written to
// the blktrace text format and replayed through the constant-memory
// reader must simulate identically to the in-memory original (modulo
// nothing: the writer's %.6f µs-precision timestamps round-trip exactly
// for generator arrivals only after quantization, so the comparison
// parses the same bytes for both paths).
func TestRunSourceStreamingReader(t *testing.T) {
	tr := workload.MustGenerate(workload.Database, workload.Options{Requests: 2000, Seed: 11})
	var buf bytes.Buffer
	if err := trace.WriteBlktrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	parsed, err := trace.ParseBlktrace(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := NewSimulator(smallDevice())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sim.Run(parsed)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sim.RunSource(trace.NewBlktraceSource(bytes.NewReader(data), parsed.Name))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("file-streamed result differs from buffered-parse result")
	}
}

// TestZeroMakespanGuard pins the buildResult fallback: when every
// completion coincides with the first arrival (or dispatch gating drives
// the span negative), rates must fall back to the latency sum instead of
// dividing by zero.
func TestZeroMakespanGuard(t *testing.T) {
	p := smallDevice()
	eng, err := newEngine(&p)
	if err != nil {
		t.Fatal(err)
	}
	eng.latHist.Record(1000)
	r := eng.buildResult(1, 1000, 4096, 500, 500) // lastCompletion == firstArrival
	if r.Makespan != 1000 {
		t.Fatalf("Makespan = %v, want latency-sum fallback 1000ns", r.Makespan)
	}
	for name, v := range map[string]float64{
		"IOPS": r.IOPS, "ThroughputBps": r.ThroughputBps, "AvgPowerWatts": r.AvgPowerWatts,
	} {
		if math.IsInf(v, 0) || math.IsNaN(v) || v <= 0 {
			t.Fatalf("%s = %g, want finite positive", name, v)
		}
	}

	// Degenerate-of-the-degenerate: zero latency sum still must not yield
	// a zero makespan.
	eng2, err := newEngine(&p)
	if err != nil {
		t.Fatal(err)
	}
	eng2.latHist.Record(0)
	r2 := eng2.buildResult(1, 0, 0, 700, 600) // negative span, zero latSum
	if r2.Makespan != 1 {
		t.Fatalf("Makespan = %v, want 1ns floor", r2.Makespan)
	}
	if math.IsInf(r2.IOPS, 0) || math.IsNaN(r2.IOPS) {
		t.Fatalf("IOPS = %g", r2.IOPS)
	}

	// End-to-end: a single-request trace exercises the guard path through
	// Run and must report finite, positive rates.
	sim, err := NewSimulator(DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(&trace.Trace{Name: "one", Requests: []trace.Request{
		{Arrival: 0, LBA: 1024, Sectors: 8, Op: trace.Read},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 || math.IsInf(res.IOPS, 0) || math.IsNaN(res.IOPS) || res.IOPS <= 0 {
		t.Fatalf("single-request run: makespan %v IOPS %g", res.Makespan, res.IOPS)
	}
}

// TestPageSpanWrap pins the wrap-around fix: a request whose folded page
// range crosses the end of the logical space is modeled page for page
// (the old code silently collapsed it to one page), and oversized spans
// clamp to the logical page count.
func TestPageSpanWrap(t *testing.T) {
	p := smallDevice()
	f, err := newFTL(&p)
	if err != nil {
		t.Fatal(err)
	}
	spp := uint64(f.sectorsPerPage)
	L := f.logicalPages

	// Non-wrapping request: 4 pages from page 0.
	if first, n := f.pageSpan(0, uint32(4*spp)); first != 0 || n != 4 {
		t.Fatalf("pageSpan(0, 4 pages) = (%d, %d), want (0, 4)", first, n)
	}
	// Wrapping request: starts at the last logical page, spans 4 pages
	// (L-1, 0, 1, 2 after the modular fold).
	lba := uint64(L-1) * uint64(f.capScale) * spp
	first, n := f.pageSpan(lba, uint32(4*spp))
	if first != L-1 || n != 4 {
		t.Fatalf("pageSpan(wrap, 4 pages) = (%d, %d), want (%d, 4)", first, n, L-1)
	}
	// Zero sectors touch their page.
	if first, n := f.pageSpan(17*spp, 0); first != 17 || n != 1 {
		t.Fatalf("pageSpan(17, 0) = (%d, %d), want (17, 1)", first, n)
	}
	// A span wider than the logical space clamps to it: the modular space
	// cannot hold more distinct pages.
	if _, n := f.pageSpan(0, ^uint32(0)); n != L {
		t.Fatalf("oversized span = %d pages, want clamp to %d", n, L)
	}

	// Behavioral check: a wrapping 4-page read must do the same flash work
	// as a non-wrapping 4-page read (4 user reads), not collapse to 1.
	run := func(lba uint64) *Result {
		sim, err := NewSimulator(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(&trace.Trace{Name: "wrap", Requests: []trace.Request{
			{Arrival: 0, LBA: lba, Sectors: uint32(4 * spp), Op: trace.Read},
		}})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	wrapped, straight := run(lba), run(0)
	if wrapped.UserReads != straight.UserReads {
		t.Fatalf("wrapped read did %d flash reads, non-wrapped did %d (wrap collapsed)",
			wrapped.UserReads, straight.UserReads)
	}
	if wrapped.UserReads != 4 {
		t.Fatalf("4-page read did %d flash reads, want 4", wrapped.UserReads)
	}
}

// benchSimWorkload drives one simulation per iteration; streamed runs
// pull from the lazy generator, materialized runs first build the whole
// trace in memory. The bytes/op gap between the two is the refactor's
// acceptance criterion (≥10× at 1M requests).
func benchSimWorkload(b *testing.B, n int, streamed bool) {
	p := smallDevice()
	sim, err := NewSimulator(p)
	if err != nil {
		b.Fatal(err)
	}
	opt := workload.Options{Requests: n, Seed: 11}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if streamed {
			if _, err := sim.RunSource(workload.MustSource(workload.Database, opt)); err != nil {
				b.Fatal(err)
			}
		} else {
			tr := workload.MustGenerate(workload.Database, opt)
			if _, err := sim.Run(tr); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSimStreamed(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchSimWorkload(b, n, true) })
	}
}

func BenchmarkSimMaterialized(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) { benchSimWorkload(b, n, false) })
	}
}
