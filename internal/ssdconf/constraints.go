package ssdconf

import (
	"fmt"
	"math"
)

// CapacityBytes returns the raw capacity cfg encodes.
func (s *Space) CapacityBytes(cfg Config) int64 {
	d := s.ToDevice(cfg)
	return d.CapacityBytes()
}

// CapacityOK reports whether cfg's capacity is within the constraint's
// tolerance band.
func (s *Space) CapacityOK(cfg Config) bool {
	if s.Cons.CapacityBytes <= 0 {
		return true
	}
	c := float64(s.CapacityBytes(cfg))
	target := float64(s.Cons.CapacityBytes)
	tol := s.Cons.CapacityTolerance
	return c >= target*(1-tol) && c <= target*(1+tol)
}

// CheckConstraints reports the first violated structural constraint
// (capacity, interface, flash type). Power is checked post-validation by
// the tuner, since it needs a simulation.
func (s *Space) CheckConstraints(cfg Config) error {
	if len(cfg) != len(s.Params) {
		return fmt.Errorf("ssdconf: config has %d entries, space has %d", len(cfg), len(s.Params))
	}
	for i, p := range s.Params {
		if cfg[i] < 0 || cfg[i] >= len(p.Values) {
			return fmt.Errorf("ssdconf: %s index %d out of range [0,%d)", p.Name, cfg[i], len(p.Values))
		}
	}
	if i, ok := s.index["Interface"]; ok && cfg[i] != int(s.Cons.Interface) {
		return fmt.Errorf("ssdconf: interface %s violates constraint %s", s.Params[i].Labels[cfg[i]], s.Cons.Interface)
	}
	if i, ok := s.index["FlashType"]; ok && cfg[i] != int(s.Cons.Flash) {
		return fmt.Errorf("ssdconf: flash type %s violates constraint %s", s.Params[i].Labels[cfg[i]], s.Cons.Flash)
	}
	if !s.CapacityOK(cfg) {
		return fmt.Errorf("ssdconf: capacity %.1f GB violates constraint %.1f GB ±%.0f%%",
			float64(s.CapacityBytes(cfg))/(1<<30), float64(s.Cons.CapacityBytes)/(1<<30),
			s.Cons.CapacityTolerance*100)
	}
	return nil
}

// RepairCapacity adjusts the *dependent* layout parameters
// (BlockNoPerPlane, then PageNoPerBlock, then PageCapacity) to bring the
// configuration back inside the capacity band after a tuning step moved
// one of the independent layout axes. This implements the paper's §3.4
// step "AutoBlox will adjust the values of other parameters" to satisfy
// the capacity constraint. It reports whether a repair succeeded; cfg is
// modified in place only on success.
func (s *Space) RepairCapacity(cfg Config) bool {
	if s.CapacityOK(cfg) {
		return true
	}
	if s.Cons.CapacityBytes <= 0 {
		return true
	}
	dependent := []string{"BlockNoPerPlane", "PageNoPerBlock", "PageCapacity"}
	work := cfg.Clone()

	// Coordinate descent: move each dependent axis to the grid point
	// minimizing |log(capacity/target)|, repeating until stable.
	for pass := 0; pass < 3; pass++ {
		changed := false
		for _, name := range dependent {
			i, err := s.ParamIndex(name)
			if err != nil {
				continue
			}
			bestIdx, bestErr := work[i], math.Inf(1)
			for idx := range s.Params[i].Values {
				work[i] = idx
				e := math.Abs(math.Log(float64(s.CapacityBytes(work)) / float64(s.Cons.CapacityBytes)))
				if e < bestErr {
					bestIdx, bestErr = idx, e
				}
			}
			if work[i] != bestIdx {
				changed = true
			}
			work[i] = bestIdx
		}
		if s.CapacityOK(work) {
			copy(cfg, work)
			return true
		}
		if !changed {
			break
		}
	}
	return false
}

// Neighbors enumerates all constraint-respecting configurations one grid
// step away from cfg along tunable axes (the paper's "adjacent
// configurations" in the SGD search). Layout moves that break the
// capacity band are repaired via RepairCapacity; unrepairable moves are
// skipped. Categorical parameters enumerate every alternative value
// (unordered domain).
func (s *Space) Neighbors(cfg Config) []Config {
	var out []Config
	add := func(c Config) {
		if s.CheckConstraints(c) == nil {
			out = append(out, c)
		}
	}
	for i, p := range s.Params {
		if !p.Tunable || len(p.Values) < 2 {
			continue
		}
		if p.Kind == Categorical {
			for v := range p.Values {
				if v == cfg[i] {
					continue
				}
				c := cfg.Clone()
				c[i] = v
				add(c)
			}
			continue
		}
		stride := p.Stride()
		for _, step := range []int{-stride, +stride} {
			ni := clampIndex(cfg[i]+step, len(p.Values))
			if ni == cfg[i] {
				continue
			}
			c := cfg.Clone()
			c[i] = ni
			if p.Layout && !s.CapacityOK(c) {
				if !s.RepairCapacity(c) {
					continue
				}
				if c[i] != ni {
					continue // repair undid the move
				}
			}
			add(c)
		}
	}
	return out
}

// clampIndex clips a grid index to [0, n).
func clampIndex(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// NeighborsOf is Neighbors restricted to one parameter axis.
func (s *Space) NeighborsOf(cfg Config, param int) []Config {
	p := s.Params[param]
	if !p.Tunable || len(p.Values) < 2 {
		return nil
	}
	var out []Config
	add := func(c Config) {
		if s.CheckConstraints(c) == nil {
			out = append(out, c)
		}
	}
	if p.Kind == Categorical {
		for v := range p.Values {
			if v == cfg[param] {
				continue
			}
			c := cfg.Clone()
			c[param] = v
			add(c)
		}
		return out
	}
	stride := p.Stride()
	for _, step := range []int{-stride, +stride} {
		ni := clampIndex(cfg[param]+step, len(p.Values))
		if ni == cfg[param] {
			continue
		}
		c := cfg.Clone()
		c[param] = ni
		if p.Layout && !s.CapacityOK(c) {
			if !s.RepairCapacity(c) {
				continue
			}
			if c[param] != ni {
				continue
			}
		}
		add(c)
	}
	return out
}

// Vector encodes cfg for the ML models: numeric/boolean parameters map
// to their normalized grid position in [0, 1]; categorical parameters
// expand to one-hot dummy variables (§3.2).
func (s *Space) Vector(cfg Config) []float64 {
	var out []float64
	for i, p := range s.Params {
		if p.Kind == Categorical {
			oneHot := make([]float64, len(p.Values))
			oneHot[cfg[i]] = 1
			out = append(out, oneHot...)
			continue
		}
		denom := float64(len(p.Values) - 1)
		if denom == 0 {
			out = append(out, 0)
			continue
		}
		out = append(out, float64(cfg[i])/denom)
	}
	return out
}

// VectorLen returns the length of Vector's encoding.
func (s *Space) VectorLen() int {
	n := 0
	for _, p := range s.Params {
		if p.Kind == Categorical {
			n += len(p.Values)
		} else {
			n++
		}
	}
	return n
}

// ManhattanDistance is the exploration-bound metric of §3.4: the sum of
// grid-index distances over numeric axes, counting a categorical
// difference as one step.
func ManhattanDistance(s *Space, a, b Config) int {
	d := 0
	for i, p := range s.Params {
		if p.Kind == Categorical {
			if a[i] != b[i] {
				d++
			}
			continue
		}
		diff := a[i] - b[i]
		if diff < 0 {
			diff = -diff
		}
		// Count in stride units so one SGD move is one unit of distance
		// on coarse and fine grids alike.
		stride := p.Stride()
		d += (diff + stride - 1) / stride
	}
	return d
}

// Equal reports whether two configurations are identical.
func Equal(a, b Config) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Key returns a compact stable string key for cfg (AutoDB storage and
// dedup in the search loop).
func (c Config) Key() string {
	b := make([]byte, 0, len(c)*3)
	for _, v := range c {
		b = append(b, byte('a'+v/26), byte('a'+v%26), '.')
	}
	return string(b)
}
