package ssdconf

import (
	"fmt"
	"strings"
)

// ObjectiveAxis names one axis of the tuning objective vector.
type ObjectiveAxis string

const (
	// AxisPerf is the paper's scalar grade (Formulas 1–2): higher is
	// better.
	AxisPerf ObjectiveAxis = "perf"
	// AxisPower is the mean device power draw over the target traces in
	// watts: lower is better.
	AxisPower ObjectiveAxis = "power"
	// AxisLifetime is the projected device lifetime extrapolated from
	// the erase-count distribution: higher is better. A run that erased
	// nothing projects an unbounded lifetime, which dominates any finite
	// projection.
	AxisLifetime ObjectiveAxis = "lifetime"
)

// ObjectiveSpec declares which axes a tune optimizes. The zero value
// (no axes) is scalar mode: the tuner behaves byte-identically to the
// historical single-grade search. Any spec with an axis beyond perf
// switches the tuner to Pareto-front search over the listed axes.
type ObjectiveSpec struct {
	Axes []ObjectiveAxis
}

// ParseObjectiveSpec parses a comma-separated axis list such as
// "perf,power,lifetime". An empty string yields the scalar spec.
func ParseObjectiveSpec(s string) (ObjectiveSpec, error) {
	var spec ObjectiveSpec
	s = strings.TrimSpace(s)
	if s == "" {
		return spec, nil
	}
	seen := map[ObjectiveAxis]bool{}
	for _, part := range strings.Split(s, ",") {
		ax := ObjectiveAxis(strings.TrimSpace(part))
		switch ax {
		case AxisPerf, AxisPower, AxisLifetime:
		default:
			return ObjectiveSpec{}, fmt.Errorf("unknown objective axis %q (want perf, power or lifetime)", ax)
		}
		if seen[ax] {
			return ObjectiveSpec{}, fmt.Errorf("duplicate objective axis %q", ax)
		}
		seen[ax] = true
		spec.Axes = append(spec.Axes, ax)
	}
	return spec, nil
}

// Scalar reports whether the spec degenerates to the historical
// single-grade objective.
func (s ObjectiveSpec) Scalar() bool {
	return len(s.Axes) == 0 || (len(s.Axes) == 1 && s.Axes[0] == AxisPerf)
}

// String renders the spec as the comma-separated form ParseObjectiveSpec
// accepts. The scalar spec renders as "perf".
func (s ObjectiveSpec) String() string {
	if len(s.Axes) == 0 {
		return string(AxisPerf)
	}
	parts := make([]string, len(s.Axes))
	for i, ax := range s.Axes {
		parts[i] = string(ax)
	}
	return strings.Join(parts, ",")
}

// Names returns the axis names as plain strings, nil for the zero spec
// (used to ship the spec across process boundaries).
func (s ObjectiveSpec) Names() []string {
	if len(s.Axes) == 0 {
		return nil
	}
	out := make([]string, len(s.Axes))
	for i, ax := range s.Axes {
		out[i] = string(ax)
	}
	return out
}

// ObjectiveSpecFromNames rebuilds a spec from Names output, validating
// each axis.
func ObjectiveSpecFromNames(names []string) (ObjectiveSpec, error) {
	return ParseObjectiveSpec(strings.Join(names, ","))
}
